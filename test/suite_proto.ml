open Netaddr
module Proto = Abrr_core.Proto

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = Prefix.of_string "20.0.0.0/16"

(* same attributes, distinct path ids: exercises wire-level grouping *)
let mk k =
  Bgp.Route.make ~path_id:k ~prefix ~next_hop:(Ipv4.of_int 0x0A00_0001) ()

let test_delta () =
  let d = Proto.delta prefix [ mk 1 ] in
  check_bool "announce" false (Proto.is_withdraw d);
  let w = Proto.delta ~withdrawn_ids:[ 1 ] prefix [] in
  check_bool "withdraw" true (Proto.is_withdraw w)

let test_to_update () =
  let u =
    Proto.to_update
      [ Proto.delta prefix [ mk 1; mk 2 ]; Proto.delta ~withdrawn_ids:[ 7 ] prefix [] ]
  in
  check_int "announced" 2 (List.length u.Bgp.Msg.announced);
  check_int "withdrawn" 1 (List.length u.Bgp.Msg.withdrawn)

let test_wire_size () =
  let bytes1, msgs1 = Proto.wire_size ~add_paths:true [ Proto.delta prefix [ mk 1 ] ] in
  let bytes2, msgs2 =
    Proto.wire_size ~add_paths:true [ Proto.delta prefix [ mk 1; mk 2 ] ]
  in
  check_bool "positive" true (bytes1 > 0 && msgs1 = 1);
  check_bool "more routes, more bytes" true (bytes2 > bytes1);
  check_int "same attrs share a message" 1 msgs2;
  (* add-paths carries 4 extra bytes per NLRI *)
  let plain, _ = Proto.wire_size ~add_paths:false [ Proto.delta prefix [ mk 1 ] ] in
  check_int "path id overhead" 4 (bytes1 - plain)

let test_channel_tags_distinct () =
  let tags =
    List.map Proto.channel_tag
      [ Proto.Mesh; Proto.To_trr; Proto.To_arr; Proto.From_trr; Proto.From_arr ]
  in
  check_int "distinct" 5 (List.length (List.sort_uniq Int.compare tags))

let prefix2 = Prefix.of_string "21.0.0.0/16"

let test_coalesce_last_wins () =
  (* three updates of one (channel, prefix) key in a single delivery:
     only the last survives, since apply_item replaces the stored set *)
  let items =
    [
      (Proto.Mesh, Proto.delta prefix [ mk 1 ]);
      (Proto.Mesh, Proto.delta prefix [ mk 2 ]);
      (Proto.Mesh, Proto.delta ~withdrawn_ids:[ 2 ] prefix []);
    ]
  in
  match Proto.coalesce items with
  | [ (Proto.Mesh, d) ] -> check_bool "last wins" true (Proto.is_withdraw d)
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l)

let test_coalesce_keys_independent () =
  (* distinct prefixes and distinct channels never coalesce with each
     other, and the surviving items keep their relative order *)
  let items =
    [
      (Proto.Mesh, Proto.delta prefix [ mk 1 ]);
      (Proto.Mesh, Proto.delta prefix2 [ mk 1 ]);
      (Proto.To_trr, Proto.delta prefix [ mk 3 ]);
      (Proto.Mesh, Proto.delta prefix [ mk 2 ]);
    ]
  in
  match Proto.coalesce items with
  | [ (Proto.Mesh, a); (Proto.To_trr, b); (Proto.Mesh, c) ] ->
    check_bool "prefix2 untouched" true (Prefix.equal a.Proto.prefix prefix2);
    check_bool "other channel untouched" true (Prefix.equal b.Proto.prefix prefix);
    check_bool "mesh keeps final" true
      (match c.Proto.routes with
      | [ r ] -> r.Bgp.Route.path_id = 2
      | _ -> false)
  | l -> Alcotest.failf "expected 3 items, got %d" (List.length l)

let test_coalesce_identity () =
  (* zero- and one-item deliveries come back physically unchanged *)
  check_bool "empty" true (Proto.coalesce [] = []);
  let one = [ (Proto.Mesh, Proto.delta prefix [ mk 1 ]) ] in
  check_bool "singleton" true (Proto.coalesce one == one)

(* Random injector streams: encoded item lists over a few channels and
   prefixes, mixing announces, set replacements and withdrawals — the
   kind of churn a flapping session (or a damping reinstatement)
   delivers in one batch. *)
let gen_items =
  let channels = [| Proto.Mesh; Proto.To_arr; Proto.From_arr; Proto.To_trr |] in
  let prefixes =
    [| prefix; prefix2; Prefix.of_string "30.0.0.0/14";
       Prefix.of_string "40.4.0.0/18" |]
  in
  QCheck.Gen.(
    list_size (int_bound 40)
      (map
         (fun (c, p, ids) ->
           let routes = List.map mk ids in
           ( channels.(c mod Array.length channels),
             Proto.delta
               ~withdrawn_ids:(if routes = [] then [ 0 ] else [])
               prefixes.(p mod Array.length prefixes)
               routes ))
         (triple (int_bound 3) (int_bound 3) (list_size (int_bound 3) (int_range 1 5)))))

let arb_items = QCheck.make ~print:(fun l -> Printf.sprintf "<%d items>" (List.length l)) gen_items

let key (c, (d : Proto.delta)) = (Proto.channel_tag c, Prefix.to_key d.Proto.prefix)

(* The receiver treats each item as a full route-set replacement for its
   (channel, prefix) key, so folding a delivery into a map is its
   semantics. Coalescing must leave that fold's result unchanged. *)
let fold_state items =
  let tbl = Hashtbl.create 16 in
  List.iter (fun it -> Hashtbl.replace tbl (key it) (snd it)) items;
  List.sort compare
    (Hashtbl.fold (fun k (d : Proto.delta) acc ->
         (k, List.map (fun (r : Bgp.Route.t) -> r.Bgp.Route.path_id) d.Proto.routes)
         :: acc)
       tbl [])

let prop_coalesce_preserves_apply =
  QCheck.Test.make ~name:"coalesce preserves replace-map semantics" ~count:300
    arb_items (fun items -> fold_state (Proto.coalesce items) = fold_state items)

let prop_coalesce_idempotent =
  QCheck.Test.make ~name:"coalesce is idempotent" ~count:300 arb_items
    (fun items ->
      let once = Proto.coalesce items in
      Proto.coalesce once = once)

let prop_coalesce_one_item_per_key =
  QCheck.Test.make ~name:"coalesce leaves one item per key, order kept"
    ~count:300 arb_items (fun items ->
      let out = Proto.coalesce items in
      let keys = List.map key out in
      List.length (List.sort_uniq compare keys) = List.length keys
      &&
      (* survivors appear in the order of their key's last occurrence *)
      let last_index k =
        snd
          (List.fold_left
             (fun (i, best) it -> (i + 1, if key it = k then i else best))
             (0, -1) items)
      in
      let idx = List.map last_index keys in
      List.sort compare idx = idx)

let suite =
  ( "proto",
    [
      Alcotest.test_case "delta" `Quick test_delta;
      Alcotest.test_case "to_update" `Quick test_to_update;
      Alcotest.test_case "wire size" `Quick test_wire_size;
      Alcotest.test_case "channel tags" `Quick test_channel_tags_distinct;
      Alcotest.test_case "coalesce: last wins per key" `Quick
        test_coalesce_last_wins;
      Alcotest.test_case "coalesce: keys independent, order kept" `Quick
        test_coalesce_keys_independent;
      Alcotest.test_case "coalesce: identity on small lists" `Quick
        test_coalesce_identity;
      QCheck_alcotest.to_alcotest prop_coalesce_preserves_apply;
      QCheck_alcotest.to_alcotest prop_coalesce_idempotent;
      QCheck_alcotest.to_alcotest prop_coalesce_one_item_per_key;
    ] )
