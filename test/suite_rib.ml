open Netaddr
open Bgp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let p1 = Prefix.of_string "20.0.0.0/16"
let p2 = Prefix.of_string "21.0.0.0/16"
let nh k = Ipv4.of_int k
let mk prefix id = Route.make ~path_id:id ~prefix ~next_hop:(nh (1000 + id)) ()

let test_upsert_counts () =
  let rib = Rib.create () in
  check_bool "new" true (Rib.upsert rib (mk p1 1));
  check_bool "second path" true (Rib.upsert rib (mk p1 2));
  check_bool "other prefix" true (Rib.upsert rib (mk p2 1));
  check_int "entries" 3 (Rib.entry_count rib);
  check_int "prefixes" 2 (Rib.prefix_count rib);
  (* replacing with an identical route reports no change *)
  check_bool "idempotent" false (Rib.upsert rib (mk p1 1));
  check_int "entries stable" 3 (Rib.entry_count rib);
  (* replacing with different attrs reports change, count stable *)
  let changed = Rib.upsert rib { (mk p1 1) with Route.local_pref = 300 } in
  check_bool "attr change" true changed;
  check_int "entries still" 3 (Rib.entry_count rib)

let test_drop () =
  let rib = Rib.create () in
  ignore (Rib.upsert rib (mk p1 1));
  ignore (Rib.upsert rib (mk p1 2));
  check_bool "drop" true (Rib.drop rib p1 ~path_id:1);
  check_bool "drop absent" false (Rib.drop rib p1 ~path_id:1);
  check_int "entries" 1 (Rib.entry_count rib);
  check_bool "remaining" true
    (match Rib.get rib p1 with [ r ] -> r.Route.path_id = 2 | _ -> false)

let test_upsert_keeps_position () =
  (* the single-pass replace swaps the entry where it sits instead of
     removing + re-appending, so sibling order is stable *)
  let rib = Rib.create () in
  List.iter (fun id -> ignore (Rib.upsert rib (mk p1 id))) [ 1; 2; 3 ];
  ignore (Rib.upsert rib { (mk p1 2) with Route.local_pref = 300 });
  check_bool "order preserved" true
    (List.map (fun r -> r.Route.path_id) (Rib.get rib p1) = [ 1; 2; 3 ]);
  check_bool "replaced in place" true
    (match Rib.get rib p1 with
    | [ _; r; _ ] -> r.Route.local_pref = 300
    | _ -> false)

let test_set () =
  let rib = Rib.create () in
  Rib.set rib p1 [ mk p1 1; mk p1 2; mk p1 3 ];
  check_int "entries" 3 (Rib.entry_count rib);
  Rib.set rib p1 [ mk p1 9 ];
  check_int "replaced" 1 (Rib.entry_count rib);
  Rib.set rib p1 [];
  check_int "cleared" 0 (Rib.entry_count rib);
  check_bool "mem" false (Rib.mem rib p1)

let test_clear_prefix () =
  let rib = Rib.create () in
  Rib.set rib p1 [ mk p1 1; mk p1 2 ];
  Rib.set rib p2 [ mk p2 1 ];
  check_int "removed" 2 (Rib.clear_prefix rib p1);
  check_int "left" 1 (Rib.entry_count rib);
  Rib.clear rib;
  check_int "clear all" 0 (Rib.entry_count rib)

let test_fold () =
  let rib = Rib.create () in
  Rib.set rib p1 [ mk p1 1 ];
  Rib.set rib p2 [ mk p2 1; mk p2 2 ];
  let total = Rib.fold (fun _ rs acc -> acc + List.length rs) rib 0 in
  check_int "fold" 3 total;
  check_int "prefixes" 2 (List.length (Rib.prefixes rib))

let prop_entry_count_invariant =
  QCheck.Test.make ~name:"entry_count tracks contents" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (pair (int_bound 5) (int_bound 4)))
    (fun ops ->
      let rib = Rib.create () in
      let prefix_of i = Prefix.make (Ipv4.of_int (i * 0x0100_0000)) 8 in
      List.iter
        (fun (pi, id) ->
          if id = 4 then ignore (Rib.drop rib (prefix_of pi) ~path_id:0)
          else ignore (Rib.upsert rib (mk (prefix_of pi) id)))
        ops;
      let real = Rib.fold (fun _ rs acc -> acc + List.length rs) rib 0 in
      real = Rib.entry_count rib)

let suite =
  ( "rib",
    [
      Alcotest.test_case "upsert counting" `Quick test_upsert_counts;
      Alcotest.test_case "drop" `Quick test_drop;
      Alcotest.test_case "upsert keeps position" `Quick test_upsert_keeps_position;
      Alcotest.test_case "set replaces" `Quick test_set;
      Alcotest.test_case "clear" `Quick test_clear_prefix;
      Alcotest.test_case "fold/prefixes" `Quick test_fold;
      QCheck_alcotest.to_alcotest prop_entry_count_invariant;
    ] )
