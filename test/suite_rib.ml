open Netaddr
open Bgp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let p1 = Prefix.of_string "20.0.0.0/16"
let p2 = Prefix.of_string "21.0.0.0/16"
let nh k = Ipv4.of_int k
let mk prefix id = Route.make ~path_id:id ~prefix ~next_hop:(nh (1000 + id)) ()

let test_upsert_counts () =
  let rib = Rib.create () in
  check_bool "new" true (Rib.upsert rib (mk p1 1));
  check_bool "second path" true (Rib.upsert rib (mk p1 2));
  check_bool "other prefix" true (Rib.upsert rib (mk p2 1));
  check_int "entries" 3 (Rib.entry_count rib);
  check_int "prefixes" 2 (Rib.prefix_count rib);
  (* replacing with an identical route reports no change *)
  check_bool "idempotent" false (Rib.upsert rib (mk p1 1));
  check_int "entries stable" 3 (Rib.entry_count rib);
  (* replacing with different attrs reports change, count stable *)
  let changed = Rib.upsert rib (Route.update ~local_pref:300 (mk p1 1)) in
  check_bool "attr change" true changed;
  check_int "entries still" 3 (Rib.entry_count rib)

let test_drop () =
  let rib = Rib.create () in
  ignore (Rib.upsert rib (mk p1 1));
  ignore (Rib.upsert rib (mk p1 2));
  check_bool "drop" true (Rib.drop rib p1 ~path_id:1);
  check_bool "drop absent" false (Rib.drop rib p1 ~path_id:1);
  check_int "entries" 1 (Rib.entry_count rib);
  check_bool "remaining" true
    (match Rib.get rib p1 with [ r ] -> r.Route.path_id = 2 | _ -> false)

let test_upsert_keeps_position () =
  (* the single-pass replace swaps the entry where it sits instead of
     removing + re-appending, so sibling order is stable *)
  let rib = Rib.create () in
  List.iter (fun id -> ignore (Rib.upsert rib (mk p1 id))) [ 1; 2; 3 ];
  ignore (Rib.upsert rib (Route.update ~local_pref:300 (mk p1 2)));
  check_bool "order preserved" true
    (List.map (fun r -> r.Route.path_id) (Rib.get rib p1) = [ 1; 2; 3 ]);
  check_bool "replaced in place" true
    (match Rib.get rib p1 with
    | [ _; r; _ ] -> Route.local_pref r = 300
    | _ -> false)

let test_set () =
  let rib = Rib.create () in
  Rib.set rib p1 [ mk p1 1; mk p1 2; mk p1 3 ];
  check_int "entries" 3 (Rib.entry_count rib);
  Rib.set rib p1 [ mk p1 9 ];
  check_int "replaced" 1 (Rib.entry_count rib);
  Rib.set rib p1 [];
  check_int "cleared" 0 (Rib.entry_count rib);
  check_bool "mem" false (Rib.mem rib p1)

let test_clear_prefix () =
  let rib = Rib.create () in
  Rib.set rib p1 [ mk p1 1; mk p1 2 ];
  Rib.set rib p2 [ mk p2 1 ];
  check_int "removed" 2 (Rib.clear_prefix rib p1);
  check_int "left" 1 (Rib.entry_count rib);
  Rib.clear rib;
  check_int "clear all" 0 (Rib.entry_count rib)

let test_fold () =
  let rib = Rib.create () in
  Rib.set rib p1 [ mk p1 1 ];
  Rib.set rib p2 [ mk p2 1; mk p2 2 ];
  let total = Rib.fold (fun _ rs acc -> acc + List.length rs) rib 0 in
  check_int "fold" 3 total;
  check_int "prefixes" 2 (List.length (Rib.prefixes rib))

let prop_entry_count_invariant =
  QCheck.Test.make ~name:"entry_count tracks contents" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (pair (int_bound 5) (int_bound 4)))
    (fun ops ->
      let rib = Rib.create () in
      let prefix_of i = Prefix.make (Ipv4.of_int (i * 0x0100_0000)) 8 in
      List.iter
        (fun (pi, id) ->
          if id = 4 then ignore (Rib.drop rib (prefix_of pi) ~path_id:0)
          else ignore (Rib.upsert rib (mk (prefix_of pi) id)))
        ops;
      let real = Rib.fold (fun _ rs acc -> acc + List.length rs) rib 0 in
      real = Rib.entry_count rib)

let test_longest_match () =
  let rib = Rib.create () in
  let covering = Prefix.of_string "20.0.0.0/8" in
  let specific = Prefix.of_string "20.1.0.0/16" in
  Rib.set rib covering [ mk covering 1 ];
  Rib.set rib specific [ mk specific 1 ];
  let lm a =
    Option.map fst (Rib.longest_match rib (Ipv4.of_string a))
  in
  check_bool "most specific wins" true (lm "20.1.2.3" = Some specific);
  check_bool "covering catches the rest" true (lm "20.2.0.1" = Some covering);
  check_bool "outside" true (lm "21.0.0.1" = None);
  Rib.set rib specific [];
  check_bool "withdrawn specific falls back" true (lm "20.1.2.3" = Some covering)

(* --- Trie vs list-model parity ---------------------------------------

   The compact trie must be observationally identical to the obvious
   association-list RIB under random op interleavings: same contents,
   same counts, same (ascending) iteration order, same longest match.
   The prefix pool nests deliberately (/8 .. /30 over two /8 subtrees)
   to exercise junction nodes, path compression and child splicing. *)

let parity_pool =
  [|
    "20.0.0.0/8"; "20.0.0.0/12"; "20.16.0.0/12"; "20.16.0.0/16";
    "20.16.128.0/17"; "20.16.0.0/20"; "20.16.5.0/24"; "20.16.5.128/30";
    "21.0.0.0/8"; "21.12.0.0/14"; "21.12.34.0/24"; "21.12.34.56/32";
  |]
  |> Array.map Prefix.of_string

type model_op = Upsert of int * int * int | Drop of int * int | Set of int * int

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun p id lp -> Upsert (p, id, lp))
          (int_bound (Array.length parity_pool - 1))
          (int_bound 3) (int_bound 2);
        map2
          (fun p id -> Drop (p, id))
          (int_bound (Array.length parity_pool - 1))
          (int_bound 3);
        map2
          (fun p n -> Set (p, n))
          (int_bound (Array.length parity_pool - 1))
          (int_bound 3);
      ])

let route_for p id lp =
  Route.update ~local_pref:(100 + lp) (mk parity_pool.(p) id)

(* The list model: (prefix, routes) assoc with the same position-
   preserving upsert semantics the RIB documents. *)
let model_upsert model p r =
  let rec replace = function
    | [] -> ([ r ], true)
    | (x : Route.t) :: tl when x.Route.path_id = r.Route.path_id ->
      (r :: tl, not (Route.equal x r))
    | x :: tl ->
      let tl', c = replace tl in
      (x :: tl', c)
  in
  match List.assoc_opt (Prefix.to_key p) !model with
  | None ->
    model := (Prefix.to_key p, (p, [ r ])) :: !model;
    true
  | Some (_, rs) ->
    let rs', changed = replace rs in
    model := (Prefix.to_key p, (p, rs')) :: List.remove_assoc (Prefix.to_key p) !model;
    changed

let model_drop model p id =
  match List.assoc_opt (Prefix.to_key p) !model with
  | None -> false
  | Some (_, rs) ->
    if List.exists (fun (r : Route.t) -> r.Route.path_id = id) rs then begin
      let rs' = List.filter (fun (r : Route.t) -> r.Route.path_id <> id) rs in
      model := List.remove_assoc (Prefix.to_key p) !model;
      if rs' <> [] then model := (Prefix.to_key p, (p, rs')) :: !model;
      true
    end
    else false

let model_set model p rs =
  model := List.remove_assoc (Prefix.to_key p) !model;
  if rs <> [] then model := (Prefix.to_key p, (p, rs)) :: !model

let model_contents model =
  List.sort (fun (_, (a, _)) (_, (b, _)) -> Prefix.compare a b) !model
  |> List.map snd

let model_lpm model addr =
  List.fold_left
    (fun best (_, (p, rs)) ->
      if Prefix.mem addr p then
        match best with
        | Some (bp, _) when Prefix.len bp >= Prefix.len p -> best
        | _ -> Some (p, rs)
      else best)
    None !model

let prop_trie_matches_list_model =
  QCheck.Test.make ~name:"trie RIB = list-model RIB" ~count:300
    QCheck.(make Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let rib = Rib.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Upsert (p, id, lp) ->
            let r = route_for p id lp in
            let a = Rib.upsert rib r in
            let b = model_upsert model parity_pool.(p) r in
            if a <> b then QCheck.Test.fail_report "upsert change bit differs"
          | Drop (p, id) ->
            let a = Rib.drop rib parity_pool.(p) ~path_id:id in
            let b = model_drop model parity_pool.(p) id in
            if a <> b then QCheck.Test.fail_report "drop presence bit differs"
          | Set (p, n) ->
            let rs = List.init n (fun id -> route_for p id 0) in
            Rib.set rib parity_pool.(p) rs;
            model_set model parity_pool.(p) rs)
        ops;
      let expected = model_contents model in
      let actual = Rib.fold (fun p rs acc -> (p, rs) :: acc) rib [] |> List.rev in
      let same_contents =
        List.length expected = List.length actual
        && List.for_all2
             (fun (p1, rs1) (p2, rs2) ->
               Prefix.equal p1 p2
               && List.length rs1 = List.length rs2
               && List.for_all2 Route.equal rs1 rs2)
             expected actual
      in
      let counts_ok =
        Rib.entry_count rib
        = List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 expected
        && Rib.prefix_count rib = List.length expected
      in
      let gets_ok =
        Array.for_all
          (fun p ->
            let m =
              match List.assoc_opt (Prefix.to_key p) !model with
              | Some (_, rs) -> rs
              | None -> []
            in
            List.length m = List.length (Rib.get rib p)
            && List.for_all2 Route.equal m (Rib.get rib p)
            && Rib.mem rib p = (m <> []))
          parity_pool
      in
      let lpm_ok =
        List.for_all
          (fun a ->
            let addr = Ipv4.of_string a in
            match (Rib.longest_match rib addr, model_lpm model addr) with
            | None, None -> true
            | Some (p1, _), Some (p2, _) -> Prefix.equal p1 p2
            | _ -> false)
          [ "20.16.5.129"; "20.16.77.1"; "20.200.0.1"; "21.12.34.56";
            "21.12.35.1"; "22.0.0.1" ]
      in
      same_contents && counts_ok && gets_ok && lpm_ok
      || QCheck.Test.fail_report "trie diverged from list model")

(* ---- Dirty: the per-prefix dirty set behind the router's batched
   decision pass (Router.run_batch). *)

let test_dirty_mark_and_find () =
  let d = Rib.Dirty.create () in
  check_bool "fresh set is empty" true (Rib.Dirty.is_empty d);
  let v1 = Rib.Dirty.mark d p1 (fun () -> ref 1) in
  (* re-marking the same prefix must return the tracked payload, not a
     fresh one: same-prefix churn within a batch coalesces *)
  let v2 = Rib.Dirty.mark d p1 (fun () -> ref 99) in
  check_bool "payload shared" true (v1 == v2);
  check_int "one dirty prefix" 1 (Rib.Dirty.count d);
  ignore (Rib.Dirty.mark d p2 (fun () -> ref 2));
  check_int "two dirty prefixes" 2 (Rib.Dirty.count d);
  check_bool "find tracked" true
    (match Rib.Dirty.find d p1 with Some r -> !r = 1 | None -> false);
  check_bool "find untracked" true
    (Rib.Dirty.find d (Prefix.of_string "99.0.0.0/8") = None)

let test_dirty_drain_clears () =
  let d = Rib.Dirty.create () in
  ignore (Rib.Dirty.mark d p2 (fun () -> 2));
  ignore (Rib.Dirty.mark d p1 (fun () -> 1));
  let drained = Rib.Dirty.drain d in
  (* ascending prefix order regardless of mark order *)
  check_bool "sorted by prefix" true
    (match drained with
    | [ (a, 1); (b, 2) ] -> Prefix.equal a p1 && Prefix.equal b p2
    | _ -> false);
  (* the dirty set is cleared after the batch: drain leaves it empty
     and a second drain yields nothing *)
  check_bool "cleared after drain" true (Rib.Dirty.is_empty d);
  check_int "second drain empty" 0 (List.length (Rib.Dirty.drain d));
  ignore (Rib.Dirty.mark d p1 (fun () -> 7));
  check_bool "reusable after drain" true
    (match Rib.Dirty.drain d with [ (_, 7) ] -> true | _ -> false)

let suite =
  ( "rib",
    [
      Alcotest.test_case "upsert counting" `Quick test_upsert_counts;
      Alcotest.test_case "drop" `Quick test_drop;
      Alcotest.test_case "upsert keeps position" `Quick test_upsert_keeps_position;
      Alcotest.test_case "set replaces" `Quick test_set;
      Alcotest.test_case "clear" `Quick test_clear_prefix;
      Alcotest.test_case "fold/prefixes" `Quick test_fold;
      QCheck_alcotest.to_alcotest prop_entry_count_invariant;
      Alcotest.test_case "longest match" `Quick test_longest_match;
      QCheck_alcotest.to_alcotest prop_trie_matches_list_model;
      Alcotest.test_case "dirty: mark/find coalesce" `Quick test_dirty_mark_and_find;
      Alcotest.test_case "dirty: drain sorts and clears" `Quick
        test_dirty_drain_clears;
    ] )
