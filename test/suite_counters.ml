module Ct = Abrr_core.Counters

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let filled () =
  let c = Ct.create () in
  c.Ct.updates_received <- 3;
  c.Ct.updates_generated <- 5;
  c.Ct.updates_transmitted <- 7;
  c.Ct.messages_transmitted <- 2;
  c.Ct.bytes_transmitted <- 100;
  c.Ct.bytes_received <- 90;
  c.Ct.withdrawals_received <- 1;
  c.Ct.withdrawals_transmitted <- 2;
  c.Ct.decisions_run <- 11;
  c.Ct.decisions_full <- 6;
  c.Ct.decisions_delta <- 4;
  c.Ct.decisions_skipped <- 1;
  c.Ct.routes_damped <- 2;
  c.Ct.hijacks_injected <- 3;
  c.Ct.takeovers <- 1;
  c.Ct.prefixes_moved_on_repartition <- 4;
  c.Ct.last_change <- Eventsim.Time.sec 9;
  c

let test_add () =
  let acc = filled () and x = filled () in
  x.Ct.last_change <- Eventsim.Time.sec 4;
  Ct.add acc x;
  check_int "rx" 6 acc.Ct.updates_received;
  check_int "gen" 10 acc.Ct.updates_generated;
  check_int "tx" 14 acc.Ct.updates_transmitted;
  check_int "bytes" 200 acc.Ct.bytes_transmitted;
  check_int "decisions" 22 acc.Ct.decisions_run;
  check_int "full" 12 acc.Ct.decisions_full;
  check_int "delta" 8 acc.Ct.decisions_delta;
  check_int "skipped" 2 acc.Ct.decisions_skipped;
  check_int "damped" 4 acc.Ct.routes_damped;
  check_int "hijacks" 6 acc.Ct.hijacks_injected;
  check_int "takeovers" 2 acc.Ct.takeovers;
  check_int "moved" 8 acc.Ct.prefixes_moved_on_repartition;
  (* last_change takes the max *)
  check_int "last change" (Eventsim.Time.sec 9) acc.Ct.last_change

let test_reset () =
  let c = filled () in
  Ct.reset c;
  check_int "rx" 0 c.Ct.updates_received;
  check_int "gen" 0 c.Ct.updates_generated;
  check_int "bytes" 0 c.Ct.bytes_transmitted;
  check_int "full" 0 c.Ct.decisions_full;
  check_int "delta" 0 c.Ct.decisions_delta;
  check_int "skipped" 0 c.Ct.decisions_skipped;
  check_int "damped" 0 c.Ct.routes_damped;
  check_int "hijacks" 0 c.Ct.hijacks_injected;
  check_int "takeovers" 0 c.Ct.takeovers;
  check_int "moved" 0 c.Ct.prefixes_moved_on_repartition;
  check_int "last change" Eventsim.Time.zero c.Ct.last_change

let test_copy_diff () =
  let before = filled () in
  let after = Ct.copy before in
  check_int "copy full" 6 after.Ct.decisions_full;
  after.Ct.decisions_run <- 20;
  after.Ct.decisions_full <- 9;
  after.Ct.decisions_delta <- 8;
  after.Ct.decisions_skipped <- 3;
  after.Ct.routes_damped <- 5;
  after.Ct.takeovers <- 2;
  (* copies are independent *)
  check_int "original untouched" 6 before.Ct.decisions_full;
  let d = Ct.diff ~after ~before in
  check_int "diff run" 9 d.Ct.decisions_run;
  check_int "diff full" 3 d.Ct.decisions_full;
  check_int "diff delta" 4 d.Ct.decisions_delta;
  check_int "diff skipped" 2 d.Ct.decisions_skipped;
  check_int "diff damped" 3 d.Ct.routes_damped;
  check_int "diff takeovers" 1 d.Ct.takeovers

let test_to_fields () =
  let fields = Ct.to_fields (filled ()) in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" k
  in
  check_int "decisions_run field" 11 (get "decisions_run");
  check_int "decisions_full field" 6 (get "decisions_full");
  check_int "decisions_delta field" 4 (get "decisions_delta");
  check_int "decisions_skipped field" 1 (get "decisions_skipped");
  check_int "routes_damped field" 2 (get "routes_damped");
  check_int "hijacks_injected field" 3 (get "hijacks_injected");
  check_int "takeovers field" 1 (get "takeovers");
  check_int "prefixes_moved field" 4 (get "prefixes_moved_on_repartition");
  (* the split accounts for every evaluation *)
  check_int "full+delta+skipped = run" (get "decisions_run")
    (get "decisions_full" + get "decisions_delta" + get "decisions_skipped");
  check_bool "fields unique" true
    (List.length fields
    = List.length (List.sort_uniq compare (List.map fst fields)))

let suite =
  ( "counters",
    [
      Alcotest.test_case "add accumulates" `Quick test_add;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "copy/diff" `Quick test_copy_diff;
      Alcotest.test_case "to_fields" `Quick test_to_fields;
    ] )
