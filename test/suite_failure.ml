(* §2.3.3 robustness: redundant ARRs mask single failures; the blast
   radius of losing a reflector pair is one AP's prefixes under ABRR but
   a whole cluster's visibility under TBRR. *)

open Helpers
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)
let prefix = pfx "20.0.0.0/16"

let settle net =
  (* let hold timers expire and the network re-converge *)
  quiesce net

let test_redundant_arr_masks_failure () =
  let net = N.create (single_ap_abrr ~arrs:[ 0; 1 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  N.fail net ~router:0;
  settle net;
  (* existing routes survive via the redundant ARR *)
  check_bool "old route kept" true (N.best_exit net ~router:4 prefix = Some 2);
  (* a brand-new route still propagates *)
  let p2 = pfx "21.0.0.0/16" in
  inject net ~router:3 (route ~prefix:p2 3);
  settle net;
  check_bool "new route via survivor" true (N.best_exit net ~router:4 p2 = Some 3);
  check_bool "failed ARR holds nothing new" true (N.best net ~router:0 p2 = None)

let test_single_arr_failure_blackholes_new_routes () =
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  N.fail net ~router:0;
  settle net;
  (* with the only ARR gone, reflected state is purged *)
  check_bool "purged" true (N.best net ~router:4 prefix = None);
  (* the injector itself still has its eBGP route *)
  check_bool "injector keeps eBGP" true (N.best net ~router:2 prefix <> None)

let two_ap_net () =
  let part = Part.uniform 2 in
  let cfg =
    C.make ~n_routers:8 ~igp:(flat_igp 8)
      ~scheme:(C.abrr ~partition:part [| [ 0; 1 ]; [ 2; 3 ] |])
      ()
  in
  let net = N.create cfg in
  inject net ~router:4 (route ~prefix 4);
  inject net ~router:5 (route ~prefix:(pfx "200.0.0.0/16") 5);
  quiesce net;
  net

let test_abrr_blast_radius_is_one_ap () =
  let net = two_ap_net () in
  let high = pfx "200.0.0.0/16" in
  (* kill both ARRs of AP 0 *)
  N.fail net ~router:0;
  N.fail net ~router:1;
  settle net;
  check_bool "AP0 prefix lost" true (N.best net ~router:7 prefix = None);
  check_bool "AP1 prefix survives" true (N.best_exit net ~router:7 high = Some 5)

let test_tbrr_blast_radius_is_whole_cluster () =
  let clusters =
    [
      { C.trrs = [ 0; 1 ]; clients = [ 4; 5 ] };
      { C.trrs = [ 2; 3 ]; clients = [ 6; 7 ] };
    ]
  in
  let cfg = C.make ~n_routers:8 ~igp:(flat_igp 8) ~scheme:(C.tbrr clusters) () in
  let net = N.create cfg in
  let high = pfx "200.0.0.0/16" in
  inject net ~router:4 (route ~prefix 4);
  inject net ~router:6 (route ~prefix:high 6);
  quiesce net;
  check_bool "before" true (N.best_exit net ~router:5 high = Some 6);
  (* kill cluster 0's TRR pair: its clients lose all remote visibility *)
  N.fail net ~router:0;
  N.fail net ~router:1;
  settle net;
  check_bool "cluster client loses remote prefix" true
    (N.best net ~router:5 high = None);
  (* the other cluster keeps everything it originates *)
  check_bool "other cluster fine" true (N.best_exit net ~router:7 high = Some 6)

let test_recovery_resyncs () =
  let net = N.create (single_ap_abrr ~arrs:[ 0; 1 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  N.fail net ~router:1;
  settle net;
  N.recover net ~router:1;
  settle net;
  (* the recovered ARR rebuilt its best-AS-level set from client replays *)
  check_bool "set rebuilt" true (R.reflector_set (N.router net 1) prefix <> []);
  check_bool "clients re-learned from it" true
    (R.received_set (N.router net 4) ~from:1 prefix <> []);
  (* and a post-recovery change flows through it *)
  inject net ~router:3 (route ~med:0 ~prefix:(pfx "22.0.0.0/16") 3);
  settle net;
  check_bool "new route" true (N.best_exit net ~router:5 (pfx "22.0.0.0/16") = Some 3)

let test_client_failure_withdraws_its_routes () =
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ()) in
  inject net ~router:2 (route ~med:1 ~prefix 2);
  inject net ~router:3 (route ~med:5 ~prefix 3);
  quiesce net;
  check_bool "best via 2" true (N.best_exit net ~router:5 prefix = Some 2);
  N.fail net ~router:2;
  settle net;
  (* the ARR purges router 2's advert; everyone falls back to router 3 *)
  check_bool "fallback" true (N.best_exit net ~router:5 prefix = Some 3)

(* MRAI flush timers cannot be cancelled once scheduled, so they can
   outlive the session (peer purged) or the router (went down) they were
   armed for. Both stale firings must be inert: no ghost session entry,
   no transmission from a down router, and a state that still
   round-trips through the snapshot codec digest-exact. *)

let mrai_abrr_config () =
  C.make ~mrai:(Eventsim.Time.sec 30) ~n_routers:6 ~igp:(flat_igp 6)
    ~scheme:(C.abrr ~partition:(Part.uniform 1) [| [ 0 ] |])
    ()

let roundtrips net cfg =
  match Snapshot.encode net with
  | Error e -> Alcotest.fail ("encode: " ^ e)
  | Ok blob -> (
    let net' = N.create cfg in
    match Snapshot.decode net' blob with
    | Error e -> Alcotest.fail ("decode: " ^ e)
    | Ok () -> (
      match (Snapshot.digest net, Snapshot.digest net') with
      | Ok a, Ok b -> check_bool "digest roundtrip" true (a = b)
      | Error e, _ | _, Error e -> Alcotest.fail ("digest: " ^ e)))

let test_peer_failure_with_flush_armed () =
  let cfg = mrai_abrr_config () in
  let net = N.create cfg in
  (* wave 1 transmits immediately and starts every session's MRAI
     window; the better route at 1 s is suppressed on the ARR's client
     sessions, arming flush timers for ~31 s *)
  inject net ~router:2 (route ~med:5 ~prefix 2);
  N.at_op net (Eventsim.Time.sec 1)
    (N.Inject { router = 3; neighbor = neighbor 3; route = route ~med:0 ~prefix 3 });
  (* the client fails at 2 s: hold timers expire at ~5 s and purge its
     sessions everywhere, long before the armed flushes fire *)
  N.at_op net (Eventsim.Time.sec 2) (N.Fail 4);
  quiesce net;
  (* the stale flush on the ARR must not have re-created a ghost entry
     for the purged session *)
  let arr = R.dump_state (N.router net 0) in
  check_bool "no ghost session for failed peer" false
    (List.exists (fun ss -> ss.R.ss_peer = 4) arr.R.st_sessions);
  (* the surviving clients still got the flushed better route *)
  check_bool "flush delivered to survivors" true
    (N.best_exit net ~router:5 prefix = Some 3);
  check_bool "router 4 is down" false (R.is_up (N.router net 4));
  roundtrips net cfg

let test_own_flush_after_failure_is_inert () =
  let cfg = mrai_abrr_config () in
  let net = N.create cfg in
  let p2 = pfx "21.0.0.0/16" in
  (* router 2's first advert opens its MRAI window; the second prefix at
     1 s is suppressed on its session to the ARR, arming its own flush *)
  inject net ~router:2 (route ~prefix 2);
  N.at_op net (Eventsim.Time.sec 1)
    (N.Inject { router = 2; neighbor = neighbor 2; route = route ~prefix:p2 2 });
  N.at_op net (Eventsim.Time.sec 2) (N.Fail 2);
  quiesce net;
  (* the flush fires at ~31 s on a down router: it must not transmit —
     the suppressed prefix never reaches anyone *)
  check_bool "suppressed prefix never escaped" true (N.best net ~router:5 p2 = None);
  (* and the pre-failure route was withdrawn by the failure itself *)
  check_bool "failed client's routes purged" true (N.best net ~router:5 prefix = None);
  roundtrips net cfg

let test_messages_to_down_router_dropped () =
  let net = N.create (full_mesh_config 4) in
  N.fail net ~router:3;
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  check_bool "others fine" true (N.best_exit net ~router:0 prefix = Some 1);
  check_bool "down router empty" true (N.best net ~router:3 prefix = None);
  check_bool "marked down" false (R.is_up (N.router net 3))

let suite =
  ( "failure",
    [
      Alcotest.test_case "redundant ARR masks failure" `Quick
        test_redundant_arr_masks_failure;
      Alcotest.test_case "single-ARR failure blackholes" `Quick
        test_single_arr_failure_blackholes_new_routes;
      Alcotest.test_case "ABRR blast radius = one AP" `Quick
        test_abrr_blast_radius_is_one_ap;
      Alcotest.test_case "TBRR blast radius = whole cluster" `Quick
        test_tbrr_blast_radius_is_whole_cluster;
      Alcotest.test_case "recovery resyncs" `Quick test_recovery_resyncs;
      Alcotest.test_case "client failure withdraws routes" `Quick
        test_client_failure_withdraws_its_routes;
      Alcotest.test_case "peer failure with MRAI flush armed" `Quick
        test_peer_failure_with_flush_armed;
      Alcotest.test_case "down router's own flush is inert" `Quick
        test_own_flush_after_failure_is_inert;
      Alcotest.test_case "traffic to down router dropped" `Quick
        test_messages_to_down_router_dropped;
    ] )
