(* Bounded model checking over simulator schedules (lib/explore): the
   §2.3 convergence claims checked over every schedule within budget,
   violations delivered as replayable counterexamples. *)

module E = Explore
module G = Abrr_core.Gadgets
module N = Abrr_core.Network

let check_bool = Alcotest.(check bool)

let limits n = { E.default_limits with E.max_states = n }

(* --- TBRR MED gadget: a concrete dispute cycle ---------------------- *)

let test_med_tbrr_dispute_cycle () =
  let sc =
    E.scenario_of_gadget ~check_exits:false (G.med_oscillation G.G_tbrr)
  in
  let r = E.explore ~limits:(limits 5_000) sc in
  (match r.E.verdict with
  | E.Unsafe ({ E.violation = E.Dispute_cycle { stem; period }; _ } as ce) ->
    check_bool "period positive" true (period > 0);
    check_bool "stem non-negative" true (stem >= 0);
    check_bool "schedule reaches the revisit" true
      (List.length ce.E.schedule = stem + period);
    (* determinism guarantee: replaying the schedule from a fresh
       scenario reproduces the violating state digest-exact *)
    check_bool "replay verifies" true
      (E.verify_counterexample sc ~mode:E.Async ce = Ok ())
  | _ -> Alcotest.fail "expected a dispute cycle on med/tbrr");
  (* a cycle's closing edge can in principle be slept by POR, so the
     hunt must also succeed with POR off *)
  match (E.explore ~por:false ~limits:(limits 5_000) sc).E.verdict with
  | E.Unsafe { E.violation = E.Dispute_cycle _; _ } -> ()
  | _ -> Alcotest.fail "no dispute cycle with POR disabled"

let test_topology_tbrr_dispute_cycle () =
  let sc =
    E.scenario_of_gadget ~check_exits:false (G.topology_oscillation G.G_tbrr)
  in
  match (E.explore ~limits:(limits 5_000) sc).E.verdict with
  | E.Unsafe { E.violation = E.Dispute_cycle _; _ } -> ()
  | _ -> Alcotest.fail "expected a dispute cycle on topology/tbrr"

(* --- TBRR path gadget: deflection against the full-mesh reference --- *)

let test_path_tbrr_deflection () =
  let sc = E.scenario_of_gadget (G.path_inefficiency G.G_tbrr) in
  match (E.explore ~limits:(limits 5_000) sc).E.verdict with
  | E.Unsafe { E.violation = E.Exit_mismatch { router; got; reference; _ }; _ }
    ->
    (* §2.3.3: the observer behind the TRR is steered to the far exit *)
    check_bool "observer" true (router = G.observer);
    check_bool "deflected" true (got <> reference);
    check_bool "reference is the near exit" true
      (reference = Some G.near_exit)
  | _ -> Alcotest.fail "expected an exit mismatch on path/tbrr"

(* --- ABRR / full mesh: exhaustive convergence proofs ---------------- *)

let exhausts name g =
  let sc = E.scenario_of_gadget g in
  let r = E.explore ~limits:(limits 50_000) sc in
  (match r.E.verdict with
  | E.Safe { complete; terminal } ->
    check_bool (name ^ " exhausted") true complete;
    check_bool (name ^ " single terminal") true (terminal <> None)
  | E.Unsafe _ -> Alcotest.fail (name ^ ": unexpected violation"));
  r

let test_path_abrr_exhausts () =
  let r = exhausts "path/abrr" (G.path_inefficiency (G.G_abrr 1)) in
  (* the pruning machinery must actually bite, not just be present *)
  check_bool "visited pruning effective" true (r.E.stats.E.pruned_visited > 0);
  check_bool "sleep sets effective" true (r.E.stats.E.pruned_sleep > 0)

let test_path_fm_exhausts () =
  ignore (exhausts "path/full-mesh" (G.path_inefficiency G.G_full_mesh))

let test_terminal_matches_default_run () =
  (* the explorer's single terminal is the one the production scheduler
     reaches — the default run is one of the explored schedules *)
  let sc = E.scenario_of_gadget (G.path_inefficiency (G.G_abrr 1)) in
  let r = E.explore ~limits:(limits 50_000) sc in
  let terminal =
    match r.E.verdict with
    | E.Safe { terminal = Some t; _ } -> t
    | _ -> Alcotest.fail "expected a complete safe verdict"
  in
  let net = sc.E.fresh () in
  ignore (N.run net);
  check_bool "default schedule lands on the proven terminal" true
    (E.terminal_digest net = terminal)

let test_timed_mode_explores_subset () =
  (* Timed ready sets are a subset of Async ready sets, so the timed
     reachable state space cannot be larger *)
  let sc = E.scenario_of_gadget (G.path_inefficiency (G.G_abrr 1)) in
  let a = E.explore ~mode:E.Async ~limits:(limits 50_000) sc in
  let t = E.explore ~mode:E.Timed ~limits:(limits 50_000) sc in
  (match t.E.verdict with
  | E.Safe { complete = true; _ } -> ()
  | _ -> Alcotest.fail "timed exploration should exhaust");
  check_bool "timed visits no more states" true
    (t.E.stats.E.states <= a.E.stats.E.states)

let test_fault_injection_stays_safe () =
  (* one fail/recover choice point anywhere in any schedule: ABRR must
     still violate no invariant (terminal uniqueness is legitimately
     waived — a fault-closed schedule may end elsewhere) *)
  let sc = E.scenario_of_gadget (G.path_inefficiency (G.G_abrr 1)) in
  let r =
    E.explore
      ~limits:{ (limits 50_000) with E.max_faults = 1 }
      sc
  in
  match r.E.verdict with
  | E.Safe { terminal; _ } ->
    check_bool "no single-terminal claim under faults" true (terminal = None)
  | E.Unsafe ce ->
    Alcotest.failf "violation under fault injection: %a" E.pp_violation
      ce.E.violation

(* --- counterexample files ------------------------------------------ *)

let test_ce_roundtrip () =
  let sc =
    E.scenario_of_gadget ~check_exits:false (G.med_oscillation G.G_tbrr)
  in
  match (E.explore ~limits:(limits 5_000) sc).E.verdict with
  | E.Unsafe ce ->
    let t = { E.Ce.meta = [ ("gadget", "med"); ("flavor", "tbrr") ]; ce } in
    (match E.Ce.of_string (E.Ce.to_string t) with
    | Error e -> Alcotest.fail ("roundtrip: " ^ e)
    | Ok t' ->
      check_bool "meta" true (t'.E.Ce.meta = t.E.Ce.meta);
      check_bool "schedule" true (t'.E.Ce.ce.E.schedule = ce.E.schedule);
      check_bool "digest" true
        (t'.E.Ce.ce.E.state_digest = ce.E.state_digest);
      check_bool "violation" true (t'.E.Ce.ce.E.violation = ce.E.violation));
    (match E.Ce.of_string "not a counterexample" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "garbage accepted")
  | _ -> Alcotest.fail "expected a counterexample to round-trip"

(* --- random fair schedules (qcheck) --------------------------------- *)

let gadget_of (med, fm) =
  let flavor = if fm then G.G_full_mesh else G.G_abrr 1 in
  if med then G.med_oscillation flavor else G.path_inefficiency flavor

let default_terminal sc =
  let net = sc.E.fresh () in
  ignore (N.run net);
  E.terminal_digest net

let prop_random_schedule_same_terminal =
  QCheck.Test.make
    ~name:"random fair schedules reach the default scheduler's terminal"
    ~count:25
    QCheck.(triple (int_range 0 99_999) bool bool)
    (fun (seed, med, fm) ->
      let sc = E.scenario_of_gadget (gadget_of (med, fm)) in
      let expected = default_terminal sc in
      let net = sc.E.fresh () in
      match E.random_run ~seed net with
      | Error e -> QCheck.Test.fail_reportf "did not quiesce: %s" e
      | Ok _ -> E.terminal_digest net = expected)

let prop_random_schedule_survives_pause =
  QCheck.Test.make
    ~name:"pausing through the snapshot codec mid-schedule changes nothing"
    ~count:15
    QCheck.(triple (int_range 0 99_999) (int_range 0 12) bool)
    (fun (seed, pause_at, med) ->
      let sc = E.scenario_of_gadget (gadget_of (med, false)) in
      let expected = default_terminal sc in
      let net = sc.E.fresh () in
      (match E.random_run ~seed ~max_steps:pause_at net with
      | Ok _ | Error _ -> ());
      match Snapshot.encode net with
      | Error e -> QCheck.Test.fail_reportf "encode: %s" e
      | Ok blob -> (
        let net' = sc.E.fresh () in
        match Snapshot.decode net' blob with
        | Error e -> QCheck.Test.fail_reportf "decode: %s" e
        | Ok () -> (
          match E.random_run ~seed:(seed + 1) net' with
          | Error e -> QCheck.Test.fail_reportf "did not quiesce: %s" e
          | Ok _ -> E.terminal_digest net' = expected)))

let prop_random_schedule_with_fault_recovers =
  QCheck.Test.make
    ~name:"fail/recover mid-schedule still converges to the default terminal"
    ~count:15
    QCheck.(triple (int_range 0 99_999) (int_range 0 8) bool)
    (fun (seed, pause_at, med) ->
      let sc = E.scenario_of_gadget (gadget_of (med, false)) in
      let expected = default_terminal sc in
      let net = sc.E.fresh () in
      (match E.random_run ~seed ~max_steps:pause_at net with
      | Ok _ | Error _ -> ());
      (* fault a non-injector, non-reflector router mid-run: after
         recovery and resync every fair schedule must still land on the
         unique terminal *)
      let victim = G.observer in
      E.apply net (E.Inject (E.Fail victim));
      E.apply net (E.Inject (E.Recover victim));
      match E.random_run ~seed:(seed + 7) net with
      | Error e -> QCheck.Test.fail_reportf "did not quiesce: %s" e
      | Ok _ -> E.terminal_digest net = expected)

let suite =
  ( "explore",
    [
      Alcotest.test_case "med/tbrr: dispute cycle found and replayable" `Quick
        test_med_tbrr_dispute_cycle;
      Alcotest.test_case "topology/tbrr: dispute cycle found" `Quick
        test_topology_tbrr_dispute_cycle;
      Alcotest.test_case "path/tbrr: deflection found" `Quick
        test_path_tbrr_deflection;
      Alcotest.test_case "path/abrr: state space exhausted" `Quick
        test_path_abrr_exhausts;
      Alcotest.test_case "path/full-mesh: state space exhausted" `Quick
        test_path_fm_exhausts;
      Alcotest.test_case "terminal matches default scheduler" `Quick
        test_terminal_matches_default_run;
      Alcotest.test_case "timed mode explores a subset" `Quick
        test_timed_mode_explores_subset;
      Alcotest.test_case "fault injection stays safe" `Quick
        test_fault_injection_stays_safe;
      Alcotest.test_case "counterexample file round-trip" `Quick
        test_ce_roundtrip;
      QCheck_alcotest.to_alcotest prop_random_schedule_same_terminal;
      QCheck_alcotest.to_alcotest prop_random_schedule_survives_pause;
      QCheck_alcotest.to_alcotest prop_random_schedule_with_fault_recovers;
    ] )
