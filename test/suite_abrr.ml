open Helpers
module N = Abrr_core.Network
module C = Abrr_core.Config
module R = Abrr_core.Router
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

(* 6 routers; ARR for the single AP is router 0 (or 0 and 1). *)

let test_reflection_reaches_all () =
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ()) in
  inject net ~router:3 (route ~prefix 3);
  quiesce net;
  for i = 0 to 5 do
    if i <> 3 then
      check_bool (Printf.sprintf "r%d" i) true (N.best_exit net ~router:i prefix = Some 3)
  done

let test_best_as_level_set () =
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ~med_mode:Bgp.Decision.Per_neighbor_as ()) in
  (* three routes: two from AS 7000 (MED 1 beats MED 9), one from AS 8000 *)
  inject net ~router:2 (route ~asn:7000 ~med:1 ~prefix 2);
  inject net ~router:3 (route ~asn:7000 ~med:9 ~prefix 3);
  inject net ~router:4 (route ~asn:8000 ~med:50 ~prefix 4);
  quiesce net;
  let set = R.reflector_set (N.router net 0) prefix in
  check_int "two best AS-level routes" 2 (List.length set);
  let nhs = List.sort compare (List.map owner_of_route set) in
  check_bool "members" true (nhs = [ 2; 4 ])

let test_client_stores_best_only () =
  (* under always-compare MED (the paper's footnote-1 configuration) a
     client keeps a single route per ARR (§3.4) *)
  let net =
    N.create (single_ap_abrr ~arrs:[ 0 ] ~med_mode:Bgp.Decision.Always_compare ())
  in
  inject net ~router:2 (route ~asn:7000 ~prefix 2);
  inject net ~router:3 (route ~asn:8000 ~prefix 3);
  quiesce net;
  check_int "one per ARR" 1 (List.length (R.received_set (N.router net 5) ~from:0 prefix))

let test_client_stores_per_as_under_med () =
  (* per-neighbour-AS MED requires deterministic-MED storage: one stored
     route per neighbour AS in the advertised set *)
  let net =
    N.create (single_ap_abrr ~arrs:[ 0 ] ~med_mode:Bgp.Decision.Per_neighbor_as ())
  in
  inject net ~router:2 (route ~asn:7000 ~prefix 2);
  inject net ~router:3 (route ~asn:8000 ~prefix 3);
  quiesce net;
  check_int "one per AS" 2 (List.length (R.received_set (N.router net 5) ~from:0 prefix))

let test_client_stores_full_set_when_configured () =
  let cfg = single_ap_abrr ~arrs:[ 0 ] () in
  let cfg = { cfg with C.store_full_sets = true } in
  let net = N.create cfg in
  inject net ~router:2 (route ~asn:7000 ~prefix 2);
  inject net ~router:3 (route ~asn:8000 ~prefix 3);
  quiesce net;
  check_int "full set" 2 (List.length (R.received_set (N.router net 5) ~from:0 prefix))

let test_redundant_arrs_consistent () =
  let net =
    N.create (single_ap_abrr ~arrs:[ 0; 1 ] ~med_mode:Bgp.Decision.Always_compare ())
  in
  inject net ~router:2 (route ~asn:7000 ~prefix 2);
  inject net ~router:3 (route ~asn:8000 ~prefix 3);
  quiesce net;
  let s0 = R.reflector_set (N.router net 0) prefix in
  let s1 = R.reflector_set (N.router net 1) prefix in
  check_int "same size" (List.length s0) (List.length s1);
  (* clients keep one stored route per redundant ARR *)
  let stored r = List.length (R.received_set (N.router net r) ~from:0 prefix)
                 + List.length (R.received_set (N.router net r) ~from:1 prefix) in
  check_int "client stores per ARR" 2 (stored 4)

let test_arr_failure_redundancy () =
  (* with 2 ARRs, clients keep working when one ARR's routes vanish;
     simulate by withdrawing after partitioning is impossible, so instead
     verify both ARRs independently deliver the set *)
  let net = N.create (single_ap_abrr ~arrs:[ 0; 1 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  check_bool "from arr0" true (R.received_set (N.router net 4) ~from:0 prefix <> []);
  check_bool "from arr1" true (R.received_set (N.router net 4) ~from:1 prefix <> [])

let test_partitioned_aps () =
  (* 2 APs with different ARRs; routes land with the right ARR only *)
  let part = Part.uniform 2 in
  let cfg =
    C.make ~n_routers:6 ~igp:(flat_igp 6)
      ~scheme:(C.abrr ~partition:part [| [ 0 ]; [ 1 ] |])
      ()
  in
  let net = N.create cfg in
  let low = pfx "20.0.0.0/16" (* AP 0 *) in
  let high = pfx "200.0.0.0/16" (* AP 1 *) in
  inject net ~router:2 (route ~prefix:low 2);
  inject net ~router:3 (route ~prefix:high 3);
  quiesce net;
  check_bool "arr0 manages low" true (R.reflector_set (N.router net 0) low <> []);
  check_bool "arr0 not high" true (R.reflector_set (N.router net 0) high = []);
  check_bool "arr1 manages high" true (R.reflector_set (N.router net 1) high <> []);
  check_bool "arr1 not low" true (R.reflector_set (N.router net 1) low = []);
  (* all routers still learn both prefixes *)
  check_bool "r4 low" true (N.best_exit net ~router:4 low = Some 2);
  check_bool "r4 high" true (N.best_exit net ~router:4 high = Some 3);
  (* and the ARRs themselves resolve prefixes of the other AP *)
  check_bool "arr0 high" true (N.best_exit net ~router:0 high = Some 3);
  check_bool "arr1 low" true (N.best_exit net ~router:1 low = Some 2)

let test_spanning_prefix_goes_to_both () =
  let part = Part.uniform 2 in
  let cfg =
    C.make ~n_routers:4 ~igp:(flat_igp 4)
      ~scheme:(C.abrr ~partition:part [| [ 0 ]; [ 1 ] |])
      ()
  in
  let net = N.create cfg in
  let span = pfx "0.0.0.0/0" in
  inject net ~router:2 (route ~prefix:span 2);
  quiesce net;
  check_bool "arr0 has it" true (R.reflector_set (N.router net 0) span <> []);
  check_bool "arr1 has it" true (R.reflector_set (N.router net 1) span <> []);
  check_bool "r3 resolves" true (N.best_exit net ~router:3 span = Some 2)

let test_withdraw_empties_set () =
  let net = N.create (single_ap_abrr ~arrs:[ 0; 1 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  N.withdraw net ~router:2 ~neighbor:(neighbor 2) prefix ~path_id:0;
  quiesce net;
  check_bool "set empty" true (R.reflector_set (N.router net 0) prefix = []);
  List.iter (fun e -> check_bool "no route" true (e = None)) (exits net prefix)

let test_arr_is_its_own_client () =
  (* the ARR injects a route itself: internal role passing must deliver
     it to its own reflector function and to everyone else *)
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ()) in
  inject net ~router:0 (route ~prefix 0);
  quiesce net;
  check_bool "set has own route" true (R.reflector_set (N.router net 0) prefix <> []);
  check_bool "others learn" true (N.best_exit net ~router:5 prefix = Some 0)

let test_reflected_marker_present () =
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  match R.received_set (N.router net 4) ~from:0 prefix with
  | [ r ] -> check_bool "marked" true (Bgp.Route.is_reflected r)
  | _ -> Alcotest.fail "expected one stored route"

let test_client_advert_strips_marker () =
  (* when the best route is eBGP-learned the advert into iBGP never
     carries reflection attributes *)
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ()) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  match R.advertised_route (N.router net 2) prefix with
  | Some r ->
    check_bool "not marked" false (Bgp.Route.is_reflected r);
    check_bool "no cluster list" true (Bgp.Route.cluster_list r = [])
  | None -> Alcotest.fail "injector should advertise"

let test_ebgp_route_replacement () =
  let net = N.create (single_ap_abrr ~arrs:[ 0; 1 ] ()) in
  inject net ~router:2 (route ~med:10 ~prefix 2);
  quiesce net;
  inject net ~router:2 (route ~med:3 ~prefix 2);
  quiesce net;
  (match N.best net ~router:4 prefix with
  | Some r -> check_bool "new med" true (Bgp.Route.med r = Some 3)
  | None -> Alcotest.fail "no route");
  check_bool "still one set entry" true
    (List.length (R.reflector_set (N.router net 0) prefix) = 1)

let suite =
  ( "abrr",
    [
      Alcotest.test_case "reflection reaches all clients" `Quick
        test_reflection_reaches_all;
      Alcotest.test_case "best AS-level set" `Quick test_best_as_level_set;
      Alcotest.test_case "clients store best only" `Quick test_client_stores_best_only;
      Alcotest.test_case "per-AS storage under MED" `Quick
        test_client_stores_per_as_under_med;
      Alcotest.test_case "full-set storage mode" `Quick
        test_client_stores_full_set_when_configured;
      Alcotest.test_case "redundant ARRs consistent" `Quick
        test_redundant_arrs_consistent;
      Alcotest.test_case "redundancy delivery" `Quick test_arr_failure_redundancy;
      Alcotest.test_case "address partitioning" `Quick test_partitioned_aps;
      Alcotest.test_case "prefix spanning two APs" `Quick
        test_spanning_prefix_goes_to_both;
      Alcotest.test_case "withdraw empties set" `Quick test_withdraw_empties_set;
      Alcotest.test_case "ARR as its own client" `Quick test_arr_is_its_own_client;
      Alcotest.test_case "reflected marker" `Quick test_reflected_marker_present;
      Alcotest.test_case "client adverts strip reflection" `Quick
        test_client_advert_strips_marker;
      Alcotest.test_case "route replacement" `Quick test_ebgp_route_replacement;
    ] )
