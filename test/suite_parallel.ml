(* The domain pool behind the --jobs flags: order preservation, the
   serial fast path, exception propagation, and the property the bench
   harness leans on — records assembled from pool results are identical
   whatever the job count. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let slist = Alcotest.(list int)

let test_serial_map () =
  check_bool "jobs=1 is List.map" true
    (Parallel.Pool.map (fun x -> x * x) [ 1; 2; 3 ] = [ 1; 4; 9 ]);
  check_bool "default jobs is serial" true
    (Parallel.Pool.map (fun x -> x + 1) [] = []);
  check_bool "recommended >= 1" true (Parallel.Pool.default_jobs () >= 1)

let test_order_preserved () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d keeps input order" jobs)
        true
        (Parallel.Pool.map ~jobs (fun x -> 2 * x) items
        = List.map (fun x -> 2 * x) items))
    [ 1; 2; 4; 7 ]

let test_more_jobs_than_items () =
  check_bool "jobs > n" true
    (Parallel.Pool.map ~jobs:16 String.uppercase_ascii [ "a"; "b" ]
    = [ "A"; "B" ]);
  check_bool "jobs > n, single item" true
    (Parallel.Pool.map ~jobs:8 succ [ 41 ] = [ 42 ]);
  check_int "empty list, many jobs" 0
    (List.length (Parallel.Pool.map ~jobs:8 succ []))

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "failure surfaces at jobs=%d" jobs)
        true
        (try
           ignore
             (Parallel.Pool.map ~jobs
                (fun x -> if x = 5 then failwith "boom" else x)
                (List.init 10 Fun.id));
           false
         with Failure m -> m = "boom"))
    [ 1; 2; 4 ]

(* The determinism contract of the bench harness: fan deterministic sim
   points across the pool, assemble an Emit record in input order, and
   the serialized JSON is byte-identical to the serial run. The points
   here boot real simulated reflectors (lib/abrr_core/session_setup),
   so each worker runs an actual event-driven simulation. *)
let bench_record jobs =
  let module S = Abrr_core.Session_setup in
  let module E = Metrics.Emit in
  let runs =
    Parallel.Pool.map ~jobs
      (fun sessions ->
        let r = S.run (S.spec ~sessions ()) in
        E.run
          ~label:(Printf.sprintf "%d sessions" sessions)
          ~knobs:[ ("sessions", float_of_int sessions) ]
          ~sim_s:(Eventsim.Time.to_sec r.S.boot_time)
          [
            E.metric ~unit_:"msgs" "msgs_processed"
              (float_of_int r.S.messages_processed);
            E.metric ~unit_:"sessions" "established"
              (float_of_int r.S.established);
          ])
      [ 10; 20; 40; 80; 160 ]
  in
  E.to_string (E.record_to_json { E.experiment = "pool_test"; runs })

let test_emit_determinism () =
  let serial = bench_record 1 in
  check_string "jobs=4 record is byte-identical to jobs=1" serial
    (bench_record 4);
  check_string "jobs=2 record is byte-identical to jobs=1" serial
    (bench_record 2)

(* Regression: a mid-loop Domain.spawn failure must not leak the
   domains already spawned — they are joined before the exception
   escapes. We count live wrapped workers with an atomic: by the time
   [map] re-raises, every one that started has finished. *)
let test_spawn_failure_joins () =
  let live = Atomic.make 0 in
  let started = Atomic.make 0 in
  let spawn f =
    if Atomic.fetch_and_add started 1 >= 1 then failwith "spawn denied"
    else
      Domain.spawn (fun () ->
          Atomic.incr live;
          Fun.protect ~finally:(fun () -> Atomic.decr live) f)
  in
  (match
     Parallel.Pool.For_testing.map_with_spawn ~spawn ~jobs:4 succ
       (List.init 32 Fun.id)
   with
  | exception Failure m -> check_string "spawn error surfaced" "spawn denied" m
  | _ -> Alcotest.fail "spawn failure swallowed");
  check_int "no leaked domains after spawn failure" 0 (Atomic.get live);
  check_int "it did try to spawn" 2 (Atomic.get started)

let test_team_rounds () =
  let team = Parallel.Team.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Parallel.Team.shutdown team)
    (fun () ->
      check_int "size" 4 (Parallel.Team.size team);
      let acc = Array.make 4 0 in
      for round = 1 to 50 do
        Parallel.Team.run team (fun slot -> acc.(slot) <- acc.(slot) + round)
      done;
      let expect = 50 * 51 / 2 in
      Array.iteri
        (fun slot v ->
          check_int (Printf.sprintf "slot %d ran every round" slot) expect v)
        acc)

let test_team_error_propagation () =
  let team = Parallel.Team.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> Parallel.Team.shutdown team)
    (fun () ->
      let finished = Array.make 3 false in
      (* two slots fail; the lowest slot's exception wins, and the
         healthy slot still completes before the raise *)
      (match
         Parallel.Team.run team (fun slot ->
             if slot <= 1 then failwith (Printf.sprintf "slot %d" slot)
             else finished.(slot) <- true)
       with
      | exception Failure m -> check_string "lowest slot wins" "slot 0" m
      | () -> Alcotest.fail "errors swallowed");
      check_bool "healthy slot completed" true finished.(2);
      (* the team survives a failing round *)
      let ok = Atomic.make 0 in
      Parallel.Team.run team (fun _ -> Atomic.incr ok);
      check_int "reusable after error" 3 (Atomic.get ok))

let test_team_edges () =
  (match Parallel.Team.create ~workers:(-1) with
  | exception Invalid_argument _ -> ()
  | t ->
    Parallel.Team.shutdown t;
    Alcotest.fail "negative workers accepted");
  let solo = Parallel.Team.create ~workers:0 in
  let hits = ref 0 in
  Parallel.Team.run solo (fun slot ->
      check_int "solo slot" 0 slot;
      incr hits);
  check_int "workers=0 runs on caller" 1 !hits;
  Parallel.Team.shutdown solo;
  Parallel.Team.shutdown solo;
  (* idempotent *)
  match Parallel.Team.run solo (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "run after shutdown accepted"

let prop_map_is_list_map =
  QCheck.Test.make ~name:"pool map = List.map for any jobs" ~count:100
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, l) ->
      Parallel.Pool.map ~jobs (fun x -> (x * 31) lxor 5) l
      = List.map (fun x -> (x * 31) lxor 5) l)

let suite =
  ( "parallel",
    [
      Alcotest.test_case "serial fast path" `Quick test_serial_map;
      Alcotest.test_case "order preserved" `Quick test_order_preserved;
      Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
      Alcotest.test_case "emit-record determinism" `Quick test_emit_determinism;
      Alcotest.test_case "spawn failure leaks no domains" `Quick
        test_spawn_failure_joins;
      Alcotest.test_case "team: lockstep rounds" `Quick test_team_rounds;
      Alcotest.test_case "team: error propagation" `Quick
        test_team_error_propagation;
      Alcotest.test_case "team: edge cases" `Quick test_team_edges;
      QCheck_alcotest.to_alcotest prop_map_is_list_map;
    ] )
