(* The domain pool behind the --jobs flags: order preservation, the
   serial fast path, exception propagation, and the property the bench
   harness leans on — records assembled from pool results are identical
   whatever the job count. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let slist = Alcotest.(list int)

let test_serial_map () =
  check_bool "jobs=1 is List.map" true
    (Parallel.Pool.map (fun x -> x * x) [ 1; 2; 3 ] = [ 1; 4; 9 ]);
  check_bool "default jobs is serial" true
    (Parallel.Pool.map (fun x -> x + 1) [] = []);
  check_bool "recommended >= 1" true (Parallel.Pool.default_jobs () >= 1)

let test_order_preserved () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d keeps input order" jobs)
        true
        (Parallel.Pool.map ~jobs (fun x -> 2 * x) items
        = List.map (fun x -> 2 * x) items))
    [ 1; 2; 4; 7 ]

let test_more_jobs_than_items () =
  check_bool "jobs > n" true
    (Parallel.Pool.map ~jobs:16 String.uppercase_ascii [ "a"; "b" ]
    = [ "A"; "B" ]);
  check_bool "jobs > n, single item" true
    (Parallel.Pool.map ~jobs:8 succ [ 41 ] = [ 42 ]);
  check_int "empty list, many jobs" 0
    (List.length (Parallel.Pool.map ~jobs:8 succ []))

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "failure surfaces at jobs=%d" jobs)
        true
        (try
           ignore
             (Parallel.Pool.map ~jobs
                (fun x -> if x = 5 then failwith "boom" else x)
                (List.init 10 Fun.id));
           false
         with Failure m -> m = "boom"))
    [ 1; 2; 4 ]

(* The determinism contract of the bench harness: fan deterministic sim
   points across the pool, assemble an Emit record in input order, and
   the serialized JSON is byte-identical to the serial run. The points
   here boot real simulated reflectors (lib/abrr_core/session_setup),
   so each worker runs an actual event-driven simulation. *)
let bench_record jobs =
  let module S = Abrr_core.Session_setup in
  let module E = Metrics.Emit in
  let runs =
    Parallel.Pool.map ~jobs
      (fun sessions ->
        let r = S.run (S.spec ~sessions ()) in
        E.run
          ~label:(Printf.sprintf "%d sessions" sessions)
          ~knobs:[ ("sessions", float_of_int sessions) ]
          ~sim_s:(Eventsim.Time.to_sec r.S.boot_time)
          [
            E.metric ~unit_:"msgs" "msgs_processed"
              (float_of_int r.S.messages_processed);
            E.metric ~unit_:"sessions" "established"
              (float_of_int r.S.established);
          ])
      [ 10; 20; 40; 80; 160 ]
  in
  E.to_string (E.record_to_json { E.experiment = "pool_test"; runs })

let test_emit_determinism () =
  let serial = bench_record 1 in
  check_string "jobs=4 record is byte-identical to jobs=1" serial
    (bench_record 4);
  check_string "jobs=2 record is byte-identical to jobs=1" serial
    (bench_record 2)

let prop_map_is_list_map =
  QCheck.Test.make ~name:"pool map = List.map for any jobs" ~count:100
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, l) ->
      Parallel.Pool.map ~jobs (fun x -> (x * 31) lxor 5) l
      = List.map (fun x -> (x * 31) lxor 5) l)

let suite =
  ( "parallel",
    [
      Alcotest.test_case "serial fast path" `Quick test_serial_map;
      Alcotest.test_case "order preserved" `Quick test_order_preserved;
      Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
      Alcotest.test_case "emit-record determinism" `Quick test_emit_determinism;
      QCheck_alcotest.to_alcotest prop_map_is_list_map;
    ] )
