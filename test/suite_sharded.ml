(* Eventsim.Sharded / Network.Sharded: safe-horizon arithmetic, the
   conservative-window engine on toy programs (determinism, cross-shard
   FIFO, lookahead-violation detection, stall accounting), the shard
   plan (AP colocation, clamping, zero-delay rejection), and the
   headline contract — a sharded network run is digest-identical to the
   serial run, over fixed points and a qcheck sweep with MRAI and
   fail/recover schedules. *)

module C = Abrr_core.Config
module N = Abrr_core.Network
module Sim = Eventsim.Sim
module ES = Eventsim.Sharded
module Time = Eventsim.Time
module S = Snapshot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_digest net =
  match S.digest net with
  | Ok d -> d
  | Error e -> Alcotest.failf "digest failed: %s" e

(* ------------------------------------------------------------------ *)
(* Safe-horizon arithmetic *)

let test_horizon () =
  check_int "plain sum" 15 (ES.horizon ~next:5 ~lookahead:10);
  check_int "zero next" 7 (ES.horizon ~next:0 ~lookahead:7);
  check_int "overflow clamps" max_int (ES.horizon ~next:(max_int - 3) ~lookahead:10);
  check_int "max lookahead clamps" max_int (ES.horizon ~next:1 ~lookahead:max_int);
  check_int "exact fit" max_int (ES.horizon ~next:(max_int - 10) ~lookahead:10)

let test_create_rejects () =
  let master = Sim.create_reified () in
  let reject name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted" name
  in
  reject "zero lookahead" (fun () ->
      ES.create ~master ~shards:2 ~lookahead:0 ~owner:(fun _ -> 0)
        ~exec:(fun ~shard:_ _ -> ())
        ());
  reject "negative lookahead" (fun () ->
      ES.create ~master ~shards:2 ~lookahead:(-5) ~owner:(fun _ -> 0)
        ~exec:(fun ~shard:_ _ -> ())
        ());
  reject "zero shards" (fun () ->
      ES.create ~master ~shards:0 ~lookahead:10 ~owner:(fun _ -> 0)
        ~exec:(fun ~shard:_ _ -> ())
        ())

(* ------------------------------------------------------------------ *)
(* Toy programs over the raw engine.

   Payload = node * 100 + hops. A firing node with hops > 0 schedules
   itself (local delay) and its successor ring neighbour at a delay
   picked by whether the hop crosses a shard boundary — the same
   program runs serially and sharded, so the master trace sink must
   record the exact same stream. *)

let toy_nodes = 4

let toy_shard_of k node = node * k / toy_nodes

let toy_cross_delay = 50
let toy_local_delay = 3

(* One shared step function; [schedule] abstracts over serial/sharded. *)
let toy_step ~k ~schedule p =
  let node = p / 100 and hops = p mod 100 in
  if hops > 0 then begin
    let succ_node = (node + 1) mod toy_nodes in
    let delay target =
      if toy_shard_of k target <> toy_shard_of k node then toy_cross_delay
      else toy_local_delay
    in
    schedule ~kind:1 ~actor:node ~detail:hops ~delay:(delay node)
      ((node * 100) + (hops - 1));
    schedule ~kind:2 ~actor:succ_node ~detail:hops ~delay:(delay succ_node)
      ((succ_node * 100) + (hops - 1))
  end

let toy_seed sim =
  for node = 0 to toy_nodes - 1 do
    Sim.schedule_at sim ~kind:3 ~actor:node ~time:(node * 2)
      ((node * 100) + 5)
  done

let toy_serial () =
  let sim = Sim.create_reified () in
  let sink = Sim.Trace.make ~capacity:4096 ~sample_every:1 () in
  Sim.set_sink sim sink;
  Sim.set_exec sim (fun p ->
      toy_step ~k:1 ~schedule:(fun ~kind ~actor ~detail ~delay q ->
          Sim.schedule sim ~kind ~actor ~detail ~delay q)
        p);
  toy_seed sim;
  ignore (Sim.run sim);
  (sim, sink)

(* NB: [k] here fixes the *delay pattern* (which hops count as cross);
   [shards] is how many shards actually execute it. Equal for the
   determinism tests; the serial reference replays pattern [k] on one
   queue. *)
let toy_serial_pattern k =
  let sim = Sim.create_reified () in
  let sink = Sim.Trace.make ~capacity:4096 ~sample_every:1 () in
  Sim.set_sink sim sink;
  Sim.set_exec sim (fun p ->
      toy_step ~k ~schedule:(fun ~kind ~actor ~detail ~delay q ->
          Sim.schedule sim ~kind ~actor ~detail ~delay q)
        p);
  toy_seed sim;
  ignore (Sim.run sim);
  (sim, sink)

let toy_sharded k =
  let master = Sim.create_reified () in
  let sink = Sim.Trace.make ~capacity:4096 ~sample_every:1 () in
  Sim.set_sink master sink;
  toy_seed master;
  let engine = ref None in
  let eng =
    ES.create ~master ~shards:k ~lookahead:toy_cross_delay
      ~owner:(fun p -> toy_shard_of k (p / 100))
      ~exec:(fun ~shard p ->
        let eng = Option.get !engine in
        toy_step ~k
          ~schedule:(fun ~kind ~actor ~detail ~delay q ->
            ES.schedule eng ~shard ~kind ~actor ~detail ~delay q)
          p)
      ()
  in
  engine := Some eng;
  let outcome = ES.run eng in
  ES.shutdown eng;
  (master, sink, outcome, ES.stats eng)

let entries_of sink =
  List.map
    (fun (e : Sim.Trace.entry) ->
      (e.Sim.Trace.time, e.Sim.Trace.kind, e.Sim.Trace.actor,
       e.Sim.Trace.depth, e.Sim.Trace.detail))
    (Sim.Trace.entries sink)

let test_toy_determinism () =
  List.iter
    (fun k ->
      let ssim, ssink = toy_serial_pattern k in
      let master, msink, outcome, stats = toy_sharded k in
      check_bool (Printf.sprintf "k=%d quiescent" k) true (outcome = Sim.Quiescent);
      check_int
        (Printf.sprintf "k=%d processed" k)
        (Sim.events_processed ssim)
        (Sim.events_processed master);
      check_int (Printf.sprintf "k=%d clock" k) (Sim.now ssim) (Sim.now master);
      check_int
        (Printf.sprintf "k=%d next_seq" k)
        (Sim.next_seq ssim) (Sim.next_seq master);
      check_int (Printf.sprintf "k=%d pending" k) 0 (Sim.pending master);
      check_bool
        (Printf.sprintf "k=%d identical event stream" k)
        true
        (entries_of ssink = entries_of msink);
      check_int (Printf.sprintf "k=%d stats.shards" k) k stats.ES.shards;
      if k > 1 then
        check_bool
          (Printf.sprintf "k=%d crossed the boundary" k)
          true (stats.ES.cross_events > 0))
    [ 1; 2; 4 ]

(* Cross-shard deliveries keep their scheduling (FIFO) order: one event
   on shard 0 emits three messages to shard 1 at the same arrival time;
   they must execute in emission order. *)
let test_cross_shard_fifo () =
  let master = Sim.create_reified () in
  let sink = Sim.Trace.make ~sample_every:1 () in
  Sim.set_sink master sink;
  Sim.schedule_at master ~kind:9 ~actor:0 ~time:0 0;
  let engine = ref None in
  let eng =
    ES.create ~master ~shards:2 ~lookahead:10
      ~owner:(fun p -> if p = 0 then 0 else 1)
      ~exec:(fun ~shard p ->
        if p = 0 then
          List.iter
            (fun d ->
              ES.schedule (Option.get !engine) ~shard ~kind:1 ~actor:1
                ~detail:d ~delay:10 (100 + d))
            [ 1; 2; 3 ])
      ()
  in
  engine := Some eng;
  ignore (ES.run eng);
  ES.shutdown eng;
  let details = List.map (fun (e : Sim.Trace.entry) -> e.Sim.Trace.detail)
      (Sim.Trace.entries sink)
  in
  check_bool "emission order preserved" true (details = [ 0; 1; 2; 3 ]);
  check_int "all routed cross-shard" 3 (ES.stats eng).ES.cross_events

let test_lookahead_violation_detected () =
  let master = Sim.create_reified () in
  Sim.schedule_at master ~time:0 0;
  let engine = ref None in
  let eng =
    ES.create ~master ~shards:2 ~lookahead:100
      ~owner:(fun p -> if p = 0 then 0 else 1)
      ~exec:(fun ~shard p ->
        if p = 0 then
          (* delay 10 < lookahead 100: lands inside the window *)
          ES.schedule (Option.get !engine) ~shard ~delay:10 1)
      ()
  in
  engine := Some eng;
  (match ES.run eng with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "lookahead violation not detected");
  ES.shutdown eng

let test_schedule_guards () =
  let master = Sim.create_reified () in
  let eng =
    ES.create ~master ~shards:2 ~lookahead:10
      ~owner:(fun p -> p mod 2)
      ~exec:(fun ~shard:_ _ -> ())
      ()
  in
  (* outside event execution *)
  (match ES.schedule eng ~shard:0 ~delay:5 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "schedule outside exec accepted");
  ES.shutdown eng;
  let master2 = Sim.create_reified () in
  Sim.schedule_at master2 ~time:0 0;
  let engine = ref None in
  let eng2 =
    ES.create ~master:master2 ~shards:2 ~lookahead:10
      ~owner:(fun p -> if p >= 100 then 99 else p mod 2)
      ~exec:(fun ~shard p ->
        if p = 0 then ES.schedule (Option.get !engine) ~shard ~delay:10 100)
      ()
  in
  engine := Some eng2;
  (match ES.run eng2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range owner accepted");
  ES.shutdown eng2

(* The window is bounded by the *global* minimum pending time — a shard
   whose next event (an MRAI-style deadline far in the future) lies
   beyond the horizon sits the window out and is counted as stalled. *)
let test_stall_and_windows () =
  let master = Sim.create_reified () in
  (* shard 0: a chain at t=0,3,6,...; shard 1: nothing until t=1000 *)
  Sim.schedule_at master ~time:0 5;
  (* node 0 hops 5, stays local *)
  Sim.schedule_at master ~time:1000 101;
  let engine = ref None in
  let eng =
    ES.create ~master ~shards:2 ~lookahead:10
      ~owner:(fun p -> if p >= 100 then 1 else 0)
      ~exec:(fun ~shard p ->
        if p < 100 && p > 0 then
          ES.schedule (Option.get !engine) ~shard ~delay:3 (p - 1))
      ()
  in
  engine := Some eng;
  let outcome = ES.run eng in
  ES.shutdown eng;
  let stats = ES.stats eng in
  check_bool "quiescent" true (outcome = Sim.Quiescent);
  check_int "all processed" 7 (Sim.events_processed master);
  check_bool "multiple windows" true (stats.ES.windows >= 2);
  check_bool "far-future shard stalled" true (stats.ES.stalls >= 1);
  check_int "no cross traffic" 0 stats.ES.cross_events

(* ------------------------------------------------------------------ *)
(* Deterministic network workloads (as in suite_snapshot) *)

let prefixes =
  (* spread across the address space so a multi-AP partition actually
     splits them *)
  Array.init 8 (fun i -> Helpers.pfx (Printf.sprintf "%d.%d.0.0/16" (8 + (i * 30)) i))

let mk_ops ~n ~seed ~count =
  let state = ref ((seed * 2) + 1) in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  let ops =
    List.init count (fun k ->
        let t = Time.ms (40 * (k + 1)) in
        let router = rand n in
        let prefix = prefixes.(rand (Array.length prefixes)) in
        let op =
          if rand 4 = 0 then
            N.Withdraw
              { router; neighbor = Helpers.neighbor router; prefix; path_id = 0 }
          else
            N.Inject
              {
                router;
                neighbor = Helpers.neighbor router;
                route = Helpers.route ~asn:(7000 + rand 4) ~prefix router;
              }
        in
        (t, op))
  in
  let victim = rand (n - 1) + 1 in
  ops
  @ [
      (Time.ms (40 * (count / 2)), N.Fail victim);
      (Time.ms (40 * count), N.Recover victim);
    ]

let multi_ap_abrr ?mrai n =
  C.make ?mrai ~n_routers:n ~igp:(Helpers.flat_igp n)
    ~scheme:
      (C.abrr
         ~partition:(Abrr_core.Partition.uniform 4)
         [| [ 0 ]; [ 2 ]; [ 4 ]; [ 6 ] |])
    ()

let schemes =
  [
    ("full-mesh", fun () -> Helpers.full_mesh_config 8);
    ("full-mesh+mrai", fun () -> Helpers.full_mesh_config ~mrai:(Time.ms 500) 8);
    ("abrr-4ap", fun () -> multi_ap_abrr 8);
    ("abrr-4ap+mrai", fun () -> multi_ap_abrr ~mrai:(Time.ms 400) 8);
    ( "tbrr",
      fun () ->
        C.make ~n_routers:8 ~igp:(Helpers.flat_igp 8)
          ~scheme:
            (C.tbrr
               [
                 { C.trrs = [ 0; 1 ]; clients = [ 2; 3 ] };
                 { C.trrs = [ 4 ]; clients = [ 5; 6; 7 ] };
               ])
          () );
  ]

let prepare cfg ops =
  let net = N.create cfg in
  List.iter (fun (t, op) -> N.at_op net t op) ops;
  net

let serial_quiesce net =
  match N.run ~max_events:2_000_000 net with
  | Sim.Quiescent -> ()
  | o -> Alcotest.failf "serial run did not converge: %a" Sim.pp_outcome o

let sharded_quiesce net ~jobs =
  match N.Sharded.run ~max_events:2_000_000 net ~jobs with
  | Sim.Quiescent, stats -> stats
  | o, _ -> Alcotest.failf "sharded run did not converge: %a" Sim.pp_outcome o

let state_fingerprint net =
  ( ok_digest net,
    Sim.events_processed (N.sim net),
    Sim.now (N.sim net),
    N.best_changes net,
    Abrr_core.Counters.to_fields (N.total_counters net) )

(* The headline contract on a fixed point: digests, processed counts,
   clocks, Loc-RIB change counts and every measurement counter agree. *)
let sharded_equals_serial ~scheme_i ~seed ~jobs () =
  let cfg () = (snd (List.nth schemes scheme_i)) () in
  let ops = mk_ops ~n:8 ~seed ~count:28 in
  let serial = prepare (cfg ()) ops in
  serial_quiesce serial;
  let sharded = prepare (cfg ()) ops in
  let stats = sharded_quiesce sharded ~jobs in
  check_int "stats.shards" jobs stats.N.Sharded.shards;
  if state_fingerprint serial <> state_fingerprint sharded then
    Alcotest.failf "sharded(jobs=%d) diverged from serial on %s/seed=%d"
      jobs (fst (List.nth schemes scheme_i)) seed

let test_network_jobs2 = sharded_equals_serial ~scheme_i:2 ~seed:42 ~jobs:2
let test_network_jobs4_mrai = sharded_equals_serial ~scheme_i:3 ~seed:7 ~jobs:4
let test_network_jobs2_tbrr = sharded_equals_serial ~scheme_i:4 ~seed:9 ~jobs:2

(* Trace sinks observe the same stream: sampling countdown, ring
   wraparound and queue depths included. *)
let test_sink_equality () =
  let mk () =
    let net = prepare (multi_ap_abrr 8) (mk_ops ~n:8 ~seed:5 ~count:24) in
    let sink = Sim.Trace.make ~capacity:64 ~sample_every:3 () in
    Sim.set_sink (N.sim net) sink;
    (net, sink)
  in
  let serial, ssink = mk () in
  serial_quiesce serial;
  let sharded, msink = mk () in
  ignore (sharded_quiesce sharded ~jobs:2);
  check_bool "sink dumps identical" true
    (Sim.Trace.dump ssink = Sim.Trace.dump msink)

(* Probe firing counts match serially (barrier granularity changes when
   a probe runs, never how often) — with the runtime invariant checker
   as the probe, which also proves barrier states are consistent. *)
let test_probe_and_invariants () =
  let ops = mk_ops ~n:8 ~seed:13 ~count:24 in
  let count_fires net =
    let fires = ref 0 in
    Sim.set_probe (N.sim net) ~every:97 (fun () -> incr fires);
    fires
  in
  let serial = prepare (multi_ap_abrr 8) ops in
  let sf = count_fires serial in
  serial_quiesce serial;
  let sharded = prepare (multi_ap_abrr 8) ops in
  let mf = count_fires sharded in
  ignore (sharded_quiesce sharded ~jobs:2);
  check_int "probe fired equally often" !sf !mf;
  check_bool "probes fired at all" true (!sf > 0);
  (* and the real invariant checker holds at barriers *)
  let checked = prepare (multi_ap_abrr 8) ops in
  Verify.Invariant.install ~every:500 checked;
  ignore (sharded_quiesce checked ~jobs:2);
  Verify.Invariant.check_now checked;
  Verify.Invariant.uninstall checked

(* Digest sequence at barriers: each barrier state must equal the state
   of a fresh serial run paused at the same processed count. *)
let test_barrier_digest_sequence () =
  let ops = mk_ops ~n:8 ~seed:21 ~count:20 in
  let sharded = prepare (multi_ap_abrr 8) ops in
  let samples = ref [] in
  let tick = ref 0 in
  (match
     N.Sharded.run ~max_events:2_000_000 sharded ~jobs:2
       ~on_barrier:(fun () ->
         incr tick;
         if !tick mod 7 = 0 then
           samples :=
             (Sim.events_processed (N.sim sharded), ok_digest sharded)
             :: !samples)
   with
  | Sim.Quiescent, _ -> ()
  | o, _ -> Alcotest.failf "did not converge: %a" Sim.pp_outcome o);
  let samples = List.rev !samples in
  check_bool "collected barrier samples" true (List.length samples >= 2);
  List.iteri
    (fun i (events, digest) ->
      if i < 3 then begin
        let replay = prepare (multi_ap_abrr 8) ops in
        (match N.run ~max_events:events replay with
        | Sim.Event_limit -> ()
        | o -> Alcotest.failf "replay ended early: %a" Sim.pp_outcome o);
        check_string
          (Printf.sprintf "barrier digest @%d events" events)
          digest (ok_digest replay)
      end)
    samples

(* Event_limit has barrier granularity: the run may overshoot, but its
   state equals a serial run limited to the count actually processed. *)
let test_event_limit_contract () =
  let ops = mk_ops ~n:8 ~seed:31 ~count:24 in
  (* calibrate the budget to half the workload's actual event count *)
  let total = prepare (multi_ap_abrr 8) ops in
  serial_quiesce total;
  let budget = max 1 (Sim.events_processed (N.sim total) / 2) in
  let sharded = prepare (multi_ap_abrr 8) ops in
  match N.Sharded.run ~max_events:budget sharded ~jobs:2 with
  | Sim.Event_limit, _ ->
    let m = Sim.events_processed (N.sim sharded) in
    check_bool "processed at least the budget" true (m >= budget);
    let replay = prepare (multi_ap_abrr 8) ops in
    (match N.run ~max_events:m replay with
    | Sim.Event_limit -> ()
    | o -> Alcotest.failf "replay outcome: %a" Sim.pp_outcome o);
    check_string "paused state equals serial at same count" (ok_digest replay)
      (ok_digest sharded);
    (* and resuming serially from the sharded pause converges identically *)
    serial_quiesce sharded;
    serial_quiesce replay;
    check_string "resumed digests equal" (ok_digest replay) (ok_digest sharded)
  | o, _ -> Alcotest.failf "expected Event_limit, got %a" Sim.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_clamps () =
  let cfg = Helpers.full_mesh_config 6 in
  (match N.Sharded.plan cfg ~jobs:0 with
  | Ok p ->
    check_int "jobs=0 -> one shard" 1 p.N.Sharded.shards;
    check_int "single shard: unbounded lookahead" max_int p.N.Sharded.lookahead
  | Error e -> Alcotest.fail e);
  (match N.Sharded.plan cfg ~jobs:100 with
  | Ok p -> check_int "jobs clamped to routers" 6 p.N.Sharded.shards
  | Error e -> Alcotest.fail e);
  match N.Sharded.plan cfg ~jobs:3 with
  | Ok p ->
    check_int "three shards" 3 p.N.Sharded.shards;
    Array.iter
      (fun s -> check_bool "shard in range" true (s >= 0 && s < 3))
      p.N.Sharded.shard_of;
    check_bool "lookahead positive and bounded by hold_time" true
      (p.N.Sharded.lookahead > 0 && p.N.Sharded.lookahead <= N.hold_time)
  | Error e -> Alcotest.fail e

let test_plan_ap_colocation () =
  let arrs = [| [ 0; 5 ]; [ 2 ]; [ 4; 1 ]; [ 6 ] |] in
  let cfg =
    C.make ~n_routers:8 ~igp:(Helpers.flat_igp 8)
      ~scheme:(C.abrr ~partition:(Abrr_core.Partition.uniform 4) arrs)
      ()
  in
  match N.Sharded.plan cfg ~jobs:2 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Array.iteri
      (fun ap routers ->
        match routers with
        | [] -> ()
        | first :: rest ->
          List.iter
            (fun r ->
              check_int
                (Printf.sprintf "AP %d ARRs colocated" ap)
                p.N.Sharded.shard_of.(first) p.N.Sharded.shard_of.(r))
            rest)
      arrs

let test_plan_first_ap_wins () =
  (* router 1 serves both APs; it stays with AP 0's shard *)
  let cfg =
    C.make ~n_routers:4 ~igp:(Helpers.flat_igp 4)
      ~scheme:
        (C.abrr ~partition:(Abrr_core.Partition.uniform 2) [| [ 0; 1 ]; [ 1; 3 ] |])
      ()
  in
  match N.Sharded.plan cfg ~jobs:2 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check_int "router 1 on AP 0's shard" p.N.Sharded.shard_of.(0)
      p.N.Sharded.shard_of.(1);
    check_int "AP 1's other ARR on shard 1" 1 p.N.Sharded.shard_of.(3)

let test_plan_zero_delay_rejected () =
  let cfg =
    C.make ~link_delay:(fun _ _ -> 0) ~n_routers:4 ~igp:(Helpers.flat_igp 4)
      ~scheme:C.Full_mesh ()
  in
  (match N.Sharded.plan cfg ~jobs:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero link delay accepted for 2 shards");
  (* one shard never crosses a boundary, so it stays legal *)
  match N.Sharded.plan cfg ~jobs:1 with
  | Ok p -> check_int "one shard fine" 1 p.N.Sharded.shards
  | Error e -> Alcotest.fail e

let test_sharded_run_guards () =
  (* hooks are closures run from worker domains: rejected *)
  let net = prepare (multi_ap_abrr 8) (mk_ops ~n:8 ~seed:3 ~count:8) in
  N.on_best_change net (fun _ _ _ -> ());
  (match N.Sharded.run net ~jobs:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hooks accepted under sharded run");
  (* a pending Thunk has no owner: rejected *)
  let net2 = prepare (multi_ap_abrr 8) [] in
  N.at net2 (Time.ms 5) (fun () -> ());
  (match N.Sharded.run net2 ~jobs:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pending Thunk accepted under sharded run")

(* ------------------------------------------------------------------ *)
(* Property: sharded(jobs = k) = serial, over random seed / scheme / k,
   schedules including MRAI timers and a fail/recover pair. *)

let sharded_matches_serial (seed, scheme_i, k_i) =
  let jobs = [| 1; 2; 4 |].(k_i) in
  let cfg () = (snd (List.nth schemes (scheme_i mod List.length schemes))) () in
  let ops = mk_ops ~n:8 ~seed ~count:20 in
  let serial = prepare (cfg ()) ops in
  serial_quiesce serial;
  let sharded = prepare (cfg ()) ops in
  ignore (sharded_quiesce sharded ~jobs);
  state_fingerprint serial = state_fingerprint sharded

let prop_sharded =
  QCheck.Test.make ~name:"sharded(jobs=k) = serial (any seed/scheme/k)"
    ~count:10
    QCheck.(
      triple (int_bound 999) (int_bound (List.length schemes - 1))
        (int_bound 2))
    sharded_matches_serial

let suite =
  ( "sharded",
    [
      Alcotest.test_case "safe-horizon arithmetic" `Quick test_horizon;
      Alcotest.test_case "engine creation guards" `Quick test_create_rejects;
      Alcotest.test_case "toy program determinism (k=1,2,4)" `Quick
        test_toy_determinism;
      Alcotest.test_case "cross-shard FIFO order" `Quick test_cross_shard_fifo;
      Alcotest.test_case "lookahead violation detected" `Quick
        test_lookahead_violation_detected;
      Alcotest.test_case "schedule guards" `Quick test_schedule_guards;
      Alcotest.test_case "windows + stalls accounting" `Quick
        test_stall_and_windows;
      Alcotest.test_case "network: jobs=2 digest-identical" `Quick
        test_network_jobs2;
      Alcotest.test_case "network: jobs=4 + MRAI digest-identical" `Quick
        test_network_jobs4_mrai;
      Alcotest.test_case "network: jobs=2 TBRR digest-identical" `Quick
        test_network_jobs2_tbrr;
      Alcotest.test_case "trace sinks identical" `Quick test_sink_equality;
      Alcotest.test_case "probe counts + invariants at barriers" `Quick
        test_probe_and_invariants;
      Alcotest.test_case "barrier digest sequence = serial prefixes" `Quick
        test_barrier_digest_sequence;
      Alcotest.test_case "event-limit pause = serial pause" `Quick
        test_event_limit_contract;
      Alcotest.test_case "plan: clamping + lookahead" `Quick test_plan_clamps;
      Alcotest.test_case "plan: AP ARR colocation" `Quick
        test_plan_ap_colocation;
      Alcotest.test_case "plan: first AP wins" `Quick test_plan_first_ap_wins;
      Alcotest.test_case "plan: zero delay rejected" `Quick
        test_plan_zero_delay_rejected;
      Alcotest.test_case "run guards: hooks + thunks" `Quick
        test_sharded_run_guards;
      QCheck_alcotest.to_alcotest prop_sharded;
    ] )
