(* The paper's central semantic claim (§2.2): in steady state, ABRR
   clients choose exactly what they would have chosen under full-mesh
   iBGP. We check this over randomised networks and route sets, with the
   MED configuration fix of footnote 1 (always-compare). *)

open Helpers
module N = Abrr_core.Network
module C = Abrr_core.Config
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)

(* Deterministic random scenario from a seed. *)
type scenario = {
  n : int;
  aps : int;
  arrs_per_ap : int;
  injections : (int * int * Bgp.Route.t) list;  (* router, neighbor key, route *)
  withdrawals : (int * int * Netaddr.Prefix.t * int) list;
}

let gen_scenario seed =
  let rng = Random.State.make [| seed |] in
  let n = 4 + Random.State.int rng 6 in
  let aps = 1 + Random.State.int rng 3 in
  let arrs_per_ap = 1 + Random.State.int rng 2 in
  let n_prefixes = 1 + Random.State.int rng 4 in
  let prefixes =
    List.init n_prefixes (fun i ->
        Netaddr.Prefix.make
          (Netaddr.Ipv4.of_octets (20 + (i * 40) + Random.State.int rng 30) 0 0 0)
          (12 + Random.State.int rng 10))
  in
  let injections = ref [] in
  let withdrawals = ref [] in
  List.iter
    (fun prefix ->
      let n_routes = 1 + Random.State.int rng 4 in
      for k = 1 to n_routes do
        let router = Random.State.int rng n in
        let asn = 7000 + Random.State.int rng 3 in
        let med = if Random.State.bool rng then Some (Random.State.int rng 20) else None in
        let r = route ~asn ?med ~path_id:k ~prefix (router + (100 * k)) in
        injections := (router, router + (100 * k), r) :: !injections;
        if Random.State.int rng 4 = 0 then
          withdrawals := (router, router + (100 * k), prefix, k) :: !withdrawals
      done)
    prefixes;
  { n; aps; arrs_per_ap; injections = !injections; withdrawals = !withdrawals }

let build_net scenario scheme =
  let cfg =
    C.make ~n_routers:scenario.n
      ~igp:(flat_igp scenario.n)
      ~med_mode:Bgp.Decision.Always_compare ~scheme ()
  in
  let net = N.create cfg in
  List.iter
    (fun (router, k, r) -> N.inject net ~router ~neighbor:(neighbor k) r)
    scenario.injections;
  quiesce net;
  List.iter
    (fun (router, k, prefix, path_id) ->
      N.withdraw net ~router ~neighbor:(neighbor k) prefix ~path_id)
    scenario.withdrawals;
  quiesce net;
  net

let abrr_scheme scenario seed =
  let rng = Random.State.make [| seed * 31 |] in
  (* arbitrary ARR placement: the whole point of §2.3.3 *)
  let arrs =
    Array.init scenario.aps (fun _ ->
        let first = Random.State.int rng scenario.n in
        let rec extras j acc =
          if j >= scenario.arrs_per_ap then acc
          else
            let c = Random.State.int rng scenario.n in
            if List.mem c acc then extras j acc else extras (j + 1) (c :: acc)
        in
        extras 1 [ first ])
  in
  C.abrr ~partition:(Part.uniform scenario.aps) arrs

let prefixes_of scenario =
  List.sort_uniq Netaddr.Prefix.compare
    (List.map (fun (_, _, (r : Bgp.Route.t)) -> r.Bgp.Route.prefix) scenario.injections)

let equivalent seed =
  let scenario = gen_scenario seed in
  let fm = build_net scenario C.Full_mesh in
  let ab = build_net scenario (abrr_scheme scenario seed) in
  List.for_all (fun p -> same_choices fm ab p) (prefixes_of scenario)

(* RCP with full visibility and per-vantage computation must also match
   full mesh at the data-plane routers (the RCP nodes themselves hold no
   routes, so compare only the clients). *)
let rcp_equivalent seed =
  let scenario = gen_scenario seed in
  let fm = build_net scenario C.Full_mesh in
  let rng = Random.State.make [| seed * 17 |] in
  let node = Random.State.int rng scenario.n in
  let rc = build_net scenario (C.rcp [ node ]) in
  List.for_all
    (fun p ->
      List.for_all
        (fun i ->
          i = node
          ||
          let nh net =
            Option.map (fun (r : Bgp.Route.t) -> (Bgp.Route.next_hop r)) (N.best net ~router:i p)
          in
          (* the RCP node injects nothing, so full-mesh routes whose only
             exit is the RCP node itself disappear under RCP *)
          (match nh fm with
          | Some h when C.router_of_loopback (N.config fm) h = Some node -> true
          | _ -> nh fm = nh rc))
        (List.init scenario.n Fun.id))
    (prefixes_of scenario)

let prop_rcp_equals_full_mesh =
  QCheck.Test.make ~name:"RCP steady state == full-mesh (data plane)" ~count:40
    QCheck.(int_bound 100_000)
    rcp_equivalent

let prop_abrr_equals_full_mesh =
  QCheck.Test.make ~name:"ABRR steady state == full-mesh steady state" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed -> equivalent seed)

let test_known_seeds () =
  (* a few fixed seeds as fast regression anchors *)
  List.iter
    (fun seed -> check_bool (Printf.sprintf "seed %d" seed) true (equivalent seed))
    [ 1; 2; 3; 17; 42; 1234 ]

let tbrr_can_differ () =
  (* sanity check of the comparison harness: single-path TBRR does NOT
     always match full-mesh (path inefficiency); find a differing seed *)
  let differs seed =
    let scenario = gen_scenario seed in
    if scenario.n < 5 then false
    else begin
      let fm = build_net scenario C.Full_mesh in
      let clusters =
        [
          { C.trrs = [ 0 ]; clients = List.init (scenario.n - 2) (fun i -> i + 2) };
          { C.trrs = [ 1 ]; clients = [] };
        ]
      in
      let tb = build_net scenario (C.tbrr clusters) in
      not (List.for_all (fun p -> same_choices fm tb p) (prefixes_of scenario))
    end
  in
  let found = List.exists differs (List.init 40 (fun i -> i + 1)) in
  check_bool "some seed differs under TBRR" true found

let suite =
  ( "equivalence",
    [
      Alcotest.test_case "fixed seeds" `Quick test_known_seeds;
      QCheck_alcotest.to_alcotest prop_abrr_equals_full_mesh;
      QCheck_alcotest.to_alcotest prop_rcp_equals_full_mesh;
      Alcotest.test_case "TBRR differs (harness sanity)" `Quick tbrr_can_differ;
    ] )
