(* Whole-system invariants, checked over a mid-size randomized Tier-1
   workload after convergence: the steady state every router reaches
   must be independently re-derivable from the protocol's definitions. *)

module N = Abrr_core.Network
module R = Abrr_core.Router
module C = Abrr_core.Config
module T = Topo.Isp_topo
module RG = Topo.Route_gen

let check_bool = Alcotest.(check bool)

let topo =
  T.generate (T.spec ~pops:6 ~routers_per_pop:6 ~peer_ases:8 ~peering_points_per_as:4 ())

let table = RG.generate topo (RG.spec ~n_prefixes:200 ~seed:31 ())

let converged scheme =
  let cfg =
    T.config ~med_mode:Bgp.Decision.Always_compare ~scheme topo
  in
  let net = N.create cfg in
  RG.inject_all table net;
  (match N.run ~max_events:20_000_000 net with
  | Eventsim.Sim.Quiescent -> ()
  | o -> Alcotest.failf "did not converge: %a" Eventsim.Sim.pp_outcome o);
  net

let abrr_net = lazy (converged (T.abrr_scheme ~aps:4 ~arrs_per_ap:2 topo))
let tbrr_net = lazy (converged (T.tbrr_scheme topo))

let every_router net f =
  for i = 0 to N.router_count net - 1 do
    f i (N.router net i)
  done

let every_prefix f = Array.iter f table.RG.prefixes

let test_no_self_originated_best () =
  (* no router's best route is one it injected itself coming back via
     iBGP: originator-id loop prevention held everywhere *)
  List.iter
    (fun net ->
      let net = Lazy.force net in
      every_router net (fun i _ ->
          every_prefix (fun p ->
              match N.best net ~router:i p with
              | Some r ->
                check_bool "not self-originated reflection" false
                  (Bgp.Route.originator_id r = Some (C.loopback i))
              | None -> ())))
    [ abrr_net; tbrr_net ]

let test_arr_sets_equal_as_level_selection () =
  (* every ARR's advertised set equals an independent steps-1-4 selection
     over the union of what the border routers actually advertise *)
  let net = Lazy.force abrr_net in
  Array.iteri
    (fun idx entries ->
      let p = table.RG.prefixes.(idx) in
      (* independent selection over the eBGP routes as they appear in
         iBGP: next-hop-self applied, after which indistinguishable
         routes co-located on one border router legitimately collapse *)
      let as_advertised =
        List.map
          (fun (e : RG.ebgp_route) ->
            Bgp.Route.update ~next_hop:(C.loopback e.RG.router) e.RG.route)
          entries
      in
      let deduped =
        List.fold_left
          (fun acc r ->
            if List.exists (Bgp.Route.same_path r) acc then acc else r :: acc)
          [] as_advertised
      in
      let expected_count =
        Analysis.Bal.best_as_level_count ~med_mode:Bgp.Decision.Always_compare
          deduped
      in
      every_router net (fun _ r ->
          if R.is_arr r && R.reflector_set r p <> [] then
            check_bool "set size = AS-level selection" true
              (List.length (R.reflector_set r p) = expected_count)))
    table.RG.routes

let test_conservation_of_updates () =
  (* everything transmitted was received, in updates and in bytes *)
  List.iter
    (fun net ->
      let net = Lazy.force net in
      let total = N.total_counters net in
      check_bool "updates conserved" true
        (total.Abrr_core.Counters.updates_transmitted
        = total.Abrr_core.Counters.updates_received);
      check_bool "bytes conserved" true
        (total.Abrr_core.Counters.bytes_transmitted
        = total.Abrr_core.Counters.bytes_received))
    [ abrr_net; tbrr_net ]

let test_forwarding_reaches_an_exit () =
  (* every router holding a route can walk next hops to a border router
     with no loops *)
  List.iter
    (fun net ->
      let net = Lazy.force net in
      every_prefix (fun p ->
          check_bool "loop-free" true (Abrr_core.Anomaly.forwarding_loops net p = [])))
    [ abrr_net; tbrr_net ]

let test_borders_keep_surviving_ebgp_routes () =
  (* step 5: a border router whose eBGP route survives steps 1-4 must
     prefer it over anything iBGP-learned *)
  let net = Lazy.force abrr_net in
  Array.iteri
    (fun idx entries ->
      let p = table.RG.prefixes.(idx) in
      let all_routes = List.map (fun (e : RG.ebgp_route) -> e.RG.route) entries in
      let survivors =
        Bgp.Decision.steps_1_to_4 ~med_mode:Bgp.Decision.Always_compare
          (List.map (fun r -> Bgp.Decision.candidate r) all_routes)
      in
      List.iter
        (fun (e : RG.ebgp_route) ->
          let survives =
            List.exists
              (fun (c : Bgp.Decision.candidate) ->
                Bgp.Route.equal c.Bgp.Decision.route e.RG.route)
              survivors
          in
          if survives then
            match N.best net ~router:e.RG.router p with
            | Some best ->
              check_bool "border keeps its eBGP route" true
                (Netaddr.Ipv4.to_int (Bgp.Route.next_hop best) >= 0xAC10_0000)
            | None -> Alcotest.fail "border lost its route")
        entries)
    table.RG.routes

let test_abrr_equals_full_mesh_at_scale () =
  let fm = converged C.Full_mesh in
  let ab = Lazy.force abrr_net in
  every_prefix (fun p ->
      check_bool "same choices" true (Helpers.same_choices fm ab p))

let suite =
  ( "invariants",
    [
      Alcotest.test_case "no self-originated best" `Quick test_no_self_originated_best;
      Alcotest.test_case "ARR sets = AS-level selection" `Quick
        test_arr_sets_equal_as_level_selection;
      Alcotest.test_case "update conservation" `Quick test_conservation_of_updates;
      Alcotest.test_case "forwarding loop-freedom at scale" `Quick
        test_forwarding_reaches_an_exit;
      Alcotest.test_case "borders keep surviving eBGP routes" `Quick
        test_borders_keep_surviving_ebgp_routes;
      Alcotest.test_case "ABRR == full mesh at scale" `Slow
        test_abrr_equals_full_mesh_at_scale;
    ] )
