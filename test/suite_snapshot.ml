(* lib/snapshot: checkpoint/restore roundtrips, resume-equals-uninterrupted
   (the subsystem's proof obligation, here as a property over random
   pause points), malformed-input rejection, and divergence bisection. *)

module C = Abrr_core.Config
module N = Abrr_core.Network
module Sim = Eventsim.Sim
module Time = Eventsim.Time
module S = Snapshot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_digest net =
  match S.digest net with
  | Ok d -> d
  | Error e -> Alcotest.failf "digest failed: %s" e

(* ------------------------------------------------------------------ *)
(* Deterministic workloads: a seed-derived schedule of reified ops
   (injections, withdrawals, a failure/recovery pair) over the small
   helper networks. Everything goes through [N.at_op] so any event
   boundary is checkpointable. *)

let prefixes = Array.init 8 (fun i -> Helpers.pfx (Printf.sprintf "20.%d.0.0/16" i))

let mk_ops ~n ~seed ~count =
  let state = ref ((seed * 2) + 1) in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  let ops =
    List.init count (fun k ->
        let t = Time.ms (40 * (k + 1)) in
        let router = rand n in
        let prefix = prefixes.(rand (Array.length prefixes)) in
        let op =
          if rand 4 = 0 then
            N.Withdraw
              { router; neighbor = Helpers.neighbor router; prefix; path_id = 0 }
          else
            N.Inject
              {
                router;
                neighbor = Helpers.neighbor router;
                route = Helpers.route ~asn:(7000 + rand 4) ~prefix router;
              }
        in
        (t, op))
  in
  (* One mid-trace crash + cold restart: checkpoints taken while Purge /
     Establish events are pending must restore too. *)
  let victim = rand (n - 1) + 1 in
  ops
  @ [
      (Time.ms (40 * (count / 2)), N.Fail victim);
      (Time.ms (40 * count), N.Recover victim);
    ]

let schemes =
  [
    ("full-mesh", fun () -> Helpers.full_mesh_config 6);
    (* MRAI on: pause points land while flush timers and per-session
       pending sets are live. *)
    ("full-mesh+mrai", fun () -> Helpers.full_mesh_config ~mrai:(Time.ms 500) 6);
    ("abrr", fun () -> Helpers.single_ap_abrr ~n:6 ());
    ( "tbrr",
      fun () ->
        C.make ~n_routers:6 ~igp:(Helpers.flat_igp 6)
          ~scheme:(C.tbrr [ { C.trrs = [ 0; 1 ]; clients = [ 2; 3; 4; 5 ] } ])
          () );
  ]

let scheme_cfg i = (snd (List.nth schemes (i mod List.length schemes))) ()

let prepare cfg ops =
  let net = N.create cfg in
  List.iter (fun (t, op) -> N.at_op net t op) ops;
  net

let run_to_quiescence net =
  match N.run ~max_events:500_000 net with
  | Sim.Quiescent -> ()
  | o -> Alcotest.failf "did not converge: %a" Sim.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Roundtrips *)

let test_roundtrip_quiescent () =
  let cfg = Helpers.full_mesh_config 5 in
  let ops = mk_ops ~n:5 ~seed:11 ~count:20 in
  let net = prepare cfg ops in
  run_to_quiescence net;
  let bytes = match S.encode net with Ok b -> b | Error e -> Alcotest.fail e in
  let net2 = N.create cfg in
  (match S.decode net2 bytes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode failed: %s" e);
  check_string "digest equal" (ok_digest net) (ok_digest net2);
  check_int "events_processed restored"
    (Sim.events_processed (N.sim net))
    (Sim.events_processed (N.sim net2));
  Array.iter
    (fun p -> check_bool "same Loc-RIB choices" true (Helpers.same_choices net net2 p))
    prefixes

let test_roundtrip_midrun () =
  let cfg = Helpers.full_mesh_config 5 in
  let ops = mk_ops ~n:5 ~seed:3 ~count:24 in
  let net = prepare cfg ops in
  ignore (N.run ~max_events:37 net);
  (* a pause point with deliveries, timers and ops still queued *)
  let bytes = match S.encode net with Ok b -> b | Error e -> Alcotest.fail e in
  let net2 = N.create cfg in
  (match S.decode net2 bytes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode failed: %s" e);
  check_string "paused digest equal" (ok_digest net) (ok_digest net2);
  run_to_quiescence net;
  run_to_quiescence net2;
  check_string "finished digest equal" (ok_digest net) (ok_digest net2)

let test_canonical_encoding () =
  (* Two networks driven into the same logical state encode to the same
     bytes — the property [digest] comparisons lean on. *)
  let cfg = Helpers.full_mesh_config 4 in
  let ops = mk_ops ~n:4 ~seed:8 ~count:12 in
  let a = prepare cfg ops and b = prepare cfg ops in
  run_to_quiescence a;
  run_to_quiescence b;
  check_bool "identical bytes" true (S.encode a = S.encode b)

(* ------------------------------------------------------------------ *)
(* Property: for any (seed, scheme, pause point), checkpoint + restore
   + continue ends in exactly the state of an uninterrupted run. *)

let resume_equals_uninterrupted (seed, scheme_i, k) =
  let cfg () = scheme_cfg scheme_i in
  let ops = mk_ops ~n:6 ~seed ~count:24 in
  let plain = prepare (cfg ()) ops in
  run_to_quiescence plain;
  let paused = prepare (cfg ()) ops in
  ignore (N.run ~max_events:(k + 1) paused);
  let bytes =
    match S.encode paused with Ok b -> b | Error e -> Alcotest.fail e
  in
  let resumed = N.create (cfg ()) in
  (match S.decode resumed bytes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode failed: %s" e);
  run_to_quiescence resumed;
  ok_digest resumed = ok_digest plain
  && Sim.events_processed (N.sim resumed) = Sim.events_processed (N.sim plain)
  && Abrr_core.Counters.to_fields (N.total_counters resumed)
     = Abrr_core.Counters.to_fields (N.total_counters plain)

let prop_resume =
  QCheck.Test.make ~name:"resume = uninterrupted (any seed/scheme/pause)"
    ~count:12
    QCheck.(
      triple (int_bound 999) (int_bound (List.length schemes - 1))
        (int_bound 400))
    resume_equals_uninterrupted

(* ------------------------------------------------------------------ *)
(* Thunk rejection *)

let test_thunk_rejected () =
  let cfg = Helpers.full_mesh_config 4 in
  let net = N.create cfg in
  N.at net (Time.ms 10) (fun () -> ());
  match S.encode net with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "encode accepted a pending Thunk closure"

(* ------------------------------------------------------------------ *)
(* Malformed input. The trailer CRC is checked first, so corruptions
   that must exercise the deeper parse paths (bad magic, bad version,
   lying length fields, garbage route bytes) are re-sealed with a valid
   CRC — same reflected CRC-32 as lib/snapshot/codec.ml. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s len =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let reseal s =
  (* recompute the trailer CRC after patching the body *)
  let n = String.length s in
  let c = crc32 s (n - 4) in
  let b = Bytes.of_string s in
  Bytes.set b (n - 4) (Char.chr ((c lsr 24) land 0xff));
  Bytes.set b (n - 3) (Char.chr ((c lsr 16) land 0xff));
  Bytes.set b (n - 2) (Char.chr ((c lsr 8) land 0xff));
  Bytes.set b (n - 1) (Char.chr (c land 0xff));
  Bytes.to_string b

let patch s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let test_corrupt_rejected () =
  let cfg = Helpers.full_mesh_config 4 in
  let ops = mk_ops ~n:4 ~seed:5 ~count:16 in
  let net = prepare cfg ops in
  ignore (N.run ~max_events:25 net);
  let good = match S.encode net with Ok b -> b | Error e -> Alcotest.fail e in
  let n = String.length good in
  let rejects name bytes =
    let fresh = N.create cfg in
    match S.decode fresh bytes with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: corrupt snapshot accepted" name
  in
  (* sanity: the pristine bytes do decode *)
  (match S.decode (N.create cfg) good with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pristine decode failed: %s" e);
  rejects "empty" "";
  rejects "shorter than header" (String.sub good 0 3);
  rejects "truncated" (String.sub good 0 (n - 10));
  rejects "flipped body byte (CRC)" (patch good (n / 2) '\xEE');
  rejects "bad magic" (reseal (patch good 0 'X'));
  rejects "bad version" (reseal (patch good 9 '\xFF'));
  (* the fingerprint length field (u32 right after magic + version) *)
  rejects "lying fingerprint length" (reseal (patch good 10 '\xFF'));
  let fp = S.fingerprint cfg in
  let route_count_off = 10 + 4 + String.length fp in
  rejects "implausible route count" (reseal (patch good route_count_off '\xFF'));
  (* garbage inside the first interned route's UPDATE bytes *)
  rejects "garbage route bytes"
    (reseal (patch (patch good (route_count_off + 10) '\xC3')
               (route_count_off + 11) '\x99'));
  (* wrong-config restore: same bytes, different network shape *)
  let other = Helpers.full_mesh_config 5 in
  (match S.decode (N.create other) good with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "decoded under a mismatched config")

let test_corrupt_never_raises () =
  (* every single-byte corruption must come back as a result, not an
     exception — sweep the whole file *)
  let cfg = Helpers.full_mesh_config 4 in
  let ops = mk_ops ~n:4 ~seed:6 ~count:8 in
  let net = prepare cfg ops in
  ignore (N.run ~max_events:15 net);
  let good = match S.encode net with Ok b -> b | Error e -> Alcotest.fail e in
  for i = 0 to String.length good - 1 do
    let bad = patch good i '\xFF' in
    if bad <> good then
      match S.decode (N.create cfg) bad with
      | Ok () -> Alcotest.failf "byte %d: CRC should have caught this" i
      | Error _ -> ()
      | exception e ->
        Alcotest.failf "byte %d: decode raised %s" i (Printexc.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* Save/load *)

let test_save_load () =
  let cfg = Helpers.full_mesh_config 4 in
  let ops = mk_ops ~n:4 ~seed:9 ~count:12 in
  let net = prepare cfg ops in
  ignore (N.run ~max_events:30 net);
  let path = Filename.temp_file "abrr_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match S.save net ~path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save failed: %s" e);
      let net2 = N.create cfg in
      (match S.load net2 ~path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "load failed: %s" e);
      check_string "digest equal after file roundtrip" (ok_digest net)
        (ok_digest net2));
  match S.load (N.create cfg) ~path:"/nonexistent/abrr.snap" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "load of a missing file succeeded"

let test_segments () =
  let dir = Filename.temp_file "abrr_segs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      check_bool "empty dir" true (S.latest_segment ~dir ~label:"run" = None);
      let touch k =
        let oc = open_out (S.segment_path ~dir ~label:"a/b" k) in
        close_out oc
      in
      touch 0;
      touch 2;
      touch 10;
      match S.latest_segment ~dir ~label:"a/b" with
      | Some (10, path) ->
        check_string "path" (S.segment_path ~dir ~label:"a/b" 10) path
      | other ->
        Alcotest.failf "latest = %s"
          (match other with
          | None -> "None"
          | Some (k, p) -> Printf.sprintf "Some (%d, %s)" k p))

(* ------------------------------------------------------------------ *)
(* Sharded execution x checkpointing *)

(* Pause a sharded run at a barrier, snapshot, restore into a fresh
   network, finish serially — and the mirror image: pause serially,
   restore, finish sharded. Both must land on the uninterrupted serial
   run's digest: snapshots and shard barriers agree on what "the state
   at event k" is. *)
let test_sharded_pause_resume () =
  let cfg () = scheme_cfg 0 in
  let ops = mk_ops ~n:6 ~seed:17 ~count:20 in
  let reference = prepare (cfg ()) ops in
  run_to_quiescence reference;
  let final = ok_digest reference in
  let total = Sim.events_processed (N.sim reference) in
  check_bool "enough events" true (total > 40);
  let budget = total / 2 in
  (* sharded pause -> serial resume *)
  let a = prepare (cfg ()) ops in
  (match N.Sharded.run ~max_events:budget a ~jobs:2 with
  | Sim.Event_limit, _ -> ()
  | o, _ -> Alcotest.failf "sharded pause: %a" Sim.pp_outcome o);
  let bytes =
    match S.encode a with
    | Ok b -> b
    | Error e -> Alcotest.failf "encode at sharded pause: %s" e
  in
  let a' = N.create (cfg ()) in
  (match S.decode a' bytes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode: %s" e);
  run_to_quiescence a';
  check_string "sharded pause, serial resume" final (ok_digest a');
  (* serial pause -> sharded resume *)
  let b = prepare (cfg ()) ops in
  (match N.run ~max_events:budget b with
  | Sim.Event_limit -> ()
  | o -> Alcotest.failf "serial pause: %a" Sim.pp_outcome o);
  let bytes =
    match S.encode b with
    | Ok b -> b
    | Error e -> Alcotest.failf "encode at serial pause: %s" e
  in
  let b' = N.create (cfg ()) in
  (match S.decode b' bytes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode: %s" e);
  (match N.Sharded.run ~max_events:500_000 b' ~jobs:2 with
  | Sim.Quiescent, _ -> ()
  | o, _ -> Alcotest.failf "sharded resume: %a" Sim.pp_outcome o);
  check_string "serial pause, sharded resume" final (ok_digest b')

let with_tmpdir f =
  let dir = Filename.temp_file "abrr_shards" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let mk_paused_net () =
  let cfg () = scheme_cfg 2 in
  let ops = mk_ops ~n:6 ~seed:23 ~count:16 in
  let net = prepare (cfg ()) ops in
  ignore (N.run ~max_events:60 net);
  (net, cfg)

let test_shards_roundtrip () =
  with_tmpdir (fun dir ->
      let net, cfg = mk_paused_net () in
      List.iter
        (fun parts ->
          (match S.Shards.save net ~dir ~label:"rt" ~parts with
          | Ok () -> ()
          | Error e -> Alcotest.failf "save parts=%d: %s" parts e);
          let net2 = N.create (cfg ()) in
          (match S.Shards.load net2 ~dir ~label:"rt" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "load parts=%d: %s" parts e);
          check_string
            (Printf.sprintf "digest equal after %d-part roundtrip" parts)
            (ok_digest net) (ok_digest net2);
          (* and the merged restore resumes exactly like the original *)
          if parts = 3 then begin
            run_to_quiescence net2;
            let net3 = N.create (cfg ()) in
            (match
               S.decode net3 (match S.encode net with Ok b -> b | Error e ->
                 Alcotest.failf "encode: %s" e)
             with
            | Ok () -> ()
            | Error e -> Alcotest.failf "decode: %s" e);
            run_to_quiescence net3;
            check_string "resume from parts = resume from single file"
              (ok_digest net3) (ok_digest net2)
          end)
        [ 1; 3; 6 ];
      match S.Shards.save net ~dir ~label:"rt" ~parts:0 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "parts=0 accepted")

let test_shards_corrupt_part () =
  with_tmpdir (fun dir ->
      let net, cfg = mk_paused_net () in
      (match S.Shards.save net ~dir ~label:"c" ~parts:3 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      (* flip one byte in the middle of part 1: its CRC must fail the
         whole merged load *)
      let path = S.Shards.part_path ~dir ~label:"c" 1 in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len in
      close_in ic;
      let b = Bytes.of_string bytes in
      Bytes.set b (len / 2) (Char.chr (Char.code (Bytes.get b (len / 2)) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      (match S.Shards.load (N.create (cfg ())) ~dir ~label:"c" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "corrupt part accepted");
      (* restore the good bytes, drop a different part entirely *)
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      Sys.remove (S.Shards.part_path ~dir ~label:"c" 2);
      match S.Shards.load (N.create (cfg ())) ~dir ~label:"c" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "missing part accepted")

(* ------------------------------------------------------------------ *)
(* Bisection *)

let test_bisect_pure () =
  let const _ = "A" in
  let step_at j k = if k >= j then "B" else "A" in
  let search = S.Bisect.search in
  check_bool "identical -> None" true
    (search ~lo:0 ~hi:100 ~digest_a:const ~digest_b:const = None);
  check_bool "diverge at lo" true
    (search ~lo:5 ~hi:100 ~digest_a:const ~digest_b:(step_at 3) = Some 5);
  for j = 1 to 20 do
    check_bool "first divergence found" true
      (search ~lo:0 ~hi:100 ~digest_a:const ~digest_b:(step_at j) = Some j)
  done

let test_bisect_simulation () =
  (* A seeded run and a copy with one extra injection spliced in after
     event [fault_at] must bisect to exactly [fault_at]. *)
  let cfg () = Helpers.full_mesh_config 5 in
  let ops = mk_ops ~n:5 ~seed:21 ~count:20 in
  let total =
    let net = prepare (cfg ()) ops in
    run_to_quiescence net;
    Sim.events_processed (N.sim net)
  in
  let digest_run ?(fault_at = -1) k =
    let net = prepare (cfg ()) ops in
    let run_to target =
      let d = target - Sim.events_processed (N.sim net) in
      if d > 0 then ignore (N.run ~max_events:d net)
    in
    if fault_at >= 0 && fault_at <= k then begin
      run_to fault_at;
      Helpers.inject net ~router:0
        (Helpers.route ~asn:7999 ~prefix:(Helpers.pfx "20.200.0.0/16") 0)
    end;
    run_to k;
    ok_digest net
  in
  check_bool "enough events" true (total > 20);
  let fault_at = total / 2 in
  check_bool "no fault -> identical runs" true
    (S.Bisect.search ~lo:0 ~hi:total ~digest_a:(fun k -> digest_run k)
       ~digest_b:(fun k -> digest_run k)
    = None);
  check_bool "fault localized" true
    (S.Bisect.search ~lo:0 ~hi:total ~digest_a:(fun k -> digest_run k)
       ~digest_b:(fun k -> digest_run ~fault_at k)
    = Some fault_at)

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "roundtrip at quiescence" `Quick test_roundtrip_quiescent;
      Alcotest.test_case "roundtrip mid-run" `Quick test_roundtrip_midrun;
      Alcotest.test_case "canonical encoding" `Quick test_canonical_encoding;
      QCheck_alcotest.to_alcotest prop_resume;
      Alcotest.test_case "thunk rejected" `Quick test_thunk_rejected;
      Alcotest.test_case "corruption rejected" `Quick test_corrupt_rejected;
      Alcotest.test_case "corruption never raises" `Quick test_corrupt_never_raises;
      Alcotest.test_case "save/load" `Quick test_save_load;
      Alcotest.test_case "segment files" `Quick test_segments;
      Alcotest.test_case "sharded pause <-> serial resume" `Quick
        test_sharded_pause_resume;
      Alcotest.test_case "multi-part roundtrip" `Quick test_shards_roundtrip;
      Alcotest.test_case "multi-part corruption rejected" `Quick
        test_shards_corrupt_part;
      Alcotest.test_case "bisect (pure)" `Quick test_bisect_pure;
      Alcotest.test_case "bisect (simulation)" `Quick test_bisect_simulation;
    ] )
