open Netaddr
module Part = Abrr_core.Partition

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_uniform () =
  let part = Part.uniform 4 in
  check_int "count" 4 (Part.count part);
  let lo0, hi0 = Part.range part 0 in
  check_bool "starts at 0" true (Ipv4.equal lo0 Ipv4.zero);
  check_bool "quarter" true (Ipv4.to_int hi0 = 0x3FFF_FFFF);
  let lo3, hi3 = Part.range part 3 in
  check_bool "last lo" true (Ipv4.to_int lo3 = 0xC000_0000);
  check_bool "last hi" true (Ipv4.to_int hi3 = 0xFFFF_FFFF)

let test_uniform_non_power_of_two () =
  let part = Part.uniform 3 in
  check_int "count" 3 (Part.count part);
  (* every address belongs to exactly one AP *)
  List.iter
    (fun a ->
      let ap = Part.ap_of_addr part (Ipv4.of_string a) in
      check_bool a true (ap >= 0 && ap < 3))
    [ "0.0.0.0"; "85.85.85.85"; "170.170.170.170"; "255.255.255.255" ]

let test_ap_of_addr_boundaries () =
  let part = Part.uniform 2 in
  check_int "low half" 0 (Part.ap_of_addr part (Ipv4.of_string "127.255.255.255"));
  check_int "high half" 1 (Part.ap_of_addr part (Ipv4.of_string "128.0.0.0"))

let test_aps_of_prefix () =
  let part = Part.uniform 2 in
  check_bool "inside one" true
    (Part.aps_of_prefix part (Prefix.of_string "10.0.0.0/8") = [ 0 ]);
  (* the default route overlaps every AP *)
  check_bool "spans" true
    (Part.aps_of_prefix part (Prefix.of_string "0.0.0.0/0") = [ 0; 1 ]);
  check_bool "in ap" true (Part.prefix_in_ap part 0 (Prefix.of_string "10.0.0.0/8"));
  check_bool "not in ap" false
    (Part.prefix_in_ap part 1 (Prefix.of_string "10.0.0.0/8"))

let test_of_bounds () =
  let part = Part.of_bounds [ Ipv4.zero; Ipv4.of_string "10.0.0.0" ] in
  check_int "count" 2 (Part.count part);
  check_int "below" 0 (Part.ap_of_addr part (Ipv4.of_string "9.255.255.255"));
  check_int "at" 1 (Part.ap_of_addr part (Ipv4.of_string "10.0.0.0"));
  check_bool "rejects non-zero start" true
    (try
       ignore (Part.of_bounds [ Ipv4.of_string "1.0.0.0" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "rejects non-increasing" true
    (try
       ignore (Part.of_bounds [ Ipv4.zero; Ipv4.of_int 5; Ipv4.of_int 5 ]);
       false
     with Invalid_argument _ -> true)

let test_balanced () =
  (* clustered prefixes: balanced bounds should even out the counts *)
  let prefixes =
    List.init 90 (fun i -> Prefix.make (Ipv4.of_octets 20 i 0 0) 24)
    @ List.init 10 (fun i -> Prefix.make (Ipv4.of_octets 200 i 0 0) 24)
  in
  let part = Part.balanced ~prefixes 4 in
  check_int "count" 4 (Part.count part);
  let counts = Array.make 4 0 in
  List.iter
    (fun p ->
      let ap = Part.ap_of_addr part (Prefix.first p) in
      counts.(ap) <- counts.(ap) + 1)
    prefixes;
  Array.iter (fun c -> check_bool "roughly balanced" true (c >= 10 && c <= 40)) counts;
  (* uniform would put ~90% in AP 0 *)
  let upart = Part.uniform 4 in
  let ucount0 =
    List.length
      (List.filter (fun p -> Part.ap_of_addr upart (Prefix.first p) = 0) prefixes)
  in
  check_bool "uniform is skewed" true (ucount0 = 90)

let prop_cover =
  QCheck.Test.make ~name:"every address maps to exactly one AP" ~count:200
    QCheck.(pair (int_range 1 64) (int_bound 0x3FFF_FFFF))
    (fun (k, a) ->
      let part = Part.uniform k in
      let addr = Ipv4.of_int (a * 4) in
      let ap = Part.ap_of_addr part addr in
      let lo, hi = Part.range part ap in
      Ipv4.compare lo addr <= 0 && Ipv4.compare addr hi <= 0)

let prop_prefix_aps_contiguous =
  QCheck.Test.make ~name:"aps_of_prefix is a contiguous ascending run" ~count:200
    QCheck.(triple (int_range 1 32) (int_bound 0xFFFFF) (int_range 4 32))
    (fun (k, a, len) ->
      let part = Part.uniform k in
      let p = Prefix.make (Ipv4.of_int (a * 4096)) len in
      match Part.aps_of_prefix part p with
      | [] -> false
      | first :: _ as aps ->
        List.mapi (fun i ap -> ap = first + i) aps |> List.for_all Fun.id)

let test_move_boundary () =
  let part = Part.uniform 4 in
  let addr = Ipv4.of_int 0x5000_0000 in
  let moved = Part.move_boundary part ~index:1 ~addr in
  check_int "count unchanged" 4 (Part.count moved);
  check_bool "bound moved" true (Ipv4.equal (Part.bounds moved).(1) addr);
  (* the other bounds are untouched *)
  check_bool "bound 2 kept" true
    (Ipv4.equal (Part.bounds moved).(2) (Part.bounds part).(2));
  (* ownership changes only inside [old bound, new bound) *)
  check_int "below old bound" 0 (Part.ap_of_addr moved (Ipv4.of_int 0x3000_0000));
  check_int "inside delta" 0 (Part.ap_of_addr moved (Ipv4.of_int 0x4800_0000));
  check_int "inside delta, old AP" 1
    (Part.ap_of_addr part (Ipv4.of_int 0x4800_0000));
  check_int "above new bound" 1 (Part.ap_of_addr moved (Ipv4.of_int 0x6000_0000));
  (* out-of-range targets are rejected *)
  let rejects a =
    match Part.move_boundary part ~index:1 ~addr:(Ipv4.of_int a) with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "at lower neighbour" true (rejects 0);
  check_bool "at upper neighbour" true (rejects 0x8000_0000);
  check_bool "bad index" true
    (match Part.move_boundary part ~index:0 ~addr with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_delta_range () =
  let part = Part.uniform 4 in
  check_bool "equal partitions" true
    (Part.delta_range ~old:part ~now:(Part.uniform 4) = None);
  let addr = Ipv4.of_int 0x5000_0000 in
  let moved = Part.move_boundary part ~index:1 ~addr in
  (match Part.delta_range ~old:part ~now:moved with
  | None -> Alcotest.fail "expected a delta"
  | Some (lo, hi) ->
    check_int "delta lo = old bound" 0x4000_0000 (Ipv4.to_int lo);
    check_int "delta hi = new bound - 1" 0x4FFF_FFFF (Ipv4.to_int hi);
    (* the two partitions agree everywhere outside the delta *)
    List.iter
      (fun a ->
        let a = Ipv4.of_int a in
        check_int "agree outside" (Part.ap_of_addr part a)
          (Part.ap_of_addr moved a))
      [ 0x0; 0x3FFF_FFFF; 0x5000_0000; 0x9000_0000; 0xF000_0000 ]);
  (* different AP counts: conservatively the whole space *)
  match Part.delta_range ~old:part ~now:(Part.uniform 2) with
  | Some (lo, hi) ->
    check_int "whole space lo" 0 (Ipv4.to_int lo);
    check_int "whole space hi" 0xFFFF_FFFF (Ipv4.to_int hi)
  | None -> Alcotest.fail "expected whole-space delta"

let suite =
  ( "partition",
    [
      Alcotest.test_case "uniform" `Quick test_uniform;
      Alcotest.test_case "uniform non-power-of-two" `Quick
        test_uniform_non_power_of_two;
      Alcotest.test_case "boundaries" `Quick test_ap_of_addr_boundaries;
      Alcotest.test_case "prefix to APs" `Quick test_aps_of_prefix;
      Alcotest.test_case "explicit bounds" `Quick test_of_bounds;
      Alcotest.test_case "balanced partition" `Quick test_balanced;
      Alcotest.test_case "move boundary" `Quick test_move_boundary;
      Alcotest.test_case "delta range" `Quick test_delta_range;
      QCheck_alcotest.to_alcotest prop_cover;
      QCheck_alcotest.to_alcotest prop_prefix_aps_contiguous;
    ] )
