(* §2.3: the gadget scenarios — TBRR oscillates / misroutes, ABRR and
   full-mesh do not. *)

module G = Abrr_core.Gadgets
module A = Abrr_core.Anomaly
module N = Abrr_core.Network

let check_bool = Alcotest.(check bool)

let verdict g =
  let net = G.build g in
  (net, A.run net)

let test_med_tbrr_oscillates () =
  let _, v = verdict (G.med_oscillation G.G_tbrr) in
  check_bool "oscillates" true (A.oscillates v);
  check_bool "many best changes" true (v.A.best_changes > 1000)

let test_med_full_mesh_converges () =
  let _, v = verdict (G.med_oscillation G.G_full_mesh) in
  check_bool "converges" false (A.oscillates v)

let test_med_abrr_converges () =
  List.iter
    (fun arrs ->
      let _, v = verdict (G.med_oscillation (G.G_abrr arrs)) in
      check_bool (Printf.sprintf "%d arrs" arrs) false (A.oscillates v))
    [ 1; 2 ]

let test_med_abrr_matches_full_mesh () =
  let g_fm = G.med_oscillation G.G_full_mesh in
  let g_ab = G.med_oscillation (G.G_abrr 2) in
  let fm = G.build g_fm and ab = G.build g_ab in
  ignore (A.run fm);
  ignore (A.run ab);
  (* clients (2,3,4 are border routers) agree with full mesh *)
  List.iter
    (fun i ->
      let nh net = Option.map (fun (r : Bgp.Route.t) -> (Bgp.Route.next_hop r))
          (N.best net ~router:i g_fm.G.prefix) in
      check_bool (Printf.sprintf "router %d" i) true (nh fm = nh ab))
    [ 2; 3; 4 ]

let test_topology_tbrr_oscillates () =
  let _, v = verdict (G.topology_oscillation G.G_tbrr) in
  check_bool "oscillates" true (A.oscillates v)

let test_topology_others_converge () =
  List.iter
    (fun (name, f) ->
      let _, v = verdict (G.topology_oscillation f) in
      check_bool name false (A.oscillates v))
    [ ("full-mesh", G.G_full_mesh); ("abrr-1", G.G_abrr 1); ("abrr-2", G.G_abrr 2) ]

let test_path_inefficiency () =
  let exit_under f =
    let g = G.path_inefficiency f in
    let net = G.build g in
    ignore (A.run net);
    N.best_exit net ~router:G.observer g.G.prefix
  in
  Alcotest.(check (option int)) "full-mesh near" (Some G.near_exit)
    (exit_under G.G_full_mesh);
  Alcotest.(check (option int)) "abrr near" (Some G.near_exit)
    (exit_under (G.G_abrr 1));
  Alcotest.(check (option int)) "tbrr detours" (Some G.far_exit)
    (exit_under G.G_tbrr)

let test_no_forwarding_loops_after_convergence () =
  List.iter
    (fun f ->
      let g = G.path_inefficiency f in
      let net = G.build g in
      ignore (A.run net);
      check_bool "loop-free" true (A.forwarding_loops net g.G.prefix = []))
    [ G.G_full_mesh; G.G_tbrr; G.G_abrr 2 ]

let test_best_external_partial_fix () =
  (* draft-ietf-idr-best-external (paper ref [25]): stabilizes these
     gadgets but does not restore path efficiency — ABRR subsumes it *)
  let _, med = verdict (G.med_oscillation G.G_tbrr_best_external) in
  check_bool "med converges" false (A.oscillates med);
  let _, topo = verdict (G.topology_oscillation G.G_tbrr_best_external) in
  check_bool "topology converges" false (A.oscillates topo);
  let net, _ = verdict (G.path_inefficiency G.G_tbrr_best_external) in
  Alcotest.(check (option int)) "still detours" (Some G.far_exit)
    (N.best_exit net ~router:G.observer (G.path_inefficiency G.G_tbrr).G.prefix)

let test_forwarding_path () =
  let g = G.path_inefficiency G.G_full_mesh in
  let net = G.build g in
  ignore (A.run net);
  match A.forwarding_path net ~src:G.observer g.G.prefix ~max_hops:5 with
  | Ok path -> check_bool "direct" true (path = [ G.observer; G.near_exit ])
  | Error _ -> Alcotest.fail "loop reported"

let suite =
  ( "anomalies",
    [
      Alcotest.test_case "MED gadget: TBRR oscillates" `Slow test_med_tbrr_oscillates;
      Alcotest.test_case "MED gadget: full mesh converges" `Quick
        test_med_full_mesh_converges;
      Alcotest.test_case "MED gadget: ABRR converges" `Quick test_med_abrr_converges;
      Alcotest.test_case "MED gadget: ABRR == full mesh" `Quick
        test_med_abrr_matches_full_mesh;
      Alcotest.test_case "topology gadget: TBRR oscillates" `Slow
        test_topology_tbrr_oscillates;
      Alcotest.test_case "topology gadget: others converge" `Quick
        test_topology_others_converge;
      Alcotest.test_case "path inefficiency" `Quick test_path_inefficiency;
      Alcotest.test_case "best-external is a partial fix" `Quick
        test_best_external_partial_fix;
      Alcotest.test_case "forwarding loop-freedom" `Quick
        test_no_forwarding_loops_after_convergence;
      Alcotest.test_case "forwarding path" `Quick test_forwarding_path;
    ] )
