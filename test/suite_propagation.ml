(* The symbolic propagation analyzer (lib/verify/propagation) against
   the simulator: on random small networks its fixpoint must predict the
   quiescent state exactly — delivered iBGP sets, learnable classes,
   egress choices — under every scheme; and the what-if delta API must
   reach the same outcome as a from-scratch solve while doing strictly
   less work. *)

open Helpers
module N = Abrr_core.Network
module C = Abrr_core.Config
module Rt = Abrr_core.Router
module Part = Abrr_core.Partition
module Pr = Verify.Propagation
module R = Bgp.Route

let check_bool = Alcotest.(check bool)

(* --- Random scenarios ------------------------------------------------- *)

type scenario = {
  n : int;
  injections : (int * int * R.t) list;  (* router, neighbor key, route *)
}

let gen_scenario seed =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let n = 4 + Random.State.int rng 5 in
  let n_prefixes = 1 + Random.State.int rng 3 in
  let injections = ref [] in
  for i = 0 to n_prefixes - 1 do
    let prefix =
      Netaddr.Prefix.make
        (Netaddr.Ipv4.of_octets (20 + (i * 60) + Random.State.int rng 40) 0 0 0)
        (10 + Random.State.int rng 12)
    in
    let n_routes = 1 + Random.State.int rng 3 in
    for k = 1 to n_routes do
      let router = Random.State.int rng n in
      let asn = 7000 + Random.State.int rng 2 in
      let med =
        if Random.State.bool rng then Some (Random.State.int rng 10) else None
      in
      injections :=
        (router, router + (100 * k), route ~asn ?med ~path_id:k ~prefix (router + (100 * k)))
        :: !injections
    done
  done;
  { n; injections = !injections }

let schemes scenario seed =
  let rng = Random.State.make [| seed; 0xabba |] in
  let n = scenario.n in
  let aps = 1 + Random.State.int rng 3 in
  let arrs = Array.init aps (fun a -> [ ((a * 2) + Random.State.int rng 2) mod n ]) in
  let members c = List.filter (fun i -> i mod 2 = c) (List.init n Fun.id) in
  let cluster c =
    match members c with
    | trr :: clients -> { C.trrs = [ trr ]; clients }
    | [] -> assert false
  in
  let half = n / 2 in
  let sub_as_of = Array.init n (fun i -> if i < half then 0 else 1) in
  [
    ("mesh", C.Full_mesh);
    ("abrr", C.abrr ~partition:(Part.uniform aps) arrs);
    ("tbrr", C.tbrr [ cluster 0; cluster 1 ]);
    ("confed", C.confed ~sub_as_of ~confed_links:[ (0, half) ]);
    ("rcp", C.rcp [ Random.State.int rng n ]);
  ]

(* Attribute class of a route as the model reports it: path-id and
   reflection attributes stripped (NEXT_HOP stays — the egress
   identity). *)
let classify (r : R.t) =
  R.update ~path_id:0 ~originator_id:None ~cluster_list:[]
    ~ext_communities:
      (List.filter
         (fun e -> not (Bgp.Ext_community.is_reflected e))
         (R.ext_communities r))
    r

let sort_classes rs = List.sort_uniq R.compare (List.map classify rs)

(* --- The agreement property ------------------------------------------ *)

(* For one scenario under one scheme: solve symbolically, run the
   simulator to quiescence (full add-paths storage so Adj-RIB-Ins hold
   complete sets), and compare per router and prefix. Statically
   diverging instances (and the rare non-quiescent run) are skipped —
   the property is about quiescent states. *)
let agrees_under scenario scheme =
  let cfg =
    C.make ~store_full_sets:true ~n_routers:scenario.n
      ~igp:(flat_igp scenario.n) ~scheme ()
  in
  let workload =
    List.map (fun (r, k, rt) -> (r, neighbor k, rt)) scenario.injections
  in
  let t = Pr.solve cfg workload in
  let converged p = match Pr.verdict t p with Pr.Converged _ -> true | _ -> false in
  if not (List.for_all converged (Pr.prefixes t)) then true
  else begin
    let net = N.create cfg in
    List.iter
      (fun (router, k, r) -> N.inject net ~router ~neighbor:(neighbor k) r)
      scenario.injections;
    match N.run ~max_events:500_000 net with
    | Eventsim.Sim.Quiescent ->
      List.for_all
        (fun p ->
          List.for_all
            (fun r ->
              let roles = Rt.derive_roles cfg r in
              let delivered = Pr.delivered t p ~router:r in
              (* delivered sets: the model's (sender, route) pairs are
                 exactly the simulator's per-sender Adj-RIB-Ins *)
              let delivered_ok =
                List.for_all
                  (fun s ->
                    let model =
                      List.filter_map
                        (fun (src, rt) -> if src = s then Some rt else None)
                        delivered
                      |> List.map (fun rt -> { rt with R.path_id = 0 })
                      |> List.sort_uniq R.compare
                    in
                    let sim =
                      Rt.received_set (N.router net r) ~from:s p
                      |> List.map (fun rt -> { rt with R.path_id = 0 })
                      |> List.sort_uniq R.compare
                    in
                    model = sim)
                  (List.init scenario.n Fun.id)
              in
              (* learnable classes: for pure clients the decision
                 channels are exactly the unmanaged Adj-RIB-Ins plus the
                 router's own eBGP routes *)
              let pure_client =
                (not roles.Rt.is_trr) && roles.Rt.arr_aps = []
                && not roles.Rt.is_rcp
              in
              let learnable_ok =
                (not pure_client)
                ||
                let own =
                  List.filter_map
                    (fun (router, _, (rt : R.t)) ->
                      if router = r && Netaddr.Prefix.compare rt.R.prefix p = 0
                      then Some (R.update ~next_hop:(C.loopback r) rt)
                      else None)
                    scenario.injections
                in
                let received =
                  List.concat_map
                    (fun s -> Rt.received_set (N.router net r) ~from:s p)
                    (List.init scenario.n Fun.id)
                in
                Pr.learnable t p ~router:r = sort_classes (own @ received)
              in
              (* egress choice *)
              let sim_exit =
                match N.best_exit net ~router:r p with
                | Some e -> Some e
                | None -> if N.best net ~router:r p <> None then Some r else None
              in
              delivered_ok && learnable_ok && (Pr.exits t p).(r) = sim_exit)
            (List.init scenario.n Fun.id))
        (Pr.prefixes t)
    | _ -> true
  end

let prop_agrees_with_sim =
  QCheck.Test.make ~name:"propagation fixpoint = quiescent simulator state"
    ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let scenario = gen_scenario seed in
      List.for_all
        (fun (name, scheme) ->
          agrees_under scenario scheme
          || QCheck.Test.fail_reportf "seed %d: disagrees under %s" seed name)
        (schemes scenario seed))

(* --- What-if deltas --------------------------------------------------- *)

let delta_config () =
  let n = 16 in
  C.make ~n_routers:n ~igp:(flat_igp n)
    ~scheme:(C.abrr ~partition:(Part.uniform 2) [| [ 0; 1 ]; [ 2 ] |])
    ()

let delta_workload () =
  [
    (3, neighbor 3, route ~prefix:(pfx "20.0.0.0/8") 3);
    (7, neighbor 7, route ~asn:7001 ~prefix:(pfx "20.0.0.0/8") 7);
    (5, neighbor 5, route ~prefix:(pfx "200.0.0.0/8") 5);
    (9, neighbor 9, route ~asn:7001 ~prefix:(pfx "200.0.0.0/8") 9);
  ]

let evals t = (Pr.stats t).Pr.node_evals

let apply base d =
  match Pr.apply_delta base d with
  | Ok t -> t
  | Error e -> Alcotest.failf "delta rejected: %s" e

let test_delta_link () =
  let cfg = delta_config () and w = delta_workload () in
  let base = Pr.solve cfg w in
  let dl = apply base (Pr.Fail_link (3, 7)) in
  let g' = flat_igp 16 in
  Igp.Graph.remove_edge g' 3 7;
  let scratch = Pr.solve { cfg with C.igp = g' } w in
  check_bool "same outcome as from-scratch" true (Pr.same_outcome dl scratch);
  check_bool "strictly less work than from-scratch" true
    (evals dl < evals scratch);
  match Pr.apply_delta base (Pr.Fail_link (0, 0)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonexistent link must be rejected"

let test_delta_router () =
  let cfg = delta_config () and w = delta_workload () in
  let base = Pr.solve cfg w in
  let dl = apply base (Pr.Fail_router 9) in
  let scratch = Pr.solve ~live:(fun i -> i <> 9) cfg w in
  check_bool "same outcome as from-scratch" true (Pr.same_outcome dl scratch);
  check_bool "strictly less work than from-scratch" true
    (evals dl < evals scratch);
  (* r9's injection is gone with it: nobody exits through the dead
     border any more *)
  Array.iteri
    (fun i e -> if i <> 9 then check_bool "exit moved off r9" true (e <> Some 9))
    (Pr.exits dl (pfx "200.0.0.0/8"));
  match Pr.apply_delta dl (Pr.Fail_router 9) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double failure must be rejected"

let test_delta_arr () =
  let cfg = delta_config () and w = delta_workload () in
  let base = Pr.solve cfg w in
  let dl = apply base (Pr.Fail_arr 0) in
  let scratch =
    Pr.solve
      { cfg with C.scheme = C.abrr ~partition:(Part.uniform 2) [| [ 1 ]; [ 2 ] |] }
      w
  in
  check_bool "same outcome as from-scratch" true (Pr.same_outcome dl scratch);
  check_bool "AP 1 prefixes reused untouched" true
    ((Pr.stats dl).Pr.prefixes_reused >= 1);
  (* ARR redundancy means the routing outcome itself is unchanged *)
  check_bool "redundant ARR loss is outcome-neutral" true
    (Pr.same_outcome base dl);
  match Pr.apply_delta base (Pr.Fail_arr 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "losing AP 1's only ARR must be rejected"

let test_delta_repartition () =
  let cfg = delta_config () and w = delta_workload () in
  let base = Pr.solve cfg w in
  (match Pr.apply_delta base (Pr.Repartition (Part.uniform 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "AP-count mismatch must be rejected");
  let t = apply base (Pr.Repartition (Part.uniform 2)) in
  check_bool "identical boundaries: every prefix reused" true
    ((Pr.stats t).Pr.prefixes_reused = List.length (Pr.prefixes t));
  check_bool "identical boundaries: same outcome" true (Pr.same_outcome base t)

let suite =
  ( "propagation",
    [
      QCheck_alcotest.to_alcotest prop_agrees_with_sim;
      Alcotest.test_case "delta: link failure" `Quick test_delta_link;
      Alcotest.test_case "delta: router failure" `Quick test_delta_router;
      Alcotest.test_case "delta: ARR failure" `Quick test_delta_arr;
      Alcotest.test_case "delta: repartition" `Quick test_delta_repartition;
    ] )
