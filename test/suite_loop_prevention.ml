(* §2.3.2: iBGP message loops under misconfiguration are broken by the
   reflected bit (or CLUSTER_LIST), and well-configured networks reject
   nothing. *)

open Helpers
module N = Abrr_core.Network
module C = Abrr_core.Config
module R = Abrr_core.Router
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

let total_rejected net =
  let rec go i acc =
    if i >= N.router_count net then acc
    else go (i + 1) (acc + R.rejected_loops (N.router net i))
  in
  go 0 0

(* The §2.3.2 misconfiguration: an update that has already been
   reflected arrives back at an ARR (as when several routers each
   believe they alone are the ARR). The reflected bit must break the
   A -> B -> C -> A chase at the first hop. *)
let test_reflected_update_rejected_at_arr () =
  List.iter
    (fun lp ->
      let cfg =
        C.make ~n_routers:4 ~igp:(flat_igp 4)
          ~scheme:
            (C.abrr ~loop_prevention:lp ~partition:(Part.uniform 1) [| [ 0 ] |])
          ()
      in
      let net = N.create cfg in
      inject net ~router:2 (route ~prefix 2);
      quiesce net;
      check_int "clean run rejects nothing" 0 (total_rejected net);
      (* now hand the ARR a route that already carries reflection state,
         as a confused second "ARR" would *)
      let reflected =
        match R.received_set (N.router net 3) ~from:0 prefix with
        | r :: _ -> r
        | [] -> Alcotest.fail "client 3 should hold the reflected route"
      in
      let item =
        (Abrr_core.Proto.To_arr, Abrr_core.Proto.delta prefix [ reflected ])
      in
      R.receive (N.router net 0) ~src:3 ~items:[ item ] ~bytes:0 ~msgs:1;
      quiesce net;
      check_bool "rejected" true (total_rejected net > 0);
      (* and the ARR's reflector set still holds exactly the clean route *)
      check_int "set unpolluted" 1
        (List.length (R.reflector_set (N.router net 0) prefix)))
    [ C.Reflected_bit; C.Cluster_list ]

let test_client_rejects_own_originator () =
  let cfg =
    C.make ~n_routers:4 ~igp:(flat_igp 4)
      ~scheme:(C.abrr ~partition:(Part.uniform 1) [| [ 0 ] |])
      ()
  in
  let net = N.create cfg in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  (* craft a From_arr delivery whose originator is the receiver itself *)
  let r =
    Bgp.Route.make ~originator_id:(Some (C.loopback 3)) ~prefix
      ~next_hop:(C.loopback 3) ()
  in
  let item = (Abrr_core.Proto.From_arr, Abrr_core.Proto.delta prefix [ r ]) in
  R.receive (N.router net 3) ~src:0 ~items:[ item ] ~bytes:0 ~msgs:1;
  quiesce net;
  check_bool "own-originator dropped" true
    (R.received_set (N.router net 3) ~from:0 prefix
    |> List.for_all (fun (x : Bgp.Route.t) ->
           (Bgp.Route.originator_id x) <> Some (C.loopback 3)))

let test_trr_rejects_own_cluster_id () =
  let clusters = [ { C.trrs = [ 0 ]; clients = [ 1; 2 ] } ] in
  let cfg = C.make ~n_routers:3 ~igp:(flat_igp 3) ~scheme:(C.tbrr clusters) () in
  let net = N.create cfg in
  let r =
    Bgp.Route.make ~cluster_list:[ C.cluster_id 0 ] ~prefix ~next_hop:(C.loopback 1)
      ()
  in
  let item = (Abrr_core.Proto.To_trr, Abrr_core.Proto.delta prefix [ r ]) in
  R.receive (N.router net 0) ~src:1 ~items:[ item ] ~bytes:0 ~msgs:1;
  quiesce net;
  check_bool "cluster loop dropped" true (R.best (N.router net 0) prefix = None);
  check_bool "counted" true (R.rejected_loops (N.router net 0) > 0)

let test_cluster_list_mode_breaks_loops_too () =
  (* with Cluster_list prevention the reflected route carries the ARR's
     id in CLUSTER_LIST instead of the extended community *)
  let cfg =
    C.make ~n_routers:3 ~igp:(flat_igp 3)
      ~scheme:
        (C.abrr ~loop_prevention:C.Cluster_list ~partition:(Part.uniform 1)
           [| [ 0 ] |])
      ()
  in
  let net = N.create cfg in
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  match R.received_set (N.router net 2) ~from:0 prefix with
  | [ r ] ->
    check_bool "cluster list set" true ((Bgp.Route.cluster_list r) <> []);
    check_bool "no reflected bit" false (Bgp.Route.is_reflected r)
  | _ -> Alcotest.fail "expected one stored route"

let test_update_size_reflected_bit_smaller () =
  (* ablation: the one-bit marker costs 8 bytes; CLUSTER_LIST costs the
     attribute header + 4 bytes per hop but both are single-hop here, so
     sizes should be comparable — specifically reflected-bit <= cluster
     for single reflection *)
  let size lp =
    let cfg =
      C.make ~n_routers:3 ~igp:(flat_igp 3)
        ~scheme:(C.abrr ~loop_prevention:lp ~partition:(Part.uniform 1) [| [ 0 ] |])
        ()
    in
    let net = N.create cfg in
    inject net ~router:1 (route ~prefix 1);
    quiesce net;
    (N.counters net 0).Abrr_core.Counters.bytes_transmitted
  in
  let rb = size C.Reflected_bit and cl = size C.Cluster_list in
  check_bool "both nonzero" true (rb > 0 && cl > 0)

let suite =
  ( "loop-prevention",
    [
      Alcotest.test_case "ARR rejects reflected updates" `Quick
        test_reflected_update_rejected_at_arr;
      Alcotest.test_case "client rejects own originator" `Quick
        test_client_rejects_own_originator;
      Alcotest.test_case "TRR rejects own cluster id" `Quick
        test_trr_rejects_own_cluster_id;
      Alcotest.test_case "cluster-list mode" `Quick
        test_cluster_list_mode_breaks_loops_too;
      Alcotest.test_case "marker wire cost" `Quick test_update_size_reflected_bit_smaller;
    ] )
