open Eventsim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fifo_same_time () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~delay:(Time.ms 5) (fun () -> order := 1 :: !order);
  Sim.schedule sim ~delay:(Time.ms 5) (fun () -> order := 2 :: !order);
  Sim.schedule sim ~delay:(Time.ms 5) (fun () -> order := 3 :: !order);
  ignore (Sim.run sim);
  check_bool "fifo" true (List.rev !order = [ 1; 2; 3 ])

let test_time_order () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~delay:(Time.ms 10) (fun () -> order := `B :: !order);
  Sim.schedule sim ~delay:(Time.ms 1) (fun () -> order := `A :: !order);
  ignore (Sim.run sim);
  check_bool "order" true (List.rev !order = [ `A; `B ])

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref Time.zero in
  Sim.schedule sim ~delay:(Time.sec 3) (fun () -> seen := Sim.now sim);
  ignore (Sim.run sim);
  check_int "clock" (Time.sec 3) !seen

let test_nested_scheduling () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then Sim.schedule sim ~delay:(Time.ms 1) tick
  in
  Sim.schedule sim ~delay:Time.zero tick;
  check_bool "quiescent" true (Sim.run sim = Sim.Quiescent);
  check_int "all ticks" 5 !count;
  check_int "events" 5 (Sim.events_processed sim)

let test_deadline () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:(Time.sec 10) (fun () -> fired := true);
  check_bool "deadline" true (Sim.run ~until:(Time.sec 5) sim = Sim.Deadline);
  check_bool "not fired" false !fired;
  check_bool "resume" true (Sim.run sim = Sim.Quiescent);
  check_bool "fired" true !fired

let test_event_limit () =
  let sim = Sim.create () in
  let rec forever () = Sim.schedule sim ~delay:(Time.ms 1) forever in
  Sim.schedule sim ~delay:Time.zero forever;
  check_bool "limit" true (Sim.run ~max_events:100 sim = Sim.Event_limit)

let test_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:(Time.ms 1) (fun () ->
      check_bool "past rejected" true
        (try
           Sim.schedule_at sim ~time:Time.zero (fun () -> ());
           false
         with Invalid_argument _ -> true));
  ignore (Sim.run sim)

let test_negative_delay () =
  let sim = Sim.create () in
  check_bool "negative" true
    (try
       Sim.schedule sim ~delay:(-1) (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_determinism () =
  let run () =
    let sim = Sim.create ~seed:5 () in
    let log = Buffer.create 64 in
    for i = 1 to 20 do
      let d = Eventsim.Prng.int (Sim.rng sim) 1000 in
      Sim.schedule sim ~delay:d (fun () ->
          Buffer.add_string log (Printf.sprintf "%d@%d;" i (Sim.now sim)))
    done;
    ignore (Sim.run sim);
    Buffer.contents log
  in
  check_bool "deterministic" true (run () = run ())

let test_time_units () =
  check_int "ms" 1_000 (Time.ms 1);
  check_int "sec" 1_000_000 (Time.sec 1);
  check_int "minutes" 60_000_000 (Time.minutes 1);
  check_int "day" (24 * 3600 * 1_000_000) (Time.days 1);
  check_bool "to_sec" true (Time.to_sec (Time.sec 2) = 2.0)

let suite =
  ( "eventsim",
    [
      Alcotest.test_case "FIFO at same timestamp" `Quick test_fifo_same_time;
      Alcotest.test_case "time ordering" `Quick test_time_order;
      Alcotest.test_case "clock advances" `Quick test_clock_advances;
      Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
      Alcotest.test_case "deadline and resume" `Quick test_deadline;
      Alcotest.test_case "event limit" `Quick test_event_limit;
      Alcotest.test_case "rejects past scheduling" `Quick test_rejects_past;
      Alcotest.test_case "rejects negative delay" `Quick test_negative_delay;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "time units" `Quick test_time_units;
    ] )
