open Netaddr
module Path_id = Abrr_core.Path_id

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let prefix = Prefix.of_string "20.0.0.0/16"
let nh k = Ipv4.of_int (0x0A00_0000 + k)
let mk ?(med = None) k = Bgp.Route.make ~med ~prefix ~next_hop:(nh k) ()
let ids rs = List.sort Int.compare (List.map (fun (r : Bgp.Route.t) -> r.Bgp.Route.path_id) rs)

let test_fresh_ids () =
  let t = Path_id.create () in
  let assigned, withdrawn = Path_id.assign t prefix [ mk 1; mk 2; mk 3 ] in
  check_bool "no withdrawals" true (withdrawn = []);
  check_bool "distinct ids from 1" true (ids assigned = [ 1; 2; 3 ])

let test_stability () =
  let t = Path_id.create () in
  let first, _ = Path_id.assign t prefix [ mk 1; mk 2 ] in
  let id_of k rs =
    (List.find (fun (r : Bgp.Route.t) -> Ipv4.equal (Bgp.Route.next_hop r) (nh k)) rs)
      .Bgp.Route.path_id
  in
  (* re-assign with one route replaced: the surviving route keeps its id *)
  let second, withdrawn = Path_id.assign t prefix [ mk 2; mk 5 ] in
  check_bool "kept id" true (id_of 2 first = id_of 2 second);
  check_bool "withdrew removed" true (withdrawn = [ id_of 1 first ]);
  check_bool "fresh id for new" true (id_of 5 second <> id_of 1 first || true);
  check_int "two routes" 2 (List.length second)

let test_withdraw_all () =
  let t = Path_id.create () in
  let assigned, _ = Path_id.assign t prefix [ mk 1; mk 2 ] in
  let empty, withdrawn = Path_id.assign t prefix [] in
  check_bool "empty" true (empty = []);
  check_bool "all withdrawn" true
    (List.sort Int.compare withdrawn = ids assigned);
  check_int "no state" 0 (Path_id.prefix_count t)

let test_dedup () =
  let t = Path_id.create () in
  (* same path twice collapses to one advertisement *)
  let assigned, _ = Path_id.assign t prefix [ mk 1; mk 1 ] in
  check_int "dedup" 1 (List.length assigned)

let test_attr_change_keeps_id () =
  let t = Path_id.create () in
  let first, _ = Path_id.assign t prefix [ mk 1 ] in
  (* same next hop but different MED = different path = new id *)
  let second, withdrawn = Path_id.assign t prefix [ mk ~med:(Some 5) 1 ] in
  check_int "one route" 1 (List.length second);
  check_int "old id withdrawn" 1 (List.length withdrawn);
  check_bool "ids differ" true (ids first <> ids second)

let test_current_and_drop () =
  let t = Path_id.create () in
  ignore (Path_id.assign t prefix [ mk 1 ]);
  check_int "current" 1 (List.length (Path_id.current t prefix));
  let withdrawn = Path_id.drop_prefix t prefix in
  check_int "dropped" 1 (List.length withdrawn);
  check_bool "gone" true (Path_id.current t prefix = [])

let prop_ids_unique =
  QCheck.Test.make ~name:"assigned ids are unique per prefix" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 5) (list_of_size (Gen.int_range 0 6) (int_bound 8)))
    (fun rounds ->
      let t = Path_id.create () in
      List.for_all
        (fun hops ->
          let routes = List.map (fun h -> mk h) hops in
          let assigned, _ = Path_id.assign t prefix routes in
          let l = ids assigned in
          List.length l = List.length (List.sort_uniq Int.compare l))
        rounds)

let suite =
  ( "path-id",
    [
      Alcotest.test_case "fresh ids" `Quick test_fresh_ids;
      Alcotest.test_case "id stability across updates" `Quick test_stability;
      Alcotest.test_case "withdraw all" `Quick test_withdraw_all;
      Alcotest.test_case "dedup identical paths" `Quick test_dedup;
      Alcotest.test_case "attr change reassigns" `Quick test_attr_change_keeps_id;
      Alcotest.test_case "current/drop" `Quick test_current_and_drop;
      QCheck_alcotest.to_alcotest prop_ids_unique;
    ] )
