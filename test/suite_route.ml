open Netaddr
open Bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = Prefix.of_string "20.0.0.0/16"
let nh = Ipv4.of_string "10.0.0.1"

let test_defaults () =
  let r = Route.make ~prefix ~next_hop:nh () in
  check_int "path id" 0 r.Route.path_id;
  check_int "local pref" Route.default_local_pref (Route.local_pref r);
  check_bool "origin" true (Route.origin r = Origin.Igp);
  check_bool "no med" true (Route.med r = None);
  check_bool "empty path" true (As_path.equal (Route.as_path r) As_path.empty);
  check_bool "no reflection" true
    (Route.originator_id r = None && Route.cluster_list r = [])

let test_reflected_marker () =
  let r = Route.make ~prefix ~next_hop:nh () in
  check_bool "initially unmarked" false (Route.is_reflected r);
  let r' = Route.mark_reflected r in
  check_bool "marked" true (Route.is_reflected r');
  let r'' = Route.mark_reflected r' in
  check_int "idempotent" 1 (List.length (Route.ext_communities r''))

let test_cluster_list () =
  let c1 = Ipv4.of_string "192.168.0.1" and c2 = Ipv4.of_string "192.168.0.2" in
  let r = Route.make ~prefix ~next_hop:nh () in
  let r = Route.add_cluster c2 (Route.add_cluster c1 r) in
  (* most recent cluster is prepended *)
  check_bool "order" true (Route.cluster_list r = [ c2; c1 ]);
  check_bool "member" true (Route.in_cluster_list c1 r);
  check_bool "non-member" false
    (Route.in_cluster_list (Ipv4.of_string "192.168.0.9") r)

let test_neighbor_as () =
  let r =
    Route.make ~as_path:(As_path.of_asns [ Asn.of_int 5; Asn.of_int 6 ]) ~prefix
      ~next_hop:nh ()
  in
  check_bool "first as" true (Route.neighbor_as r = Some (Asn.of_int 5));
  let local = Route.make ~prefix ~next_hop:nh () in
  check_bool "local none" true (Route.neighbor_as local = None)

let test_same_path_ignores_path_id () =
  let r = Route.make ~med:(Some 5) ~prefix ~next_hop:nh () in
  let r' = Route.with_path_id 7 r in
  check_bool "same path" true (Route.same_path r r');
  check_bool "not equal" false (Route.equal r r');
  let r'' = Route.update ~med:(Some 6) r in
  check_bool "different med" false (Route.same_path r r'')

let test_with_prefix () =
  let r = Route.make ~prefix ~next_hop:nh () in
  let q = Prefix.of_string "30.0.0.0/8" in
  check_bool "replaced" true (Prefix.equal (Route.with_prefix q r).Route.prefix q)

let test_compare_total_order () =
  let r1 = Route.make ~prefix ~next_hop:nh () in
  let r2 = Route.make ~med:(Some 1) ~prefix ~next_hop:nh () in
  check_bool "reflexive" true (Route.compare r1 r1 = 0);
  check_bool "antisym" true (Route.compare r1 r2 = -Route.compare r2 r1)

(* --- Attribute-block interning ---------------------------------------
   Within a domain, structurally equal attribute blocks must be the
   SAME record (physical equality), however they were built. *)

let test_interning_shares_blocks () =
  let build () =
    Route.make
      ~as_path:(As_path.of_asns [ Asn.of_int 5; Asn.of_int 6 ])
      ~med:(Some 40) ~communities:[ Community.make 65000 7 ] ~prefix
      ~next_hop:nh ()
  in
  let r1 = build () and r2 = build () in
  check_bool "equal construction shares one block" true
    (Route.attrs r1 == Route.attrs r2);
  (* a different prefix/path_id is a different head over the same block *)
  let r3 =
    Route.with_path_id 9 (Route.with_prefix (Prefix.of_string "30.0.0.0/8") r1)
  in
  check_bool "head changes keep the block" true (Route.attrs r1 == Route.attrs r3);
  (* update that changes nothing re-interns to the identical block *)
  let r4 = Route.update ~med:(Some 40) r1 in
  check_bool "no-op update keeps the block" true (Route.attrs r1 == Route.attrs r4);
  (* update that changes an attribute yields a distinct block... *)
  let r5 = Route.update ~med:(Some 41) r1 in
  check_bool "real update reinterns" true (Route.attrs r1 != Route.attrs r5);
  (* ...and reverting reconverges on the original physical block *)
  let r6 = Route.update ~med:(Some 40) r5 in
  check_bool "revert reconverges" true (Route.attrs r1 == Route.attrs r6)

let test_of_attrs_zero_copy () =
  let a = Route.make_attrs ~local_pref:250 ~next_hop:nh () in
  let r = Route.of_attrs ~path_id:3 ~prefix a in
  check_bool "same block" true (Route.attrs r == a);
  check_int "path id" 3 r.Route.path_id;
  check_int "local pref" 250 (Route.local_pref r);
  check_bool "attrs_equal is physical here" true (Route.attrs_equal a (Route.attrs r))

let test_wire_decode_interns () =
  (* one UPDATE carrying several NLRI with a shared attribute set must
     decode into heads over ONE interned block — and that block must be
     the same record a direct construction interns *)
  let mk p = Route.make ~med:(Some 9) ~prefix:(Prefix.of_string p) ~next_hop:nh () in
  let announced = [ mk "20.0.0.0/16"; mk "20.1.0.0/16"; mk "20.2.0.0/16" ] in
  let wire =
    Wire.encode ~add_paths:true (Msg.Update { withdrawn = []; announced })
  in
  check_int "one attribute grouping" 1 (List.length wire);
  match Wire.decode_all ~add_paths:true (List.hd wire) with
  | Ok [ Msg.Update { announced = decoded; _ } ] ->
    check_int "three routes" 3 (List.length decoded);
    let blocks = List.map Route.attrs decoded in
    List.iter
      (fun b -> check_bool "decoded NLRI share one block" true (b == List.hd blocks))
      blocks;
    check_bool "decode converges with construction" true
      (List.hd blocks == Route.attrs (mk "20.0.0.0/16"))
  | Ok _ -> Alcotest.fail "expected a single UPDATE"
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let prop_interning_respects_equality =
  (* random attribute pairs: physical block identity <=> same_path *)
  let attr_gen =
    QCheck.Gen.(
      map3
        (fun lp med asns -> (100 + lp, (if med > 2 then None else Some med),
                             List.map Asn.of_int asns))
        (int_bound 2) (int_bound 4)
        (list_size (int_bound 3) (int_range 1 4)))
  in
  QCheck.Test.make ~name:"interned identity = structural equality" ~count:200
    (QCheck.pair (QCheck.make attr_gen) (QCheck.make attr_gen))
    (fun ((lp1, med1, p1), (lp2, med2, p2)) ->
      let mk lp med p =
        Route.make ~local_pref:lp ~med ~as_path:(As_path.of_asns p) ~prefix
          ~next_hop:nh ()
      in
      let r1 = mk lp1 med1 p1 and r2 = mk lp2 med2 p2 in
      (Route.attrs r1 == Route.attrs r2) = Route.same_path r1 r2)

let suite =
  ( "route",
    [
      Alcotest.test_case "defaults" `Quick test_defaults;
      Alcotest.test_case "reflected marker" `Quick test_reflected_marker;
      Alcotest.test_case "cluster list" `Quick test_cluster_list;
      Alcotest.test_case "neighbor AS" `Quick test_neighbor_as;
      Alcotest.test_case "same_path vs equal" `Quick test_same_path_ignores_path_id;
      Alcotest.test_case "with_prefix" `Quick test_with_prefix;
      Alcotest.test_case "compare" `Quick test_compare_total_order;
      Alcotest.test_case "interning shares blocks" `Quick
        test_interning_shares_blocks;
      Alcotest.test_case "of_attrs zero copy" `Quick test_of_attrs_zero_copy;
      Alcotest.test_case "wire decode interns" `Quick test_wire_decode_interns;
      QCheck_alcotest.to_alcotest prop_interning_respects_equality;
    ] )
