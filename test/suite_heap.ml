let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_basic () =
  let h = Pqueue.Heap.create ~cmp:Int.compare () in
  check_bool "empty" true (Pqueue.Heap.is_empty h);
  List.iter (Pqueue.Heap.push h) [ 5; 1; 4; 1; 3 ];
  check_int "length" 5 (Pqueue.Heap.length h);
  check_bool "peek" true (Pqueue.Heap.peek h = Some 1);
  check_bool "sorted drain" true
    (Pqueue.Heap.to_sorted_list h = [ 1; 1; 3; 4; 5 ]);
  check_bool "drained" true (Pqueue.Heap.is_empty h)

let test_pop_empty () =
  let h = Pqueue.Heap.create ~cmp:Int.compare () in
  check_bool "pop none" true (Pqueue.Heap.pop h = None);
  check_bool "pop_exn raises" true
    (try
       ignore (Pqueue.Heap.pop_exn h);
       false
     with Invalid_argument _ -> true)

let test_clear () =
  let h = Pqueue.Heap.of_list ~cmp:Int.compare [ 3; 1; 2 ] in
  Pqueue.Heap.clear h;
  check_bool "cleared" true (Pqueue.Heap.is_empty h);
  Pqueue.Heap.push h 9;
  check_bool "usable after clear" true (Pqueue.Heap.pop h = Some 9)

let test_capacity_hint () =
  (* the hint must size the first allocation, before and after pushes *)
  let h = Pqueue.Heap.create ~capacity:100 ~cmp:Int.compare () in
  check_int "hint honored before any push" 100 (Pqueue.Heap.capacity h);
  Pqueue.Heap.push h 1;
  check_int "first allocation uses the hint" 100 (Pqueue.Heap.capacity h);
  for i = 2 to 100 do
    Pqueue.Heap.push h i
  done;
  check_int "no growth within the hint" 100 (Pqueue.Heap.capacity h);
  Pqueue.Heap.push h 101;
  check_bool "doubles past the hint" true (Pqueue.Heap.capacity h > 100);
  check_int "all stored" 101 (Pqueue.Heap.length h);
  (* degenerate hints are clamped, not fatal *)
  let z = Pqueue.Heap.create ~capacity:0 ~cmp:Int.compare () in
  Pqueue.Heap.push z 5;
  check_bool "zero hint still usable" true (Pqueue.Heap.pop z = Some 5)

let prop_grow_from_sized_start =
  QCheck.Test.make ~name:"heap grown from a sized start stays sorted" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 0 64) int))
    (fun (capacity, l) ->
      let h = Pqueue.Heap.create ~capacity ~cmp:Int.compare () in
      List.iter (Pqueue.Heap.push h) l;
      Pqueue.Heap.capacity h >= List.length l
      && Pqueue.Heap.to_sorted_list h = List.sort Int.compare l)

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun l ->
      let h = Pqueue.Heap.of_list ~cmp:Int.compare l in
      Pqueue.Heap.to_sorted_list h = List.sort Int.compare l)

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: tl -> if y = x then List.rev_append acc tl else go (y :: acc) tl
  in
  go [] l

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop maintains min" ~count:200
    QCheck.(pair (int_range 1 16) (list (pair bool small_int)))
    (fun (capacity, ops) ->
      let h = Pqueue.Heap.create ~capacity ~cmp:Int.compare () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then begin
            let expected =
              match !model with [] -> None | l -> Some (List.fold_left min max_int l)
            in
            let got = Pqueue.Heap.pop h in
            (match got with Some x -> model := remove_one x !model | None -> ());
            got = expected
          end
          else begin
            Pqueue.Heap.push h v;
            model := v :: !model;
            true
          end)
        ops)

let suite =
  ( "heap",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "empty pops" `Quick test_pop_empty;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "capacity hint" `Quick test_capacity_hint;
      QCheck_alcotest.to_alcotest prop_grow_from_sized_start;
      QCheck_alcotest.to_alcotest prop_heap_sort;
      QCheck_alcotest.to_alcotest prop_interleaved;
    ] )
