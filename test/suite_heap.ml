let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_basic () =
  let h = Pqueue.Heap.create ~cmp:Int.compare () in
  check_bool "empty" true (Pqueue.Heap.is_empty h);
  List.iter (Pqueue.Heap.push h) [ 5; 1; 4; 1; 3 ];
  check_int "length" 5 (Pqueue.Heap.length h);
  check_bool "peek" true (Pqueue.Heap.peek h = Some 1);
  check_bool "sorted drain" true
    (Pqueue.Heap.to_sorted_list h = [ 1; 1; 3; 4; 5 ]);
  check_bool "drained" true (Pqueue.Heap.is_empty h)

let test_pop_empty () =
  let h = Pqueue.Heap.create ~cmp:Int.compare () in
  check_bool "pop none" true (Pqueue.Heap.pop h = None);
  check_bool "pop_exn raises" true
    (try
       ignore (Pqueue.Heap.pop_exn h);
       false
     with Invalid_argument _ -> true)

let test_clear () =
  let h = Pqueue.Heap.of_list ~cmp:Int.compare [ 3; 1; 2 ] in
  Pqueue.Heap.clear h;
  check_bool "cleared" true (Pqueue.Heap.is_empty h);
  Pqueue.Heap.push h 9;
  check_bool "usable after clear" true (Pqueue.Heap.pop h = Some 9)

let test_capacity_hint () =
  (* the hint must size the first allocation, before and after pushes *)
  let h = Pqueue.Heap.create ~capacity:100 ~cmp:Int.compare () in
  check_int "hint honored before any push" 100 (Pqueue.Heap.capacity h);
  Pqueue.Heap.push h 1;
  check_int "first allocation uses the hint" 100 (Pqueue.Heap.capacity h);
  for i = 2 to 100 do
    Pqueue.Heap.push h i
  done;
  check_int "no growth within the hint" 100 (Pqueue.Heap.capacity h);
  Pqueue.Heap.push h 101;
  check_bool "doubles past the hint" true (Pqueue.Heap.capacity h > 100);
  check_int "all stored" 101 (Pqueue.Heap.length h);
  (* degenerate hints are clamped, not fatal *)
  let z = Pqueue.Heap.create ~capacity:0 ~cmp:Int.compare () in
  Pqueue.Heap.push z 5;
  check_bool "zero hint still usable" true (Pqueue.Heap.pop z = Some 5)

(* --- FIFO tie-breaking: elements equal under cmp pop in push order --- *)

let by_key (a, _) (b, _) = Int.compare a b

let test_fifo_same_key () =
  let h = Pqueue.Heap.create ~cmp:by_key () in
  List.iter (Pqueue.Heap.push h) [ (1, "a"); (1, "b"); (2, "c"); (1, "d") ];
  check_bool "ties drain in insertion order" true
    (Pqueue.Heap.to_sorted_list h = [ (1, "a"); (1, "b"); (1, "d"); (2, "c") ]);
  (* a pop between tied pushes must not reorder the survivors *)
  List.iter (Pqueue.Heap.push h) [ (5, "x"); (5, "y") ];
  check_bool "pop head of tie" true (Pqueue.Heap.pop h = Some (5, "x"));
  Pqueue.Heap.push h (5, "z");
  check_bool "tie order survives interleaved pop" true
    (Pqueue.Heap.to_sorted_list h = [ (5, "y"); (5, "z") ])

let test_fifo_across_growth () =
  (* start tiny so the backing array doubles several times mid-sequence;
     growth must not perturb the FIFO order of equal keys *)
  let h = Pqueue.Heap.create ~capacity:2 ~cmp:by_key () in
  for i = 0 to 99 do
    Pqueue.Heap.push h (i mod 3, i)
  done;
  check_bool "grew past the hint" true (Pqueue.Heap.capacity h >= 100);
  let drained = Pqueue.Heap.to_sorted_list h in
  let expected =
    List.stable_sort by_key (List.init 100 (fun i -> (i mod 3, i)))
  in
  check_bool "stable across growth" true (drained = expected)

let test_fifo_capacity_interaction () =
  (* all-equal keys exactly at the capacity hint, then spill past it *)
  let h = Pqueue.Heap.create ~capacity:8 ~cmp:by_key () in
  for i = 0 to 7 do
    Pqueue.Heap.push h (0, i)
  done;
  check_int "no growth at the hint" 8 (Pqueue.Heap.capacity h);
  for i = 8 to 15 do
    Pqueue.Heap.push h (0, i)
  done;
  check_bool "spilled past the hint" true (Pqueue.Heap.capacity h > 8);
  check_bool "all-tie drain is pure FIFO" true
    (Pqueue.Heap.to_sorted_list h = List.init 16 (fun i -> (0, i)));
  (* clear resets the insertion stamp: a reused heap is still FIFO *)
  Pqueue.Heap.push h (0, 100);
  Pqueue.Heap.clear h;
  List.iter (Pqueue.Heap.push h) [ (0, 1); (0, 2) ];
  check_bool "FIFO after clear" true
    (Pqueue.Heap.to_sorted_list h = [ (0, 1); (0, 2) ])

let test_remove () =
  let h = Pqueue.Heap.create ~cmp:by_key () in
  List.iter (Pqueue.Heap.push h)
    [ (3, "a"); (1, "b"); (2, "c"); (1, "d"); (2, "e") ];
  check_bool "remove hit" true (Pqueue.Heap.remove h (fun (_, s) -> s = "c") = Some (2, "c"));
  check_bool "remove miss" true (Pqueue.Heap.remove h (fun (_, s) -> s = "zz") = None);
  check_int "length after remove" 4 (Pqueue.Heap.length h);
  check_bool "order intact after remove" true
    (Pqueue.Heap.to_sorted_list h = [ (1, "b"); (1, "d"); (2, "e"); (3, "a") ])

let prop_stable_sort =
  QCheck.Test.make ~name:"equal keys drain in insertion order" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 0 64) (int_range 0 4)))
    (fun (capacity, keys) ->
      let h = Pqueue.Heap.create ~capacity ~cmp:by_key () in
      let tagged = List.mapi (fun i k -> (k, i)) keys in
      List.iter (Pqueue.Heap.push h) tagged;
      Pqueue.Heap.to_sorted_list h = List.stable_sort by_key tagged)

let prop_remove_keeps_order =
  QCheck.Test.make ~name:"remove preserves heap order and stability" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 32) (int_range 0 4)) (int_range 0 31))
    (fun (keys, victim) ->
      let h = Pqueue.Heap.create ~capacity:2 ~cmp:by_key () in
      let tagged = List.mapi (fun i k -> (k, i)) keys in
      List.iter (Pqueue.Heap.push h) tagged;
      let removed = Pqueue.Heap.remove h (fun (_, i) -> i = victim) in
      let expected =
        List.stable_sort by_key (List.filter (fun (_, i) -> i <> victim) tagged)
      in
      (match removed with
      | Some (_, i) -> i = victim
      | None -> not (List.exists (fun (_, i) -> i = victim) tagged))
      && Pqueue.Heap.to_sorted_list h = expected)

let prop_grow_from_sized_start =
  QCheck.Test.make ~name:"heap grown from a sized start stays sorted" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 0 64) int))
    (fun (capacity, l) ->
      let h = Pqueue.Heap.create ~capacity ~cmp:Int.compare () in
      List.iter (Pqueue.Heap.push h) l;
      Pqueue.Heap.capacity h >= List.length l
      && Pqueue.Heap.to_sorted_list h = List.sort Int.compare l)

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun l ->
      let h = Pqueue.Heap.of_list ~cmp:Int.compare l in
      Pqueue.Heap.to_sorted_list h = List.sort Int.compare l)

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: tl -> if y = x then List.rev_append acc tl else go (y :: acc) tl
  in
  go [] l

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop maintains min" ~count:200
    QCheck.(pair (int_range 1 16) (list (pair bool small_int)))
    (fun (capacity, ops) ->
      let h = Pqueue.Heap.create ~capacity ~cmp:Int.compare () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then begin
            let expected =
              match !model with [] -> None | l -> Some (List.fold_left min max_int l)
            in
            let got = Pqueue.Heap.pop h in
            (match got with Some x -> model := remove_one x !model | None -> ());
            got = expected
          end
          else begin
            Pqueue.Heap.push h v;
            model := v :: !model;
            true
          end)
        ops)

let suite =
  ( "heap",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "empty pops" `Quick test_pop_empty;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "capacity hint" `Quick test_capacity_hint;
      Alcotest.test_case "FIFO same-key order" `Quick test_fifo_same_key;
      Alcotest.test_case "FIFO across growth" `Quick test_fifo_across_growth;
      Alcotest.test_case "FIFO vs capacity hint" `Quick test_fifo_capacity_interaction;
      Alcotest.test_case "remove by predicate" `Quick test_remove;
      QCheck_alcotest.to_alcotest prop_stable_sort;
      QCheck_alcotest.to_alcotest prop_remove_keeps_order;
      QCheck_alcotest.to_alcotest prop_grow_from_sized_start;
      QCheck_alcotest.to_alcotest prop_heap_sort;
      QCheck_alcotest.to_alcotest prop_interleaved;
    ] )
