open Eventsim
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let topo = T.generate (T.spec ~pops:5 ~routers_per_pop:5 ~peer_ases:6 ~peering_points_per_as:3 ())
let table = RG.generate topo (RG.spec ~n_prefixes:150 ~seed:5 ())
let tspec = TG.spec ~events:200 ~duration:(Time.hours 1) ~seed:9 ()
let events = TG.generate table tspec

let test_sorted () =
  let rec ok = function
    | (a : TG.event) :: (b :: _ as rest) -> a.TG.time <= b.TG.time && ok rest
    | _ -> true
  in
  check_bool "time-sorted" true (ok events)

let test_within_horizon () =
  (* flap restores can overshoot duration by <= ~92s *)
  List.iter
    (fun (e : TG.event) ->
      check_bool "in range" true (e.TG.time >= 0 && e.TG.time <= Time.hours 1 + Time.sec 95))
    events

let test_flap_consistency () =
  (* every withdrawal has a matching restore announce later for the same
     session and path id *)
  let withdraws =
    List.filter_map
      (fun (e : TG.event) ->
        match e.TG.action with
        | TG.Withdraw { router; neighbor; prefix; path_id } ->
          Some (e.TG.time, router, neighbor, prefix, path_id)
        | TG.Announce _ -> None)
      events
  in
  check_bool "some flaps" true (withdraws <> []);
  List.iter
    (fun (t, router, neighbor, prefix, path_id) ->
      let restored =
        List.exists
          (fun (e : TG.event) ->
            e.TG.time > t
            &&
            match e.TG.action with
            | TG.Announce { router = r; neighbor = n; route } ->
              r = router && n = neighbor
              && Netaddr.Prefix.equal route.Bgp.Route.prefix prefix
              && route.Bgp.Route.path_id = path_id
            | TG.Withdraw _ -> false)
          events
      in
      check_bool "restored" true restored)
    withdraws

let test_flap_window () =
  (* a narrow restore window bounds every withdraw->re-announce gap:
     restore = withdraw + uniform [min, max) + the same per-point jitter
     both arrivals already carry *)
  let wmin = Time.sec 2 and wmax = Time.sec 5 in
  let fast =
    TG.generate table
      (TG.spec ~events:200 ~duration:(Time.hours 1) ~flap_share:0.9
         ~flap_restore_min:wmin ~flap_restore_max:wmax ~seed:9 ())
  in
  let restore_of (t, router, neighbor, prefix, path_id) =
    List.find_map
      (fun (e : TG.event) ->
        match e.TG.action with
        | TG.Announce { router = r; neighbor = n; route }
          when e.TG.time > t && r = router && n = neighbor
               && Netaddr.Prefix.equal route.Bgp.Route.prefix prefix
               && route.Bgp.Route.path_id = path_id -> Some e.TG.time
        | _ -> None)
      fast
  in
  let checked = ref 0 in
  List.iter
    (fun (e : TG.event) ->
      match e.TG.action with
      | TG.Withdraw { router; neighbor; prefix; path_id } -> (
        match restore_of (e.TG.time, router, neighbor, prefix, path_id) with
        | None -> Alcotest.fail "flap without restore"
        | Some rt ->
          incr checked;
          let gap = rt - e.TG.time in
          (* jitter spreads the two arrivals by < 2 * default jitter *)
          check_bool "gap within window" true
            (gap >= wmin - (Time.sec 2 * 2) && gap <= wmax + (Time.sec 2 * 2)))
      | TG.Announce _ -> ())
    fast;
  check_bool "windowed flaps exercised" true (!checked > 10)

let test_flap_window_default_stability () =
  (* spelling out the default window redraws nothing: traces are
     bit-identical to the pre-knob generator *)
  let explicit =
    TG.generate table
      (TG.spec ~events:200 ~duration:(Time.hours 1)
         ~flap_restore_min:(Time.sec 30) ~flap_restore_max:(Time.sec 90)
         ~seed:9 ())
  in
  let default_ =
    TG.generate table (TG.spec ~events:200 ~duration:(Time.hours 1) ~seed:9 ())
  in
  check_bool "bit-identical" true (explicit = default_)

let test_actions_reference_known_sessions () =
  let known =
    List.map (fun (s : T.session) -> (s.T.router, Netaddr.Ipv4.to_int s.T.neighbor)) topo.T.sessions
  in
  List.iter
    (fun (e : TG.event) ->
      match e.TG.action with
      | TG.Announce { router; neighbor; _ } | TG.Withdraw { router; neighbor; _ } ->
        let key = (router, Netaddr.Ipv4.to_int neighbor) in
        (* customer sessions aren't in topo.sessions; accept 172.32/11 space *)
        let is_customer = Netaddr.Ipv4.to_int neighbor >= 0xAC20_0000 in
        check_bool "session known" true (is_customer || List.mem key known))
    events

let test_determinism () =
  let again = TG.generate table tspec in
  check_int "same count" (List.length events) (List.length again);
  check_bool "identical" true (events = again)

let test_zipf_concentration () =
  (* the most active prefix should carry well above the uniform share *)
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (e : TG.event) ->
      let p =
        match e.TG.action with
        | TG.Announce { route; _ } -> route.Bgp.Route.prefix
        | TG.Withdraw { prefix; _ } -> prefix
      in
      let k = Netaddr.Prefix.to_key p in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    events;
  let total = Hashtbl.fold (fun _ c acc -> acc + c) counts 0 in
  let top = Hashtbl.fold (fun _ c acc -> max acc c) counts 0 in
  check_bool "skewed" true (float_of_int top > 3. *. float_of_int total /. 150.)

let test_empty_when_no_events () =
  check_bool "empty" true (TG.generate table (TG.spec ~events:0 ()) = [])

let test_schedule_and_run () =
  let scheme = T.abrr_scheme ~aps:2 ~arrs_per_ap:1 topo in
  let cfg = T.config ~med_mode:Bgp.Decision.Always_compare ~scheme topo in
  let net = Abrr_core.Network.create cfg in
  RG.inject_all table net;
  Helpers.quiesce ~max_events:2_000_000 net;
  TG.schedule net events;
  Helpers.quiesce ~max_events:5_000_000 net;
  let a, w = TG.action_count events in
  check_int "actions" (List.length events) (a + w)

(* --- Streaming replay equivalence -------------------------------------
   replay (constant-memory, chunked) must leave the network in exactly
   the state schedule + run leaves it in — checked with Snapshot.digest,
   which covers every RIB, session, timer and counter. *)

let fresh_net () =
  let scheme = T.abrr_scheme ~aps:2 ~arrs_per_ap:1 topo in
  let cfg = T.config ~med_mode:Bgp.Decision.Always_compare ~scheme topo in
  let net = Abrr_core.Network.create cfg in
  RG.inject_all table net;
  Helpers.quiesce ~max_events:2_000_000 net;
  net

let digest net =
  match Snapshot.digest net with
  | Ok d -> d
  | Error e -> Alcotest.failf "digest failed: %s" e

let test_replay_equals_schedule () =
  let reference = fresh_net () in
  TG.schedule reference events;
  Helpers.quiesce ~max_events:5_000_000 reference;
  let ref_digest = digest reference in
  (* replay from a materialised list, with a chunk small enough to force
     many refills *)
  let streamed = fresh_net () in
  (match TG.replay ~chunk:7 streamed (TG.of_list events) with
  | Ok Eventsim.Sim.Quiescent -> ()
  | Ok o -> Alcotest.failf "replay outcome %a" Eventsim.Sim.pp_outcome o
  | Error e -> Alcotest.failf "replay failed: %s" e);
  check_bool "of_list replay = schedule" true (digest streamed = ref_digest);
  (* replay off an MRT file stream: disk round-trip included *)
  let path = Filename.temp_file "abrr_replay" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topo.Mrt.save path ~local_as:(Bgp.Asn.of_int 65000) events;
      let from_file = fresh_net () in
      match Topo.Mrt.open_stream path with
      | Error e -> Alcotest.failf "open failed: %s" e
      | Ok stream ->
        Fun.protect
          ~finally:(fun () -> Topo.Mrt.close_stream stream)
          (fun () ->
            match TG.replay ~chunk:32 from_file (fun () -> Topo.Mrt.next stream) with
            | Ok Eventsim.Sim.Quiescent ->
              check_bool "MRT-stream replay = schedule" true
                (digest from_file = ref_digest)
            | Ok o -> Alcotest.failf "replay outcome %a" Eventsim.Sim.pp_outcome o
            | Error e -> Alcotest.failf "replay failed: %s" e))

let test_replay_rejects_unsorted () =
  let net = fresh_net () in
  match events with
  | first :: second :: _ ->
    (* deliver them out of order: later event first *)
    let unsorted = TG.of_list [ second; { first with TG.time = second.TG.time + 5 };
                                first ] in
    check_bool "unsorted rejected" true
      (Result.is_error (TG.replay ~chunk:1 net unsorted))
  | _ -> Alcotest.fail "trace too short"

let test_replay_bad_chunk () =
  let net = fresh_net () in
  Alcotest.check_raises "chunk 0"
    (Invalid_argument "Trace_gen.replay: chunk must be positive") (fun () ->
      ignore (TG.replay ~chunk:0 net (TG.of_list [])))

let test_replay_empty () =
  let net = fresh_net () in
  match TG.replay net (TG.of_list []) with
  | Ok Eventsim.Sim.Quiescent -> ()
  | Ok o -> Alcotest.failf "outcome %a" Eventsim.Sim.pp_outcome o
  | Error e -> Alcotest.failf "failed: %s" e

let suite =
  ( "trace-gen",
    [
      Alcotest.test_case "time-sorted" `Quick test_sorted;
      Alcotest.test_case "horizon" `Quick test_within_horizon;
      Alcotest.test_case "flaps restore" `Quick test_flap_consistency;
      Alcotest.test_case "flap restore window" `Quick test_flap_window;
      Alcotest.test_case "default window bit-identical" `Quick
        test_flap_window_default_stability;
      Alcotest.test_case "sessions known" `Quick test_actions_reference_known_sessions;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "zipf concentration" `Quick test_zipf_concentration;
      Alcotest.test_case "empty trace" `Quick test_empty_when_no_events;
      Alcotest.test_case "schedule and run" `Slow test_schedule_and_run;
      Alcotest.test_case "replay = schedule (digest)" `Slow
        test_replay_equals_schedule;
      Alcotest.test_case "replay rejects unsorted" `Quick
        test_replay_rejects_unsorted;
      Alcotest.test_case "replay bad chunk" `Quick test_replay_bad_chunk;
      Alcotest.test_case "replay empty" `Quick test_replay_empty;
    ] )
