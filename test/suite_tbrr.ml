open Helpers
module N = Abrr_core.Network
module C = Abrr_core.Config
module R = Abrr_core.Router

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

(* Standard two-cluster layout over 8 routers:
   cluster 0: TRRs {0,1}, clients {4,5}; cluster 1: TRRs {2,3}, clients {6,7}. *)
let two_clusters ?multipath ?med_mode () =
  let clusters =
    [
      { C.trrs = [ 0; 1 ]; clients = [ 4; 5 ] };
      { C.trrs = [ 2; 3 ]; clients = [ 6; 7 ] };
    ]
  in
  C.make ?med_mode ~n_routers:8 ~igp:(flat_igp 8) ~scheme:(C.tbrr ?multipath clusters) ()

let test_cross_cluster_propagation () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  for i = 0 to 7 do
    if i <> 4 then
      check_bool (Printf.sprintf "r%d" i) true (N.best_exit net ~router:i prefix = Some 4)
  done

let test_withdraw_propagates () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  N.withdraw net ~router:4 ~neighbor:(neighbor 4) prefix ~path_id:0;
  quiesce net;
  List.iter (fun e -> check_bool "withdrawn" true (e = None)) (exits net prefix)

let test_reflection_attributes () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  (* a remote client's stored route carries ORIGINATOR_ID and CLUSTER_LIST *)
  let stored =
    List.concat_map
      (fun trr -> R.received_set (N.router net 6) ~from:trr prefix)
      [ 2; 3 ]
  in
  check_bool "has stored" true (stored <> []);
  List.iter
    (fun (r : Bgp.Route.t) ->
      check_bool "originator set" true
        (Bgp.Route.originator_id r = Some (C.loopback 4));
      check_bool "cluster list nonempty" true ((Bgp.Route.cluster_list r) <> []))
    stored

let test_not_returned_to_sender () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  (* the injecting client never receives its own route back *)
  check_bool "no echo" true
    (List.for_all
       (fun trr -> R.received_set (N.router net 4) ~from:trr prefix = [])
       [ 0; 1 ])

let test_trr_to_trr_no_reflection_of_mesh_routes () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  (* TRR 2's best is mesh-learned; its out_mesh must not carry it *)
  let c2 = N.router net 2 in
  check_bool "trr2 knows" true (R.best c2 prefix <> None);
  (* counters sanity: TRR 0 generated updates for both groups *)
  check_bool "trr0 generated" true
    ((N.counters net 0).Abrr_core.Counters.updates_generated > 0)

let test_dual_cluster_client () =
  (* a client in two clusters receives reflections from all four TRRs *)
  let clusters =
    [
      { C.trrs = [ 0 ]; clients = [ 2; 4 ] };
      { C.trrs = [ 1 ]; clients = [ 2; 5 ] };
    ]
  in
  let cfg = C.make ~n_routers:6 ~igp:(flat_igp 6) ~scheme:(C.tbrr clusters) () in
  let net = N.create cfg in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  check_bool "from trr0" true (R.received_set (N.router net 2) ~from:0 prefix <> []);
  check_bool "from trr1" true (R.received_set (N.router net 2) ~from:1 prefix <> []);
  check_bool "resolves" true (N.best_exit net ~router:2 prefix = Some 4)

let test_multipath_advertises_set () =
  let net =
    N.create (two_clusters ~multipath:true ~med_mode:Bgp.Decision.Per_neighbor_as ())
  in
  inject net ~router:4 (route ~asn:7000 ~prefix 4);
  inject net ~router:6 (route ~asn:8000 ~prefix 6);
  quiesce net;
  (* with multipath TBRR the client receives the full best-AS-level set *)
  let cfgd = two_clusters ~multipath:true () in
  ignore cfgd;
  let stored5 =
    List.concat_map
      (fun trr -> R.received_set (N.router net 5) ~from:trr prefix)
      [ 0; 1 ]
  in
  (* best-only storage keeps one per TRR, but the reflector set has 2 *)
  check_bool "client stored" true (stored5 <> []);
  let out = R.rib_out_entries (N.router net 0) in
  check_bool "trr rib-out holds multiple" true (out >= 2)

let test_single_path_hides_diversity () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~asn:7000 ~prefix 4);
  inject net ~router:6 (route ~asn:8000 ~prefix 6);
  quiesce net;
  (* single-path TBRR: client 5 knows at most one route per TRR and both
     TRRs of its cluster agree, so diversity is hidden *)
  let stored =
    List.concat_map
      (fun trr -> R.received_set (N.router net 5) ~from:trr prefix)
      [ 0; 1 ]
  in
  let distinct =
    List.sort_uniq compare (List.map owner_of_route stored)
  in
  check_int "one visible exit" 1 (List.length distinct)

let test_rib_in_accounting () =
  let net = N.create (two_clusters ()) in
  inject net ~router:4 (route ~prefix 4);
  inject net ~router:6 (route ~prefix:(pfx "21.0.0.0/16") 6);
  quiesce net;
  let trr0 = N.router net 0 in
  check_bool "managed > 0" true (R.rib_in_managed trr0 > 0);
  check_bool "unmanaged > 0" true (R.rib_in_unmanaged trr0 > 0);
  check_int "total" (R.rib_in_managed trr0 + R.rib_in_unmanaged trr0)
    (R.rib_in_entries trr0)

let suite =
  ( "tbrr",
    [
      Alcotest.test_case "cross-cluster propagation" `Quick
        test_cross_cluster_propagation;
      Alcotest.test_case "withdraw propagates" `Quick test_withdraw_propagates;
      Alcotest.test_case "RFC4456 reflection attrs" `Quick test_reflection_attributes;
      Alcotest.test_case "not returned to sender" `Quick test_not_returned_to_sender;
      Alcotest.test_case "mesh export rules" `Quick
        test_trr_to_trr_no_reflection_of_mesh_routes;
      Alcotest.test_case "client in two clusters" `Quick test_dual_cluster_client;
      Alcotest.test_case "multipath TBRR set" `Quick test_multipath_advertises_set;
      Alcotest.test_case "single-path hides diversity" `Quick
        test_single_path_hides_diversity;
      Alcotest.test_case "RIB-In accounting" `Quick test_rib_in_accounting;
    ] )
