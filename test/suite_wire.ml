open Netaddr
open Bgp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let route ?(path_id = 0) ?(med = None) ?(comms = []) ?(ecs = []) ?(orig = None)
    ?(clusters = []) prefix =
  Route.make ~path_id
    ~as_path:(As_path.of_asns [ Asn.of_int 3001; Asn.of_int 55_000 ])
    ~med ~originator_id:orig ~cluster_list:clusters ~communities:comms
    ~ext_communities:ecs ~prefix:(Prefix.of_string prefix)
    ~next_hop:(Ipv4.of_string "10.0.0.1") ()

let decode_one ~add_paths bs =
  match Wire.decode_all ~add_paths bs with
  | Ok msgs -> msgs
  | Error e -> Alcotest.failf "decode error: %a" Wire.pp_error e

let concat bss = Bytes.concat Bytes.empty bss

let roundtrip ~add_paths msg =
  decode_one ~add_paths (concat (Wire.encode ~add_paths msg))

let test_keepalive () =
  match roundtrip ~add_paths:false Msg.Keepalive with
  | [ Msg.Keepalive ] -> ()
  | _ -> Alcotest.fail "keepalive roundtrip"

let test_open () =
  let o =
    {
      Msg.asn = Asn.of_int 65_000;
      hold_time = 180;
      bgp_id = Ipv4.of_string "10.0.0.7";
      add_paths = true;
    }
  in
  match roundtrip ~add_paths:false (Msg.Open o) with
  | [ Msg.Open o' ] ->
    check_bool "asn" true (Asn.equal o'.Msg.asn o.Msg.asn);
    check_int "hold" 180 o'.Msg.hold_time;
    check_bool "id" true (Ipv4.equal o'.Msg.bgp_id o.Msg.bgp_id);
    check_bool "add-paths" true o'.Msg.add_paths
  | _ -> Alcotest.fail "open roundtrip"

let test_open_4byte_asn () =
  let o =
    {
      Msg.asn = Asn.of_int 4_200_000_000;
      hold_time = 90;
      bgp_id = Ipv4.of_string "10.0.0.1";
      add_paths = false;
    }
  in
  match roundtrip ~add_paths:false (Msg.Open o) with
  | [ Msg.Open o' ] ->
    check_bool "as4 via capability" true (Asn.to_int o'.Msg.asn = 4_200_000_000)
  | _ -> Alcotest.fail "open as4 roundtrip"

let test_notification () =
  let n = { Msg.code = 6; subcode = 2; data = "bye" } in
  match roundtrip ~add_paths:false (Msg.Notification n) with
  | [ Msg.Notification n' ] ->
    check_int "code" 6 n'.Msg.code;
    check_int "subcode" 2 n'.Msg.subcode;
    check_bool "data" true (n'.Msg.data = "bye")
  | _ -> Alcotest.fail "notification roundtrip"

let test_update_roundtrip () =
  let r1 =
    route ~path_id:3 ~med:(Some 42)
      ~comms:[ Community.make 65000 100; Community.no_export ]
      ~ecs:[ Ext_community.reflected ]
      ~orig:(Some (Ipv4.of_string "10.0.0.9"))
      ~clusters:[ Ipv4.of_string "192.168.0.1"; Ipv4.of_string "192.168.0.2" ]
      "20.1.0.0/16"
  in
  let r2 = route ~path_id:4 "21.0.0.0/8" in
  let u =
    {
      Msg.withdrawn = [ { Msg.prefix = Prefix.of_string "22.0.0.0/24"; path_id = 7 } ];
      announced = [ r1; r2 ];
    }
  in
  let msgs = roundtrip ~add_paths:true (Msg.Update u) in
  let withdrawn = List.concat_map (function Msg.Update u -> u.Msg.withdrawn | _ -> []) msgs in
  let announced = List.concat_map (function Msg.Update u -> u.Msg.announced | _ -> []) msgs in
  check_int "withdrawn" 1 (List.length withdrawn);
  check_int "announced" 2 (List.length announced);
  let r1' = List.find (fun (r : Route.t) -> r.Route.path_id = 3) announced in
  check_bool "full attrs survive" true (Route.equal r1 r1');
  let r2' = List.find (fun (r : Route.t) -> r.Route.path_id = 4) announced in
  check_bool "r2 survives" true (Route.equal r2 r2')

let test_update_groups_by_attrs () =
  (* routes with identical attributes share one UPDATE message *)
  let mk p = route p in
  let u = { Msg.withdrawn = []; announced = [ mk "20.0.0.0/16"; mk "21.0.0.0/16" ] } in
  check_int "one message" 1 (List.length (Wire.encode ~add_paths:false (Msg.Update u)));
  let u2 =
    {
      Msg.withdrawn = [];
      announced = [ mk "20.0.0.0/16"; route ~med:(Some 9) "21.0.0.0/16" ];
    }
  in
  check_int "two messages" 2 (List.length (Wire.encode ~add_paths:false (Msg.Update u2)))

let test_update_size_split () =
  (* enough NLRI to exceed 4096 bytes must split into several messages *)
  let routes =
    List.init 1500 (fun i ->
        route ~path_id:(i + 1)
          (Printf.sprintf "20.%d.%d.0/24" (i / 250) (i mod 250)))
  in
  let msgs = Wire.encode ~add_paths:true (Msg.Update { Msg.withdrawn = []; announced = routes }) in
  check_bool "split" true (List.length msgs > 1);
  List.iter
    (fun m -> check_bool "size cap" true (Bytes.length m <= Wire.max_message_size))
    msgs;
  let decoded = decode_one ~add_paths:true (concat msgs) in
  let announced = List.concat_map (function Msg.Update u -> u.Msg.announced | _ -> []) decoded in
  check_int "all survive" 1500 (List.length announced)

let test_confed_segments_roundtrip () =
  let r =
    Route.make
      ~as_path:
        (As_path.of_segments
           [ As_path.Confed_seq [ Asn.of_int 64513; Asn.of_int 64512 ];
             As_path.Seq [ Asn.of_int 3001 ];
             As_path.Confed_set [ Asn.of_int 64514 ];
             As_path.Set [ Asn.of_int 9 ] ])
      ~prefix:(Prefix.of_string "20.0.0.0/16")
      ~next_hop:(Ipv4.of_string "10.0.0.1") ()
  in
  let u = { Msg.withdrawn = []; announced = [ r ] } in
  match roundtrip ~add_paths:false (Msg.Update u) with
  | [ Msg.Update u' ] ->
    check_bool "segments preserved" true
      (Route.equal r (List.hd u'.Msg.announced))
  | _ -> Alcotest.fail "confed roundtrip"

let test_decode_errors () =
  let good = concat (Wire.encode ~add_paths:false Msg.Keepalive) in
  (* corrupt the marker *)
  let bad = Bytes.copy good in
  Bytes.set bad 0 '\x00';
  check_bool "bad marker" true (Result.is_error (Wire.decode_all ~add_paths:false bad));
  (* truncate *)
  let short = Bytes.sub good 0 (Bytes.length good - 1) in
  check_bool "truncated" true (Result.is_error (Wire.decode_all ~add_paths:false short));
  (* bad type *)
  let badt = Bytes.copy good in
  Bytes.set badt 18 '\x09';
  check_bool "bad type" true (Result.is_error (Wire.decode_all ~add_paths:false badt))

let test_add_paths_flag_matters () =
  (* a message encoded with add-paths decodes differently without it *)
  let u = { Msg.withdrawn = []; announced = [ route ~path_id:5 "20.0.0.0/16" ] } in
  let bs = concat (Wire.encode ~add_paths:true (Msg.Update u)) in
  match Wire.decode_all ~add_paths:true bs with
  | Ok [ Msg.Update u' ] ->
    check_int "path id preserved" 5 (List.hd u'.Msg.announced).Route.path_id
  | _ -> Alcotest.fail "add-paths decode"

(* --- property: random updates roundtrip ----------------------------- *)

let gen_route =
  let open QCheck.Gen in
  let* a = int_range 1 223 in
  let* b = int_range 0 255 in
  let* len = int_range 8 32 in
  let* path_id = int_range 0 1000 in
  let* n_as = int_range 0 4 in
  let* asns = list_size (return n_as) (int_range 1 400_000) in
  let* med = opt (int_range 0 10_000) in
  let* lp = int_range 0 1000 in
  let* orig = opt (int_range 0 0xFFFF) in
  let* n_cl = int_range 0 3 in
  let* cls = list_size (return n_cl) (int_range 0 0xFFFF) in
  let* n_com = int_range 0 3 in
  let* comms = list_size (return n_com) (pair (int_range 0 0xFFFF) (int_range 0 0xFFFF)) in
  let* reflected = bool in
  return
    (Route.make ~path_id
       ~as_path:(As_path.of_asns (List.map Asn.of_int asns))
       ~med ~local_pref:lp
       ~originator_id:(Option.map (fun x -> Ipv4.of_int (0x0A00_0000 + x)) orig)
       ~cluster_list:(List.map (fun x -> Ipv4.of_int (0xC0A8_0000 + x)) cls)
       ~communities:(List.map (fun (a, t) -> Community.make a t) comms)
       ~ext_communities:(if reflected then [ Ext_community.reflected ] else [])
       ~prefix:(Prefix.make (Ipv4.of_octets a b 0 0) len)
       ~next_hop:(Ipv4.of_int (0x0A00_0000 + path_id))
       ())

let arb_route = QCheck.make gen_route

let prop_roundtrip =
  QCheck.Test.make ~name:"random update wire roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 10) arb_route)
    (fun routes ->
      (* distinct (prefix, path_id) per update; dedupe *)
      let seen = Hashtbl.create 16 in
      let routes =
        List.filter
          (fun (r : Route.t) ->
            let k = (Prefix.to_key r.Route.prefix, r.Route.path_id) in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          routes
      in
      let u = { Msg.withdrawn = []; announced = routes } in
      let bs = concat (Wire.encode ~add_paths:true (Msg.Update u)) in
      match Wire.decode_all ~add_paths:true bs with
      | Error _ -> false
      | Ok msgs ->
        let announced =
          List.concat_map (function Msg.Update u -> u.Msg.announced | _ -> []) msgs
        in
        let sort rs = List.sort Route.compare rs in
        List.equal Route.equal (sort routes) (sort announced))

(* The analytical sizer must agree with the real encoder on every
   update: bytes and message count, across attribute grouping,
   withdrawal batching, 4096-byte fragmentation and both add-paths
   settings. The generator's long AS paths also cross the 255-byte
   extended-length attribute threshold. *)
let prop_measure_matches_encode =
  QCheck.Test.make ~name:"measure_update = encode (bytes and messages)"
    ~count:300
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 40) arb_route)
        (list_of_size (Gen.int_range 0 30)
           (pair (int_bound 255) (int_bound 1000)))
        bool)
    (fun (routes, wds, add_paths) ->
      let long_tail =
        (* a >63-ASN path forces the extended-length attribute header *)
        match routes with
        | r :: _ ->
          [
            Route.update
              ~as_path:
                (As_path.of_asns (List.init 70 (fun i -> Asn.of_int (i + 1))))
              r;
          ]
        | [] -> []
      in
      let u =
        {
          Msg.withdrawn =
            List.map
              (fun (b, pid) ->
                {
                  Msg.prefix = Prefix.make (Ipv4.of_octets 30 b 0 0) 16;
                  path_id = pid;
                })
              wds;
          announced = routes @ long_tail;
        }
      in
      let encoded = Wire.encode ~add_paths (Msg.Update u) in
      let bytes = List.fold_left (fun n b -> n + Bytes.length b) 0 encoded in
      Wire.measure_update ~add_paths u = (bytes, List.length encoded))

let prop_fuzz_no_crash =
  QCheck.Test.make ~name:"random bytes never crash the decoder" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun s ->
      match Wire.decode_all ~add_paths:true (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

let prop_bitflip_no_crash =
  QCheck.Test.make ~name:"bit-flipped valid messages never crash" ~count:300
    QCheck.(pair (int_bound 1000) (int_bound 255))
    (fun (pos, v) ->
      let u =
        { Msg.withdrawn = [];
          announced = [ route ~path_id:1 ~med:(Some 9) "20.0.0.0/16" ] }
      in
      let bs = concat (Wire.encode ~add_paths:true (Msg.Update u)) in
      if Bytes.length bs = 0 then true
      else begin
        let bs = Bytes.copy bs in
        Bytes.set bs (pos mod Bytes.length bs) (Char.chr v);
        match Wire.decode_all ~add_paths:true bs with Ok _ | Error _ -> true
      end)

let suite =
  ( "wire",
    [
      Alcotest.test_case "keepalive" `Quick test_keepalive;
      Alcotest.test_case "open" `Quick test_open;
      Alcotest.test_case "open 4-byte ASN" `Quick test_open_4byte_asn;
      Alcotest.test_case "notification" `Quick test_notification;
      Alcotest.test_case "update full attrs" `Quick test_update_roundtrip;
      Alcotest.test_case "attribute grouping" `Quick test_update_groups_by_attrs;
      Alcotest.test_case "4096-byte split" `Quick test_update_size_split;
      Alcotest.test_case "confed segments" `Quick test_confed_segments_roundtrip;
      Alcotest.test_case "decode errors" `Quick test_decode_errors;
      Alcotest.test_case "add-paths ids" `Quick test_add_paths_flag_matters;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_measure_matches_encode;
      QCheck_alcotest.to_alcotest prop_fuzz_no_crash;
      QCheck_alcotest.to_alcotest prop_bitflip_no_crash;
    ] )
