open Bgp

let asn = Asn.of_int
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_length () =
  check_int "empty" 0 (As_path.length As_path.empty);
  check_int "seq" 3 (As_path.length (As_path.of_asns [ asn 1; asn 2; asn 3 ]));
  (* an AS_SET counts as one hop *)
  let p =
    As_path.of_segments
      [ As_path.Seq [ asn 1; asn 2 ]; As_path.Set [ asn 3; asn 4; asn 5 ] ]
  in
  check_int "seq+set" 3 (As_path.length p)

let test_prepend () =
  let p = As_path.prepend (asn 9) (As_path.of_asns [ asn 1 ]) in
  check_int "len" 2 (As_path.length p);
  check_bool "first" true (As_path.first_as p = Some (asn 9));
  (* prepending to a path that starts with a SET opens a new SEQ *)
  let q = As_path.prepend (asn 9) (As_path.of_segments [ As_path.Set [ asn 1 ] ]) in
  check_int "set-prepend len" 2 (As_path.length q);
  check_bool "set-prepend first" true (As_path.first_as q = Some (asn 9))

let test_contains () =
  let p =
    As_path.of_segments [ As_path.Seq [ asn 1 ]; As_path.Set [ asn 2; asn 3 ] ]
  in
  check_bool "in seq" true (As_path.contains (asn 1) p);
  check_bool "in set" true (As_path.contains (asn 3) p);
  check_bool "absent" false (As_path.contains (asn 4) p)

let test_ends () =
  let p = As_path.of_asns [ asn 7; asn 8; asn 9 ] in
  check_bool "first" true (As_path.first_as p = Some (asn 7));
  check_bool "origin" true (As_path.origin_as p = Some (asn 9));
  check_bool "empty first" true (As_path.first_as As_path.empty = None);
  check_bool "empty origin" true (As_path.origin_as As_path.empty = None);
  (* a path ending in a SET has no well-defined origin *)
  let q = As_path.of_segments [ As_path.Seq [ asn 1 ]; As_path.Set [ asn 2 ] ] in
  check_bool "set origin" true (As_path.origin_as q = None)

let test_to_string () =
  let p =
    As_path.of_segments [ As_path.Seq [ asn 10; asn 20 ]; As_path.Set [ asn 30 ] ]
  in
  Alcotest.(check string) "render" "10 20 {30}" (As_path.to_string p)

let test_confed_segments () =
  let p =
    As_path.of_segments
      [ As_path.Confed_seq [ asn 64512; asn 64513 ]; As_path.Seq [ asn 1; asn 2 ] ]
  in
  check_int "confed hops free" 2 (As_path.length p);
  check_bool "first skips confed" true (As_path.first_as p = Some (asn 1));
  check_bool "origin" true (As_path.origin_as p = Some (asn 2));
  check_bool "confed contains" true (As_path.confed_contains (asn 64513) p);
  check_bool "not in confed" false (As_path.confed_contains (asn 1) p);
  check_bool "strip" true
    (As_path.equal (As_path.strip_confed p) (As_path.of_asns [ asn 1; asn 2 ]));
  let q = As_path.prepend_confed (asn 64514) p in
  check_bool "prepend confed" true (As_path.confed_contains (asn 64514) q);
  check_int "still free" 2 (As_path.length q)

let test_compare () =
  let a = As_path.of_asns [ asn 1; asn 2 ] in
  let b = As_path.of_asns [ asn 1; asn 2 ] in
  check_bool "equal" true (As_path.equal a b);
  check_bool "not equal" false (As_path.equal a (As_path.of_asns [ asn 2; asn 1 ]))

let test_interning () =
  (* structurally equal paths built through any constructor are the same
     heap value, so equality degenerates to a pointer check *)
  let a = As_path.of_asns [ asn 1; asn 2; asn 3 ] in
  let b = As_path.of_asns [ asn 1; asn 2; asn 3 ] in
  check_bool "of_asns interned" true (a == b);
  let c = As_path.of_segments [ As_path.Seq [ asn 1; asn 2; asn 3 ] ] in
  check_bool "of_segments same table" true (a == c);
  check_bool "prepend interned" true
    (As_path.prepend (asn 1) (As_path.of_asns [ asn 2; asn 3 ]) == a);
  let with_confed =
    As_path.of_segments
      [ As_path.Confed_seq [ asn 64512 ]; As_path.Seq [ asn 1; asn 2; asn 3 ] ]
  in
  check_bool "strip_confed interned" true (As_path.strip_confed with_confed == a);
  check_bool "empty is unique" true
    (As_path.of_asns [] == As_path.empty
    && As_path.of_segments [] == As_path.empty);
  check_bool "hash agrees" true (As_path.hash a = As_path.hash b);
  check_bool "distinct paths distinct" false
    (As_path.of_asns [ asn 1; asn 2 ] == a)

let prop_intern_canonical =
  QCheck.Test.make ~name:"equal segment lists intern to one value" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 6) (int_range 1 5))
    (fun asns ->
      let path () = As_path.of_asns (List.map asn asns) in
      let a = path () and b = path () in
      a == b
      && As_path.length a = List.length asns
      && As_path.compare a b = 0)

let suite =
  ( "as-path",
    [
      Alcotest.test_case "length semantics" `Quick test_length;
      Alcotest.test_case "prepend" `Quick test_prepend;
      Alcotest.test_case "contains" `Quick test_contains;
      Alcotest.test_case "first/origin" `Quick test_ends;
      Alcotest.test_case "render" `Quick test_to_string;
      Alcotest.test_case "confederation segments" `Quick test_confed_segments;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "hash-consing" `Quick test_interning;
      QCheck_alcotest.to_alcotest prop_intern_canonical;
    ] )
