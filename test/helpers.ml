(* Shared builders for integration tests. *)

open Netaddr
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router

let pfx = Prefix.of_string
let neighbor k = Ipv4.of_int (0xAC10_0000 + k)

(* Complete graph over n routers, uniform metric, with per-pair noise to
   make IGP distances distinct and decisions deterministic. *)
let flat_igp ?(metric = 100) n =
  let g = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Igp.Graph.add_edge g i j (metric + ((i * 7) + (j * 13) mod 23))
    done
  done;
  g

let ring_igp ?(metric = 10) n =
  let g = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    Igp.Graph.add_edge g i ((i + 1) mod n) metric
  done;
  g

let route ?(asn = 7000) ?med ?(lp = 100) ?(path_id = 0) ?(origin = Bgp.Origin.Igp)
    ~prefix k =
  Bgp.Route.make ~path_id ~origin ~local_pref:lp
    ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int asn; Bgp.Asn.of_int 65500 ])
    ~med ~prefix ~next_hop:(neighbor k) ()

let inject net ~router ?(k = router) r = N.inject net ~router ~neighbor:(neighbor k) r

(* Run to quiescence with the runtime invariant checker on: spot-checks
   every [check_every] events plus an exhaustive sweep once converged. *)
let quiesce ?(max_events = 500_000) ?(check = true) ?(check_every = 10_000) net =
  if check then Verify.Invariant.install ~every:check_every net;
  (match N.run ~max_events net with
  | Eventsim.Sim.Quiescent -> ()
  | o -> Alcotest.failf "network did not converge: %a" Eventsim.Sim.pp_outcome o);
  if check then begin
    Verify.Invariant.check_now net;
    Verify.Invariant.uninstall net
  end

let full_mesh_config ?med_mode ?mrai n =
  C.make ?med_mode ?mrai ~n_routers:n ~igp:(flat_igp n) ~scheme:C.Full_mesh ()

let single_ap_abrr ?(arrs = [ 0 ]) ?med_mode ?(n = 6) () =
  C.make ?med_mode ~n_routers:n ~igp:(flat_igp n)
    ~scheme:(C.abrr ~partition:(Abrr_core.Partition.uniform 1) [| arrs |])
    ()

(* With next-hop-self, the injecting border router of an iBGP route. *)
let owner_of_route (r : Bgp.Route.t) =
  Ipv4.to_int (Bgp.Route.next_hop r) - 0x0A00_0000

let exits net prefix =
  List.init (N.router_count net) (fun i -> N.best_exit net ~router:i prefix)

(* Compare steady-state routes of two networks router-by-router. *)
let same_choices neta netb prefix =
  let n = N.router_count neta in
  let rec go i =
    if i >= n then true
    else
      let nh x =
        Option.map (fun (r : Bgp.Route.t) -> (Bgp.Route.next_hop r)) (N.best x ~router:i prefix)
      in
      nh neta = nh netb && go (i + 1)
  in
  n = N.router_count netb && go 0
