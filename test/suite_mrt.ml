module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let local_as = Bgp.Asn.of_int 65000

let topo = T.generate (T.spec ~pops:4 ~routers_per_pop:4 ~peer_ases:5 ~peering_points_per_as:3 ())
let table = RG.generate topo (RG.spec ~n_prefixes:60 ~seed:2 ())
let events = TG.generate table (TG.spec ~events:80 ~seed:4 ())

let same_event (a : TG.event) (b : TG.event) =
  a.TG.time = b.TG.time
  &&
  match (a.TG.action, b.TG.action) with
  | TG.Announce x, TG.Announce y ->
    x.router = y.router
    && Netaddr.Ipv4.equal x.neighbor y.neighbor
    && Bgp.Route.equal x.route y.route
  | TG.Withdraw x, TG.Withdraw y ->
    x.router = y.router
    && Netaddr.Ipv4.equal x.neighbor y.neighbor
    && Netaddr.Prefix.equal x.prefix y.prefix
    && x.path_id = y.path_id
  | _, _ -> false

let test_roundtrip () =
  let encoded = Topo.Mrt.encode_events ~local_as events in
  check_bool "nonempty" true (Bytes.length encoded > 0);
  match Topo.Mrt.decode_events encoded with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
    check_int "count" (List.length events) (List.length decoded);
    List.iter2
      (fun a b -> check_bool "event preserved" true (same_event a b))
      events decoded

let test_empty () =
  let encoded = Topo.Mrt.encode_events ~local_as [] in
  check_int "empty bytes" 0 (Bytes.length encoded);
  check_bool "empty decode" true (Topo.Mrt.decode_events encoded = Ok [])

let test_file_io () =
  let path = Filename.temp_file "abrr_trace" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topo.Mrt.save path ~local_as events;
      match Topo.Mrt.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok decoded -> check_int "count" (List.length events) (List.length decoded))

let test_corrupt_rejected () =
  let encoded = Topo.Mrt.encode_events ~local_as events in
  let bad = Bytes.sub encoded 0 (Bytes.length encoded - 3) in
  check_bool "truncated rejected" true (Result.is_error (Topo.Mrt.decode_events bad));
  let garbled = Bytes.copy encoded in
  Bytes.set garbled 5 '\xEE' (* record type *);
  check_bool "bad type rejected" true
    (Result.is_error (Topo.Mrt.decode_events garbled));
  (* a length field lying about the record size (u32 at offset 8) *)
  let lying = Bytes.copy encoded in
  Bytes.set lying 8 '\xFF';
  check_bool "bad length rejected" true
    (Result.is_error (Topo.Mrt.decode_events lying));
  let short = Bytes.copy encoded in
  Bytes.set short 10 '\x00';
  Bytes.set short 11 '\x01' (* record claims a 1-byte body *);
  check_bool "short length rejected" true
    (Result.is_error (Topo.Mrt.decode_events short));
  (* garbage inside the first record's BGP attribute bytes: the MRT
     body's fixed part is 20 bytes past the 12-byte header, so offset
     40 lands inside the UPDATE's path attributes *)
  let garbage = Bytes.copy encoded in
  Bytes.set garbage 40 '\xC3';
  Bytes.set garbage 41 '\x99';
  check_bool "garbage attributes rejected" true
    (Result.is_error (Topo.Mrt.decode_events garbage))

let test_corrupt_never_raises () =
  (* whatever byte is corrupted, [decode_events] must return a result *)
  let encoded = Topo.Mrt.encode_events ~local_as events in
  let limit = min 200 (Bytes.length encoded) in
  for i = 0 to limit - 1 do
    let b = Bytes.copy encoded in
    Bytes.set b i '\xFF';
    match Topo.Mrt.decode_events b with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "byte %d: decode raised %s" i (Printexc.to_string e)
  done

let test_timestamps_microseconds () =
  let ev =
    {
      TG.time = 1_234_567;
      action =
        TG.Announce
          {
            router = 2;
            neighbor = Netaddr.Ipv4.of_string "172.16.0.1";
            route = Helpers.route ~prefix:(Helpers.pfx "20.0.0.0/16") 1;
          };
    }
  in
  match Topo.Mrt.decode_events (Topo.Mrt.encode_events ~local_as [ ev ]) with
  | Ok [ ev' ] -> check_int "usec preserved" 1_234_567 ev'.TG.time
  | _ -> Alcotest.fail "roundtrip"

let suite =
  ( "mrt",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "file io" `Quick test_file_io;
      Alcotest.test_case "corruption rejected" `Quick test_corrupt_rejected;
      Alcotest.test_case "corruption never raises" `Quick test_corrupt_never_raises;
      Alcotest.test_case "microsecond timestamps" `Quick test_timestamps_microseconds;
    ] )
