module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let local_as = Bgp.Asn.of_int 65000

let topo = T.generate (T.spec ~pops:4 ~routers_per_pop:4 ~peer_ases:5 ~peering_points_per_as:3 ())
let table = RG.generate topo (RG.spec ~n_prefixes:60 ~seed:2 ())
let events = TG.generate table (TG.spec ~events:80 ~seed:4 ())

let same_event (a : TG.event) (b : TG.event) =
  a.TG.time = b.TG.time
  &&
  match (a.TG.action, b.TG.action) with
  | TG.Announce x, TG.Announce y ->
    x.router = y.router
    && Netaddr.Ipv4.equal x.neighbor y.neighbor
    && Bgp.Route.equal x.route y.route
  | TG.Withdraw x, TG.Withdraw y ->
    x.router = y.router
    && Netaddr.Ipv4.equal x.neighbor y.neighbor
    && Netaddr.Prefix.equal x.prefix y.prefix
    && x.path_id = y.path_id
  | _, _ -> false

let test_roundtrip () =
  let encoded = Topo.Mrt.encode_events ~local_as events in
  check_bool "nonempty" true (Bytes.length encoded > 0);
  match Topo.Mrt.decode_events encoded with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
    check_int "count" (List.length events) (List.length decoded);
    List.iter2
      (fun a b -> check_bool "event preserved" true (same_event a b))
      events decoded

let test_empty () =
  let encoded = Topo.Mrt.encode_events ~local_as [] in
  check_int "empty bytes" 0 (Bytes.length encoded);
  check_bool "empty decode" true (Topo.Mrt.decode_events encoded = Ok [])

let test_file_io () =
  let path = Filename.temp_file "abrr_trace" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topo.Mrt.save path ~local_as events;
      match Topo.Mrt.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok decoded -> check_int "count" (List.length events) (List.length decoded))

let test_corrupt_rejected () =
  let encoded = Topo.Mrt.encode_events ~local_as events in
  let bad = Bytes.sub encoded 0 (Bytes.length encoded - 3) in
  check_bool "truncated rejected" true (Result.is_error (Topo.Mrt.decode_events bad));
  let garbled = Bytes.copy encoded in
  Bytes.set garbled 5 '\xEE' (* record type *);
  check_bool "bad type rejected" true
    (Result.is_error (Topo.Mrt.decode_events garbled));
  (* a length field lying about the record size (u32 at offset 8) *)
  let lying = Bytes.copy encoded in
  Bytes.set lying 8 '\xFF';
  check_bool "bad length rejected" true
    (Result.is_error (Topo.Mrt.decode_events lying));
  let short = Bytes.copy encoded in
  Bytes.set short 10 '\x00';
  Bytes.set short 11 '\x01' (* record claims a 1-byte body *);
  check_bool "short length rejected" true
    (Result.is_error (Topo.Mrt.decode_events short));
  (* garbage inside the first record's BGP attribute bytes: the MRT
     body's fixed part is 20 bytes past the 12-byte header, so offset
     40 lands inside the UPDATE's path attributes *)
  let garbage = Bytes.copy encoded in
  Bytes.set garbage 40 '\xC3';
  Bytes.set garbage 41 '\x99';
  check_bool "garbage attributes rejected" true
    (Result.is_error (Topo.Mrt.decode_events garbage))

let test_corrupt_never_raises () =
  (* whatever byte is corrupted, [decode_events] must return a result *)
  let encoded = Topo.Mrt.encode_events ~local_as events in
  let limit = min 200 (Bytes.length encoded) in
  for i = 0 to limit - 1 do
    let b = Bytes.copy encoded in
    Bytes.set b i '\xFF';
    match Topo.Mrt.decode_events b with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "byte %d: decode raised %s" i (Printexc.to_string e)
  done

let test_timestamps_microseconds () =
  let ev =
    {
      TG.time = 1_234_567;
      action =
        TG.Announce
          {
            router = 2;
            neighbor = Netaddr.Ipv4.of_string "172.16.0.1";
            route = Helpers.route ~prefix:(Helpers.pfx "20.0.0.0/16") 1;
          };
    }
  in
  match Topo.Mrt.decode_events (Topo.Mrt.encode_events ~local_as [ ev ]) with
  | Ok [ ev' ] -> check_int "usec preserved" 1_234_567 ev'.TG.time
  | _ -> Alcotest.fail "roundtrip"

(* --- Streaming reader -------------------------------------------------
   The record-at-a-time stream must hand out exactly the event sequence
   the in-memory decoder produces, and corruption must surface as a
   sticky [Error] rather than an exception or silent truncation. *)

let with_file bytes f =
  let path = Filename.temp_file "abrr_stream" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc;
      f path)

let drain path =
  (* pull the stream dry by hand, returning events up to EOF or error *)
  match Topo.Mrt.open_stream path with
  | Error e -> Error e
  | Ok stream ->
    Fun.protect
      ~finally:(fun () -> Topo.Mrt.close_stream stream)
      (fun () ->
        let rec go acc =
          match Topo.Mrt.next stream with
          | Ok (Some ev) -> go (ev :: acc)
          | Ok None -> Ok (List.rev acc)
          | Error e ->
            (* failure must be sticky *)
            check_bool "stream stays failed" true
              (Result.is_error (Topo.Mrt.next stream));
            Error e
        in
        go [])

let test_stream_matches_decode () =
  let encoded = Topo.Mrt.encode_events ~local_as events in
  with_file encoded (fun path ->
      let streamed =
        match drain path with
        | Ok evs -> evs
        | Error e -> Alcotest.failf "stream failed: %s" e
      in
      let materialised =
        match Topo.Mrt.decode_events encoded with
        | Ok evs -> evs
        | Error e -> Alcotest.failf "decode failed: %s" e
      in
      check_int "same count" (List.length materialised) (List.length streamed);
      List.iter2
        (fun a b -> check_bool "same event" true (same_event a b))
        materialised streamed;
      (* fold_file sees the identical sequence *)
      match Topo.Mrt.fold_file path ~init:0 ~f:(fun n _ -> n + 1) with
      | Ok n -> check_int "fold_file count" (List.length materialised) n
      | Error e -> Alcotest.failf "fold_file failed: %s" e)

let test_stream_empty_file () =
  with_file Bytes.empty (fun path ->
      check_bool "empty stream" true (drain path = Ok []);
      check_bool "empty fold" true
        (Topo.Mrt.fold_file path ~init:0 ~f:(fun n _ -> n + 1) = Ok 0))

let test_stream_corruption () =
  let encoded = Topo.Mrt.encode_events ~local_as events in
  let streamed_err bytes = Result.is_error (with_file bytes drain) in
  (* truncation mid-header: cut inside the trailing record's 12-byte header *)
  check_bool "truncated mid-header" true
    (streamed_err (Bytes.sub encoded 0 (Bytes.length encoded - 3)));
  (* truncation mid-body: the last record loses its final bytes only if
     the cut is deeper than the header; chop 20 bytes *)
  check_bool "truncated mid-body" true
    (streamed_err (Bytes.sub encoded 0 (Bytes.length encoded - 20)));
  (* garbled record type *)
  let garbled = Bytes.copy encoded in
  Bytes.set garbled 5 '\xEE';
  check_bool "bad type" true (streamed_err garbled);
  (* length field lying large: reader hits EOF inside the claimed body *)
  let lying = Bytes.copy encoded in
  Bytes.set lying 8 '\xFF';
  check_bool "lying length" true (streamed_err lying);
  (* garbage in the first record's attribute bytes *)
  let garbage = Bytes.copy encoded in
  Bytes.set garbage 40 '\xC3';
  Bytes.set garbage 41 '\x99';
  check_bool "garbage attributes" true (streamed_err garbage);
  (* a valid prefix of whole records still streams cleanly: events before
     a deep truncation are delivered before the error *)
  match with_file (Bytes.sub encoded 0 (Bytes.length encoded - 3)) (fun path ->
      match Topo.Mrt.open_stream path with
      | Error e -> Alcotest.failf "open failed: %s" e
      | Ok stream ->
        Fun.protect
          ~finally:(fun () -> Topo.Mrt.close_stream stream)
          (fun () ->
            let rec count n =
              match Topo.Mrt.next stream with
              | Ok (Some _) -> count (n + 1)
              | Ok None | Error _ -> n
            in
            count 0))
  with
  | n -> check_bool "prefix events delivered" true (n > 0)

let suite =
  ( "mrt",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "file io" `Quick test_file_io;
      Alcotest.test_case "corruption rejected" `Quick test_corrupt_rejected;
      Alcotest.test_case "corruption never raises" `Quick test_corrupt_never_raises;
      Alcotest.test_case "microsecond timestamps" `Quick test_timestamps_microseconds;
      Alcotest.test_case "stream matches decode" `Quick test_stream_matches_decode;
      Alcotest.test_case "stream empty file" `Quick test_stream_empty_file;
      Alcotest.test_case "stream corruption" `Quick test_stream_corruption;
    ] )
