(* The static analyzer (lib/verify): known-bad fixtures must be flagged,
   known-good ABRR configurations must come out clean. *)

open Netaddr
module C = Abrr_core.Config
module G = Abrr_core.Gadgets
module P = Abrr_core.Partition
module V = Verify

let check_bool = Alcotest.(check bool)
let ip = Ipv4.of_string

let has ?severity check report =
  List.exists
    (fun (f : V.Report.finding) ->
      f.check = check
      && match severity with None -> true | Some s -> f.severity = s)
    report

let detail_of check report =
  match List.find_opt (fun (f : V.Report.finding) -> f.check = check) report with
  | Some f -> f.detail
  | None -> ""

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* --- AP soundness ---------------------------------------------------- *)

let test_coverage_good () =
  List.iter
    (fun k ->
      let r = V.Ap_check.coverage (V.Ap_check.ranges_of_partition (P.uniform k)) in
      check_bool (Printf.sprintf "uniform %d clean" k) true (V.Report.clean r))
    [ 1; 2; 7; 64 ]

let test_coverage_gap () =
  (* [0, 10.0.0.0) and [11.0.0.0, max]: hole of one /8. *)
  let ranges =
    [
      (ip "0.0.0.0", ip "9.255.255.255");
      (ip "11.0.0.0", ip "255.255.255.255");
    ]
  in
  let r = V.Ap_check.coverage ranges in
  check_bool "gap flagged" false (V.Report.ok r);
  check_bool "mentions gap" true (contains (detail_of "ap.coverage" r) "gap")

let test_coverage_overlap () =
  let ranges =
    [
      (ip "0.0.0.0", ip "128.0.0.0");
      (ip "127.0.0.0", ip "255.255.255.255");
    ]
  in
  let r = V.Ap_check.coverage ranges in
  check_bool "overlap flagged" false (V.Report.ok r);
  check_bool "mentions overlap" true
    (contains (detail_of "ap.coverage" r) "overlap")

let test_coverage_empty_and_inverted () =
  check_bool "no APs" false (V.Report.ok (V.Ap_check.coverage []));
  let r = V.Ap_check.coverage [ (ip "10.0.0.0", ip "9.0.0.0") ] in
  check_bool "inverted range" false (V.Report.ok r)

let test_cidr_decomposition () =
  (* Every range of a partition decomposes into blocks covering exactly
     its address count. *)
  let count_of p =
    Int64.of_int (Prefix.size p)
  in
  List.iter
    (fun k ->
      List.iter
        (fun (lo, hi) ->
          let cidrs = V.Ap_check.cidrs_of_range (lo, hi) in
          let total =
            List.fold_left (fun acc p -> Int64.add acc (count_of p)) 0L cidrs
          in
          let want =
            Int64.of_int (Ipv4.to_int hi - Ipv4.to_int lo + 1)
          in
          Alcotest.(check int64) "address count" want total;
          List.iter
            (fun p ->
              check_bool "block inside range" true
                (Ipv4.compare (Prefix.first p) lo >= 0
                && Ipv4.compare (Prefix.last p) hi <= 0))
            cidrs)
        (V.Ap_check.ranges_of_partition (P.uniform k)))
    [ 1; 3; 5; 31 ]

let test_trie_owners_span () =
  let part = P.uniform 2 in
  let trie = V.Ap_check.to_trie (V.Ap_check.ranges_of_partition part) in
  let whole = Prefix.v "0.0.0.0" 0 in
  Alcotest.(check (list int)) "spanning prefix" [ 0; 1 ]
    (V.Ap_check.owners trie whole);
  Alcotest.(check (list int)) "trie = partition" (P.aps_of_prefix part whole)
    (V.Ap_check.owners trie whole);
  let low = Prefix.v "10.0.0.0" 8 in
  Alcotest.(check (list int)) "low half" [ 0 ] (V.Ap_check.owners trie low)

let test_arr_liveness () =
  let part = P.uniform 2 in
  let arrs = [| [ 0; 1 ]; [ 2 ] |] in
  let up_report = V.Ap_check.check ~n_routers:4 part arrs in
  check_bool "all up: ok" true (V.Report.ok up_report);
  let down r = r <> 2 in
  let down_report = V.Ap_check.check ~live:down ~n_routers:4 part arrs in
  check_bool "AP 1 dead: fail" false (V.Report.ok down_report);
  let degraded r = r <> 0 in
  let degraded_report = V.Ap_check.check ~live:degraded ~n_routers:4 part arrs in
  check_bool "1 of 2 alive: ok but warned" true (V.Report.ok degraded_report);
  check_bool "redundancy warning" true
    (has ~severity:V.Report.Warn "ap.arrs" degraded_report)

(* --- Signaling graph ------------------------------------------------- *)

let tbrr_config ?n clusters =
  let n = match n with Some n -> n | None -> 4 in
  C.make ~n_routers:n ~igp:(Helpers.flat_igp n) ~scheme:(C.tbrr clusters) ()

let test_cyclic_cluster_hierarchy () =
  let config =
    tbrr_config
      [
        { C.trrs = [ 0 ]; clients = [ 1; 2 ] };
        { C.trrs = [ 1 ]; clients = [ 0; 3 ] };
      ]
  in
  let r = V.Signaling.check config in
  check_bool "cycle flagged" false (V.Report.ok r);
  check_bool "hierarchy check" true
    (has ~severity:V.Report.Fail "signaling.tbrr-hierarchy" r)

let test_acyclic_hierarchy_ok () =
  let config =
    tbrr_config
      [
        { C.trrs = [ 0 ]; clients = [ 1 ] };
        { C.trrs = [ 1 ]; clients = [ 2; 3 ] };
      ]
  in
  check_bool "two-level hierarchy ok" true (V.Report.ok (V.Signaling.check config))

let test_orphan_router () =
  let config = tbrr_config [ { C.trrs = [ 0 ]; clients = [ 1; 2 ] } ] in
  let r = V.Signaling.check config in
  check_bool "orphan flagged" false (V.Report.ok r);
  check_bool "membership check" true
    (has ~severity:V.Report.Fail "signaling.tbrr-membership" r)

let test_all_trrs_down () =
  let config = tbrr_config [ { C.trrs = [ 0 ]; clients = [ 1; 2; 3 ] } ] in
  let r = V.Signaling.check ~live:(fun i -> i <> 0) config in
  check_bool "dead cluster flagged" false (V.Report.ok r)

let test_find_cycle () =
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 0 ] | _ -> [] in
  (match V.Signaling.find_cycle ~n:4 ~succ with
  | Some (v0 :: _ as c) -> check_bool "closed" true (List.rev c |> List.hd = v0)
  | Some [] | None -> Alcotest.fail "cycle not found");
  let dag = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  check_bool "dag has no cycle" true (V.Signaling.find_cycle ~n:4 ~succ:dag = None)

(* --- Anomaly potential: the gadgets ---------------------------------- *)

let test_med_gadget_flagged () =
  let r = V.Static.analyze_gadget (G.med_oscillation G.G_tbrr) in
  check_bool "fails" false (V.Report.ok r);
  check_bool "MED-classified" true
    (contains (detail_of "anomaly.oscillation" r) "MED")

let test_topology_gadget_flagged () =
  let r = V.Static.analyze_gadget (G.topology_oscillation G.G_tbrr) in
  check_bool "fails" false (V.Report.ok r);
  check_bool "topology-classified" true
    (contains (detail_of "anomaly.oscillation" r) "topology")

let test_gadgets_clean_under_abrr_and_mesh () =
  List.iter
    (fun (name, g) ->
      let r = V.Static.analyze_gadget g in
      check_bool (name ^ " ok") true (V.Report.ok r))
    [
      ("med/full-mesh", G.med_oscillation G.G_full_mesh);
      ("med/abrr-1", G.med_oscillation (G.G_abrr 1));
      ("med/abrr-2", G.med_oscillation (G.G_abrr 2));
      ("topology/full-mesh", G.topology_oscillation G.G_full_mesh);
      ("topology/abrr-1", G.topology_oscillation (G.G_abrr 1));
      ("inefficiency/abrr-1", G.path_inefficiency (G.G_abrr 1));
    ]

let test_best_external_stabilizes () =
  let r = V.Static.analyze_gadget (G.med_oscillation G.G_tbrr_best_external) in
  check_bool "no oscillation failure" true (V.Report.ok r)

(* Cross-check: the static mesh game ({!V.Oscillation}) and the dynamic
   schedule explorer ({!Explore}) are two independent oracles for the
   same §2.3 claims. On every gadget they must agree: a statically
   predicted dispute cycle is realized by a concrete schedule, and a
   statically stable config yields no cycle on any explored schedule
   (exhaustively for the configs the explorer can exhaust, bounded
   otherwise). *)
let test_explorer_agrees_with_mesh_game () =
  let module E = Explore in
  let explored g =
    let sc = E.scenario_of_gadget ~check_exits:false g in
    (E.explore ~limits:{ E.default_limits with E.max_states = 2_000 } sc)
      .E.verdict
  in
  let static (g : G.t) =
    V.Oscillation.analyze g.G.config ~prefix:g.G.prefix g.G.injections
  in
  let agree name g =
    match (static g, explored g) with
    | V.Oscillation.Cycle _, E.Unsafe { E.violation = E.Dispute_cycle _; _ } ->
      ()
    | (V.Oscillation.Stable _ | V.Oscillation.Free _), E.Safe _ -> ()
    | s, _ ->
      Alcotest.failf "%s: explorer disagrees with mesh game (%s)" name
        (match s with
        | V.Oscillation.Cycle _ -> "static: cycle"
        | V.Oscillation.Stable _ -> "static: stable"
        | V.Oscillation.Free _ -> "static: free"
        | V.Oscillation.Not_analyzed r -> "static: not analyzed: " ^ r)
  in
  List.iter
    (fun (name, g) -> agree name g)
    [
      ("med/tbrr", G.med_oscillation G.G_tbrr);
      ("med/abrr-1", G.med_oscillation (G.G_abrr 1));
      ("med/abrr-2", G.med_oscillation (G.G_abrr 2));
      ("med/full-mesh", G.med_oscillation G.G_full_mesh);
      ("topology/tbrr", G.topology_oscillation G.G_tbrr);
      ("topology/abrr-1", G.topology_oscillation (G.G_abrr 1));
      ("topology/full-mesh", G.topology_oscillation G.G_full_mesh);
      ("path/tbrr", G.path_inefficiency G.G_tbrr);
      ("path/abrr-1", G.path_inefficiency (G.G_abrr 1));
      ("path/full-mesh", G.path_inefficiency G.G_full_mesh);
    ];
  (* RFC 3345's own fix: always-compare MED removes the cycle from the
     MED gadget — both oracles must see the same config flip verdicts *)
  let g = G.med_oscillation G.G_tbrr in
  let g =
    { g with G.config = { g.G.config with C.med_mode = Bgp.Decision.Always_compare } }
  in
  agree "med/tbrr always-compare" g

let test_deflection_detected () =
  let g = G.path_inefficiency G.G_tbrr in
  let r = V.Static.analyze_gadget g in
  (* steering is a warning, not a failure — but it must be reported, and
     must name the observer *)
  check_bool "ok (warn only)" true (V.Report.ok r);
  let d = detail_of "anomaly.deflection" r in
  check_bool "deflection warned" true
    (has ~severity:V.Report.Warn "anomaly.deflection" r);
  check_bool "observer named" true
    (contains d (Printf.sprintf "r%d" G.observer))

let test_abrr_deflection_free () =
  let r = V.Static.analyze_gadget (G.path_inefficiency (G.G_abrr 1)) in
  check_bool "clean of warns too" true
    (not (has ~severity:V.Report.Warn "anomaly.deflection" r));
  check_bool "loop-free" true (has "anomaly.fwd-loop" r && V.Report.ok r)

let test_stable_tbrr_passes () =
  (* A benign TBRR workload: single cluster, one injection — converges. *)
  let config = tbrr_config [ { C.trrs = [ 0 ]; clients = [ 1; 2; 3 ] } ] in
  let workload =
    [ (1, Helpers.neighbor 1, Helpers.route ~prefix:(Helpers.pfx "30.0.0.0/8") 1) ]
  in
  let r = V.Static.analyze ~workload config in
  check_bool "ok" true (V.Report.ok r);
  check_bool "fixed point reported" true
    (contains (detail_of "anomaly.oscillation" r) "fixed point")

(* --- Symbolic propagation vs simulator: the nine §2.3 rows ----------- *)

(* Every gadget × scheme row of §2.3's anomaly matrix, checked against
   two independent oracles: diverging rows must agree with the mesh game
   (and carry the right oscillation code); converging rows must yield
   exactly the simulator's quiescent per-router egress assignment. *)
let test_propagation_matrix () =
  let module Pr = V.Propagation in
  let module N = Abrr_core.Network in
  let rows =
    [
      ("med", G.med_oscillation, Some "OSC-MED");
      ("topology", G.topology_oscillation, Some "OSC-TOPO");
      ("path", G.path_inefficiency, None);
    ]
  and flavors =
    [ ("tbrr", G.G_tbrr); ("abrr-1", G.G_abrr 1); ("mesh", G.G_full_mesh) ]
  in
  List.iter
    (fun (gname, make, osc_code) ->
      List.iter
        (fun (fname, flavor) ->
          let name = gname ^ "/" ^ fname in
          let g = make flavor in
          let t = Pr.solve g.G.config g.G.injections in
          let fs = Pr.findings t in
          match (osc_code, flavor) with
          | Some code, G.G_tbrr ->
            (match Pr.verdict t g.G.prefix with
            | Pr.Diverged _ -> ()
            | _ -> Alcotest.failf "%s: expected static divergence" name);
            (match
               V.Oscillation.analyze g.G.config ~prefix:g.G.prefix
                 g.G.injections
             with
            | V.Oscillation.Cycle _ -> ()
            | _ -> Alcotest.failf "%s: mesh game disagrees" name);
            check_bool (name ^ ": classified " ^ code) true
              (V.Report.by_code code fs <> [])
          | _ ->
            (match Pr.verdict t g.G.prefix with
            | Pr.Converged _ -> ()
            | _ -> Alcotest.failf "%s: expected static convergence" name);
            let net = G.build g in
            Helpers.quiesce net;
            (* the simulator reports [None] for a border using its own
               raw eBGP route (external NEXT_HOP); the model says the
               border exits at itself — align before comparing *)
            let sim_exit i =
              match N.best_exit net ~router:i g.G.prefix with
              | Some e -> Some e
              | None ->
                if N.best net ~router:i g.G.prefix <> None then Some i
                else None
            in
            let model = Pr.exits t g.G.prefix in
            for i = 0 to N.router_count net - 1 do
              if sim_exit i <> model.(i) then
                Alcotest.failf "%s: r%d exit mismatch (sim %s, model %s)" name
                  i
                  (match sim_exit i with
                  | Some e -> string_of_int e
                  | None -> "-")
                  (match model.(i) with
                  | Some e -> string_of_int e
                  | None -> "-")
            done;
            let subopt = V.Report.by_code "EXIT-SUBOPT" fs <> [] in
            if gname = "path" && fname = "tbrr" then begin
              check_bool (name ^ ": suboptimal exit warned") true subopt;
              check_bool (name ^ ": observer named") true
                (contains (detail_of "prop.exit" fs)
                   (Printf.sprintf "r%d" G.observer))
            end
            else check_bool (name ^ ": no suboptimal exit") false subopt)
        flavors)
    rows

(* --- Static orchestration -------------------------------------------- *)

let test_validate_failure_reported () =
  (* ARR index out of range: Config.validate must reject it and the
     analyzer must surface that as a finding, not an exception. *)
  let config =
    C.make ~n_routers:3 ~igp:(Helpers.flat_igp 3)
      ~scheme:(C.abrr ~partition:(P.uniform 1) [| [ 7 ] |])
      ()
  in
  let r = V.Static.analyze config in
  check_bool "not ok" false (V.Report.ok r);
  check_bool "validate finding" true
    (has ~severity:V.Report.Fail "config.validate" r)

let test_assert_ok () =
  let good = V.Static.analyze (Helpers.single_ap_abrr ()) in
  V.Static.assert_ok good;
  match V.Static.assert_ok (V.Static.analyze_gadget (G.med_oscillation G.G_tbrr)) with
  | () -> Alcotest.fail "expected Static_failure"
  | exception V.Static.Static_failure msg ->
    check_bool "message carries the report" true (contains msg "FAIL")

(* --- Runtime invariants ---------------------------------------------- *)

let test_invariants_hold_abrr () =
  let config = Helpers.single_ap_abrr ~arrs:[ 0; 1 ] () in
  let net = Abrr_core.Network.create config in
  let p = Helpers.pfx "40.0.0.0/8" in
  Helpers.inject net ~router:2 (Helpers.route ~prefix:p 1);
  Helpers.inject net ~router:3 (Helpers.route ~prefix:p ~asn:7001 2);
  V.Invariant.install ~every:100 net;
  Helpers.quiesce net;
  V.Invariant.check_now net;
  V.Invariant.uninstall net

let test_invariants_hold_cluster_list_mode () =
  let config =
    C.make ~n_routers:5 ~igp:(Helpers.flat_igp 5)
      ~scheme:
        (C.abrr ~loop_prevention:C.Cluster_list
           ~partition:(P.uniform 2)
           [| [ 0 ]; [ 1 ] |])
      ()
  in
  let net = Abrr_core.Network.create config in
  Helpers.inject net ~router:2
    (Helpers.route ~prefix:(Helpers.pfx "40.0.0.0/8") 1);
  Helpers.inject net ~router:3
    (Helpers.route ~prefix:(Helpers.pfx "200.0.0.0/8") 2);
  V.Invariant.install ~every:50 net;
  Helpers.quiesce net;
  V.Invariant.check_now net

let test_invariants_hold_under_tbrr_and_mesh () =
  List.iter
    (fun scheme ->
      let config =
        C.make ~n_routers:4 ~igp:(Helpers.flat_igp 4) ~scheme ()
      in
      let net = Abrr_core.Network.create config in
      Helpers.inject net ~router:1
        (Helpers.route ~prefix:(Helpers.pfx "50.0.0.0/8") 1);
      V.Invariant.install ~every:50 net;
      Helpers.quiesce net;
      V.Invariant.check_now net)
    [
      C.Full_mesh;
      C.tbrr [ { C.trrs = [ 0 ]; clients = [ 1; 2; 3 ] } ];
    ]

let suite =
  ( "verify",
    [
      Alcotest.test_case "AP coverage: uniform partitions clean" `Quick
        test_coverage_good;
      Alcotest.test_case "AP coverage: gap flagged" `Quick test_coverage_gap;
      Alcotest.test_case "AP coverage: overlap flagged" `Quick
        test_coverage_overlap;
      Alcotest.test_case "AP coverage: degenerate inputs" `Quick
        test_coverage_empty_and_inverted;
      Alcotest.test_case "CIDR decomposition is exact" `Quick
        test_cidr_decomposition;
      Alcotest.test_case "trie owners match partition" `Quick
        test_trie_owners_span;
      Alcotest.test_case "ARR liveness and redundancy" `Quick test_arr_liveness;
      Alcotest.test_case "cyclic cluster hierarchy flagged" `Quick
        test_cyclic_cluster_hierarchy;
      Alcotest.test_case "acyclic hierarchy passes" `Quick
        test_acyclic_hierarchy_ok;
      Alcotest.test_case "orphan router flagged" `Quick test_orphan_router;
      Alcotest.test_case "dead cluster flagged" `Quick test_all_trrs_down;
      Alcotest.test_case "find_cycle" `Quick test_find_cycle;
      Alcotest.test_case "MED gadget statically flagged" `Quick
        test_med_gadget_flagged;
      Alcotest.test_case "topology gadget statically flagged" `Quick
        test_topology_gadget_flagged;
      Alcotest.test_case "gadgets clean under ABRR / full mesh" `Quick
        test_gadgets_clean_under_abrr_and_mesh;
      Alcotest.test_case "best-external stabilizes the mesh game" `Quick
        test_best_external_stabilizes;
      Alcotest.test_case "explorer agrees with mesh game" `Quick
        test_explorer_agrees_with_mesh_game;
      Alcotest.test_case "TBRR deflection detected" `Quick
        test_deflection_detected;
      Alcotest.test_case "ABRR deflection-free" `Quick test_abrr_deflection_free;
      Alcotest.test_case "benign TBRR workload passes" `Quick
        test_stable_tbrr_passes;
      Alcotest.test_case "propagation matrix: nine gadget x scheme rows" `Quick
        test_propagation_matrix;
      Alcotest.test_case "validation failures become findings" `Quick
        test_validate_failure_reported;
      Alcotest.test_case "assert_ok" `Quick test_assert_ok;
      Alcotest.test_case "runtime invariants: ABRR" `Quick
        test_invariants_hold_abrr;
      Alcotest.test_case "runtime invariants: cluster-list mode" `Quick
        test_invariants_hold_cluster_list_mode;
      Alcotest.test_case "runtime invariants: TBRR and mesh" `Quick
        test_invariants_hold_under_tbrr_and_mesh;
    ] )
