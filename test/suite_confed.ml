(* BGP Confederations (RFC 5065) — the other §1 scaling mechanism,
   implemented as a third baseline. Sub-AS semantics: member-AS path
   segments that are invisible to path length, confed-eBGP preference
   between eBGP and iBGP, loop detection on member ASNs, and the known
   pathology: cyclic sub-AS graphs can oscillate. *)

open Helpers
module C = Abrr_core.Config
module N = Abrr_core.Network
module A = Abrr_core.Anomaly

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

(* 9 routers, 3 sub-ASes of 3, chained 0|1|2 through border routers. *)
let chain_net () =
  let sub_as_of = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let confed_links = [ (2, 3); (5, 6) ] in
  let cfg =
    C.make ~n_routers:9 ~igp:(flat_igp 9) ~scheme:(C.confed ~sub_as_of ~confed_links) ()
  in
  N.create cfg

let test_propagation_across_sub_ases () =
  let net = chain_net () in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  for i = 0 to 8 do
    if i <> 4 then
      check_bool (Printf.sprintf "r%d" i) true (N.best_exit net ~router:i prefix = Some 4)
  done

let test_confed_segments_accumulate () =
  let net = chain_net () in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  (* two sub-AS crossings to reach sub-AS 2's interior *)
  (match N.best net ~router:7 prefix with
  | Some r ->
    check_bool "crossed sub-AS 1" true
      (Bgp.As_path.confed_contains (C.member_asn 1) (Bgp.Route.as_path r));
    (* confed segments are invisible to path length *)
    check_int "length unchanged" 2 (Bgp.As_path.length (Bgp.Route.as_path r))
  | None -> Alcotest.fail "no route at r7");
  (* inside the originating sub-AS the path carries no confed segments *)
  match N.best net ~router:3 prefix with
  | Some r ->
    check_bool "clean inside" false
      (Bgp.As_path.confed_contains (C.member_asn 1) (Bgp.Route.as_path r))
  | None -> Alcotest.fail "no route at r3"

let test_withdraw_propagates () =
  let net = chain_net () in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  N.withdraw net ~router:4 ~neighbor:(neighbor 4) prefix ~path_id:0;
  quiesce net;
  List.iter (fun e -> check_bool "gone" true (e = None)) (exits net prefix)

let test_confed_length_does_not_penalize () =
  (* a route crossing two sub-ASes still ties on AS-path length with a
     local one; the decision falls through to later steps *)
  let net = chain_net () in
  inject net ~router:1 (route ~asn:7000 ~med:5 ~prefix 1);
  inject net ~router:7 (route ~asn:8000 ~med:1 ~prefix 7);
  quiesce net;
  (* with always-compare... default per-AS MED: different ASes, so MED
     doesn't discriminate; r4 sees both via confed links; both have equal
     AS-level length despite confed hops *)
  match N.best net ~router:4 prefix with
  | Some r -> check_int "tie on length" 2 (Bgp.As_path.length (Bgp.Route.as_path r))
  | None -> Alcotest.fail "no route"

let test_loop_detection () =
  let net = chain_net () in
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  (* hand router 3 (sub-AS 1 border) a route already carrying its own
     member ASN: it must be discarded *)
  let looped =
    Bgp.Route.make
      ~as_path:
        (Bgp.As_path.of_segments
           [ Bgp.As_path.Confed_seq [ C.member_asn 1 ]; Bgp.As_path.Seq [ Bgp.Asn.of_int 9 ] ])
      ~prefix:(pfx "30.0.0.0/16")
      ~next_hop:(C.loopback 2) ()
  in
  Abrr_core.Router.receive (N.router net 3) ~src:2
    ~items:[ (Abrr_core.Proto.Confed, Abrr_core.Proto.delta (pfx "30.0.0.0/16") [ looped ]) ]
    ~bytes:0 ~msgs:1;
  quiesce net;
  check_bool "looped route dropped" true (N.best net ~router:3 (pfx "30.0.0.0/16") = None);
  check_bool "counted" true (Abrr_core.Router.rejected_loops (N.router net 3) > 0)

let test_ring_oscillates () =
  (* cyclic sub-AS graph: mutual confed-external preference churns
     forever — the §1 claim that confederations share RR pathologies *)
  let sub_as_of = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let confed_links = [ (2, 3); (5, 6); (0, 8) ] in
  let cfg =
    C.make ~n_routers:9 ~igp:(flat_igp 9) ~scheme:(C.confed ~sub_as_of ~confed_links) ()
  in
  let net = N.create cfg in
  inject net ~router:4 (route ~prefix 4);
  let v = A.run ~max_events:100_000 net in
  check_bool "oscillates" true (A.oscillates v)

let test_confed_external_preference () =
  (* step 5: confed-external beats iBGP; a border router prefers the
     copy learned over the confed link to the same route via its own
     sub-AS mesh *)
  let net = chain_net () in
  inject net ~router:2 (route ~asn:7000 ~med:0 ~prefix 2);
  inject net ~router:4 (route ~asn:8000 ~med:0 ~prefix 4);
  quiesce net;
  (* router 3 hears 7000's route over the confed link from 2 (external)
     and 8000's via its own mesh client 4 (iBGP): both AS-level equal.
     Confed-external wins at step 5. *)
  match N.best net ~router:3 prefix with
  | Some r -> check_bool "confed external preferred" true (owner_of_route r = 2)
  | None -> Alcotest.fail "no route"

let test_validation () =
  let bad_len = C.confed ~sub_as_of:[| 0; 0 |] ~confed_links:[] in
  let cfg = C.make ~n_routers:3 ~igp:(flat_igp 3) ~scheme:bad_len () in
  check_bool "length" true (Result.is_error (C.validate cfg));
  let same_sub = C.confed ~sub_as_of:[| 0; 0; 1 |] ~confed_links:[ (0, 1) ] in
  let cfg = C.make ~n_routers:3 ~igp:(flat_igp 3) ~scheme:same_sub () in
  check_bool "same sub-AS link" true (Result.is_error (C.validate cfg));
  let ok = C.confed ~sub_as_of:[| 0; 0; 1 |] ~confed_links:[ (1, 2) ] in
  let cfg = C.make ~n_routers:3 ~igp:(flat_igp 3) ~scheme:ok () in
  check_bool "valid" true (C.validate cfg = Ok ())

let test_confed_vs_full_mesh_steady_state () =
  (* on an acyclic confed with a single exit, forwarding matches full
     mesh *)
  let fm = N.create (full_mesh_config 9) in
  let cf = chain_net () in
  inject fm ~router:4 (route ~prefix 4);
  inject cf ~router:4 (route ~prefix 4);
  quiesce fm;
  quiesce cf;
  check_bool "same exits" true (same_choices fm cf prefix)

let suite =
  ( "confederation",
    [
      Alcotest.test_case "propagation across sub-ASes" `Quick
        test_propagation_across_sub_ases;
      Alcotest.test_case "confed segments" `Quick test_confed_segments_accumulate;
      Alcotest.test_case "withdraw" `Quick test_withdraw_propagates;
      Alcotest.test_case "confed hops free of length" `Quick
        test_confed_length_does_not_penalize;
      Alcotest.test_case "loop detection" `Quick test_loop_detection;
      Alcotest.test_case "sub-AS ring oscillates" `Slow test_ring_oscillates;
      Alcotest.test_case "confed-external preference" `Quick
        test_confed_external_preference;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "matches full mesh (acyclic, single exit)" `Quick
        test_confed_vs_full_mesh_steady_state;
    ] )
