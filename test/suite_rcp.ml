(* Routing Control Platform (related work §5): replicated control-plane
   nodes with full visibility compute each client's best path from that
   client's IGP vantage. Correct paths like ABRR, but the platform pays
   a per-client RIB-Out and per-client update generation — the scaling
   concern the paper raises against RCP. *)

open Helpers
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

let rcp_config ?med_mode ?(rcps = [ 0 ]) n =
  C.make ?med_mode ~n_routers:n ~igp:(flat_igp n) ~scheme:(C.rcp rcps) ()

let test_propagation () =
  let net = N.create (rcp_config 6) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  for i = 1 to 5 do
    if i <> 2 then
      check_bool (Printf.sprintf "r%d" i) true (N.best_exit net ~router:i prefix = Some 2)
  done;
  (* the RCP node itself is pure control plane: no data-plane route *)
  check_bool "rcp no route" true (N.best net ~router:0 prefix = None);
  check_bool "is rcp" true (R.is_rcp (N.router net 0))

let test_per_client_hot_potato () =
  (* ring IGP, exits at 1 and 4: each client is told its own closest
     exit — per-vantage computation, unlike a single-best reflector *)
  let n = 7 in
  let g = Igp.Graph.create ~n in
  (* ring over routers 1..6; RCP node 0 hangs off router 1 *)
  for i = 1 to 6 do
    let j = if i = 6 then 1 else i + 1 in
    Igp.Graph.add_edge g i j 10
  done;
  Igp.Graph.add_edge g 0 1 1;
  let cfg = C.make ~n_routers:n ~igp:g ~scheme:(C.rcp [ 0 ]) () in
  let net = N.create cfg in
  inject net ~router:1 (route ~prefix 1);
  inject net ~router:4 (route ~prefix 4);
  quiesce net;
  check_bool "r2 near 1" true (N.best_exit net ~router:2 prefix = Some 1);
  check_bool "r3 near 4" true (N.best_exit net ~router:3 prefix = Some 4);
  check_bool "r5 near 4" true (N.best_exit net ~router:5 prefix = Some 4);
  check_bool "r6 near 1" true (N.best_exit net ~router:6 prefix = Some 1)

let test_matches_full_mesh () =
  let fm = N.create (full_mesh_config ~med_mode:Bgp.Decision.Always_compare 6) in
  let rc = N.create (rcp_config ~med_mode:Bgp.Decision.Always_compare 6 ~rcps:[ 0 ]) in
  List.iter
    (fun net ->
      inject net ~router:2 (route ~asn:7000 ~med:3 ~prefix 2);
      inject net ~router:4 (route ~asn:8000 ~med:1 ~prefix 4);
      quiesce net)
    [ fm; rc ];
  (* data-plane routers choose identically (the RCP node itself holds
     no route, so compare clients only) *)
  for i = 1 to 5 do
    let nh net = Option.map (fun (r : Bgp.Route.t) -> (Bgp.Route.next_hop r)) (N.best net ~router:i prefix) in
    check_bool (Printf.sprintf "r%d" i) true (nh fm = nh rc)
  done

let test_no_echo_to_injector () =
  let net = N.create (rcp_config 5) in
  inject net ~router:3 (route ~prefix 3);
  quiesce net;
  check_bool "no echo" true (R.received_set (N.router net 3) ~from:0 prefix = [])

let test_replicated_rcps () =
  let net = N.create (rcp_config ~rcps:[ 0; 1 ] 6) in
  inject net ~router:3 (route ~prefix 3);
  quiesce net;
  check_bool "from both" true
    (R.received_set (N.router net 4) ~from:0 prefix <> []
    && R.received_set (N.router net 4) ~from:1 prefix <> []);
  (* one replica failing is masked *)
  N.fail net ~router:0;
  quiesce net;
  inject net ~router:5 (route ~prefix:(pfx "21.0.0.0/16") 5);
  quiesce net;
  check_bool "survivor serves" true
    (N.best_exit net ~router:4 (pfx "21.0.0.0/16") = Some 5)

let test_withdraw () =
  let net = N.create (rcp_config 5) in
  inject net ~router:3 (route ~prefix 3);
  quiesce net;
  N.withdraw net ~router:3 ~neighbor:(neighbor 3) prefix ~path_id:0;
  quiesce net;
  List.iter (fun e -> check_bool "gone" true (e = None)) (exits net prefix)

let test_per_client_generation_cost () =
  (* the paper's scaling concern: a routing event with per-client
     consequences makes the RCP generate one update per affected client,
     where an ARR generates one peer-group update *)
  let run scheme =
    let cfg = C.make ~n_routers:8 ~igp:(ring_igp 8) ~scheme () in
    let net = N.create cfg in
    inject net ~router:1 (route ~prefix 1);
    inject net ~router:5 (route ~prefix 5);
    quiesce net;
    (N.counters net 0).Abrr_core.Counters.updates_generated
  in
  let rcp_gen = run (C.rcp [ 0 ]) in
  let abrr_gen = run (C.abrr ~partition:(Part.uniform 1) [| [ 0 ] |]) in
  check_bool "rcp generates more" true (rcp_gen > abrr_gen)

let test_validation () =
  let cfg = C.make ~n_routers:3 ~igp:(flat_igp 3) ~scheme:(C.rcp []) () in
  check_bool "empty" true (Result.is_error (C.validate cfg));
  let cfg = C.make ~n_routers:3 ~igp:(flat_igp 3) ~scheme:(C.rcp [ 5 ]) () in
  check_bool "range" true (Result.is_error (C.validate cfg))

let suite =
  ( "rcp",
    [
      Alcotest.test_case "propagation" `Quick test_propagation;
      Alcotest.test_case "per-client hot potato" `Quick test_per_client_hot_potato;
      Alcotest.test_case "matches full mesh" `Quick test_matches_full_mesh;
      Alcotest.test_case "no echo to injector" `Quick test_no_echo_to_injector;
      Alcotest.test_case "replication masks failure" `Quick test_replicated_rcps;
      Alcotest.test_case "withdraw" `Quick test_withdraw;
      Alcotest.test_case "per-client generation cost" `Quick
        test_per_client_generation_cost;
      Alcotest.test_case "validation" `Quick test_validation;
    ] )
