(* Timer behaviour: MRAI coalescing on sessions and inbox batching in the
   processing window. *)

open Helpers
open Eventsim
module C = Abrr_core.Config
module N = Abrr_core.Network

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

let test_mrai_coalesces () =
  (* 5 rapid attribute changes inside one MRAI window reach the peer as
     a single additional transmission carrying only the final state *)
  let cfg = C.make ~mrai:(Time.sec 5) ~n_routers:2 ~igp:(flat_igp 2) ~scheme:C.Full_mesh () in
  let net = N.create cfg in
  inject net ~router:0 (route ~med:100 ~prefix 0);
  quiesce net;
  let tx_before = (N.counters net 0).Abrr_core.Counters.updates_transmitted in
  for m = 1 to 5 do
    N.at net (Time.sec 10 + Time.ms (m * 100)) (fun () ->
        inject net ~router:0 (route ~med:m ~prefix 0))
  done;
  quiesce net;
  let tx_after = (N.counters net 0).Abrr_core.Counters.updates_transmitted in
  (* the first change goes straight out (the timer armed at start-up has
     long expired); the four follow-ups coalesce into one flush *)
  check_int "coalesced transmissions" 2 (tx_after - tx_before);
  (match N.best net ~router:1 prefix with
  | Some r -> check_bool "final state wins" true (Bgp.Route.med r = Some 5)
  | None -> Alcotest.fail "no route");
  (* and the change was not delivered before the timer allowed it *)
  check_bool "held by timer" true (N.last_change net >= Time.sec 15)

let test_mrai_zero_sends_each () =
  let cfg = C.make ~n_routers:2 ~igp:(flat_igp 2) ~scheme:C.Full_mesh () in
  let net = N.create cfg in
  inject net ~router:0 (route ~med:100 ~prefix 0);
  quiesce net;
  let tx_before = (N.counters net 0).Abrr_core.Counters.updates_transmitted in
  for m = 1 to 3 do
    N.at net (Time.sec (10 * m)) (fun () -> inject net ~router:0 (route ~med:m ~prefix 0))
  done;
  quiesce net;
  check_int "each change sent" 3
    ((N.counters net 0).Abrr_core.Counters.updates_transmitted - tx_before)

let test_processing_window_batches () =
  (* many prefixes injected within one processing window produce one
     batched flush: message count stays far below prefix count *)
  let cfg =
    C.make ~proc_delay:(Time.ms 100) ~n_routers:2 ~igp:(flat_igp 2)
      ~scheme:C.Full_mesh ()
  in
  let net = N.create cfg in
  for i = 0 to 19 do
    inject net ~router:0 (route ~prefix:(pfx (Printf.sprintf "20.%d.0.0/16" i)) 0)
  done;
  quiesce net;
  let c = N.counters net 0 in
  check_int "20 prefix-level updates" 20 c.Abrr_core.Counters.updates_transmitted;
  (* all share one wire flush: identical attributes pack into 1 message *)
  check_int "single message" 1 c.Abrr_core.Counters.messages_transmitted

let test_withdraw_coalesces_with_announce () =
  (* announce+withdraw of the same prefix within one MRAI window nets out
     to a withdraw at the peer *)
  let cfg = C.make ~mrai:(Time.sec 5) ~n_routers:2 ~igp:(flat_igp 2) ~scheme:C.Full_mesh () in
  let net = N.create cfg in
  inject net ~router:0 (route ~med:1 ~prefix 0);
  quiesce net;
  N.at net (Time.sec 7) (fun () -> inject net ~router:0 (route ~med:2 ~prefix 0));
  N.at net (Time.sec 7 + Time.ms 200) (fun () ->
      N.withdraw net ~router:0 ~neighbor:(neighbor 0) prefix ~path_id:0);
  quiesce net;
  check_bool "withdrawn at peer" true (N.best net ~router:1 prefix = None)

let test_batch_drains_dirty_once () =
  (* five same-prefix changes land in one processing window: the batch
     marks the prefix dirty once and evaluates it exactly once, and the
     MRAI flush that carries the result transmits exactly once — after
     quiescence the pending queue is empty, so nothing re-flushes *)
  let cfg =
    C.make ~mrai:(Time.sec 5) ~proc_delay:(Time.ms 100) ~n_routers:2
      ~igp:(flat_igp 2) ~scheme:C.Full_mesh ()
  in
  let net = N.create cfg in
  inject net ~router:0 (route ~med:100 ~prefix 0);
  quiesce net;
  let snap i = Abrr_core.Counters.copy (N.counters net i) in
  let b0 = snap 0 and b1 = snap 1 in
  for m = 1 to 5 do
    N.at net (Time.sec 10 + Time.ms (m * 10)) (fun () ->
        inject net ~router:0 (route ~med:m ~prefix 0))
  done;
  quiesce net;
  let d0 = Abrr_core.Counters.diff ~after:(N.counters net 0) ~before:b0 in
  let d1 = Abrr_core.Counters.diff ~after:(N.counters net 1) ~before:b1 in
  check_int "one evaluation for five inputs" 1 d0.Abrr_core.Counters.decisions_run;
  check_int "one transmission" 1 d0.Abrr_core.Counters.updates_transmitted;
  check_int "one delivery, one evaluation at peer" 1
    d1.Abrr_core.Counters.decisions_run;
  match N.best net ~router:1 prefix with
  | Some r -> check_bool "final state wins" true (Bgp.Route.med r = Some 5)
  | None -> Alcotest.fail "no route"

let suite =
  ( "timers",
    [
      Alcotest.test_case "MRAI coalesces" `Quick test_mrai_coalesces;
      Alcotest.test_case "MRAI off sends each change" `Quick test_mrai_zero_sends_each;
      Alcotest.test_case "processing window batches" `Quick
        test_processing_window_batches;
      Alcotest.test_case "withdraw coalesces" `Quick
        test_withdraw_coalesces_with_announce;
      Alcotest.test_case "batch drains dirty set once" `Quick
        test_batch_drains_dirty_once;
    ] )
