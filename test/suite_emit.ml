(* Metrics.Emit (JSON codec + bench records + diffing) and the
   Eventsim.Sim observability hooks (trace sink, phase timers). *)

module E = Metrics.Emit
module Sim = Eventsim.Sim
module Time = Eventsim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* ---- JSON codec ---------------------------------------------------- *)

let parse_ok s =
  match E.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_values () =
  check_bool "null" true (parse_ok "null" = E.Null);
  check_bool "true" true (parse_ok "true" = E.Bool true);
  check_bool "int" true (parse_ok "-42" = E.Int (-42));
  check_bool "float" true (parse_ok "2.5" = E.Float 2.5);
  check_bool "exp floats parse" true
    (match parse_ok "1e3" with E.Float f -> f = 1000. | _ -> false);
  check_bool "array" true
    (parse_ok "[1, 2]" = E.Arr [ E.Int 1; E.Int 2 ]);
  check_bool "nested obj" true
    (parse_ok {|{"a": {"b": []}}|}
    = E.Obj [ ("a", E.Obj [ ("b", E.Arr []) ]) ])

let test_json_string_escapes () =
  (* encoder escapes, parser restores *)
  let tricky = "q\"b\\s/\n\t\r\x0c\x08\x01é€" in
  let round = parse_ok (E.to_string ~compact:true (E.Str tricky)) in
  check_bool "escape round-trip" true (round = E.Str tricky);
  (* \uXXXX decoding, including a surrogate pair *)
  check_bool "bmp escape" true (parse_ok {|"é"|} = E.Str "\xc3\xa9");
  check_bool "surrogate pair" true
    (parse_ok {|"😀"|} = E.Str "\xf0\x9f\x98\x80")

let test_json_rejects () =
  let bad s =
    match E.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e -> check_bool "error is descriptive" true (String.length e > 0)
  in
  List.iter bad
    [ ""; "{"; "tru"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "nul";
      "{\"a\" 1}"; "[1 2]"; "--3" ]

let test_json_non_finite () =
  check_str "nan encodes as null" "null" (E.to_string ~compact:true (E.Float Float.nan));
  check_str "inf encodes as null" "null"
    (E.to_string ~compact:true (E.Float Float.infinity))

(* ---- record round-trip --------------------------------------------- *)

let sample_summary =
  Metrics.Summary.of_list [ 1.; 2.; 3.; 10. ]

let sample_record =
  {
    E.experiment = "unit";
    runs =
      [
        E.run ~label:"plain \"quoted\" label" ~scheme:"abrr"
          ~knobs:[ ("n_prefixes", 1000.); ("aps", 8.) ]
          ~wall_s:1.25 ~sim_s:3600.5 ~events:123456
          ~counters:[ ("updates_received", 42); ("rib_touches", 7) ]
          ~summaries:[ ("queue_depth", sample_summary) ]
          ~phases:[ ("snapshot", 0.75); ("trace", 0.25) ]
          [
            E.metric ~unit_:"entries" "rib_in_avg" 321.5;
            E.metric ~unit_:"ns" ~gate:false "decision.best" 84.2;
          ];
        E.run ~label:"empty" [];
      ];
  }

let test_record_roundtrip () =
  let text = E.to_string (E.record_to_json sample_record) in
  match Result.bind (E.of_string text) E.record_of_json with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "identical after round-trip" true (r = sample_record)

let test_record_file_roundtrip () =
  let path = Filename.temp_file "emit" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      E.write_file path sample_record;
      match E.read_file path with
      | Error e -> Alcotest.fail e
      | Ok r -> check_bool "file round-trip" true (r = sample_record))

let test_record_rejects () =
  let bad j =
    match Result.bind (E.of_string j) E.record_of_json with
    | Ok _ -> Alcotest.failf "accepted %s" j
    | Error _ -> ()
  in
  bad {|{"experiment": "x", "runs": []}|};
  (* no schema *)
  bad {|{"schema": 99, "experiment": "x", "runs": []}|};
  (* unknown version *)
  bad {|{"schema": 1, "runs": []}|};
  (* no experiment *)
  bad {|{"schema": 1, "experiment": "x"}|};
  (* no runs *)
  bad {|{"schema": 1, "experiment": "x", "runs": [{"scheme": "y"}]}|}
(* run without label *)

let test_filename () =
  check_str "filename" "BENCH_fig67.json" (E.filename "fig67")

(* ---- diffing ------------------------------------------------------- *)

let gated ds = List.filter (fun d -> d.E.d_gated) ds
let ungated ds = List.filter (fun d -> not d.E.d_gated) ds

let test_diff_identical () =
  check_int "no drift on identical records" 0
    (List.length
       (E.diff ~threshold:0. ~baseline:sample_record ~candidate:sample_record))

let with_first_run f r =
  match r.E.runs with
  | first :: rest -> { r with E.runs = f first :: rest }
  | [] -> r

let test_diff_gating () =
  (* a changed counter is a gated drift *)
  let cand =
    with_first_run
      (fun r -> { r with E.counters = [ ("updates_received", 43); ("rib_touches", 7) ] })
      sample_record
  in
  let ds = E.diff ~threshold:0. ~baseline:sample_record ~candidate:cand in
  check_int "one gated counter drift" 1 (List.length (gated ds));
  check_str "drift names the counter" "counters.updates_received"
    (List.hd (gated ds)).E.d_name;
  (* ...but tolerated under a loose threshold (43/42 is ~2.4% off) *)
  check_int "within 5% threshold" 0
    (List.length (E.diff ~threshold:0.05 ~baseline:sample_record ~candidate:cand));
  (* wall-clock noise is never gated *)
  let noisy =
    with_first_run (fun r -> { r with E.wall_s = 99. }) sample_record
  in
  let ds = E.diff ~threshold:0. ~baseline:sample_record ~candidate:noisy in
  check_int "wall_s drift is ungated" 0 (List.length (gated ds));
  check_int "wall_s drift is still reported" 1 (List.length (ungated ds));
  (* ungated metrics (ns/op) likewise *)
  let slower =
    with_first_run
      (fun r ->
        {
          r with
          E.metrics =
            [
              E.metric ~unit_:"entries" "rib_in_avg" 321.5;
              E.metric ~unit_:"ns" ~gate:false "decision.best" 840.;
            ];
        })
      sample_record
  in
  let ds = E.diff ~threshold:0. ~baseline:sample_record ~candidate:slower in
  check_int "ns/op drift is ungated" 0 (List.length (gated ds));
  check_int "ns/op drift reported" 1 (List.length (ungated ds))

let test_diff_missing () =
  (* a gated quantity missing from the candidate is a gated drift *)
  let dropped =
    with_first_run
      (fun r -> { r with E.counters = [ ("rib_touches", 7) ] })
      sample_record
  in
  let ds = E.diff ~threshold:0. ~baseline:sample_record ~candidate:dropped in
  check_int "missing gated counter drifts" 1 (List.length (gated ds));
  (* candidate-only quantities are ignored (schema may grow) *)
  let grown =
    with_first_run
      (fun r ->
        { r with E.counters = ("brand_new", 5) :: r.E.counters })
      sample_record
  in
  check_int "candidate-only counter ignored" 0
    (List.length (E.diff ~threshold:0. ~baseline:sample_record ~candidate:grown));
  (* a run present only in the baseline drifts as a whole *)
  let fewer = { sample_record with E.runs = [ List.hd sample_record.E.runs ] } in
  let ds = E.diff ~threshold:0. ~baseline:sample_record ~candidate:fewer in
  check_int "baseline-only run drifts" 1 (List.length (gated ds));
  check_str "whole-run drift label" "empty" (List.hd (gated ds)).E.d_run

(* ---- trace sink ---------------------------------------------------- *)

(* [n] chained events, one every millisecond. *)
let chain sim n =
  let rec go k =
    if k < n then
      Sim.schedule sim ~kind:(k mod 3) ~actor:k ~delay:(Time.ms 1) (fun () ->
          go (k + 1))
  in
  go 0;
  ignore (Sim.run sim)

let test_sink_sampling () =
  let sim = Sim.create () in
  let sink = Sim.Trace.make ~capacity:8 ~sample_every:3 () in
  Sim.set_sink sim sink;
  chain sim 100;
  check_int "all events seen" 100 (Sim.Trace.seen sink);
  (* the 1st seen event and every 3rd after: 1, 4, ..., 100 *)
  check_int "every 3rd recorded" 34 (Sim.Trace.recorded sink);
  let entries = Sim.Trace.entries sink in
  check_int "ring keeps the newest capacity entries" 8 (List.length entries);
  check_bool "memory stays bounded" true
    (List.length entries <= Sim.Trace.capacity sink);
  (* entries are oldest-first with monotone sim-times *)
  let times = List.map (fun e -> e.Sim.Trace.time) entries in
  check_bool "monotone sim-time" true
    (List.sort compare times = times);
  (* metadata survives: the last recorded event is the 100th seen,
     scheduled with [~kind:(99 mod 3) ~actor:99] *)
  let last = List.nth entries 7 in
  check_int "kind recorded" (99 mod 3) last.Sim.Trace.kind;
  check_int "actor recorded" 99 last.Sim.Trace.actor;
  Sim.Trace.clear sink;
  check_int "clear resets seen" 0 (Sim.Trace.seen sink);
  check_int "clear drops entries" 0 (List.length (Sim.Trace.entries sink))

let test_sink_detached () =
  let sim = Sim.create () in
  let sink = Sim.Trace.make () in
  Sim.set_sink sim sink;
  chain sim 10;
  Sim.clear_sink sim;
  chain sim 10;
  check_int "detached sink sees nothing further" 10 (Sim.Trace.seen sink);
  check_bool "sink accessor" true (Sim.sink sim = None)

(* The sink only observes: an identical program produces identical
   results (event count, final time, RNG draws) with or without one. *)
let test_sink_no_perturbation () =
  let observe with_sink =
    let sim = Sim.create ~seed:11 () in
    if with_sink then
      Sim.set_sink sim (Sim.Trace.make ~capacity:16 ~sample_every:2 ());
    let draws = ref [] in
    let rec go k =
      if k < 50 then begin
        draws := Eventsim.Prng.int (Sim.rng sim) 1000 :: !draws;
        Sim.schedule sim ~delay:(Time.us (1 + (k mod 7))) (fun () -> go (k + 1))
      end
    in
    go 0;
    ignore (Sim.run sim);
    (Sim.events_processed sim, Sim.now sim, !draws)
  in
  check_bool "identical with and without sink" true
    (observe true = observe false)

(* ---- phase timers -------------------------------------------------- *)

let test_phases () =
  let sim = Sim.create () in
  let run_events n =
    for _ = 1 to n do
      Sim.schedule sim ~delay:(Time.ms 5) (fun () -> ())
    done;
    ignore (Sim.run sim)
  in
  Sim.phase sim "setup" (fun () -> run_events 4);
  Sim.phase sim "replay" (fun () -> run_events 6);
  Sim.phase sim "replay" (fun () -> run_events 1);
  (match Sim.phase_stats sim with
  | [ ("setup", setup); ("replay", replay) ] ->
    check_int "setup calls" 1 setup.Sim.calls;
    check_int "setup events" 4 setup.Sim.events;
    check_int "setup sim advance" (Time.ms 5) setup.Sim.sim_advance;
    check_int "replay accumulates calls" 2 replay.Sim.calls;
    check_int "replay accumulates events" 7 replay.Sim.events;
    check_int "replay sim advance" (Time.ms 10) replay.Sim.sim_advance;
    check_bool "cpu time is non-negative" true (setup.Sim.cpu_s >= 0.)
  | stats ->
    Alcotest.failf "unexpected phases: %s"
      (String.concat ", " (List.map fst stats)));
  (* the phase result is the callback's, and exceptions still account *)
  checkf "phase returns" 2.5 (Sim.phase sim "ret" (fun () -> 2.5));
  (try Sim.phase sim "boom" (fun () -> failwith "x") with Failure _ -> ());
  check_bool "partial phase accounted" true
    (List.mem_assoc "boom" (Sim.phase_stats sim));
  Sim.reset_phases sim;
  check_int "reset" 0 (List.length (Sim.phase_stats sim))

let suite =
  ( "emit",
    [
      Alcotest.test_case "json values" `Quick test_json_values;
      Alcotest.test_case "json string escapes" `Quick test_json_string_escapes;
      Alcotest.test_case "json rejects garbage" `Quick test_json_rejects;
      Alcotest.test_case "non-finite floats" `Quick test_json_non_finite;
      Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
      Alcotest.test_case "record file round-trip" `Quick test_record_file_roundtrip;
      Alcotest.test_case "record rejects" `Quick test_record_rejects;
      Alcotest.test_case "filename" `Quick test_filename;
      Alcotest.test_case "diff: identical is clean" `Quick test_diff_identical;
      Alcotest.test_case "diff: gating semantics" `Quick test_diff_gating;
      Alcotest.test_case "diff: missing quantities" `Quick test_diff_missing;
      Alcotest.test_case "sink sampling + ring buffer" `Quick test_sink_sampling;
      Alcotest.test_case "sink detach" `Quick test_sink_detached;
      Alcotest.test_case "sink does not perturb" `Quick test_sink_no_perturbation;
      Alcotest.test_case "phase timers" `Quick test_phases;
    ] )
