open Netaddr
open Bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = Prefix.of_string "20.0.0.0/16"
let nh k = Ipv4.of_int (0x0A00_0000 + k)
let asn = Asn.of_int

let mk ?(lp = 100) ?(path = [ 100; 200 ]) ?(origin = Origin.Igp) ?med ?(nhop = 1) ()
    =
  Route.make ~local_pref:lp
    ~as_path:(As_path.of_asns (List.map asn path))
    ~origin ~med ~prefix ~next_hop:(nh nhop) ()

let cand ?(learned = Decision.Ibgp) ?(peer = 1) ?(igp = 10) route =
  Decision.candidate ~learned ~peer_id:(nh peer) ~peer_addr:(nh peer)
    ~igp_cost:igp route

let best = Decision.best ~med_mode:Decision.Per_neighbor_as
let winner cands = match best cands with Some c -> c | None -> Alcotest.fail "no winner"

let test_empty () = check_bool "none" true (best [] = None)

let test_local_pref () =
  let a = cand (mk ~lp:200 ~nhop:1 ()) in
  let b = cand (mk ~lp:100 ~path:[ 100 ] ~nhop:2 ()) in
  (* higher local-pref wins even against shorter path *)
  check_bool "lp wins" true (winner [ b; a ] == a)

let test_as_path_len () =
  let a = cand (mk ~path:[ 100 ] ~nhop:1 ()) in
  let b = cand (mk ~path:[ 100; 200 ] ~nhop:2 ()) in
  check_bool "shorter wins" true (winner [ b; a ] == a)

let test_origin () =
  let a = cand (mk ~origin:Origin.Igp ~nhop:1 ()) in
  let b = cand (mk ~origin:Origin.Egp ~nhop:2 ()) in
  let c = cand (mk ~origin:Origin.Incomplete ~nhop:3 ()) in
  check_bool "igp wins" true (winner [ c; b; a ] == a)

let test_med_same_as () =
  let a = cand (mk ~med:5 ~nhop:1 ()) in
  let b = cand (mk ~med:9 ~nhop:2 ()) in
  check_bool "low med wins" true (winner [ b; a ] == a)

let test_med_missing_is_best () =
  let a = cand (mk ~nhop:1 ()) in
  let b = cand (mk ~med:1 ~nhop:2 ()) in
  check_bool "missing med = 0" true (winner [ b; a ] == a)

let test_med_different_as () =
  (* per-neighbour-AS mode: MED must not discriminate across ASes; the
     high-MED route survives to step 6 and wins on IGP cost *)
  let a = cand ~igp:50 (mk ~path:[ 100; 200 ] ~med:0 ~nhop:1 ()) in
  let b = cand ~igp:10 (mk ~path:[ 300; 200 ] ~med:99 ~nhop:2 ()) in
  check_bool "igp decides across ASes" true (winner [ a; b ] == b);
  (* always-compare mode: MED decides *)
  let w =
    match Decision.best ~med_mode:Decision.Always_compare [ a; b ] with
    | Some c -> c
    | None -> Alcotest.fail "no winner"
  in
  check_bool "med decides when always-compare" true (w == a)

let test_ebgp_over_ibgp () =
  let a = cand ~learned:Decision.Ebgp ~igp:100 (mk ~nhop:1 ()) in
  let b = cand ~learned:Decision.Ibgp ~igp:1 (mk ~nhop:2 ()) in
  check_bool "ebgp wins" true (winner [ b; a ] == a)

let test_igp_cost () =
  let a = cand ~igp:5 (mk ~nhop:1 ()) in
  let b = cand ~igp:7 (mk ~nhop:2 ()) in
  check_bool "low igp wins" true (winner [ b; a ] == a)

let test_router_id () =
  let a = cand ~peer:1 ~igp:5 (mk ~nhop:1 ()) in
  let b = cand ~peer:2 ~igp:5 (mk ~nhop:2 ()) in
  check_bool "low router id wins" true (winner [ b; a ] == a)

let test_originator_overrides_router_id () =
  let ra = Route.update ~originator_id:(Some (nh 9)) (mk ~nhop:1 ()) in
  let rb = Route.update ~originator_id:(Some (nh 3)) (mk ~nhop:2 ()) in
  let a = cand ~peer:1 ~igp:5 ra in
  let b = cand ~peer:2 ~igp:5 rb in
  (* b's originator (3) beats a's (9) even though peer 1 < peer 2 *)
  check_bool "originator id used" true (winner [ a; b ] == b)

let test_steps_1_to_4 () =
  let a = cand (mk ~med:0 ~nhop:1 ()) in
  let b = cand (mk ~med:5 ~nhop:2 ()) in
  let c = cand (mk ~path:[ 300; 200 ] ~med:9 ~nhop:3 ()) in
  let survivors = Decision.steps_1_to_4 ~med_mode:Decision.Per_neighbor_as [ a; b; c ] in
  (* b killed by a's MED (same AS 100); c survives (different AS) *)
  check_int "two survive" 2 (List.length survivors);
  check_bool "a in" true (List.memq a survivors);
  check_bool "c in" true (List.memq c survivors);
  let survivors' = Decision.steps_1_to_4 ~med_mode:Decision.Always_compare [ a; b; c ] in
  check_int "always-compare keeps min only" 1 (List.length survivors')

let test_tie_break_step () =
  let a = cand ~igp:5 (mk ~nhop:1 ()) in
  let b = cand ~igp:7 (mk ~nhop:2 ()) in
  check_int "igp step" 6
    (Decision.tie_break_step ~med_mode:Decision.Per_neighbor_as [ a; b ]);
  check_int "single" 0 (Decision.tie_break_step ~med_mode:Decision.Per_neighbor_as [ a ])

let test_rank_total () =
  let cands =
    [
      cand ~peer:4 ~igp:9 (mk ~nhop:4 ());
      cand ~peer:3 ~igp:3 (mk ~nhop:3 ());
      cand ~peer:2 ~igp:7 (mk ~path:[ 100 ] ~nhop:2 ());
    ]
  in
  let ranked = Decision.rank ~med_mode:Decision.Per_neighbor_as cands in
  check_int "all ranked" 3 (List.length ranked);
  check_bool "shortest path first" true
    (As_path.length (Route.as_path (List.hd ranked).Decision.route) = 1)

let prop_best_is_rank_head =
  QCheck.Test.make ~name:"best = head of rank" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_bound 100) (int_bound 3)))
    (fun specs ->
      let cands =
        List.mapi
          (fun i (igp, pathlen) ->
            cand ~peer:(i + 1) ~igp
              (mk ~path:(List.init (pathlen + 1) (fun j -> 100 + j)) ~nhop:(i + 1) ()))
          specs
      in
      match (best cands, Decision.rank ~med_mode:Decision.Per_neighbor_as cands) with
      | Some b, r :: _ -> b == r
      | None, [] -> true
      | _ -> false)

let gen_candidate =
  let open QCheck.Gen in
  let* asn = int_range 0 2 in
  let* med = opt (int_range 0 30) in
  let* lp = int_range 90 110 in
  let* pathlen = int_range 1 3 in
  let* igp = int_range 1 100 in
  let* peer = int_range 1 50 in
  let* ebgp = bool in
  return
    (cand
       ~learned:(if ebgp then Decision.Ebgp else Decision.Ibgp)
       ~peer ~igp
       (mk ~lp
          ~path:(List.init pathlen (fun j -> 100 + (asn * 10) + j))
          ?med ~nhop:peer ()))

let arb_candidates = QCheck.make QCheck.Gen.(list_size (int_range 1 12) gen_candidate)

let prop_best_in_survivors =
  QCheck.Test.make ~name:"best survives steps 1-4" ~count:300 arb_candidates
    (fun cands ->
      List.for_all
        (fun med_mode ->
          match Decision.best ~med_mode cands with
          | None -> cands = []
          | Some b -> List.memq b (Decision.steps_1_to_4 ~med_mode cands))
        [ Decision.Always_compare; Decision.Per_neighbor_as ])

let prop_survivors_subset =
  QCheck.Test.make ~name:"steps 1-4 return a non-empty subset" ~count:300
    arb_candidates
    (fun cands ->
      List.for_all
        (fun med_mode ->
          let s = Decision.steps_1_to_4 ~med_mode cands in
          s <> [] && List.for_all (fun c -> List.memq c cands) s)
        [ Decision.Always_compare; Decision.Per_neighbor_as ])

let prop_order_independent_always_compare =
  QCheck.Test.make ~name:"best is input-order independent (always-compare)"
    ~count:300 arb_candidates
    (fun cands ->
      let b1 = Decision.best ~med_mode:Decision.Always_compare cands in
      let b2 = Decision.best ~med_mode:Decision.Always_compare (List.rev cands) in
      match (b1, b2) with
      | Some a, Some b -> a == b
      | None, None -> true
      | _ -> false)

let prop_losers_do_not_matter =
  QCheck.Test.make ~name:"removing a loser never changes the winner (always-compare)"
    ~count:300 arb_candidates
    (fun cands ->
      match Decision.best ~med_mode:Decision.Always_compare cands with
      | None -> true
      | Some w ->
        List.for_all
          (fun dropped ->
            dropped == w
            ||
            match
              Decision.best ~med_mode:Decision.Always_compare
                (List.filter (fun c -> c != dropped) cands)
            with
            | Some w' -> w' == w
            | None -> false)
          cands)

(* ---- differential: scratch-buffer kernel vs the retained naive
   list implementation (Decision.Naive). The generator deliberately
   provokes the MED corner cases: small neighbour-AS pool so several
   candidates share an AS, missing MEDs, non-transitive orderings, and
   confed/set segments so path-length accounting is exercised. *)

let gen_rich_candidate =
  let open QCheck.Gen in
  let* neighbor_as = int_range 0 3 in
  let* med = opt (int_range 0 5) in
  let* lp = int_range 99 101 in
  let* origin = oneofl [ Origin.Igp; Origin.Egp; Origin.Incomplete ] in
  let* pathlen = int_range 0 2 in
  let* confed = bool in
  let* aset = bool in
  let* igp = int_range 1 20 in
  let* peer = int_range 1 30 in
  let* ebgp = bool in
  let* orig_id = opt (int_range 1 9) in
  let segs =
    (if confed then [ As_path.Confed_seq [ asn 64512; asn 64513 ] ] else [])
    @ [ As_path.Seq (List.init (pathlen + 1) (fun j -> asn (100 + (neighbor_as * 10) + j))) ]
    @ (if aset then [ As_path.Set [ asn 900; asn 901 ] ] else [])
  in
  let route =
    Route.make ~local_pref:lp ~origin ~med
      ~as_path:(As_path.of_segments segs)
      ~prefix ~next_hop:(nh peer) ()
  in
  let route = Route.update ~originator_id:(Option.map nh orig_id) route in
  return
    (cand
       ~learned:(if ebgp then Decision.Ebgp else Decision.Ibgp)
       ~peer ~igp route)

let arb_rich_candidates =
  QCheck.make QCheck.Gen.(list_size (int_range 0 16) gen_rich_candidate)

let both_modes = [ Decision.Always_compare; Decision.Per_neighbor_as ]

let prop_kernel_matches_naive_best =
  QCheck.Test.make ~name:"kernel best = naive best (both MED modes)" ~count:500
    arb_rich_candidates
    (fun cands ->
      List.for_all
        (fun med_mode ->
          match (Decision.best ~med_mode cands, Decision.Naive.best ~med_mode cands) with
          | Some a, Some b -> a == b
          | None, None -> true
          | _ -> false)
        both_modes)

let prop_kernel_matches_naive_steps =
  QCheck.Test.make
    ~name:"kernel steps 1-4 = naive steps 1-4, same order (both MED modes)"
    ~count:500 arb_rich_candidates
    (fun cands ->
      List.for_all
        (fun med_mode ->
          let k = Decision.steps_1_to_4 ~med_mode cands in
          let n = Decision.Naive.steps_1_to_4 ~med_mode cands in
          List.length k = List.length n && List.for_all2 ( == ) k n)
        both_modes)

(* ---- incremental decision: the intrinsic_loses fast-path predicate.
   Soundness contract (decision.mli): a strict loss against a
   steps-1-4-surviving incumbent on the route-intrinsic key prefix means
   the challenger is eliminated in steps 1-4 of any candidate set
   containing that incumbent, so its arrival or departure cannot move
   the survivor list. *)

let test_intrinsic_loses () =
  let il ?(mode = Decision.Per_neighbor_as) inc r =
    Decision.intrinsic_loses ~med_mode:mode ~incumbent:inc r
  in
  let base = mk () in
  check_bool "lower lp loses" true (il base (mk ~lp:99 ()));
  check_bool "higher lp does not" false (il base (mk ~lp:101 ()));
  check_bool "longer path loses" true (il base (mk ~path:[ 100; 200; 300 ] ()));
  check_bool "shorter path does not" false (il base (mk ~path:[ 100 ] ()));
  check_bool "worse origin loses" true (il base (mk ~origin:Origin.Egp ()));
  check_bool "equal key is not a strict loss" false (il base (mk ~nhop:9 ()));
  (* step 4: MED only discriminates inside the incumbent's neighbour AS
     under per-neighbor-AS mode, everywhere under always-compare *)
  let inc_med = mk ~med:2 () in
  check_bool "same-AS higher MED loses" true (il inc_med (mk ~med:7 ()));
  check_bool "same-AS lower MED does not" false (il inc_med (mk ~med:1 ()));
  check_bool "cross-AS MED ignored (per-neighbor-AS)" false
    (il inc_med (mk ~path:[ 300; 200 ] ~med:7 ()));
  check_bool "cross-AS MED compared (always-compare)" true
    (il ~mode:Decision.Always_compare inc_med (mk ~path:[ 300; 200 ] ~med:7 ()));
  check_bool "missing MED ranks best" false (il inc_med (mk ()))

let arb_rich_with_challenger =
  QCheck.make
    QCheck.Gen.(pair (list_size (int_range 0 16) gen_rich_candidate) gen_rich_candidate)

let prop_intrinsic_reject_sound =
  QCheck.Test.make
    ~name:"intrinsic_loses arrival: adding the loser moves nothing (both modes)"
    ~count:500 arb_rich_with_challenger
    (fun (cands, challenger) ->
      List.for_all
        (fun med_mode ->
          match Decision.steps_1_to_4 ~med_mode cands with
          | [] -> true
          | inc :: _ as s ->
            (not
               (Decision.intrinsic_loses ~med_mode ~incumbent:inc.Decision.route
                  challenger.Decision.route))
            ||
            let with_c = cands @ [ challenger ] in
            let s' = Decision.steps_1_to_4 ~med_mode with_c in
            List.length s = List.length s'
            && List.for_all2 ( == ) s s'
            &&
            (match (Decision.best ~med_mode cands, Decision.best ~med_mode with_c) with
            | Some a, Some b -> a == b
            | _ -> false))
        both_modes)

let prop_intrinsic_withdraw_sound =
  QCheck.Test.make
    ~name:"intrinsic_loses withdraw: dropping a loser moves nothing (both modes)"
    ~count:500 arb_rich_candidates
    (fun cands ->
      List.for_all
        (fun med_mode ->
          match Decision.steps_1_to_4 ~med_mode cands with
          | [] -> true
          | inc :: _ as s ->
            List.for_all
              (fun c ->
                c == inc
                || (not
                      (Decision.intrinsic_loses ~med_mode
                         ~incumbent:inc.Decision.route c.Decision.route))
                ||
                let rest = List.filter (fun x -> x != c) cands in
                let s' = Decision.steps_1_to_4 ~med_mode rest in
                (* an intrinsic loser is not a survivor, so the survivor
                   list of the shrunken set is the unchanged original *)
                List.length s = List.length s'
                && List.for_all2 ( == ) s s'
                &&
                (match
                   (Decision.best ~med_mode cands, Decision.best ~med_mode rest)
                 with
                | Some a, Some b -> a == b
                | _ -> false))
              cands)
        both_modes)

(* ---- network-level churn oracle: the same random sequence of
   announce / replace / withdraw / session-flush events drives two
   identical networks, one per Config.decision engine. After every
   event both must agree on every router's winner for every prefix, and
   at the end the full snapshot digests (RIBs, counters, clock, random
   stream) must be equal — the property the CI deterministic profile
   re-checks on the bench workload. *)

module AC = Abrr_core.Config
module AN = Abrr_core.Network

let churn_prefixes =
  [| prefix; Prefix.of_string "21.0.0.0/16"; Prefix.of_string "22.0.0.0/16" |]

type churn_op =
  | Announce of int * int * int * int * int * int option * bool
      (* router, neighbor k, prefix ix, path_id, lp, med, confed seg *)
  | Withdraw of int * int * int * int (* router, neighbor k, prefix ix, path_id *)
  | Flush of int (* session flush: fail the router, then recover it *)

let gen_churn_op n =
  let open QCheck.Gen in
  let* router = int_range 0 (n - 1) in
  frequency
    [
      ( 6,
        let* k = int_range 1 3 in
        let* p = int_range 0 2 in
        let* pid = int_range 0 1 in
        let* lp = int_range 99 101 in
        let* med = opt (int_range 0 3) in
        let* confed = bool in
        return (Announce (router, k, p, pid, lp, med, confed)) );
      ( 3,
        let* k = int_range 1 3 in
        let* p = int_range 0 2 in
        let* pid = int_range 0 1 in
        return (Withdraw (router, k, p, pid)) );
      (1, return (Flush router));
    ]

let print_churn_op = function
  | Announce (r, k, p, pid, lp, med, confed) ->
    Printf.sprintf "announce r%d n%d p%d id%d lp%d med%s%s" r k p pid lp
      (match med with Some m -> string_of_int m | None -> "-")
      (if confed then " confed" else "")
  | Withdraw (r, k, p, pid) -> Printf.sprintf "withdraw r%d n%d p%d id%d" r k p pid
  | Flush r -> Printf.sprintf "flush r%d" r

let churn_route ~k ~p ~pid ~lp ~med ~confed =
  (* two neighbour ASes (by low bit of k) so MEDs collide inside an AS
     group; optional confed segment so path-length accounting and
     first_as stripping stay honest *)
  let segs =
    (if confed then [ As_path.Confed_seq [ asn 64512 ] ] else [])
    @ [ As_path.Seq [ asn (7000 + (k mod 2)); asn 65500 ] ]
  in
  Route.make ~path_id:pid ~local_pref:lp ~med
    ~as_path:(As_path.of_segments segs)
    ~prefix:churn_prefixes.(p)
    ~next_hop:(Helpers.neighbor k) ()

let run_churn ~med_mode ~abrr ops =
  let n = if abrr then 6 else 5 in
  let cfg decision =
    let base =
      if abrr then Helpers.single_ap_abrr ~med_mode ~n ()
      else Helpers.full_mesh_config ~med_mode n
    in
    { base with AC.decision }
  in
  let inc = AN.create (cfg AC.Incremental) in
  let nai = AN.create (cfg AC.Naive) in
  let agree () =
    List.for_all
      (fun i ->
        Array.for_all
          (fun p ->
            match (AN.best inc ~router:i p, AN.best nai ~router:i p) with
            | Some a, Some b -> Route.equal a b
            | None, None -> true
            | _ -> false)
          churn_prefixes)
      (List.init n Fun.id)
  in
  let settle () =
    Helpers.quiesce ~check:false inc;
    Helpers.quiesce ~check:false nai;
    agree ()
  in
  let both f = f inc; f nai in
  let step = function
    | Announce (r, k, p, pid, lp, med, confed) ->
      both (fun net ->
          AN.inject net ~router:r ~neighbor:(Helpers.neighbor k)
            (churn_route ~k ~p ~pid ~lp ~med ~confed));
      settle ()
    | Withdraw (r, k, p, pid) ->
      both (fun net ->
          AN.withdraw net ~router:r ~neighbor:(Helpers.neighbor k)
            churn_prefixes.(p) ~path_id:pid);
      settle ()
    | Flush r ->
      both (fun net -> AN.fail net ~router:r);
      let ok = settle () in
      both (fun net -> AN.recover net ~router:r);
      ok && settle ()
  in
  List.for_all step ops
  &&
  match (Snapshot.digest inc, Snapshot.digest nai) with
  | Ok a, Ok b -> a = b
  | _ -> false

(* The fast paths must actually fire: a losing arrival and a
   non-incumbent withdrawal on a converged full mesh must classify as
   Delta (and a no-op re-announce as Skipped), not fall back to Full —
   otherwise the engine silently degrades to the naive cost model. *)
let test_delta_path_taken () =
  let net = AN.create { (Helpers.full_mesh_config 5) with AC.decision = AC.Incremental } in
  let strong = churn_route ~k:1 ~p:0 ~pid:0 ~lp:101 ~med:None ~confed:false in
  AN.inject net ~router:0 ~neighbor:(Helpers.neighbor 1) strong;
  Helpers.quiesce ~check:false net;
  let base = Abrr_core.Counters.copy (AN.total_counters net) in
  (* losing arrival: lp 99 < incumbent's 101 everywhere *)
  let weak = churn_route ~k:2 ~p:0 ~pid:0 ~lp:99 ~med:None ~confed:false in
  AN.inject net ~router:1 ~neighbor:(Helpers.neighbor 2) weak;
  Helpers.quiesce ~check:false net;
  (* non-incumbent withdrawal of that same loser *)
  AN.withdraw net ~router:1 ~neighbor:(Helpers.neighbor 2) churn_prefixes.(0)
    ~path_id:0;
  Helpers.quiesce ~check:false net;
  (* no-op re-announce: identical route, in-place replace *)
  AN.inject net ~router:0 ~neighbor:(Helpers.neighbor 1) strong;
  Helpers.quiesce ~check:false net;
  let d = Abrr_core.Counters.diff ~after:(AN.total_counters net) ~before:base in
  check_bool "delta path fired" true (d.Abrr_core.Counters.decisions_delta > 0);
  check_bool "skip path fired" true (d.Abrr_core.Counters.decisions_skipped > 0);
  check_bool "winner intact" true
    (match AN.best net ~router:3 churn_prefixes.(0) with
    | Some r -> Route.local_pref r = 101
    | None -> false)

let arb_churn n =
  QCheck.make
    ~print:(fun (abrr, ops) ->
      Printf.sprintf "%s: %s"
        (if abrr then "abrr" else "full-mesh")
        (String.concat "; " (List.map print_churn_op ops)))
    QCheck.Gen.(pair bool (list_size (int_range 1 12) (gen_churn_op n)))

let prop_incremental_matches_naive_churn mode_name med_mode =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "incremental = naive under random churn (%s), digests equal" mode_name)
    ~count:12 (arb_churn 5)
    (fun (abrr, ops) -> run_churn ~med_mode ~abrr ops)

let suite =
  ( "decision",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "step 1: local pref" `Quick test_local_pref;
      Alcotest.test_case "step 2: AS path length" `Quick test_as_path_len;
      Alcotest.test_case "step 3: origin" `Quick test_origin;
      Alcotest.test_case "step 4: MED same AS" `Quick test_med_same_as;
      Alcotest.test_case "step 4: missing MED" `Quick test_med_missing_is_best;
      Alcotest.test_case "step 4: MED across ASes" `Quick test_med_different_as;
      Alcotest.test_case "step 5: eBGP over iBGP" `Quick test_ebgp_over_ibgp;
      Alcotest.test_case "step 6: IGP cost" `Quick test_igp_cost;
      Alcotest.test_case "step 7: router id" `Quick test_router_id;
      Alcotest.test_case "step 7: originator id" `Quick
        test_originator_overrides_router_id;
      Alcotest.test_case "steps 1-4 (best AS-level)" `Quick test_steps_1_to_4;
      Alcotest.test_case "tie-break step report" `Quick test_tie_break_step;
      Alcotest.test_case "rank" `Quick test_rank_total;
      QCheck_alcotest.to_alcotest prop_best_is_rank_head;
      QCheck_alcotest.to_alcotest prop_best_in_survivors;
      QCheck_alcotest.to_alcotest prop_survivors_subset;
      QCheck_alcotest.to_alcotest prop_order_independent_always_compare;
      QCheck_alcotest.to_alcotest prop_losers_do_not_matter;
      QCheck_alcotest.to_alcotest prop_kernel_matches_naive_best;
      QCheck_alcotest.to_alcotest prop_kernel_matches_naive_steps;
      Alcotest.test_case "intrinsic_loses (per step)" `Quick test_intrinsic_loses;
      QCheck_alcotest.to_alcotest prop_intrinsic_reject_sound;
      QCheck_alcotest.to_alcotest prop_intrinsic_withdraw_sound;
      Alcotest.test_case "delta/skip fast paths fire" `Quick test_delta_path_taken;
      QCheck_alcotest.to_alcotest
        (prop_incremental_matches_naive_churn "per-neighbor-as"
           Decision.Per_neighbor_as);
      QCheck_alcotest.to_alcotest
        (prop_incremental_matches_naive_churn "always-compare"
           Decision.Always_compare);
    ] )
