(* lib/scenario: the adversarial & operational workload engine, plus the
   router-level route-flap damping it exercises. *)

open Helpers
module C = Abrr_core.Config
module N = Abrr_core.Network
module Part = Abrr_core.Partition
module Ct = Abrr_core.Counters
module SE = Scenario.Engine
module SC = Scenario.Catalog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One small catalog run shared by the assertions below: building the
   workload once keeps the suite fast. *)
let results =
  lazy
    (SC.run_all
       (SC.env
          (SC.spec ~pops:4 ~routers_per_pop:5 ~peer_ases:6
             ~peering_points_per_as:3 ~prefixes:40 ~aps:4 ~arrs_per_ap:2 ()))
       ~scheme:"abrr")

let find name =
  match List.find_opt (fun (r : SE.result) -> r.SE.name = name) (Lazy.force results) with
  | Some r -> r
  | None -> Alcotest.failf "scenario %s missing from catalog results" name

let test_catalog_passes () =
  let rs = Lazy.force results in
  check_int "whole catalog ran" (List.length SC.names) (List.length rs);
  List.iter
    (fun (r : SE.result) ->
      check_bool (SE.summary_line r) true (SE.passed r);
      check_int ("no violations in " ^ r.SE.name) 0 r.SE.invariant_violations)
    rs

let test_adversarial_detections () =
  (* the attack scenarios must actually trip the detectors *)
  check_bool "hijack detected" true ((find "hijack").SE.detections > 0);
  check_bool "leak detected" true ((find "leak").SE.detections > 0);
  check_bool "hijacks counted" true
    ((find "hijack").SE.counters.Ct.hijacks_injected > 0)

let test_repartition_bound () =
  let r = find "repartition" in
  let bound_check =
    match
      List.find_opt
        (fun (c : SE.check) -> c.SE.label = "movement within consistent-hashing bound")
        r.SE.checks
    with
    | Some c -> c
    | None -> Alcotest.fail "repartition scenario lost its bound check"
  in
  check_bool bound_check.SE.detail true bound_check.SE.ok;
  check_bool "retirements counted" true
    (r.SE.counters.Ct.prefixes_moved_on_repartition > 0)

let test_failover_takeover () =
  let r = find "arr-failover" in
  check_bool "takeover counted" true (r.SE.counters.Ct.takeovers > 0)

let test_flap_damping_scenario () =
  let r = find "flap-damping" in
  check_bool "routes damped" true (r.SE.counters.Ct.routes_damped > 0);
  (* the reuse timer fires minutes later: the scenario must have
     actually waited through the suppression *)
  check_bool "sim advanced past the reuse delay" true
    (r.SE.sim_end >= Eventsim.Time.minutes 10)

let test_report_exit_contract () =
  let report = SE.report (Lazy.force results) in
  check_bool "clean catalog renders ok" true (Verify.Report.ok report);
  (* a failed check must flip the report, which drives exit code 1 *)
  let broken =
    {
      (find "hijack") with
      SE.checks = [ { SE.label = "forced"; ok = false; detail = "boom" } ];
    }
  in
  check_bool "failed check fails the report" false
    (Verify.Report.ok (SE.report [ broken ]))

(* ---- router-level RFC 2439 damping ------------------------------- *)

let damped_config ?damping n =
  C.make ?damping ~n_routers:n ~igp:(flat_igp n) ~scheme:C.Full_mesh ()

let victim = pfx "77.0.0.0/16"

let flap3 net =
  (* three withdraw/announce cycles of the same session route *)
  for _ = 1 to 3 do
    N.withdraw net ~router:0 ~neighbor:(neighbor 0) victim ~path_id:1;
    quiesce net;
    inject net ~router:0 (route ~path_id:1 ~prefix:victim 0)
  done

let test_damping_suppresses_and_reinstates () =
  let net = N.create (damped_config ~damping:Bgp.Damping.default 4) in
  inject net ~router:0 (route ~path_id:1 ~prefix:victim 0);
  quiesce net;
  flap3 net;
  (* let the final announce be absorbed without firing the reuse timer *)
  ignore
    (N.run
       ~until:(Eventsim.Sim.now (N.sim net) + Eventsim.Time.sec 2)
       net);
  check_bool "suppressed at the border" true (N.best net ~router:1 victim = None);
  check_bool "damping counted" true
    ((N.total_counters net).Ct.routes_damped >= 1);
  (* the reuse timer reinstates the held route *)
  quiesce net;
  check_bool "reinstated after decay" true (N.best net ~router:1 victim <> None)

let test_damping_off_by_default () =
  let cfg = damped_config 4 in
  check_bool "no damping unless configured" true (cfg.C.damping = None);
  let net = N.create cfg in
  inject net ~router:0 (route ~path_id:1 ~prefix:victim 0);
  quiesce net;
  flap3 net;
  quiesce net;
  check_bool "flaps propagate undamped" true (N.best net ~router:1 victim <> None);
  check_int "nothing damped" 0 (N.total_counters net).Ct.routes_damped

let test_damping_state_snapshots () =
  (* a suppressed route (penalty, stamp, held route, parked reuse timer)
     must survive the checkpoint codec *)
  let cfg = damped_config ~damping:Bgp.Damping.default 4 in
  let net = N.create cfg in
  inject net ~router:0 (route ~path_id:1 ~prefix:victim 0);
  quiesce net;
  flap3 net;
  ignore
    (N.run
       ~until:(Eventsim.Sim.now (N.sim net) + Eventsim.Time.sec 2)
       net);
  let digest n =
    match Snapshot.digest n with Ok d -> d | Error e -> Alcotest.fail e
  in
  let bytes =
    match Snapshot.encode net with Ok b -> b | Error e -> Alcotest.fail e
  in
  let net2 = N.create cfg in
  (match Snapshot.decode net2 bytes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode failed: %s" e);
  Alcotest.(check string) "digest equal" (digest net) (digest net2);
  (* the restored run still reinstates the held route *)
  quiesce net2;
  check_bool "reinstated after restore" true (N.best net2 ~router:1 victim <> None)

(* ---- engine equivalence under injector streams -------------------- *)

(* Random toggle streams over two border sessions x two prefixes, run
   under the incremental and the naive decision engine: identical Loc-RIB
   outcomes and network-total counters, with damping on and off. *)

let eq_prefixes = [| pfx "60.0.0.0/16"; pfx "190.0.0.0/16" |]

let eq_config ?damping decision =
  {
    (C.make ?damping ~n_routers:5 ~igp:(flat_igp 5)
       ~scheme:(C.abrr ~partition:(Part.uniform 2) [| [ 2 ]; [ 3 ] |])
       ())
    with
    C.decision;
  }

let apply_toggle net on (b, p) =
  let router = b and prefix = eq_prefixes.(p) in
  let path_id = (10 * b) + p + 1 in
  if on then inject net ~router (route ~path_id ~prefix router)
  else N.withdraw net ~router ~neighbor:(neighbor router) prefix ~path_id

let drive cfg stream =
  let net = N.create cfg in
  let state = Hashtbl.create 4 in
  List.iter
    (fun key ->
      let on = not (Option.value (Hashtbl.find_opt state key) ~default:false) in
      Hashtbl.replace state key on;
      apply_toggle net on key;
      quiesce ~check:false net)
    stream;
  quiesce net;
  net

let same_outcome cfg_a cfg_b stream =
  let a = drive cfg_a stream and b = drive cfg_b stream in
  Array.for_all (fun p -> same_choices a b p) eq_prefixes
  && Ct.to_fields (N.total_counters a) = Ct.to_fields (N.total_counters b)

let gen_stream =
  QCheck.Gen.(
    list_size (int_bound 10) (pair (int_range 0 1) (int_range 0 1)))

let arb_stream =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (b, p) -> Printf.sprintf "(%d,%d)" b p) l))
    gen_stream

let prop_engines_agree =
  QCheck.Test.make ~name:"incremental = naive over injector streams" ~count:15
    arb_stream
    (fun stream ->
      same_outcome (eq_config C.Incremental) (eq_config C.Naive) stream)

let prop_engines_agree_damped =
  QCheck.Test.make
    ~name:"incremental = naive under damping" ~count:15 arb_stream
    (fun stream ->
      same_outcome
        (eq_config ~damping:Bgp.Damping.default C.Incremental)
        (eq_config ~damping:Bgp.Damping.default C.Naive)
        stream)

let suite =
  ( "scenario",
    [
      Alcotest.test_case "catalog passes end to end" `Slow test_catalog_passes;
      Alcotest.test_case "attack detections" `Slow test_adversarial_detections;
      Alcotest.test_case "repartition within CH bound" `Slow
        test_repartition_bound;
      Alcotest.test_case "failover counts takeovers" `Slow
        test_failover_takeover;
      Alcotest.test_case "flap-damping waits out suppression" `Slow
        test_flap_damping_scenario;
      Alcotest.test_case "report drives exit contract" `Slow
        test_report_exit_contract;
      Alcotest.test_case "damping suppresses and reinstates" `Quick
        test_damping_suppresses_and_reinstates;
      Alcotest.test_case "damping off by default" `Quick
        test_damping_off_by_default;
      Alcotest.test_case "damping state snapshots" `Quick
        test_damping_state_snapshots;
      QCheck_alcotest.to_alcotest prop_engines_agree;
      QCheck_alcotest.to_alcotest prop_engines_agree_damped;
    ] )
