(* Conservative-window sharded execution of one simulation.

   The payload universe is partitioned across [shards] by an [owner]
   function; each shard runs its own {!Sim.t} on its own domain. A
   window executes every shard up to (but excluding) the global safe
   horizon H = min-pending-time + lookahead: since any cross-shard
   effect scheduled by an event at time t lands at or after t +
   lookahead >= H, no shard can receive a message dated inside the
   window it just ran — the windows are causally closed.

   Determinism is reconstructed at the barrier, not assumed during the
   window. Shards execute with *provisional* sequence numbers (each
   window resets every shard's counter to the global value s0); every
   executed event is logged as a cell carrying the calls it made. The
   single-threaded barrier then k-way-merges the per-shard logs by
   (time, resolved seq) — which provably equals the serial execution
   order — assigning real sequence numbers to calls in merged order,
   feeding the master trace sink the exact serial entry stream,
   rewriting pending provisional seqs, and routing cross-shard events.

   Why the merge order is exact: within a shard the executed (time,
   resolved-seq) sequence is increasing (the shard ran a faithful
   sub-simulation, and provisional->real maps are monotone per shard),
   and a provisional head's scheduler is always an earlier cell of the
   same shard's log (cross-shard events are withheld until the barrier),
   so resolution never blocks and the k-way merge linearizes the union
   exactly as one queue would have. *)

type 'p remote = {
  r_shard : int;
  r_time : Time.t;
  r_kind : int;
  r_actor : int;
  r_detail : int;
  r_payload : 'p;
}

type 'p call = Local of int  (* provisional seq on the scheduling shard *)
             | Remote of 'p remote

(* One executed event, in shard execution order. [c_seq] is provisional
   iff >= the window's s0. [c_calls] is kept reversed. *)
type 'p cell = {
  c_time : Time.t;
  c_seq : int;
  c_kind : int;
  c_actor : int;
  c_detail : int;
  mutable c_calls : 'p call list;
}

type stats = {
  shards : int;
  windows : int;  (** synchronization windows executed *)
  stalls : int;  (** shard-windows that executed zero events *)
  cross_events : int;  (** events routed across a shard boundary *)
  max_window_events : int;  (** largest single-window event count *)
}

type 'p t = {
  master : 'p Sim.t;
  n : int;
  lookahead : Time.t;
  owner : 'p -> int;
  sims : 'p Sim.t array;
  team : Parallel.Team.t option;
  logs : 'p cell list array;  (* reversed execution order *)
  cur : 'p cell option array;  (* cell being executed, per shard *)
  mutable windows : int;
  mutable stalls : int;
  mutable cross : int;
  mutable max_window : int;
}

let horizon ~next ~lookahead =
  if lookahead > max_int - next then max_int else next + lookahead

let create ~master ~shards ~lookahead ~owner ~exec () =
  if shards < 1 then invalid_arg "Sharded.create: shards < 1";
  if lookahead <= 0 then invalid_arg "Sharded.create: lookahead must be positive";
  let sims = Array.init shards (fun s -> Sim.create_reified ~seed:s ()) in
  let t =
    {
      master;
      n = shards;
      lookahead;
      owner;
      sims;
      team = (if shards > 1 then Some (Parallel.Team.create ~workers:(shards - 1)) else None);
      logs = Array.make shards [];
      cur = Array.make shards None;
      windows = 0;
      stalls = 0;
      cross = 0;
      max_window = 0;
    }
  in
  Array.iteri
    (fun s sim ->
      Sim.set_exec_event sim (fun ev ->
          let cell =
            {
              c_time = ev.Sim.time;
              c_seq = ev.Sim.seq;
              c_kind = ev.Sim.kind;
              c_actor = ev.Sim.actor;
              c_detail = ev.Sim.detail;
              c_calls = [];
            }
          in
          t.logs.(s) <- cell :: t.logs.(s);
          t.cur.(s) <- Some cell;
          exec ~shard:s ev.Sim.payload;
          t.cur.(s) <- None))
    sims;
  t

let master t = t.master
let shards t = t.n
let lookahead t = t.lookahead

let stats t =
  {
    shards = t.n;
    windows = t.windows;
    stalls = t.stalls;
    cross_events = t.cross;
    max_window_events = t.max_window;
  }

let now t ~shard = Sim.now t.sims.(shard)

(* The only legal way for a shard to schedule during a window. Same
   shard: schedule on the shard sim (provisional seq) and log it.
   Other shard: log only — the event is *withheld* from every queue
   until the barrier assigns its real seq and routes it. *)
let schedule t ~shard ?(kind = 0) ?(actor = -1) ?(detail = 0) ~delay payload =
  if delay < 0 then invalid_arg "Sharded.schedule: negative delay";
  match t.cur.(shard) with
  | None -> invalid_arg "Sharded.schedule: no event executing on this shard"
  | Some cell ->
    let target = t.owner payload in
    if target < 0 || target >= t.n then
      invalid_arg "Sharded.schedule: owner out of range";
    if target = shard then begin
      let prov = Sim.next_seq t.sims.(shard) in
      Sim.schedule t.sims.(shard) ~kind ~actor ~detail ~delay payload;
      cell.c_calls <- Local prov :: cell.c_calls
    end
    else
      cell.c_calls <-
        Remote
          {
            r_shard = target;
            r_time = Sim.now t.sims.(shard) + delay;
            r_kind = kind;
            r_actor = actor;
            r_detail = detail;
            r_payload = payload;
          }
        :: cell.c_calls

let total_pending t =
  Array.fold_left (fun acc sim -> acc + Sim.pending sim) 0 t.sims

(* Collapse the distributed state back into the master simulator so a
   caller can checkpoint / digest / schedule externally. The master's
   own random word is carried forward untouched: no event execution
   draws from it, so the serial and sharded streams coincide. *)
let sync_master t ~clock ~next_seq ~processed =
  let events =
    Array.fold_left
      (fun acc sim -> List.rev_append (Sim.pending_events sim) acc)
      [] t.sims
  in
  Sim.restore t.master ~clock ~next_seq ~processed
    ~rng_state:(Prng.state (Sim.rng t.master))
    events

let run ?(until = max_int) ?(max_events = max_int) ?on_barrier t =
  let clock = ref (Sim.now t.master) in
  let next_seq = ref (Sim.next_seq t.master) in
  let processed = ref (Sim.events_processed t.master) in
  let sink = Sim.sink t.master in
  (* Distribute the master's pending events to their owners. Each shard
     starts at the master clock with the master seq counter; real seqs
     (< s0 of the first window) are preserved verbatim. *)
  let per_shard = Array.make t.n [] in
  List.iter
    (fun ev ->
      let s = t.owner ev.Sim.payload in
      if s < 0 || s >= t.n then invalid_arg "Sharded.run: owner out of range";
      per_shard.(s) <- ev :: per_shard.(s))
    (Sim.pending_events t.master);
  Array.iteri
    (fun s evs ->
      Sim.restore t.sims.(s) ~clock:!clock ~next_seq:!next_seq ~processed:0
        ~rng_state:(Prng.state (Sim.rng t.sims.(s)))
        (List.rev evs))
    per_shard;
  (* Serial-replay queue depth: what the single master queue's length
     would be at each point of the merged execution. Feeds the trace
     sink the depths a serial run records. *)
  let pdepth = ref (total_pending t) in
  let budget = ref max_events in
  let finish outcome =
    sync_master t ~clock:!clock ~next_seq:!next_seq ~processed:!processed;
    outcome
  in
  let rec loop () =
    if !budget <= 0 then finish Sim.Event_limit
    else
      let tmin =
        Array.fold_left
          (fun acc sim ->
            match (Sim.next_time sim, acc) with
            | None, a -> a
            | Some tt, None -> Some tt
            | Some tt, Some a -> Some (min tt a))
          None t.sims
      in
      match tmin with
      | None -> finish Sim.Quiescent
      | Some tmin when tmin > until -> finish Sim.Deadline
      | Some tmin ->
        let h = horizon ~next:tmin ~lookahead:t.lookahead in
        let wuntil = min (h - 1) until in
        let s0 = !next_seq in
        Array.iter (fun sim -> Sim.set_next_seq sim s0) t.sims;
        (* Execute the window: shard s runs on slot s. *)
        let run_shard s = ignore (Sim.run ~until:wuntil t.sims.(s)) in
        (match t.team with
        | None -> run_shard 0
        | Some team -> Parallel.Team.run team run_shard);
        (* ---- Barrier: single-threaded deterministic merge. ---- *)
        let heads = Array.map List.rev t.logs in
        Array.fill t.logs 0 t.n [];
        let maps = Array.init t.n (fun _ -> Hashtbl.create 64) in
        let resolve s seq =
          if seq < s0 then seq
          else
            match Hashtbl.find_opt maps.(s) seq with
            | Some real -> real
            | None -> failwith "Sharded: unresolvable provisional seq"
        in
        let inbox = Array.make t.n [] in
        let w = ref 0 in
        Array.iter (fun l -> if l = [] then t.stalls <- t.stalls + 1) heads;
        let rec merge () =
          let best = ref (-1) and bkey = ref (max_int, max_int) in
          Array.iteri
            (fun s l ->
              match l with
              | [] -> ()
              | cell :: _ ->
                let key = (cell.c_time, resolve s cell.c_seq) in
                if key < !bkey then begin
                  bkey := key;
                  best := s
                end)
            heads;
          if !best >= 0 then begin
            let s = !best in
            let cell = List.hd heads.(s) in
            heads.(s) <- List.tl heads.(s);
            incr w;
            incr processed;
            decr pdepth;
            clock := cell.c_time;
            (match sink with
            | None -> ()
            | Some sk ->
              Sim.Trace.observe sk
                {
                  Sim.Trace.time = cell.c_time;
                  kind = cell.c_kind;
                  actor = cell.c_actor;
                  depth = !pdepth;
                  detail = cell.c_detail;
                });
            List.iter
              (fun call ->
                let real = !next_seq in
                incr next_seq;
                incr pdepth;
                match call with
                | Local prov -> Hashtbl.replace maps.(s) prov real
                | Remote r ->
                  t.cross <- t.cross + 1;
                  if r.r_time < h then
                    failwith "Sharded: lookahead violation (cross-shard event inside window)";
                  inbox.(r.r_shard) <-
                    {
                      Sim.time = r.r_time;
                      seq = real;
                      kind = r.r_kind;
                      actor = r.r_actor;
                      detail = r.r_detail;
                      payload = r.r_payload;
                    }
                    :: inbox.(r.r_shard))
              (List.rev cell.c_calls);
            merge ()
          end
        in
        merge ();
        (* Fix up the pending sets: provisional seqs -> merged, then
           route the withheld cross-shard events in. *)
        Array.iteri
          (fun s sim ->
            Sim.map_pending sim (fun ev ->
                if ev.Sim.seq >= s0 then { ev with Sim.seq = resolve s ev.Sim.seq }
                else ev);
            Sim.set_next_seq sim !next_seq)
          t.sims;
        Array.iteri
          (fun s evs -> List.iter (Sim.push_event t.sims.(s)) (List.rev evs))
          inbox;
        assert (!pdepth = total_pending t);
        t.windows <- t.windows + 1;
        if !w > t.max_window then t.max_window <- !w;
        budget := !budget - !w;
        (* Probe countdown advances by the whole window; firing counts
           match a serial run exactly (see Sim.probe_advance). *)
        Sim.probe_advance t.master !w;
        (match on_barrier with
        | None -> ()
        | Some f ->
          sync_master t ~clock:!clock ~next_seq:!next_seq ~processed:!processed;
          f ());
        loop ()
  in
  loop ()

let shutdown t =
  match t.team with None -> () | Some team -> Parallel.Team.shutdown team
