(** Simulated time: integer microseconds since simulation start.

    Plain [int] arithmetic works on values of this type (the simulator
    adds delays and compares deadlines directly); the constructors below
    exist so call sites read in natural units. At 63-bit [int] range the
    representation covers ±146,000 years — overflow is not a practical
    concern. *)

type t = int

val zero : t
(** The simulation epoch. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val minutes : int -> t
val hours : int -> t
val days : int -> t

val to_sec : t -> float
(** Seconds as a float, e.g. for reporting ([to_sec (ms 12_500) = 12.5]). *)

val to_ms : t -> float
(** Milliseconds as a float. *)

val pp : Format.formatter -> t -> unit
(** Human-readable, e.g. "12.500s". *)
