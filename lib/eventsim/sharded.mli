(** Conservative-window sharded execution of one simulation.

    Partitions a simulation's payload universe across [shards] OCaml 5
    domains by an [owner] function. Each shard runs its own {!Sim.t};
    execution proceeds in {e synchronization windows}: with [T] the
    global minimum pending event time, every shard runs strictly below
    the safe horizon [H = T + lookahead], then a single-threaded barrier
    merges the shards' execution logs.

    Soundness of the window needs one property from the caller's model:
    any event an event at time [t] schedules {e on another shard} must
    land at time [>= t + lookahead] (for the network model, lookahead =
    min cross-shard link delay, capped by the session hold time). The
    barrier hard-checks this and fails fast on a violation.

    Determinism is the contract, not an accident: shards execute with
    provisional sequence numbers, and the barrier k-way-merges the logs
    by (time, resolved seq) — exactly the serial dispatch order —
    assigning real sequence numbers in merged order, reconstructing the
    master clock / processed count / trace-sink stream, rewriting
    pending provisional seqs, and routing withheld cross-shard events.
    A sharded run is therefore {e bit-identical} in observable state to
    the serial run of the same program, which the snapshot digest gates
    prove end to end (see DESIGN.md "Sharded simulation"). *)

type 'p t

type stats = {
  shards : int;
  windows : int;  (** synchronization windows executed (cumulative) *)
  stalls : int;  (** shard-windows that executed zero events *)
  cross_events : int;  (** events routed across a shard boundary *)
  max_window_events : int;  (** largest single-window event count *)
}

val create :
  master:'p Sim.t ->
  shards:int ->
  lookahead:Time.t ->
  owner:('p -> int) ->
  exec:(shard:int -> 'p -> unit) ->
  unit ->
  'p t
(** An engine over [master] (the canonical simulator — its pending
    events, clock, counters, sink and probe are the source and sink of
    every {!run}). [owner] maps a payload to its shard; [exec] executes
    a payload on behalf of a shard and must confine its effects to
    state owned by that shard, scheduling follow-ups only through
    {!schedule}. Spawns [shards - 1] worker domains (a {!Parallel.Team})
    that persist until {!shutdown}.
    @raise Invalid_argument if [shards < 1] or [lookahead <= 0]. *)

val run :
  ?until:Time.t ->
  ?max_events:int ->
  ?on_barrier:(unit -> unit) ->
  'p t ->
  Sim.outcome
(** Distribute the master's pending events to their owning shards, run
    windows until quiescence / [until] / the event budget, and collapse
    the final state back into the master. Observable master state
    (clock, sequence counter, processed count, pending set, trace-sink
    contents, probe firing count) ends identical to a serial
    [Sim.run] of the same program — the determinism contract.

    [max_events] has barrier granularity: the budget is checked between
    windows, so the run may overshoot by up to one window before
    returning [Event_limit] (the serial-equivalence contract is then
    "a serial run limited to the count actually processed matches").

    [on_barrier] runs after each window's merge, with the master synced
    to the consistent barrier state — the checkpoint / digest hook. *)

val schedule :
  'p t ->
  shard:int ->
  ?kind:int ->
  ?actor:int ->
  ?detail:int ->
  delay:Time.t ->
  'p ->
  unit
(** Schedule a follow-up from inside [exec] running on [shard]. Same
    owner: lands on the shard's own queue under a provisional sequence
    number. Different owner: withheld and routed at the barrier (the
    arrival must be at or past the horizon — the lookahead contract).
    @raise Invalid_argument on negative delay, outside event execution,
    or if the payload's owner is out of range. *)

val now : 'p t -> shard:int -> Time.t
(** The shard's current simulated time (valid inside [exec]). *)

val master : 'p t -> 'p Sim.t
val shards : 'p t -> int
val lookahead : 'p t -> Time.t

val stats : 'p t -> stats
(** Cumulative across all {!run} calls on this engine. *)

val horizon : next:Time.t -> lookahead:Time.t -> Time.t
(** [next + lookahead], clamped to [max_int] on overflow — the safe
    horizon arithmetic, exposed pure for tests. *)

val shutdown : 'p t -> unit
(** Join the worker domains. The engine is unusable afterwards. *)
