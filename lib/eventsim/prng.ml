type t = { mutable s : int64 }

(* Seed scrambling: one splitmix64 step over the raw seed so that small
   consecutive seeds (42, 43, ...) land on unrelated stream positions. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { s = mix (Int64.of_int seed) }

let bits64 t =
  t.s <- Int64.add t.s golden;
  mix t.s

(* Top 62 bits as a non-negative OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let full_int t bound =
  if bound <= 0 then invalid_arg "Prng.full_int: bound <= 0";
  (* Masked rejection: draw within the smallest covering power of two. *)
  let mask =
    let m = ref 1 in
    while !m < bound do
      m := (!m lsl 1) lor 1
    done;
    !m
  in
  let rec go () =
    let v = bits62 t land mask in
    if v < bound then v else go ()
  in
  go ()

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  full_int t bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let two53 = 9007199254740992. (* 2^53 *)

let float t x =
  let u53 = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int u53 /. two53 *. x

let state t = t.s
let set_state t s = t.s <- s
let copy t = { s = t.s }
