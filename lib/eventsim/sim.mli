(** Deterministic discrete-event simulation core.

    Events scheduled for the same instant fire in scheduling order, and
    the random stream is owned by the simulator (a serializable
    splitmix64 generator, {!Prng}), so a run is a pure function of
    (program, seed).

    The simulator is polymorphic in its event payload ['p]. Payloads are
    plain data; a single {e executor} function installed on the
    simulator interprets them when events fire. Two entry points cover
    the two uses:

    - {!create} gives a [(unit -> unit) t] whose executor just calls the
      payload — closure-based scheduling, exactly the historical API;
    - {!create_reified} gives a ['p t] with no executor yet (install one
      with {!set_exec}); schedulers that need their pending queue to
      round-trip through the checkpoint codec ({!Snapshot}) use this
      with a first-order payload type.

    The simulator carries two observability hooks, both off by default
    and both O(1) per event when enabled (see OBSERVABILITY.md):

    - a structured {{!Trace}trace sink} — a bounded ring buffer fed a
      sampled stream of per-event entries (kind, actor, simulated time,
      queue depth);
    - {{!phase}phase timers} — named wall-clock/event/sim-time
      accumulators bracketing the caller's phases (snapshot feed, trace
      replay, ...). *)

type 'p t

type outcome =
  | Quiescent  (** event queue drained *)
  | Deadline  (** [until] reached with events still pending *)
  | Event_limit  (** [max_events] processed — used by oscillation detectors *)

val create : ?seed:int -> unit -> (unit -> unit) t
(** A fresh simulator at time {!Time.zero} with an empty queue, whose
    executor runs each payload as a thunk. [seed] initialises the
    simulation-owned random stream (default 42). *)

val create_reified : ?seed:int -> unit -> 'p t
(** Like {!create} but with a caller-chosen payload type and {e no}
    executor; {!run} raises until {!set_exec} installs one. Lets a
    scheduler whose payloads reference the scheduler itself tie the
    knot: build the simulator, build the scheduler around it, then
    install the executor. *)

val set_exec : 'p t -> ('p -> unit) -> unit
(** Install (or replace) the executor that {!run} applies to each
    event's payload. *)

val now : 'p t -> Time.t
(** Current simulated time: the timestamp of the event being (or last)
    processed. *)

val rng : 'p t -> Prng.t
(** The simulation-owned random stream. Draw from this (never from the
    global [Random]) to keep runs reproducible. *)

val schedule : 'p t -> ?kind:int -> ?actor:int -> ?detail:int -> delay:Time.t ->
  'p -> unit
(** Schedule a payload to fire [delay] after {!now}. [kind], [actor] and
    [detail] are free-form integers recorded by the trace sink when one
    is attached (defaults [0], [-1], [0]); {!Abrr_core.Network} assigns
    kinds for message delivery, router-local timers and external
    injections — see [Network.trace_kind_name].
    @raise Invalid_argument on negative delay. *)

val schedule_at : 'p t -> ?kind:int -> ?actor:int -> ?detail:int -> time:Time.t ->
  'p -> unit
(** Absolute-time variant of {!schedule}.
    @raise Invalid_argument if [time] is in the past. *)

val pending : 'p t -> int
(** Number of events waiting in the queue. *)

val events_processed : 'p t -> int
(** Total events processed since {!create}. *)

val set_probe : 'p t -> every:int -> (unit -> unit) -> unit
(** Install a callback invoked after every [every] processed events —
    the hook the runtime invariant checker ({!Verify.Invariant}) hangs
    off. At most one probe is active; costs one integer decrement per
    event when set, one [None] test when not.
    @raise Invalid_argument if [every < 1]. *)

val clear_probe : 'p t -> unit

val run : ?until:Time.t -> ?max_events:int -> 'p t -> outcome
(** Process events until the queue drains, simulated time would exceed
    [until], or [max_events] have been processed (counted from this call).
    Can be called repeatedly to continue a paused simulation.
    @raise Invalid_argument if no executor is installed. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Checkpoint support}

    Everything the checkpoint codec needs to capture a simulator
    mid-run and rebuild it bit-for-bit: the scalar dispatch state
    (clock, sequence counter, processed count, random-stream word) plus
    the pending queue as data. Only meaningful on reified simulators —
    a closure payload cannot round-trip. *)

type 'p event = {
  time : Time.t;  (** absolute firing time *)
  seq : int;  (** global scheduling sequence — tie-break at equal times *)
  kind : int;
  actor : int;
  detail : int;
  payload : 'p;
}

val next_seq : 'p t -> int
(** The sequence number the next scheduled event will receive. *)

val pending_events : 'p t -> 'p event list
(** The pending queue, sorted by (time, seq). Non-destructive. *)

val next_time : 'p t -> Time.t option
(** Timestamp of the earliest pending event, [None] on an empty queue.
    O(1) — the sharded engine polls this per synchronization window. *)

(** {2 Sharded-scheduler hooks}

    Raw queue surgery for {!Sharded}: a shard simulator executes a
    conservative window with {e provisional} sequence numbers, and the
    barrier replay then rewrites them to their merged global values and
    routes cross-shard deliveries in. These bypass the usual scheduling
    checks — ordinary schedulers never need them. *)

val set_exec_event : 'p t -> ('p event -> unit) -> unit
(** Like {!set_exec} but the executor receives the whole event (time,
    seq, kind, actor, detail, payload) — the hook the sharded engine
    uses to log each executed event for its barrier replay. *)

val set_next_seq : 'p t -> int -> unit
(** Overwrite the sequence counter (per-window provisional base). *)

val push_event : 'p t -> 'p event -> unit
(** Enqueue a fully-formed event keeping its [seq] — a barrier-merged
    cross-shard delivery whose global sequence number is already
    assigned. No past-time check: the barrier proves [time] lies at or
    beyond the safe horizon. *)

val map_pending : 'p t -> ('p event -> 'p event) -> unit
(** Rewrite every pending event in place. [f] must preserve the
    (time, seq) order of the pending set — true of the barrier's
    provisional-to-merged seq maps, which are monotone per shard. *)

val probe_advance : 'p t -> int -> unit
(** Advance the {!set_probe} countdown by [n] processed events, invoking
    the probe once per due firing at the current (barrier) state. Keeps
    sharded runs' probe firing {e counts} identical to serial runs';
    no-op when no probe is installed. *)

val fire : 'p t -> seq:int -> 'p event
(** Scheduler hook for the schedule explorer ({!Explore}): remove the
    pending event with sequence number [seq] — {e whatever its
    timestamp} — and dispatch it exactly as {!run} would (trace-sink
    sampling, executor, probe countdown all included). The clock
    advances to [max (now t) ev.time], never backwards: firing an event
    out of timestamp order models an asynchronous schedule where that
    message or timer was delayed arbitrarily. Returns the fired event.
    @raise Invalid_argument if no pending event carries [seq] or no
    executor is installed. *)

val restore : 'p t -> clock:Time.t -> next_seq:int -> processed:int ->
  rng_state:int64 -> 'p event list -> unit
(** Overwrite the simulator's dispatch state: drop any pending events,
    set the clock / sequence counter / processed count / random stream,
    and enqueue the given events with their recorded [seq]s intact (so
    same-instant ordering is exactly as captured). Probe, sink and phase
    accumulators are untouched — reattach those separately. *)

(** {1 Structured trace sink}

    A sink observes the event dispatch loop: every processed event
    counts as {e seen}; every [sample_every]-th seen event is {e
    recorded} into a fixed-capacity ring buffer (oldest entries are
    overwritten). Memory is bounded by [capacity] for the lifetime of
    the sink and recording is a handful of integer stores — attaching a
    sink does not perturb simulation results, only observes them. *)

module Trace : sig
  type entry = {
    time : Time.t;  (** simulated time of the event *)
    kind : int;  (** scheduler-supplied event kind ([0] = unknown) *)
    actor : int;  (** scheduler-supplied actor, e.g. a router id ([-1] = none) *)
    depth : int;  (** queue depth right after the event was popped *)
    detail : int;  (** scheduler-supplied payload, e.g. a batch size *)
  }

  type sink

  val make : ?capacity:int -> ?sample_every:int -> unit -> sink
  (** A detached sink. [capacity] bounds the ring buffer (default 4096
      entries); [sample_every] records every n-th seen event (default 1
      = record all).
      @raise Invalid_argument if either is [< 1]. *)

  val capacity : sink -> int
  val sample_every : sink -> int

  val seen : sink -> int
  (** Events dispatched while this sink was attached. *)

  val recorded : sink -> int
  (** Entries ever recorded (may exceed {!capacity}; the ring keeps the
      newest {!capacity} of them). *)

  val entries : sink -> entry list
  (** Retained entries, oldest first. Non-destructive. *)

  val clear : sink -> unit
  (** Drop retained entries and reset the counters. *)

  (** Sink state as plain data, for the checkpoint codec: the BENCH
      queue-depth summary derives from sink contents, so byte-identical
      resumed records need the ring to survive a restore. *)
  type dump = {
    d_capacity : int;
    d_sample_every : int;
    d_entries : entry list;  (** oldest first *)
    d_until_sample : int;
    d_seen : int;
    d_recorded : int;
  }

  val dump : sink -> dump

  val of_dump : dump -> sink
  (** Rebuild a sink observationally identical to the dumped one.
      @raise Invalid_argument if the dump holds more entries than its
      capacity. *)

  val observe : sink -> entry -> unit
  (** Feed the sink one dispatched event: count it as seen, record it if
      the sampling countdown says so — exactly what the run loop does
      per event. The sharded barrier replay uses this to reproduce the
      serial entry stream; ordinary callers never need it. *)
end

val set_sink : 'p t -> Trace.sink -> unit
(** Attach a sink (at most one; replaces any previous one). Costs one
    [option] test per event when absent. *)

val clear_sink : 'p t -> unit
val sink : 'p t -> Trace.sink option

(** {1 Phase timers}

    Named accumulators for the caller's coarse phases. Repeated calls
    under the same name accumulate; nested phases both accumulate (the
    outer includes the inner). *)

type phase_stat = {
  calls : int;  (** number of [phase] invocations under this name *)
  cpu_s : float;  (** accumulated processor seconds ([Sys.time]) *)
  events : int;  (** simulator events processed inside the phase *)
  sim_advance : Time.t;  (** simulated time elapsed inside the phase *)
}

val phase : 'p t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f ()] and charges its processor time, event
    count and simulated-time advance to [name]. Exceptions propagate
    (the partial phase is still accounted). *)

val phase_stats : 'p t -> (string * phase_stat) list
(** All phases in first-use order. *)

val reset_phases : 'p t -> unit
