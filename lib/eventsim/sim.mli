(** Deterministic discrete-event simulation core.

    Events scheduled for the same instant fire in scheduling order, and
    the random stream is owned by the simulator, so a run is a pure
    function of (program, seed).

    The simulator carries two observability hooks, both off by default
    and both O(1) per event when enabled (see OBSERVABILITY.md):

    - a structured {{!Trace}trace sink} — a bounded ring buffer fed a
      sampled stream of per-event entries (kind, actor, simulated time,
      queue depth);
    - {{!phase}phase timers} — named wall-clock/event/sim-time
      accumulators bracketing the caller's phases (snapshot feed, trace
      replay, ...). *)

type t

type outcome =
  | Quiescent  (** event queue drained *)
  | Deadline  (** [until] reached with events still pending *)
  | Event_limit  (** [max_events] processed — used by oscillation detectors *)

val create : ?seed:int -> unit -> t
(** A fresh simulator at time {!Time.zero} with an empty queue. [seed]
    initialises the simulation-owned random stream (default 42). *)

val now : t -> Time.t
(** Current simulated time: the timestamp of the event being (or last)
    processed. *)

val rng : t -> Random.State.t
(** The simulation-owned random stream. Draw from this (never from the
    global [Random]) to keep runs reproducible. *)

val schedule : t -> ?kind:int -> ?actor:int -> ?detail:int -> delay:Time.t ->
  (unit -> unit) -> unit
(** Schedule [action] to run [delay] after {!now}. [kind], [actor] and
    [detail] are free-form integers recorded by the trace sink when one
    is attached (defaults [0], [-1], [0]); {!Abrr_core.Network} assigns
    kinds for message delivery, router-local timers and external
    injections — see [Network.trace_kind_name].
    @raise Invalid_argument on negative delay. *)

val schedule_at : t -> ?kind:int -> ?actor:int -> ?detail:int -> time:Time.t ->
  (unit -> unit) -> unit
(** Absolute-time variant of {!schedule}.
    @raise Invalid_argument if [time] is in the past. *)

val pending : t -> int
(** Number of events waiting in the queue. *)

val events_processed : t -> int
(** Total events processed since {!create}. *)

val set_probe : t -> every:int -> (unit -> unit) -> unit
(** Install a callback invoked after every [every] processed events —
    the hook the runtime invariant checker ({!Verify.Invariant}) hangs
    off. At most one probe is active; costs one integer decrement per
    event when set, one [None] test when not.
    @raise Invalid_argument if [every < 1]. *)

val clear_probe : t -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> outcome
(** Process events until the queue drains, simulated time would exceed
    [until], or [max_events] have been processed (counted from this call).
    Can be called repeatedly to continue a paused simulation. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Structured trace sink}

    A sink observes the event dispatch loop: every processed event
    counts as {e seen}; every [sample_every]-th seen event is {e
    recorded} into a fixed-capacity ring buffer (oldest entries are
    overwritten). Memory is bounded by [capacity] for the lifetime of
    the sink and recording is a handful of integer stores — attaching a
    sink does not perturb simulation results, only observes them. *)

module Trace : sig
  type entry = {
    time : Time.t;  (** simulated time of the event *)
    kind : int;  (** scheduler-supplied event kind ([0] = unknown) *)
    actor : int;  (** scheduler-supplied actor, e.g. a router id ([-1] = none) *)
    depth : int;  (** queue depth right after the event was popped *)
    detail : int;  (** scheduler-supplied payload, e.g. a batch size *)
  }

  type sink

  val make : ?capacity:int -> ?sample_every:int -> unit -> sink
  (** A detached sink. [capacity] bounds the ring buffer (default 4096
      entries); [sample_every] records every n-th seen event (default 1
      = record all).
      @raise Invalid_argument if either is [< 1]. *)

  val capacity : sink -> int
  val sample_every : sink -> int

  val seen : sink -> int
  (** Events dispatched while this sink was attached. *)

  val recorded : sink -> int
  (** Entries ever recorded (may exceed {!capacity}; the ring keeps the
      newest {!capacity} of them). *)

  val entries : sink -> entry list
  (** Retained entries, oldest first. Non-destructive. *)

  val clear : sink -> unit
  (** Drop retained entries and reset the counters. *)
end

val set_sink : t -> Trace.sink -> unit
(** Attach a sink (at most one; replaces any previous one). Costs one
    [option] test per event when absent. *)

val clear_sink : t -> unit
val sink : t -> Trace.sink option

(** {1 Phase timers}

    Named accumulators for the caller's coarse phases. Repeated calls
    under the same name accumulate; nested phases both accumulate (the
    outer includes the inner). *)

type phase_stat = {
  calls : int;  (** number of [phase] invocations under this name *)
  cpu_s : float;  (** accumulated processor seconds ([Sys.time]) *)
  events : int;  (** simulator events processed inside the phase *)
  sim_advance : Time.t;  (** simulated time elapsed inside the phase *)
}

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f ()] and charges its processor time, event
    count and simulated-time advance to [name]. Exceptions propagate
    (the partial phase is still accounted). *)

val phase_stats : t -> (string * phase_stat) list
(** All phases in first-use order. *)

val reset_phases : t -> unit
