(** Deterministic discrete-event simulation core.

    Events scheduled for the same instant fire in scheduling order, and
    the random stream is owned by the simulator, so a run is a pure
    function of (program, seed). *)

type t

type outcome =
  | Quiescent  (** event queue drained *)
  | Deadline  (** [until] reached with events still pending *)
  | Event_limit  (** [max_events] processed — used by oscillation detectors *)

val create : ?seed:int -> unit -> t
val now : t -> Time.t
val rng : t -> Random.State.t

val schedule : t -> delay:Time.t -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delay. *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the past. *)

val pending : t -> int
val events_processed : t -> int

val set_probe : t -> every:int -> (unit -> unit) -> unit
(** Install a callback invoked after every [every] processed events —
    the hook the runtime invariant checker ({!Verify.Invariant}) hangs
    off. At most one probe is active; costs one integer decrement per
    event when set, one [None] test when not.
    @raise Invalid_argument if [every < 1]. *)

val clear_probe : t -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> outcome
(** Process events until the queue drains, simulated time would exceed
    [until], or [max_events] have been processed (counted from this call).
    Can be called repeatedly to continue a paused simulation. *)

val pp_outcome : Format.formatter -> outcome -> unit
