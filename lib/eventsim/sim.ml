type 'p event = {
  time : Time.t;
  seq : int;
  kind : int;
  actor : int;
  detail : int;
  payload : 'p;
}

module Trace = struct
  type entry = {
    time : Time.t;
    kind : int;
    actor : int;
    depth : int;
    detail : int;
  }

  type sink = {
    buf : entry array;
    cap : int;
    mutable head : int;  (* next write slot *)
    mutable filled : int;  (* valid entries, <= cap *)
    every : int;
    mutable until_sample : int;
    mutable seen : int;
    mutable recorded : int;
  }

  let nil = { time = Time.zero; kind = 0; actor = -1; depth = 0; detail = 0 }

  let make ?(capacity = 4096) ?(sample_every = 1) () =
    if capacity < 1 then invalid_arg "Trace.make: capacity < 1";
    if sample_every < 1 then invalid_arg "Trace.make: sample_every < 1";
    {
      buf = Array.make capacity nil;
      cap = capacity;
      head = 0;
      filled = 0;
      every = sample_every;
      until_sample = 1;
      seen = 0;
      recorded = 0;
    }

  let capacity s = s.cap
  let sample_every s = s.every
  let seen s = s.seen
  let recorded s = s.recorded

  let push s e =
    s.buf.(s.head) <- e;
    s.head <- (s.head + 1) mod s.cap;
    if s.filled < s.cap then s.filled <- s.filled + 1;
    s.recorded <- s.recorded + 1

  let entries s =
    let start = (s.head - s.filled + s.cap) mod s.cap in
    List.init s.filled (fun i -> s.buf.((start + i) mod s.cap))

  let clear s =
    s.head <- 0;
    s.filled <- 0;
    s.until_sample <- 1;
    s.seen <- 0;
    s.recorded <- 0

  type dump = {
    d_capacity : int;
    d_sample_every : int;
    d_entries : entry list;  (* oldest first *)
    d_until_sample : int;
    d_seen : int;
    d_recorded : int;
  }

  let dump s =
    {
      d_capacity = s.cap;
      d_sample_every = s.every;
      d_entries = entries s;
      d_until_sample = s.until_sample;
      d_seen = s.seen;
      d_recorded = s.recorded;
    }

  let of_dump d =
    let s = make ~capacity:d.d_capacity ~sample_every:d.d_sample_every () in
    let n = List.length d.d_entries in
    if n > s.cap then invalid_arg "Trace.of_dump: more entries than capacity";
    List.iteri (fun i e -> s.buf.(i) <- e) d.d_entries;
    s.filled <- n;
    s.head <- n mod s.cap;
    s.until_sample <- d.d_until_sample;
    s.seen <- d.d_seen;
    s.recorded <- d.d_recorded;
    s

  (* One dispatched event as the run loop sees it: count it as seen,
     record every [every]-th. Factored out so the sharded barrier replay
     can feed the master sink the exact entry stream a serial run would
     have produced. *)
  let observe s e =
    s.seen <- s.seen + 1;
    s.until_sample <- s.until_sample - 1;
    if s.until_sample <= 0 then begin
      s.until_sample <- s.every;
      push s e
    end
end

type phase_stat = {
  calls : int;
  cpu_s : float;
  events : int;
  sim_advance : Time.t;
}

type 'p t = {
  queue : 'p event Pqueue.Heap.t;
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable processed : int;
  rng : Prng.t;
  mutable exec : ('p event -> unit) option;
  mutable probe : (unit -> unit) option;
  mutable probe_every : int;
  mutable until_probe : int;
  mutable trace : Trace.sink option;
  phases : (string, phase_stat) Hashtbl.t;
  mutable phase_order : string list;  (* reversed first-use order *)
}

type outcome = Quiescent | Deadline | Event_limit

let cmp_event a b =
  match Int.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create_reified ?(seed = 42) () =
  {
    queue = Pqueue.Heap.create ~cmp:cmp_event ();
    clock = Time.zero;
    next_seq = 0;
    processed = 0;
    rng = Prng.create seed;
    exec = None;
    probe = None;
    probe_every = 0;
    until_probe = 0;
    trace = None;
    phases = Hashtbl.create 8;
    phase_order = [];
  }

let create ?seed () =
  let t = create_reified ?seed () in
  t.exec <- Some (fun ev -> ev.payload ());
  t

let set_exec t f = t.exec <- Some (fun ev -> f ev.payload)
let set_exec_event t f = t.exec <- Some f

let now t = t.clock
let rng t = t.rng

let schedule_at t ?(kind = 0) ?(actor = -1) ?(detail = 0) ~time payload =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Pqueue.Heap.push t.queue { time; seq; kind; actor; detail; payload }

let schedule t ?kind ?actor ?detail ~delay payload =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ?kind ?actor ?detail ~time:(t.clock + delay) payload

let pending t = Pqueue.Heap.length t.queue
let events_processed t = t.processed
let next_seq t = t.next_seq
let set_next_seq t n = t.next_seq <- n
let next_time t = Option.map (fun ev -> ev.time) (Pqueue.Heap.peek t.queue)

let pending_events t =
  List.sort cmp_event (Pqueue.Heap.elements t.queue)

(* Raw scheduler hooks for the sharded engine: enqueue an event keeping
   its recorded seq (a barrier-merged cross-shard delivery), and rewrite
   pending seqs in place (provisional -> merged). The rewrite must be
   order-preserving, which provisional-to-real maps are: within one
   shard, provisional order equals merged order. *)
let push_event t ev = Pqueue.Heap.push t.queue ev
let map_pending t f = Pqueue.Heap.map_inplace t.queue f

let restore t ~clock ~next_seq ~processed ~rng_state events =
  Pqueue.Heap.clear t.queue;
  t.clock <- clock;
  t.next_seq <- next_seq;
  t.processed <- processed;
  Prng.set_state t.rng rng_state;
  (* Push raw events, preserving their original [seq] — tie-break order
     at equal timestamps must survive the round-trip, so the usual
     [schedule_at] (which allocates fresh seqs and rejects past times)
     is bypassed. *)
  List.iter (Pqueue.Heap.push t.queue) events

let set_probe t ~every f =
  if every < 1 then invalid_arg "Sim.set_probe: every must be positive";
  t.probe <- Some f;
  t.probe_every <- every;
  t.until_probe <- every

let clear_probe t =
  t.probe <- None;
  t.probe_every <- 0;
  t.until_probe <- 0

let set_sink t s = t.trace <- Some s
let clear_sink t = t.trace <- None
let sink t = t.trace

(* Everything that happens to a popped event, shared by the default
   in-order [run] loop and the explorer's out-of-order [fire]: event
   accounting, trace-sink sampling, execution, probe countdown.  The
   caller has already removed [ev] from the queue and advanced the
   clock. *)
let dispatch t exec ev =
  t.processed <- t.processed + 1;
  (match t.trace with
  | None -> ()
  | Some s ->
    Trace.observe s
      {
        Trace.time = ev.time;
        kind = ev.kind;
        actor = ev.actor;
        depth = Pqueue.Heap.length t.queue;
        detail = ev.detail;
      });
  exec ev;
  match t.probe with
  | None -> ()
  | Some f ->
    t.until_probe <- t.until_probe - 1;
    if t.until_probe <= 0 then begin
      t.until_probe <- t.probe_every;
      f ()
    end

(* Barrier-granular probe accounting for the sharded engine: advance the
   per-event countdown by a whole window's worth of processed events and
   invoke the probe once per due firing, at the (consistent) barrier
   state. The firing *count* matches a serial run's exactly; only the
   states the probe observes are coarser (barrier boundaries instead of
   every [every]-th event). *)
let probe_advance t n =
  match t.probe with
  | None -> ()
  | Some f ->
    if n > 0 then begin
      t.until_probe <- t.until_probe - n;
      while t.until_probe <= 0 do
        t.until_probe <- t.until_probe + t.probe_every;
        f ()
      done
    end

let run ?(until = max_int) ?(max_events = max_int) t =
  let exec =
    match t.exec with
    | Some f -> f
    | None -> invalid_arg "Sim.run: no executor installed (set_exec)"
  in
  let budget = ref max_events in
  let rec loop () =
    if !budget <= 0 then Event_limit
    else
      match Pqueue.Heap.peek t.queue with
      | None -> Quiescent
      | Some ev when ev.time > until -> Deadline
      | Some _ ->
        let ev = Pqueue.Heap.pop_exn t.queue in
        t.clock <- ev.time;
        decr budget;
        dispatch t exec ev;
        loop ()
  in
  loop ()

let fire t ~seq =
  let exec =
    match t.exec with
    | Some f -> f
    | None -> invalid_arg "Sim.fire: no executor installed (set_exec)"
  in
  match Pqueue.Heap.remove t.queue (fun ev -> ev.seq = seq) with
  | None -> invalid_arg "Sim.fire: no pending event with that seq"
  | Some ev ->
    (* Out-of-order delivery models an asynchronous schedule: firing an
       event "late" never moves the clock backwards, firing one whose
       timestamp is still in the future jumps the clock forward to it. *)
    if ev.time > t.clock then t.clock <- ev.time;
    dispatch t exec ev;
    ev

let phase t name f =
  let cpu0 = Sys.time () in
  let events0 = t.processed in
  let clock0 = t.clock in
  let account () =
    let prev =
      match Hashtbl.find_opt t.phases name with
      | Some s -> s
      | None ->
        t.phase_order <- name :: t.phase_order;
        { calls = 0; cpu_s = 0.; events = 0; sim_advance = Time.zero }
    in
    Hashtbl.replace t.phases name
      {
        calls = prev.calls + 1;
        cpu_s = prev.cpu_s +. (Sys.time () -. cpu0);
        events = prev.events + (t.processed - events0);
        sim_advance = prev.sim_advance + (t.clock - clock0);
      }
  in
  Fun.protect ~finally:account f

let phase_stats t =
  List.rev_map (fun name -> (name, Hashtbl.find t.phases name)) t.phase_order

let reset_phases t =
  Hashtbl.reset t.phases;
  t.phase_order <- []

let pp_outcome fmt = function
  | Quiescent -> Format.pp_print_string fmt "quiescent"
  | Deadline -> Format.pp_print_string fmt "deadline"
  | Event_limit -> Format.pp_print_string fmt "event-limit"
