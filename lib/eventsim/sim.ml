type event = { time : Time.t; seq : int; action : unit -> unit }

type t = {
  queue : event Pqueue.Heap.t;
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable processed : int;
  rng : Random.State.t;
  mutable probe : (unit -> unit) option;
  mutable probe_every : int;
  mutable until_probe : int;
}

type outcome = Quiescent | Deadline | Event_limit

let cmp_event a b =
  match Int.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create ?(seed = 42) () =
  {
    queue = Pqueue.Heap.create ~cmp:cmp_event ();
    clock = Time.zero;
    next_seq = 0;
    processed = 0;
    rng = Random.State.make [| seed |];
    probe = None;
    probe_every = 0;
    until_probe = 0;
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Pqueue.Heap.push t.queue { time; seq; action }

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) action

let pending t = Pqueue.Heap.length t.queue
let events_processed t = t.processed

let set_probe t ~every f =
  if every < 1 then invalid_arg "Sim.set_probe: every must be positive";
  t.probe <- Some f;
  t.probe_every <- every;
  t.until_probe <- every

let clear_probe t =
  t.probe <- None;
  t.probe_every <- 0;
  t.until_probe <- 0

let run ?(until = max_int) ?(max_events = max_int) t =
  let budget = ref max_events in
  let rec loop () =
    if !budget <= 0 then Event_limit
    else
      match Pqueue.Heap.peek t.queue with
      | None -> Quiescent
      | Some ev when ev.time > until -> Deadline
      | Some _ ->
        let ev = Pqueue.Heap.pop_exn t.queue in
        t.clock <- ev.time;
        t.processed <- t.processed + 1;
        decr budget;
        ev.action ();
        (match t.probe with
        | None -> ()
        | Some f ->
          t.until_probe <- t.until_probe - 1;
          if t.until_probe <= 0 then begin
            t.until_probe <- t.probe_every;
            f ()
          end);
        loop ()
  in
  loop ()

let pp_outcome fmt = function
  | Quiescent -> Format.pp_print_string fmt "quiescent"
  | Deadline -> Format.pp_print_string fmt "deadline"
  | Event_limit -> Format.pp_print_string fmt "event-limit"
