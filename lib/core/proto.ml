open Netaddr

type channel = Mesh | Confed | To_trr | To_arr | From_trr | From_arr | To_rcp | From_rcp

type delta = {
  prefix : Prefix.t;
  routes : Bgp.Route.t list;
  withdrawn_ids : int list;
}

type item = channel * delta

let delta ?(withdrawn_ids = []) prefix routes = { prefix; routes; withdrawn_ids }
let is_withdraw d = d.routes = []

let to_update deltas =
  let withdrawn =
    List.concat_map
      (fun d ->
        List.map (fun path_id -> { Bgp.Msg.prefix = d.prefix; path_id }) d.withdrawn_ids)
      deltas
  in
  let announced = List.concat_map (fun d -> d.routes) deltas in
  { Bgp.Msg.withdrawn; announced }

(* Analytical: sizes what [Bgp.Wire.encode] would emit without encoding
   anything — this runs on every transmission (Router.transmit_now). *)
let wire_size ~add_paths deltas =
  Bgp.Wire.measure_update ~add_paths (to_update deltas)

let channel_tag = function
  | Mesh -> 0
  | Confed -> 5
  | To_trr -> 1
  | To_arr -> 2
  | From_trr -> 3
  | From_arr -> 4
  | To_rcp -> 6
  | From_rcp -> 7

let pp_channel fmt = function
  | Mesh -> Format.pp_print_string fmt "mesh"
  | Confed -> Format.pp_print_string fmt "confed"
  | To_trr -> Format.pp_print_string fmt "to-trr"
  | To_arr -> Format.pp_print_string fmt "to-arr"
  | From_trr -> Format.pp_print_string fmt "from-trr"
  | From_arr -> Format.pp_print_string fmt "from-arr"
  | To_rcp -> Format.pp_print_string fmt "to-rcp"
  | From_rcp -> Format.pp_print_string fmt "from-rcp"

let pp_delta fmt d =
  Format.fprintf fmt "%a: %d routes, %d withdrawn" Prefix.pp d.prefix
    (List.length d.routes)
    (List.length d.withdrawn_ids)

let channel_of_tag = function
  | 0 -> Mesh
  | 1 -> To_trr
  | 2 -> To_arr
  | 3 -> From_trr
  | 4 -> From_arr
  | 5 -> Confed
  | 6 -> To_rcp
  | 7 -> From_rcp
  | n -> invalid_arg (Printf.sprintf "Proto.channel_of_tag: %d" n)

(* Same-prefix churn within one delivery collapses to its final delta:
   the receiver replaces the stored route set per (channel, prefix), so
   only the last item per key can influence state. Keys first seen later
   keep their later position; relative order of surviving items is
   preserved. *)
let coalesce items =
  match items with
  | [] | [ _ ] -> items
  | _ ->
    let seen = Hashtbl.create 16 in
    let keep =
      List.filter
        (fun (((ch, d) : item)) ->
          let key = (channel_tag ch, Prefix.to_key d.prefix) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (List.rev items)
    in
    List.rev keep
