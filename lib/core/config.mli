(** Network configuration: which iBGP scheme runs, with which parameters.

    Conventions (documented in the README):
    - router [i]'s loopback / BGP identifier is [10.0.0.0 + i];
    - with next-hop-self, a route's NEXT_HOP identifies the border router
      that injected it into iBGP;
    - TBRR cluster [c] uses cluster ID [192.168.0.0 + c];
    - eBGP neighbours live outside 10/8 (the workload generator uses
      172.16/12). *)

open Netaddr
open Eventsim

type cluster = { trrs : int list; clients : int list }
(** One TBRR cluster: its reflectors and its client routers. A client may
    appear in several clusters (the Tier-1 AS has ~20% such clients). *)

type tbrr_spec = {
  clusters : cluster list;
  multipath : bool;
  best_external : bool;
}
(** [multipath] selects the Appendix A.3 variant where TRRs maintain and
    advertise all best AS-level routes. [best_external] makes a TRR keep
    advertising its best client-side route to the TRR mesh even when its
    overall best is mesh-learned (draft-ietf-idr-best-external, the
    paper's ref [25]) — one of the partial fixes ABRR subsumes. *)

type loop_prevention = Reflected_bit | Cluster_list
(** §2.3.2: ABRR needs only a single "already reflected" bit (an extended
    community); the RFC 4456 CLUSTER_LIST also works and is kept for the
    ablation. *)

type abrr_spec = {
  mutable partition : Partition.t;
  mutable arrs : int list array;  (** [arrs.(ap)] = routers serving that AP *)
  loop_prevention : loop_prevention;
}
(** [partition] and [arrs] are mutable for the live-repartition drill
    ({!Network.repartition}): the running network rewrites them in place
    and re-derives every router's role. Do not mutate them directly —
    routers cache roles derived from these fields. *)

type confed_spec = {
  sub_as_of : int array;  (** router index -> member sub-AS index *)
  confed_links : (int * int) list;
      (** confed-eBGP sessions between border routers of different
          sub-ASes *)
}
(** A BGP Confederation (RFC 5065, the other IETF iBGP scaling
    mechanism from §1): the AS splits into member sub-ASes, each running
    internal full-mesh iBGP, glued by confed-eBGP sessions. Member
    sub-AS [i] uses the private ASN [64512 + i]. *)

type acceptance = Accept_tbrr | Accept_abrr

type scheme =
  | Full_mesh
  | Tbrr of tbrr_spec
  | Abrr of abrr_spec
  | Confed of confed_spec
  | Rcp of { rcps : int list }
      (** Routing Control Platform (Caesar et al., NSDI'05 — the paper's
          §5 alternative): replicated control-plane nodes learn every
          route from every router and hand each client its own best
          path, computed from that client's IGP vantage point. *)
  | Dual of { tbrr : tbrr_spec; abrr : abrr_spec; accept : acceptance array }
      (** §2.4 transition: both schemes run; [accept.(ap)] selects which
          scheme's routes each AP's prefixes are taken from. *)

(** Decision-engine strategy (DESIGN.md, "Incremental decision"). Both
    produce identical routing outcomes, counters and snapshots — the
    oracle property the qcheck churn suite and the CI [--decision naive]
    identity run enforce; only the work done per dirty prefix differs. *)
type decision =
  | Incremental
      (** classify each dirty prefix against the cached per-plane
          incumbents and run the full kernel only when required *)
  | Naive  (** recompute every dirty prefix unconditionally *)

type t = {
  n_routers : int;
  asn : Bgp.Asn.t;
  igp : Igp.Graph.t;
  scheme : scheme;
  med_mode : Bgp.Decision.med_mode;
  mrai : Time.t;  (** 0 disables the MRAI timer *)
  link_delay : int -> int -> Time.t;
  proc_delay : Time.t;  (** per-batch update processing latency *)
  proc_jitter : Time.t;
      (** per-router processing-phase spread: router [i] adds a
          deterministic extra delay in [0, proc_jitter) to each batch,
          modelling the heterogeneous processing times the paper observes
          across RRs (§4.2) *)
  store_full_sets : bool;
      (** clients keep full add-paths sets (traffic-engineering mode)
          instead of one best route per reflector (§3.4 default) *)
  control_plane_rrs : bool;
      (** RRs are pure control-plane devices: not clients, no data plane *)
  decision : decision;
  damping : Bgp.Damping.params option;
      (** route-flap damping on eBGP-learned routes (RFC 2439 style,
          {!Bgp.Damping}); [None] (the default) disables damping
          entirely — no penalty state is kept *)
}

val make :
  ?asn:Bgp.Asn.t ->
  ?med_mode:Bgp.Decision.med_mode ->
  ?mrai:Time.t ->
  ?link_delay:(int -> int -> Time.t) ->
  ?proc_delay:Time.t ->
  ?proc_jitter:Time.t ->
  ?store_full_sets:bool ->
  ?control_plane_rrs:bool ->
  ?decision:decision ->
  ?damping:Bgp.Damping.params ->
  n_routers:int ->
  igp:Igp.Graph.t ->
  scheme:scheme ->
  unit ->
  t
(** Defaults: AS 65000, per-neighbour-AS MED, MRAI off, the deterministic
    {!default_link_delay}, 1 ms processing delay with no jitter, best-only
    client storage, data-plane RRs, incremental decision, no damping. *)

val proc_delay_of : t -> int -> Time.t
(** Effective per-batch processing delay of a router (base + phase). *)

val tbrr : ?multipath:bool -> ?best_external:bool -> cluster list -> scheme
val confed : sub_as_of:int array -> confed_links:(int * int) list -> scheme
val rcp : int list -> scheme

val member_asn : int -> Bgp.Asn.t
(** [member_asn i] = private ASN 64512 + i of sub-AS [i]. *)

val abrr : ?loop_prevention:loop_prevention -> partition:Partition.t -> int list array -> scheme

val default_link_delay : int -> int -> Time.t
(** 1 ms plus a deterministic per-pair jitter of 0–600 us — enough skew
    to exercise the TBRR race conditions of §4.2. *)

val loopback : int -> Ipv4.t
val router_of_loopback : t -> Ipv4.t -> int option
val cluster_id : int -> Ipv4.t

val add_paths : t -> bool
(** Whether sessions negotiate add-paths (ABRR, multipath TBRR, Dual). *)

val validate : t -> (unit, string) result
(** Structural checks: router indices in range, ARRs per AP non-empty,
    AP array length matches the partition, clients have reflectors, etc. *)
