type t = {
  mutable updates_received : int;
  mutable updates_generated : int;
  mutable updates_transmitted : int;
  mutable updates_suppressed : int;
  mutable messages_transmitted : int;
  mutable bytes_transmitted : int;
  mutable bytes_received : int;
  mutable withdrawals_received : int;
  mutable withdrawals_transmitted : int;
  mutable decisions_run : int;
  mutable decisions_full : int;
  mutable decisions_delta : int;
  mutable decisions_skipped : int;
  mutable rib_touches : int;
  mutable routes_damped : int;
  mutable hijacks_injected : int;
  mutable takeovers : int;
  mutable prefixes_moved_on_repartition : int;
  mutable last_change : Eventsim.Time.t;
  mutable mem_peak_kb : int;
}

let create () =
  {
    updates_received = 0;
    updates_generated = 0;
    updates_transmitted = 0;
    updates_suppressed = 0;
    messages_transmitted = 0;
    bytes_transmitted = 0;
    bytes_received = 0;
    withdrawals_received = 0;
    withdrawals_transmitted = 0;
    decisions_run = 0;
    decisions_full = 0;
    decisions_delta = 0;
    decisions_skipped = 0;
    rib_touches = 0;
    routes_damped = 0;
    hijacks_injected = 0;
    takeovers = 0;
    prefixes_moved_on_repartition = 0;
    last_change = Eventsim.Time.zero;
    mem_peak_kb = 0;
  }

let reset t =
  t.updates_received <- 0;
  t.updates_generated <- 0;
  t.updates_transmitted <- 0;
  t.updates_suppressed <- 0;
  t.messages_transmitted <- 0;
  t.bytes_transmitted <- 0;
  t.bytes_received <- 0;
  t.withdrawals_received <- 0;
  t.withdrawals_transmitted <- 0;
  t.decisions_run <- 0;
  t.decisions_full <- 0;
  t.decisions_delta <- 0;
  t.decisions_skipped <- 0;
  t.rib_touches <- 0;
  t.routes_damped <- 0;
  t.hijacks_injected <- 0;
  t.takeovers <- 0;
  t.prefixes_moved_on_repartition <- 0;
  t.last_change <- Eventsim.Time.zero;
  t.mem_peak_kb <- 0

let add acc x =
  acc.updates_received <- acc.updates_received + x.updates_received;
  acc.updates_generated <- acc.updates_generated + x.updates_generated;
  acc.updates_transmitted <- acc.updates_transmitted + x.updates_transmitted;
  acc.updates_suppressed <- acc.updates_suppressed + x.updates_suppressed;
  acc.messages_transmitted <- acc.messages_transmitted + x.messages_transmitted;
  acc.bytes_transmitted <- acc.bytes_transmitted + x.bytes_transmitted;
  acc.bytes_received <- acc.bytes_received + x.bytes_received;
  acc.withdrawals_received <- acc.withdrawals_received + x.withdrawals_received;
  acc.withdrawals_transmitted <-
    acc.withdrawals_transmitted + x.withdrawals_transmitted;
  acc.decisions_run <- acc.decisions_run + x.decisions_run;
  acc.decisions_full <- acc.decisions_full + x.decisions_full;
  acc.decisions_delta <- acc.decisions_delta + x.decisions_delta;
  acc.decisions_skipped <- acc.decisions_skipped + x.decisions_skipped;
  acc.rib_touches <- acc.rib_touches + x.rib_touches;
  acc.routes_damped <- acc.routes_damped + x.routes_damped;
  acc.hijacks_injected <- acc.hijacks_injected + x.hijacks_injected;
  acc.takeovers <- acc.takeovers + x.takeovers;
  acc.prefixes_moved_on_repartition <-
    acc.prefixes_moved_on_repartition + x.prefixes_moved_on_repartition;
  acc.last_change <- max acc.last_change x.last_change;
  acc.mem_peak_kb <- max acc.mem_peak_kb x.mem_peak_kb

let copy t = { t with updates_received = t.updates_received }

let diff ~after ~before =
  {
    updates_received = after.updates_received - before.updates_received;
    updates_generated = after.updates_generated - before.updates_generated;
    updates_transmitted =
      after.updates_transmitted - before.updates_transmitted;
    updates_suppressed = after.updates_suppressed - before.updates_suppressed;
    messages_transmitted =
      after.messages_transmitted - before.messages_transmitted;
    bytes_transmitted = after.bytes_transmitted - before.bytes_transmitted;
    bytes_received = after.bytes_received - before.bytes_received;
    withdrawals_received =
      after.withdrawals_received - before.withdrawals_received;
    withdrawals_transmitted =
      after.withdrawals_transmitted - before.withdrawals_transmitted;
    decisions_run = after.decisions_run - before.decisions_run;
    decisions_full = after.decisions_full - before.decisions_full;
    decisions_delta = after.decisions_delta - before.decisions_delta;
    decisions_skipped = after.decisions_skipped - before.decisions_skipped;
    rib_touches = after.rib_touches - before.rib_touches;
    routes_damped = after.routes_damped - before.routes_damped;
    hijacks_injected = after.hijacks_injected - before.hijacks_injected;
    takeovers = after.takeovers - before.takeovers;
    prefixes_moved_on_repartition =
      after.prefixes_moved_on_repartition - before.prefixes_moved_on_repartition;
    last_change = after.last_change;
    mem_peak_kb = after.mem_peak_kb;
  }

let to_fields t =
  [
    ("updates_received", t.updates_received);
    ("updates_generated", t.updates_generated);
    ("updates_transmitted", t.updates_transmitted);
    ("updates_suppressed", t.updates_suppressed);
    ("messages_transmitted", t.messages_transmitted);
    ("bytes_transmitted", t.bytes_transmitted);
    ("bytes_received", t.bytes_received);
    ("withdrawals_received", t.withdrawals_received);
    ("withdrawals_transmitted", t.withdrawals_transmitted);
    ("decisions_run", t.decisions_run);
    ("decisions_full", t.decisions_full);
    ("decisions_delta", t.decisions_delta);
    ("decisions_skipped", t.decisions_skipped);
    ("rib_touches", t.rib_touches);
    ("routes_damped", t.routes_damped);
    ("hijacks_injected", t.hijacks_injected);
    ("takeovers", t.takeovers);
    ("prefixes_moved_on_repartition", t.prefixes_moved_on_repartition);
    ("last_change_us", t.last_change);
    ("mem_peak_kb", t.mem_peak_kb);
  ]

(* VmHWM from /proc/self/status: the process peak resident set, in
   kB. Linux-specific; other platforms simply keep the sample at 0. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6))
                " %d kB" Fun.id
            else scan ()
        in
        match scan () with v -> v | exception Scanf.Scan_failure _ -> 0)

let sample_mem t = t.mem_peak_kb <- max t.mem_peak_kb (peak_rss_kb ())

let pp fmt t =
  Format.fprintf fmt
    "rx=%d gen=%d tx=%d sup=%d msgs=%d bytes_tx=%d bytes_rx=%d wd_rx=%d \
     wd_tx=%d decisions=%d full=%d delta=%d skipped=%d rib=%d damped=%d \
     hijacks=%d takeovers=%d moved=%d last_change=%a mem_peak_kb=%d"
    t.updates_received t.updates_generated t.updates_transmitted
    t.updates_suppressed t.messages_transmitted t.bytes_transmitted
    t.bytes_received t.withdrawals_received t.withdrawals_transmitted
    t.decisions_run t.decisions_full t.decisions_delta t.decisions_skipped
    t.rib_touches t.routes_damped t.hijacks_injected t.takeovers
    t.prefixes_moved_on_repartition Eventsim.Time.pp t.last_change
    t.mem_peak_kb
