
type verdict = {
  outcome : Eventsim.Sim.outcome;
  events : int;
  best_changes : int;
}

let run ?until ?(max_events = 200_000) net =
  let sim = Network.sim net in
  let before = Eventsim.Sim.events_processed sim in
  let changes_before = Network.best_changes net in
  let outcome = Network.run ?until ~max_events net in
  {
    outcome;
    events = Eventsim.Sim.events_processed sim - before;
    best_changes = Network.best_changes net - changes_before;
  }

let oscillates v = v.outcome = Eventsim.Sim.Event_limit

type path_failure = Loop of int list | Blackhole of int list

let forwarding_path net ~src prefix ~max_hops =
  let rec follow current path hops =
    if hops > max_hops then Error (Loop (List.rev path))
    else
      match Network.best net ~router:current prefix with
      | None -> Error (Blackhole (List.rev path))
      | Some route -> (
        match
          Config.router_of_loopback (Network.config net) (Bgp.Route.next_hop route)
        with
        | None ->
          (* Next hop is external: [current] is the exit border router. *)
          Ok (List.rev path)
        | Some owner ->
          if owner = current then Ok (List.rev path)
          else if List.mem owner path then Error (Loop (List.rev (owner :: path)))
          else follow owner (owner :: path) (hops + 1))
  in
  follow src [ src ] 0

let forwarding_loops net prefix =
  let n = Network.router_count net in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match forwarding_path net ~src:i prefix ~max_hops:n with
      | Ok _ | Error (Blackhole _) -> go (i + 1) acc
      | Error (Loop path) -> go (i + 1) (path :: acc)
  in
  go 0 []
