(** Address Partitions (APs, §2.1): contiguous address ranges, each served
    by one or more ARRs. A prefix belongs to every AP its address range
    overlaps (a prefix spanning an AP boundary is advertised to the ARRs
    of all spanned APs). *)

open Netaddr

type t

val uniform : int -> t
(** [uniform k] splits the IPv4 space into [k] equal-width contiguous
    ranges (the configuration of §4's experiments).
    @raise Invalid_argument if [k < 1]. *)

val of_bounds : Ipv4.t list -> t
(** Explicit lower bounds; the first must be 0.0.0.0, bounds strictly
    increasing. Range [i] spans [bound i, bound (i+1)).
    @raise Invalid_argument on malformed input. *)

val balanced : prefixes:Prefix.t list -> int -> t
(** [balanced ~prefixes k] chooses boundaries so each AP contains roughly
    the same number of the given prefixes — the ISP knob the paper
    describes for controlling per-AP variance (§4.1). *)

val count : t -> int
(** Number of APs. *)

val bounds : t -> Ipv4.t array

val range : t -> int -> Ipv4.t * Ipv4.t
(** Inclusive [lo, hi] address range of an AP. *)

val ap_of_addr : t -> Ipv4.t -> int

val aps_of_prefix : t -> Prefix.t -> int list
(** All APs (ascending) the prefix overlaps; at least one element. *)

val prefix_in_ap : t -> int -> Prefix.t -> bool

val move_boundary : t -> index:int -> addr:Ipv4.t -> t
(** A new partition with boundary [index] (1-based among the movable
    bounds: boundary 0 is pinned at 0.0.0.0) moved to [addr] — the
    consistent-hashing-style rebalance step: only addresses between the
    old and new position of that one bound change AP.
    @raise Invalid_argument unless
    [bounds.(index-1) < addr < bounds.(index+1)]. *)

val delta_range : old:t -> now:t -> (Ipv4.t * Ipv4.t) option
(** The inclusive address interval on which the two partitions can
    disagree about AP ownership — [None] when they are equal. For a
    single {!move_boundary} step this is exactly the range between the
    bound's old and new positions, the minimal-movement bound the
    repartition drill asserts. Partitions of different AP counts
    conservatively report the whole address space. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
