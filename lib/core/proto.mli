(** Protocol-level update items exchanged over iBGP sessions in the
    simulation.

    A {!delta} is the per-prefix unit of change: the full new set of
    routes the sender offers for the prefix on that session (empty =
    withdraw everything), plus the explicitly withdrawn add-paths ids.
    This "replace the set" semantics is exactly what the paper describes
    for ARRs (§3.4: "the ARRs will convey all such routes to the clients
    with each update") and degenerates to ordinary implicit-replace
    announcements in the single-path case. *)

open Netaddr

type channel =
  | Mesh  (** ordinary iBGP peering: full-mesh, TRR-to-TRR, or sub-AS mesh *)
  | Confed  (** confed-eBGP between member sub-ASes (RFC 5065) *)
  | To_trr  (** client function -> TBRR reflector function *)
  | To_arr  (** client function -> ABRR reflector function *)
  | From_trr  (** TBRR reflector -> client function *)
  | From_arr  (** ABRR reflector -> client function *)
  | To_rcp  (** client -> Routing Control Platform node (related work §5) *)
  | From_rcp  (** RCP node -> client: that client's computed best route *)

type delta = {
  prefix : Prefix.t;
  routes : Bgp.Route.t list;  (** new full route set; [] = withdraw *)
  withdrawn_ids : int list;  (** add-paths ids removed from the offer *)
}

type item = channel * delta

val delta : ?withdrawn_ids:int list -> Prefix.t -> Bgp.Route.t list -> delta
val is_withdraw : delta -> bool

val to_update : delta list -> Bgp.Msg.update
(** Collapse deltas into one abstract UPDATE (for wire-size accounting). *)

val wire_size : add_paths:bool -> delta list -> int * int
(** [(bytes, messages)] the deltas occupy on the wire. *)

val channel_tag : channel -> int
(** Small integer for use in hash keys. *)

val channel_of_tag : int -> channel
(** Inverse of {!channel_tag} — the checkpoint codec stores channels by
    tag. @raise Invalid_argument on an unknown tag. *)

val pp_channel : Format.formatter -> channel -> unit
val pp_delta : Format.formatter -> delta -> unit

val coalesce : item list -> item list
(** Collapse same-prefix churn within one delivery: of several items
    sharing a (channel, prefix) key, only the last survives. Sound
    because the receiver applies each item as a full route-set
    replacement for its key ([delta.routes]; [withdrawn_ids] ride along
    for MRAI merging but are not consulted on apply), so the last item
    alone determines the stored state. Relative order of surviving items
    is preserved. *)
