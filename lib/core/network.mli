(** A simulated AS: routers wired per the configured iBGP scheme over a
    discrete-event simulation, with eBGP injection, measurement hooks and
    the §2.4 transition switch. *)

open Netaddr
open Eventsim

type t

val create : ?seed:int -> Config.t -> t
(** @raise Invalid_argument when {!Config.validate} fails. *)

val config : t -> Config.t

val sim : t -> Sim.t
(** The underlying simulator — attach a {!Eventsim.Sim.Trace} sink or
    bracket {!Eventsim.Sim.phase}s through it (see OBSERVABILITY.md). *)

val router_count : t -> int
val router : t -> int -> Router.t

(** {1 Trace-sink event kinds}

    Every event this module schedules carries a kind and an actor
    (router id), recorded by an attached trace sink. *)

val trace_kind_deliver : int
(** iBGP message delivery; the entry's [actor] is the receiving router
    and [detail] the number of protocol items in the batch. *)

val trace_kind_timer : int
(** Router-local work: processing batches, MRAI flushes, session
    hold-timer expiry. [actor] is the router that scheduled it. *)

val trace_kind_external : int
(** Externally scheduled work ({!at}: trace replay, failure scripts). *)

val trace_kind_name : int -> string
(** Human-readable name of a kind code (["deliver"], ["timer"], ...). *)

(** {1 Driving the simulation} *)

val inject : t -> router:int -> neighbor:Ipv4.t -> Bgp.Route.t -> unit
(** Deliver an eBGP announcement to a border router at the current
    simulated time. *)

val withdraw : t -> router:int -> neighbor:Ipv4.t -> Prefix.t -> path_id:int -> unit
val originate : t -> router:int -> Bgp.Route.t -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> Sim.outcome
(** Run until quiescent (converged), the deadline, or the event budget —
    the latter is how oscillations are detected. *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** Schedule an action at an absolute simulated time (trace replay). *)

(** {1 Observation} *)

val best : t -> router:int -> Prefix.t -> Bgp.Route.t option

val lookup : t -> router:int -> Ipv4.t -> (Prefix.t * Bgp.Route.t) option
(** Longest-prefix-match forwarding lookup (the data-plane view). *)

val best_exit : t -> router:int -> Prefix.t -> int option
val counters : t -> int -> Counters.t
val total_counters : t -> Counters.t
val last_change : t -> Time.t
(** Latest Loc-RIB change across all routers (convergence stamp). *)

val on_best_change : t -> (int -> Prefix.t -> Bgp.Route.t option -> unit) -> unit
(** Register a hook called on every Loc-RIB change (router, prefix,
    new best). Multiple hooks compose. *)

val best_changes : t -> int
(** Total Loc-RIB changes since creation (oscillation diagnostics). *)

val igp_distance : t -> int -> int -> int

val refresh_igp : t -> unit
(** Recompute SPF after the IGP graph was edited (link failure
    experiments) and re-run every router's decision process. *)

(** {1 Transition (§2.4)} *)

val acceptance : t -> int -> Config.acceptance
val set_acceptance : t -> ap:int -> Config.acceptance -> unit
(** Flip one AP's acceptance (Dual scheme only) and trigger re-decision
    everywhere. @raise Invalid_argument outside Dual. *)

(** {1 Failure injection (§2.3.3)} *)

val fail : t -> router:int -> unit
(** Crash a router: it stops processing, and every other router tears
    down its session to it (purging learned state) after the session
    hold time elapses. *)

val recover : t -> router:int -> unit
(** Cold-restart a failed router: its BGP state is empty, and after
    session re-establishment every peer replays its Adj-RIB-Out to it.
    eBGP feeds must be re-injected by the caller. *)

val hold_time : Eventsim.Time.t
(** Simulated session teardown / re-establishment latency (3 s). *)
