(** A simulated AS: routers wired per the configured iBGP scheme over a
    discrete-event simulation, with eBGP injection, measurement hooks and
    the §2.4 transition switch.

    Every event the network schedules is {e reified}: the simulator's
    payload type ({!payload}) is plain data interpreted by an executor
    this module installs, so the pending event queue can round-trip
    through the checkpoint codec (lib/snapshot). The one escape hatch is
    {!at}, which wraps an arbitrary closure in a [Thunk] payload —
    convenient for tests and scripts, but a snapshot taken while a
    [Thunk] is pending fails to encode; schedule {!at_op} operations
    instead when checkpointing matters. *)

open Netaddr
open Eventsim

type t

(** An external operation scheduled against the network — the reified
    counterpart of the {!inject}/{!withdraw}/{!originate}/{!fail}/
    {!recover} calls (trace replay, failure scripts). *)
type op =
  | Inject of { router : int; neighbor : Ipv4.t; route : Bgp.Route.t }
  | Withdraw of {
      router : int;
      neighbor : Ipv4.t;
      prefix : Prefix.t;
      path_id : int;
    }
  | Originate of { router : int; route : Bgp.Route.t }
  | Withdraw_local of { router : int; prefix : Prefix.t; path_id : int }
  | Fail of int
  | Recover of int

(** What a scheduled event does when it fires. *)
type payload =
  | Deliver of {
      src : int;
      dst : int;
      bytes : int;
      msgs : int;
      items : Proto.item list;
    }  (** iBGP message delivery to [dst] *)
  | Process of int  (** router processing-batch timer *)
  | Mrai_flush of { router : int; peer : int }  (** MRAI flush timer *)
  | Purge of { router : int; peer : int }
      (** hold-timer expiry: [router] tears down its session to [peer] *)
  | Establish of { router : int; peer : int }
      (** session re-establishment: [router] replays its Adj-RIB-Out to
          [peer] *)
  | Op of op  (** external operation ({!at_op}) *)
  | Thunk of (unit -> unit)  (** opaque closure ({!at}) — not snapshotable *)

val create : ?seed:int -> Config.t -> t
(** @raise Invalid_argument when {!Config.validate} fails. *)

val config : t -> Config.t

val sim : t -> payload Sim.t
(** The underlying simulator — attach a {!Eventsim.Sim.Trace} sink or
    bracket {!Eventsim.Sim.phase}s through it (see OBSERVABILITY.md). *)

val router_count : t -> int
val router : t -> int -> Router.t

(** {1 Trace-sink event kinds}

    Every event this module schedules carries a kind and an actor
    (router id), recorded by an attached trace sink. *)

val trace_kind_deliver : int
(** iBGP message delivery; the entry's [actor] is the receiving router
    and [detail] the number of protocol items in the batch. *)

val trace_kind_timer : int
(** Router-local work: processing batches, MRAI flushes, session
    hold-timer expiry. [actor] is the router that scheduled it. *)

val trace_kind_external : int
(** Externally scheduled work ({!at}, {!at_op}: trace replay, failure
    scripts). *)

val trace_kind_name : int -> string
(** Human-readable name of a kind code (["deliver"], ["timer"], ...). *)

(** {1 Driving the simulation} *)

val inject : t -> router:int -> neighbor:Ipv4.t -> Bgp.Route.t -> unit
(** Deliver an eBGP announcement to a border router at the current
    simulated time. *)

val withdraw : t -> router:int -> neighbor:Ipv4.t -> Prefix.t -> path_id:int -> unit
val originate : t -> router:int -> Bgp.Route.t -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> Sim.outcome
(** Run until quiescent (converged), the deadline, or the event budget —
    the latter is how oscillations are detected (and how segmented
    checkpoint runs pause at an event boundary). *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** Schedule a closure at an absolute simulated time, as a [Thunk]
    payload. Not snapshotable while pending — prefer {!at_op}. *)

val at_op : t -> Time.t -> op -> unit
(** Schedule a reified operation at an absolute simulated time (trace
    replay, failure scripts). Snapshot-safe. *)

(** {1 Observation} *)

val best : t -> router:int -> Prefix.t -> Bgp.Route.t option

val lookup : t -> router:int -> Ipv4.t -> (Prefix.t * Bgp.Route.t) option
(** Longest-prefix-match forwarding lookup (the data-plane view). *)

val best_exit : t -> router:int -> Prefix.t -> int option
val counters : t -> int -> Counters.t
val total_counters : t -> Counters.t
val last_change : t -> Time.t
(** Latest Loc-RIB change across all routers (convergence stamp). *)

val on_best_change : t -> (int -> Prefix.t -> Bgp.Route.t option -> unit) -> unit
(** Register a hook called on every Loc-RIB change (router, prefix,
    new best). Multiple hooks compose. *)

val best_changes : t -> int
(** Total Loc-RIB changes since creation (oscillation diagnostics). *)

val igp_distance : t -> int -> int -> int

val refresh_igp : t -> unit
(** Recompute SPF after the IGP graph was edited (link failure
    experiments) and re-run every router's decision process. *)

(** {1 Transition (§2.4)} *)

val acceptance : t -> int -> Config.acceptance
val set_acceptance : t -> ap:int -> Config.acceptance -> unit
(** Flip one AP's acceptance (Dual scheme only) and trigger re-decision
    everywhere. @raise Invalid_argument outside Dual. *)

(** {1 Live repartitioning} *)

val repartition : t -> partition:Partition.t -> arrs:int list array -> unit
(** Replace the ABRR partition and per-AP ARR assignment in place, then
    have every router re-derive its roles and emit the minimal update
    traffic the ownership change requires ({!Router.apply_repartition}).
    Prefixes outside {!Partition.delta_range} between the old and new
    partitions generate no messages when the ARR sets are otherwise
    unchanged — the consistent-hashing minimal-movement property the
    repartition drill asserts. The caller should then {!run} the network
    to quiescence. @raise Invalid_argument outside ABRR, on an [arrs]
    length mismatch, an empty AP, or an out-of-range ARR index. *)

(** {1 Failure injection (§2.3.3)} *)

val fail : t -> router:int -> unit
(** Crash a router: it stops processing, and every other router tears
    down its session to it (purging learned state) after the session
    hold time elapses. *)

val recover : t -> router:int -> unit
(** Cold-restart a failed router: its BGP state is empty, and after
    session re-establishment every peer replays its Adj-RIB-Out to it.
    eBGP feeds must be re-injected by the caller. *)

val hold_time : Eventsim.Time.t
(** Simulated session teardown / re-establishment latency (3 s). *)

(** {1 Checkpoint support (lib/snapshot)} *)

(** Complete network-level simulation state as plain data: the
    simulator's dispatch scalars and pending (reified) event queue, the
    per-router BGP state, the Loc-RIB change counter, and the trace-sink
    ring when one is attached. Not in here: the config (the restoring
    caller rebuilds it and the codec checks a fingerprint), SPF
    distances (recomputed from that config on {!load}), and
    {!on_best_change} hooks (closures — re-register after restoring). *)
type dump = {
  d_clock : Time.t;
  d_next_seq : int;
  d_processed : int;
  d_rng : int64;  (** splitmix64 state word *)
  d_events : payload Sim.event list;  (** sorted by (time, seq) *)
  d_best_changes : int;
  d_routers : Router.state array;
  d_sink : Sim.Trace.dump option;
}

val dump : t -> dump

val load : t -> dump -> unit
(** Restore into a network freshly {!create}d from the same config the
    dump was taken under. @raise Invalid_argument on a router-count
    mismatch. *)

(** {1 Sharded execution (lib/eventsim {!Eventsim.Sharded})} *)

val payload_owner : payload -> int
(** The router whose state the event mutates — the sharding key (and the
    per-router partitioning key for multi-part snapshots).
    @raise Invalid_argument on a [Thunk] (no identifiable owner). *)

module Sharded : sig
  (** Run one simulation across OCaml 5 domains, deterministically.

      Routers are partitioned into [jobs] shards — contiguous index
      ranges, except that under ABRR (and Dual) each AP's ARR set is
      colocated on one shard, preserving the scheme's address-partition
      locality. The engine's lookahead is the minimum cross-shard link
      delay capped by {!hold_time}; the conservative windows it induces
      make the sharded run {e bit-identical} in observable state
      (digests, counters, trace sink, BENCH records) to the serial one.
      See DESIGN.md "Sharded simulation". *)

  type plan = {
    shards : int;  (** effective shard count ([jobs] clamped to routers) *)
    shard_of : int array;  (** router index -> shard *)
    lookahead : Time.t;
  }

  type stats = Eventsim.Sharded.stats = {
    shards : int;
    windows : int;
    stalls : int;
    cross_events : int;
    max_window_events : int;
  }

  val plan : Config.t -> jobs:int -> (plan, string) result
  (** Pure partitioning decision. [jobs] is clamped to [1 .. n_routers];
      [jobs = 1] yields a single shard with unbounded lookahead (one
      window runs the whole schedule). [Error] when some cross-shard
      link delay is not positive — zero lookahead admits no
      conservative window. *)

  val run :
    ?until:Time.t ->
    ?max_events:int ->
    ?on_barrier:(unit -> unit) ->
    t ->
    jobs:int ->
    Sim.outcome * stats
  (** Like {!Network.run} but sharded across [jobs] domains. The
      network's observable state afterwards is identical to the serial
      run's; [on_barrier] fires between windows with the master
      simulator (and {!best_changes}) synced to the consistent barrier
      state — the checkpoint / digest hook. [max_events] has barrier
      granularity: the run can overshoot by up to one window before
      reporting [Event_limit].
      @raise Invalid_argument when the plan is an [Error], a [Thunk]
      event is pending, or {!on_best_change} hooks are registered
      (arbitrary closures cannot be run from worker domains). *)
end
