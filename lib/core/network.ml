open Netaddr
open Eventsim

type op =
  | Inject of { router : int; neighbor : Ipv4.t; route : Bgp.Route.t }
  | Withdraw of {
      router : int;
      neighbor : Ipv4.t;
      prefix : Prefix.t;
      path_id : int;
    }
  | Originate of { router : int; route : Bgp.Route.t }
  | Withdraw_local of { router : int; prefix : Prefix.t; path_id : int }
  | Fail of int
  | Recover of int

type payload =
  | Deliver of {
      src : int;
      dst : int;
      bytes : int;
      msgs : int;
      items : Proto.item list;
    }
  | Process of int
  | Mrai_flush of { router : int; peer : int }
  | Purge of { router : int; peer : int }
  | Establish of { router : int; peer : int }
  | Op of op
  | Thunk of (unit -> unit)

(* Scheduling indirection: every event a router (or fail/recover)
   schedules goes through the network's current [sched], carrying the
   *originating* router [src]. Serial execution points this at the one
   simulator; {!Sharded.run} swaps in a scheduler that routes by shard
   for the duration of the run. *)
type sched = {
  sc_now : int -> Time.t;
  sc_schedule :
    src:int -> kind:int -> actor:int -> detail:int -> delay:Time.t ->
    payload -> unit;
  sc_best_change : int -> Prefix.t -> Bgp.Route.t option -> unit;
}

type t = {
  config : Config.t;
  sim : payload Sim.t;
  mutable routers : Router.t array;
  mutable dist : int array array;
  mutable hooks : (int -> Prefix.t -> Bgp.Route.t option -> unit) list;
  mutable best_changes : int;
  mutable sched : sched;
}

(* Event kinds recorded by the trace sink (Sim.Trace): which of the
   three scheduling paths produced an event. *)
let trace_kind_deliver = 1
let trace_kind_timer = 2
let trace_kind_external = 3

let trace_kind_name = function
  | 1 -> "deliver"
  | 2 -> "timer"
  | 3 -> "external"
  | 0 -> "unknown"
  | k -> Printf.sprintf "kind-%d" k

let router t i =
  if i < 0 || i >= Array.length t.routers then
    invalid_arg (Printf.sprintf "Network.router: %d out of range" i);
  t.routers.(i)

let inject t ~router:i ~neighbor route = Router.inject_ebgp (router t i) ~neighbor route

let withdraw t ~router:i ~neighbor prefix ~path_id =
  Router.withdraw_ebgp (router t i) ~neighbor prefix ~path_id

let originate t ~router:i route = Router.originate (router t i) route

let hold_time = Time.sec 3

let fail t ~router:i =
  let failed = router t i in
  Router.set_down failed;
  (* Peers notice when the hold timer expires and purge the session.
     Scheduled through [sched] with [src = i]: under sharded execution
     these are cross-shard events originating at the failed router, and
     [hold_time] bounds the engine lookahead so they land past the safe
     horizon. *)
  Array.iteri
    (fun j _ ->
      if j <> i then
        t.sched.sc_schedule ~src:i ~kind:trace_kind_timer ~actor:j ~detail:0
          ~delay:hold_time
          (Purge { router = j; peer = i }))
    t.routers

let recover t ~router:i =
  let recovered = router t i in
  Router.set_up_cold recovered;
  (* Sessions re-establish; each peer replays its Adj-RIB-Out. *)
  Array.iteri
    (fun j _ ->
      if j <> i then
        t.sched.sc_schedule ~src:i ~kind:trace_kind_timer ~actor:j ~detail:0
          ~delay:hold_time
          (Establish { router = j; peer = i }))
    t.routers

let run_op t = function
  | Inject { router; neighbor; route } -> inject t ~router ~neighbor route
  | Withdraw { router; neighbor; prefix; path_id } ->
    withdraw t ~router ~neighbor prefix ~path_id
  | Originate { router; route } -> originate t ~router route
  | Withdraw_local { router = i; prefix; path_id } ->
    Router.withdraw_local (router t i) prefix ~path_id
  | Fail i -> fail t ~router:i
  | Recover i -> recover t ~router:i

let exec_payload t = function
  | Deliver { src; dst; bytes; msgs; items } ->
    Router.receive t.routers.(dst) ~src ~items ~bytes ~msgs
  | Process i -> Router.process_now t.routers.(i)
  | Mrai_flush { router = i; peer } -> Router.flush_peer t.routers.(i) ~peer
  | Purge { router = i; peer } -> Router.purge_peer t.routers.(i) ~peer
  | Establish { router = i; peer } ->
    let r = t.routers.(i) in
    if Router.is_up r then Router.refresh_to r ~peer
  | Op op -> run_op t op
  | Thunk f -> f ()

let create ?(seed = 42) config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Network.create: " ^ msg));
  let sim = Sim.create_reified ~seed () in
  (* [rec]: the serial scheduler closures reference the network they
     schedule into. *)
  let rec t =
    {
      config;
      sim;
      routers = [||];
      dist = Igp.Spf.all_pairs config.Config.igp;
      hooks = [];
      best_changes = 0;
      sched =
        {
          sc_now = (fun _ -> Sim.now sim);
          sc_schedule =
            (fun ~src:_ ~kind ~actor ~detail ~delay p ->
              Sim.schedule sim ~kind ~actor ~detail ~delay p);
          sc_best_change =
            (fun i prefix route ->
              t.best_changes <- t.best_changes + 1;
              List.iter (fun hook -> hook i prefix route) t.hooks);
        };
    }
  in
  let make_router i =
    let env =
      {
        Router.id = i;
        config;
        now = (fun () -> t.sched.sc_now i);
        schedule_process =
          (fun delay ->
            t.sched.sc_schedule ~src:i ~kind:trace_kind_timer ~actor:i
              ~detail:0 ~delay (Process i));
        schedule_flush =
          (fun ~peer delay ->
            t.sched.sc_schedule ~src:i ~kind:trace_kind_timer ~actor:i
              ~detail:0 ~delay
              (Mrai_flush { router = i; peer }));
        transmit =
          (fun ~dst ~bytes ~msgs items ->
            let delay =
              if dst = i then Time.zero else config.Config.link_delay i dst
            in
            t.sched.sc_schedule ~src:i ~kind:trace_kind_deliver ~actor:dst
              ~detail:(List.length items) ~delay
              (Deliver { src = i; dst; bytes; msgs; items }));
        igp_cost =
          (fun next_hop ->
            match Config.router_of_loopback config next_hop with
            | Some j -> t.dist.(i).(j)
            | None -> 0);
        igp_cost_from =
          (fun ~src next_hop ->
            match Config.router_of_loopback config next_hop with
            | Some j -> t.dist.(src).(j)
            | None -> 0);
        on_best_change = (fun prefix route -> t.sched.sc_best_change i prefix route);
      }
    in
    Router.create env
  in
  t.routers <- Array.init config.Config.n_routers make_router;
  Sim.set_exec sim (exec_payload t);
  t

let config t = t.config
let sim t = t.sim
let router_count t = Array.length t.routers
let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let at t time action =
  Sim.schedule_at t.sim ~kind:trace_kind_external ~time (Thunk action)

let at_op t time op = Sim.schedule_at t.sim ~kind:trace_kind_external ~time (Op op)
let best t ~router:i p = Router.best (router t i) p
let lookup t ~router:i addr = Router.lookup (router t i) addr
let best_exit t ~router:i p = Router.best_exit (router t i) p
let counters t i = Router.counters (router t i)

let total_counters t =
  let acc = Counters.create () in
  Array.iter (fun r -> Counters.add acc (Router.counters r)) t.routers;
  acc

let last_change t =
  Array.fold_left
    (fun acc r -> max acc (Router.counters r).Counters.last_change)
    Time.zero t.routers

let on_best_change t hook = t.hooks <- t.hooks @ [ hook ]
let best_changes t = t.best_changes
let igp_distance t i j = t.dist.(i).(j)

let refresh_igp t =
  t.dist <- Igp.Spf.all_pairs t.config.Config.igp;
  Array.iter Router.redecide_all t.routers

let dual_accept t =
  match t.config.Config.scheme with
  | Config.Dual { accept; _ } -> accept
  | Config.Full_mesh | Config.Tbrr _ | Config.Abrr _ | Config.Confed _
  | Config.Rcp _ ->
    invalid_arg "Network: acceptance switch requires the Dual scheme"

let acceptance t ap = (dual_accept t).(ap)

let set_acceptance t ~ap mode =
  let accept = dual_accept t in
  if ap < 0 || ap >= Array.length accept then
    invalid_arg "Network.set_acceptance: AP out of range";
  if accept.(ap) <> mode then begin
    accept.(ap) <- mode;
    Array.iter Router.redecide_all t.routers
  end

let repartition t ~partition ~arrs =
  match t.config.Config.scheme with
  | Config.Abrr spec ->
    if Array.length arrs <> Partition.count partition then
      invalid_arg
        "Network.repartition: arrs array length does not match partition size";
    Array.iter
      (fun l ->
        if l = [] then invalid_arg "Network.repartition: AP without ARRs";
        List.iter
          (fun i ->
            if i < 0 || i >= Array.length t.routers then
              invalid_arg "Network.repartition: ARR index out of range")
          l)
      arrs;
    spec.Config.partition <- partition;
    spec.Config.arrs <- arrs;
    Array.iter Router.apply_repartition t.routers
  | Config.Full_mesh | Config.Tbrr _ | Config.Confed _ | Config.Rcp _
  | Config.Dual _ ->
    invalid_arg "Network.repartition: scheme is not ABRR"

(* ------------------------------------------------------------------ *)
(* Checkpoint support                                                  *)

type dump = {
  d_clock : Time.t;
  d_next_seq : int;
  d_processed : int;
  d_rng : int64;
  d_events : payload Sim.event list;
  d_best_changes : int;
  d_routers : Router.state array;
  d_sink : Sim.Trace.dump option;
}

let dump t =
  {
    d_clock = Sim.now t.sim;
    d_next_seq = Sim.next_seq t.sim;
    d_processed = Sim.events_processed t.sim;
    d_rng = Prng.state (Sim.rng t.sim);
    d_events = Sim.pending_events t.sim;
    d_best_changes = t.best_changes;
    d_routers = Array.map Router.dump_state t.routers;
    d_sink = Option.map Sim.Trace.dump (Sim.sink t.sim);
  }

let load t d =
  if Array.length d.d_routers <> Array.length t.routers then
    invalid_arg "Network.load: router count mismatch";
  Array.iteri (fun i st -> Router.load_state t.routers.(i) st) d.d_routers;
  t.best_changes <- d.d_best_changes;
  (* SPF distances are recomputed from the caller-rebuilt config rather
     than checkpointed; a run that edits the IGP graph mid-flight must
     re-apply those edits before resuming. *)
  t.dist <- Igp.Spf.all_pairs t.config.Config.igp;
  Sim.restore t.sim ~clock:d.d_clock ~next_seq:d.d_next_seq
    ~processed:d.d_processed ~rng_state:d.d_rng d.d_events;
  match d.d_sink with
  | Some s -> Sim.set_sink t.sim (Sim.Trace.of_dump s)
  | None -> Sim.clear_sink t.sim

(* ------------------------------------------------------------------ *)
(* Sharded execution                                                   *)

(* The router whose state an event mutates — the sharding key. Total on
   reified payloads; a [Thunk] is an opaque closure with no owner. *)
let payload_owner = function
  | Deliver { dst; _ } -> dst
  | Process i -> i
  | Mrai_flush { router; _ } | Purge { router; _ } | Establish { router; _ } ->
    router
  | Op
      ( Inject { router; _ }
      | Withdraw { router; _ }
      | Originate { router; _ }
      | Withdraw_local { router; _ } ) ->
    router
  | Op (Fail i | Recover i) -> i
  | Thunk _ -> invalid_arg "Network: Thunk events cannot be sharded (use at_op)"

module Sharded = struct
  type plan = {
    shards : int;
    shard_of : int array;
    lookahead : Time.t;
  }

  type stats = Eventsim.Sharded.stats = {
    shards : int;
    windows : int;
    stalls : int;
    cross_events : int;
    max_window_events : int;
  }

  let plan config ~jobs =
    let n = config.Config.n_routers in
    let jobs = max 1 (min jobs n) in
    (* Contiguous ranges by default; under ABRR (and the Dual
       transition) each AP's ARR set is then colocated onto the AP's
       shard, so reflection for one address partition never crosses a
       shard boundary — the locality the scheme was designed around.
       A router serving several APs stays with the first. *)
    let shard_of = Array.init n (fun i -> i * jobs / n) in
    (match config.Config.scheme with
    | Config.Abrr spec | Config.Dual { abrr = spec; _ } ->
      let n_aps = Array.length spec.Config.arrs in
      let moved = Array.make n false in
      Array.iteri
        (fun ap routers ->
          let s = ap * jobs / n_aps in
          List.iter
            (fun r ->
              if not moved.(r) then begin
                moved.(r) <- true;
                shard_of.(r) <- s
              end)
            routers)
        spec.Config.arrs
    | Config.Full_mesh | Config.Tbrr _ | Config.Confed _ | Config.Rcp _ -> ());
    (* Lookahead: the fastest cross-shard interaction. Messages take at
       least the minimum cross-shard link delay; fail/recover schedule
       Purge/Establish on peers at [hold_time], so that caps it too. *)
    let lookahead = ref hold_time in
    let bad = ref None in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && shard_of.(i) <> shard_of.(j) then begin
          let d = config.Config.link_delay i j in
          if d <= 0 && !bad = None then bad := Some (i, j);
          if d < !lookahead then lookahead := d
        end
      done
    done;
    match !bad with
    | Some (i, j) ->
      Error
        (Printf.sprintf
           "link delay %d -> %d is not positive: zero-lookahead topologies \
            cannot be sharded"
           i j)
    | None ->
      (* One shard has no cross-shard pairs: a single window runs the
         whole schedule. *)
      if jobs = 1 then Ok { shards = 1; shard_of; lookahead = max_int }
      else Ok { shards = jobs; shard_of; lookahead = !lookahead }

  let run ?until ?max_events ?on_barrier t ~jobs =
    if t.hooks <> [] then
      invalid_arg
        "Network.Sharded.run: on_best_change hooks are incompatible with \
         sharded execution";
    match plan t.config ~jobs with
    | Error msg -> invalid_arg ("Network.Sharded.run: " ^ msg)
    | Ok { shards; shard_of; lookahead } ->
      (* Loc-RIB change counts accumulate per shard (disjoint indices,
         no contention) and merge at barriers — order-independent, so
         the merged total matches the serial count. *)
      let bc = Array.make shards 0 in
      let bc0 = t.best_changes in
      let sync_bc () =
        t.best_changes <- bc0 + Array.fold_left ( + ) 0 bc
      in
      let eng =
        Eventsim.Sharded.create ~master:t.sim ~shards ~lookahead
          ~owner:(fun p -> shard_of.(payload_owner p))
          ~exec:(fun ~shard:_ p -> exec_payload t p)
          ()
      in
      let sharded_sched =
        {
          sc_now = (fun i -> Eventsim.Sharded.now eng ~shard:shard_of.(i));
          sc_schedule =
            (fun ~src ~kind ~actor ~detail ~delay p ->
              Eventsim.Sharded.schedule eng ~shard:shard_of.(src) ~kind ~actor
                ~detail ~delay p);
          sc_best_change =
            (fun i _prefix _route ->
              let s = shard_of.(i) in
              bc.(s) <- bc.(s) + 1);
        }
      in
      let saved = t.sched in
      t.sched <- sharded_sched;
      Fun.protect
        ~finally:(fun () ->
          t.sched <- saved;
          sync_bc ();
          Eventsim.Sharded.shutdown eng)
        (fun () ->
          let on_barrier =
            Option.map
              (fun f () ->
                sync_bc ();
                f ())
              on_barrier
          in
          let outcome = Eventsim.Sharded.run ?until ?max_events ?on_barrier eng in
          (outcome, Eventsim.Sharded.stats eng))
end
