open Netaddr

type entry = { mutable routes : Bgp.Route.t list; mutable next : int }
type t = (int, entry) Hashtbl.t

let create () = Hashtbl.create 64

let dedup routes =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest ->
      if List.exists (Bgp.Route.same_path r) acc then go acc rest
      else go (r :: acc) rest
  in
  go [] routes

let assign t prefix routes =
  let key = Prefix.to_key prefix in
  let entry =
    match Hashtbl.find_opt t key with
    | Some e -> e
    | None ->
      let e = { routes = []; next = 1 } in
      Hashtbl.add t key e;
      e
  in
  let routes = dedup routes in
  let assigned =
    List.map
      (fun r ->
        match List.find_opt (Bgp.Route.same_path r) entry.routes with
        | Some old -> Bgp.Route.with_path_id old.Bgp.Route.path_id r
        | None ->
          let id = entry.next in
          entry.next <- id + 1;
          Bgp.Route.with_path_id id r)
      routes
  in
  let withdrawn =
    List.filter_map
      (fun (old : Bgp.Route.t) ->
        if List.exists (Bgp.Route.same_path old) assigned then None
        else Some old.Bgp.Route.path_id)
      entry.routes
  in
  entry.routes <- assigned;
  if assigned = [] then Hashtbl.remove t key;
  (assigned, withdrawn)

let current t prefix =
  match Hashtbl.find_opt t (Prefix.to_key prefix) with
  | None -> []
  | Some e -> e.routes

let drop_prefix t prefix =
  let key = Prefix.to_key prefix in
  match Hashtbl.find_opt t key with
  | None -> []
  | Some e ->
    Hashtbl.remove t key;
    List.map (fun (r : Bgp.Route.t) -> r.Bgp.Route.path_id) e.routes

let prefix_count t = Hashtbl.length t

let clear t = Hashtbl.reset t

type dump = (int * Bgp.Route.t list * int) list

let dump t =
  Hashtbl.fold (fun key e acc -> (key, e.routes, e.next) :: acc) t []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let load t d =
  Hashtbl.reset t;
  List.iter (fun (key, routes, next) -> Hashtbl.add t key { routes; next }) d
