open Netaddr
open Eventsim

type flavor = G_full_mesh | G_tbrr | G_tbrr_best_external | G_abrr of int | G_confed | G_rcp

type t = {
  config : Config.t;
  injections : (int * Ipv4.t * Bgp.Route.t) list;
  prefix : Prefix.t;
  description : string;
}

let prefix = Prefix.v "20.0.0.0" 16

let neighbor k = Ipv4.of_int (0xAC10_0000 + k)

let route ~asn ~med k =
  Bgp.Route.make
    ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int asn ])
    ~med:(Some med) ~prefix ~next_hop:(neighbor k) ()

let inject t net =
  List.iter
    (fun (router, neighbor, route) -> Network.inject net ~router ~neighbor route)
    t.injections

let build t =
  let net = Network.create t.config in
  inject t net;
  net

(* Single-AP ABRR over dedicated reflector routers. *)
let scheme_of flavor ~trr_clusters ~n =
  match flavor with
  | G_full_mesh -> Config.Full_mesh
  | G_tbrr -> Config.tbrr trr_clusters
  | G_tbrr_best_external -> Config.tbrr ~best_external:true trr_clusters
  | G_abrr arrs ->
    let all_trrs =
      List.concat_map (fun (c : Config.cluster) -> c.trrs) trr_clusters
    in
    let rrs = List.filteri (fun i _ -> i < arrs) all_trrs in
    ignore n;
    Config.abrr ~partition:(Partition.uniform 1) [| rrs |]
  | G_confed ->
    (* one member sub-AS per cluster, chained through the lead routers *)
    let sub_as_of = Array.make n 0 in
    List.iteri
      (fun i (c : Config.cluster) ->
        List.iter (fun r -> sub_as_of.(r) <- i) (c.trrs @ c.clients))
      trr_clusters;
    let leads = List.map (fun (c : Config.cluster) -> List.hd c.trrs) trr_clusters in
    let rec chain = function
      | a :: (b :: _ as rest) -> (a, b) :: chain rest
      | [ _ ] | [] -> []
    in
    Config.confed ~sub_as_of ~confed_links:(chain leads)
  | G_rcp ->
    let lead = List.hd (List.hd trr_clusters).Config.trrs in
    Config.rcp [ lead ]

(* --- MED oscillation (RFC 3345 / §2.3.1) --------------------------- *)

(* Routers: 0 = RR1, 1 = RR2, 2 = A (route a), 3 = B (route b),
   4 = C (route c). IGP distances: RR2: B(1) < C(2) < A(9);
   RR1: C(2) < A(5). a beats b on MED (same AS 100); c is AS 200. *)
let med_oscillation flavor =
  let igp = Igp.Graph.create ~n:5 in
  Igp.Graph.add_edge igp 0 2 5;
  Igp.Graph.add_edge igp 0 4 2;
  Igp.Graph.add_edge igp 1 3 1;
  Igp.Graph.add_edge igp 1 4 2;
  Igp.Graph.add_edge igp 0 1 4;
  let clusters =
    [
      { Config.trrs = [ 0 ]; clients = [ 2 ] };
      { Config.trrs = [ 1 ]; clients = [ 3; 4 ] };
    ]
  in
  let config =
    Config.make ~n_routers:5 ~igp
      ~med_mode:Bgp.Decision.Per_neighbor_as
      ~link_delay:(fun _ _ -> Time.ms 1)
      ~scheme:(scheme_of flavor ~trr_clusters:clusters ~n:5)
      ()
  in
  let injections =
    [
      (2, neighbor 1, route ~asn:100 ~med:0 1);
      (3, neighbor 2, route ~asn:100 ~med:1 2);
      (4, neighbor 3, route ~asn:200 ~med:0 3);
    ]
  in
  { config; injections; prefix; description = "RFC 3345 MED oscillation gadget" }

(* --- Topology-based oscillation (DISAGREE, §2.3.1) ------------------ *)

(* Routers 0,1,2 are single-client reflectors for clients 3,4,5 holding
   AS-level-equal routes a,b,c. IGP preferences are cyclic:
   RR0: b < a < c, RR1: c < b < a, RR2: a < c < b. *)
let topology_oscillation flavor =
  let igp = Igp.Graph.create ~n:6 in
  let edge = Igp.Graph.add_edge igp in
  edge 0 3 20;
  edge 0 4 10;
  edge 0 5 30;
  edge 1 3 30;
  edge 1 4 20;
  edge 1 5 10;
  edge 2 3 10;
  edge 2 4 30;
  edge 2 5 20;
  edge 0 1 100;
  edge 1 2 100;
  edge 0 2 100;
  let clusters =
    [
      { Config.trrs = [ 0 ]; clients = [ 3 ] };
      { Config.trrs = [ 1 ]; clients = [ 4 ] };
      { Config.trrs = [ 2 ]; clients = [ 5 ] };
    ]
  in
  let config =
    Config.make ~n_routers:6 ~igp
      ~med_mode:Bgp.Decision.Per_neighbor_as
      ~link_delay:(fun _ _ -> Time.ms 1)
      ~scheme:(scheme_of flavor ~trr_clusters:clusters ~n:6)
      ()
  in
  (* distinct neighbour ASes so MED never discriminates *)
  let injections =
    [
      (3, neighbor 1, route ~asn:301 ~med:0 1);
      (4, neighbor 2, route ~asn:302 ~med:0 2);
      (5, neighbor 3, route ~asn:303 ~med:0 3);
    ]
  in
  {
    config;
    injections;
    prefix;
    description = "cyclic-IGP-preference (DISAGREE) topology oscillation";
  }

(* --- Path inefficiency (§2.3.3) -------------------------------------- *)

let observer = 1
let near_exit = 2
let far_exit = 3

(* Router 0 reflects for clients 1,2,3. Exits at 2 and 3 carry AS-level
   equal routes. The observer (1) is near exit 2; the reflector is near
   exit 3, so single-path TBRR steers the observer the long way round. *)
let path_inefficiency flavor =
  let igp = Igp.Graph.create ~n:4 in
  let edge = Igp.Graph.add_edge igp in
  edge 1 2 10;
  edge 1 3 50;
  edge 0 2 50;
  edge 0 3 10;
  edge 0 1 40;
  let clusters = [ { Config.trrs = [ 0 ]; clients = [ 1; 2; 3 ] } ] in
  let config =
    Config.make ~n_routers:4 ~igp
      ~link_delay:(fun _ _ -> Time.ms 1)
      ~scheme:(scheme_of flavor ~trr_clusters:clusters ~n:4)
      ()
  in
  let injections =
    [
      (2, neighbor 1, route ~asn:401 ~med:0 1);
      (3, neighbor 2, route ~asn:402 ~med:0 2);
    ]
  in
  { config; injections; prefix; description = "hot-potato path inefficiency gadget" }
