(** Stable add-paths Path Identifier allocation for set advertisements.

    A reflector that advertises a *set* of routes per prefix must give
    each distinct path a stable identifier so receivers can correlate
    announcements and withdrawals across updates. *)

open Netaddr

type t

val create : unit -> t

val assign : t -> Prefix.t -> Bgp.Route.t list -> Bgp.Route.t list * int list
(** [assign t prefix routes] matches [routes] (dedup by
    {!Bgp.Route.same_path}) against the previously assigned set: unchanged
    paths keep their ids, new paths get fresh ids (starting at 1), and the
    ids of paths no longer present are returned as withdrawn. The internal
    state is replaced by the new set. *)

val current : t -> Prefix.t -> Bgp.Route.t list
(** The set most recently assigned for the prefix (with ids). *)

val drop_prefix : t -> Prefix.t -> int list
(** Forget a prefix entirely; returns the withdrawn ids. *)

val prefix_count : t -> int

val clear : t -> unit
(** Forget all assignments (cold restart). *)

(** {1 Checkpoint support} *)

type dump = (int * Bgp.Route.t list * int) list
(** [(prefix key, assigned set, next fresh id)] per tracked prefix,
    sorted by key (canonical — equal allocator states dump equal). *)

val dump : t -> dump
val load : t -> dump -> unit
