open Netaddr
open Eventsim

type cluster = { trrs : int list; clients : int list }
type tbrr_spec = {
  clusters : cluster list;
  multipath : bool;
  best_external : bool;
}
type loop_prevention = Reflected_bit | Cluster_list

type abrr_spec = {
  mutable partition : Partition.t;
  mutable arrs : int list array;
  loop_prevention : loop_prevention;
}

type confed_spec = {
  sub_as_of : int array;
  confed_links : (int * int) list;
}

type acceptance = Accept_tbrr | Accept_abrr

type scheme =
  | Full_mesh
  | Tbrr of tbrr_spec
  | Abrr of abrr_spec
  | Confed of confed_spec
  | Rcp of { rcps : int list }
  | Dual of { tbrr : tbrr_spec; abrr : abrr_spec; accept : acceptance array }

type decision = Incremental | Naive

type t = {
  n_routers : int;
  asn : Bgp.Asn.t;
  igp : Igp.Graph.t;
  scheme : scheme;
  med_mode : Bgp.Decision.med_mode;
  mrai : Time.t;
  link_delay : int -> int -> Time.t;
  proc_delay : Time.t;
  proc_jitter : Time.t;
  store_full_sets : bool;
  control_plane_rrs : bool;
  decision : decision;
  damping : Bgp.Damping.params option;
}

let proc_delay_of t i =
  if t.proc_jitter = Time.zero then t.proc_delay
  else t.proc_delay + (((i * 2_654_435_761) land 0x3FFF_FFFF) mod t.proc_jitter)

let default_link_delay src dst =
  Time.us (1_000 + (((src * 31) + (dst * 17)) mod 7 * 100))

let make ?(asn = Bgp.Asn.of_int 65000) ?(med_mode = Bgp.Decision.Per_neighbor_as)
    ?(mrai = Time.zero) ?(link_delay = default_link_delay)
    ?(proc_delay = Time.ms 1) ?(proc_jitter = Time.zero)
    ?(store_full_sets = false)
    ?(control_plane_rrs = false) ?(decision = Incremental) ?damping ~n_routers
    ~igp ~scheme () =
  {
    n_routers;
    asn;
    igp;
    scheme;
    med_mode;
    mrai;
    link_delay;
    proc_delay;
    proc_jitter;
    store_full_sets;
    control_plane_rrs;
    decision;
    damping;
  }

let tbrr ?(multipath = false) ?(best_external = false) clusters =
  Tbrr { clusters; multipath; best_external }

let abrr ?(loop_prevention = Reflected_bit) ~partition arrs =
  Abrr { partition; arrs; loop_prevention }

let confed ~sub_as_of ~confed_links = Confed { sub_as_of; confed_links }
let rcp rcps = Rcp { rcps }
let member_asn i = Bgp.Asn.of_int (64512 + i)

let loopback i = Ipv4.of_int (0x0A00_0000 + i)

let router_of_loopback t a =
  let x = Ipv4.to_int a in
  if x >= 0x0A00_0000 && x < 0x0A00_0000 + t.n_routers then Some (x - 0x0A00_0000)
  else None

let cluster_id c = Ipv4.of_int (0xC0A8_0000 + c)

let add_paths t =
  match t.scheme with
  | Full_mesh | Confed _ | Rcp _ -> false
  | Tbrr s -> s.multipath
  | Abrr _ | Dual _ -> true

let validate t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_router label i k =
    if i < 0 || i >= t.n_routers then fail "%s: router %d out of range" label i
    else k ()
  in
  let rec check_all label ids k =
    match ids with
    | [] -> k ()
    | i :: rest -> check_router label i (fun () -> check_all label rest k)
  in
  let check_tbrr (s : tbrr_spec) k =
    if s.clusters = [] then fail "TBRR: no clusters"
    else
      let rec go = function
        | [] -> k ()
        | c :: rest ->
          if c.trrs = [] then fail "TBRR: cluster without reflectors"
          else
            check_all "TBRR trr" c.trrs (fun () ->
                check_all "TBRR client" c.clients (fun () ->
                    if List.exists (fun x -> List.mem x c.trrs) c.clients then
                      fail "TBRR: router is both TRR and client of one cluster"
                    else go rest))
      in
      go s.clusters
  in
  let check_abrr (s : abrr_spec) k =
    if Array.length s.arrs <> Partition.count s.partition then
      fail "ABRR: arrs array length %d does not match partition size %d"
        (Array.length s.arrs)
        (Partition.count s.partition)
    else
      let rec go ap =
        if ap >= Array.length s.arrs then k ()
        else if s.arrs.(ap) = [] then fail "ABRR: AP %d has no ARRs" ap
        else check_all "ABRR arr" s.arrs.(ap) (fun () -> go (ap + 1))
      in
      go 0
  in
  if t.n_routers < 1 then fail "need at least one router"
  else if Igp.Graph.node_count t.igp <> t.n_routers then
    fail "IGP graph has %d nodes but n_routers = %d"
      (Igp.Graph.node_count t.igp) t.n_routers
  else
    match t.scheme with
    | Full_mesh -> Ok ()
    | Tbrr s -> check_tbrr s (fun () -> Ok ())
    | Abrr s -> check_abrr s (fun () -> Ok ())
    | Rcp { rcps } ->
      if rcps = [] then fail "RCP: need at least one control node"
      else
        let rec all = function
          | [] -> Ok ()
          | r :: rest ->
            if r < 0 || r >= t.n_routers then fail "RCP: node %d out of range" r
            else all rest
        in
        all rcps
    | Confed s ->
      if Array.length s.sub_as_of <> t.n_routers then
        fail "Confed: sub_as_of length %d does not match n_routers %d"
          (Array.length s.sub_as_of) t.n_routers
      else if Array.exists (fun x -> x < 0) s.sub_as_of then
        fail "Confed: negative sub-AS index"
      else
        let rec links = function
          | [] -> Ok ()
          | (a, b) :: rest ->
            if a < 0 || a >= t.n_routers || b < 0 || b >= t.n_routers then
              fail "Confed: link endpoint out of range"
            else if s.sub_as_of.(a) = s.sub_as_of.(b) then
              fail "Confed: link %d-%d joins the same sub-AS" a b
            else links rest
        in
        links s.confed_links
    | Dual { tbrr; abrr; accept } ->
      if Array.length accept <> Partition.count abrr.partition then
        fail "Dual: acceptance array length mismatch"
      else check_tbrr tbrr (fun () -> check_abrr abrr (fun () -> Ok ()))
