(** A simulated router: the client function (sources/sinks iBGP updates,
    runs the full decision process) plus optional reflector functions —
    TRR (topology-based, single- or multi-path) and/or ARR (address-based,
    §2.1).

    Updates are processed in batches: deliveries arriving within one
    processing window are applied together before any output is generated,
    which reproduces the ARR batching behaviour the paper credits for the
    ~30% reduction in client updates (§4.2). Outgoing updates are subject
    to a per-peer MRAI timer when configured. *)

open Netaddr
open Eventsim

type t

type env = {
  id : int;
  config : Config.t;
  now : unit -> Time.t;
  schedule : Time.t -> (unit -> unit) -> unit;  (** relative delay *)
  transmit : dst:int -> bytes:int -> msgs:int -> Proto.item list -> unit;
      (** hand a batch to the network for delivery, with its precomputed
          wire size (self-sends allowed: they model the internal
          client/reflector role passing and carry zero bytes) *)
  igp_cost : Ipv4.t -> int;
      (** IGP metric from this router to the owner of a NEXT_HOP;
          {!Igp.Spf.unreachable} if it cannot be resolved *)
  igp_cost_from : src:int -> Ipv4.t -> int;
      (** IGP metric from an arbitrary router — the RCP computes each
          client's best path from that client's vantage point *)
  on_best_change : Prefix.t -> Bgp.Route.t option -> unit;
}

val create : env -> t
val id : t -> int
val loopback : t -> Ipv4.t
val counters : t -> Counters.t
val is_trr : t -> bool
val is_arr : t -> bool
val is_rcp : t -> bool
val arr_aps : t -> int list

(** {1 Inputs} — all are queued and take effect at the next processing
    batch, keeping the simulation deterministic. *)

val receive : t -> src:int -> items:Proto.item list -> bytes:int -> msgs:int -> unit
(** Called by the network at delivery time. *)

val inject_ebgp : t -> neighbor:Ipv4.t -> Bgp.Route.t -> unit
(** An eBGP neighbour announced a route. The route's [path_id] identifies
    the eBGP session at this router (distinct neighbours must use
    distinct ids for the same prefix). *)

val withdraw_ebgp : t -> neighbor:Ipv4.t -> Prefix.t -> path_id:int -> unit
val originate : t -> Bgp.Route.t -> unit
val withdraw_local : t -> Prefix.t -> path_id:int -> unit

val redecide_all : t -> unit
(** Re-run the decision process on every known prefix (used when the
    §2.4 per-AP acceptance switch flips). *)

(** {1 Queries} *)

val best : t -> Prefix.t -> Bgp.Route.t option
val best_exit : t -> Prefix.t -> int option
(** The border router (NEXT_HOP owner) traffic for the prefix exits
    through; [None] when unknown or external. *)

val rib_in_entries : t -> int
(** Total iBGP Adj-RIB-In entries (managed + unmanaged). *)

val rib_in_managed : t -> int
(** Entries learned in a reflector role from clients. *)

val rib_in_unmanaged : t -> int
(** Entries learned in the client role (from reflectors / mesh peers). *)

val rib_out_entries : t -> int
(** Reflector peer-group Adj-RIB-Out entries. *)

val rib_out_client_entries : t -> int
(** Client-function Adj-RIB-Out entries (advertisements into iBGP). *)

val loc_rib_entries : t -> int
val ebgp_entries : t -> int
val received_set : t -> from:int -> Prefix.t -> Bgp.Route.t list
val reflector_set : t -> Prefix.t -> Bgp.Route.t list
(** The ARR's currently advertised best-AS-level set for a prefix. *)

val advertised_route : t -> Prefix.t -> Bgp.Route.t option
(** What the client function currently advertises into iBGP. *)

val known_prefixes : t -> Prefix.t list
val rejected_loops : t -> int
(** Updates discarded by loop prevention (§2.3.2). *)

(** {1 Invariant-checker support ({!Verify.Invariant})} *)

val idle : t -> bool
(** No queued inputs and no processing batch scheduled: the router's
    Loc-RIB is consistent with its Adj-RIB-Ins, so {!best} must agree
    with {!recomputed_best}. *)

val recomputed_best : t -> Prefix.t -> Bgp.Route.t option
(** Re-run the decision process from the stored Adj-RIB-Ins without
    touching any state — the independent re-derivation the runtime
    RIB-consistency invariant compares {!best} against. *)

(** {1 Failure injection (§2.3.3 robustness)} *)

val is_up : t -> bool

val set_down : t -> unit
(** Crash the router: stops processing and drops queued work. Use
    {!Network.fail} so peers tear their sessions down too. *)

val set_up_cold : t -> unit
(** Restart with empty BGP state (eBGP feeds must be re-injected). *)

val purge_peer : t -> peer:int -> unit
(** Tear down the session to a failed peer: drop everything learned from
    it and re-run the decision process on the affected prefixes. *)

val refresh_to : t -> peer:int -> unit
(** Replay the current Adj-RIB-Out towards a re-established peer (BGP's
    initial full-table exchange). *)

val lookup : t -> Netaddr.Ipv4.t -> (Netaddr.Prefix.t * Bgp.Route.t) option
(** Longest-prefix-match forwarding lookup against the Loc-RIB (what the
    FIB would do for a data packet). *)
