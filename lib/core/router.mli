(** A simulated router: the client function (sources/sinks iBGP updates,
    runs the full decision process) plus optional reflector functions —
    TRR (topology-based, single- or multi-path) and/or ARR (address-based,
    §2.1).

    Updates are processed in batches: deliveries arriving within one
    processing window are applied together before any output is generated,
    which reproduces the ARR batching behaviour the paper credits for the
    ~30% reduction in client updates (§4.2). Outgoing updates are subject
    to a per-peer MRAI timer when configured. *)

open Netaddr
open Eventsim

type t

type env = {
  id : int;
  config : Config.t;
  now : unit -> Time.t;
  schedule_process : Time.t -> unit;
      (** arm a processing-batch timer: after the relative delay the
          scheduler must call {!process_now} on this router. First-order
          (no closure) so the pending event queue can be checkpointed *)
  schedule_flush : peer:int -> Time.t -> unit;
      (** arm an MRAI flush timer: after the relative delay the
          scheduler must call {!flush_peer} for [peer] *)
  transmit : dst:int -> bytes:int -> msgs:int -> Proto.item list -> unit;
      (** hand a batch to the network for delivery, with its precomputed
          wire size (self-sends allowed: they model the internal
          client/reflector role passing and carry zero bytes) *)
  igp_cost : Ipv4.t -> int;
      (** IGP metric from this router to the owner of a NEXT_HOP;
          {!Igp.Spf.unreachable} if it cannot be resolved *)
  igp_cost_from : src:int -> Ipv4.t -> int;
      (** IGP metric from an arbitrary router — the RCP computes each
          client's best path from that client's vantage point *)
  on_best_change : Prefix.t -> Bgp.Route.t option -> unit;
}

val create : env -> t
val id : t -> int

(** {1 Roles}

    The per-router role record derived purely from the configuration:
    which reflector functions the router runs, whom it serves, whom it
    peers with. Exposed so static analyses ({!Verify.Propagation}) can
    mirror the simulator's signaling graph exactly without instantiating
    routers. *)

type roles = {
  is_trr : bool;
  is_client : bool;
  my_cluster_ids : Ipv4.t list;
  my_trrs : int list;  (** reflectors this router is a client of *)
  my_trr_clients : int list;  (** clients of the clusters it serves *)
  trr_mesh : int list;  (** the other TRRs (empty unless a TRR) *)
  tbrr_multipath : bool;
  tbrr_best_external : bool;
  arr_aps : int list;  (** APs this router serves as an ARR *)
  arr_targets : int list array;  (** reflect targets per AP (global) *)
  abrr_arrs : int list array;  (** ARRs per AP (global) *)
  partition : Partition.t option;
  abrr_loop : Config.loop_prevention;
  mesh_peers : int list;  (** full-mesh / confed sub-AS iBGP peers *)
  confed_links : int list;  (** confed-eBGP neighbours (RFC 5065) *)
  my_member_asn : Bgp.Asn.t option;
  is_rcp : bool;
  rcps : int list;  (** the control-plane nodes every client reports to *)
  rcp_clients : int list;
}

val derive_roles : Config.t -> int -> roles
(** The roles of router [i] under a configuration — the same derivation
    {!create} performs internally. *)

val process_now : t -> unit
(** Run the processing batch the [schedule_process] timer armed: drain
    the inbox, re-run the decision process on dirty prefixes, flush
    outputs. The network's event executor calls this when a [Process]
    event fires. *)

val flush_peer : t -> peer:int -> unit
(** Fire the MRAI flush toward [peer] that [schedule_flush] armed,
    transmitting the session's pending merged deltas. *)

val loopback : t -> Ipv4.t
val counters : t -> Counters.t
val is_trr : t -> bool
val is_arr : t -> bool
val is_rcp : t -> bool
val arr_aps : t -> int list

(** {1 Inputs} — all are queued and take effect at the next processing
    batch, keeping the simulation deterministic. *)

val receive : t -> src:int -> items:Proto.item list -> bytes:int -> msgs:int -> unit
(** Called by the network at delivery time. *)

val inject_ebgp : t -> neighbor:Ipv4.t -> Bgp.Route.t -> unit
(** An eBGP neighbour announced a route. The route's [path_id] identifies
    the eBGP session at this router (distinct neighbours must use
    distinct ids for the same prefix). *)

val withdraw_ebgp : t -> neighbor:Ipv4.t -> Prefix.t -> path_id:int -> unit
val originate : t -> Bgp.Route.t -> unit
val withdraw_local : t -> Prefix.t -> path_id:int -> unit

val redecide_all : t -> unit
(** Re-run the decision process on every known prefix (used when the
    §2.4 per-AP acceptance switch flips). *)

(** {1 Queries} *)

val best : t -> Prefix.t -> Bgp.Route.t option
val best_exit : t -> Prefix.t -> int option
(** The border router (NEXT_HOP owner) traffic for the prefix exits
    through; [None] when unknown or external. *)

val rib_in_entries : t -> int
(** Total iBGP Adj-RIB-In entries (managed + unmanaged). *)

val rib_in_managed : t -> int
(** Entries learned in a reflector role from clients. *)

val rib_in_unmanaged : t -> int
(** Entries learned in the client role (from reflectors / mesh peers). *)

val rib_out_entries : t -> int
(** Reflector peer-group Adj-RIB-Out entries. *)

val rib_out_client_entries : t -> int
(** Client-function Adj-RIB-Out entries (advertisements into iBGP). *)

val loc_rib_entries : t -> int
val ebgp_entries : t -> int
val received_set : t -> from:int -> Prefix.t -> Bgp.Route.t list
val reflector_set : t -> Prefix.t -> Bgp.Route.t list
(** The ARR's currently advertised best-AS-level set for a prefix. *)

val advertised_route : t -> Prefix.t -> Bgp.Route.t option
(** What the client function currently advertises into iBGP. *)

val known_prefixes : t -> Prefix.t list
(** Every prefix with state in any of this router's RIBs, in ascending
    prefix order, each once. Derived on demand from the tables — there
    is no standing per-router prefix registry (SCALING.md). *)

val rejected_loops : t -> int
(** Updates discarded by loop prevention (§2.3.2). *)

(** {1 Invariant-checker support ({!Verify.Invariant})} *)

val idle : t -> bool
(** No queued inputs and no processing batch scheduled: the router's
    Loc-RIB is consistent with its Adj-RIB-Ins, so {!best} must agree
    with {!recomputed_best}. *)

val recomputed_best : t -> Prefix.t -> Bgp.Route.t option
(** Re-run the decision process from the stored Adj-RIB-Ins without
    touching any state — the independent re-derivation the runtime
    RIB-consistency invariant compares {!best} against. *)

(** {1 Failure injection (§2.3.3 robustness)} *)

val is_up : t -> bool

val set_down : t -> unit
(** Crash the router: stops processing and drops queued work. Use
    {!Network.fail} so peers tear their sessions down too. *)

val set_up_cold : t -> unit
(** Restart with empty BGP state (eBGP feeds must be re-injected). *)

val purge_peer : t -> peer:int -> unit
(** Tear down the session to a failed peer: drop everything learned from
    it and re-run the decision process on the affected prefixes. *)

val refresh_to : t -> peer:int -> unit
(** Replay the current Adj-RIB-Out towards a re-established peer (BGP's
    initial full-table exchange). *)

val apply_repartition : t -> unit
(** Re-derive this router's roles from the (mutated) configuration after a
    live repartition ({!Network.repartition}) and emit the minimal traffic
    the ownership change requires: an ARR withdraws prefixes it no longer
    serves towards its old reflect targets, a border router re-advertises
    its eBGP-learned prefixes to newly responsible ARRs. Only prefixes
    inside the partitions' {!Partition.delta_range} generate messages. *)

val lookup : t -> Netaddr.Ipv4.t -> (Netaddr.Prefix.t * Bgp.Route.t) option
(** Longest-prefix-match forwarding lookup, answered directly by the
    Loc-RIB's trie (what the FIB would do for a data packet — there is
    no separate FIB copy). *)

(** {1 Checkpoint support (lib/snapshot)}

    A router's complete BGP state as plain data. [dump_state] is
    canonical: every table is emitted sorted by key, so two routers in
    the same logical state dump structurally equal values (and hence
    identical snapshot bytes — the divergence bisector relies on this).
    [load_state] wipes the router (cold start) and refills it; the FIB
    trie is rebuilt from the restored Loc-RIB. Scheduled work is {e not}
    in here — the pending [Process]/[Mrai_flush] events live in the
    simulator queue, which the network dump captures alongside. *)

(** Queued inputs awaiting the next processing batch — first-order so a
    mid-batch inbox round-trips through the codec. *)
type input =
  | In_items of { src : int; items : Proto.item list }
  | In_ebgp of { neighbor : Netaddr.Ipv4.t; route : Bgp.Route.t }
  | In_ebgp_withdraw of {
      neighbor : Netaddr.Ipv4.t;
      prefix : Netaddr.Prefix.t;
      path_id : int;
    }
  | In_local of Bgp.Route.t
  | In_local_withdraw of { prefix : Netaddr.Prefix.t; path_id : int }
  | In_redecide_all

type rib_dump = (Netaddr.Prefix.t * Bgp.Route.t list) list
(** Per-prefix route sets, sorted by prefix; route-list order is the
    RIB's stored (path-id insertion) order and is preserved exactly. *)

type session_state = {
  ss_peer : int;
  ss_mrai_until : Time.t;
  ss_pending : Proto.item list;  (** MRAI-suppressed merged deltas *)
  ss_flush_scheduled : bool;
}

type damp_state = {
  ds_key : int * int;  (** (prefix key, path_id) — the eBGP session slot *)
  ds_penalty : float;
  ds_stamp : Time.t;  (** time the penalty was last brought current *)
  ds_held : Bgp.Route.t option;  (** suppressed announcement, if any *)
  ds_neighbor : Netaddr.Ipv4.t;
  ds_wake : Time.t;  (** latest scheduled reuse-evaluation time *)
}
(** Route-flap-damping state of one eBGP session slot ({!Bgp.Damping});
    present only when [config.damping] is set. *)

type state = {
  st_ribs : rib_dump array;  (** fixed slot order — see router.ml *)
  st_peer_tables : (int * rib_dump) list array;  (** per-source Adj-RIB-Ins *)
  st_src_tbls : (int * int) list array;  (** best-route sender maps *)
  st_path_ids : Path_id.dump array;  (** add-paths id allocators *)
  st_ebgp_neighbors : ((int * int) * Netaddr.Ipv4.t) list;
  st_inbox : input list;  (** FIFO order *)
  st_process_scheduled : bool;
  st_outgoing : (int * Proto.item list) list;
  st_sessions : session_state list;
  st_damping : damp_state list;  (** sorted by [ds_key] *)
  st_counters : Counters.t;
  st_rejected_loops : int;
  st_up : bool;
}

val dump_state : t -> state

val load_state : t -> state -> unit
(** @raise Invalid_argument when the dump's slot-array lengths do not
    match this build (format drift — the codec's version field should
    have caught it). *)
