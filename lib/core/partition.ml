open Netaddr

type t = { bounds : int array }
(* bounds.(0) = 0; AP i spans [bounds.(i), bounds.(i+1)) with an implicit
   final bound of 2^32. *)

let space = 0x1_0000_0000

let of_bounds_int bounds =
  let k = Array.length bounds in
  if k = 0 || bounds.(0) <> 0 then
    invalid_arg "Partition: first bound must be 0.0.0.0";
  for i = 1 to k - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Partition: bounds must be strictly increasing"
  done;
  { bounds }

let of_bounds addrs = of_bounds_int (Array.of_list (List.map Ipv4.to_int addrs))

let uniform k =
  if k < 1 then invalid_arg "Partition.uniform: need at least one AP";
  of_bounds_int (Array.init k (fun i -> i * (space / k)))

let balanced ~prefixes k =
  if k < 1 then invalid_arg "Partition.balanced: need at least one AP";
  let addrs =
    List.sort_uniq Int.compare
      (List.map (fun p -> Ipv4.to_int (Prefix.addr p)) prefixes)
  in
  let arr = Array.of_list addrs in
  let n = Array.length arr in
  if n = 0 then uniform k
  else begin
    let bounds = Array.make k 0 in
    (* Cut at quantiles of the observed prefix start addresses. *)
    for i = 1 to k - 1 do
      let idx = i * n / k in
      bounds.(i) <- (if idx < n then arr.(idx) else space - 1)
    done;
    (* De-duplicate collapsed cuts by nudging upward. *)
    for i = 1 to k - 1 do
      if bounds.(i) <= bounds.(i - 1) then bounds.(i) <- bounds.(i - 1) + 1
    done;
    if bounds.(k - 1) >= space then
      invalid_arg "Partition.balanced: too many APs for the prefix spread";
    of_bounds_int bounds
  end

let count t = Array.length t.bounds
let bounds t = Array.map Ipv4.of_int t.bounds

let upper t i = if i + 1 < Array.length t.bounds then t.bounds.(i + 1) else space

let range t i =
  if i < 0 || i >= count t then invalid_arg "Partition.range: bad AP index";
  (Ipv4.of_int t.bounds.(i), Ipv4.of_int (upper t i - 1))

let ap_of_addr t a =
  let x = Ipv4.to_int a in
  (* Binary search for the last bound <= x. *)
  let lo = ref 0 and hi = ref (Array.length t.bounds - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.bounds.(mid) <= x then lo := mid else hi := mid - 1
  done;
  !lo

let aps_of_prefix t p =
  let first = ap_of_addr t (Prefix.first p) in
  let last = ap_of_addr t (Prefix.last p) in
  List.init (last - first + 1) (fun i -> first + i)

let prefix_in_ap t i p =
  let first = ap_of_addr t (Prefix.first p) in
  let last = ap_of_addr t (Prefix.last p) in
  i >= first && i <= last

let move_boundary t ~index ~addr =
  let k = Array.length t.bounds in
  if index <= 0 || index >= k then
    invalid_arg "Partition.move_boundary: bad boundary index";
  let x = Ipv4.to_int addr in
  if x <= t.bounds.(index - 1) || x >= upper t index then
    invalid_arg
      "Partition.move_boundary: new bound must stay strictly between the \
       neighbouring bounds";
  let bounds = Array.copy t.bounds in
  bounds.(index) <- x;
  { bounds }

let delta_range ~old ~now =
  if Array.length old.bounds <> Array.length now.bounds then
    Some (Ipv4.of_int 0, Ipv4.of_int (space - 1))
  else begin
    let lo = ref max_int and hi = ref min_int in
    Array.iteri
      (fun i b ->
        let b' = now.bounds.(i) in
        if b <> b' then begin
          lo := Int.min !lo (Int.min b b');
          hi := Int.max !hi (Int.max b b')
        end)
      old.bounds;
    (* Ownership changes exactly on [min differing, max differing):
       below every moved bound both partitions agree, and from the
       highest moved bound upward they agree again. *)
    if !hi < !lo then None else Some (Ipv4.of_int !lo, Ipv4.of_int (!hi - 1))
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to count t - 1 do
    let lo, hi = range t i in
    Format.fprintf fmt "AP%d: %a - %a@," i Ipv4.pp lo Ipv4.pp hi
  done;
  Format.fprintf fmt "@]"

let equal a b = a.bounds = b.bounds
