(** Canonical anomaly scenarios from the literature, parameterised by
    iBGP scheme — used to demonstrate §2.3: TBRR exhibits MED-based
    oscillation (RFC 3345), topology-based oscillation and path
    inefficiency, while ABRR and full-mesh do not. *)

open Netaddr

type flavor =
  | G_full_mesh
  | G_tbrr
  | G_tbrr_best_external
      (** TBRR with draft-ietf-idr-best-external (paper ref [25]) *)
  | G_abrr of int  (** redundant ARRs for the single AP (1 or 2) *)
  | G_confed
      (** each cluster becomes a member sub-AS, chained by confed-eBGP
          links (RFC 5065) — the other §1 scaling mechanism *)
  | G_rcp
      (** a Routing Control Platform node (related work §5) computes
          every client's best path centrally *)

type t = {
  config : Config.t;
  injections : (int * Ipv4.t * Bgp.Route.t) list;
      (** the scenario's eBGP routes as [(router, neighbor, route)] —
          plain data so the static analyzer ({!Verify}) can inspect a
          gadget without running it *)
  prefix : Prefix.t;
  description : string;
}

val inject : t -> Network.t -> unit
(** Queue the scenario's eBGP routes. *)

val build : t -> Network.t
(** [Network.create config] followed by {!inject}. *)

val med_oscillation : flavor -> t
(** RFC 3345-style gadget: routes a (AS100, MED 0), b (AS100, MED 1),
    c (AS200) with IGP metrics forming a preference cycle between two
    clusters. Under TBRR with per-neighbour-AS MED it never converges. *)

val topology_oscillation : flavor -> t
(** Three single-client clusters whose reflectors have cyclic IGP
    preferences over three AS-level-equal routes (a DISAGREE gadget);
    with symmetric timing TBRR cycles forever. *)

val path_inefficiency : flavor -> t
(** Two equal exits; the TBRR client is steered to the reflector's
    closest exit instead of its own (§2.3.3). *)

val observer : int
(** The router whose exit choice [path_inefficiency] scrutinises. *)

val near_exit : int
(** The exit that is IGP-closest to {!observer}. *)

val far_exit : int
(** The exit the TBRR reflector picks instead. *)
