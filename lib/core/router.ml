open Netaddr
open Eventsim
module D = Bgp.Decision
module R = Bgp.Route
module Rib = Bgp.Rib
module As_path = Bgp.As_path
module Damping = Bgp.Damping

type env = {
  id : int;
  config : Config.t;
  now : unit -> Time.t;
  schedule_process : Time.t -> unit;
  schedule_flush : peer:int -> Time.t -> unit;
  transmit : dst:int -> bytes:int -> msgs:int -> Proto.item list -> unit;
  igp_cost : Ipv4.t -> int;
  igp_cost_from : src:int -> Ipv4.t -> int;
  on_best_change : Prefix.t -> R.t option -> unit;
}

type input =
  | In_items of { src : int; items : Proto.item list }
  | In_ebgp of { neighbor : Ipv4.t; route : R.t }
  | In_ebgp_withdraw of { neighbor : Ipv4.t; prefix : Prefix.t; path_id : int }
  | In_local of R.t
  | In_local_withdraw of { prefix : Prefix.t; path_id : int }
  | In_redecide_all

type session = {
  mutable mrai_until : Time.t;
  pending : (int * int, Proto.item) Hashtbl.t;  (* (channel tag, prefix key) *)
  mutable flush_scheduled : bool;
}

type roles = {
  is_trr : bool;
  is_client : bool;
  my_cluster_ids : Ipv4.t list;
  my_trrs : int list;
  my_trr_clients : int list;
  trr_mesh : int list;
  tbrr_multipath : bool;
  tbrr_best_external : bool;
  arr_aps : int list;
  arr_targets : int list array;  (* reflect targets per AP index (global array) *)
  abrr_arrs : int list array;
  partition : Partition.t option;
  abrr_loop : Config.loop_prevention;
  mesh_peers : int list;
  confed_links : int list;  (* confed-eBGP neighbours (RFC 5065) *)
  my_member_asn : Bgp.Asn.t option;
  is_rcp : bool;
  rcps : int list;  (* the control-plane nodes every client reports to *)
  rcp_clients : int list;
}

(* Which table a decision candidate came from. *)
type src_tag =
  | S_ebgp
  | S_local
  | S_mesh
  | S_confed
  | S_from_rcp
  | S_managed_trr
  | S_from_trr
  | S_from_arr
  | S_own_arr

(* Per-source route tables carry a memoized ascending-source view:
   candidate collection folds over every plane's table once per decision,
   and rebuilding the sorted association list on each call dominated
   profile runs. The set of sources only changes on [table_rib]
   insertion, peer purge, and table reset — each drops the cache. *)
type srctbl = {
  ribs : (int, Rib.t) Hashtbl.t;
  mutable view : (int * Rib.t) list option;
}

(* Route-flap damping state per (prefix key, path id) — i.e. per eBGP
   session route, matching the [ebgp_neighbors] keying. Only populated
   when [config.damping] is [Some _]. A suppressed route is pulled out
   of [ebgp_rib] and parked in [dp_held] until decay brings the penalty
   under the reuse threshold. *)
type damp_entry = {
  mutable dp_penalty : float;
  mutable dp_stamp : Time.t;  (* time the penalty was last brought current *)
  mutable dp_held : R.t option;  (* the suppressed route awaiting reuse *)
  mutable dp_neighbor : Ipv4.t;
  mutable dp_wake : Time.t;  (* latest reuse wake-up already scheduled *)
}

type t = {
  env : env;
  self : Ipv4.t;
  mutable roles : roles;
  ebgp_rib : Rib.t;
  ebgp_neighbors : (int * int, Ipv4.t) Hashtbl.t;
  local_rib : Rib.t;
  managed_trr : srctbl;
  managed_arr : srctbl;
  mesh_in : srctbl;
  confed_in : srctbl;
  managed_rcp : srctbl;  (* RCP node: routes per client *)
  from_rcp : srctbl;
  rcp_out : srctbl;  (* RCP node: per-client Adj-RIB-Out *)
  from_trr : srctbl;
  from_arr : srctbl;
  loc_rib : Rib.t;
  adv_mesh : Rib.t;
  adv_confed : Rib.t;
  adv_confed_src : (int, int) Hashtbl.t;
  adv_rcp : Rib.t;
  adv_trr : Rib.t;
  adv_arr : Rib.t;
  out_mesh : Rib.t;
  out_clients : Rib.t;
  out_arr : Rib.t;
  out_clients_src : (int, int) Hashtbl.t;
  out_mesh_src : (int, int) Hashtbl.t;
  ids_mesh : Path_id.t;
  ids_clients : Path_id.t;
  ids_arr : Path_id.t;
  ids_adv_trr : Path_id.t;
  ids_adv_arr : Path_id.t;
  inbox : input Queue.t;
  mutable process_scheduled : bool;
  outgoing : (int, Proto.item list ref) Hashtbl.t;
  sessions : (int, session) Hashtbl.t;
  damping : (int * int, damp_entry) Hashtbl.t;
  counters : Counters.t;
  mutable rejected_loops : int;
  mutable up : bool;
}

(* ------------------------------------------------------------------ *)
(* Role derivation                                                     *)

let no_roles =
  {
    is_trr = false;
    is_client = true;
    my_cluster_ids = [];
    my_trrs = [];
    my_trr_clients = [];
    trr_mesh = [];
    tbrr_multipath = false;
    tbrr_best_external = false;
    arr_aps = [];
    arr_targets = [||];
    abrr_arrs = [||];
    partition = None;
    abrr_loop = Config.Reflected_bit;
    mesh_peers = [];
    confed_links = [];
    my_member_asn = None;
    is_rcp = false;
    rcps = [];
    rcp_clients = [];
  }

let dedup_ints l = List.sort_uniq Int.compare l

let tbrr_roles (config : Config.t) id (s : Config.tbrr_spec) roles =
  let my_clusters =
    List.filteri (fun _ _ -> true) s.clusters
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, (c : Config.cluster)) -> List.mem id c.trrs)
  in
  let is_trr = my_clusters <> [] in
  let my_cluster_ids = List.map (fun (i, _) -> Config.cluster_id i) my_clusters in
  let my_trrs =
    dedup_ints
      (List.concat_map
         (fun (c : Config.cluster) -> if List.mem id c.clients then c.trrs else [])
         s.clusters)
  in
  let my_trr_clients =
    dedup_ints (List.concat_map (fun (_, (c : Config.cluster)) -> c.clients) my_clusters)
  in
  let all_trrs =
    dedup_ints (List.concat_map (fun (c : Config.cluster) -> c.trrs) s.clusters)
  in
  let trr_mesh = List.filter (fun x -> x <> id) all_trrs in
  let is_client = roles.is_client && not (config.control_plane_rrs && is_trr) in
  {
    roles with
    is_trr;
    is_client;
    my_cluster_ids;
    my_trrs;
    my_trr_clients;
    trr_mesh = (if is_trr then trr_mesh else []);
    tbrr_multipath = s.multipath;
    tbrr_best_external = s.best_external;
  }

let abrr_roles (config : Config.t) id (s : Config.abrr_spec) roles =
  let k = Partition.count s.partition in
  let arr_aps =
    List.filter (fun ap -> List.mem id s.arrs.(ap)) (List.init k Fun.id)
  in
  let is_rr_router r = Array.exists (fun arrs -> List.mem r arrs) s.arrs in
  let is_client_router r = not (config.control_plane_rrs && is_rr_router r) in
  let arr_targets =
    Array.init k (fun ap ->
        List.filter
          (fun r -> is_client_router r && not (List.mem r s.arrs.(ap)))
          (List.init config.n_routers Fun.id))
  in
  let is_client = roles.is_client && is_client_router id in
  {
    roles with
    is_client;
    arr_aps;
    arr_targets;
    abrr_arrs = s.arrs;
    partition = Some s.partition;
    abrr_loop = s.loop_prevention;
  }

let derive_roles (config : Config.t) id =
  match config.scheme with
  | Config.Full_mesh ->
    let mesh_peers =
      List.filter (fun x -> x <> id) (List.init config.n_routers Fun.id)
    in
    { no_roles with mesh_peers }
  | Config.Tbrr s -> tbrr_roles config id s no_roles
  | Config.Abrr s -> abrr_roles config id s no_roles
  | Config.Confed s ->
    let my_sub = s.Config.sub_as_of.(id) in
    let mesh_peers =
      List.filter
        (fun x -> x <> id && s.Config.sub_as_of.(x) = my_sub)
        (List.init config.n_routers Fun.id)
    in
    let confed_links =
      List.filter_map
        (fun (a, b) ->
          if a = id then Some b else if b = id then Some a else None)
        s.Config.confed_links
      |> dedup_ints
    in
    { no_roles with mesh_peers; confed_links;
      my_member_asn = Some (Config.member_asn my_sub) }
  | Config.Rcp { rcps } ->
    let is_rcp = List.mem id rcps in
    let rcp_clients =
      if is_rcp then
        List.filter (fun x -> x <> id) (List.init config.n_routers Fun.id)
      else []
    in
    { no_roles with is_rcp; rcps = List.filter (fun x -> x <> id) rcps;
      rcp_clients; is_client = not is_rcp }
  | Config.Dual { tbrr; abrr; accept = _ } ->
    abrr_roles config id abrr (tbrr_roles config id tbrr no_roles)

(* ------------------------------------------------------------------ *)

let srctbl_create () = { ribs = Hashtbl.create 8; view = None }

let create env =
  {
    env;
    self = Config.loopback env.id;
    roles = derive_roles env.config env.id;
    ebgp_rib = Rib.create ();
    ebgp_neighbors = Hashtbl.create 16;
    local_rib = Rib.create ();
    managed_trr = srctbl_create ();
    managed_arr = srctbl_create ();
    mesh_in = srctbl_create ();
    confed_in = srctbl_create ();
    managed_rcp = srctbl_create ();
    from_rcp = srctbl_create ();
    rcp_out = srctbl_create ();
    from_trr = srctbl_create ();
    from_arr = srctbl_create ();
    loc_rib = Rib.create ();
    adv_mesh = Rib.create ();
    adv_confed = Rib.create ();
    adv_confed_src = Hashtbl.create 64;
    adv_rcp = Rib.create ();
    adv_trr = Rib.create ();
    adv_arr = Rib.create ();
    out_mesh = Rib.create ();
    out_clients = Rib.create ();
    out_arr = Rib.create ();
    out_clients_src = Hashtbl.create 64;
    out_mesh_src = Hashtbl.create 64;
    ids_mesh = Path_id.create ();
    ids_clients = Path_id.create ();
    ids_arr = Path_id.create ();
    ids_adv_trr = Path_id.create ();
    ids_adv_arr = Path_id.create ();
    inbox = Queue.create ();
    process_scheduled = false;
    outgoing = Hashtbl.create 16;
    sessions = Hashtbl.create 16;
    damping = Hashtbl.create 16;
    counters = Counters.create ();
    rejected_loops = 0;
    up = true;
  }

let id t = t.env.id
let loopback t = t.self
let counters t = t.counters
let is_trr t = t.roles.is_trr
let is_arr t = t.roles.arr_aps <> []
let is_rcp t = t.roles.is_rcp
let arr_aps t = t.roles.arr_aps
let rejected_loops t = t.rejected_loops

(* Every route-set replacement in any RIB table goes through here so the
   rib_touches counter tracks RIB maintenance cost (OBSERVABILITY.md). *)
let rib_set t rib p routes =
  t.counters.rib_touches <- t.counters.rib_touches + 1;
  Rib.set rib p routes

let table_rib st src =
  match Hashtbl.find_opt st.ribs src with
  | Some rib -> rib
  | None ->
    let rib = Bgp.Rib.create () in
    Hashtbl.add st.ribs src rib;
    st.view <- None;
    rib

let srctbl_find_opt st src = Hashtbl.find_opt st.ribs src
let srctbl_iter f st = Hashtbl.iter f st.ribs
let srctbl_fold f st acc = Hashtbl.fold f st.ribs acc

let srctbl_remove st src =
  if Hashtbl.mem st.ribs src then begin
    Hashtbl.remove st.ribs src;
    st.view <- None
  end

let srctbl_reset st =
  Hashtbl.reset st.ribs;
  st.view <- None

(* ------------------------------------------------------------------ *)
(* Candidate construction                                              *)

let ibgp_candidate t src (route : R.t) =
  let peer = Config.loopback src in
  {
    D.route;
    learned = D.Ibgp;
    peer_id = peer;
    peer_addr = peer;
    igp_cost = t.env.igp_cost (R.next_hop route);
  }

let eligible (c : D.candidate) = c.igp_cost <> Igp.Spf.unreachable

(* Per-source tables in ascending source order. Candidate collection and
   route dumps must not depend on hashtable iteration order: a restored
   run rebuilds these tables in a different internal order than the
   original, and decision tie-breaks would otherwise diverge. The sorted
   view is memoized on the table (invalidated whenever the source set
   changes) — this sits on the per-decision hot path. *)
let sorted_hashtbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let sorted_tbl st =
  match st.view with
  | Some v -> v
  | None ->
    let v = sorted_hashtbl st.ribs in
    st.view <- Some v;
    v

let table_candidates t tbl tag p acc =
  List.fold_left
    (fun acc (src, rib) ->
      List.fold_left
        (fun acc route ->
          let c = ibgp_candidate t src route in
          if eligible c then (c, src, tag) :: acc else acc)
        acc (Rib.get rib p))
    acc (sorted_tbl tbl)

let ebgp_candidates t p acc =
  List.fold_left
    (fun acc (route : R.t) ->
      let neighbor =
        match
          Hashtbl.find_opt t.ebgp_neighbors (Prefix.to_key p, route.R.path_id)
        with
        | Some n -> n
        | None -> (R.next_hop route)
      in
      let c =
        { D.route; learned = D.Ebgp; peer_id = neighbor; peer_addr = neighbor;
          igp_cost = 0 }
      in
      (c, -1, S_ebgp) :: acc)
    acc (Rib.get t.ebgp_rib p)

let local_candidates t p acc =
  List.fold_left
    (fun acc (route : R.t) ->
      let c =
        { D.route; learned = D.Local; peer_id = t.self; peer_addr = t.self;
          igp_cost = 0 }
      in
      (c, -1, S_local) :: acc)
    acc (Rib.get t.local_rib p)

let own_arr_candidates t p acc =
  (* An ARR's client function reads its own reflected set directly (the
     internal role passing of §2.1), skipping routes it injected itself. *)
  List.fold_left
    (fun acc (route : R.t) ->
      let own =
        match (R.originator_id route) with
        | Some o -> Ipv4.equal o t.self
        | None -> false
      in
      if own then acc
      else
        let c = ibgp_candidate t t.env.id route in
        if eligible c then (c, t.env.id, S_own_arr) :: acc else acc)
    acc (Rib.get t.out_arr p)

let serves_with roles p =
  match roles.partition with
  | None -> false
  | Some partition ->
    List.exists (fun ap -> Partition.prefix_in_ap partition ap p) roles.arr_aps

let serves_prefix t p = serves_with t.roles p

(* ABRR-plane candidates: from ARRs for other APs, plus own reflected set. *)
let abrr_candidates t p acc =
  let acc = table_candidates t t.from_arr S_from_arr p acc in
  if serves_prefix t p then own_arr_candidates t p acc else acc

(* TBRR-plane candidates, depending on role. *)
let tbrr_candidates t p acc =
  let acc =
    if t.roles.is_trr then
      table_candidates t t.mesh_in S_mesh p
        (table_candidates t t.managed_trr S_managed_trr p acc)
    else acc
  in
  if t.roles.my_trrs <> [] then table_candidates t t.from_trr S_from_trr p acc
  else acc

let confed_candidates t p acc =
  List.fold_left
    (fun acc (src, rib) ->
      List.fold_left
        (fun acc route ->
          let c = { (ibgp_candidate t src route) with D.learned = D.Confed_ebgp } in
          if eligible c then (c, src, S_confed) :: acc else acc)
        acc (Rib.get rib p))
    acc (sorted_tbl t.confed_in)

let collect_candidates t p =
  let acc = local_candidates t p (ebgp_candidates t p []) in
  match t.env.config.scheme with
  | Config.Full_mesh -> table_candidates t t.mesh_in S_mesh p acc
  | Config.Confed _ ->
    confed_candidates t p (table_candidates t t.mesh_in S_mesh p acc)
  | Config.Rcp _ -> table_candidates t t.from_rcp S_from_rcp p acc
  | Config.Tbrr _ -> tbrr_candidates t p acc
  | Config.Abrr _ -> abrr_candidates t p acc
  | Config.Dual { abrr; accept; _ } -> (
    let ap = Partition.ap_of_addr abrr.partition (Prefix.first p) in
    match accept.(ap) with
    | Config.Accept_abrr -> abrr_candidates t p acc
    | Config.Accept_tbrr -> tbrr_candidates t p acc)

(* ------------------------------------------------------------------ *)
(* Output plumbing                                                     *)

let enqueue t dst channel delta =
  let items =
    match Hashtbl.find_opt t.outgoing dst with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.outgoing dst r;
      r
  in
  items := (channel, delta) :: !items

let session t dst =
  match Hashtbl.find_opt t.sessions dst with
  | Some s -> s
  | None ->
    let s = { mrai_until = Time.zero; pending = Hashtbl.create 8; flush_scheduled = false } in
    Hashtbl.add t.sessions dst s;
    s

let transmit_now t dst (s : session) items =
  let items =
    List.sort
      (fun ((c1, d1) : Proto.item) (c2, d2) ->
        match Int.compare (Proto.channel_tag c1) (Proto.channel_tag c2) with
        | 0 -> Prefix.compare d1.Proto.prefix d2.Proto.prefix
        | c -> c)
      items
  in
  let n_withdraw =
    List.length (List.filter (fun ((_, d) : Proto.item) -> Proto.is_withdraw d) items)
  in
  let bytes, msgs =
    Proto.wire_size
      ~add_paths:(Config.add_paths t.env.config)
      (List.map snd items)
  in
  t.counters.updates_transmitted <-
    t.counters.updates_transmitted + List.length items;
  t.counters.withdrawals_transmitted <-
    t.counters.withdrawals_transmitted + n_withdraw;
  t.counters.bytes_transmitted <- t.counters.bytes_transmitted + bytes;
  t.counters.messages_transmitted <- t.counters.messages_transmitted + msgs;
  s.mrai_until <- t.env.now () + t.env.config.mrai;
  t.env.transmit ~dst ~bytes ~msgs items

let merge_pending (s : session) ((channel, delta) : Proto.item) =
  let key = (Proto.channel_tag channel, Prefix.to_key delta.Proto.prefix) in
  let merged =
    match Hashtbl.find_opt s.pending key with
    | None -> delta
    | Some (_, old) ->
      let new_ids =
        List.map (fun (r : R.t) -> r.R.path_id) delta.Proto.routes
      in
      let carried =
        List.filter (fun i -> not (List.mem i new_ids)) old.Proto.withdrawn_ids
      in
      {
        delta with
        Proto.withdrawn_ids =
          dedup_ints (carried @ delta.Proto.withdrawn_ids);
      }
  in
  Hashtbl.replace s.pending key (channel, merged)

let send t dst items =
  if dst = t.env.id then t.env.transmit ~dst ~bytes:0 ~msgs:0 items
  else
    let s = session t dst in
    let now = t.env.now () in
    if t.env.config.mrai = Time.zero || now >= s.mrai_until then
      transmit_now t dst s items
    else begin
      t.counters.updates_suppressed <-
        t.counters.updates_suppressed + List.length items;
      List.iter (merge_pending s) items;
      if not s.flush_scheduled then begin
        s.flush_scheduled <- true;
        t.env.schedule_flush ~peer:dst (s.mrai_until - now)
      end
    end

let flush_peer t ~peer =
  (* The Mrai_flush timer cannot be cancelled once scheduled, so it can
     fire after this router went down, or after the session it was armed
     for was purged by a peer failure.  Both are stale: a down router
     must not transmit, and [session t peer] would silently re-create a
     ghost entry for a purged peer. *)
  if t.up then
    match Hashtbl.find_opt t.sessions peer with
    | None -> ()
    | Some s ->
      s.flush_scheduled <- false;
      let items = Hashtbl.fold (fun _ item acc -> item :: acc) s.pending [] in
      Hashtbl.reset s.pending;
      if items <> [] then transmit_now t peer s items

let flush_outgoing t =
  let dsts = Hashtbl.fold (fun dst _ acc -> dst :: acc) t.outgoing [] in
  let dsts = List.sort Int.compare dsts in
  List.iter
    (fun dst ->
      let items = List.rev !(Hashtbl.find t.outgoing dst) in
      send t dst items)
    dsts;
  Hashtbl.reset t.outgoing

(* ------------------------------------------------------------------ *)
(* Route derivation                                                    *)

let strip_reflection (r : R.t) =
  R.update ~originator_id:None ~cluster_list:[]
    ~ext_communities:
      (List.filter
         (fun e -> not (Bgp.Ext_community.is_reflected e))
         (R.ext_communities r))
    r

(* The client function's iBGP advertisement of an other-learned route. *)
let derive_own t (r : R.t) =
  let r = strip_reflection r in
  R.update ~next_hop:t.self ~path_id:0 r

(* A TRR reflecting an iBGP-learned route (RFC 4456 attributes). *)
let derive_trr_reflect t src (r : R.t) =
  let originator =
    match (R.originator_id r) with Some o -> o | None -> Config.loopback src
  in
  let cluster =
    match t.roles.my_cluster_ids with c :: _ -> c | [] -> t.self
  in
  R.add_cluster cluster (R.update ~originator_id:(Some originator) ~path_id:0 r)

(* An ARR reflecting a client route (§2.3.2 loop marker). *)
let derive_arr_reflect t src (r : R.t) =
  let originator =
    match (R.originator_id r) with Some o -> o | None -> Config.loopback src
  in
  let r = R.update ~originator_id:(Some originator) r in
  match t.roles.abrr_loop with
  | Config.Reflected_bit -> R.mark_reflected r
  | Config.Cluster_list -> R.add_cluster t.self r

(* Assign stable ids to a derived set and report whether it changed. *)
let assign_set ids p derived =
  let previous = Path_id.current ids p in
  let assigned, withdrawn = Path_id.assign ids p derived in
  let sort_ids rs =
    List.sort (fun (a : R.t) b -> Int.compare a.R.path_id b.R.path_id) rs
  in
  let changed =
    withdrawn <> []
    || not (List.equal R.equal (sort_ids previous) (sort_ids assigned))
  in
  (assigned, withdrawn, changed)

let same_single old_routes desired =
  match (old_routes, desired) with
  | [], None -> true
  | [ (old : R.t) ], Some (r : R.t) -> R.same_path old r
  | _, _ -> false

(* ------------------------------------------------------------------ *)
(* ARR reflection (§2.1): best AS-level routes over the managed RIB.    *)

let recompute_arr t p =
  match t.roles.partition with
  | None -> ()
  | Some partition ->
    let my_aps =
      List.filter (fun ap -> Partition.prefix_in_ap partition ap p) t.roles.arr_aps
    in
    if my_aps <> [] then begin
      let tagged = table_candidates t t.managed_arr S_from_arr p [] in
      (* Loop prevention and AS-level selection do not consult the IGP, so
         include candidates regardless of next-hop reachability. *)
      let tagged =
        List.fold_left
          (fun acc (src, rib) ->
            List.fold_left
              (fun acc route ->
                let c = ibgp_candidate t src route in
                if eligible c then acc (* already included above *)
                else (c, src, S_from_arr) :: acc)
              acc (Rib.get rib p))
          tagged (sorted_tbl t.managed_arr)
      in
      let cands = List.map (fun (c, _, _) -> c) tagged in
      let survivors = D.steps_1_to_4 ~med_mode:t.env.config.med_mode cands in
      let derived =
        List.map
          (fun (c : D.candidate) ->
            let src =
              List.find_map
                (fun (c', src, _) -> if c' == c then Some src else None)
                tagged
            in
            derive_arr_reflect t (Option.value ~default:t.env.id src) c.D.route)
          survivors
      in
      let assigned, withdrawn, changed = assign_set t.ids_arr p derived in
      if changed then begin
        rib_set t t.out_arr p assigned;
        t.counters.updates_generated <- t.counters.updates_generated + 1;
        let targets =
          dedup_ints (List.concat_map (fun ap -> t.roles.arr_targets.(ap)) my_aps)
        in
        List.iter
          (fun dst ->
            let dst_loopback = Config.loopback dst in
            let routes =
              List.filter
                (fun (r : R.t) ->
                  match (R.originator_id r) with
                  | Some o -> not (Ipv4.equal o dst_loopback)
                  | None -> true)
                assigned
            in
            enqueue t dst Proto.From_arr
              { Proto.prefix = p; routes; withdrawn_ids = withdrawn })
          targets
      end
    end

(* ------------------------------------------------------------------ *)
(* TRR reflection                                                      *)

let source_is_clientside tag =
  match tag with
  | S_managed_trr | S_ebgp | S_local -> true
  | S_mesh | S_confed | S_from_rcp | S_from_trr | S_from_arr | S_own_arr -> false

let set_single_out t ~rib ~src_tbl ~channel ~targets p desired src =
  let old = Rib.get rib p in
  if not (same_single old desired) then begin
    let key = Prefix.to_key p in
    (match desired with
    | Some r ->
      rib_set t rib p [ r ];
      Hashtbl.replace src_tbl key src
    | None ->
      rib_set t rib p [];
      Hashtbl.remove src_tbl key);
    t.counters.updates_generated <- t.counters.updates_generated + 1;
    let announce =
      match desired with
      | None -> { Proto.prefix = p; routes = []; withdrawn_ids = [ 0 ] }
      | Some r -> { Proto.prefix = p; routes = [ r ]; withdrawn_ids = [] }
    in
    (* Split horizon: the peer the best route came from gets a withdrawal
       of whatever was previously advertised, never its own route back. *)
    let back_to_sender = { Proto.prefix = p; routes = []; withdrawn_ids = [ 0 ] } in
    List.iter
      (fun dst ->
        let delta =
          if desired <> None && dst = src then back_to_sender else announce
        in
        enqueue t dst channel delta)
      targets
  end

let recompute_trr_single t p =
  let tagged =
    local_candidates t p (ebgp_candidates t p [])
    |> table_candidates t t.managed_trr S_managed_trr p
    |> table_candidates t t.mesh_in S_mesh p
  in
  let cands = List.map (fun (c, _, _) -> c) tagged in
  let best = D.best ~med_mode:t.env.config.med_mode cands in
  let info =
    Option.map
      (fun (c : D.candidate) ->
        let src, tag =
          match
            List.find_map
              (fun (c', src, tag) -> if c' == c then Some (src, tag) else None)
              tagged
          with
          | Some x -> x
          | None -> (-1, S_local)
        in
        (c, src, tag))
      best
  in
  let derived =
    Option.map
      (fun ((c : D.candidate), src, _) ->
        match c.D.learned with
        | D.Ibgp -> derive_trr_reflect t src c.D.route
        | D.Ebgp | D.Local | D.Confed_ebgp -> derive_own t c.D.route)
      info
  in
  let src = match info with Some (_, s, _) -> s | None -> -1 in
  let clientside =
    match info with Some (_, _, tag) -> source_is_clientside tag | None -> false
  in
  (* To clients: the best route, never back to the client it came from. *)
  set_single_out t ~rib:t.out_clients ~src_tbl:t.out_clients_src
    ~channel:Proto.From_trr ~targets:t.roles.my_trr_clients p derived src;
  (* To the TRR mesh: only routes from clients / eBGP / local (Table 1).
     With best-external, the best client-side route is advertised even
     when the overall best was learned from the mesh. *)
  let mesh_desired, mesh_src =
    if clientside then (derived, src)
    else if not t.roles.tbrr_best_external then (None, src)
    else begin
      let clientside_tagged =
        List.filter (fun (_, _, tag) -> source_is_clientside tag) tagged
      in
      let cands = List.map (fun (c, _, _) -> c) clientside_tagged in
      match D.best ~med_mode:t.env.config.med_mode cands with
      | None -> (None, -1)
      | Some c ->
        let src', tag' =
          match
            List.find_map
              (fun (c', s', tag') -> if c' == c then Some (s', tag') else None)
              clientside_tagged
          with
          | Some x -> x
          | None -> (-1, S_local)
        in
        let r =
          match c.D.learned with
          | D.Ibgp -> derive_trr_reflect t src' c.D.route
          | D.Ebgp | D.Local | D.Confed_ebgp ->
            ignore tag';
            derive_own t c.D.route
        in
        (Some r, src')
    end
  in
  set_single_out t ~rib:t.out_mesh ~src_tbl:t.out_mesh_src ~channel:Proto.Mesh
    ~targets:t.roles.trr_mesh p mesh_desired mesh_src

let set_multi_out t ~rib ~ids ~channel ~targets p tagged_survivors =
  let derived =
    List.map
      (fun ((c : D.candidate), src, _tag) ->
        match c.D.learned with
        | D.Ibgp -> derive_trr_reflect t src c.D.route
        | D.Ebgp | D.Local | D.Confed_ebgp -> derive_own t c.D.route)
      tagged_survivors
  in
  let assigned, withdrawn, changed = assign_set ids p derived in
  if changed then begin
    rib_set t rib p assigned;
    t.counters.updates_generated <- t.counters.updates_generated + 1;
    List.iter
      (fun dst ->
        let dst_loopback = Config.loopback dst in
        let routes =
          List.filter
            (fun (r : R.t) ->
              match (R.originator_id r) with
              | Some o -> not (Ipv4.equal o dst_loopback)
              | None -> true)
            assigned
        in
        enqueue t dst channel { Proto.prefix = p; routes; withdrawn_ids = withdrawn })
      targets
  end

let recompute_trr_multi t p =
  let med_mode = t.env.config.med_mode in
  let all_tagged =
    local_candidates t p (ebgp_candidates t p [])
    |> table_candidates t t.managed_trr S_managed_trr p
    |> table_candidates t t.mesh_in S_mesh p
  in
  let pick tagged =
    let cands = List.map (fun (c, _, _) -> c) tagged in
    let survivors = D.steps_1_to_4 ~med_mode cands in
    List.filter_map
      (fun (s : D.candidate) ->
        List.find_map
          (fun ((c, _, _) as entry) -> if c == s then Some entry else None)
          tagged)
      survivors
  in
  set_multi_out t ~rib:t.out_clients ~ids:t.ids_clients ~channel:Proto.From_trr
    ~targets:t.roles.my_trr_clients p (pick all_tagged);
  let clientside_tagged =
    List.filter (fun (_, _, tag) -> source_is_clientside tag) all_tagged
  in
  set_multi_out t ~rib:t.out_mesh ~ids:t.ids_mesh ~channel:Proto.Mesh
    ~targets:t.roles.trr_mesh p (pick clientside_tagged)

(* ------------------------------------------------------------------ *)
(* Client function: decision + export                                  *)

let tbrr_active t =
  match t.env.config.scheme with
  | Config.Tbrr _ | Config.Dual _ -> true
  | Config.Full_mesh | Config.Abrr _ | Config.Confed _ | Config.Rcp _ -> false

let abrr_active t =
  match t.env.config.scheme with
  | Config.Abrr _ | Config.Dual _ -> true
  | Config.Full_mesh | Config.Tbrr _ | Config.Confed _ | Config.Rcp _ -> false

let export_plane t ~adv ~channel ~targets p desired =
  let old = Rib.get adv p in
  if not (same_single old desired) then begin
    (match desired with
    | Some r -> rib_set t adv p [ r ]
    | None -> rib_set t adv p []);
    t.counters.updates_generated <- t.counters.updates_generated + 1;
    let withdrawn_ids = match desired with None -> [ 0 ] | Some _ -> [] in
    let routes = match desired with None -> [] | Some r -> [ r ] in
    List.iter
      (fun dst ->
        enqueue t dst channel { Proto.prefix = p; routes; withdrawn_ids })
      targets
  end

(* Table 1 reads "best routes" (plural): on add-paths planes the client
   advertises every other-learned route that ties at AS level — exactly
   what makes the ARR's managed RIB equal #BAL x #Prefixes / #APs in
   Appendix A.1. *)
let own_as_level_survivors t tagged =
  let all = List.map (fun (c, _, _) -> c) tagged in
  let survivors = D.steps_1_to_4 ~med_mode:t.env.config.med_mode all in
  List.filter_map
    (fun (c : D.candidate) ->
      match c.D.learned with
      | D.Ebgp | D.Local -> Some (derive_own t c.D.route)
      | D.Ibgp | D.Confed_ebgp -> None)
    survivors

let export_plane_set t ~adv ~ids ~channel ~targets p derived =
  let assigned, withdrawn, changed = assign_set ids p derived in
  if changed then begin
    rib_set t adv p assigned;
    t.counters.updates_generated <- t.counters.updates_generated + 1;
    List.iter
      (fun dst ->
        enqueue t dst channel
          { Proto.prefix = p; routes = assigned; withdrawn_ids = withdrawn })
      targets
  end

let client_export t p tagged (winner : (D.candidate * int * src_tag) option) =
  if t.roles.is_client then begin
    let desired =
      match winner with
      | Some (c, _, _) when c.D.learned = D.Ebgp || c.D.learned = D.Local ->
        Some (derive_own t c.D.route)
      | Some _ | None -> None
    in
    let own_survivors () = own_as_level_survivors t tagged in
    (match t.env.config.scheme with
    | Config.Full_mesh ->
      export_plane t ~adv:t.adv_mesh ~channel:Proto.Mesh
        ~targets:t.roles.mesh_peers p desired
    | Config.Tbrr _ | Config.Abrr _ | Config.Confed _ | Config.Rcp _
    | Config.Dual _ -> ());
    if tbrr_active t && t.roles.my_trrs <> [] then begin
      if t.roles.tbrr_multipath then
        export_plane_set t ~adv:t.adv_trr ~ids:t.ids_adv_trr
          ~channel:Proto.To_trr ~targets:t.roles.my_trrs p (own_survivors ())
      else
        export_plane t ~adv:t.adv_trr ~channel:Proto.To_trr
          ~targets:t.roles.my_trrs p desired
    end;
    if abrr_active t then begin
      match t.roles.partition with
      | None -> ()
      | Some partition ->
        let aps = Partition.aps_of_prefix partition p in
        let targets =
          dedup_ints (List.concat_map (fun ap -> t.roles.abrr_arrs.(ap)) aps)
        in
        export_plane_set t ~adv:t.adv_arr ~ids:t.ids_adv_arr
          ~channel:Proto.To_arr ~targets p (own_survivors ())
    end
  end

let run_decision t p =
  let tagged = collect_candidates t p in
  let cands = List.map (fun (c, _, _) -> c) tagged in
  let best = D.best ~med_mode:t.env.config.med_mode cands in
  let winner =
    Option.map
      (fun (c : D.candidate) ->
        match
          List.find_map
            (fun (c', src, tag) -> if c' == c then Some (src, tag) else None)
            tagged
        with
        | Some (src, tag) -> (c, src, tag)
        | None -> (c, -1, S_local))
      best
  in
  let old = Rib.get t.loc_rib p in
  let new_route = Option.map (fun (c, _, _) -> (c : D.candidate).D.route) winner in
  let changed = not (same_single old new_route) in
  if changed then begin
    (match new_route with
    | Some r -> rib_set t t.loc_rib p [ r ]
    | None -> rib_set t t.loc_rib p []);
    t.counters.last_change <- t.env.now ();
    t.env.on_best_change p new_route
  end;
  (winner, tagged)

(* Confederation advertisement rules (RFC 5065): inside the sub-AS the
   best route is advertised iff it is not iBGP-learned (eBGP, local or
   confed-external); over confed-eBGP links the best route is always
   advertised (with our member ASN prepended to AS_CONFED_SEQUENCE),
   relying on receiver-side confed loop detection plus split-horizon
   withdrawal toward the sender. *)
let confed_export t p (winner : (D.candidate * int * src_tag) option) =
  let my_asn =
    match t.roles.my_member_asn with Some a -> a | None -> Bgp.Asn.of_int 0
  in
  let derive_base (c : D.candidate) =
    match c.D.learned with
    | D.Ebgp | D.Local -> derive_own t c.D.route
    | D.Confed_ebgp | D.Ibgp -> { (strip_reflection c.D.route) with R.path_id = 0 }
  in
  let mesh_desired =
    match winner with
    | Some (c, _, _) when c.D.learned <> D.Ibgp -> Some (derive_base c)
    | Some _ | None -> None
  in
  export_plane t ~adv:t.adv_mesh ~channel:Proto.Mesh ~targets:t.roles.mesh_peers
    p mesh_desired;
  let confed_desired =
    Option.map
      (fun ((c : D.candidate), _, _) ->
        let r = derive_base c in
        R.update ~as_path:(As_path.prepend_confed my_asn (R.as_path r)) r)
      winner
  in
  let src = match winner with Some (_, s, _) -> s | None -> -1 in
  set_single_out t ~rib:t.adv_confed ~src_tbl:t.adv_confed_src
    ~channel:Proto.Confed ~targets:t.roles.confed_links p confed_desired src

let confed_active t =
  match t.env.config.scheme with
  | Config.Confed _ -> true
  | Config.Full_mesh | Config.Tbrr _ | Config.Abrr _ | Config.Rcp _
  | Config.Dual _ ->
    false

let rcp_active t =
  match t.env.config.scheme with
  | Config.Rcp _ -> true
  | Config.Full_mesh | Config.Tbrr _ | Config.Abrr _ | Config.Confed _
  | Config.Dual _ ->
    false

(* RCP node (related work §5): compute each client's best path from that
   client's own IGP vantage over the platform's complete visibility, and
   maintain a per-client Adj-RIB-Out. *)
let recompute_rcp t p =
  let all =
    List.fold_left
      (fun acc (src, rib) ->
        List.fold_left (fun acc route -> (src, route) :: acc) acc (Rib.get rib p))
      [] (sorted_tbl t.managed_rcp)
  in
  List.iter
    (fun client ->
      let client_loopback = Config.loopback client in
      let cands =
        List.filter_map
          (fun (src, (route : R.t)) ->
            let cost = t.env.igp_cost_from ~src:client (R.next_hop route) in
            if cost = Igp.Spf.unreachable then None
            else
              Some
                ( {
                    D.route;
                    learned = (if src = client then D.Ebgp else D.Ibgp);
                    peer_id = Config.loopback src;
                    peer_addr = Config.loopback src;
                    igp_cost = cost;
                  },
                  src ))
          all
      in
      let best = D.best ~med_mode:t.env.config.med_mode (List.map fst cands) in
      let desired =
        match best with
        | Some c -> (
          match List.find_map (fun (c', src) -> if c' == c then Some src else None) cands with
          | Some src when src <> client ->
            Some
              (R.update ~path_id:0
                 ~originator_id:(Some (Config.loopback src))
                 c.D.route)
          | Some _ | None -> None (* the client's own route: nothing to teach *))
        | None -> None
      in
      ignore client_loopback;
      let rib = table_rib t.rcp_out client in
      let old = Rib.get rib p in
      if not (same_single old desired) then begin
        (match desired with
        | Some r -> rib_set t rib p [ r ]
        | None -> rib_set t rib p []);
        t.counters.updates_generated <- t.counters.updates_generated + 1;
        let delta =
          match desired with
          | Some r -> { Proto.prefix = p; routes = [ r ]; withdrawn_ids = [] }
          | None -> { Proto.prefix = p; routes = []; withdrawn_ids = [ 0 ] }
        in
        enqueue t client Proto.From_rcp delta
      end)
    t.roles.rcp_clients

let rcp_client_export t p tagged =
  if t.roles.is_client then
    export_plane_set t ~adv:t.adv_rcp ~ids:t.ids_adv_arr ~channel:Proto.To_rcp
      ~targets:t.roles.rcps p (own_as_level_survivors t tagged)

let recompute t p =
  if abrr_active t then recompute_arr t p;
  if t.roles.is_rcp then recompute_rcp t p;
  let winner, tagged = run_decision t p in
  if confed_active t then confed_export t p winner
  else if rcp_active t then rcp_client_export t p tagged
  else client_export t p tagged winner;
  if t.roles.is_trr && tbrr_active t then
    if t.roles.tbrr_multipath then recompute_trr_multi t p
    else recompute_trr_single t p

(* ------------------------------------------------------------------ *)
(* Input application                                                   *)

let reject_loop t = t.rejected_loops <- t.rejected_loops + 1

let has_my_cluster_id t (r : R.t) =
  List.exists (fun c -> R.in_cluster_list c r) t.roles.my_cluster_ids

let filter_incoming t channel (r : R.t) =
  (* Returns [None] to discard the route (loop prevention). *)
  match channel with
  | Proto.Mesh ->
    if has_my_cluster_id t r then None
    else if R.originator_id r = Some t.self then None
    else Some r
  | Proto.To_trr ->
    if has_my_cluster_id t r then None
    else if R.originator_id r = Some t.self then None
    else Some r
  | Proto.To_arr -> (
    match t.roles.abrr_loop with
    | Config.Reflected_bit -> if R.is_reflected r then None else Some r
    | Config.Cluster_list -> if (R.cluster_list r) <> [] then None else Some r)
  | Proto.Confed -> (
    (* RFC 5065 loop detection: our member ASN in a confed segment *)
    match t.roles.my_member_asn with
    | Some asn when As_path.confed_contains asn (R.as_path r) -> None
    | Some _ | None -> Some r)
  | Proto.To_rcp -> Some r
  | Proto.From_trr | Proto.From_arr | Proto.From_rcp ->
    if R.originator_id r = Some t.self then None else Some r

(* What a client stores from a reflector's advertised set (§3.4). Under
   always-compare MED one best route suffices for full-mesh-equivalent
   decisions. Under per-neighbour-AS MED the client must keep one route
   per neighbour AS (deterministic-MED-style storage): a discarded
   low-MED route could otherwise fail to eliminate the client's own
   eBGP route from the same AS (footnote 1 of the paper). *)
let best_of_set t src routes =
  match routes with
  | [] | [ _ ] -> routes
  | _ -> (
    let med_mode = t.env.config.med_mode in
    let pick group =
      let cands = List.map (ibgp_candidate t src) group in
      let usable = List.filter eligible cands in
      if usable = [] then group
      else
        match D.best ~med_mode usable with
        | Some c -> [ c.D.route ]
        | None -> group
    in
    match med_mode with
    | D.Always_compare -> pick routes
    | D.Per_neighbor_as ->
      let groups = Hashtbl.create 4 in
      let order = ref [] in
      List.iter
        (fun r ->
          let key =
            match R.neighbor_as r with Some a -> Bgp.Asn.to_int a | None -> -1
          in
          match Hashtbl.find_opt groups key with
          | Some l -> l := r :: !l
          | None ->
            Hashtbl.add groups key (ref [ r ]);
            order := key :: !order)
        routes;
      List.concat_map
        (fun key -> pick (List.rev !(Hashtbl.find groups key)))
        (List.rev !order))

(* Every prefix with state anywhere in this router: all Adj-RIB-Ins
   (plain and per-peer) plus the Loc-RIB and derived advert tables,
   each distinct prefix visited once. This replaces the retired [seen]
   table — a prefix absent from every RIB has no candidates, so
   recomputing it is a no-op and forgetting it is outcome-identical;
   meanwhile a per-router forever-grown prefix set is exactly what a
   paper-scale run cannot afford. *)
let iter_known t f =
  let visited = Hashtbl.create 256 in
  let visit p =
    let k = Prefix.to_key p in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      f p
    end
  in
  let rib r = Rib.iter (fun p _ -> visit p) r in
  List.iter rib
    [ t.ebgp_rib; t.local_rib; t.loc_rib; t.adv_mesh; t.adv_confed; t.adv_rcp;
      t.adv_trr; t.adv_arr; t.out_mesh; t.out_clients; t.out_arr ];
  List.iter
    (fun tbl -> srctbl_iter (fun _ r -> rib r) tbl)
    [ t.managed_trr; t.managed_arr; t.mesh_in; t.confed_in; t.managed_rcp;
      t.from_rcp; t.rcp_out; t.from_trr; t.from_arr ]

(* ------------------------------------------------------------------ *)
(* Incremental decision (DESIGN.md, "Incremental decision").
   Input application accumulates one churn record per dirty prefix:
   which decision planes the batch's events can influence, and the
   routes that entered or left a stored table. At batch end each dirty
   prefix is classified once against the cached per-plane incumbents —
   the heads of the RIBs the previous computation wrote — and the full
   recomputation runs only when a churned route is not provably
   irrelevant ([Decision.intrinsic_loses]). Under [Config.Naive] the
   classification still runs (the counters must match exactly) but
   every dirty prefix recomputes, which is the differential oracle. *)

(* Which cached incumbents an event stored via a given channel can
   challenge. The Loc-RIB plane covers every output derived from the
   full candidate set (client/confed/RCP-client exports are functions of
   the winner and the step-1-4 survivors); the TRR planes cover the
   reflector outputs computed over the clientside/mesh candidate subset;
   the ARR plane covers the reflected best-AS-level set over the managed
   RIB. *)
let plane_loc = 1
let plane_trr = 2   (* out_clients: reflected best over the TRR subset *)
let plane_mesh = 4  (* out_mesh: clientside best/survivors toward the mesh *)
let plane_arr = 8   (* out_arr: best-AS-level set over managed_arr *)

type churn = {
  mutable ch_full : bool;  (* structural event: always recompute *)
  mutable ch_planes : int;
  mutable ch_routes : R.t list;  (* routes added to / removed from tables *)
}

let planes_of_channel = function
  | Proto.Mesh -> plane_loc lor plane_trr
  | Proto.Confed -> plane_loc
  | Proto.To_rcp -> 0 (* RCP nodes always recompute in full *)
  | Proto.From_rcp -> plane_loc
  | Proto.To_trr -> plane_loc lor plane_trr lor plane_mesh
  | Proto.To_arr -> plane_arr
  | Proto.From_trr -> plane_loc
  | Proto.From_arr -> plane_loc

let planes_clientside = plane_loc lor plane_trr lor plane_mesh

let new_churn () = { ch_full = false; ch_planes = 0; ch_routes = [] }
let churn_of dirty p = Rib.Dirty.mark dirty p new_churn
let mark_full dirty p = (churn_of dirty p).ch_full <- true
let mark_noop dirty p = ignore (churn_of dirty p)

let mark_delta dirty p planes routes =
  let c = churn_of dirty p in
  c.ch_planes <- c.ch_planes lor planes;
  c.ch_routes <- List.rev_append routes c.ch_routes

(* Classify one dirty prefix: [`Noop] when the batch left every stored
   table unchanged, [`Delta] when every churned route strictly loses to
   the head of each plane it could challenge (arrivals are eliminated in
   steps 1-4 and withdrawals were never survivors, so no output can
   change), [`Full] otherwise. An empty flagged incumbent means the
   challenger would win by default — Full. Plane flags outside the
   router's roles are ignored: the planes they would guard are never
   computed here. *)
let classify t p (c : churn) =
  if c.ch_full || t.roles.is_rcp then `Full
  else if c.ch_routes = [] then `Noop
  else begin
    let med_mode = t.env.config.med_mode in
    let loses_to rib =
      match Rib.get rib p with
      | [] -> false
      | (incumbent : R.t) :: _ ->
        List.for_all
          (fun r -> D.intrinsic_loses ~med_mode ~incumbent r)
          c.ch_routes
    in
    let need plane = c.ch_planes land plane <> 0 in
    let trr = t.roles.is_trr && tbrr_active t in
    if
      (not (need plane_loc) || loses_to t.loc_rib)
      && ((not trr) || not (need plane_trr) || loses_to t.out_clients)
      && ((not trr)
         || not (t.roles.tbrr_multipath || t.roles.tbrr_best_external)
         || not (need plane_mesh)
         || loses_to t.out_mesh)
      && (not (abrr_active t && need plane_arr && serves_prefix t p)
         || loses_to t.out_arr)
    then `Delta
    else `Full
  end

(* Decide every dirty prefix exactly once, in prefix order. The counters
   are incremented identically under both engines; only whether the sound
   skips actually skip differs — and a naive recomputation of a skipped
   prefix changes no RIB, generates no update and stamps no change, so
   the two engines stay counter- and snapshot-identical. *)
let run_batch t dirty =
  let incremental = t.env.config.decision = Config.Incremental in
  List.iter
    (fun (p, c) ->
      t.counters.decisions_run <- t.counters.decisions_run + 1;
      match classify t p c with
      | `Full ->
        t.counters.decisions_full <- t.counters.decisions_full + 1;
        recompute t p
      | `Delta ->
        t.counters.decisions_delta <- t.counters.decisions_delta + 1;
        if not incremental then recompute t p
      | `Noop ->
        t.counters.decisions_skipped <- t.counters.decisions_skipped + 1;
        if not incremental then recompute t p)
    (Rib.Dirty.drain dirty)

let apply_item t src ((channel, delta) : Proto.item) dirty =
  let p = delta.Proto.prefix in
  let keep, rejected =
    List.partition_map
      (fun r ->
        match filter_incoming t channel r with
        | Some r -> Left r
        | None -> Right r)
      delta.Proto.routes
  in
  if rejected <> [] then reject_loop t;
  let store tbl ~best_only =
    let rib = table_rib tbl src in
    let routes =
      if best_only && not t.env.config.store_full_sets then best_of_set t src keep
      else keep
    in
    let old = Rib.get rib p in
    rib_set t rib p routes;
    if List.equal R.equal old routes then mark_noop dirty p
    else begin
      let adds =
        List.filter (fun r -> not (List.exists (R.equal r) old)) routes
      in
      let rems =
        List.filter (fun r -> not (List.exists (R.equal r) routes)) old
      in
      (* Routes common to both sets must keep their relative order: the
         stored order feeds candidate collection and hence derived-set
         path-id assignment, so a reorder is not a pure add/remove. *)
      let common_old = List.filter (fun r -> List.exists (R.equal r) routes) old in
      let common_new = List.filter (fun r -> List.exists (R.equal r) old) routes in
      if adds = [] && rems = [] then mark_full dirty p
      else if List.equal R.equal common_old common_new then
        mark_delta dirty p (planes_of_channel channel) (adds @ rems)
      else mark_full dirty p
    end
  in
  match channel with
  | Proto.Mesh -> store t.mesh_in ~best_only:false
  | Proto.Confed -> store t.confed_in ~best_only:false
  | Proto.To_rcp ->
    if t.roles.is_rcp then store t.managed_rcp ~best_only:false
    else reject_loop t
  | Proto.From_rcp -> store t.from_rcp ~best_only:false
  | Proto.To_trr ->
    if t.roles.is_trr then store t.managed_trr ~best_only:false
    else reject_loop t
  | Proto.To_arr ->
    if t.roles.arr_aps <> [] && serves_prefix t p then
      store t.managed_arr ~best_only:false
    else reject_loop t
  | Proto.From_trr -> store t.from_trr ~best_only:true
  | Proto.From_arr -> store t.from_arr ~best_only:true

(* ------------------------------------------------------------------ *)
(* Route-flap damping (RFC 2439 style, Bgp.Damping arithmetic). Hooks
   sit on the eBGP announce/withdraw paths only — iBGP-learned state is
   never damped. A suppressed route leaves [ebgp_rib] entirely, so the
   decision process, invariant checks and snapshots all agree the route
   is (temporarily) not a candidate. *)

let damp_entry_fresh now neighbor =
  { dp_penalty = 0.; dp_stamp = now; dp_held = None; dp_neighbor = neighbor;
    dp_wake = Time.zero }

let damp_bring_current params e now =
  e.dp_penalty <- Damping.decay params ~penalty:e.dp_penalty ~dt:(now - e.dp_stamp);
  e.dp_stamp <- now

(* Arm a Process wake-up for when the penalty will have decayed under
   the reuse threshold (+1 ms of slack against float rounding). The
   [dp_wake] stamp keeps repeated suppressions from flooding the event
   queue with redundant timers. *)
let damp_schedule_reuse t params e now =
  let delay = Damping.reuse_delay params ~penalty:e.dp_penalty + Time.ms 1 in
  if now + delay > e.dp_wake then begin
    e.dp_wake <- now + delay;
    t.env.schedule_process delay
  end

(* Returns [true] when the announcement was absorbed (the route is, or
   just became, suppressed) — the caller then skips the normal install. *)
let damp_announce t params ~neighbor (route : R.t) dirty =
  let p = route.R.prefix in
  let key = (Prefix.to_key p, route.R.path_id) in
  let now = t.env.now () in
  match Hashtbl.find_opt t.damping key with
  | Some e when e.dp_held <> None ->
    (* Still suppressed: remember the freshest offer, nothing else. *)
    damp_bring_current params e now;
    e.dp_held <- Some route;
    e.dp_neighbor <- neighbor;
    mark_noop dirty p;
    true
  | entry_opt ->
    let prev =
      List.find_opt
        (fun (r : R.t) -> r.R.path_id = route.R.path_id)
        (Rib.get t.ebgp_rib p)
    in
    let attr_changed =
      match prev with Some old -> not (R.same_path old route) | None -> false
    in
    (match entry_opt with
    | Some e -> damp_bring_current params e now
    | None -> ());
    let entry_opt =
      if attr_changed then begin
        let e =
          match entry_opt with
          | Some e -> e
          | None ->
            let e = damp_entry_fresh now neighbor in
            Hashtbl.add t.damping key e;
            e
        in
        e.dp_penalty <-
          Damping.penalize params ~penalty:e.dp_penalty ~dt:Time.zero
            Damping.Attr_change;
        Some e
      end
      else entry_opt
    in
    (match entry_opt with
    | Some e when Damping.suppresses params e.dp_penalty ->
      (match prev with
      | Some pr ->
        ignore (Rib.drop t.ebgp_rib p ~path_id:pr.R.path_id);
        Hashtbl.remove t.ebgp_neighbors key;
        mark_delta dirty p planes_clientside [ pr ]
      | None -> mark_noop dirty p);
      e.dp_held <- Some route;
      e.dp_neighbor <- neighbor;
      t.counters.routes_damped <- t.counters.routes_damped + 1;
      damp_schedule_reuse t params e now;
      true
    | Some _ | None -> false)

let damp_withdraw t params ~neighbor ~prefix ~path_id =
  let key = (Prefix.to_key prefix, path_id) in
  let now = t.env.now () in
  let e =
    match Hashtbl.find_opt t.damping key with
    | Some e -> e
    | None ->
      let e = damp_entry_fresh now neighbor in
      Hashtbl.add t.damping key e;
      e
  in
  e.dp_penalty <-
    Damping.penalize params ~penalty:e.dp_penalty ~dt:(now - e.dp_stamp)
      Damping.Withdrawal;
  e.dp_stamp <- now;
  (* Withdrawing a suppressed route: nothing is on offer any more, so
     there is nothing left to reinstate. The penalty stays. *)
  if e.dp_held <> None then e.dp_held <- None

(* The per-batch maturation pass: reinstate held routes whose penalty
   decayed under the reuse threshold, re-arm wake-ups for those still
   suppressed, and drop fully-decayed idle entries. Deterministic order
   (sorted keys) — reinstatements feed the same decision batch. *)
let damping_pass t dirty =
  match t.env.config.Config.damping with
  | None -> ()
  | Some params ->
    if Hashtbl.length t.damping > 0 then begin
      let now = t.env.now () in
      let entries =
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.damping []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun ((key, e) : (int * int) * damp_entry) ->
          damp_bring_current params e now;
          match e.dp_held with
          | Some r when Damping.reusable params e.dp_penalty ->
            e.dp_held <- None;
            ignore (Rib.upsert t.ebgp_rib r);
            Hashtbl.replace t.ebgp_neighbors key e.dp_neighbor;
            mark_delta dirty r.R.prefix planes_clientside [ r ]
          | Some _ -> damp_schedule_reuse t params e now
          | None ->
            (* A decayed-out entry with no held route carries no
               information any more. *)
            if e.dp_penalty < 1. then Hashtbl.remove t.damping key)
        entries
    end

let apply_input t input dirty =
  match input with
  | In_items { src; items } -> List.iter (fun item -> apply_item t src item dirty) items
  | In_ebgp { neighbor; route } ->
    let absorbed =
      match t.env.config.Config.damping with
      | Some params -> damp_announce t params ~neighbor route dirty
      | None -> false
    in
    if not absorbed then begin
      let p = route.R.prefix in
      let key = Prefix.to_key p in
      let prev =
        List.find_opt
          (fun (r : R.t) -> r.R.path_id = route.R.path_id)
          (Rib.get t.ebgp_rib p)
      in
      let changed = Rib.upsert t.ebgp_rib route in
      let neighbor_changed =
        match Hashtbl.find_opt t.ebgp_neighbors (key, route.R.path_id) with
        | Some n -> not (Ipv4.equal n neighbor)
        | None -> false
      in
      Hashtbl.replace t.ebgp_neighbors (key, route.R.path_id) neighbor;
      (* Re-announcing the stored route verbatim is a decision no-op; a
         neighbour change with identical attributes still shifts the
         candidate's peer identity (steps 7-8), so it recomputes in full. *)
      if neighbor_changed then mark_full dirty p
      else if not changed then mark_noop dirty p
      else mark_delta dirty p planes_clientside (route :: Option.to_list prev)
    end
  | In_ebgp_withdraw { neighbor; prefix; path_id } ->
    (match t.env.config.Config.damping with
    | Some params -> damp_withdraw t params ~neighbor ~prefix ~path_id
    | None -> ());
    let key = Prefix.to_key prefix in
    let prev =
      List.find_opt
        (fun (r : R.t) -> r.R.path_id = path_id)
        (Rib.get t.ebgp_rib prefix)
    in
    if Rib.drop t.ebgp_rib prefix ~path_id then begin
      Hashtbl.remove t.ebgp_neighbors (key, path_id);
      mark_delta dirty prefix planes_clientside (Option.to_list prev)
    end
  | In_local route ->
    let p = route.R.prefix in
    let prev =
      List.find_opt
        (fun (r : R.t) -> r.R.path_id = route.R.path_id)
        (Rib.get t.local_rib p)
    in
    if Rib.upsert t.local_rib route then
      mark_delta dirty p planes_clientside (route :: Option.to_list prev)
    else mark_noop dirty p
  | In_local_withdraw { prefix; path_id } ->
    let prev =
      List.find_opt
        (fun (r : R.t) -> r.R.path_id = path_id)
        (Rib.get t.local_rib prefix)
    in
    if Rib.drop t.local_rib prefix ~path_id then
      mark_delta dirty prefix planes_clientside (Option.to_list prev)
  | In_redecide_all -> iter_known t (fun p -> mark_full dirty p)

let process_now t =
  t.process_scheduled <- false;
  if not t.up then Queue.clear t.inbox
  else begin
  let dirty = Rib.Dirty.create () in
  let rec drain () =
    match Queue.take_opt t.inbox with
    | None -> ()
    | Some input ->
      apply_input t input dirty;
      drain ()
  in
  drain ();
  damping_pass t dirty;
  run_batch t dirty;
  flush_outgoing t
  end

let ensure_process t =
  if not t.process_scheduled then begin
    t.process_scheduled <- true;
    t.env.schedule_process (Config.proc_delay_of t.env.config t.env.id)
  end

let push t input =
  Queue.add input t.inbox;
  ensure_process t

(* ------------------------------------------------------------------ *)
(* Public inputs                                                       *)

let receive t ~src ~items ~bytes ~msgs =
  ignore msgs;
  if not t.up then ()
  else begin
  if src <> t.env.id then begin
    t.counters.updates_received <- t.counters.updates_received + List.length items;
    t.counters.withdrawals_received <-
      t.counters.withdrawals_received
      + List.length (List.filter (fun ((_, d) : Proto.item) -> Proto.is_withdraw d) items);
    t.counters.bytes_received <- t.counters.bytes_received + bytes
  end;
  (* Coalesce after counting: received-update accounting sees the wire
     items, state application only needs the last delta per key. *)
  push t (In_items { src; items = Proto.coalesce items })
  end

let inject_ebgp t ~neighbor route = push t (In_ebgp { neighbor; route })

let withdraw_ebgp t ~neighbor prefix ~path_id =
  push t (In_ebgp_withdraw { neighbor; prefix; path_id })

let originate t route = push t (In_local route)
let withdraw_local t prefix ~path_id = push t (In_local_withdraw { prefix; path_id })
let redecide_all t = push t In_redecide_all
let is_up t = t.up

(* Session teardown towards a failed peer: forget everything learned
   from it and stop holding pending output for it. *)
let purge_peer t ~peer =
  if t.up then begin
    let drop tbl =
      match srctbl_find_opt tbl peer with
      | None -> []
      | Some rib ->
        let prefixes = Rib.prefixes rib in
        srctbl_remove tbl peer;
        prefixes
    in
    let dirty =
      List.concat_map drop
        [ t.managed_trr; t.managed_arr; t.managed_rcp; t.mesh_in; t.confed_in;
          t.from_trr; t.from_arr; t.from_rcp ]
    in
    Hashtbl.remove t.sessions peer;
    if dirty <> [] then begin
      (* Wholesale table drops invalidate plane incumbents structurally:
         every affected prefix recomputes in full. *)
      let d = Rib.Dirty.create () in
      List.iter (fun p -> mark_full d p) dirty;
      run_batch t d;
      flush_outgoing t
    end
  end

(* Session re-establishment towards a recovered peer: replay the current
   Adj-RIB-Out state that peer is entitled to (BGP's initial full table
   exchange). *)
let refresh_to t ~peer =
  if t.up then begin
    let replay rib channel entitled =
      Rib.iter
        (fun p routes ->
          if entitled p then
            enqueue t peer channel
              { Proto.prefix = p; routes; withdrawn_ids = [] })
        rib
    in
    let always _ = true in
    if List.mem peer t.roles.mesh_peers then replay t.adv_mesh Proto.Mesh always;
    if List.mem peer t.roles.confed_links then
      replay t.adv_confed Proto.Confed always;
    if List.mem peer t.roles.rcps then replay t.adv_rcp Proto.To_rcp always;
    if t.roles.is_rcp then (
      match srctbl_find_opt t.rcp_out peer with
      | Some rib -> replay rib Proto.From_rcp always
      | None -> ());
    if List.mem peer t.roles.my_trrs then begin
      replay t.adv_trr Proto.To_trr always
    end;
    (match t.roles.partition with
    | Some partition ->
      let arr_of p =
        List.exists
          (fun ap -> List.mem peer t.roles.abrr_arrs.(ap))
          (Partition.aps_of_prefix partition p)
      in
      replay t.adv_arr Proto.To_arr arr_of
    | None -> ());
    if t.roles.is_trr then begin
      if List.mem peer t.roles.my_trr_clients then
        replay t.out_clients Proto.From_trr always;
      if List.mem peer t.roles.trr_mesh then replay t.out_mesh Proto.Mesh always
    end;
    (match t.roles.partition with
    | Some partition ->
      let target_of p =
        List.exists
          (fun ap ->
            Partition.prefix_in_ap partition ap p
            && List.mem peer t.roles.arr_targets.(ap))
          t.roles.arr_aps
      in
      replay t.out_arr Proto.From_arr target_of
    | None -> ());
    flush_outgoing t
  end

(* Live repartition (scenario drill): the caller has already mutated the
   shared [Config.abrr_spec] in place; re-derive this router's roles and
   reconcile the ABRR state machine with them.

   ARR side — prefixes that moved out of our APs: withdraw the reflected
   set from the targets the OLD roles advertised it to, drop the
   out_arr/managed_arr state, and recompute the prefix (our own decision
   may have read the reflected set).

   Client side — prefixes whose responsible-ARR set gained members:
   advertise the current exported set ([adv_arr]) to the new ARRs only.
   The ARRs that lost the prefix purge their copy locally in their own
   [apply_repartition]; sending them explicit To_arr withdrawals would
   only be rejected ([apply_item] refuses To_arr for unserved prefixes).
   This is what keeps the movement minimal: only prefixes inside the
   partition delta range generate any traffic at all. *)
let apply_repartition t =
  let old_roles = t.roles in
  t.roles <- derive_roles t.env.config t.env.id;
  let new_roles = t.roles in
  if t.up then begin
    let dirty = Rib.Dirty.create () in
    (* ARR side: retire prefixes no longer in our APs. *)
    let retired = Hashtbl.create 16 in
    let note p =
      if serves_with old_roles p && not (serves_with new_roles p) then
        Hashtbl.replace retired (Prefix.to_key p) p
    in
    List.iter note (Rib.prefixes t.out_arr);
    srctbl_iter (fun _ rib -> List.iter note (Rib.prefixes rib)) t.managed_arr;
    let retired =
      Hashtbl.fold (fun _ p acc -> p :: acc) retired []
      |> List.sort Prefix.compare
    in
    List.iter
      (fun p ->
        let withdrawn = Path_id.drop_prefix t.ids_arr p in
        if withdrawn <> [] then begin
          let old_aps =
            match old_roles.partition with
            | Some part ->
              List.filter
                (fun ap -> Partition.prefix_in_ap part ap p)
                old_roles.arr_aps
            | None -> []
          in
          let targets =
            dedup_ints
              (List.concat_map (fun ap -> old_roles.arr_targets.(ap)) old_aps)
          in
          List.iter
            (fun dst ->
              enqueue t dst Proto.From_arr
                { Proto.prefix = p; routes = []; withdrawn_ids = withdrawn })
            targets
        end;
        if Rib.get t.out_arr p <> [] then rib_set t t.out_arr p [];
        srctbl_iter
          (fun _ rib -> if Rib.get rib p <> [] then rib_set t rib p [])
          t.managed_arr;
        mark_full dirty p)
      retired;
    t.counters.Counters.prefixes_moved_on_repartition <-
      t.counters.Counters.prefixes_moved_on_repartition + List.length retired;
    (* Client side: feed newly-responsible ARRs our exported set. *)
    (match (old_roles.partition, new_roles.partition) with
    | Some oldp, Some newp ->
      let arrs_of part (arrs : int list array) p =
        dedup_ints
          (List.concat_map
             (fun ap -> arrs.(ap))
             (Partition.aps_of_prefix part p))
      in
      Rib.iter
        (fun p routes ->
          if routes <> [] then begin
            let old_arrs = arrs_of oldp old_roles.abrr_arrs p in
            let new_arrs = arrs_of newp new_roles.abrr_arrs p in
            let added =
              List.filter (fun a -> not (List.mem a old_arrs)) new_arrs
            in
            List.iter
              (fun dst ->
                enqueue t dst Proto.To_arr
                  { Proto.prefix = p; routes; withdrawn_ids = [] })
              added
          end)
        t.adv_arr
    | _ -> ());
    run_batch t dirty;
    flush_outgoing t
  end

let set_down t =
  t.up <- false;
  Queue.clear t.inbox;
  Hashtbl.reset t.outgoing

(* Cold start: all BGP state is lost (eBGP feeds must be re-injected by
   the caller, as a rebooted router would re-learn them). *)
let set_up_cold t =
  t.up <- true;
  Rib.clear t.ebgp_rib;
  Hashtbl.reset t.ebgp_neighbors;
  Rib.clear t.local_rib;
  List.iter srctbl_reset
    [ t.managed_trr; t.managed_arr; t.managed_rcp; t.mesh_in; t.confed_in;
      t.from_trr; t.from_arr; t.from_rcp; t.rcp_out ];
  List.iter Rib.clear
    [ t.loc_rib; t.adv_mesh; t.adv_confed; t.adv_trr; t.adv_arr; t.adv_rcp;
      t.out_mesh; t.out_clients; t.out_arr ];
  Hashtbl.reset t.adv_confed_src;
  Hashtbl.reset t.out_clients_src;
  Hashtbl.reset t.out_mesh_src;
  List.iter Path_id.clear
    [ t.ids_mesh; t.ids_clients; t.ids_arr; t.ids_adv_trr; t.ids_adv_arr ];
  Hashtbl.reset t.sessions;
  Hashtbl.reset t.damping;
  Queue.clear t.inbox

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let best t p = match Rib.get t.loc_rib p with [] -> None | r :: _ -> Some r

(* LPM straight off the Loc-RIB trie — no separate FIB copy. *)
let lookup t addr =
  match Rib.longest_match t.loc_rib addr with
  | Some (p, r :: _) -> Some (p, r)
  | Some (_, []) | None -> None

let idle t = Queue.is_empty t.inbox && not t.process_scheduled

let recomputed_best t p =
  let cands = List.map (fun (c, _, _) -> c) (collect_candidates t p) in
  Option.map (fun (c : D.candidate) -> c.D.route)
    (D.best ~med_mode:t.env.config.med_mode cands)

let best_exit t p =
  match best t p with
  | None -> None
  | Some r -> Config.router_of_loopback t.env.config (R.next_hop r)

let sum_tbl tbl = srctbl_fold (fun _ rib acc -> acc + Rib.entry_count rib) tbl 0

let rib_in_managed t =
  sum_tbl t.managed_trr + sum_tbl t.managed_arr + sum_tbl t.managed_rcp

let rib_in_unmanaged t =
  sum_tbl t.mesh_in + sum_tbl t.confed_in + sum_tbl t.from_trr
  + sum_tbl t.from_arr + sum_tbl t.from_rcp

let rib_in_entries t = rib_in_managed t + rib_in_unmanaged t

let rib_out_entries t =
  Rib.entry_count t.out_mesh + Rib.entry_count t.out_clients
  + Rib.entry_count t.out_arr + sum_tbl t.rcp_out

let rib_out_client_entries t =
  Rib.entry_count t.adv_mesh + Rib.entry_count t.adv_confed
  + Rib.entry_count t.adv_trr + Rib.entry_count t.adv_arr
  + Rib.entry_count t.adv_rcp

let loc_rib_entries t = Rib.entry_count t.loc_rib
let ebgp_entries t = Rib.entry_count t.ebgp_rib

let received_set t ~from p =
  let get tbl = match srctbl_find_opt tbl from with None -> [] | Some rib -> Rib.get rib p in
  get t.from_arr @ get t.from_trr @ get t.mesh_in @ get t.confed_in
  @ get t.from_rcp

let reflector_set t p = Rib.get t.out_arr p
let advertised_route t p =
  match Rib.get t.adv_arr p @ Rib.get t.adv_trr p @ Rib.get t.adv_mesh p with
  | [] -> None
  | r :: _ -> Some r

let known_prefixes t =
  let acc = ref [] in
  iter_known t (fun p -> acc := p :: !acc);
  List.sort Prefix.compare !acc

(* ------------------------------------------------------------------ *)
(* Checkpoint support                                                  *)

type rib_dump = (Prefix.t * R.t list) list

type session_state = {
  ss_peer : int;
  ss_mrai_until : Time.t;
  ss_pending : Proto.item list;
  ss_flush_scheduled : bool;
}

type damp_state = {
  ds_key : int * int;  (* (prefix key, path id) *)
  ds_penalty : float;
  ds_stamp : Time.t;
  ds_held : R.t option;
  ds_neighbor : Ipv4.t;
  ds_wake : Time.t;
}

type state = {
  st_ribs : rib_dump array;
  st_peer_tables : (int * rib_dump) list array;
  st_src_tbls : (int * int) list array;
  st_path_ids : Path_id.dump array;
  st_ebgp_neighbors : ((int * int) * Ipv4.t) list;
  st_inbox : input list;
  st_process_scheduled : bool;
  st_outgoing : (int * Proto.item list) list;
  st_sessions : session_state list;
  st_damping : damp_state list;
  st_counters : Counters.t;
  st_rejected_loops : int;
  st_up : bool;
}

(* Fixed slot orders — the codec stores these arrays positionally, so
   the orders are part of the snapshot format (bump the format version
   when changing them). *)
let rib_slots t =
  [| t.ebgp_rib; t.local_rib; t.loc_rib; t.adv_mesh; t.adv_confed; t.adv_rcp;
     t.adv_trr; t.adv_arr; t.out_mesh; t.out_clients; t.out_arr |]

let peer_table_slots t =
  [| t.managed_trr; t.managed_arr; t.mesh_in; t.confed_in; t.managed_rcp;
     t.from_rcp; t.rcp_out; t.from_trr; t.from_arr |]

let src_tbl_slots t =
  [| t.adv_confed_src; t.out_clients_src; t.out_mesh_src |]

let path_id_slots t =
  [| t.ids_mesh; t.ids_clients; t.ids_arr; t.ids_adv_trr; t.ids_adv_arr |]

let dump_rib rib =
  Rib.prefixes rib
  |> List.sort Prefix.compare
  |> List.map (fun p -> (p, Rib.get rib p))

let sort_items items =
  List.sort
    (fun ((c1, d1) : Proto.item) (c2, d2) ->
      match Int.compare (Proto.channel_tag c1) (Proto.channel_tag c2) with
      | 0 -> Prefix.compare d1.Proto.prefix d2.Proto.prefix
      | c -> c)
    items

let dump_state t =
  {
    st_ribs = Array.map dump_rib (rib_slots t);
    st_peer_tables =
      Array.map
        (fun tbl ->
          List.map (fun (src, rib) -> (src, dump_rib rib)) (sorted_tbl tbl))
        (peer_table_slots t);
    st_src_tbls = Array.map sorted_hashtbl (src_tbl_slots t);
    st_path_ids = Array.map Path_id.dump (path_id_slots t);
    st_ebgp_neighbors =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.ebgp_neighbors []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    st_inbox = List.of_seq (Queue.to_seq t.inbox);
    st_process_scheduled = t.process_scheduled;
    st_outgoing =
      Hashtbl.fold (fun dst r acc -> (dst, List.rev !r) :: acc) t.outgoing []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    st_sessions =
      Hashtbl.fold
        (fun peer (s : session) acc ->
          {
            ss_peer = peer;
            ss_mrai_until = s.mrai_until;
            ss_pending =
              sort_items (Hashtbl.fold (fun _ it acc -> it :: acc) s.pending []);
            ss_flush_scheduled = s.flush_scheduled;
          }
          :: acc)
        t.sessions []
      |> List.sort (fun a b -> Int.compare a.ss_peer b.ss_peer);
    st_damping =
      Hashtbl.fold
        (fun key (e : damp_entry) acc ->
          {
            ds_key = key;
            ds_penalty = e.dp_penalty;
            ds_stamp = e.dp_stamp;
            ds_held = e.dp_held;
            ds_neighbor = e.dp_neighbor;
            ds_wake = e.dp_wake;
          }
          :: acc)
        t.damping []
      |> List.sort (fun a b -> compare a.ds_key b.ds_key);
    st_counters = Counters.copy t.counters;
    st_rejected_loops = t.rejected_loops;
    st_up = t.up;
  }

let load_state t st =
  let ribs = rib_slots t in
  let tables = peer_table_slots t in
  let srcs = src_tbl_slots t in
  let ids = path_id_slots t in
  if
    Array.length st.st_ribs <> Array.length ribs
    || Array.length st.st_peer_tables <> Array.length tables
    || Array.length st.st_src_tbls <> Array.length srcs
    || Array.length st.st_path_ids <> Array.length ids
  then invalid_arg "Router.load_state: slot count mismatch";
  (* Wipe everything, as a cold start would, then refill from the dump. *)
  Array.iter Rib.clear ribs;
  Array.iter srctbl_reset tables;
  Array.iter Hashtbl.reset srcs;
  Array.iter Path_id.clear ids;
  Hashtbl.reset t.ebgp_neighbors;
  Queue.clear t.inbox;
  Hashtbl.reset t.outgoing;
  Hashtbl.reset t.sessions;
  Hashtbl.reset t.damping;
  Array.iteri
    (fun i d -> List.iter (fun (p, rs) -> Rib.set ribs.(i) p rs) d)
    st.st_ribs;
  Array.iteri
    (fun i d ->
      List.iter
        (fun (src, rd) ->
          let rib = table_rib tables.(i) src in
          List.iter (fun (p, rs) -> Rib.set rib p rs) rd)
        d)
    st.st_peer_tables;
  Array.iteri
    (fun i d -> List.iter (fun (k, v) -> Hashtbl.replace srcs.(i) k v) d)
    st.st_src_tbls;
  Array.iteri (fun i d -> Path_id.load ids.(i) d) st.st_path_ids;
  List.iter
    (fun (k, v) -> Hashtbl.replace t.ebgp_neighbors k v)
    st.st_ebgp_neighbors;
  List.iter (fun input -> Queue.add input t.inbox) st.st_inbox;
  t.process_scheduled <- st.st_process_scheduled;
  List.iter
    (fun (dst, items) -> Hashtbl.replace t.outgoing dst (ref (List.rev items)))
    st.st_outgoing;
  List.iter
    (fun ss ->
      let s =
        {
          mrai_until = ss.ss_mrai_until;
          pending = Hashtbl.create 8;
          flush_scheduled = ss.ss_flush_scheduled;
        }
      in
      List.iter
        (fun (((c, d) : Proto.item) as item) ->
          Hashtbl.replace s.pending
            (Proto.channel_tag c, Prefix.to_key d.Proto.prefix)
            item)
        ss.ss_pending;
      Hashtbl.add t.sessions ss.ss_peer s)
    st.st_sessions;
  List.iter
    (fun ds ->
      Hashtbl.replace t.damping ds.ds_key
        {
          dp_penalty = ds.ds_penalty;
          dp_stamp = ds.ds_stamp;
          dp_held = ds.ds_held;
          dp_neighbor = ds.ds_neighbor;
          dp_wake = ds.ds_wake;
        })
    st.st_damping;
  (let c = t.counters and s = st.st_counters in
   c.Counters.updates_received <- s.Counters.updates_received;
   c.Counters.updates_generated <- s.Counters.updates_generated;
   c.Counters.updates_transmitted <- s.Counters.updates_transmitted;
   c.Counters.updates_suppressed <- s.Counters.updates_suppressed;
   c.Counters.messages_transmitted <- s.Counters.messages_transmitted;
   c.Counters.bytes_transmitted <- s.Counters.bytes_transmitted;
   c.Counters.bytes_received <- s.Counters.bytes_received;
   c.Counters.withdrawals_received <- s.Counters.withdrawals_received;
   c.Counters.withdrawals_transmitted <- s.Counters.withdrawals_transmitted;
   c.Counters.decisions_run <- s.Counters.decisions_run;
   c.Counters.decisions_full <- s.Counters.decisions_full;
   c.Counters.decisions_delta <- s.Counters.decisions_delta;
   c.Counters.decisions_skipped <- s.Counters.decisions_skipped;
   c.Counters.rib_touches <- s.Counters.rib_touches;
   c.Counters.routes_damped <- s.Counters.routes_damped;
   c.Counters.hijacks_injected <- s.Counters.hijacks_injected;
   c.Counters.takeovers <- s.Counters.takeovers;
   c.Counters.prefixes_moved_on_repartition <-
     s.Counters.prefixes_moved_on_repartition;
   c.Counters.last_change <- s.Counters.last_change);
  t.rejected_loops <- st.st_rejected_loops;
  t.up <- st.st_up
