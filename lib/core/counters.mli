(** Per-router measurement counters, matching the paper's accounting
    (§4.2): an "update" is a per-prefix route change crossing a peering
    session or a peer-group RIB-Out; bytes are measured with the wire
    codec.

    Every router owns one [t] ({!Network.counters}); {!copy} and {!diff}
    turn the running totals into per-phase breakdowns (snapshot the
    counters at a phase boundary, diff at the next), and {!to_fields}
    flattens a value for JSON emission ({!Metrics.Emit}) — see
    OBSERVABILITY.md. *)

type t = {
  mutable updates_received : int;
      (** prefix-level changes delivered to this router over iBGP *)
  mutable updates_generated : int;
      (** prefix-level changes applied to a peer-group Adj-RIB-Out —
          the expensive operation (§3.3) *)
  mutable updates_transmitted : int;
      (** prefix-level changes sent, counted once per receiving session *)
  mutable updates_suppressed : int;
      (** prefix-level changes deferred by an armed MRAI timer and merged
          into the session's pending set instead of being sent
          immediately (the flush may later transmit a collapsed form) *)
  mutable messages_transmitted : int;
      (** wire messages sent (batched updates count once per message) *)
  mutable bytes_transmitted : int;
  mutable bytes_received : int;
  mutable withdrawals_received : int;
  mutable withdrawals_transmitted : int;
  mutable decisions_run : int;
      (** per-prefix decision evaluations: every dirty prefix examined by
          a processing batch, whatever the outcome below *)
  mutable decisions_full : int;
      (** evaluations that ran the full 8-step kernel (incumbent lost,
          challenger not provably worse, or a structural event) *)
  mutable decisions_delta : int;
      (** evaluations resolved against the cached incumbents alone: every
          churned route strictly lost on the intrinsic key prefix, so the
          full pass was skipped (run anyway under [Config.Naive]) *)
  mutable decisions_skipped : int;
      (** evaluations whose churn was a stored-state no-op (identical
          route set re-delivered), needing no selection work at all *)
  mutable rib_touches : int;
      (** route-set replacements applied to any RIB table (Loc-RIB,
          reflector and client Adj-RIB-Outs) — the memory-traffic proxy
          for RIB maintenance cost *)
  mutable routes_damped : int;
      (** eBGP routes suppressed by route-flap damping (RFC 2439 penalty
          crossing the suppress threshold); counted once per suppression
          episode, on the border router applying the damping *)
  mutable hijacks_injected : int;
      (** adversarial routes (forged origin / leaked path) injected at
          this router's peering sessions by a scenario run *)
  mutable takeovers : int;
      (** address partitions whose service this ARR picked up after a
          sibling ARR failure (scenario accounting, attributed to the
          surviving reflector) *)
  mutable prefixes_moved_on_repartition : int;
      (** prefixes whose serving-AP assignment changed across a live
          repartition (scenario accounting, attributed to the router
          driving the drill) *)
  mutable last_change : Eventsim.Time.t;
      (** simulated time of the most recent Loc-RIB change *)
  mutable mem_peak_kb : int;
      (** highest process peak-RSS sample ({!sample_mem}) attributed to
          this counter set, in kB; [0] until sampled. Process-wide, not
          per-router: experiments sample it on one designated counter
          set (exp_scale) at phase boundaries. {!add} takes the max,
          {!diff} reports [after]'s value. *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (last_change and mem_peak_kb
    = max). *)

val copy : t -> t
(** An independent snapshot of the current values. *)

val diff : after:t -> before:t -> t
(** Field-wise [after - before]; [last_change] is taken from [after].
    With [before] a {!copy} made at a phase boundary this yields the
    per-phase counter breakdown. *)

val sample_mem : t -> unit
(** Record the process's current peak resident set (Linux [VmHWM],
    /proc/self/status) into [mem_peak_kb] if it exceeds the stored
    sample. A no-op (sample stays 0) where /proc is unavailable. *)

val to_fields : t -> (string * int) list
(** Stable [(name, value)] view of every counter, in declaration order,
    with [last_change] reported in microseconds under ["last_change_us"]
    — the flat form {!Metrics.Emit} records expect. *)

val pp : Format.formatter -> t -> unit
