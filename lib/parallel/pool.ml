let default_jobs () = Domain.recommended_domain_count ()

(* [spawn] is injectable so the spawn-failure path is testable: the
   regression test passes a spawner that fails on its n-th call and
   checks no earlier domain is leaked. *)
let map_gen ~spawn ?(jobs = 1) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    (* Work-list scheduling: each domain repeatedly claims the next
       unclaimed index. Results land at their item's index, so the merge
       order is the input order no matter which domain ran what. *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get error = None then begin
        (match f arr.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt))));
        worker ()
      end
    in
    (* Spawn under protection: if spawn #k fails, domains 0..k-1 are
       already running — starve them (claim all remaining work) and join
       them before re-raising, so a failing sweep cannot leak domains. *)
    let spawned = ref [] in
    (try
       for _ = 1 to jobs - 1 do
         spawned := spawn worker :: !spawned
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Atomic.set next n;
       List.iter Domain.join !spawned;
       Printexc.raise_with_backtrace e bt);
    worker ();
    List.iter Domain.join !spawned;
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false (* all claimed *))
           results)
  end

let map ?jobs f items = map_gen ~spawn:Domain.spawn ?jobs f items

module For_testing = struct
  let map_with_spawn = map_gen
end
