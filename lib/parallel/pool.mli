(** A flat domain pool for run-level parallelism.

    The benchmark harness fans the independent points of a sweep
    (schemes x knobs x trials) across OCaml 5 domains; every point runs
    its whole simulation inside a single domain, so per-simulation
    determinism is untouched, and results are merged back in input
    order, so any output derived from them is identical to a serial
    run (wall-clock timings aside). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    applications concurrently (on [jobs - 1] spawned domains plus the
    calling one), and returns the results in input order.

    [jobs] defaults to 1 — a plain [List.map], no domain is spawned.
    Items are claimed work-list style, so long points do not hold up the
    queue behind them. If an application raises, the first exception (in
    claim order) is re-raised after all domains have drained; remaining
    unclaimed items are skipped.

    [f] must not assume it runs on the calling domain: anything it
    touches must be domain-safe (the simulator's per-network state and
    per-domain intern tables are; global mutable state is not).

    If spawning the [k]-th domain itself fails, the [k - 1] domains
    already running are drained and joined before the spawn exception
    propagates — a failing sweep never leaks running domains. *)

(**/**)

module For_testing : sig
  val map_with_spawn :
    spawn:((unit -> unit) -> unit Domain.t) ->
    ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
  (** {!map} with an injectable domain spawner, for exercising the
      spawn-failure cleanup path. *)
end

(**/**)
