(* A persistent crew of worker domains driven in lockstep rounds.

   Domain.spawn costs ~100µs; the sharded simulator runs tens of
   thousands of synchronization windows per run, so spawning per window
   would dominate. A team spawns its workers once and reuses them:
   [run t f] broadcasts one round — [f 0] on the calling domain,
   [f (j + 1)] on worker [j] — and returns when every slot has finished.

   Synchronization is a single mutex + condition pair. The round counter
   is monotone; a worker waits until the counter moves past the last
   round it executed (or [stop] is raised), so a missed broadcast can
   never deadlock — the predicate is re-checked after every wakeup. *)

type t = {
  workers : int;  (* spawned domains; slot 0 is the caller *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (int -> unit) option;  (* body of the current round *)
  mutable round : int;  (* monotone round id *)
  mutable done_count : int;  (* workers finished with the current round *)
  mutable errors : (int * exn * Printexc.raw_backtrace) list;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let size t = t.workers + 1

let record_error t slot e bt =
  Mutex.lock t.mutex;
  t.errors <- (slot, e, bt) :: t.errors;
  Mutex.unlock t.mutex

let worker_loop t j =
  let slot = j + 1 in
  let rec loop last_round =
    Mutex.lock t.mutex;
    while (not t.stop) && t.round = last_round do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let r = t.round in
      let f = match t.job with Some f -> f | None -> assert false in
      Mutex.unlock t.mutex;
      (try f slot
       with e -> record_error t slot e (Printexc.get_raw_backtrace ()));
      Mutex.lock t.mutex;
      t.done_count <- t.done_count + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      loop r
    end
  in
  loop 0

let create ~workers =
  if workers < 0 then invalid_arg "Team.create: negative workers";
  let t =
    {
      workers;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      round = 0;
      done_count = 0;
      errors = [];
      stop = false;
      domains = [||];
    }
  in
  (* Protected spawn: if worker #k fails to start, stop and join the
     k - 1 already running before re-raising — no leaked domains. *)
  let spawned = ref [] in
  (try
     for j = 0 to workers - 1 do
       spawned := Domain.spawn (fun () -> worker_loop t j) :: !spawned
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.mutex;
     t.stop <- true;
     Condition.broadcast t.cond;
     Mutex.unlock t.mutex;
     List.iter Domain.join !spawned;
     Printexc.raise_with_backtrace e bt);
  t.domains <- Array.of_list (List.rev !spawned);
  t

let run t f =
  if t.workers = 0 then begin
    if t.stop then invalid_arg "Team.run: team is shut down";
    f 0
  end
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Team.run: team is shut down"
    end;
    t.job <- Some f;
    t.round <- t.round + 1;
    t.done_count <- 0;
    t.errors <- [];
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (try f 0 with e -> record_error t 0 e (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mutex;
    while t.done_count < t.workers do
      Condition.wait t.cond t.mutex
    done;
    let errors = t.errors in
    t.errors <- [];
    t.job <- None;
    Mutex.unlock t.mutex;
    (* Every slot has finished — re-raising now cannot orphan a worker
       mid-round. Lowest slot first, for a deterministic report. *)
    match List.sort (fun (a, _, _) (b, _, _) -> compare a b) errors with
    | [] -> ()
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  end

let shutdown t =
  Mutex.lock t.mutex;
  let first = not t.stop in
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if first then Array.iter Domain.join t.domains
