(** A persistent crew of worker domains driven in lockstep rounds.

    {!Pool.map} spawns domains per call, which is fine for a benchmark
    sweep (a handful of long points) and hopeless for the sharded
    simulator, whose conservative synchronization windows number in the
    tens of thousands per run. A team spawns its [workers] domains once;
    each {!run} is one round executed by all [workers + 1] slots (the
    calling domain is slot 0), and the workers then park on a condition
    variable until the next round or {!shutdown}. *)

type t

val create : workers:int -> t
(** Spawn [workers] parked domains ([workers = 0] is legal — every round
    runs entirely on the caller). If spawning the [k]-th worker fails,
    the [k - 1] already running are shut down and joined before the
    exception propagates.
    @raise Invalid_argument on negative [workers]. *)

val size : t -> int
(** Total slots: [workers + 1]. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes one round: [f 0] on the calling domain and
    [f (j + 1)] on worker [j], concurrently, returning once {e every}
    slot has finished. If any slot raised, the lowest-slot exception is
    re-raised (with its backtrace) after all slots have completed —
    never before, so a failing round cannot leave a worker running into
    torn shared state.
    @raise Invalid_argument if the team has been shut down. *)

val shutdown : t -> unit
(** Wake and join all workers. Idempotent; the team is unusable after. *)
