(* Elements are wrapped with a monotone insertion tick so that cmp ties
   break FIFO: the heap order is (cmp, then tick).  The explorer's
   ready-set enumeration depends on this being stable — two events with
   equal priority must pop in insertion order on every run. *)
type 'a slot = { v : 'a; tick : int }

type 'a t = {
  mutable data : 'a slot array;
  mutable size : int;
  hint : int;  (* requested initial capacity; first push allocates it *)
  cmp : 'a -> 'a -> int;
  mutable next_tick : int;  (* next insertion stamp; reset by [clear] *)
}

let create ?(capacity = 16) ~cmp () =
  (* The backing array is allocated on first push (we have no element to
     fill it with before that), sized to the capacity hint. *)
  { data = [||]; size = 0; hint = max 1 capacity; cmp; next_tick = 0 }

let length h = h.size
let is_empty h = h.size = 0
let capacity h = if Array.length h.data = 0 then h.hint else Array.length h.data

let order h a b =
  let c = h.cmp a.v b.v in
  if c <> 0 then c else compare a.tick b.tick

let grow h x =
  let cap =
    if Array.length h.data = 0 then h.hint else 2 * Array.length h.data
  in
  let data = Array.make cap x in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if order h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  let s = { v = x; tick = h.next_tick } in
  h.next_tick <- h.next_tick + 1;
  if h.size >= Array.length h.data then grow h s;
  h.data.(h.size) <- s;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).v

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && order h h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && order h h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top.v
  end

let pop_exn h =
  match pop h with Some x -> x | None -> invalid_arg "Heap.pop_exn: empty"

let remove h pred =
  let rec find i =
    if i >= h.size then None
    else if pred h.data.(i).v then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let hit = h.data.(i) in
      h.size <- h.size - 1;
      if i < h.size then begin
        h.data.(i) <- h.data.(h.size);
        (* The replacement came from a leaf: it may belong either deeper
           (other subtree) or shallower than the hole, so restore both
           directions — one of the two is a no-op. *)
        sift_down h i;
        sift_up h i
      end;
      Some hit.v

let clear h =
  h.size <- 0;
  h.next_tick <- 0

let of_list ~cmp l =
  let h = create ~cmp () in
  List.iter (push h) l;
  h

let to_sorted_list h =
  let rec go acc = match pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let elements h = List.init h.size (fun i -> h.data.(i).v)

let map_inplace h f =
  for i = 0 to h.size - 1 do
    let s = h.data.(i) in
    h.data.(i) <- { s with v = f s.v }
  done
