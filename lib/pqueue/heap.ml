type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  hint : int;  (* requested initial capacity; first push allocates it *)
  cmp : 'a -> 'a -> int;
}

let create ?(capacity = 16) ~cmp () =
  (* The backing array is allocated on first push (we have no element to
     fill it with before that), sized to the capacity hint. *)
  { data = [||]; size = 0; hint = max 1 capacity; cmp }

let length h = h.size
let is_empty h = h.size = 0
let capacity h = if h.data = [||] then h.hint else Array.length h.data

let grow h x =
  let cap =
    if Array.length h.data = 0 then h.hint else 2 * Array.length h.data
  in
  let data = Array.make cap x in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  if h.size >= Array.length h.data then grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with Some x -> x | None -> invalid_arg "Heap.pop_exn: empty"

let clear h = h.size <- 0

let of_list ~cmp l =
  let h = create ~cmp () in
  List.iter (push h) l;
  h

let to_sorted_list h =
  let rec go acc = match pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let elements h = List.init h.size (fun i -> h.data.(i))
