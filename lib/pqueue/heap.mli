(** Mutable array-backed binary min-heap. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [capacity] (default 16, clamped to >= 1) sizes the backing array's
    first allocation, which happens on the first {!push}; afterwards the
    array doubles as needed. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array capacity (the hint before the first push). *)

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
(** Drains the heap. *)

val elements : 'a t -> 'a list
(** All elements in unspecified (heap-internal) order, without draining
    — the checkpoint codec sorts them itself. O(n). *)
