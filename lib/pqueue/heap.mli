(** Mutable array-backed binary min-heap, {e stable} on ties: elements
    that compare equal under [cmp] pop in insertion (FIFO) order.
    Stability is implemented with an internal monotone insertion stamp,
    so it survives growth, interleaved pushes/pops and {!remove}; it
    resets at {!clear}.  The schedule explorer relies on this for a
    canonical ready-set enumeration. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [capacity] (default 16, clamped to >= 1) sizes the backing array's
    first allocation, which happens on the first {!push}; afterwards the
    array doubles as needed. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array capacity (the hint before the first push). *)

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first element (in unspecified internal order)
    satisfying the predicate, restoring the heap property; [None] if no
    element matches. O(n) scan + O(log n) repair. Remaining equal-[cmp]
    elements keep their relative FIFO order. *)

val clear : 'a t -> unit
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
(** Drains the heap. *)

val elements : 'a t -> 'a list
(** All elements in unspecified (heap-internal) order, without draining
    — the checkpoint codec sorts them itself. O(n). *)

val map_inplace : 'a t -> ('a -> 'a) -> unit
(** Rewrite every element in place {e without} re-establishing the heap
    property: [f] MUST be order-preserving under [cmp] over the current
    element set ([cmp x y] = [cmp (f x) (f y)] for any two stored
    elements), or the heap invariant is silently broken. Insertion
    stamps are kept, so FIFO tie order survives. O(n). The sharded
    scheduler uses this to rewrite provisional event sequence numbers
    to their merged global values at a synchronization barrier. *)
