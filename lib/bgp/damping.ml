module Time = Eventsim.Time

type event = Withdrawal | Attr_change

type params = {
  penalty_withdraw : float;
  penalty_attr : float;
  suppress_threshold : float;
  reuse_threshold : float;
  half_life : Time.t;
  max_suppress : Time.t;
}

let make ?(penalty_withdraw = 1000.) ?(penalty_attr = 500.)
    ?(suppress_threshold = 2000.) ?(reuse_threshold = 750.)
    ?(half_life = Time.minutes 15) ?(max_suppress = Time.minutes 60) () =
  let pos name v =
    if v <= 0. then invalid_arg ("Damping.make: " ^ name ^ " must be positive")
  in
  pos "penalty_withdraw" penalty_withdraw;
  pos "penalty_attr" penalty_attr;
  pos "suppress_threshold" suppress_threshold;
  pos "reuse_threshold" reuse_threshold;
  if reuse_threshold >= suppress_threshold then
    invalid_arg "Damping.make: reuse_threshold must be below suppress_threshold";
  if half_life <= Time.zero || max_suppress <= Time.zero then
    invalid_arg "Damping.make: half_life and max_suppress must be positive";
  {
    penalty_withdraw;
    penalty_attr;
    suppress_threshold;
    reuse_threshold;
    half_life;
    max_suppress;
  }

let default = make ()

let half_lives p dt = float_of_int dt /. float_of_int p.half_life

let ceiling p = p.reuse_threshold *. (2. ** half_lives p p.max_suppress)

let decay p ~penalty ~dt =
  if dt <= Time.zero then penalty else penalty *. (2. ** -.half_lives p dt)

let penalize p ~penalty ~dt ev =
  let inc =
    match ev with
    | Withdrawal -> p.penalty_withdraw
    | Attr_change -> p.penalty_attr
  in
  Float.min (decay p ~penalty ~dt +. inc) (ceiling p)

let suppresses p penalty = penalty > p.suppress_threshold
let reusable p penalty = penalty < p.reuse_threshold

let reuse_delay p ~penalty =
  if reusable p penalty then Time.zero
  else begin
    let ratio = penalty /. p.reuse_threshold in
    let dt =
      int_of_float (Float.ceil (float_of_int p.half_life *. Float.log2 ratio))
    in
    Int.max Time.zero (Int.min dt p.max_suppress)
  end
