(** A route: a destination prefix plus the path attributes carried in a
    BGP UPDATE, together with an add-paths Path Identifier. *)

open Netaddr

type t = {
  prefix : Prefix.t;
  path_id : int;  (** add-paths Path Identifier; 0 when add-paths is off *)
  origin : Origin.t;
  as_path : As_path.t;
  next_hop : Ipv4.t;  (** with next-hop-self, the injecting border router *)
  med : int option;
  local_pref : int;  (** assigned at ingress, carried across iBGP *)
  originator_id : Ipv4.t option;  (** RFC 4456 loop prevention *)
  cluster_list : Ipv4.t list;  (** RFC 4456 loop prevention *)
  communities : Community.t list;
  ext_communities : Ext_community.t list;
}

val make :
  ?path_id:int ->
  ?origin:Origin.t ->
  ?as_path:As_path.t ->
  ?med:int option ->
  ?local_pref:int ->
  ?originator_id:Ipv4.t option ->
  ?cluster_list:Ipv4.t list ->
  ?communities:Community.t list ->
  ?ext_communities:Ext_community.t list ->
  prefix:Prefix.t ->
  next_hop:Ipv4.t ->
  unit ->
  t
(** Defaults: path_id 0, origin Igp, empty AS path, no MED, local_pref
    100, no reflection attributes, no communities. *)

val default_local_pref : int

val with_path_id : int -> t -> t
val with_prefix : Prefix.t -> t -> t

val mark_reflected : t -> t
(** Add the ABRR {!Ext_community.reflected} marker (idempotent). *)

val is_reflected : t -> bool

val add_cluster : Ipv4.t -> t -> t
(** Prepend a cluster ID to the CLUSTER_LIST. *)

val in_cluster_list : Ipv4.t -> t -> bool

val neighbor_as : t -> Asn.t option
(** The AS the route was learned from (leftmost AS of the path); [None]
    for locally-originated routes. Used for per-neighbour-AS MED
    comparison. *)

val same_path : t -> t -> bool
(** Attribute equality ignoring [path_id]: do two advertisements describe
    the same path? *)

val compare_attrs : t -> t -> int
(** Total order on attributes ignoring [path_id] — the decision
    kernel's final tie-break, so a post-step-8 tie cannot depend on the
    receiver's path-id allocation order. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
