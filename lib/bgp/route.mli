(** Routes with hash-consed attribute blocks.

    A route value is a small {e head} — destination prefix, add-paths
    Path Identifier, and a pointer to an interned {e attribute block}
    holding every path attribute from the BGP UPDATE. Blocks are
    hash-consed per domain: structurally equal attribute sets share one
    physical record, so the same block is referenced from every
    Adj-RIB-In, Loc-RIB and Adj-RIB-Out that carries the route,
    across all routers of a simulation. Storing a route in another
    table therefore costs one head (4 words) plus the table slot,
    never a second copy of the attributes; attribute equality is
    usually a pointer comparison. SCALING.md gives the resulting
    bytes/route accounting at paper scale. *)

open Netaddr

type attrs = private {
  origin : Origin.t;
  as_path : As_path.t;
  next_hop : Ipv4.t;  (** with next-hop-self, the injecting border router *)
  med : int option;
  local_pref : int;  (** assigned at ingress, carried across iBGP *)
  originator_id : Ipv4.t option;  (** RFC 4456 loop prevention *)
  cluster_list : Ipv4.t list;  (** RFC 4456 loop prevention *)
  communities : Community.t list;
  ext_communities : Ext_community.t list;
  ahash : int;  (** precomputed structural hash; not part of the value *)
}
(** An interned path-attribute block. The type is private: every block
    in circulation went through the intern table, so within a domain
    structural equality coincides with physical equality. Construct
    with {!make_attrs} or, more commonly, via {!make} / {!update}. *)

type t = {
  prefix : Prefix.t;
  path_id : int;  (** add-paths Path Identifier; 0 when add-paths is off *)
  attrs : attrs;
}
(** A route head. Heads are plain records — cheap to copy, never
    interned; all sharing lives in [attrs]. *)

val make :
  ?path_id:int ->
  ?origin:Origin.t ->
  ?as_path:As_path.t ->
  ?med:int option ->
  ?local_pref:int ->
  ?originator_id:Ipv4.t option ->
  ?cluster_list:Ipv4.t list ->
  ?communities:Community.t list ->
  ?ext_communities:Ext_community.t list ->
  prefix:Prefix.t ->
  next_hop:Ipv4.t ->
  unit ->
  t
(** Build a route, interning its attribute block. Defaults: path_id 0,
    origin Igp, empty AS path, no MED, local_pref 100, no reflection
    attributes, no communities. *)

val make_attrs :
  ?origin:Origin.t ->
  ?as_path:As_path.t ->
  ?med:int option ->
  ?local_pref:int ->
  ?originator_id:Ipv4.t option ->
  ?cluster_list:Ipv4.t list ->
  ?communities:Community.t list ->
  ?ext_communities:Ext_community.t list ->
  next_hop:Ipv4.t ->
  unit ->
  attrs
(** Intern an attribute block directly (same defaults as {!make}). *)

val of_attrs : ?path_id:int -> prefix:Prefix.t -> attrs -> t
(** Attach a head to an already-interned block — the zero-copy path
    used by decoders and the snapshot codec. *)

val attrs : t -> attrs

val update :
  ?path_id:int ->
  ?origin:Origin.t ->
  ?as_path:As_path.t ->
  ?next_hop:Ipv4.t ->
  ?med:int option ->
  ?local_pref:int ->
  ?originator_id:Ipv4.t option ->
  ?cluster_list:Ipv4.t list ->
  ?ext_communities:Ext_community.t list ->
  t ->
  t
(** Functional update of any subset of attributes with a single
    re-intern — the replacement for [{ r with ... }] on the old flat
    record. Omitted fields keep their current value. *)

(** {1 Field accessors} *)

val origin : t -> Origin.t
val as_path : t -> As_path.t
val next_hop : t -> Ipv4.t
val med : t -> int option
val local_pref : t -> int
val originator_id : t -> Ipv4.t option
val cluster_list : t -> Ipv4.t list
val communities : t -> Community.t list
val ext_communities : t -> Ext_community.t list

val default_local_pref : int

val with_path_id : int -> t -> t
val with_prefix : Prefix.t -> t -> t

val mark_reflected : t -> t
(** Add the ABRR {!Ext_community.reflected} marker (idempotent). *)

val is_reflected : t -> bool

val add_cluster : Ipv4.t -> t -> t
(** Prepend a cluster ID to the CLUSTER_LIST. *)

val in_cluster_list : Ipv4.t -> t -> bool

val neighbor_as : t -> Asn.t option
(** The AS the route was learned from (leftmost AS of the path); [None]
    for locally-originated routes. Used for per-neighbour-AS MED
    comparison. *)

val same_path : t -> t -> bool
(** Attribute equality ignoring [path_id]: do two advertisements describe
    the same path? *)

val compare_attrs : t -> t -> int
(** Total order on prefix + attributes ignoring [path_id] — the decision
    kernel's final tie-break, so a post-step-8 tie cannot depend on the
    receiver's path-id allocation order. Field order is fixed; changing
    it would change simulation outcomes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Attribute-block identity} *)

val attrs_equal : attrs -> attrs -> bool
(** Pointer comparison with a structural fallback (the fallback only
    fires across domains, where blocks live in different intern
    tables). *)

val attrs_compare : attrs -> attrs -> int
(** Same order as the attribute part of {!compare_attrs}. *)

val attrs_hash : attrs -> int
(** The precomputed structural hash ([ahash]). *)

val interned_attrs : unit -> int
(** Number of live attribute blocks in this domain's intern table —
    the sharing statistic reported by [exp_scale]. *)
