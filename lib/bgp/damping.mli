(** Route-flap damping arithmetic (RFC 2439 style).

    Pure penalty bookkeeping: a figure of merit per (prefix, eBGP
    session) that grows on instability and decays exponentially with
    configured half-life. Crossing [suppress_threshold] suppresses the
    route; it becomes usable again once decay brings the penalty back
    under [reuse_threshold]. This module owns only the arithmetic —
    the per-route state machine (held routes, reinstatement passes)
    lives in the router ({!section-"core"} [Router]), and damping is
    {e off by default} ([Config.make ~damping]).

    Penalties are plain floats; elapsed time is simulated
    {!Eventsim.Time.t}. All functions are total on valid {!params}
    (see {!make}). *)

type event =
  | Withdrawal  (** the peer withdrew the route *)
  | Attr_change  (** the peer re-announced with different attributes *)

type params = {
  penalty_withdraw : float;  (** penalty added per {!Withdrawal} *)
  penalty_attr : float;  (** penalty added per {!Attr_change} *)
  suppress_threshold : float;
      (** penalty above which the route is suppressed *)
  reuse_threshold : float;
      (** decayed penalty below which a suppressed route is reusable *)
  half_life : Eventsim.Time.t;  (** exponential-decay half-life *)
  max_suppress : Eventsim.Time.t;
      (** longest a route may stay suppressed; also caps the penalty at
          {!ceiling} so decay can always honour it *)
}

val make :
  ?penalty_withdraw:float ->
  ?penalty_attr:float ->
  ?suppress_threshold:float ->
  ?reuse_threshold:float ->
  ?half_life:Eventsim.Time.t ->
  ?max_suppress:Eventsim.Time.t ->
  unit ->
  params
(** Defaults are the RFC 2439 examples: withdrawal penalty 1000,
    attribute-change penalty 500, suppress at 2000, reuse at 750,
    half-life 15 min, max suppress 60 min.
    @raise Invalid_argument if any penalty or threshold is non-positive,
    [reuse_threshold >= suppress_threshold], or a time is non-positive. *)

val default : params
(** [make ()]. *)

val ceiling : params -> float
(** The penalty cap [reuse_threshold * 2^(max_suppress / half_life)]:
    any penalty at or below it decays below [reuse_threshold] within
    [max_suppress]. *)

val decay : params -> penalty:float -> dt:Eventsim.Time.t -> float
(** The penalty after [dt] of quiet: [penalty * 2^(-dt / half_life)].
    Negative [dt] is treated as zero (no retroactive growth). *)

val penalize :
  params -> penalty:float -> dt:Eventsim.Time.t -> event -> float
(** Decay the stored penalty by [dt], add the event's increment, clamp
    to {!ceiling}. *)

val suppresses : params -> float -> bool
(** Whether a (fresh) penalty is above the suppress threshold. *)

val reusable : params -> float -> bool
(** Whether a (decayed) penalty has fallen below the reuse threshold. *)

val reuse_delay : params -> penalty:float -> Eventsim.Time.t
(** Time until [decay] brings [penalty] under [reuse_threshold]:
    [half_life * log2 (penalty / reuse_threshold)], rounded up to the
    next microsecond and clamped to [\[0, max_suppress\]]. Zero when the
    penalty is already reusable. *)
