open Netaddr

(* Mutable path-compressed binary trie, specialised to route lists.
   Invariants (as in [Netaddr.Prefix_trie]):
   - each node's children are strictly more specific than its prefix and
     fall in its address range (left: next bit 0, right: next bit 1);
   - a node with [routes = []] is a pure junction and has two non-[nil]
     children (otherwise it is compressed away).
   [nil] is a physically-unique sentinel — never mutated, compared with
   [==].  A populated node costs 5 words regardless of table size, and
   the structure supports longest-prefix match directly, which is what
   lets the router drop its separate FIB. *)

type node = {
  pfx : Prefix.t;
  mutable routes : Route.t list;  (* insertion order of path ids *)
  mutable l : node;
  mutable r : node;
}

let rec nil = { pfx = Prefix.default; routes = []; l = nil; r = nil }

type t = {
  mutable root : node;
  mutable entries : int;
  mutable prefs : int;
  mutable changed : bool;  (* scratch: result cell for upsert/drop *)
}

let create ?size_hint:_ () = { root = nil; entries = 0; prefs = 0; changed = false }
let newnode pfx routes = { pfx; routes; l = nil; r = nil }

(* Direction of [q] below [pfx]: false = left (bit 0), true = right. *)
let dir pfx q = Prefix.bit q (Prefix.len pfx)

(* Longest common prefix of two prefixes. *)
let common_prefix p q =
  let x = Ipv4.to_int (Prefix.addr p) lxor Ipv4.to_int (Prefix.addr q) in
  let rec first_diff i =
    if i >= 32 then 32
    else if (x lsr (31 - i)) land 1 = 1 then i
    else first_diff (i + 1)
  in
  let l = min (min (Prefix.len p) (Prefix.len q)) (first_diff 0) in
  Prefix.make (Prefix.addr p) l

(* Join two nodes with disjoint prefixes under a fresh junction. *)
let join p np q nq =
  let j = newnode (common_prefix p q) [] in
  if dir j.pfx p then (
    j.l <- nq;
    j.r <- np)
  else (
    j.l <- np;
    j.r <- nq);
  j

(* A junction that lost a child is spliced out. Only called on nodes
   with [routes = []]. *)
let compress n = if n.l == nil then n.r else if n.r == nil then n.l else n

let rec find_node n pfx =
  if n == nil then nil
  else if Prefix.equal pfx n.pfx then n
  else if Prefix.subsumes n.pfx pfx && Prefix.len n.pfx < 32 then
    find_node (if dir n.pfx pfx then n.r else n.l) pfx
  else nil

let get t prefix = (find_node t.root prefix).routes
let mem t prefix = (find_node t.root prefix).routes <> []

(* Splice a fresh node for [pfx] into a tree rooted at [n] when [pfx]
   is not on [n]'s spine: either above [n] or joined beside it. *)
let splice nn n =
  if Prefix.subsumes nn.pfx n.pfx then (
    if dir nn.pfx n.pfx then nn.r <- n else nn.l <- n;
    nn)
  else join nn.pfx nn n.pfx n

let rec set_node t n pfx routes =
  if n == nil then
    match routes with
    | [] -> nil
    | _ ->
      t.entries <- t.entries + List.length routes;
      t.prefs <- t.prefs + 1;
      newnode pfx routes
  else if Prefix.equal pfx n.pfx then (
    let oldn = List.length n.routes and newn = List.length routes in
    t.entries <- t.entries - oldn + newn;
    if oldn = 0 && newn > 0 then t.prefs <- t.prefs + 1
    else if oldn > 0 && newn = 0 then t.prefs <- t.prefs - 1;
    n.routes <- routes;
    if routes = [] then compress n else n)
  else if Prefix.subsumes n.pfx pfx && Prefix.len n.pfx < 32 then (
    if dir n.pfx pfx then n.r <- set_node t n.r pfx routes
    else n.l <- set_node t n.l pfx routes;
    if n.routes = [] then compress n else n)
  else if routes = [] then n
  else (
    t.entries <- t.entries + List.length routes;
    t.prefs <- t.prefs + 1;
    splice (newnode pfx routes) n)

let set t prefix routes = t.root <- set_node t t.root prefix routes

(* Single pass: replace the entry with [route]'s path id in place
   (preserving position), or append when absent. [`Unchanged] when the
   stored route is already equal. Lists are short (add-paths fan-in per
   prefix), so the non-tail recursion is fine. *)
let rec upsert_list (route : Route.t) = function
  | [] -> `Added [ route ]
  | (r : Route.t) :: tl ->
    if r.Route.path_id = route.Route.path_id then
      if Route.equal r route then `Unchanged else `Replaced (route :: tl)
    else (
      match upsert_list route tl with
      | `Unchanged -> `Unchanged
      | `Added tl' -> `Added (r :: tl')
      | `Replaced tl' -> `Replaced (r :: tl'))

let rec upsert_node t n (route : Route.t) =
  let pfx = route.Route.prefix in
  if n == nil then (
    t.changed <- true;
    t.entries <- t.entries + 1;
    t.prefs <- t.prefs + 1;
    newnode pfx [ route ])
  else if Prefix.equal pfx n.pfx then (
    (match upsert_list route n.routes with
    | `Unchanged -> t.changed <- false
    | `Replaced rs ->
      t.changed <- true;
      n.routes <- rs
    | `Added rs ->
      t.changed <- true;
      if n.routes = [] then t.prefs <- t.prefs + 1;
      t.entries <- t.entries + 1;
      n.routes <- rs);
    n)
  else if Prefix.subsumes n.pfx pfx && Prefix.len n.pfx < 32 then (
    if dir n.pfx pfx then n.r <- upsert_node t n.r route
    else n.l <- upsert_node t n.l route;
    n)
  else (
    t.changed <- true;
    t.entries <- t.entries + 1;
    t.prefs <- t.prefs + 1;
    splice (newnode pfx [ route ]) n)

let upsert t route =
  t.root <- upsert_node t t.root route;
  t.changed

(* Single pass: [None] when no route carries [path_id], otherwise the
   list without the (unique per prefix) matching route. *)
let rec remove_path path_id = function
  | [] -> None
  | (r : Route.t) :: tl ->
    if r.Route.path_id = path_id then Some tl
    else Option.map (fun tl' -> r :: tl') (remove_path path_id tl)

let rec drop_node t n pfx path_id =
  if n == nil then nil
  else if Prefix.equal pfx n.pfx then (
    match remove_path path_id n.routes with
    | None -> n
    | Some rest ->
      t.changed <- true;
      t.entries <- t.entries - 1;
      n.routes <- rest;
      if rest = [] then (
        t.prefs <- t.prefs - 1;
        compress n)
      else n)
  else if Prefix.subsumes n.pfx pfx && Prefix.len n.pfx < 32 then (
    if dir n.pfx pfx then n.r <- drop_node t n.r pfx path_id
    else n.l <- drop_node t n.l pfx path_id;
    if n.routes = [] then compress n else n)
  else n

let drop t prefix ~path_id =
  t.changed <- false;
  t.root <- drop_node t t.root prefix path_id;
  t.changed

let clear_prefix t prefix =
  match List.length (get t prefix) with
  | 0 -> 0
  | n ->
    set t prefix [];
    n

let clear t =
  t.root <- nil;
  t.entries <- 0;
  t.prefs <- 0

let entry_count t = t.entries
let prefix_count t = t.prefs

let rec fold_node f n acc =
  if n == nil then acc
  else
    let acc = if n.routes = [] then acc else f n.pfx n.routes acc in
    fold_node f n.r (fold_node f n.l acc)

let fold f t acc = fold_node f t.root acc
let iter f t = fold (fun p rs () -> f p rs) t ()
let prefixes t = List.rev (fold (fun p _ acc -> p :: acc) t [])

let rec lm_node n a best =
  if n == nil then best
  else if not (Prefix.mem a n.pfx) then best
  else
    let best = if n.routes = [] then best else Some (n.pfx, n.routes) in
    if Prefix.len n.pfx >= 32 then best
    else lm_node (if Ipv4.bit a (Prefix.len n.pfx) then n.r else n.l) a best

let longest_match t addr = lm_node t.root addr None

(* ------------------------------------------------------------------ *)
(* Per-prefix dirty tracking for batched incremental processing.       *)

module Dirty = struct
  type 'a t = (int, Prefix.t * 'a) Hashtbl.t

  let create ?(size = 32) () : 'a t = Hashtbl.create size

  let mark t p fresh =
    let k = Prefix.to_key p in
    match Hashtbl.find_opt t k with
    | Some (_, v) -> v
    | None ->
      let v = fresh () in
      Hashtbl.add t k (p, v);
      v

  let find t p = Option.map snd (Hashtbl.find_opt t (Prefix.to_key p))
  let is_empty t = Hashtbl.length t = 0
  let count t = Hashtbl.length t

  let drain t =
    let xs = Hashtbl.fold (fun _ pv acc -> pv :: acc) t [] in
    Hashtbl.reset t;
    List.sort (fun (a, _) (b, _) -> Prefix.compare a b) xs
end
