open Netaddr

type t = { table : (int, Route.t list) Hashtbl.t; mutable entries : int }

let create ?(size_hint = 256) () = { table = Hashtbl.create size_hint; entries = 0 }

let get t prefix =
  match Hashtbl.find_opt t.table (Prefix.to_key prefix) with
  | None -> []
  | Some routes -> routes

let set t prefix routes =
  let key = Prefix.to_key prefix in
  let old =
    match Hashtbl.find_opt t.table key with
    | None -> 0
    | Some rs -> List.length rs
  in
  (match routes with
  | [] -> Hashtbl.remove t.table key
  | _ -> Hashtbl.replace t.table key routes);
  t.entries <- t.entries - old + List.length routes

(* Single pass: replace the entry with [route]'s path id in place
   (preserving position), or append when absent. [`Unchanged] when the
   stored route is already equal. Lists are short (add-paths fan-in per
   prefix), so the non-tail recursion is fine. *)
let rec upsert_list (route : Route.t) = function
  | [] -> `Added [ route ]
  | (r : Route.t) :: tl ->
    if r.Route.path_id = route.Route.path_id then
      if Route.equal r route then `Unchanged else `Replaced (route :: tl)
    else (
      match upsert_list route tl with
      | `Unchanged -> `Unchanged
      | `Added tl' -> `Added (r :: tl')
      | `Replaced tl' -> `Replaced (r :: tl'))

let upsert t (route : Route.t) =
  let key = Prefix.to_key route.Route.prefix in
  let old = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
  match upsert_list route old with
  | `Unchanged -> false
  | `Replaced routes ->
    Hashtbl.replace t.table key routes;
    true
  | `Added routes ->
    Hashtbl.replace t.table key routes;
    t.entries <- t.entries + 1;
    true

(* Single pass: [None] when no route carries [path_id], otherwise the
   list without the (unique per prefix) matching route. *)
let rec remove_path path_id = function
  | [] -> None
  | (r : Route.t) :: tl ->
    if r.Route.path_id = path_id then Some tl
    else Option.map (fun tl' -> r :: tl') (remove_path path_id tl)

let drop t prefix ~path_id =
  let key = Prefix.to_key prefix in
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some old -> (
    match remove_path path_id old with
    | None -> false
    | Some [] ->
      Hashtbl.remove t.table key;
      t.entries <- t.entries - 1;
      true
    | Some rest ->
      Hashtbl.replace t.table key rest;
      t.entries <- t.entries - 1;
      true)

let clear_prefix t prefix =
  let key = Prefix.to_key prefix in
  match Hashtbl.find_opt t.table key with
  | None -> 0
  | Some old ->
    let n = List.length old in
    Hashtbl.remove t.table key;
    t.entries <- t.entries - n;
    n

let clear t =
  Hashtbl.reset t.table;
  t.entries <- 0

let entry_count t = t.entries
let prefix_count t = Hashtbl.length t.table
let mem t prefix = Hashtbl.mem t.table (Prefix.to_key prefix)

let fold f t acc =
  Hashtbl.fold (fun key routes acc -> f (Prefix.of_key key) routes acc) t.table acc

let iter f t = Hashtbl.iter (fun key routes -> f (Prefix.of_key key) routes) t.table
let prefixes t = fold (fun p _ acc -> p :: acc) t []
