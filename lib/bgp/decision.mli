(** RFC 4271 §9.1.2.2 best-path selection (Table 2 of the paper), plus the
    "best AS-level routes" selection (steps 1–4 only) used by ABRR route
    reflectors. *)

open Netaddr

type learned =
  | Ebgp
  | Confed_ebgp  (** learned over a confed-eBGP session (RFC 5065) *)
  | Ibgp
  | Local

type candidate = {
  route : Route.t;
  learned : learned;  (** how the deciding router learned the route *)
  peer_id : Ipv4.t;  (** BGP identifier of the advertising peer *)
  peer_addr : Ipv4.t;  (** address of the peering session *)
  igp_cost : int;  (** IGP metric to the route's NEXT_HOP *)
}

val candidate :
  ?learned:learned ->
  ?peer_id:Ipv4.t ->
  ?peer_addr:Ipv4.t ->
  ?igp_cost:int ->
  Route.t ->
  candidate
(** Defaults: [Local], peer fields 0.0.0.0, cost 0. *)

type med_mode =
  | Always_compare
      (** MED compared across all routes ("always-compare-med"); removes
          the non-determinism that causes MED oscillations. *)
  | Per_neighbor_as
      (** RFC 4271 semantics: MED is only comparable among routes learned
          from the same neighbouring AS. *)

val steps_1_to_4 : med_mode:med_mode -> candidate list -> candidate list
(** Survivors of Local-Pref / AS-path length / Origin / MED — the paper's
    {e best AS-level routes}. Order of the input is preserved.

    Implemented as an allocation-lean kernel: a reusable per-domain
    scratch array is min-filtered in place instead of chaining
    [List.filter]s. Survivors are the input's candidate values
    (physical identity preserved). *)

val best : med_mode:med_mode -> candidate list -> candidate option
(** Full 8-step decision. Deterministic: ties after step 8 are broken by
    [Route.compare]. [None] on an empty input. Same scratch-array kernel
    as {!steps_1_to_4}; agrees with {!Naive.best} on every input. *)

(** The original chained-[List.filter] implementation, retained as the
    differential-testing oracle for the kernel. Semantics (including
    non-transitive per-neighbour-AS MED and tie-breaks) are identical;
    only the evaluation strategy differs. *)
module Naive : sig
  val steps_1_to_4 : med_mode:med_mode -> candidate list -> candidate list
  val best : med_mode:med_mode -> candidate list -> candidate option
end

val intrinsic_loses :
  med_mode:med_mode -> incumbent:Route.t -> Route.t -> bool
(** [intrinsic_loses ~med_mode ~incumbent r]: does [r] strictly lose to
    [incumbent] on the route-intrinsic prefix of the decision process —
    local preference, AS-path length, origin rank, and MED where MED is
    sound to consult ([Always_compare] always; [Per_neighbor_as] only
    when both routes come from the incumbent's neighbour AS)?

    When [incumbent] is the head of a RIB computed by
    {!steps_1_to_4}/{!best} over some candidate set, a [true] result
    certifies that adding [r] to — or removing [r] from — that set
    changes neither the winner nor the step-1-4 survivor set: [r] is
    eliminated before any candidate-dependent step (5-8) can see it,
    and its elimination does not alter any per-group MED minimum. This
    is the fast-reject primitive of the incremental decision path
    (DESIGN.md, "Incremental decision"); candidate-dependent steps are
    deliberately never consulted here. [false] means nothing — the
    caller must fall back to a full pass. *)

val rank : med_mode:med_mode -> candidate list -> candidate list
(** All candidates sorted from best to worst under the full process
    (used for multi-path RIBs and diagnostics). *)

val tie_break_step : med_mode:med_mode -> candidate list -> int
(** Which decision step (1-8) discriminated the winner, or 0 when only a
    single candidate was supplied. Diagnostic aid. *)

val describe_step : int -> string

val med : Route.t -> int
(** Missing-MED semantics used throughout: absent MED is treated as 0
    (best), matching the paper's Cisco-derived setting. *)
