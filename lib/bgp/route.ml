open Netaddr

(* Path attributes are hash-consed into immutable {e attribute blocks}:
   within a domain, structurally equal attribute sets share one physical
   record, so the same block sits in every Adj-RIB-In / Loc-RIB /
   Adj-RIB-Out that stores a route carrying it (across all routers of a
   simulation — they share the domain's heap).  A route value is then a
   small three-field {e head} (prefix, add-paths id, block pointer):
   storing a route in another table costs the head and the table slot,
   never a second copy of the attributes.  See SCALING.md for the
   bytes/route accounting this enables. *)

type attrs = {
  origin : Origin.t;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int;
  originator_id : Ipv4.t option;
  cluster_list : Ipv4.t list;
  communities : Community.t list;
  ext_communities : Ext_community.t list;
  ahash : int;  (* structural hash over every field above *)
}

type t = { prefix : Prefix.t; path_id : int; attrs : attrs }

let default_local_pref = 100

(* ------------------------------------------------------------------ *)
(* Attribute-block interning                                           *)

let hash_opt h = function None -> h * 31 | Some v -> (h * 31) + 1 + v

let hash_ipv4_list h l =
  List.fold_left (fun h ip -> (h * 31) + Ipv4.hash ip) h l

let compute_ahash a =
  let h = Origin.rank a.origin in
  let h = (h * 31) + As_path.hash a.as_path in
  let h = (h * 31) + Ipv4.hash a.next_hop in
  let h = hash_opt h a.med in
  let h = (h * 31) + a.local_pref in
  let h = hash_opt h (Option.map Ipv4.to_int a.originator_id) in
  let h = hash_ipv4_list h a.cluster_list in
  let h =
    List.fold_left (fun h c -> (h * 31) + Community.to_int c) h a.communities
  in
  let h =
    List.fold_left
      (fun h (e : Ext_community.t) ->
        (h * 31) + (e.Ext_community.typ lsl 16) + (e.Ext_community.subtyp lsl 8)
        + e.Ext_community.value)
      h a.ext_communities
  in
  h land max_int

let attrs_structural_equal a b =
  Origin.equal a.origin b.origin
  && As_path.equal a.as_path b.as_path
  && Ipv4.equal a.next_hop b.next_hop
  && Option.equal Int.equal a.med b.med
  && Int.equal a.local_pref b.local_pref
  && Option.equal Ipv4.equal a.originator_id b.originator_id
  && List.equal Ipv4.equal a.cluster_list b.cluster_list
  && List.equal Community.equal a.communities b.communities
  && List.equal Ext_community.equal a.ext_communities b.ext_communities

module Atbl = Weak.Make (struct
  type t = attrs

  let equal a b = a.ahash = b.ahash && attrs_structural_equal a b
  let hash a = a.ahash
end)

(* One intern table per domain (the {!As_path} arrangement): simulations
   are single-domain so no locking is needed, and the weak table lets
   the GC reclaim blocks no RIB references anymore.  Cross-domain
   comparisons fall back to the structural path in {!attrs_equal}. *)
let table = Domain.DLS.new_key (fun () -> Atbl.create 4096)

let intern a = Atbl.merge (Domain.DLS.get table) { a with ahash = compute_ahash a }

let make_attrs ?(origin = Origin.Igp) ?(as_path = As_path.empty) ?(med = None)
    ?(local_pref = default_local_pref) ?(originator_id = None)
    ?(cluster_list = []) ?(communities = []) ?(ext_communities = []) ~next_hop
    () =
  intern
    {
      origin;
      as_path;
      next_hop;
      med;
      local_pref;
      originator_id;
      cluster_list;
      communities;
      ext_communities;
      ahash = 0;
    }

let attrs_equal a b = a == b || (a.ahash = b.ahash && attrs_structural_equal a b)
let attrs_hash a = a.ahash
let interned_attrs () = Atbl.count (Domain.DLS.get table)

(* ------------------------------------------------------------------ *)
(* Heads                                                               *)

let make ?(path_id = 0) ?origin ?as_path ?med ?local_pref ?originator_id
    ?cluster_list ?communities ?ext_communities ~prefix ~next_hop () =
  {
    prefix;
    path_id;
    attrs =
      make_attrs ?origin ?as_path ?med ?local_pref ?originator_id
        ?cluster_list ?communities ?ext_communities ~next_hop ();
  }

let of_attrs ?(path_id = 0) ~prefix attrs = { prefix; path_id; attrs }
let attrs t = t.attrs

let origin t = t.attrs.origin
let as_path t = t.attrs.as_path
let next_hop t = t.attrs.next_hop
let med t = t.attrs.med
let local_pref t = t.attrs.local_pref
let originator_id t = t.attrs.originator_id
let cluster_list t = t.attrs.cluster_list
let communities t = t.attrs.communities
let ext_communities t = t.attrs.ext_communities

let with_path_id path_id t = if t.path_id = path_id then t else { t with path_id }
let with_prefix prefix t = { t with prefix }

(* One functional update = one re-intern, however many fields change. *)
let update ?path_id ?origin ?as_path ?next_hop ?med ?local_pref ?originator_id
    ?cluster_list ?ext_communities t =
  let a = t.attrs in
  let field v = function None -> v | Some v' -> v' in
  let attrs =
    intern
      {
        a with
        origin = field a.origin origin;
        as_path = field a.as_path as_path;
        next_hop = field a.next_hop next_hop;
        med = field a.med med;
        local_pref = field a.local_pref local_pref;
        originator_id = field a.originator_id originator_id;
        cluster_list = field a.cluster_list cluster_list;
        ext_communities = field a.ext_communities ext_communities;
      }
  in
  { t with path_id = field t.path_id path_id; attrs }

let is_reflected t =
  List.exists Ext_community.is_reflected t.attrs.ext_communities

let mark_reflected t =
  if is_reflected t then t
  else
    update
      ~ext_communities:(Ext_community.reflected :: t.attrs.ext_communities)
      t

let add_cluster id t = update ~cluster_list:(id :: t.attrs.cluster_list) t
let in_cluster_list id t = List.exists (Ipv4.equal id) t.attrs.cluster_list
let neighbor_as t = As_path.first_as t.attrs.as_path

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

(* Field order matches the pre-interning implementation: the decision
   kernel's final tie-break depends on it, so changing it would change
   simulation outcomes. *)
let compare_attr_blocks a b =
  if a == b then 0
  else
    let c = Origin.compare a.origin b.origin in
    if c <> 0 then c
    else
      let c = As_path.compare a.as_path b.as_path in
      if c <> 0 then c
      else
        let c = Ipv4.compare a.next_hop b.next_hop in
        if c <> 0 then c
        else
          let c = compare_opt Int.compare a.med b.med in
          if c <> 0 then c
          else
            let c = Int.compare a.local_pref b.local_pref in
            if c <> 0 then c
            else
              let c = compare_opt Ipv4.compare a.originator_id b.originator_id in
              if c <> 0 then c
              else
                let c = List.compare Ipv4.compare a.cluster_list b.cluster_list in
                if c <> 0 then c
                else
                  let c =
                    List.compare Community.compare a.communities b.communities
                  in
                  if c <> 0 then c
                  else
                    List.compare Ext_community.compare a.ext_communities
                      b.ext_communities

let attrs_compare = compare_attr_blocks

let compare_attrs a b =
  if a == b then 0
  else
    let c = Prefix.compare a.prefix b.prefix in
    if c <> 0 then c else compare_attr_blocks a.attrs b.attrs

let same_path a b = compare_attrs a b = 0

let compare a b =
  if a == b then 0
  else
    let c = Int.compare a.path_id b.path_id in
    if c <> 0 then c else compare_attrs a b

let equal a b =
  a == b
  || (a.path_id = b.path_id
     && Prefix.equal a.prefix b.prefix
     && attrs_equal a.attrs b.attrs)

let pp fmt t =
  Format.fprintf fmt "%a[id=%d] lp=%d path=[%a] origin=%a nh=%a med=%s"
    Prefix.pp t.prefix t.path_id t.attrs.local_pref As_path.pp t.attrs.as_path
    Origin.pp t.attrs.origin Ipv4.pp t.attrs.next_hop
    (match t.attrs.med with None -> "-" | Some m -> string_of_int m)
