open Netaddr

type t = {
  prefix : Prefix.t;
  path_id : int;
  origin : Origin.t;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int;
  originator_id : Ipv4.t option;
  cluster_list : Ipv4.t list;
  communities : Community.t list;
  ext_communities : Ext_community.t list;
}

let default_local_pref = 100

let make ?(path_id = 0) ?(origin = Origin.Igp) ?(as_path = As_path.empty)
    ?(med = None) ?(local_pref = default_local_pref) ?(originator_id = None)
    ?(cluster_list = []) ?(communities = []) ?(ext_communities = []) ~prefix
    ~next_hop () =
  {
    prefix;
    path_id;
    origin;
    as_path;
    next_hop;
    med;
    local_pref;
    originator_id;
    cluster_list;
    communities;
    ext_communities;
  }

let with_path_id path_id t = { t with path_id }
let with_prefix prefix t = { t with prefix }
let is_reflected t = List.exists Ext_community.is_reflected t.ext_communities

let mark_reflected t =
  if is_reflected t then t
  else { t with ext_communities = Ext_community.reflected :: t.ext_communities }

let add_cluster id t = { t with cluster_list = id :: t.cluster_list }
let in_cluster_list id t = List.exists (Ipv4.equal id) t.cluster_list
let neighbor_as t = As_path.first_as t.as_path

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare_attrs a b =
  if a == b then 0
  else
  let c = Prefix.compare a.prefix b.prefix in
  if c <> 0 then c
  else
    let c = Origin.compare a.origin b.origin in
    if c <> 0 then c
    else
      let c = As_path.compare a.as_path b.as_path in
      if c <> 0 then c
      else
        let c = Ipv4.compare a.next_hop b.next_hop in
        if c <> 0 then c
        else
          let c = compare_opt Int.compare a.med b.med in
          if c <> 0 then c
          else
            let c = Int.compare a.local_pref b.local_pref in
            if c <> 0 then c
            else
              let c = compare_opt Ipv4.compare a.originator_id b.originator_id in
              if c <> 0 then c
              else
                let c = List.compare Ipv4.compare a.cluster_list b.cluster_list in
                if c <> 0 then c
                else
                  let c = List.compare Community.compare a.communities b.communities in
                  if c <> 0 then c
                  else
                    List.compare Ext_community.compare a.ext_communities
                      b.ext_communities

let same_path a b = compare_attrs a b = 0

let compare a b =
  if a == b then 0
  else
    let c = Int.compare a.path_id b.path_id in
    if c <> 0 then c else compare_attrs a b

let equal a b = a == b || compare a b = 0

let pp fmt t =
  Format.fprintf fmt "%a[id=%d] lp=%d path=[%a] origin=%a nh=%a med=%s"
    Prefix.pp t.prefix t.path_id t.local_pref As_path.pp t.as_path Origin.pp
    t.origin Ipv4.pp t.next_hop
    (match t.med with None -> "-" | Some m -> string_of_int m)
