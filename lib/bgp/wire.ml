open Netaddr

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_attribute of string
  | Bad_capability of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated message"
  | Bad_marker -> Format.pp_print_string fmt "bad marker"
  | Bad_length n -> Format.fprintf fmt "bad length %d" n
  | Bad_type n -> Format.fprintf fmt "bad message type %d" n
  | Bad_attribute s -> Format.fprintf fmt "bad attribute: %s" s
  | Bad_capability s -> Format.fprintf fmt "bad capability: %s" s

let max_message_size = 4096
let header_size = 19
let msg_type_open = 1
let msg_type_update = 2
let msg_type_notification = 3
let msg_type_keepalive = 4

(* --- writers ------------------------------------------------------- *)

let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w16 buf v =
  w8 buf (v lsr 8);
  w8 buf v

let w32 buf v =
  w16 buf (v lsr 16);
  w16 buf (v land 0xFFFF)

let w_addr buf a = w32 buf (Ipv4.to_int a)

let prefix_byte_len len = (len + 7) / 8

let w_prefix buf p =
  let len = Prefix.len p in
  w8 buf len;
  let a = Ipv4.to_int (Prefix.addr p) in
  for i = 0 to prefix_byte_len len - 1 do
    w8 buf ((a lsr (24 - (8 * i))) land 0xFF)
  done

let w_nlri buf ~add_paths ~path_id p =
  if add_paths then w32 buf path_id;
  w_prefix buf p

(* Attribute: flags, type, (extended) length, payload. *)
let w_attr buf ~flags ~typ payload =
  let n = Buffer.length payload in
  if n > 0xFF then (
    w8 buf (flags lor 0x10);
    w8 buf typ;
    w16 buf n)
  else (
    w8 buf flags;
    w8 buf typ;
    w8 buf n);
  Buffer.add_buffer buf payload

let flag_transitive = 0x40
let flag_optional = 0x80
let flag_opt_transitive = 0xC0

(* Encode a path-attribute block (excluding prefix/path id). One call
   per distinct interned block: every route sharing the block shares
   the encoding (see [encode_update]'s grouping). *)
let encode_attrs (r : Route.attrs) =
  let buf = Buffer.create 64 in
  let payload = Buffer.create 16 in
  let attr ~flags ~typ fill =
    Buffer.clear payload;
    fill payload;
    w_attr buf ~flags ~typ payload
  in
  attr ~flags:flag_transitive ~typ:1 (fun b -> w8 b (Origin.to_code r.origin));
  attr ~flags:flag_transitive ~typ:2 (fun b ->
      let seg (s : As_path.segment) =
        let code, asns =
          match s with
          | As_path.Set a -> (1, a)
          | As_path.Seq a -> (2, a)
          | As_path.Confed_seq a -> (3, a)
          | As_path.Confed_set a -> (4, a)
        in
        w8 b code;
        w8 b (List.length asns);
        List.iter (fun asn -> w32 b (Asn.to_int asn)) asns
      in
      List.iter seg (As_path.segments r.as_path));
  attr ~flags:flag_transitive ~typ:3 (fun b -> w_addr b r.next_hop);
  (match r.med with
  | None -> ()
  | Some m -> attr ~flags:flag_optional ~typ:4 (fun b -> w32 b m));
  attr ~flags:flag_transitive ~typ:5 (fun b -> w32 b r.local_pref);
  (match r.communities with
  | [] -> ()
  | cs ->
    attr ~flags:flag_opt_transitive ~typ:8 (fun b ->
        List.iter (fun c -> w32 b (Community.to_int c)) cs));
  (match r.originator_id with
  | None -> ()
  | Some id -> attr ~flags:flag_optional ~typ:9 (fun b -> w_addr b id));
  (match r.cluster_list with
  | [] -> ()
  | ids ->
    attr ~flags:flag_optional ~typ:10 (fun b -> List.iter (w_addr b) ids));
  (match r.ext_communities with
  | [] -> ()
  | ecs ->
    attr ~flags:flag_opt_transitive ~typ:16 (fun b ->
        let ec e =
          w8 b (Ext_community.typ e);
          w8 b (Ext_community.subtyp e);
          let v = Ext_community.value e in
          w16 b (v lsr 32);
          w32 b (v land 0xFFFF_FFFF)
        in
        List.iter ec ecs));
  Buffer.contents buf

let finish_message typ body =
  let n = String.length body + header_size in
  assert (n <= max_message_size);
  let buf = Buffer.create n in
  for _ = 1 to 16 do
    w8 buf 0xFF
  done;
  w16 buf n;
  w8 buf typ;
  Buffer.add_string buf body;
  Buffer.to_bytes buf

(* --- OPEN ---------------------------------------------------------- *)

let encode_open (o : Msg.open_params) =
  let caps = Buffer.create 16 in
  (* Capability 65: 4-octet AS numbers. *)
  w8 caps 65;
  w8 caps 4;
  w32 caps (Asn.to_int o.asn);
  if o.add_paths then (
    (* Capability 69: add-paths, AFI 1 / SAFI 1 / send+receive. *)
    w8 caps 69;
    w8 caps 4;
    w16 caps 1;
    w8 caps 1;
    w8 caps 3);
  let params = Buffer.create 16 in
  w8 params 2 (* capability parameter *);
  w8 params (Buffer.length caps);
  Buffer.add_buffer params caps;
  let body = Buffer.create 32 in
  w8 body 4 (* version *);
  let asn16 = if Asn.to_int o.asn > 0xFFFF then 23456 else Asn.to_int o.asn in
  w16 body asn16;
  w16 body o.hold_time;
  w_addr body o.bgp_id;
  w8 body (Buffer.length params);
  Buffer.add_buffer body params;
  finish_message msg_type_open (Buffer.contents body)

(* --- UPDATE -------------------------------------------------------- *)

let nlri_size ~add_paths p =
  (if add_paths then 4 else 0) + 1 + prefix_byte_len (Prefix.len p)

(* Split a list of items into chunks whose [size]s sum to at most [room]. *)
let chunk ~room ~size items =
  let rec go current current_sz acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      let s = size x in
      if current <> [] && current_sz + s > room then
        go [ x ] s (List.rev current :: acc) rest
      else go (x :: current) (current_sz + s) acc rest
  in
  go [] 0 [] items

let encode_update ~add_paths (u : Msg.update) =
  let msgs = ref [] in
  let emit body = msgs := finish_message msg_type_update body :: !msgs in
  (* Withdrawal-only messages. *)
  let wd_size (w : Msg.withdrawal) = nlri_size ~add_paths w.prefix in
  let wd_room = max_message_size - header_size - 4 in
  List.iter
    (fun batch ->
      let buf = Buffer.create 128 in
      let wd = Buffer.create 128 in
      List.iter
        (fun (w : Msg.withdrawal) -> w_nlri wd ~add_paths ~path_id:w.path_id w.prefix)
        batch;
      w16 buf (Buffer.length wd);
      Buffer.add_buffer buf wd;
      w16 buf 0 (* no path attributes *);
      emit (Buffer.contents buf))
    (chunk ~room:wd_room ~size:wd_size u.withdrawn);
  (* Announcements grouped by identical attribute encoding. *)
  let groups : (string, Route.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = encode_attrs (Route.attrs r) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := r :: !l
      | None ->
        Hashtbl.add groups key (ref [ r ]);
        order := key :: !order)
    u.announced;
  List.iter
    (fun key ->
      let routes = List.rev !(Hashtbl.find groups key) in
      let room = max_message_size - header_size - 4 - String.length key in
      List.iter
        (fun batch ->
          let buf = Buffer.create 256 in
          w16 buf 0 (* no withdrawals *);
          w16 buf (String.length key);
          Buffer.add_string buf key;
          List.iter
            (fun (r : Route.t) ->
              w_nlri buf ~add_paths ~path_id:r.path_id r.prefix)
            batch;
          emit (Buffer.contents buf))
        (chunk ~room ~size:(fun (r : Route.t) -> nlri_size ~add_paths r.prefix) routes))
    (List.rev !order);
  List.rev !msgs

(* --- analytical sizing --------------------------------------------- *)

(* [measure_update] mirrors [encode_update] arithmetically: same
   attribute sizes, same grouping, same greedy chunking — without
   allocating a single buffer. The simulator calls this on every
   transmission to account bytes/messages (Proto.wire_size), so it is
   hot; [encode] stays the reference and a differential test pins the
   two together. *)

let attr_size payload = (if payload > 0xFF then 4 else 3) + payload

let attrs_wire_size (a : Route.attrs) =
  let as_path_payload =
    List.fold_left
      (fun n (s : As_path.segment) ->
        let len =
          match s with
          | As_path.Set l | As_path.Seq l | As_path.Confed_seq l
          | As_path.Confed_set l ->
            List.length l
        in
        n + 2 + (4 * len))
      0
      (As_path.segments a.as_path)
  in
  attr_size 1 (* origin *)
  + attr_size as_path_payload
  + attr_size 4 (* next hop *)
  + (match a.med with None -> 0 | Some _ -> attr_size 4)
  + attr_size 4 (* local pref *)
  + (match a.communities with [] -> 0 | cs -> attr_size (4 * List.length cs))
  + (match a.originator_id with None -> 0 | Some _ -> attr_size 4)
  + (match a.cluster_list with [] -> 0 | ids -> attr_size (4 * List.length ids))
  + (match a.ext_communities with
    | [] -> 0
    | ecs -> attr_size (8 * List.length ecs))

(* How many messages [chunk ~room] would produce over these item sizes. *)
let chunk_count ~room sizes =
  match sizes with
  | [] -> 0
  | _ ->
    let n = ref 1 and cur = ref 0 in
    List.iter
      (fun s ->
        if !cur > 0 && !cur + s > room then begin
          incr n;
          cur := s
        end
        else cur := !cur + s)
      sizes;
    !n

let measure_update ~add_paths (u : Msg.update) =
  let bytes = ref 0 and msgs = ref 0 in
  (match u.withdrawn with
  | [] -> ()
  | wds ->
    let sizes =
      List.map (fun (w : Msg.withdrawal) -> nlri_size ~add_paths w.prefix) wds
    in
    let n = chunk_count ~room:(max_message_size - header_size - 4) sizes in
    msgs := !msgs + n;
    bytes := !bytes + (n * (header_size + 4)) + List.fold_left ( + ) 0 sizes);
  (* Group by attribute block, preserving arrival order within a group
     as [encode_update] does. Blocks are interned, so physical identity
     is the common case and the structural check only breaks ahash
     collisions (or cross-domain blocks). *)
  let groups : (int, (Route.attrs * int list ref) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let order = ref [] in
  List.iter
    (fun (r : Route.t) ->
      let a = Route.attrs r in
      let nlri = nlri_size ~add_paths r.prefix in
      let bucket =
        match Hashtbl.find_opt groups a.Route.ahash with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add groups a.Route.ahash b;
          b
      in
      match
        List.find_opt
          (fun ((a', _) : Route.attrs * _) -> Route.attrs_equal a' a)
          !bucket
      with
      | Some (_, sizes) -> sizes := nlri :: !sizes
      | None ->
        let cell = (a, ref [ nlri ]) in
        bucket := cell :: !bucket;
        order := cell :: !order)
    u.announced;
  List.iter
    (fun ((a, sizes_rev) : Route.attrs * int list ref) ->
      let sizes = List.rev !sizes_rev in
      let keylen = attrs_wire_size a in
      let room = max_message_size - header_size - 4 - keylen in
      let n = chunk_count ~room sizes in
      msgs := !msgs + n;
      bytes :=
        !bytes + (n * (header_size + 4 + keylen)) + List.fold_left ( + ) 0 sizes)
    !order;
  (!bytes, !msgs)

let encode_notification (n : Msg.notification) =
  let buf = Buffer.create 16 in
  w8 buf n.code;
  w8 buf n.subcode;
  Buffer.add_string buf n.data;
  finish_message msg_type_notification (Buffer.contents buf)

let encode ~add_paths = function
  | Msg.Open o -> [ encode_open o ]
  | Msg.Keepalive -> [ finish_message msg_type_keepalive "" ]
  | Msg.Notification n -> [ encode_notification n ]
  | Msg.Update u -> encode_update ~add_paths u

let encoded_size ~add_paths msg =
  List.fold_left (fun n b -> n + Bytes.length b) 0 (encode ~add_paths msg)

(* --- readers ------------------------------------------------------- *)

exception Decode_error of error

let fail e = raise (Decode_error e)

type reader = { data : bytes; mutable pos : int; limit : int }

let need rd n = if rd.pos + n > rd.limit then fail Truncated

let r8 rd =
  need rd 1;
  let v = Char.code (Bytes.get rd.data rd.pos) in
  rd.pos <- rd.pos + 1;
  v

let r16 rd =
  let a = r8 rd in
  let b = r8 rd in
  (a lsl 8) lor b

let r32 rd =
  let a = r16 rd in
  let b = r16 rd in
  (a lsl 16) lor b

let r_addr rd = Ipv4.of_int (r32 rd)

let r_prefix rd =
  let len = r8 rd in
  if len > 32 then fail (Bad_attribute "prefix length > 32");
  let n = prefix_byte_len len in
  let a = ref 0 in
  for i = 0 to n - 1 do
    a := !a lor (r8 rd lsl (24 - (8 * i)))
  done;
  Prefix.make (Ipv4.of_int !a) len

let r_nlri rd ~add_paths =
  let path_id = if add_paths then r32 rd else 0 in
  let p = r_prefix rd in
  (p, path_id)

type raw_attrs = {
  mutable origin : Origin.t option;
  mutable as_path : As_path.t;
  mutable next_hop : Ipv4.t option;
  mutable med : int option;
  mutable local_pref : int option;
  mutable originator_id : Ipv4.t option;
  mutable cluster_list : Ipv4.t list;
  mutable communities : Community.t list;
  mutable ext_communities : Ext_community.t list;
}

let decode_attrs rd =
  let acc =
    {
      origin = None;
      as_path = As_path.empty;
      next_hop = None;
      med = None;
      local_pref = None;
      originator_id = None;
      cluster_list = [];
      communities = [];
      ext_communities = [];
    }
  in
  while rd.pos < rd.limit do
    let flags = r8 rd in
    let typ = r8 rd in
    let len = if flags land 0x10 <> 0 then r16 rd else r8 rd in
    need rd len;
    let attr_end = rd.pos + len in
    let sub = { rd with limit = attr_end } in
    (match typ with
    | 1 -> (
      match Origin.of_code (r8 sub) with
      | Some o -> acc.origin <- Some o
      | None -> fail (Bad_attribute "origin code"))
    | 2 ->
      let segs = ref [] in
      while sub.pos < sub.limit do
        let code = r8 sub in
        let count = r8 sub in
        let asns = List.init count (fun _ -> Asn.of_int (r32 sub)) in
        match code with
        | 1 -> segs := As_path.Set asns :: !segs
        | 2 -> segs := As_path.Seq asns :: !segs
        | 3 -> segs := As_path.Confed_seq asns :: !segs
        | 4 -> segs := As_path.Confed_set asns :: !segs
        | n -> fail (Bad_attribute (Printf.sprintf "AS path segment type %d" n))
      done;
      acc.as_path <- As_path.of_segments (List.rev !segs)
    | 3 -> acc.next_hop <- Some (r_addr sub)
    | 4 -> acc.med <- Some (r32 sub)
    | 5 -> acc.local_pref <- Some (r32 sub)
    | 8 ->
      let cs = ref [] in
      while sub.pos < sub.limit do
        cs := Community.of_int32_bits (r32 sub) :: !cs
      done;
      acc.communities <- List.rev !cs
    | 9 -> acc.originator_id <- Some (r_addr sub)
    | 10 ->
      let ids = ref [] in
      while sub.pos < sub.limit do
        ids := r_addr sub :: !ids
      done;
      acc.cluster_list <- List.rev !ids
    | 16 ->
      let ecs = ref [] in
      while sub.pos < sub.limit do
        let typ = r8 sub in
        let subtyp = r8 sub in
        let hi = r16 sub in
        let lo = r32 sub in
        ecs := Ext_community.make ~typ ~subtyp ~value:((hi lsl 32) lor lo) :: !ecs
      done;
      acc.ext_communities <- List.rev !ecs
    | _ when flags land flag_optional <> 0 -> () (* skip unknown optional *)
    | n -> fail (Bad_attribute (Printf.sprintf "unknown well-known attribute %d" n)));
    rd.pos <- attr_end
  done;
  acc

let decode_update rd ~add_paths =
  let wd_len = r16 rd in
  need rd wd_len;
  let wd_end = rd.pos + wd_len in
  let wrd = { rd with limit = wd_end } in
  let withdrawn = ref [] in
  while wrd.pos < wrd.limit do
    let p, path_id = r_nlri wrd ~add_paths in
    withdrawn := { Msg.prefix = p; path_id } :: !withdrawn
  done;
  rd.pos <- wd_end;
  let attr_len = r16 rd in
  need rd attr_len;
  let attr_end = rd.pos + attr_len in
  let ard = { rd with limit = attr_end } in
  let attrs = decode_attrs ard in
  rd.pos <- attr_end;
  let announced = ref [] in
  (* Intern the attribute block once per UPDATE: every announced NLRI
     shares it, so decoding N prefixes allocates N heads, one block. *)
  let block =
    if rd.pos >= rd.limit then None
    else
      match (attrs.origin, attrs.next_hop) with
      | Some origin, Some next_hop ->
        Some
          (Route.make_attrs ~origin ~as_path:attrs.as_path ~med:attrs.med
             ~local_pref:
               (Option.value ~default:Route.default_local_pref attrs.local_pref)
             ~originator_id:attrs.originator_id ~cluster_list:attrs.cluster_list
             ~communities:attrs.communities
             ~ext_communities:attrs.ext_communities ~next_hop ())
      | None, _ -> fail (Bad_attribute "missing ORIGIN on announcement")
      | _, None -> fail (Bad_attribute "missing NEXT_HOP on announcement")
  in
  while rd.pos < rd.limit do
    let p, path_id = r_nlri rd ~add_paths in
    match block with
    | Some attrs -> announced := Route.of_attrs ~path_id ~prefix:p attrs :: !announced
    | None -> assert false
  done;
  Msg.Update { withdrawn = List.rev !withdrawn; announced = List.rev !announced }

let decode_open rd =
  let version = r8 rd in
  if version <> 4 then fail (Bad_capability (Printf.sprintf "version %d" version));
  let asn16 = r16 rd in
  let hold_time = r16 rd in
  let bgp_id = r_addr rd in
  let params_len = r8 rd in
  need rd params_len;
  let params_end = rd.pos + params_len in
  let prd = { rd with limit = params_end } in
  let asn = ref asn16 in
  let add_paths = ref false in
  while prd.pos < prd.limit do
    let ptype = r8 prd in
    let plen = r8 prd in
    need prd plen;
    let pend = prd.pos + plen in
    if ptype = 2 then (
      let crd = { prd with limit = pend } in
      while crd.pos < crd.limit do
        let code = r8 crd in
        let clen = r8 crd in
        need crd clen;
        let cend = crd.pos + clen in
        (match code with
        | 65 when clen = 4 -> asn := r32 crd
        | 69 -> add_paths := true
        | _ -> ());
        crd.pos <- cend
      done);
    prd.pos <- pend
  done;
  rd.pos <- params_end;
  Msg.Open { asn = Asn.of_int !asn; hold_time; bgp_id; add_paths = !add_paths }

let decode ~add_paths data ~pos =
  try
    let total = Bytes.length data in
    if pos + header_size > total then fail Truncated;
    for i = 0 to 15 do
      if Char.code (Bytes.get data (pos + i)) <> 0xFF then fail Bad_marker
    done;
    let len =
      (Char.code (Bytes.get data (pos + 16)) lsl 8)
      lor Char.code (Bytes.get data (pos + 17))
    in
    if len < header_size || len > max_message_size then fail (Bad_length len);
    if pos + len > total then fail Truncated;
    let typ = Char.code (Bytes.get data (pos + 18)) in
    let rd = { data; pos = pos + header_size; limit = pos + len } in
    let msg =
      if typ = msg_type_open then decode_open rd
      else if typ = msg_type_update then decode_update rd ~add_paths
      else if typ = msg_type_keepalive then Msg.Keepalive
      else if typ = msg_type_notification then (
        let code = r8 rd in
        let subcode = r8 rd in
        let data = Bytes.sub_string rd.data rd.pos (rd.limit - rd.pos) in
        Msg.Notification { code; subcode; data })
      else fail (Bad_type typ)
    in
    Ok (msg, pos + len)
  with Decode_error e -> Error e

let decode_all ~add_paths data =
  let total = Bytes.length data in
  let rec go pos acc =
    if pos >= total then Ok (List.rev acc)
    else
      match decode ~add_paths data ~pos with
      | Ok (msg, pos') -> go pos' (msg :: acc)
      | Error e -> Error e
  in
  go 0 []
