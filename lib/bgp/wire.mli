(** Binary wire codec for BGP messages (RFC 4271), with 4-byte ASNs
    (RFC 6793) and the add-paths Path Identifier extension (the
    draft-ietf-idr-add-paths encoding ABRR relies on).

    A {!Msg.update} whose announcements carry differing attribute sets is
    encoded as several UPDATE messages (one per distinct attribute set),
    each at most {!max_message_size} bytes; [encode] therefore returns a
    list of wire messages. *)

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_attribute of string
  | Bad_capability of string

val pp_error : Format.formatter -> error -> unit

val max_message_size : int
(** 4096 octets (RFC 4271 §4). *)

val header_size : int
(** 19 octets. *)

val encode : add_paths:bool -> Msg.t -> bytes list
(** Encode a message. OPEN / KEEPALIVE / NOTIFICATION yield exactly one
    wire message; UPDATE may yield several (attribute grouping and the
    4096-byte ceiling). *)

val encoded_size : add_paths:bool -> Msg.t -> int
(** Total bytes over all wire messages produced by [encode]. *)

val measure_update : add_paths:bool -> Msg.update -> int * int
(** [(bytes, messages)] that [encode] would produce for this update,
    computed arithmetically — same attribute sizing, grouping and greedy
    chunking, but no buffer is ever allocated. This backs the
    simulator's per-transmission byte/message accounting
    (Proto.wire_size), so its agreement with [encode] is pinned by a
    differential test. *)

val decode : add_paths:bool -> bytes -> pos:int -> (Msg.t * int, error) result
(** Decode one message starting at [pos]; returns the message and the
    position just past it. Updates that were split by [encode] decode as
    separate UPDATE messages. *)

val decode_all : add_paths:bool -> bytes -> (Msg.t list, error) result
(** Decode a concatenated stream of messages. *)
