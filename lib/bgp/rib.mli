(** A mutable route table holding, per prefix, one or more routes
    distinguished by their add-paths Path Identifier. Used for
    Adj-RIB-In (one per peer), Loc-RIB and Adj-RIB-Out.

    The table is a path-compressed binary trie keyed by the prefix
    bits (the mutable sibling of {!Netaddr.Prefix_trie}): one 5-word
    node per stored prefix plus one list cell per route, independent
    of how sparse the address space is, and longest-prefix match comes
    directly off the structure — {!longest_match} is what lets the
    router serve data-plane lookups straight from its Loc-RIB with no
    separate FIB copy. Iteration ({!fold}, {!iter}, {!prefixes}) is in
    ascending {!Netaddr.Prefix.compare} order, so downstream consumers
    are deterministic by construction.

    Entry counts follow the paper's accounting: the size of a RIB is the
    total number of routes stored, not the number of prefixes. *)

open Netaddr

type t

val create : ?size_hint:int -> unit -> t
(** [size_hint] is accepted for compatibility and ignored: tries grow
    one node at a time. *)

val get : t -> Prefix.t -> Route.t list
(** All routes stored for a prefix (possibly []), in insertion order of
    path ids. *)

val set : t -> Prefix.t -> Route.t list -> unit
(** Replace the full route set for a prefix; [set t p []] removes it. *)

val upsert : t -> Route.t -> bool
(** Insert or replace by (prefix, path_id). Returns [true] when the table
    changed (new entry, or replaced entry differs). Single pass: a
    replacement keeps the route's position in the prefix's list. *)

val drop : t -> Prefix.t -> path_id:int -> bool
(** Remove one route; [true] if it was present. Single pass. *)

val clear_prefix : t -> Prefix.t -> int
(** Remove all routes for the prefix; returns how many were removed. *)

val clear : t -> unit

val entry_count : t -> int
(** Total stored routes (paper's RIB size). O(1). *)

val prefix_count : t -> int
(** Number of distinct prefixes with at least one route. O(1). *)

val mem : t -> Prefix.t -> bool

val fold : (Prefix.t -> Route.t list -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending prefix order (address, then shorter-first). *)

val iter : (Prefix.t -> Route.t list -> unit) -> t -> unit
(** Ascending prefix order. *)

val prefixes : t -> Prefix.t list
(** Ascending prefix order. *)

val longest_match : t -> Ipv4.t -> (Prefix.t * Route.t list) option
(** Most specific stored prefix containing the address, with its
    routes — the data-plane lookup. O(matching prefix length). *)

(** Per-prefix dirty tracking for batched incremental processing: a
    processing batch accumulates one ['a] churn payload per distinct
    dirty prefix, then {!Dirty.drain}s the set in deterministic prefix
    order and decides each prefix exactly once. The set is keyed on
    {!Netaddr.Prefix.to_key}, so re-marking a prefix within a batch
    returns the payload already accumulated for it. *)
module Dirty : sig
  type 'a t

  val create : ?size:int -> unit -> 'a t

  val mark : 'a t -> Prefix.t -> (unit -> 'a) -> 'a
  (** [mark t p fresh]: the payload already tracked for [p], or [fresh ()]
      newly tracked for it. *)

  val find : 'a t -> Prefix.t -> 'a option
  val is_empty : 'a t -> bool

  val count : 'a t -> int
  (** Distinct dirty prefixes currently tracked. *)

  val drain : 'a t -> (Prefix.t * 'a) list
  (** All tracked (prefix, payload) pairs in ascending prefix order,
      leaving the set empty. *)
end
