open Netaddr

type learned = Ebgp | Confed_ebgp | Ibgp | Local

type candidate = {
  route : Route.t;
  learned : learned;
  peer_id : Ipv4.t;
  peer_addr : Ipv4.t;
  igp_cost : int;
}

let candidate ?(learned = Local) ?(peer_id = Ipv4.zero) ?(peer_addr = Ipv4.zero)
    ?(igp_cost = 0) route =
  { route; learned; peer_id; peer_addr; igp_cost }

type med_mode = Always_compare | Per_neighbor_as

let med (r : Route.t) = match (Route.med r) with None -> 0 | Some m -> m

let learned_rank c =
  (* eBGP over confed-external over iBGP; locally-originated routes rank
     with eBGP *)
  match c.learned with Ebgp | Local -> 0 | Confed_ebgp -> 1 | Ibgp -> 2

let router_id c =
  match (Route.originator_id c.route) with
  | Some id -> Ipv4.to_int id
  | None -> Ipv4.to_int c.peer_id

let neighbor_as_key c =
  match Route.neighbor_as c.route with
  | None -> -1
  | Some asn -> Asn.to_int asn

(* {2 Reference implementation}

   The original chained-[List.filter] decision process, retained verbatim
   as the differential-testing oracle for the scratch-array kernel below
   (and for the step-by-step [tie_break_step] diagnostic). *)

module Naive = struct
  (* Keep the candidates minimising [f]; preserves input order. *)
  let keep_min f cands =
    match cands with
    | [] | [ _ ] -> cands
    | _ ->
      let m = List.fold_left (fun acc c -> min acc (f c)) max_int cands in
      List.filter (fun c -> f c = m) cands

  let step1 cands = keep_min (fun c -> -(Route.local_pref c.route)) cands
  let step2 cands = keep_min (fun c -> As_path.length (Route.as_path c.route)) cands
  let step3 cands = keep_min (fun c -> Origin.rank (Route.origin c.route)) cands

  let step4 ~med_mode cands =
    match med_mode with
    | Always_compare -> keep_min (fun c -> med c.route) cands
    | Per_neighbor_as ->
      (* MED only discriminates among routes from the same neighbour AS. *)
      let min_by_key = Hashtbl.create 8 in
      let note c =
        let k = neighbor_as_key c and m = med c.route in
        match Hashtbl.find_opt min_by_key k with
        | Some m' when m' <= m -> ()
        | _ -> Hashtbl.replace min_by_key k m
      in
      List.iter note cands;
      List.filter
        (fun c -> med c.route = Hashtbl.find min_by_key (neighbor_as_key c))
        cands

  let step5 cands = keep_min learned_rank cands
  let step6 cands = keep_min (fun c -> c.igp_cost) cands
  let step7 cands = keep_min router_id cands
  let step8 cands = keep_min (fun c -> Ipv4.to_int c.peer_addr) cands

  let steps_1_to_4 ~med_mode cands =
    cands |> step1 |> step2 |> step3 |> step4 ~med_mode

  let all_steps ~med_mode =
    [ step1; step2; step3; step4 ~med_mode; step5; step6; step7; step8 ]

  let final_tie_break cands =
    match cands with
    | [] -> None
    | first :: rest ->
      let better a b = if Route.compare_attrs a.route b.route <= 0 then a else b in
      Some (List.fold_left better first rest)

  let best ~med_mode cands =
    final_tie_break
      (List.fold_left (fun cs f -> f cs) cands (all_steps ~med_mode))
end

(* {2 Scratch-array kernel}

   One pass computes each candidate's key and the running minimum, a
   second compacts the survivors in place — no per-step list allocation.
   The buffers live in domain-local storage: each simulation runs inside
   one domain, so reuse is safe, and parallel bench domains each get
   their own scratch. *)

type scratch = {
  mutable cand : candidate array;  (* slots >= n hold stale entries *)
  mutable keys : int array;
  mutable meds : int array;  (* second key column for per-AS MED *)
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { cand = [||]; keys = [||]; meds = [||] })

(* Load the candidates into the scratch buffers, growing them if needed;
   returns the live count. *)
let load s cands =
  match cands with
  | [] -> 0
  | c0 :: _ ->
    let n = List.length cands in
    if Array.length s.cand < n then begin
      let cap = max 16 n in
      s.cand <- Array.make cap c0;
      s.keys <- Array.make cap 0;
      s.meds <- Array.make cap 0
    end;
    List.iteri (fun i c -> s.cand.(i) <- c) cands;
    n

(* Keep the candidates minimising [key] among the first [n]; preserves
   order, returns the new live count. *)
let filter_min s n key =
  if n <= 1 then n
  else begin
    let cand = s.cand and keys = s.keys in
    let m = ref max_int in
    for i = 0 to n - 1 do
      let k = key cand.(i) in
      keys.(i) <- k;
      if k < !m then m := k
    done;
    let m = !m in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keys.(i) = m then begin
        cand.(!j) <- cand.(i);
        incr j
      end
    done;
    !j
  end

(* Per-neighbour-AS MED: keep candidate [i] unless some candidate of the
   same neighbour AS has a strictly lower MED. Key columns are filled
   once; the quadratic scan runs over ints only and candidate sets are
   small (bounded by peering points per prefix). *)
let filter_med_per_as s n =
  if n <= 1 then n
  else begin
    let cand = s.cand and keys = s.keys and meds = s.meds in
    for i = 0 to n - 1 do
      keys.(i) <- neighbor_as_key cand.(i);
      meds.(i) <- med cand.(i).route
    done;
    let j = ref 0 in
    for i = 0 to n - 1 do
      let keep = ref true in
      for k = 0 to n - 1 do
        if keys.(k) = keys.(i) && meds.(k) < meds.(i) then keep := false
      done;
      if !keep then begin
        cand.(!j) <- cand.(i);
        incr j
      end
    done;
    !j
  end

let key_lp c = -(Route.local_pref c.route)
let key_path c = As_path.length (Route.as_path c.route)
let key_origin c = Origin.rank (Route.origin c.route)
let key_med c = med c.route
let key_igp c = c.igp_cost
let key_peer c = Ipv4.to_int c.peer_addr

let run_1_to_4 ~med_mode s n =
  let n = filter_min s n key_lp in
  let n = filter_min s n key_path in
  let n = filter_min s n key_origin in
  match med_mode with
  | Always_compare -> filter_min s n key_med
  | Per_neighbor_as -> filter_med_per_as s n

let steps_1_to_4 ~med_mode cands =
  match cands with
  | [] | [ _ ] -> cands
  | _ ->
    let s = Domain.DLS.get scratch_key in
    let n = run_1_to_4 ~med_mode s (load s cands) in
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (s.cand.(i) :: acc)
    in
    build (n - 1) []

let best ~med_mode cands =
  match cands with
  | [] -> None
  | [ c ] -> Some c
  | _ ->
    let s = Domain.DLS.get scratch_key in
    let n = run_1_to_4 ~med_mode s (load s cands) in
    let n = filter_min s n learned_rank in
    let n = filter_min s n key_igp in
    let n = filter_min s n router_id in
    let n = filter_min s n key_peer in
    (* ties after step 8 break deterministically on route attributes *)
    let w = ref s.cand.(0) in
    for i = 1 to n - 1 do
      if Route.compare_attrs s.cand.(i).route !w.route < 0 then w := s.cand.(i)
    done;
    Some !w

(* Strict loss on the route-intrinsic key prefix of the process: local
   preference, AS-path length, origin rank, and — where sound — MED.
   Under [Always_compare] MED is a global fourth key; under
   [Per_neighbor_as] it only discriminates inside one neighbour-AS group,
   so it is consulted only when both routes share the incumbent's group
   (the incumbent survived step 4, hence holds its group's MED minimum,
   and a same-group route with a strictly larger MED is eliminated there
   without affecting any other group's minimum). A [true] result means
   the challenger is eliminated in steps 1-4 of any candidate set that
   contains the incumbent, and its presence or absence leaves the
   step-1-4 survivor set unchanged — the soundness fact the incremental
   router path relies on (DESIGN.md, "Incremental decision"). *)
let intrinsic_loses ~med_mode ~(incumbent : Route.t) (r : Route.t) =
  let lp_i = Route.local_pref incumbent and lp_r = Route.local_pref r in
  if lp_r <> lp_i then lp_r < lp_i
  else
    let pl_i = As_path.length (Route.as_path incumbent)
    and pl_r = As_path.length (Route.as_path r) in
    if pl_r <> pl_i then pl_r > pl_i
    else
      let o_i = Origin.rank (Route.origin incumbent)
      and o_r = Origin.rank (Route.origin r) in
      if o_r <> o_i then o_r > o_i
      else begin
        match med_mode with
        | Always_compare -> med r > med incumbent
        | Per_neighbor_as -> (
          match (Route.neighbor_as incumbent, Route.neighbor_as r) with
          | Some a, Some b when Asn.equal a b -> med r > med incumbent
          | _ -> false)
      end

let rank ~med_mode cands =
  (* MED per-neighbour-AS comparison is not transitive, so we cannot sort
     with a comparator: extract the winner repeatedly instead. *)
  let rec go acc = function
    | [] -> List.rev acc
    | cands -> (
      match best ~med_mode cands with
      | None -> List.rev acc
      | Some w ->
        let rest = List.filter (fun c -> c != w) cands in
        go (w :: acc) rest)
  in
  go [] cands

let tie_break_step ~med_mode cands =
  match cands with
  | [] | [ _ ] -> 0
  | _ ->
    let rec go i fs cs =
      match fs with
      | [] -> 8
      | f :: fs' -> ( match f cs with [ _ ] -> i | cs' -> go (i + 1) fs' cs')
    in
    go 1 (Naive.all_steps ~med_mode) cands

let describe_step = function
  | 0 -> "single candidate"
  | 1 -> "highest local preference"
  | 2 -> "shortest AS path"
  | 3 -> "lowest origin type"
  | 4 -> "lowest MED"
  | 5 -> "eBGP over iBGP"
  | 6 -> "lowest IGP metric"
  | 7 -> "lowest router ID"
  | 8 -> "lowest peer address"
  | n -> Printf.sprintf "unknown step %d" n
