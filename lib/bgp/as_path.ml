type segment =
  | Seq of Asn.t list
  | Set of Asn.t list
  | Confed_seq of Asn.t list
  | Confed_set of Asn.t list

(* Paths are hash-consed: [t] is an interned node carrying its segment
   list together with the precomputed decision-process length and a
   structural hash. Within a domain, structurally equal paths share one
   node, so [equal] is (almost always) physical equality and [length] is
   a field read — both sit on the decision-process hot path. *)
type t = { segs : segment list; len : int; hash : int }

let seg_len = function
  | Seq asns -> List.length asns
  | Set _ -> 1
  | Confed_seq _ | Confed_set _ -> 0

let segs_length segs = List.fold_left (fun n s -> n + seg_len s) 0 segs

let hash_asns h asns =
  List.fold_left (fun h a -> (h * 31) + Asn.to_int a) h asns

let hash_seg h = function
  | Seq asns -> hash_asns ((h * 31) + 1) asns
  | Set asns -> hash_asns ((h * 31) + 2) asns
  | Confed_seq asns -> hash_asns ((h * 31) + 3) asns
  | Confed_set asns -> hash_asns ((h * 31) + 4) asns

let hash_segs segs = List.fold_left hash_seg 17 segs land max_int

let seg_equal a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y | Confed_seq x, Confed_seq y
  | Confed_set x, Confed_set y ->
    List.equal Asn.equal x y
  | _, _ -> false

let segs_equal = List.equal seg_equal

module Tbl = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.hash = b.hash && segs_equal a.segs b.segs
  let hash t = t.hash
end)

(* One intern table per domain: simulations are single-domain, so no
   locking is needed, and the weak table lets the GC reclaim paths no
   RIB references anymore. Cross-domain comparisons still work through
   the structural fallback in [equal]/[compare]. *)
let table = Domain.DLS.new_key (fun () -> Tbl.create 1024)

let intern segs =
  Tbl.merge (Domain.DLS.get table)
    { segs; len = segs_length segs; hash = hash_segs segs }

let empty = intern []
let of_segments segs = intern segs
let segments t = t.segs
let of_asns = function [] -> empty | asns -> intern [ Seq asns ]
let length t = t.len
let hash t = t.hash

let prepend asn t =
  intern
    (match t.segs with
    | Seq asns :: rest -> Seq (asn :: asns) :: rest
    | segs -> Seq [ asn ] :: segs)

let prepend_confed asn t =
  intern
    (match t.segs with
    | Confed_seq asns :: rest -> Confed_seq (asn :: asns) :: rest
    | segs -> Confed_seq [ asn ] :: segs)

let strip_confed t =
  intern
    (List.filter
       (function Confed_seq _ | Confed_set _ -> false | Seq _ | Set _ -> true)
       t.segs)

let confed_contains asn t =
  List.exists
    (function
      | Confed_seq asns | Confed_set asns -> List.exists (Asn.equal asn) asns
      | Seq _ | Set _ -> false)
    t.segs

let contains asn t =
  let in_seg = function
    | Seq asns | Set asns | Confed_seq asns | Confed_set asns ->
      List.exists (Asn.equal asn) asns
  in
  List.exists in_seg t.segs

let strip_confed_segs t =
  List.filter
    (function Confed_seq _ | Confed_set _ -> false | Seq _ | Set _ -> true)
    t.segs

let first_as t =
  match strip_confed_segs t with Seq (a :: _) :: _ -> Some a | _ -> None

let origin_as t =
  let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl in
  match last (strip_confed_segs t) with
  | Some (Seq asns) -> last asns
  | Some (Set _ | Confed_seq _ | Confed_set _) | None -> None

let seg_rank = function Seq _ -> 0 | Set _ -> 1 | Confed_seq _ -> 2 | Confed_set _ -> 3

let seg_compare a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y | Confed_seq x, Confed_seq y
  | Confed_set x, Confed_set y ->
    List.compare Asn.compare x y
  | _, _ -> Int.compare (seg_rank a) (seg_rank b)

let compare a b = if a == b then 0 else List.compare seg_compare a.segs b.segs
let equal a b = a == b || (a.hash = b.hash && segs_equal a.segs b.segs)

let to_string t =
  let seg_str = function
    | Seq asns -> String.concat " " (List.map Asn.to_string asns)
    | Set asns -> "{" ^ String.concat "," (List.map Asn.to_string asns) ^ "}"
    | Confed_seq asns ->
      "(" ^ String.concat " " (List.map Asn.to_string asns) ^ ")"
    | Confed_set asns ->
      "[" ^ String.concat "," (List.map Asn.to_string asns) ^ "]"
  in
  String.concat " " (List.map seg_str t.segs)

let pp fmt t = Format.pp_print_string fmt (to_string t)
