(** BGP AS_PATH attribute: a list of segments (RFC 4271 §5.1.2). *)

type segment =
  | Seq of Asn.t list  (** AS_SEQUENCE: ordered ASes *)
  | Set of Asn.t list  (** AS_SET: unordered aggregate, counts as 1 hop *)
  | Confed_seq of Asn.t list
      (** AS_CONFED_SEQUENCE (RFC 5065): member-AS hops inside a
          confederation; invisible to path length and stripped at true
          AS boundaries *)
  | Confed_set of Asn.t list  (** AS_CONFED_SET *)

type t
(** Hash-consed: structurally equal paths built within one domain share
    a single node, so {!equal} is usually a pointer comparison and
    {!length} is precomputed. Construction functions intern their
    result in a per-domain weak table (entries are reclaimed once no
    route references them). *)

val empty : t
(** The empty path (locally originated route). *)

val of_segments : segment list -> t
val segments : t -> segment list

val of_asns : Asn.t list -> t
(** Single AS_SEQUENCE segment; [of_asns []] is [empty]. *)

val length : t -> int
(** Path length for the decision process: each AS in a SEQ counts 1,
    each SET segment counts 1 (RFC 4271 §9.1.2.2.a); confederation
    segments count 0 (RFC 5065 §5.3). *)

val prepend : Asn.t -> t -> t
(** Prepend one AS to the leftmost SEQ segment (creating one if needed). *)

val prepend_confed : Asn.t -> t -> t
(** Prepend one member-AS to the leftmost CONFED_SEQ segment (creating
    one if needed) — what a router does when crossing a confed-eBGP
    boundary. *)

val strip_confed : t -> t
(** Remove all confederation segments (done when a route leaves the
    confederation through a true eBGP session). *)

val confed_contains : Asn.t -> t -> bool
(** Does any confederation segment mention the member-AS? (confed loop
    detection) *)

val contains : Asn.t -> t -> bool
(** eBGP loop detection: does the path traverse the given AS? *)

val first_as : t -> Asn.t option
(** Leftmost true AS (confederation segments are skipped): the
    neighbouring AS the route was learned from. [None] for the empty
    path and paths starting with a SET. *)

val origin_as : t -> Asn.t option
(** Rightmost AS: the route's originating AS. *)

val compare : t -> t -> int
(** Total structural order (physical equality fast path). *)

val equal : t -> t -> bool
(** Physical equality fast path; falls back to hash + structure, so
    paths interned by different domains still compare correctly. *)

val hash : t -> int
(** Precomputed structural hash, O(1). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
