(** Bounded model checking over simulator schedules.

    A single {!Abrr_core.Network.run} exercises one schedule: events pop
    in (time, seq) order. Convergence of BGP-like systems is famously
    schedule-dependent, so this module treats the set of pending events
    as a {e nondeterministic choice point} and searches over schedules:
    depth-first, firing one ready event at a time through the
    {!Eventsim.Sim.fire} scheduler hook, checkpointing with
    {!Abrr_core.Network.dump}/[load], and pruning states already seen
    under a canonical state digest. Within its budgets it turns the
    paper's §2.3 claims into exhaustively checked facts: ABRR and
    full-mesh gadgets quiesce under {e every} schedule, violate no
    runtime invariant, agree with the full-visibility exit reference and
    reach a single terminal state; the TBRR MED gadget yields a concrete
    dispute cycle as a replayable counterexample.

    {2 Choice-point model}

    In {!Async} mode (the default) {e any} pending event may fire next —
    messages and timers are delayed arbitrarily, the classic asynchronous
    model under which RFC 3345 oscillation is defined; absolute
    timestamps are abstracted away (the clock only ratchets forward).
    In {!Timed} mode only events sharing the earliest timestamp are
    ready — the search covers exactly the tie-breaking freedom of the
    timed simulation. Optional fault choice points additionally
    fail/recover a router at any state, budgeted by [max_faults].

    {2 Soundness notes}

    The visited-state digest is {e exact} up to provably dead values: it
    erases the clock and event timestamps (Async mode — that is the
    asynchronous abstraction itself), renumbers event [seq]s
    canonically, zeroes measurement counters and the unused RNG word,
    drops per-source Adj-RIB-In entries emptied by implicit withdraws
    (every reader treats an empty entry exactly like an absent one),
    erases best-route sender attribution (write-only bookkeeping that
    records arrival order when redundant reflectors send equal routes),
    canonicalizes inbox order across sources (a processing batch drains
    the whole inbox into disjoint per-source tables before any decision
    runs, so only same-source relative order is observable),
    and (when MRAI is off) drops quiesced session scaffolding whose
    [mrai_until] stamp is never consulted. It keeps add-paths path-ids
    verbatim, so no two states with different pending-withdrawal
    bindings ever merge — pruning never hides behavior, it only skips
    re-exploring it. Terminal states are compared under a separate,
    coarser digest that erases path-id {e assignments} (allocation order
    is schedule-dependent; at quiescence no dangling id references
    exist) and sorts RIB insertion order away: schedule-isomorphic
    terminals compare equal, genuinely different routing outcomes do
    not.

    The partial-order reduction is a sleep-set scheme over write
    footprints: [Deliver]/[Process]/[Mrai_flush]/[Purge]/[Establish]
    events write only their target router (message sends only append to
    the event queue, which the digest compares as a set), so events at
    distinct routers commute; [Op]/[Thunk] payloads and fault choices
    are global and never commute. Sleep sets prune redundant
    {e transitions} only — every reachable state is still visited — so
    [Safe] verdicts are unaffected; a dispute cycle's closing edge can
    in principle be slept, so a cycle hunt that comes back clean with
    POR enabled should be confirmed with [~por:false] (the gadget CI
    gates do). *)

type mode =
  | Async  (** any pending event may fire; timestamps abstracted *)
  | Timed  (** only earliest-timestamp events are ready *)

type fault = Fail of int | Recover of int

(** One edge of a schedule: fire the pending event carrying this [seq],
    or inject a fault. *)
type choice = Fire of int | Inject of fault

type limits = {
  max_depth : int;  (** truncate any single schedule past this length *)
  max_states : int;  (** abort the whole search past this many states *)
  max_faults : int;  (** fault choice points per schedule (default 0) *)
}

val default_limits : limits
(** depth 20_000, states 200_000, faults 0. *)

type stats = {
  mutable states : int;  (** distinct canonical states visited *)
  mutable transitions : int;  (** events fired + faults injected *)
  mutable terminals : int;  (** quiescent states reached *)
  mutable pruned_visited : int;  (** revisits cut by the digest table *)
  mutable pruned_sleep : int;  (** transitions cut by sleep sets *)
  mutable max_depth_seen : int;
  mutable truncated : int;  (** schedules cut by [max_depth] *)
}

type violation =
  | Dispute_cycle of { stem : int; period : int }
      (** the schedule returns to a state [period] choices earlier —
          repeating those choices forever is a non-converging run *)
  | Invariant_violation of string  (** {!Verify.Invariant} raised *)
  | Forwarding_loop of { prefix : Netaddr.Prefix.t; cycle : int list }
      (** data-plane loop at a quiescent state *)
  | Exit_mismatch of {
      prefix : Netaddr.Prefix.t;
      router : int;
      got : int option;
      reference : int option;
    }  (** quiescent exit differs from the full-mesh reference *)
  | Divergent_terminals of { other : string }
      (** two schedules quiesced in states that differ even under the
          isomorphism-tolerant terminal digest *)

type counterexample = {
  violation : violation;
  schedule : choice list;  (** from the initial state to the violation *)
  state_digest : string;  (** canonical digest of the violating state *)
  snap_digest : string option;
      (** full {!Snapshot.digest} of the violating state, for replay
          verification and {!Snapshot.Bisect} composition *)
}

type verdict =
  | Safe of { complete : bool; terminal : string option }
      (** no violation found. [complete]: the bounded state space was
          exhausted (no depth truncation, no state-budget abort) — for a
          finite-state config this is a proof over {e all} schedules.
          [terminal] is the single terminal digest (absent when fault
          injection was on, which legitimately diversifies terminals) *)
  | Unsafe of counterexample

type result = { verdict : verdict; stats : stats }

(** What to explore: a way to rebuild the initial state (injections
    pending, nothing processed), the prefixes whose data plane is
    walked at quiescent states, and optional per-prefix full-mesh
    reference exits ({!Verify.Deflection.full_mesh_exits}). *)
type scenario = {
  fresh : unit -> Abrr_core.Network.t;
  prefixes : Netaddr.Prefix.t list;
  reference : (Netaddr.Prefix.t * int option array) list;
}

val scenario_of_gadget : ?check_exits:bool -> Abrr_core.Gadgets.t -> scenario
(** [check_exits] (default true) populates [reference] from the static
    full-visibility model. *)

val explore :
  ?mode:mode ->
  ?por:bool ->
  ?invariants:bool ->
  ?limits:limits ->
  scenario ->
  result
(** Search the schedule space from the scenario's initial state.
    [por] (default true) enables sleep-set pruning; [invariants]
    (default true) runs {!Verify.Invariant.check_now} at every distinct
    state. @raise Invalid_argument if a [Thunk] event is pending (its
    closure cannot be digested — schedule [at_op] operations instead). *)

(** {1 Schedule execution} *)

val ready :
  mode:mode ->
  Abrr_core.Network.t ->
  Abrr_core.Network.payload Eventsim.Sim.event list
(** The current choice point's ready events, in canonical (time, seq)
    order. *)

val apply : Abrr_core.Network.t -> choice -> unit
(** Execute one choice: {!Eventsim.Sim.fire} the event, or inject the
    fault at the current state. *)

val replay : Abrr_core.Network.t -> choice list -> unit
(** [apply] each choice in order — deterministic, so replaying a
    counterexample's schedule from a fresh scenario state reproduces the
    violating state exactly. *)

val random_run :
  ?mode:mode ->
  ?max_steps:int ->
  seed:int ->
  Abrr_core.Network.t ->
  (int, string) Stdlib.result
(** Drive the network to quiescence firing uniformly-random ready
    events (a random fair schedule — every pending event is eventually
    fired) from a dedicated [seed]ed stream that leaves the simulation's
    own RNG untouched. [Ok steps] on quiescence; [Error _] if
    [max_steps] (default 100_000) ran out. *)

(** {1 State digests} *)

val state_digest : mode:mode -> Abrr_core.Network.t -> string
(** Canonical schedule-search digest of the current state (hex MD5).
    See the soundness notes above for what is abstracted.
    @raise Invalid_argument on a pending [Thunk]. *)

val terminal_digest : Abrr_core.Network.t -> string
(** Isomorphism-tolerant digest for comparing {e quiescent} states
    across schedules: additionally erases path-id assignments and RIB
    insertion order. Only meaningful when no events are pending. *)

val verify_counterexample :
  scenario -> mode:mode -> counterexample -> (unit, string) Stdlib.result
(** Rebuild the initial state, {!replay} the counterexample's schedule
    and check the violating state's digests match — the determinism
    guarantee behind "replayable". *)

(** {1 Counterexample files}

    Plain-text, line-oriented: a magic/version line, free-form [key
    value] metadata (the CLI stores the gadget name and exploration
    flags, letting [abrr_sim replay] rebuild the scenario), the
    violation, both digests and the choice list. *)
module Ce : sig
  type t = { meta : (string * string) list; ce : counterexample }

  val to_string : t -> string
  val of_string : string -> (t, string) Stdlib.result
  (** Never raises on malformed input. *)

  val save : t -> path:string -> (unit, string) Stdlib.result
  val load : path:string -> (t, string) Stdlib.result
end

val pp_violation : Format.formatter -> violation -> unit
val pp_stats : Format.formatter -> stats -> unit
