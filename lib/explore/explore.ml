open Netaddr
module N = Abrr_core.Network
module Router = Abrr_core.Router
module Sim = Eventsim.Sim
module Time = Eventsim.Time

type mode = Async | Timed
type fault = Fail of int | Recover of int
type choice = Fire of int | Inject of fault

type limits = { max_depth : int; max_states : int; max_faults : int }

let default_limits = { max_depth = 20_000; max_states = 200_000; max_faults = 0 }

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable terminals : int;
  mutable pruned_visited : int;
  mutable pruned_sleep : int;
  mutable max_depth_seen : int;
  mutable truncated : int;
}

type violation =
  | Dispute_cycle of { stem : int; period : int }
  | Invariant_violation of string
  | Forwarding_loop of { prefix : Prefix.t; cycle : int list }
  | Exit_mismatch of {
      prefix : Prefix.t;
      router : int;
      got : int option;
      reference : int option;
    }
  | Divergent_terminals of { other : string }

type counterexample = {
  violation : violation;
  schedule : choice list;
  state_digest : string;
  snap_digest : string option;
}

type verdict =
  | Safe of { complete : bool; terminal : string option }
  | Unsafe of counterexample

type result = { verdict : verdict; stats : stats }

type scenario = {
  fresh : unit -> N.t;
  prefixes : Prefix.t list;
  reference : (Prefix.t * int option array) list;
}

let scenario_of_gadget ?(check_exits = true) (g : Abrr_core.Gadgets.t) =
  let reference =
    if not check_exits then []
    else
      let dist = Igp.Spf.all_pairs g.config.Abrr_core.Config.igp in
      [
        ( g.prefix,
          Verify.Deflection.full_mesh_exits g.config ~dist ~prefix:g.prefix
            g.injections );
      ]
  in
  {
    fresh = (fun () -> Abrr_core.Gadgets.build g);
    prefixes = [ g.prefix ];
    reference;
  }

(* ------------------------------------------------------------------ *)
(* Canonical state digests                                             *)

(* Exact modulo provably dead values: see the .mli soundness notes.
   [mrai_off] additionally lets quiesced session scaffolding vanish —
   with MRAI disabled, [send] never consults [mrai_until], so an empty
   session is behaviorally identical to an absent one (and the ghost-
   entry class of divergence disappears from the digest). *)
let norm_router mrai_off (st : Router.state) =
  (* A per-source Adj-RIB-In entry left empty by an implicit withdraw is
     hashtable residue: every reader folds over entries and [Rib.get]
     answers [] for absent and empty alike, and writers re-create
     entries on demand — so empty and absent are behaviorally identical
     and must digest identically. ([Rib.set] deletes emptied prefix
     keys, so an empty entry dumps exactly as [(src, [])].) *)
  let peer_tables =
    Array.map
      (List.filter (fun ((_, rd) : int * Router.rib_dump) -> rd <> []))
      st.Router.st_peer_tables
  in
  (* Inbox order across sources is dead state: [process_now] drains the
     whole inbox into per-source tables before recomputing any decision,
     and inputs from different sources write disjoint entries (eBGP /
     local inputs write yet other RIBs), so only same-class relative
     order can matter. Stable-sorting by class merges batch-composition
     permutations that provably converge to the same processed state. *)
  let inbox_class = function
    | Router.In_items { src; _ } -> (0, src)
    | Router.In_ebgp _ | Router.In_ebgp_withdraw _ | Router.In_local _
    | Router.In_local_withdraw _ | Router.In_redecide_all ->
      (1, 0)
  in
  let inbox =
    List.stable_sort
      (fun a b -> Stdlib.compare (inbox_class a) (inbox_class b))
      st.Router.st_inbox
  in
  let sessions =
    List.filter_map
      (fun (ss : Router.session_state) ->
        let ss =
          if mrai_off then { ss with Router.ss_mrai_until = Time.zero } else ss
        in
        if mrai_off && ss.Router.ss_pending = [] && not ss.Router.ss_flush_scheduled
        then None
        else Some ss)
      st.Router.st_sessions
  in
  {
    st with
    Router.st_peer_tables = peer_tables;
    (* Best-route sender attribution ([best_src] and friends) is
       write-only bookkeeping — no decision ever reads it back — and
       with redundant ARRs delivering equal routes the recorded sender
       is pure arrival order. Behaviorally dead, so it must not split
       (or diverge) digests. *)
    st_src_tbls = Array.map (fun _ -> []) st.Router.st_src_tbls;
    st_inbox = inbox;
    st_sessions = sessions;
    st_counters = Abrr_core.Counters.create ();
    st_rejected_loops = 0;
  }

let norm_event mode clock (ev : N.payload Sim.event) =
  (match ev.Sim.payload with
  | N.Thunk _ ->
    invalid_arg "Explore: pending Thunk event cannot be digested (use at_op)"
  | _ -> ());
  let time =
    match mode with
    | Async -> Time.zero
    | Timed -> max Time.zero (ev.Sim.time - clock)
  in
  (* seq dropped: events are renumbered by canonical position *)
  (time, ev.Sim.kind, ev.Sim.actor, ev.Sim.detail, ev.Sim.payload)

let norm_dump mode net =
  let d = N.dump net in
  let cfg = N.config net in
  let mrai_off = cfg.Abrr_core.Config.mrai = Time.zero in
  let events =
    List.map (norm_event mode d.N.d_clock) d.N.d_events
    |> List.sort Stdlib.compare
  in
  (events, Array.map (norm_router mrai_off) d.N.d_routers)

let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let state_digest ~mode net = digest_of (norm_dump mode net)

(* Terminal comparison abstracts path-id assignment (allocation order is
   schedule history, not routing outcome) and RIB insertion order. Safe
   only at quiescence: with no pending withdrawals or in-flight
   messages, no dangling id reference can distinguish the states. *)
let scrub_rib_dump (rd : Router.rib_dump) =
  List.map
    (fun (p, rs) ->
      ( p,
        List.sort Bgp.Route.compare (List.map (Bgp.Route.with_path_id 0) rs) ))
    rd

let terminal_digest net =
  let events, routers = norm_dump Async net in
  let routers =
    Array.map
      (fun (st : Router.state) ->
        {
          st with
          Router.st_ribs = Array.map scrub_rib_dump st.Router.st_ribs;
          st_peer_tables =
            Array.map
              (List.map (fun (src, rd) -> (src, scrub_rib_dump rd)))
              st.Router.st_peer_tables;
          st_path_ids = [||];
          st_sessions =
            List.filter_map
              (fun (ss : Router.session_state) ->
                if ss.Router.ss_pending = [] && not ss.Router.ss_flush_scheduled
                then None
                else Some { ss with Router.ss_mrai_until = Time.zero })
              st.Router.st_sessions;
        })
      routers
  in
  digest_of (events, routers)

(* ------------------------------------------------------------------ *)
(* Schedule execution                                                  *)

(* Events are only reorderable up to per-channel FIFO: iBGP messages on
   one (src, dst) session ride an ordered transport, and session
   teardown/re-establishment for one (router, peer) pair must keep its
   issue order — firing a Deliver ahead of an earlier Deliver on the
   same session would model a state real BGP cannot reach. Events on
   distinct channels carry no such constraint. *)
type channel =
  | Ch_deliver of int * int
  | Ch_proc of int
  | Ch_mrai of int * int
  | Ch_session of int * int
  | Ch_external

let channel_of = function
  | N.Deliver { src; dst; _ } -> Ch_deliver (src, dst)
  | N.Process i -> Ch_proc i
  | N.Mrai_flush { router; peer } -> Ch_mrai (router, peer)
  | N.Purge { router; peer } | N.Establish { router; peer } ->
    Ch_session (router, peer)
  | N.Op _ | N.Thunk _ -> Ch_external

(* Keep only each channel's head (lowest seq = issue order). The input
   is (time, seq)-sorted; at equal times seq is send order, and an
   async-mode reordering never lets a later seq on the same channel
   overtake an earlier one. *)
let channel_heads evs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (e : _ Sim.event) ->
      let ch = channel_of e.Sim.payload in
      let head =
        match Hashtbl.find_opt seen ch with
        | Some s -> s > e.Sim.seq
        | None -> true
      in
      if head then Hashtbl.replace seen ch e.Sim.seq;
      head)
    (List.sort (fun (a : _ Sim.event) b -> Int.compare a.Sim.seq b.Sim.seq) evs)
  |> List.sort Sim.(fun a b -> Stdlib.compare (a.time, a.seq) (b.time, b.seq))

let ready ~mode net =
  let evs = Sim.pending_events (N.sim net) in
  let evs =
    match mode with
    | Async -> evs
    | Timed -> (
      match evs with
      | [] -> []
      | first :: _ ->
        List.filter (fun (e : _ Sim.event) -> e.Sim.time = first.Sim.time) evs)
  in
  channel_heads evs

let apply net = function
  | Fire seq -> ignore (Sim.fire (N.sim net) ~seq)
  | Inject (Fail r) -> N.fail net ~router:r
  | Inject (Recover r) -> N.recover net ~router:r

let replay net choices = List.iter (apply net) choices

let random_run ?(mode = Async) ?(max_steps = 100_000) ~seed net =
  let prng = Eventsim.Prng.create seed in
  let rec go steps =
    if steps >= max_steps then
      Error
        (Printf.sprintf "random schedule did not quiesce within %d steps"
           max_steps)
    else
      match ready ~mode net with
      | [] -> Ok steps
      | evs ->
        let ev = List.nth evs (Eventsim.Prng.int prng (List.length evs)) in
        apply net (Fire ev.Sim.seq);
        go (steps + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Partial-order reduction                                             *)

(* Write footprint of a payload's execution. Message sends only append
   to the event queue, which the digest treats as a set, so they do not
   make two events at distinct routers interfere. *)
let footprint = function
  | N.Deliver { dst; _ } -> Some dst
  | N.Process i -> Some i
  | N.Mrai_flush { router; _ } | N.Purge { router; _ }
  | N.Establish { router; _ } ->
    Some router
  | N.Op _ | N.Thunk _ -> None (* global: dependent with everything *)

let independent a b =
  match (footprint a, footprint b) with
  | Some x, Some y -> x <> y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The search                                                          *)

let explore ?(mode = Async) ?(por = true) ?(invariants = true)
    ?(limits = default_limits) sc =
  let net = sc.fresh () in
  let sim = N.sim net in
  let stats =
    {
      states = 0;
      transitions = 0;
      terminals = 0;
      pruned_visited = 0;
      pruned_sleep = 0;
      max_depth_seen = 0;
      truncated = 0;
    }
  in
  (* digest -> (fewest faults used on any visit, sleep set stored then).
     A revisit is pruned only when the stored visit had at least as much
     remaining fault budget and slept a subset of what we would sleep —
     otherwise it is re-explored with the intersected sleep set. *)
  let visited : (string, int * N.payload list) Hashtbl.t =
    Hashtbl.create 4096
  in
  (* states on the current DFS stack: "digest:faults_used" -> depth.
     Faults are part of the key so a loop closed through a fault
     injection (not repeatable under a finite fault budget) is never
     reported as a protocol dispute cycle. *)
  let path : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let schedule = ref [] in
  let terminal = ref None in
  let exception Found of counterexample in
  let exception Budget_exhausted in
  let mk_ce violation =
    let snap_digest =
      match Snapshot.digest net with Ok d -> Some d | Error _ -> None
    in
    {
      violation;
      schedule = List.rev !schedule;
      state_digest = state_digest ~mode net;
      snap_digest;
    }
  in
  let check_invariants () =
    if invariants then
      try Verify.Invariant.check_now net
      with Verify.Invariant.Violation msg ->
        raise (Found (mk_ce (Invariant_violation msg)))
  in
  let check_terminal faults_used =
    stats.terminals <- stats.terminals + 1;
    for i = 0 to N.router_count net - 1 do
      let r = N.router net i in
      if Router.is_up r && not (Router.idle r) then
        raise
          (Found
             (mk_ce
                (Invariant_violation
                   (Printf.sprintf
                      "router %d is quiescent with unprocessed input" i))))
    done;
    List.iter
      (fun p ->
        match Abrr_core.Anomaly.forwarding_loops net p with
        | [] -> ()
        | cycle :: _ -> raise (Found (mk_ce (Forwarding_loop { prefix = p; cycle }))))
      sc.prefixes;
    (* Exit-reference agreement and terminal uniqueness only make sense
       on fault-free schedules: a crashed (or crashed-and-cold-restarted)
       router legitimately ends elsewhere. *)
    if faults_used = 0 then begin
      (* The exit router of [router]'s best path: where its next_hop
         loopback lives, or the router itself when the next hop is an
         external (eBGP) address — matching the static reference's
         notion of egress. *)
      let live_exit router p =
        match N.best net ~router p with
        | None -> None
        | Some r -> (
          match
            Abrr_core.Config.router_of_loopback (N.config net)
              (Bgp.Route.next_hop r)
          with
          | Some x -> Some x
          | None -> Some router)
      in
      List.iter
        (fun (p, reference) ->
          Array.iteri
            (fun router expected ->
              let got = live_exit router p in
              if got <> expected then
                raise
                  (Found
                     (mk_ce
                        (Exit_mismatch { prefix = p; router; got; reference = expected }))))
            reference)
        sc.reference;
      let td = terminal_digest net in
      match !terminal with
      | None -> terminal := Some td
      | Some other when other <> td ->
        raise (Found (mk_ce (Divergent_terminals { other })))
      | Some _ -> ()
    end
  in
  let subset small big =
    List.for_all (fun p -> List.exists (fun q -> p = q) big) small
  in
  let inter xs ys = List.filter (fun p -> List.exists (fun q -> p = q) ys) xs in
  let fault_choices faults_used =
    if faults_used >= limits.max_faults then []
    else
      List.init (N.router_count net) (fun r ->
          if Router.is_up (N.router net r) then Fail r else Recover r)
  in
  let rec dfs depth faults_used sleep =
    if depth > stats.max_depth_seen then stats.max_depth_seen <- depth;
    let d = state_digest ~mode net in
    let path_key = d ^ ":" ^ string_of_int faults_used in
    (match Hashtbl.find_opt path path_key with
    | Some stem ->
      raise (Found (mk_ce (Dispute_cycle { stem; period = depth - stem })))
    | None -> ());
    let prior = Hashtbl.find_opt visited d in
    match prior with
    | Some (fu, stored) when fu <= faults_used && (not por || subset stored sleep)
      ->
      stats.pruned_visited <- stats.pruned_visited + 1
    | _ ->
      let sleep =
        if not por then []
        else
          match prior with
          | Some (fu, stored) when fu <= faults_used -> inter stored sleep
          | _ -> sleep
      in
      Hashtbl.replace visited d
        ((match prior with Some (fu, _) -> min fu faults_used | None -> faults_used), sleep);
      if prior = None then begin
        stats.states <- stats.states + 1;
        if stats.states > limits.max_states then raise Budget_exhausted;
        check_invariants ()
      end;
      let evs = ready ~mode net in
      let faults = fault_choices faults_used in
      if evs = [] then check_terminal faults_used;
      let budgeted = depth < limits.max_depth in
      if (not budgeted) && (evs <> [] || faults <> []) then
        stats.truncated <- stats.truncated + 1
      else if evs <> [] || faults <> [] then begin
        Hashtbl.replace path path_key depth;
        let saved = N.dump net in
        let slept = ref sleep in
        List.iter
          (fun (ev : _ Sim.event) ->
            if por && List.exists (fun p -> p = ev.Sim.payload) !slept then
              stats.pruned_sleep <- stats.pruned_sleep + 1
            else begin
              schedule := Fire ev.Sim.seq :: !schedule;
              ignore (Sim.fire sim ~seq:ev.Sim.seq);
              stats.transitions <- stats.transitions + 1;
              let child_sleep =
                if por then List.filter (fun p -> independent p ev.Sim.payload) !slept
                else []
              in
              dfs (depth + 1) faults_used child_sleep;
              N.load net saved;
              schedule := List.tl !schedule;
              slept := ev.Sim.payload :: !slept
            end)
          evs;
        List.iter
          (fun f ->
            schedule := Inject f :: !schedule;
            apply net (Inject f);
            stats.transitions <- stats.transitions + 1;
            dfs (depth + 1) (faults_used + 1) [];
            N.load net saved;
            schedule := List.tl !schedule)
          faults;
        Hashtbl.remove path path_key
      end
  in
  let verdict =
    try
      dfs 0 0 [];
      Safe
        {
          complete = stats.truncated = 0;
          terminal = (if limits.max_faults = 0 then !terminal else None);
        }
    with
    | Found ce -> Unsafe ce
    | Budget_exhausted ->
      Safe { complete = false; terminal = None }
  in
  { verdict; stats }

let verify_counterexample sc ~mode ce =
  let net = sc.fresh () in
  match replay net ce.schedule with
  | exception e -> Error ("replay failed: " ^ Printexc.to_string e)
  | () -> (
    let d = state_digest ~mode net in
    if d <> ce.state_digest then
      Error
        (Printf.sprintf "state digest mismatch: replay reached %s, recorded %s"
           d ce.state_digest)
    else
      match ce.snap_digest with
      | None -> Ok ()
      | Some recorded -> (
        match Snapshot.digest net with
        | Ok got when got = recorded -> Ok ()
        | Ok got ->
          Error
            (Printf.sprintf
               "snapshot digest mismatch: replay reached %s, recorded %s" got
               recorded)
        | Error e -> Error ("snapshot digest failed on replay: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Rendering and counterexample files                                  *)

let opt_int = function None -> "-" | Some i -> string_of_int i

let pp_violation fmt = function
  | Dispute_cycle { stem; period } ->
    Format.fprintf fmt
      "dispute cycle: state at choice %d revisited after %d more choices"
      stem period
  | Invariant_violation msg -> Format.fprintf fmt "invariant violation: %s" msg
  | Forwarding_loop { prefix; cycle } ->
    Format.fprintf fmt "forwarding loop for %s: %s" (Prefix.to_string prefix)
      (String.concat " -> " (List.map string_of_int cycle))
  | Exit_mismatch { prefix; router; got; reference } ->
    Format.fprintf fmt
      "exit mismatch for %s at router %d: picked %s, full-mesh reference %s"
      (Prefix.to_string prefix) router (opt_int got) (opt_int reference)
  | Divergent_terminals { other } ->
    Format.fprintf fmt
      "schedule-dependent outcome: terminal state differs from earlier \
       terminal %s"
      other

let pp_stats fmt s =
  Format.fprintf fmt
    "states %d, transitions %d, terminals %d, revisits pruned %d, sleep-set \
     prunes %d, max depth %d, truncated %d"
    s.states s.transitions s.terminals s.pruned_visited s.pruned_sleep
    s.max_depth_seen s.truncated

module Ce = struct
  type nonrec t = { meta : (string * string) list; ce : counterexample }

  let escape s =
    String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

  let violation_line = function
    | Dispute_cycle { stem; period } ->
      Printf.sprintf "dispute-cycle %d %d" stem period
    | Invariant_violation msg -> "invariant " ^ escape msg
    | Forwarding_loop { prefix; cycle } ->
      Printf.sprintf "fwd-loop %s %s" (Prefix.to_string prefix)
        (String.concat "," (List.map string_of_int cycle))
    | Exit_mismatch { prefix; router; got; reference } ->
      Printf.sprintf "exit-mismatch %s %d %s %s" (Prefix.to_string prefix)
        router (opt_int got) (opt_int reference)
    | Divergent_terminals { other } -> "divergent-terminals " ^ other

  let to_string t =
    let b = Buffer.create 1024 in
    Buffer.add_string b "ABRR-CE 1\n";
    List.iter
      (fun (k, v) -> Printf.bprintf b "meta %s %s\n" (escape k) (escape v))
      t.meta;
    Printf.bprintf b "violation %s\n" (violation_line t.ce.violation);
    Printf.bprintf b "state-digest %s\n" t.ce.state_digest;
    Printf.bprintf b "snap-digest %s\n"
      (match t.ce.snap_digest with None -> "-" | Some d -> d);
    Printf.bprintf b "choices %d\n" (List.length t.ce.schedule);
    List.iter
      (function
        | Fire seq -> Printf.bprintf b "fire %d\n" seq
        | Inject (Fail r) -> Printf.bprintf b "fail %d\n" r
        | Inject (Recover r) -> Printf.bprintf b "recover %d\n" r)
      t.ce.schedule;
    Buffer.contents b

  let parse_opt_int = function
    | "-" -> Some None
    | s -> Option.map (fun i -> Some i) (int_of_string_opt s)

  let parse_violation rest =
    let words = String.split_on_char ' ' rest in
    match words with
    | "dispute-cycle" :: stem :: period :: [] -> (
      match (int_of_string_opt stem, int_of_string_opt period) with
      | Some stem, Some period -> Ok (Dispute_cycle { stem; period })
      | _ -> Error "bad dispute-cycle fields")
    | "invariant" :: msg_words ->
      Ok (Invariant_violation (String.concat " " msg_words))
    | [ "fwd-loop"; p; cycle ] -> (
      match Prefix.of_string_opt p with
      | None -> Error "bad fwd-loop prefix"
      | Some prefix -> (
        let hops =
          List.map int_of_string_opt (String.split_on_char ',' cycle)
        in
        if List.exists Option.is_none hops then Error "bad fwd-loop cycle"
        else Ok (Forwarding_loop { prefix; cycle = List.filter_map Fun.id hops })))
    | [ "exit-mismatch"; p; router; got; reference ] -> (
      match
        ( Prefix.of_string_opt p,
          int_of_string_opt router,
          parse_opt_int got,
          parse_opt_int reference )
      with
      | Some prefix, Some router, Some got, Some reference ->
        Ok (Exit_mismatch { prefix; router; got; reference })
      | _ -> Error "bad exit-mismatch fields")
    | [ "divergent-terminals"; other ] -> Ok (Divergent_terminals { other })
    | _ -> Error "unknown violation kind"

  let of_string s =
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.trim l <> "")
    in
    let split2 l =
      match String.index_opt l ' ' with
      | None -> (l, "")
      | Some i ->
        (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
    in
    match lines with
    | magic :: rest when String.trim magic = "ABRR-CE 1" -> (
      let meta = ref [] in
      let violation = ref None in
      let state_digest = ref None in
      let snap_digest = ref None in
      let declared = ref None in
      let choices = ref [] in
      let err = ref None in
      List.iter
        (fun line ->
          if !err = None then
            let key, rest = split2 (String.trim line) in
            match key with
            | "meta" ->
              let k, v = split2 rest in
              meta := (k, v) :: !meta
            | "violation" -> (
              match parse_violation rest with
              | Ok v -> violation := Some v
              | Error e -> err := Some e)
            | "state-digest" -> state_digest := Some rest
            | "snap-digest" ->
              snap_digest := Some (if rest = "-" then None else Some rest)
            | "choices" -> declared := int_of_string_opt rest
            | "fire" -> (
              match int_of_string_opt rest with
              | Some seq -> choices := Fire seq :: !choices
              | None -> err := Some "bad fire seq")
            | "fail" -> (
              match int_of_string_opt rest with
              | Some r -> choices := Inject (Fail r) :: !choices
              | None -> err := Some "bad fail router")
            | "recover" -> (
              match int_of_string_opt rest with
              | Some r -> choices := Inject (Recover r) :: !choices
              | None -> err := Some "bad recover router")
            | other -> err := Some ("unknown line: " ^ other))
        rest;
      match (!err, !violation, !state_digest, !snap_digest, !declared) with
      | Some e, _, _, _, _ -> Error ("counterexample parse: " ^ e)
      | None, Some violation, Some state_digest, Some snap_digest, Some n ->
        let schedule = List.rev !choices in
        if List.length schedule <> n then
          Error "counterexample parse: choice count mismatch"
        else
          Ok
            {
              meta = List.rev !meta;
              ce = { violation; schedule; state_digest; snap_digest };
            }
      | None, _, _, _, _ -> Error "counterexample parse: missing fields")
    | _ -> Error "counterexample parse: bad magic"

  let save t ~path =
    try
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc (to_string t);
      close_out oc;
      Sys.rename tmp path;
      Ok ()
    with Sys_error e -> Error e

  let load ~path =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
    with Sys_error e -> Error e
end
