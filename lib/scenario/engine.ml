open Abrr_core
open Eventsim
module Invariant = Verify.Invariant
module Report = Verify.Report

type check = { label : string; ok : bool; detail : string }

type result = {
  name : string;
  scheme : string;
  checks : check list;
  invariant_violations : int;
  first_violation : string option;
  detections : int;
  counters : Counters.t;
  events : int;
  sim_end : Time.t;
}

type run = {
  r_net : Network.t;
  mutable r_violations : int;
  mutable r_first_violation : string option;
  mutable r_checks_rev : check list;
  mutable r_detections : int;
  mutable r_event_limited : bool;
}

let start net =
  {
    r_net = net;
    r_violations = 0;
    r_first_violation = None;
    r_checks_rev = [];
    r_detections = 0;
    r_event_limited = false;
  }

let net run = run.r_net

let violation run msg =
  run.r_violations <- run.r_violations + 1;
  if run.r_first_violation = None then run.r_first_violation <- Some msg

let check run label ok fmt =
  Format.kasprintf
    (fun detail -> run.r_checks_rev <- { label; ok; detail } :: run.r_checks_rev)
    fmt

let set_detections run d = run.r_detections <- d
let add_detections run d = run.r_detections <- run.r_detections + d

let quiesce ?until ?(max_events = 50_000_000) run =
  Invariant.install run.r_net;
  let outcome =
    try Network.run ?until ~max_events run.r_net
    with Invariant.Violation msg ->
      violation run msg;
      (* Resume without the probe: the scenario wants the end state, not
         an abort at the first inconsistency. *)
      Invariant.uninstall run.r_net;
      Network.run ?until ~max_events run.r_net
  in
  Invariant.uninstall run.r_net;
  (match outcome with
  | Sim.Event_limit -> run.r_event_limited <- true
  | Sim.Quiescent | Sim.Deadline -> ());
  match Invariant.check_now run.r_net with
  | () -> ()
  | exception Invariant.Violation msg -> violation run msg

let coverage_holes run prefixes =
  let holes = ref 0 in
  for i = 0 to Network.router_count run.r_net - 1 do
    if Router.is_up (Network.router run.r_net i) then
      Array.iter
        (fun p ->
          match Network.best run.r_net ~router:i p with
          | Some _ -> ()
          | None -> incr holes)
        prefixes
  done;
  !holes

let finish run ~name ~scheme =
  if run.r_event_limited then
    check run "quiescence" false "event budget exhausted before quiescence";
  {
    name;
    scheme;
    checks = List.rev run.r_checks_rev;
    invariant_violations = run.r_violations;
    first_violation = run.r_first_violation;
    detections = run.r_detections;
    counters = Network.total_counters run.r_net;
    events = Sim.events_processed (Network.sim run.r_net);
    sim_end = Sim.now (Network.sim run.r_net);
  }

let passed r =
  r.invariant_violations = 0 && List.for_all (fun c -> c.ok) r.checks

let summary_line r =
  Printf.sprintf "%-14s [%s] %s: %d checks, %d violations, %d detections"
    r.name r.scheme
    (if passed r then "pass" else "FAIL")
    (List.length r.checks) r.invariant_violations r.detections

let report results =
  List.concat_map
    (fun r ->
      let chk = "scenario." ^ r.name in
      List.map
        (fun c ->
          if c.ok then Report.pass chk "[%s] %s: %s" r.scheme c.label c.detail
          else
            Report.fail ~code:"SCN-FAIL" chk "[%s] %s: %s" r.scheme c.label
              c.detail)
        r.checks
      @ [
          (if r.invariant_violations = 0 then
             Report.pass chk "[%s] no invariant violations" r.scheme
           else
             Report.fail ~code:"SCN-INVARIANT" chk
               "[%s] %d invariant violation%s (first: %s)" r.scheme
               r.invariant_violations
               (if r.invariant_violations = 1 then "" else "s")
               (Option.value r.first_violation ~default:"?"));
        ])
    results
