(** The scenario catalog: adversarial workloads (prefix hijack, route
    leak, persistent flapping vs. damping, session resets under load)
    and ABRR operational drills (ARR failure with AP takeover, live
    repartitioning, the §2.4 TBRR→ABRR migration), each built from the
    shared synthetic Tier-1 topology and route table and scored by the
    {!Engine}. *)

open Eventsim

type spec = {
  pops : int;
  routers_per_pop : int;
  peer_ases : int;
  peering_points_per_as : int;
  prefixes : int;
  aps : int;
  arrs_per_ap : int;  (** >= 2 enables the ARR-failover drill *)
  mrai : Time.t;
  seed : int;
}

val spec :
  ?pops:int ->
  ?routers_per_pop:int ->
  ?peer_ases:int ->
  ?peering_points_per_as:int ->
  ?prefixes:int ->
  ?aps:int ->
  ?arrs_per_ap:int ->
  ?mrai:Time.t ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 8 PoPs x 6 routers, 15 peer ASes x 6 points, 120 prefixes,
    8 APs x 2 ARRs, MRAI off, seed 7 — the test-scale shape; the CI
    catalog gate passes the paper-scale 42 x 24. *)

type env
(** The shared workload: generated topology + route table. Build once,
    run many scenarios against it (each scenario creates its own fresh
    network). *)

val env : spec -> env

val names : string list
(** Catalog order: ["hijack"; "leak"; "flap-damping"; "session-reset";
    "arr-failover"; "repartition"; "migration"]. *)

val scheme_specific : string -> bool
(** The ABRR drills (["arr-failover"], ["repartition"], ["migration"])
    ignore the scheme argument: the first two are ABRR by construction,
    the migration runs Dual. *)

val run : env -> scheme:string -> string -> Engine.result
(** Run one scenario by name under a scheme label (["abrr"], ["tbrr"],
    ["mesh"], ["confed"], ["rcp"] — where {!scheme_specific} permits).
    @raise Invalid_argument on an unknown scenario or scheme. *)

val run_all : ?only:string list -> env -> scheme:string -> Engine.result list
(** The whole catalog (or the [only] subset), in catalog order. *)
