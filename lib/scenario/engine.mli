(** Scenario engine: the bookkeeping every adversarial / operational
    drill ({!Catalog}) shares — named pass/fail checks, runtime-invariant
    supervision ({!Verify.Invariant}) with violation counting instead of
    aborting, anomaly-detection counts, and a per-scenario result record
    that renders as a {!Verify.Report} so [abrr_sim scenario] speaks the
    established [--expect]/exit-code contract. *)

open Abrr_core
open Eventsim

(** One named assertion evaluated during a scenario. *)
type check = { label : string; ok : bool; detail : string }

type result = {
  name : string;  (** catalog name, e.g. ["hijack"] *)
  scheme : string;  (** scheme label the scenario ran under *)
  checks : check list;  (** in evaluation order *)
  invariant_violations : int;
  first_violation : string option;
  detections : int;  (** anomaly-detector findings ({!Verify.Anomaly}) *)
  counters : Counters.t;  (** network-total counters at scenario end *)
  events : int;  (** simulator events processed *)
  sim_end : Time.t;  (** simulated clock at scenario end *)
}

val passed : result -> bool
(** Every check ok, zero invariant violations, and the simulation
    quiesced within budget. *)

val summary_line : result -> string
(** One line: name, scheme, pass/fail, check count, violations. *)

(** {1 Driving a scenario} *)

type run
(** Mutable in-flight state around one {!Abrr_core.Network.t}. *)

val start : Network.t -> run
val net : run -> Network.t

val quiesce : ?until:Time.t -> ?max_events:int -> run -> unit
(** Run the simulation with the runtime invariants installed. A
    {!Verify.Invariant.Violation} is counted (first message kept) and
    the run resumes without the probe rather than aborting — a scenario
    wants to observe the blast radius, not die at first blood. After the
    run an exhaustive {!Verify.Invariant.check_now} sweep is performed
    (also counted, not raised). Default [max_events] 50M; exhausting it
    fails the scenario ({!passed}). *)

val check : run -> string -> bool -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [check run label ok fmt ...] records one named assertion with a
    formatted detail string. *)

val set_detections : run -> int -> unit
val add_detections : run -> int -> unit

val coverage_holes : run -> Netaddr.Prefix.t array -> int
(** Number of (up router, prefix) pairs with no best route — 0 means
    every router resolves every given prefix (the zero-downtime
    criterion of the §2.4 migration and failover drills). *)

val finish : run -> name:string -> scheme:string -> result

(** {1 Rendering} *)

val report : result list -> Verify.Report.t
(** One finding per check plus one invariant-violation finding per
    scenario (codes ["SCN-FAIL"], ["SCN-INVARIANT"]); feeds the CLI's
    report-based exit codes and [--json]. *)
