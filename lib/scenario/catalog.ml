open Abrr_core
open Eventsim
module IT = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen
module R = Bgp.Route

type spec = {
  pops : int;
  routers_per_pop : int;
  peer_ases : int;
  peering_points_per_as : int;
  prefixes : int;
  aps : int;
  arrs_per_ap : int;
  mrai : Time.t;
  seed : int;
}

let spec ?(pops = 8) ?(routers_per_pop = 6) ?(peer_ases = 15)
    ?(peering_points_per_as = 6) ?(prefixes = 120) ?(aps = 8)
    ?(arrs_per_ap = 2) ?(mrai = Time.zero) ?(seed = 7) () =
  if prefixes < 4 then invalid_arg "Catalog.spec: need at least 4 prefixes";
  if aps < 2 then invalid_arg "Catalog.spec: need at least 2 APs";
  {
    pops;
    routers_per_pop;
    peer_ases;
    peering_points_per_as;
    prefixes;
    aps;
    arrs_per_ap;
    mrai;
    seed;
  }

type env = { spec : spec; topo : IT.t; table : RG.t }

let env spec =
  let topo =
    IT.generate
      (IT.spec ~pops:spec.pops ~routers_per_pop:spec.routers_per_pop
         ~peer_ases:spec.peer_ases
         ~peering_points_per_as:spec.peering_points_per_as ~seed:spec.seed ())
  in
  let table =
    RG.generate topo (RG.spec ~n_prefixes:spec.prefixes ~seed:(spec.seed + 1) ())
  in
  { spec; topo; table }

(* Forged routes need add-paths ids disjoint from the generator's
   (globally unique, counted from 1). *)
let hijack_path_id = 9_000_000
let leak_path_id = 9_500_000

let scheme_of env = function
  | "mesh" -> Config.Full_mesh
  | "tbrr" -> IT.tbrr_scheme env.topo
  | "abrr" ->
    IT.abrr_scheme ~aps:env.spec.aps ~arrs_per_ap:env.spec.arrs_per_ap env.topo
  | "confed" -> IT.confed_scheme env.topo
  | "rcp" -> IT.rcp_scheme env.topo
  | s -> invalid_arg ("Catalog: unknown scheme label " ^ s)

(* Fresh network under [scheme_label], baseline table injected, quiesced. *)
(* Per-router processing phases: synchronized rounds can livelock the
   TBRR family on ties (see bin/abrr_sim.ml); real routers are never in
   lockstep. *)
let proc_delay = Time.ms 150
let proc_jitter = Time.ms 400

let baseline ?damping env scheme_label =
  let scheme = scheme_of env scheme_label in
  let cfg =
    IT.config ?damping ~med_mode:Bgp.Decision.Always_compare
      ~mrai:env.spec.mrai ~proc_delay ~proc_jitter ~scheme env.topo
  in
  let net = Network.create ~seed:env.spec.seed cfg in
  RG.inject_all env.table net;
  let run = Engine.start net in
  Engine.quiesce run;
  run

let now_of net = Sim.now (Network.sim net)

(* Per-prefix legitimate origin ASes, from the generated table. *)
let legit_origins table =
  let tbl = Hashtbl.create 256 in
  Array.iteri
    (fun i entries ->
      let key = Netaddr.Prefix.to_key table.RG.prefixes.(i) in
      let origins =
        List.filter_map
          (fun (e : RG.ebgp_route) -> Bgp.As_path.origin_as (R.as_path e.route))
          entries
        |> List.sort_uniq Bgp.Asn.compare
      in
      Hashtbl.replace tbl key origins)
    table.RG.routes;
  fun p ->
    Option.value (Hashtbl.find_opt tbl (Netaddr.Prefix.to_key p)) ~default:[]

let victim_index env =
  let n = Array.length env.table.RG.prefixes in
  let good i =
    env.table.RG.from_peers.(i) && List.length env.table.RG.routes.(i) >= 2
  in
  let rec go i = if i >= n then 0 else if good i then i else go (i + 1) in
  go 0

(* A single-homed prefix: suppressing its one route blanks it network-wide,
   which is what makes damping observable. *)
let single_route_index env =
  let n = Array.length env.table.RG.prefixes in
  let rec go i =
    if i >= n then 0
    else if List.length env.table.RG.routes.(i) = 1 then i
    else go (i + 1)
  in
  go 0

let busiest_peering_router env =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun entries ->
      List.iter
        (fun (e : RG.ebgp_route) ->
          Hashtbl.replace counts e.router
            (1 + Option.value (Hashtbl.find_opt counts e.router) ~default:0))
        entries)
    env.table.RG.routes;
  Hashtbl.fold (fun r n (br, bn) -> if n > bn then (r, n) else (br, bn)) counts
    (0, 0)
  |> fst

let all_peer_asns env = List.init env.spec.peer_ases IT.peer_asn

(* ------------------------------------------------------------------ *)
(* 1. Prefix hijack: a peer AS originates someone else's prefix with a
   maximally attractive (length-1) AS path from every one of its
   peering points. The MOAS detector must see it while it holds and see
   nothing once the rogue announcement is withdrawn. *)

let hijack env scheme_label =
  let run = baseline env scheme_label in
  let net = Engine.net run in
  let vi = victim_index env in
  let victim = env.table.RG.prefixes.(vi) in
  let attacker = IT.peer_asn 0 in
  let sessions = IT.sessions_of_as env.topo attacker in
  List.iteri
    (fun j (s : IT.session) ->
      let route =
        R.make ~path_id:(hijack_path_id + j)
          ~as_path:(Bgp.As_path.of_asns [ s.peer_as ])
          ~prefix:victim ~next_hop:s.neighbor ()
      in
      let c = Network.counters net s.router in
      c.Counters.hijacks_injected <- c.Counters.hijacks_injected + 1;
      Network.inject net ~router:s.router ~neighbor:s.neighbor route)
    sessions;
  Engine.quiesce run;
  let legit = legit_origins env.table in
  let d = Verify.Anomaly.detections (Verify.Anomaly.hijacks ~legit net) in
  Engine.set_detections run d;
  Engine.check run "hijack detected" (d > 0)
    "MOAS detector flagged %d finding%s for %s (attacker AS %d, %d peering \
     points)"
    d
    (if d = 1 then "" else "s")
    (Format.asprintf "%a" Netaddr.Prefix.pp victim)
    (Bgp.Asn.to_int attacker) (List.length sessions);
  List.iteri
    (fun j (s : IT.session) ->
      Network.withdraw net ~router:s.router ~neighbor:s.neighbor victim
        ~path_id:(hijack_path_id + j))
    sessions;
  Engine.quiesce run;
  let d2 = Verify.Anomaly.detections (Verify.Anomaly.hijacks ~legit net) in
  Engine.check run "clean after withdrawal" (d2 = 0)
    "%d residual MOAS findings" d2;
  Engine.check run "victim reachability restored"
    (Engine.coverage_holes run [| victim |] = 0)
    "every up router resolves the victim prefix again";
  Engine.finish run ~name:"hijack" ~scheme:scheme_label

(* ------------------------------------------------------------------ *)
(* 2. Route leak: the victim's legitimate routes go away (origin-side
   outage) and another peer AS re-exports a path it learned from a
   fellow peer — our AS picks the leaked path up as transit. *)

let leak env scheme_label =
  let run = baseline env scheme_label in
  let net = Engine.net run in
  let vi = victim_index env in
  let victim = env.table.RG.prefixes.(vi) in
  let entries = env.table.RG.routes.(vi) in
  let carried =
    List.filter_map (fun (e : RG.ebgp_route) -> R.neighbor_as e.route) entries
    |> List.sort_uniq Bgp.Asn.compare
  in
  let peers = all_peer_asns env in
  let leaker =
    match List.find_opt (fun a -> not (List.mem a carried)) peers with
    | Some a -> a
    | None -> List.hd peers
  in
  let template = (List.hd entries : RG.ebgp_route).route in
  let leaked_path = Bgp.As_path.prepend leaker (R.as_path template) in
  (* Origin-side outage: every legitimate route withdrawn. *)
  List.iter
    (fun (e : RG.ebgp_route) ->
      Network.withdraw net ~router:e.router ~neighbor:e.neighbor victim
        ~path_id:e.route.R.path_id)
    entries;
  Engine.quiesce run;
  let sessions = IT.sessions_of_as env.topo leaker in
  List.iteri
    (fun j (s : IT.session) ->
      let route =
        R.make ~path_id:(leak_path_id + j) ~as_path:leaked_path ~prefix:victim
          ~next_hop:s.neighbor ()
      in
      Network.inject net ~router:s.router ~neighbor:s.neighbor route)
    sessions;
  Engine.quiesce run;
  let d = Verify.Anomaly.detections (Verify.Anomaly.leaks ~peers net) in
  Engine.set_detections run d;
  Engine.check run "leak detected" (d > 0)
    "valley-free detector flagged %d finding%s (leaker AS %d)" d
    (if d = 1 then "" else "s")
    (Bgp.Asn.to_int leaker);
  Engine.check run "leaked path carries the traffic"
    (Engine.coverage_holes run [| victim |] = 0)
    "victim prefix reachable through the leak on every up router";
  (* Remediation: leak withdrawn, legitimate routes restored. *)
  List.iteri
    (fun j (s : IT.session) ->
      Network.withdraw net ~router:s.router ~neighbor:s.neighbor victim
        ~path_id:(leak_path_id + j))
    sessions;
  List.iter
    (fun (e : RG.ebgp_route) ->
      Network.inject net ~router:e.router ~neighbor:e.neighbor e.route)
    entries;
  Engine.quiesce run;
  let d2 = Verify.Anomaly.detections (Verify.Anomaly.leaks ~peers net) in
  Engine.check run "clean after remediation"
    (d2 = 0 && Engine.coverage_holes run [| victim |] = 0)
    "%d residual leak findings, victim reachable on legitimate paths" d2;
  Engine.finish run ~name:"leak" ~scheme:scheme_label

(* ------------------------------------------------------------------ *)
(* 3. Persistent flapping vs. RFC 2439 damping: three withdraw/announce
   cycles on a single-homed prefix push the session's penalty past the
   suppress threshold; the final announce is absorbed at the border
   (blanking the prefix network-wide) until the penalty decays below
   the reuse threshold, when the held route is reinstated. *)

let flap_damping env scheme_label =
  let run = baseline ~damping:Bgp.Damping.default env scheme_label in
  let net = Engine.net run in
  let si = single_route_index env in
  let victim = env.table.RG.prefixes.(si) in
  let e = (List.hd env.table.RG.routes.(si) : RG.ebgp_route) in
  for k = 1 to 3 do
    Network.withdraw net ~router:e.router ~neighbor:e.neighbor victim
      ~path_id:e.route.R.path_id;
    Engine.quiesce run;
    Network.inject net ~router:e.router ~neighbor:e.neighbor e.route;
    if k < 3 then Engine.quiesce run
    else
      (* Let the announce be absorbed without firing the reuse timer
         parked ~2 half-lives out. *)
      Engine.quiesce ~until:(now_of net + Time.sec 2) run
  done;
  let tot = Network.total_counters net in
  Engine.check run "flaps suppressed" (tot.Counters.routes_damped >= 1)
    "routes_damped=%d after 3 withdraw/announce cycles"
    tot.Counters.routes_damped;
  Engine.check run "suppressed route withheld"
    (Engine.coverage_holes run [| victim |] > 0)
    "single-homed prefix unresolved while its only route is damped";
  let suppressed_at = now_of net in
  Engine.quiesce run;
  Engine.check run "reinstated after reuse delay"
    (Engine.coverage_holes run [| victim |] = 0)
    "held route re-announced once the penalty decayed (%.0f s later)"
    (Time.to_sec (now_of net - suppressed_at));
  Engine.check run "reuse waited for decay"
    (now_of net - suppressed_at >= Time.minutes 10)
    "reuse fired %.0f s after suppression (default half-life 900 s)"
    (Time.to_sec (now_of net - suppressed_at));
  Engine.finish run ~name:"flap-damping" ~scheme:scheme_label

(* ------------------------------------------------------------------ *)
(* 4. Session reset under load: a two-minute churn trace runs while the
   busiest peering router is crashed and cold-restarted mid-trace; its
   eBGP feeds are re-injected after re-establishment (as real sessions
   would re-learn them) and the network must fully reconverge. *)

let session_reset env scheme_label =
  let run = baseline env scheme_label in
  let net = Engine.net run in
  let start = now_of net + Time.sec 1 in
  let tspec =
    TG.spec ~duration:(Time.minutes 2)
      ~events:(max 50 (env.spec.prefixes / 2))
      ~seed:(env.spec.seed + 101) ()
  in
  let events =
    TG.generate env.table tspec
    |> List.map (fun (ev : TG.event) -> { ev with TG.time = ev.TG.time + start })
  in
  TG.schedule net events;
  let target = busiest_peering_router env in
  Network.at_op net (start + Time.sec 30) (Network.Fail target);
  Network.at_op net (start + Time.sec 60) (Network.Recover target);
  let refeed = ref 0 in
  Array.iter
    (fun entries ->
      List.iter
        (fun (e : RG.ebgp_route) ->
          if e.router = target then begin
            incr refeed;
            Network.at_op net
              (start + Time.sec 70)
              (Network.Inject
                 { router = e.router; neighbor = e.neighbor; route = e.route })
          end)
        entries)
    env.table.RG.routes;
  Engine.quiesce run;
  let ann, wd = TG.action_count events in
  Engine.check run "full reconvergence"
    (Engine.coverage_holes run env.table.RG.prefixes = 0)
    "every up router resolves every prefix after %d announces / %d \
     withdrawals and a reset of router %d (%d feeds replayed)"
    ann wd target !refeed;
  Engine.check run "reset router rejoined"
    (Router.is_up (Network.router net target)
    && Router.ebgp_entries (Network.router net target) > 0)
    "router %d is up with %d eBGP entries re-learned" target
    (Router.ebgp_entries (Network.router net target));
  Engine.finish run ~name:"session-reset" ~scheme:scheme_label

(* ------------------------------------------------------------------ *)
(* 5. ARR failure with AP takeover: because clients advertise To_arr to
   every ARR of each covering AP (§2.3.3 — placement is free, state is
   replicated), crashing one ARR must leave its APs fully served by the
   survivors after the hold-timer purge. *)

let arr_failover env =
  let run = baseline env "abrr" in
  let net = Engine.net run in
  let s =
    match (Network.config net).Config.scheme with
    | Config.Abrr s -> s
    | _ -> assert false
  in
  if env.spec.arrs_per_ap < 2 then begin
    Engine.check run "redundant ARRs configured" false
      "arrs_per_ap=%d; the failover drill needs at least 2"
      env.spec.arrs_per_ap;
    Engine.finish run ~name:"arr-failover" ~scheme:"abrr"
  end
  else begin
    let victim_arr = List.hd s.Config.arrs.(0) in
    Array.iteri
      (fun _ap arrs ->
        if List.mem victim_arr arrs then
          match List.filter (fun r -> r <> victim_arr) arrs with
          | survivor :: _ ->
            let c = Network.counters net survivor in
            c.Counters.takeovers <- c.Counters.takeovers + 1
          | [] -> ())
      s.Config.arrs;
    (* ARRs are access routers and may themselves home customer eBGP
       sessions: a prefix fed only through the victim becomes genuinely
       unreachable when it dies (the border router is gone, not the
       reflection plane). The takeover check covers the rest. *)
    let fed_elsewhere =
      Array.of_list
        (List.filteri
           (fun i _ ->
             List.exists
               (fun (e : RG.ebgp_route) -> e.router <> victim_arr)
               env.table.RG.routes.(i))
           (Array.to_list env.table.RG.prefixes))
    in
    let orphaned = Array.length env.table.RG.prefixes - Array.length fed_elsewhere in
    Network.fail net ~router:victim_arr;
    Engine.quiesce run;
    let holes = Engine.coverage_holes run fed_elsewhere in
    let tot = Network.total_counters net in
    Engine.check run "survivors serve all APs" (holes = 0)
      "ARR %d down, %d AP takeover%s, %d unresolved (router,prefix) pairs \
       over %d prefixes (%d homed only at the dead router, excluded)"
      victim_arr tot.Counters.takeovers
      (if tot.Counters.takeovers = 1 then "" else "s")
      holes (Array.length fed_elsewhere) orphaned;
    Network.recover net ~router:victim_arr;
    (* The victim's own eBGP sessions re-learn their customer routes
       once they re-establish. *)
    List.iter
      (fun entries ->
        List.iter
          (fun (e : RG.ebgp_route) ->
            if e.router = victim_arr then
              Network.at_op net
                (now_of net + Time.sec 5)
                (Network.Inject
                   { router = e.router; neighbor = e.neighbor; route = e.route }))
          entries)
      (Array.to_list env.table.RG.routes);
    Engine.quiesce run;
    let p0 =
      let part = s.Config.partition in
      let arr = env.table.RG.prefixes in
      let rec go i =
        if i >= Array.length arr then arr.(0)
        else if Partition.prefix_in_ap part 0 arr.(i) then arr.(i)
        else go (i + 1)
      in
      go 0
    in
    Engine.check run "recovered ARR reflects again"
      (Engine.coverage_holes run env.table.RG.prefixes = 0
      && Router.reflector_set (Network.router net victim_arr) p0 <> [])
      "router %d rebuilt its reflector set from client replays" victim_arr;
    Engine.finish run ~name:"arr-failover" ~scheme:"abrr"
  end

(* ------------------------------------------------------------------ *)
(* 6. Live repartitioning: move one AP boundary on the running network.
   Consistent-hashing property — only prefixes inside the boundary's
   old→new delta range change ownership, so retirements are bounded by
   (prefixes in delta) x arrs_per_ap, and no router's best exit moves. *)

let repartition env =
  let run = baseline env "abrr" in
  let net = Engine.net run in
  let s =
    match (Network.config net).Config.scheme with
    | Config.Abrr s -> s
    | _ -> assert false
  in
  let old_part = s.Config.partition in
  let bounds = Partition.bounds old_part in
  let b1 = Netaddr.Ipv4.to_int bounds.(1) in
  let b2 =
    if Array.length bounds > 2 then Netaddr.Ipv4.to_int bounds.(2)
    else 0x1_0000_0000
  in
  let addr = Netaddr.Ipv4.of_int (b1 + ((b2 - b1) / 2)) in
  let new_part = Partition.move_boundary old_part ~index:1 ~addr in
  let lo, hi =
    match Partition.delta_range ~old:old_part ~now:new_part with
    | Some (lo, hi) -> (Netaddr.Ipv4.to_int lo, Netaddr.Ipv4.to_int hi)
    | None -> assert false
  in
  let touched, fully_moved =
    Array.fold_left
      (fun (t, f) p ->
        let first = Netaddr.Ipv4.to_int (Netaddr.Prefix.first p) in
        let last = Netaddr.Ipv4.to_int (Netaddr.Prefix.last p) in
        if last >= lo && first <= hi then
          (t + 1, if first >= lo && last <= hi then f + 1 else f)
        else (t, f))
      (0, 0) env.table.RG.prefixes
  in
  let before = Counters.copy (Network.total_counters net) in
  let n = Network.router_count net in
  let exits_before =
    Array.init n (fun i ->
        Array.map (Network.best_exit net ~router:i) env.table.RG.prefixes)
  in
  Network.repartition net ~partition:new_part ~arrs:s.Config.arrs;
  Engine.quiesce run;
  let moved =
    (Network.total_counters net).Counters.prefixes_moved_on_repartition
    - before.Counters.prefixes_moved_on_repartition
  in
  let bound = touched * env.spec.arrs_per_ap in
  Engine.check run "movement within consistent-hashing bound"
    (moved <= bound && (fully_moved = 0 || moved > 0))
    "%d ARR-prefix retirements for %d prefixes touching the delta range \
     (%d fully inside); bound %d"
    moved touched fully_moved bound;
  let exits_same = ref true in
  for i = 0 to n - 1 do
    Array.iteri
      (fun j p ->
        ignore p;
        if Network.best_exit net ~router:i env.table.RG.prefixes.(j)
           <> exits_before.(i).(j)
        then exits_same := false)
      env.table.RG.prefixes
  done;
  Engine.check run "best exits unchanged" !exits_same
    "repartitioning moved reflection responsibility, not routing";
  Engine.check run "full coverage after repartition"
    (Engine.coverage_holes run env.table.RG.prefixes = 0)
    "every up router resolves every prefix under the new partition";
  Engine.finish run ~name:"repartition" ~scheme:"abrr"

(* ------------------------------------------------------------------ *)
(* 7. §2.4 TBRR→ABRR migration: both schemes run side by side (Dual);
   the acceptance switch flips one AP at a time, and after every stage
   each router must still resolve every prefix — the zero-downtime
   criterion. *)

let migration env =
  let tbrr =
    match IT.tbrr_scheme env.topo with Config.Tbrr s -> s | _ -> assert false
  in
  let abrr =
    match
      IT.abrr_scheme ~aps:env.spec.aps ~arrs_per_ap:env.spec.arrs_per_ap
        env.topo
    with
    | Config.Abrr s -> s
    | _ -> assert false
  in
  let scheme =
    Config.Dual
      { tbrr; abrr; accept = Array.make env.spec.aps Config.Accept_tbrr }
  in
  let cfg =
    IT.config ~med_mode:Bgp.Decision.Always_compare ~mrai:env.spec.mrai
      ~proc_delay ~proc_jitter ~scheme env.topo
  in
  let net = Network.create ~seed:env.spec.seed cfg in
  RG.inject_all env.table net;
  let run = Engine.start net in
  Engine.quiesce run;
  Engine.check run "TBRR baseline converged"
    (Engine.coverage_holes run env.table.RG.prefixes = 0)
    "full coverage with every AP accepting TBRR routes";
  let stages_ok = ref true in
  let first_bad = ref "" in
  for ap = 0 to env.spec.aps - 1 do
    Network.set_acceptance net ~ap Config.Accept_abrr;
    Engine.quiesce run;
    let holes = Engine.coverage_holes run env.table.RG.prefixes in
    if holes > 0 && !stages_ok then begin
      stages_ok := false;
      first_bad := Printf.sprintf "AP %d cutover left %d holes" ap holes
    end
  done;
  Engine.check run "staged cutover hitless" !stages_ok "%s"
    (if !stages_ok then
       Printf.sprintf "%d per-AP cutovers, full coverage after each stage"
         env.spec.aps
     else !first_bad);
  let all_abrr = ref true in
  for ap = 0 to env.spec.aps - 1 do
    if Network.acceptance net ap <> Config.Accept_abrr then all_abrr := false
  done;
  Engine.check run "fully migrated" !all_abrr
    "every AP now accepts ABRR routes";
  Engine.finish run ~name:"migration" ~scheme:"dual"

(* ------------------------------------------------------------------ *)

let names =
  [
    "hijack";
    "leak";
    "flap-damping";
    "session-reset";
    "arr-failover";
    "repartition";
    "migration";
  ]

let scheme_specific = function
  | "arr-failover" | "repartition" | "migration" -> true
  | _ -> false

let run env ~scheme name =
  match name with
  | "hijack" -> hijack env scheme
  | "leak" -> leak env scheme
  | "flap-damping" -> flap_damping env scheme
  | "session-reset" -> session_reset env scheme
  | "arr-failover" -> arr_failover env
  | "repartition" -> repartition env
  | "migration" -> migration env
  | s -> invalid_arg ("Catalog.run: unknown scenario " ^ s)

let run_all ?only env ~scheme =
  let selected =
    match only with
    | None -> names
    | Some l ->
      List.iter
        (fun n ->
          if not (List.mem n names) then
            invalid_arg ("Catalog.run_all: unknown scenario " ^ n))
        l;
      List.filter (fun n -> List.mem n l) names
  in
  List.map (run env ~scheme) selected
