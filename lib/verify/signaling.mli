(** Signaling-graph completeness: every route source must be able to
    reach every router through the configured iBGP session graph.

    Scheme-specific structural conditions:
    - full mesh: complete by construction (membership only);
    - TBRR: every router belongs to a cluster, every client has a live
      reflector it can reach over the IGP, and the cluster hierarchy
      (cluster A above B when a TRR of B is a client of A) is acyclic —
      a cyclic hierarchy re-reflects updates indefinitely;
    - ABRR: every AP keeps at least one live, IGP-reachable ARR for
      every router (§2.3.3: placement is free, reachability is not);
    - confederations: the member sub-AS graph is connected, and warned
      about when cyclic (cyclic sub-AS graphs can oscillate);
    - RCP: at least one live control node reachable by every client.

    The IGP itself must be connected for any of the schemes to signal. *)

val find_cycle : n:int -> succ:(int -> int list) -> int list option
(** First directed cycle found as [v0; ...; v0], or [None]. *)

val check : ?live:(int -> bool) -> Abrr_core.Config.t -> Report.t
(** [live] defaults to every router up. *)
