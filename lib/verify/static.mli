(** The static analysis entry point: run every configuration check that
    does not require simulating — {!Ap_check} (partition soundness),
    {!Signaling} (session-graph completeness) and, when a workload's
    injections are supplied, {!Oscillation} and {!Deflection} (anomaly
    potential). *)

type workload = Oscillation.injection list

val analyze :
  ?live:(int -> bool) -> ?workload:workload -> Abrr_core.Config.t -> Report.t
(** [live] marks failed routers (default: all up); [workload] enables the
    per-prefix anomaly analyses and the prefix-to-AP mapping checks. *)

val analyze_gadget : Abrr_core.Gadgets.t -> Report.t
(** Analyze a canonical anomaly scenario: its configuration with its
    injections as the workload. *)

val lint : ?live:(int -> bool) -> ?workload:workload -> Abrr_core.Config.t -> Report.t
(** The unified lint pipeline behind [abrr_sim lint]: the structural
    checks of {!analyze} plus the symbolic {!Propagation} analysis —
    convergence, visibility, suboptimal exits and forwarding loops are
    derived from the propagation fixpoint instead of the per-scheme
    {!Oscillation}/{!Deflection} games, which lets the pipeline run at
    paper scale (1000+ routers). *)

val lint_solved :
  ?live:(int -> bool) ->
  ?workload:workload ->
  Abrr_core.Config.t ->
  Propagation.t * Report.t
(** {!lint}, also returning the underlying propagation result so callers
    can read solver statistics or apply what-if {!Propagation.delta}s
    without re-solving. *)

exception Static_failure of string

val assert_ok : Report.t -> unit
(** @raise Static_failure with the rendered report if any check failed. *)
