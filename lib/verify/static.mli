(** The static analysis entry point: run every configuration check that
    does not require simulating — {!Ap_check} (partition soundness),
    {!Signaling} (session-graph completeness) and, when a workload's
    injections are supplied, {!Oscillation} and {!Deflection} (anomaly
    potential). *)

type workload = Oscillation.injection list

val analyze :
  ?live:(int -> bool) -> ?workload:workload -> Abrr_core.Config.t -> Report.t
(** [live] marks failed routers (default: all up); [workload] enables the
    per-prefix anomaly analyses and the prefix-to-AP mapping checks. *)

val analyze_gadget : Abrr_core.Gadgets.t -> Report.t
(** Analyze a canonical anomaly scenario: its configuration with its
    injections as the workload. *)

exception Static_failure of string

val assert_ok : Report.t -> unit
(** @raise Static_failure with the rendered report if any check failed. *)
