module Config = Abrr_core.Config
module Gadgets = Abrr_core.Gadgets

type workload = Oscillation.injection list

let validate_finding (config : Config.t) =
  match Config.validate config with
  | Ok () -> Report.pass "config.validate" "structural validation passed"
  | Error e -> Report.fail ~code:"CFG-INVALID" "config.validate" "%s" e

let ap_findings ?live ?(workload = []) (config : Config.t) =
  let run (s : Config.abrr_spec) =
    Ap_check.check ?live
      ~prefixes:(Oscillation.prefixes workload)
      ~n_routers:config.n_routers s.partition s.arrs
  in
  match config.scheme with
  | Config.Abrr s -> run s
  | Config.Dual { abrr; _ } -> run abrr
  | Config.Full_mesh | Config.Tbrr _ | Config.Confed _ | Config.Rcp _ -> []

let analyze ?live ?workload (config : Config.t) =
  let anomalies =
    match workload with
    | None -> []
    | Some w -> Oscillation.check config w @ Deflection.check config w
  in
  (validate_finding config :: ap_findings ?live ?workload config)
  @ Signaling.check ?live config
  @ anomalies

let analyze_gadget (g : Gadgets.t) =
  analyze ~workload:g.Gadgets.injections g.Gadgets.config

let lint_solved ?live ?(workload = []) (config : Config.t) =
  let structural =
    (validate_finding config :: ap_findings ?live ~workload config)
    @ Signaling.check ?live config
  in
  let t = Propagation.solve ?live config workload in
  (t, structural @ Propagation.findings t)

let lint ?live ?workload (config : Config.t) =
  snd (lint_solved ?live ?workload config)

exception Static_failure of string

let assert_ok report =
  if not (Report.ok report) then raise (Static_failure (Report.render report))
