open Abrr_core
module R = Bgp.Route
module Prefix = Netaddr.Prefix

(* Fold [f] over every up router's (prefix, best route) pairs. *)
let fold_bests net f acc =
  let acc = ref acc in
  for i = 0 to Network.router_count net - 1 do
    let r = Network.router net i in
    if Router.is_up r then
      List.iter
        (fun p ->
          match Router.best r p with
          | Some route -> acc := f !acc i p route
          | None -> ())
        (Router.known_prefixes r)
  done;
  !acc

(* (prefix, asn) -> number of routers whose best route offends. *)
let bump tbl p asn =
  let key = (Prefix.to_key p, Bgp.Asn.to_int asn) in
  Hashtbl.replace tbl key
    (match Hashtbl.find_opt tbl key with
    | Some (_, n) -> (p, n + 1)
    | None -> (p, 1))

let render check code what tbl total =
  if Hashtbl.length tbl = 0 then
    [ Report.pass check "%d best routes scanned, none %s" total what ]
  else
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun ((_, asn), (p, n)) ->
           Report.fail ~code check "%s %s AS %d on %d router%s"
             (Format.asprintf "%a" Prefix.pp p)
             what asn n
             (if n = 1 then "" else "s"))

let hijacks ~legit net =
  let tbl = Hashtbl.create 16 in
  let total =
    fold_bests net
      (fun total _ p route ->
        (match Bgp.As_path.origin_as (R.as_path route) with
        | Some o ->
          let ok = match legit p with [] -> true | l -> List.mem o l in
          if not ok then bump tbl p o
        | None -> ());
        total + 1)
      0
  in
  render "anomaly.hijack" "HIJACK-MOAS" "originated by rogue" tbl total

let leaks ~peers net =
  let tbl = Hashtbl.create 16 in
  let total =
    fold_bests net
      (fun total _ p route ->
        let path = R.as_path route in
        let traversed =
          List.filter (fun asn -> Bgp.As_path.contains asn path) peers
        in
        (match traversed with
        | _ :: leaker :: _ ->
          (* >= 2 peer ASes on one path: the leftmost re-exported a
             route it learned from another peer. Attribute the finding
             to the AS nearer the origin — the leaked-through one. *)
          ignore leaker;
          (match Bgp.As_path.first_as path with
          | Some first when List.mem first traversed -> bump tbl p first
          | _ -> bump tbl p (List.hd traversed))
        | _ -> ());
        total + 1)
      0
  in
  render "anomaly.leak" "LEAK-TRANSIT" "leaked through peer" tbl total

let detections report = List.length (Report.failures report)
