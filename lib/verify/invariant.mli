(** Runtime invariants over a live simulation.

    Three families of assertions, checked only on routers that are up
    and {e idle} (empty input queue, no processing batch pending — the
    only moments the event model guarantees Loc-RIB/Adj-RIB-In
    consistency):

    - {b RIB consistency}: {!Abrr_core.Router.best} equals an
      independent re-run of the decision process over the stored
      Adj-RIB-Ins ({!Abrr_core.Router.recomputed_best});
    - {b reflection conformance}: every route in an ARR's advertised
      set carries the §2.3.2 loop-prevention attribute the scheme is
      configured for (reflected bit or non-empty CLUSTER_LIST) plus an
      ORIGINATOR_ID, only ARRs advertise reflector sets, and no
      router's best route claims the router itself as originator;
    - {b partition respect}: an ARR only reflects prefixes overlapping
      its own APs ({!Abrr_core.Partition.prefix_in_ap}).

    [install] wires a spot-check into the event loop via
    {!Eventsim.Sim.set_probe}: every [every] events one router is
    checked on a rotating window of its prefixes, cheap enough to leave
    on for whole experiment suites. [check_now] is the exhaustive sweep
    for after quiescence. *)

exception Violation of string

val check_router :
  ?max_prefixes:int -> ?offset:int -> Abrr_core.Network.t -> int -> unit
(** Check one router (skipped when down or not idle), over at most
    [max_prefixes] known prefixes starting at [offset] (defaults: all,
    0). @raise Violation on the first broken invariant. *)

val check_now : Abrr_core.Network.t -> unit
(** Exhaustive: every router, every prefix. @raise Violation *)

val default_every : int

val install : ?every:int -> Abrr_core.Network.t -> unit
(** Probe the network's simulator every [every] (default
    {!default_every}) events, spot-checking one router per probe. *)

val uninstall : Abrr_core.Network.t -> unit
