type severity = Pass | Warn | Fail

type finding = {
  check : string;
  code : string;
  severity : severity;
  detail : string;
}

type t = finding list

let default_code = function Pass -> "OK" | Warn -> "WARN" | Fail -> "FAIL"

let finding ?code severity check fmt =
  let code = match code with Some c -> c | None -> default_code severity in
  Printf.ksprintf (fun detail -> { check; code; severity; detail }) fmt

let pass ?code check fmt = finding ?code Pass check fmt
let warn ?code check fmt = finding ?code Warn check fmt
let fail ?code check fmt = finding ?code Fail check fmt

let ok t = not (List.exists (fun f -> f.severity = Fail) t)
let clean t = List.for_all (fun f -> f.severity = Pass) t
let failures t = List.filter (fun f -> f.severity = Fail) t
let count s t = List.length (List.filter (fun f -> f.severity = s) t)

let by_code code t = List.filter (fun f -> f.code = code) t

let severity_string = function
  | Pass -> "pass"
  | Warn -> "WARN"
  | Fail -> "FAIL"

let pp_severity fmt s = Format.pp_print_string fmt (severity_string s)

let summary t =
  Printf.sprintf "%d checks: %d pass, %d warn, %d FAIL" (List.length t)
    (count Pass t) (count Warn t) (count Fail t)

let render t =
  let rows =
    List.map
      (fun f -> [ f.check; f.code; severity_string f.severity; f.detail ])
      t
  in
  Metrics.Table.render
    ~align:
      [ Metrics.Table.Left; Metrics.Table.Left; Metrics.Table.Left;
        Metrics.Table.Left ]
    ~header:[ "check"; "code"; "verdict"; "detail" ]
    rows
  ^ "\n" ^ summary t ^ "\n"

let pp fmt t = Format.pp_print_string fmt (render t)

let to_json t =
  let open Metrics.Emit in
  Obj
    [
      ( "summary",
        Obj
          [
            ("checks", Int (List.length t));
            ("pass", Int (count Pass t));
            ("warn", Int (count Warn t));
            ("fail", Int (count Fail t));
            ("ok", Bool (ok t));
          ] );
      ( "findings",
        Arr
          (List.map
             (fun f ->
               Obj
                 [
                   ("check", Str f.check);
                   ("code", Str f.code);
                   ("severity", Str (severity_string f.severity));
                   ("detail", Str f.detail);
                 ])
             t) );
    ]
