type severity = Pass | Warn | Fail

type finding = { check : string; severity : severity; detail : string }

type t = finding list

let finding severity check fmt =
  Printf.ksprintf (fun detail -> { check; severity; detail }) fmt

let pass check fmt = finding Pass check fmt
let warn check fmt = finding Warn check fmt
let fail check fmt = finding Fail check fmt

let ok t = not (List.exists (fun f -> f.severity = Fail) t)
let clean t = List.for_all (fun f -> f.severity = Pass) t
let failures t = List.filter (fun f -> f.severity = Fail) t
let count s t = List.length (List.filter (fun f -> f.severity = s) t)

let severity_string = function
  | Pass -> "pass"
  | Warn -> "WARN"
  | Fail -> "FAIL"

let pp_severity fmt s = Format.pp_print_string fmt (severity_string s)

let summary t =
  Printf.sprintf "%d checks: %d pass, %d warn, %d FAIL" (List.length t)
    (count Pass t) (count Warn t) (count Fail t)

let render t =
  let rows =
    List.map (fun f -> [ f.check; severity_string f.severity; f.detail ]) t
  in
  Metrics.Table.render
    ~align:[ Metrics.Table.Left; Metrics.Table.Left; Metrics.Table.Left ]
    ~header:[ "check"; "verdict"; "detail" ]
    rows
  ^ "\n" ^ summary t ^ "\n"

let pp fmt t = Format.pp_print_string fmt (render t)
