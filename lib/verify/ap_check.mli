(** AP soundness (§2.1): the address partition must cover the full IPv4
    space with pairwise-disjoint contiguous ranges, and every prefix of
    the workload must map to at least one AP whose ARR set is non-empty
    and alive.

    The coverage checks run over raw [(lo, hi)] ranges so that malformed
    configurations (gaps, overlaps) — which {!Abrr_core.Partition} refuses
    to construct — can still be expressed and flagged, e.g. when auditing
    a hand-written router configuration rather than a simulator object.
    Prefix-to-AP mapping is done through a {!Netaddr.Prefix_trie} built
    from the CIDR decomposition of each range, and cross-validated
    against {!Abrr_core.Partition.aps_of_prefix}. *)

open Netaddr

type range = Ipv4.t * Ipv4.t
(** Inclusive [lo, hi] address range of one AP. *)

val ranges_of_partition : Abrr_core.Partition.t -> range list

val cidrs_of_range : range -> Prefix.t list
(** Minimal CIDR decomposition of an inclusive range (at most 62
    prefixes for any IPv4 range). @raise Invalid_argument if [hi < lo]. *)

val to_trie : range list -> int Prefix_trie.t
(** Map every CIDR block of every range to its AP index (ranges are
    indexed in list order). Later ranges overwrite on exact-block
    collision — run {!coverage} first to reject overlaps. *)

val owners : int Prefix_trie.t -> Prefix.t -> int list
(** All AP indices whose range overlaps the prefix, ascending. *)

val coverage : range list -> Report.t
(** Full-space cover, no gaps, no overlaps, every range non-empty. *)

val check :
  ?live:(int -> bool) ->
  ?prefixes:Prefix.t list ->
  n_routers:int ->
  Abrr_core.Partition.t ->
  int list array ->
  Report.t
(** The full AP-soundness pass over a partition and its per-AP ARR
    assignment: coverage, ARR non-emptiness / range / liveness /
    redundancy, and — when a workload's [prefixes] are given — the
    prefix-to-AP mapping through the trie, cross-checked against
    [Partition.aps_of_prefix]. [live] defaults to everyone up. *)
