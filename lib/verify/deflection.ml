open Netaddr
module Config = Abrr_core.Config
module Partition = Abrr_core.Partition
module D = Bgp.Decision
module Route = Bgp.Route
module O = Oscillation

let borders ~prefix injections =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun (b, _, (r : Route.t)) ->
         if Prefix.compare r.Route.prefix prefix = 0 then Some b else None)
       injections)

(* Best route at router [r] given its own eBGP candidates plus iBGP
   adverts [(peer, route)], costed from [r]'s row of the IGP matrix. *)
let best_at (config : Config.t) ~dist ~own ~ibgp r =
  let cands =
    own
    @ List.filter_map
        (fun (peer, route) ->
          if peer = r then None
          else
            Some
              (D.candidate ~learned:D.Ibgp ~peer_id:(Config.loopback peer)
                 ~igp_cost:
                   (match Config.router_of_loopback config (Route.next_hop route) with
                   | Some o -> dist.(r).(o)
                   | None -> 0)
                 route))
        ibgp
  in
  D.best ~med_mode:config.med_mode cands

let exit_of (config : Config.t) r (route : Route.t) =
  match Config.router_of_loopback config (Route.next_hop route) with
  | Some o -> o
  | None -> r

let exits_from_ibgp (config : Config.t) ~dist ~prefix injections ibgp_of =
  Array.init config.n_routers (fun r ->
      let own = O.own_candidates ~prefix injections r in
      Option.map
        (fun (c : D.candidate) -> exit_of config r c.D.route)
        (best_at config ~dist ~own ~ibgp:(ibgp_of r) r))

let full_mesh_exits (config : Config.t) ~dist ~prefix injections =
  let adverts =
    List.filter_map
      (fun b ->
        Option.map
          (fun route -> (b, route))
          (O.border_advert ~med_mode:config.med_mode ~prefix injections b))
      (borders ~prefix injections)
  in
  exits_from_ibgp config ~dist ~prefix injections (fun _ -> adverts)

let abrr_exits (config : Config.t) ~dist ~prefix injections =
  (* ARRs reflect the best AS-level routes of the AP to everyone. *)
  let advert_cands =
    List.filter_map
      (fun b ->
        Option.map
          (fun route -> D.candidate ~learned:D.Ibgp route)
          (O.border_advert ~med_mode:config.med_mode ~prefix injections b))
      (borders ~prefix injections)
  in
  let reflected =
    D.steps_1_to_4 ~med_mode:config.med_mode advert_cands
    |> List.filter_map (fun (c : D.candidate) ->
           Option.map
             (fun o -> (o, c.D.route))
             (Config.router_of_loopback config (Route.next_hop c.D.route)))
  in
  exits_from_ibgp config ~dist ~prefix injections (fun _ -> reflected)

let tbrr_exits (config : Config.t) (s : Config.tbrr_spec) ~dist ~prefix
    injections =
  match O.tbrr_views config s ~prefix injections with
  | `Oscillates -> `Oscillates
  | `Views views ->
    let view_of r =
      List.find_opt (fun (v : O.tbrr_view) -> v.trr_router = r) views
    in
    `Exits
      (Array.init config.n_routers (fun r ->
           match view_of r with
           | Some v -> Option.map (exit_of config r) v.own_best
           | None ->
             let ibgp =
               List.concat_map
                 (fun (c : Config.cluster) ->
                   if not (List.mem r c.clients) then []
                   else
                     List.concat_map
                       (fun t ->
                         match view_of t with
                         | None -> []
                         | Some v ->
                           List.map (fun route -> (t, route)) v.to_clients)
                       c.trrs)
                 s.clusters
             in
             let own = O.own_candidates ~prefix injections r in
             Option.map
               (fun (c : D.candidate) -> exit_of config r c.D.route)
               (best_at config ~dist ~own ~ibgp r)))

let exits (config : Config.t) ~dist ~prefix injections =
  match config.scheme with
  | Config.Full_mesh | Config.Rcp _ ->
    `Exits (full_mesh_exits config ~dist ~prefix injections)
  | Config.Abrr _ -> `Exits (abrr_exits config ~dist ~prefix injections)
  | Config.Tbrr s -> tbrr_exits config s ~dist ~prefix injections
  | Config.Confed _ ->
    `Not_analyzed "confederation forwarding is not modeled statically"
  | Config.Dual { tbrr; abrr; accept } -> (
    match Partition.aps_of_prefix abrr.partition prefix with
    | [ ap ] -> (
      match accept.(ap) with
      | Config.Accept_abrr -> `Exits (abrr_exits config ~dist ~prefix injections)
      | Config.Accept_tbrr -> tbrr_exits config tbrr ~dist ~prefix injections)
    | _ ->
      `Not_analyzed
        "prefix spans APs with mixed acceptance; forwarding not modeled")

let find_loop (config : Config.t) exits =
  let n = config.n_routers in
  let next_on_path src dst =
    match Igp.Spf.path config.igp ~src ~dst with
    | Some (_ :: nxt :: _) -> Some nxt
    | _ -> None
  in
  let rec follow visited cur =
    match exits.(cur) with
    | None -> None
    | Some e when e = cur -> None
    | Some e -> (
      match next_on_path cur e with
      | None -> None
      | Some nxt ->
        if List.mem nxt visited then Some (List.rev (nxt :: visited))
        else follow (nxt :: visited) nxt)
  in
  let rec try_all r =
    if r >= n then None
    else match follow [ r ] r with Some l -> Some l | None -> try_all (r + 1)
  in
  try_all 0

let pp_walk l = String.concat " -> " (List.map (Printf.sprintf "r%d") l)

let per_prefix (config : Config.t) ~dist injections p =
  let pstr = Prefix.to_string p in
  match exits config ~dist ~prefix:p injections with
  | `Not_analyzed why -> [ Report.warn ~code:"FWD-UNRESOLVED" "anomaly.deflection" "%s: %s" pstr why ]
  | `Oscillates ->
    [
      Report.warn ~code:"FWD-UNRESOLVED" "anomaly.deflection"
        "%s: forwarding analysis skipped (mesh adverts oscillate)" pstr;
    ]
  | `Exits ex ->
    let reference = full_mesh_exits config ~dist ~prefix:p injections in
    let deflected = ref [] in
    Array.iteri
      (fun r e ->
        match (e, reference.(r)) with
        | Some got, Some want when got <> want ->
          deflected := (r, got, want) :: !deflected
        | _ -> ())
      ex;
    let deflection_finding =
      match List.rev !deflected with
      | [] ->
        Report.pass "anomaly.deflection"
          "%s: every router's exit matches the full-visibility reference" pstr
      | (r, got, want) :: _ ->
        Report.warn ~code:"FWD-DEFLECT" "anomaly.deflection"
          "%s: %d routers deflected from their preferred exit (e.g. r%d uses \
           r%d, would pick r%d)"
          pstr (List.length !deflected) r got want
    in
    let loop_finding =
      match find_loop config ex with
      | None ->
        Report.pass "anomaly.fwd-loop" "%s: hop-by-hop forwarding is loop-free"
          pstr
      | Some walk ->
        Report.fail ~code:"FWD-LOOP" "anomaly.fwd-loop"
          "%s: deflections form a forwarding loop: %s" pstr (pp_walk walk)
    in
    [ deflection_finding; loop_finding ]

let check (config : Config.t) injections =
  match O.prefixes injections with
  | [] ->
    [ Report.warn ~code:"FWD-NO-WORKLOAD" "anomaly.deflection" "no injected routes: nothing to analyze" ]
  | ps ->
    let dist = Igp.Spf.all_pairs config.igp in
    List.concat_map (per_prefix config ~dist injections) ps
