(** Diagnostic report assembled by the static analyzer and the runtime
    invariant checker: a flat list of findings, each attributed to a
    named check and carrying a stable machine-readable code, rendered as
    a {!Metrics.Table} or as JSON (for [abrr_sim check --json] /
    [abrr_sim lint --json]). *)

type severity = Pass | Warn | Fail

type finding = {
  check : string;
  code : string;
  severity : severity;
  detail : string;
}
(** [check] is a dotted identifier, e.g. ["ap.coverage"] or
    ["signaling.tbrr-hierarchy"]. [code] is a stable SCREAMING-KEBAB
    identifier such as ["AP-GAP"], ["SIG-UNREACH"] or ["OSC-MED"];
    passing findings use ["OK"]. Codes are part of the tool's output
    contract — renaming one is a breaking change. *)

type t = finding list

val pass : ?code:string -> string -> ('a, unit, string, finding) format4 -> 'a
val warn : ?code:string -> string -> ('a, unit, string, finding) format4 -> 'a
val fail : ?code:string -> string -> ('a, unit, string, finding) format4 -> 'a
(** [fail ~code check fmt ...] builds one finding with a formatted
    detail. When [code] is omitted it defaults to ["OK"] / ["WARN"] /
    ["FAIL"] by severity. *)

val ok : t -> bool
(** No [Fail] finding. [Warn]s do not fail a report. *)

val clean : t -> bool
(** Neither [Fail] nor [Warn]. *)

val failures : t -> finding list
val count : severity -> t -> int

val by_code : string -> t -> finding list
(** All findings carrying a given stable code. *)

val summary : t -> string
(** e.g. ["11 checks: 9 pass, 1 warn, 1 FAIL"]. *)

val render : t -> string
(** Monospace table of every finding plus the summary line. *)

val to_json : t -> Metrics.Emit.json
(** [{"summary": {...}, "findings": [{check; code; severity; detail}]}] —
    the machine-readable form behind [--json]. *)

val pp : Format.formatter -> t -> unit
val pp_severity : Format.formatter -> severity -> unit
