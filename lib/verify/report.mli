(** Diagnostic report assembled by the static analyzer and the runtime
    invariant checker: a flat list of findings, each attributed to a
    named check, rendered as a {!Metrics.Table}. *)

type severity = Pass | Warn | Fail

type finding = { check : string; severity : severity; detail : string }
(** [check] is a dotted identifier, e.g. ["ap.coverage"] or
    ["signaling.tbrr-hierarchy"]. *)

type t = finding list

val pass : string -> ('a, unit, string, finding) format4 -> 'a
val warn : string -> ('a, unit, string, finding) format4 -> 'a
val fail : string -> ('a, unit, string, finding) format4 -> 'a
(** [fail check fmt ...] builds one finding with a formatted detail. *)

val ok : t -> bool
(** No [Fail] finding. [Warn]s do not fail a report. *)

val clean : t -> bool
(** Neither [Fail] nor [Warn]. *)

val failures : t -> finding list
val count : severity -> t -> int

val summary : t -> string
(** e.g. ["11 checks: 9 pass, 1 warn, 1 FAIL"]. *)

val render : t -> string
(** Monospace table of every finding plus the summary line. *)

val pp : Format.formatter -> t -> unit
val pp_severity : Format.formatter -> severity -> unit
