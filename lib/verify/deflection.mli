(** Static forwarding analysis (§2.3.3): deflections and loop potential.

    From the stable outcome of the {!Oscillation} mesh game, every
    router's egress choice is computed per prefix and compared against
    the full-mesh reference (what the router would pick with complete
    visibility). A mismatch is a {e deflection} — the reflector steered
    the client to the reflector's preferred exit, the paper's path
    inefficiency. Packets are then walked hop-by-hop along IGP shortest
    paths, re-deciding at every hop with that hop's egress choice; a
    revisited router is a forwarding loop (possible with inconsistent
    egress choices in cluster-based RR configurations) and fails the
    check. ABRR and full mesh provably agree with the reference, so both
    checks pass by construction there. *)

val exits :
  Abrr_core.Config.t ->
  dist:int array array ->
  prefix:Netaddr.Prefix.t ->
  Oscillation.injection list ->
  [ `Exits of int option array | `Oscillates | `Not_analyzed of string ]
(** Per-router egress router for [prefix] under the configured scheme
    ([None]: no route). [dist] is the {!Igp.Spf.all_pairs} matrix of the
    configuration's IGP. *)

val full_mesh_exits :
  Abrr_core.Config.t ->
  dist:int array array ->
  prefix:Netaddr.Prefix.t ->
  Oscillation.injection list ->
  int option array
(** The reference: egress choices under full visibility. *)

val find_loop : Abrr_core.Config.t -> int option array -> int list option
(** Walk every router's packet along IGP shortest paths toward the
    current hop's egress; the first revisited-router walk, if any. *)

val check : Abrr_core.Config.t -> Oscillation.injection list -> Report.t
