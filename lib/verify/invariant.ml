open Netaddr
module Config = Abrr_core.Config
module Network = Abrr_core.Network
module Router = Abrr_core.Router
module Partition = Abrr_core.Partition
module R = Bgp.Route

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let abrr_spec (config : Config.t) =
  match config.scheme with
  | Config.Abrr s | Config.Dual { abrr = s; _ } -> Some s
  | Config.Full_mesh | Config.Tbrr _ | Config.Confed _ | Config.Rcp _ -> None

let rotated_window ~max_prefixes ~offset l =
  let len = List.length l in
  if len <= max_prefixes then l
  else
    let start = offset mod len in
    List.filteri
      (fun i _ ->
        let d = (i - start + len) mod len in
        d < max_prefixes)
      l

let pp_route = function
  | None -> "(none)"
  | Some r -> Format.asprintf "%a" R.pp r

let check_prefix ~spec router i p =
  (* RIB consistency: stored best = independent re-decision. *)
  let stored = Router.best router p in
  let fresh = Router.recomputed_best router p in
  if not (Option.equal R.same_path stored fresh) then
    violation
      "r%d %s: Loc-RIB best diverges from re-run decision: stored %s, \
       recomputed %s"
      i (Prefix.to_string p) (pp_route stored) (pp_route fresh);
  (* Best-route loop hygiene: never our own reflected route. *)
  (match stored with
  | Some b when R.originator_id b = Some (Router.loopback router) ->
    violation "r%d %s: best route has ourselves as ORIGINATOR_ID" i
      (Prefix.to_string p)
  | _ -> ());
  (* Reflection-rule conformance + partition respect. *)
  let set = Router.reflector_set router p in
  if set <> [] then begin
    if not (Router.is_arr router) then
      violation "r%d %s: non-ARR router advertises a reflector set" i
        (Prefix.to_string p);
    (match spec with
    | None ->
      violation "r%d %s: reflector set present without an ABRR scheme" i
        (Prefix.to_string p)
    | Some (s : Config.abrr_spec) ->
      List.iter
        (fun (route : R.t) ->
          (match s.loop_prevention with
          | Config.Reflected_bit ->
            if not (R.is_reflected route) then
              violation "r%d %s: reflected route lacks the reflected bit" i
                (Prefix.to_string p)
          | Config.Cluster_list ->
            if R.cluster_list route = [] then
              violation "r%d %s: reflected route has an empty CLUSTER_LIST" i
                (Prefix.to_string p));
          if R.originator_id route = None then
            violation "r%d %s: reflected route lacks an ORIGINATOR_ID" i
              (Prefix.to_string p))
        set;
      let aps = Router.arr_aps router in
      if
        not (List.exists (fun ap -> Partition.prefix_in_ap s.partition ap p) aps)
      then
        violation
          "r%d %s: reflector set for a prefix outside the router's APs (%s)" i
          (Prefix.to_string p)
          (String.concat "," (List.map string_of_int aps)))
  end

let check_router ?max_prefixes ?(offset = 0) net i =
  let router = Network.router net i in
  if Router.is_up router && Router.idle router then begin
    let spec = abrr_spec (Network.config net) in
    let prefixes = Router.known_prefixes router in
    let prefixes =
      match max_prefixes with
      | None -> prefixes
      | Some max_prefixes -> rotated_window ~max_prefixes ~offset prefixes
    in
    List.iter (check_prefix ~spec router i) prefixes
  end

let check_now net =
  for i = 0 to Network.router_count net - 1 do
    check_router net i
  done

let default_every = 50_000
let spot_prefixes = 64

let install ?(every = default_every) net =
  let cursor = ref 0 in
  Eventsim.Sim.set_probe (Network.sim net) ~every (fun () ->
      let n = Network.router_count net in
      if n > 0 then begin
        let i = !cursor mod n in
        let round = !cursor / n in
        incr cursor;
        check_router ~max_prefixes:spot_prefixes
          ~offset:(round * spot_prefixes)
          net i
      end)

let uninstall net = Eventsim.Sim.clear_probe (Network.sim net)
