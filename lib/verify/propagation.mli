(** Symbolic route propagation: a static dataflow analysis over the iBGP
    signaling graph.

    Each router is a dataflow node whose abstract state is the set of
    route classes it currently advertises on each signaling channel
    (client advert, TRR reflection sets, ARR best-AS-level set, RCP
    per-client picks, confed exports). A route class is a concrete
    {!Bgp.Route.t} as transmitted on the wire — NEXT_HOP identifies the
    egress point, the remaining attributes form the attribute class — so
    the abstract domain is exactly the simulator's message space and the
    per-scheme transfer functions can mirror
    {!Abrr_core.Router}'s export/reflection logic verbatim (same
    derivations, same RFC 4456 / §2.3.2 / RFC 5065 loop filters, same
    split-horizon rules, same decision kernel). The solver runs
    Gauss–Seidel chaotic iteration to a fixpoint; a revisited global
    state is a dispute cycle (the static analogue of
    {!Oscillation}'s mesh game, extended to every scheme), reported as
    {!Diverged}.

    On top of the fixpoint the module computes, per router and prefix:
    the {e learnable route classes} (every class the router's decision
    process can see, eligible or not), the delivered iBGP routes (what
    its Adj-RIB-Ins would hold at quiescence), its best route and egress
    choice — and compares them against the full-visibility reference
    (the best AS-level routes over all border adverts, and the
    full-mesh egress assignment) for static visibility, suboptimal-exit
    and deflection findings.

    The what-if {!delta} API re-solves incrementally: a link or router
    failure recomputes only the SPF rows whose shortest paths used the
    failed element and restarts the worklist from the affected nodes; an
    ARR failure or repartition re-solves only the prefixes whose
    covering APs / serving ARRs changed, reusing every other prefix's
    fixpoint unchanged. *)

open Netaddr

type injection = Oscillation.injection

type workload = injection list

type verdict =
  | Converged of { rounds : int }
  | Diverged of { period : int; start : int }
      (** the global advert state revisits round [start] every [period]
          rounds: a dispute cycle, no fixpoint under this activation
          order *)
  | Unresolved of string  (** iteration budget exhausted *)
  | Unsupported of string  (** scheme or configuration not analyzable *)

type stats = {
  node_evals : int;
      (** transfer-function evaluations performed (the solver's work
          measure — what the incremental path must beat) *)
  spf_rows : int;  (** SPF single-source computations *)
  prefixes_solved : int;
  prefixes_reused : int;
      (** prefixes whose previous fixpoint survived a delta untouched *)
}

type t

val solve : ?live:(int -> bool) -> Abrr_core.Config.t -> workload -> t
(** Solve the propagation fixpoint for every prefix of the workload.
    [live] masks failed routers (their injections, adverts and transit
    capacity disappear); default: everyone up. *)

val config : t -> Abrr_core.Config.t
val workload : t -> workload
val stats : t -> stats

val prefixes : t -> Prefix.t list

val verdict : t -> Prefix.t -> verdict

val learnable : t -> Prefix.t -> router:int -> Bgp.Route.t list
(** The router's learnable route classes for the prefix: every class its
    decision process receives (own eBGP routes included, IGP-ineligible
    ones included), normalized — path-id and reflection attributes
    stripped, NEXT_HOP preserved as the egress identity — and sorted.
    Empty on non-[Converged] prefixes. *)

val delivered : t -> Prefix.t -> router:int -> (int * Bgp.Route.t) list
(** iBGP routes the router holds at the fixpoint, as (sender, route)
    pairs in ascending sender order — the static mirror of
    {!Abrr_core.Router.received_set} over all senders (path-ids are 0;
    the simulator allocates real ones). *)

val best_route : t -> Prefix.t -> router:int -> Bgp.Route.t option

val exits : t -> Prefix.t -> int option array
(** Per-router egress router under the scheme ([None]: no route;
    borders using their own eBGP route exit at themselves). *)

val reference_exits : t -> Prefix.t -> int option array
(** The full-visibility reference ({!Deflection.full_mesh_exits} on the
    same masked topology). *)

val reference_classes : t -> Prefix.t -> Bgp.Route.t list
(** The best AS-level routes over all live border adverts — the classes
    every router learns under full mesh or ABRR (normalized, sorted). *)

val class_count : t -> int
(** Total learnable classes across routers and prefixes (scale metric). *)

(** {1 What-if deltas} *)

type delta =
  | Fail_link of int * int
  | Fail_router of int
  | Fail_arr of int  (** ABRR only: remove the router from every AP *)
  | Repartition of Abrr_core.Partition.t  (** ABRR only: new boundaries *)

val apply_delta : t -> delta -> (t, string) result
(** Re-solve incrementally from a previous result. The returned [stats]
    count only the delta's own work. [Error] on malformed deltas
    (unknown link, dead router, non-ABRR scheme, AP-count mismatch) and
    on deltas that make the configuration invalid. *)

val same_outcome : t -> t -> bool
(** Same per-prefix verdicts, best routes and exits — the equivalence a
    delta solve must share with the from-scratch solve of the same
    mutated network. *)

(** {1 Findings} *)

val findings : t -> Report.t
(** Aggregated findings: [prop.converge] (codes [OSC-MED] / [OSC-TOPO] /
    [PROP-UNRESOLVED] / [PROP-UNSUPPORTED]), [prop.visibility]
    ([VIS-HIDDEN]: a router cannot learn a best-AS-level class whose
    egress is elsewhere), [prop.exit] ([EXIT-SUBOPT]: egress differs
    from the full-visibility reference), [prop.fwd] ([FWD-LOOP]:
    inconsistent egress choices yield a forwarding loop), plus a
    [prop.summary] line with scale counters. *)

val check : ?live:(int -> bool) -> Abrr_core.Config.t -> workload -> Report.t
(** [findings (solve ?live config workload)]. *)
