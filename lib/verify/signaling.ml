module Config = Abrr_core.Config

exception Found of int list

let find_cycle ~n ~succ =
  let color = Array.make n 0 in
  let rec dfs path v =
    color.(v) <- 1;
    List.iter
      (fun u ->
        if color.(u) = 1 then begin
          let rec take acc = function
            | [] -> acc
            | x :: rest -> if x = u then x :: acc else take (x :: acc) rest
          in
          raise (Found (take [ u ] (v :: path)))
        end
        else if color.(u) = 0 then dfs (v :: path) u)
      (succ v);
    color.(v) <- 2
  in
  try
    for v = 0 to n - 1 do
      if color.(v) = 0 then dfs [] v
    done;
    None
  with Found c -> Some c

let pp_int_path l = String.concat " -> " (List.map string_of_int l)

(* Routers a live [src] can reach over the IGP. *)
let reach igp src = Igp.Spf.reachable_from igp ~src

let check_igp (config : Config.t) =
  if Igp.Spf.connected config.igp then
    [ Report.pass "signaling.igp" "IGP graph is connected" ]
  else
    [
      Report.warn ~code:"IGP-PARTITIONED" "signaling.igp"
        "IGP graph is partitioned: sessions across the cut cannot establish";
    ]

let check_tbrr ~live (config : Config.t) (s : Config.tbrr_spec) =
  let n = config.n_routers in
  let clusters = Array.of_list s.clusters in
  let k = Array.length clusters in
  let findings = ref [] in
  let note f = findings := f :: !findings in
  (* Membership: every router is a TRR or a client of some cluster. *)
  let covered = Array.make n false in
  Array.iter
    (fun (c : Config.cluster) ->
      List.iter (fun r -> if r >= 0 && r < n then covered.(r) <- true)
        (c.trrs @ c.clients))
    clusters;
  let orphans =
    List.filter (fun r -> not covered.(r)) (List.init n Fun.id)
  in
  if orphans <> [] then
    note
      (Report.fail ~code:"SIG-ORPHAN" "signaling.tbrr-membership"
         "%d routers belong to no cluster and never learn iBGP routes (e.g. r%d)"
         (List.length orphans) (List.hd orphans));
  (* Hierarchy acyclicity: cluster i -> cluster j when a TRR of j is a
     client of i. *)
  let succ i =
    let clients = clusters.(i).Config.clients in
    List.filter
      (fun j ->
        j <> i
        && List.exists (fun t -> List.mem t clients) clusters.(j).Config.trrs)
      (List.init k Fun.id)
  in
  (match find_cycle ~n:k ~succ with
  | Some cycle ->
    note
      (Report.fail ~code:"SIG-CYCLE" "signaling.tbrr-hierarchy"
         "cyclic cluster hierarchy: cluster %s (updates re-reflect forever)"
         (pp_int_path cycle))
  | None ->
    note
      (Report.pass "signaling.tbrr-hierarchy"
         "cluster hierarchy over %d clusters is acyclic" k));
  (* Every client can reach a live TRR of each of its clusters. *)
  let reach_of = Hashtbl.create 8 in
  let reachable_from trr =
    match Hashtbl.find_opt reach_of trr with
    | Some r -> r
    | None ->
      let r = reach config.igp trr in
      Hashtbl.add reach_of trr r;
      r
  in
  let stranded = ref [] in
  Array.iteri
    (fun i (c : Config.cluster) ->
      let live_trrs = List.filter live c.trrs in
      if live_trrs = [] then
        note
          (Report.fail ~code:"SIG-DEAD-CLUSTER" "signaling.tbrr-liveness" "cluster %d: all TRRs down" i)
      else
        List.iter
          (fun client ->
            if
              live client
              && not
                   (List.exists
                      (fun t -> (reachable_from t).(client))
                      live_trrs)
            then stranded := (i, client) :: !stranded)
          c.clients)
    clusters;
  (match !stranded with
  | [] ->
    note
      (Report.pass "signaling.tbrr-reach"
         "every client reaches a live TRR of its cluster")
  | (i, client) :: _ ->
    note
      (Report.fail ~code:"SIG-UNREACH" "signaling.tbrr-reach"
         "%d clients cannot reach any live TRR (e.g. r%d in cluster %d)"
         (List.length !stranded) client i));
  List.rev !findings

let check_abrr ~live (config : Config.t) (s : Config.abrr_spec) =
  let n = config.n_routers in
  let findings = ref [] in
  let note f = findings := f :: !findings in
  let reach_of = Hashtbl.create 8 in
  let reachable_from arr =
    match Hashtbl.find_opt reach_of arr with
    | Some r -> r
    | None ->
      let r = reach config.igp arr in
      Hashtbl.add reach_of arr r;
      r
  in
  let stranded = ref 0 and example = ref None in
  Array.iteri
    (fun ap ids ->
      let alive = List.filter (fun r -> r >= 0 && r < n && live r) ids in
      List.iter
        (fun r ->
          if
            live r
            && not (List.exists (fun a -> a = r || (reachable_from a).(r)) alive)
          then begin
            incr stranded;
            if !example = None then example := Some (ap, r)
          end)
        (List.init n Fun.id))
    s.arrs;
  (match !example with
  | None ->
    note
      (Report.pass "signaling.abrr-reach"
         "every router reaches a live ARR of each of the %d APs"
         (Array.length s.arrs))
  | Some (ap, r) ->
    note
      (Report.fail ~code:"SIG-UNREACH" "signaling.abrr-reach"
         "%d (router, AP) pairs unreachable (e.g. r%d has no live ARR for AP %d)"
         !stranded r ap));
  List.rev !findings

let check_confed (s : Config.confed_spec) =
  let subs =
    1 + Array.fold_left max 0 s.sub_as_of
  in
  if subs <= 1 then
    [ Report.pass "signaling.confed" "single member sub-AS (plain full mesh)" ]
  else begin
    let edges =
      List.sort_uniq compare
        (List.map
           (fun (a, b) ->
             let sa = s.sub_as_of.(a) and sb = s.sub_as_of.(b) in
             (min sa sb, max sa sb))
           s.confed_links)
    in
    let adj = Array.make subs [] in
    List.iter
      (fun (a, b) ->
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b))
      edges;
    let seen = Array.make subs false in
    let rec bfs = function
      | [] -> ()
      | v :: rest ->
        let fresh = List.filter (fun u -> not seen.(u)) adj.(v) in
        List.iter (fun u -> seen.(u) <- true) fresh;
        bfs (fresh @ rest)
    in
    seen.(0) <- true;
    bfs [ 0 ];
    let disconnected = Array.exists not seen in
    let cyclic = List.length edges >= subs in
    if disconnected then
      [
        Report.fail ~code:"SIG-CONFED-PART" "signaling.confed"
          "member sub-AS graph is disconnected (%d sub-ASes, %d inter-links)"
          subs (List.length edges);
      ]
    else if cyclic then
      [
        Report.warn ~code:"SIG-CONFED-CYCLE" "signaling.confed"
          "member sub-AS graph is cyclic: tie-breaking races can livelock";
      ]
    else
      [
        Report.pass "signaling.confed"
          "member sub-AS graph is connected and acyclic (%d sub-ASes)" subs;
      ]
  end

let check_rcp ~live (config : Config.t) rcps =
  let alive = List.filter live rcps in
  if alive = [] then
    [ Report.fail ~code:"SIG-DEAD-RCP" "signaling.rcp" "all %d RCP nodes down" (List.length rcps) ]
  else begin
    let reachsets = List.map (fun r -> reach config.igp r) alive in
    let stranded =
      List.filter
        (fun r ->
          live r && not (List.mem r alive)
          && not (List.exists (fun rs -> rs.(r)) reachsets))
        (List.init config.n_routers Fun.id)
    in
    match stranded with
    | [] ->
      [
        Report.pass "signaling.rcp" "every client reaches a live RCP node (%d live)"
          (List.length alive);
      ]
    | r :: _ ->
      [
        Report.fail ~code:"SIG-UNREACH" "signaling.rcp" "%d clients cannot reach any RCP node (e.g. r%d)"
          (List.length stranded) r;
      ]
  end

let check ?(live = fun _ -> true) (config : Config.t) =
  let scheme_findings =
    match config.scheme with
    | Config.Full_mesh ->
      [
        Report.pass "signaling.mesh" "full mesh over %d routers (%d sessions)"
          config.n_routers
          (config.n_routers * (config.n_routers - 1) / 2);
      ]
    | Config.Tbrr s -> check_tbrr ~live config s
    | Config.Abrr s -> check_abrr ~live config s
    | Config.Confed s -> check_confed s
    | Config.Rcp { rcps } -> check_rcp ~live config rcps
    | Config.Dual { tbrr; abrr; accept = _ } ->
      check_tbrr ~live config tbrr @ check_abrr ~live config abrr
  in
  check_igp config @ scheme_findings
