(** Static oscillation detection (§2.3.1, RFC 3345).

    The mesh of top-level reflectors is modeled as a best-response game:
    each TRR's state is the set of routes it currently advertises to the
    TRR mesh, and one round recomputes every TRR's decision — in
    sequential round-robin order (Gauss-Seidel), seeing the updates
    already made this round — from its client-side candidates plus the
    other TRRs' adverts, with IGP costs taken from {!Igp.Spf}. The
    iteration either reaches a fixed point (a stable advert assignment
    exists and this activation order finds it) or revisits a state after
    a full round, which implies the game has no fixed point under this
    order: a dispute cycle, an activation schedule under which the real
    protocol oscillates forever. Re-running a cyclic instance under
    {!Bgp.Decision.Always_compare} separates MED-induced oscillation
    (RFC 3345 — vanishes) from topology-based dispute wheels (persists).

    Full mesh, RCP and ABRR are oscillation-free by construction: their
    reflector adverts (respectively: everything, centrally computed
    paths, the best AS-level routes of an AP) do not depend on other
    reflectors' choices, so the game is trivially stable. TBRR with
    best-external or multipath also yields state-independent adverts in
    this model. *)

open Netaddr

type injection = int * Ipv4.t * Bgp.Route.t
(** An eBGP route fed to the network: (border router, neighbour address,
    route) — the shape of {!Abrr_core.Gadgets.t.injections} and of
    {!Topo.Route_gen} tables. *)

type outcome =
  | Stable of { iterations : int }
      (** synchronous iteration reached a fixed point *)
  | Cycle of { period : int; start : int }
      (** mesh adverts revisit the state of round [start] every [period]
          rounds: a dispute cycle *)
  | Free of string  (** oscillation-free by construction; the reason *)
  | Not_analyzed of string

val prefixes : injection list -> Prefix.t list
(** Distinct destination prefixes of a workload, sorted. *)

val normalize : border:int -> Bgp.Route.t -> Bgp.Route.t
(** Next-hop-self rewrite used throughout the static model: next hop
    becomes the border router's loopback; path-id and reflection
    attributes are cleared. *)

val own_candidates :
  prefix:Prefix.t -> injection list -> int -> Bgp.Decision.candidate list
(** A router's own (normalized) eBGP candidates for [prefix]. *)

val border_advert :
  med_mode:Bgp.Decision.med_mode ->
  prefix:Prefix.t ->
  injection list ->
  int ->
  Bgp.Route.t option
(** What a border router advertises over iBGP for [prefix]: its best own
    eBGP route, next-hop-self. *)

type tbrr_view = {
  trr_router : int;
  own_best : Bgp.Route.t option;  (** the TRR's own forwarding choice *)
  to_clients : Bgp.Route.t list;
      (** what it reflects down to its clients (all best AS-level routes
          under multipath, the single overall best otherwise) *)
}

val tbrr_views :
  ?med_mode:Bgp.Decision.med_mode ->
  Abrr_core.Config.t ->
  Abrr_core.Config.tbrr_spec ->
  prefix:Prefix.t ->
  injection list ->
  [ `Views of tbrr_view list | `Oscillates ]
(** Per-TRR stable outcome of the mesh game, for downstream forwarding
    analysis ({!Deflection}); [`Oscillates] when there is no fixed
    point. [med_mode] defaults to the configuration's. *)

val analyze :
  ?med_mode:Bgp.Decision.med_mode ->
  Abrr_core.Config.t ->
  prefix:Prefix.t ->
  injection list ->
  outcome

val check : Abrr_core.Config.t -> injection list -> Report.t
(** One finding per workload prefix, classifying cycles as MED-induced
    (RFC 3345) or topology-based by re-analysis under always-compare-med. *)
