(** Routing-anomaly detectors over a live simulation: the observation
    side of the adversarial scenarios (lib/scenario).

    Both detectors scan every up router's Loc-RIB best routes and
    aggregate per (prefix, offending AS), so a hijack that captured 900
    routers is one finding with a blast-radius count, not 900 findings.

    These are control-plane heuristics of exactly the kind an operator's
    monitoring would run — they look at what the routers {e believe},
    which is the point: a reflection scheme must not mask a hijack from
    parts of the network (making it invisible to monitoring) nor
    amplify it. *)

val hijacks :
  legit:(Netaddr.Prefix.t -> Bgp.Asn.t list) ->
  Abrr_core.Network.t ->
  Report.t
(** MOAS (multiple-origin AS) check: a best route whose rightmost
    (origin) AS is not in [legit prefix] is a prefix hijack in effect —
    traffic for the prefix is being delivered to a rogue origin.
    Findings carry code ["HIJACK-MOAS"]; a clean network yields a single
    pass finding. Empty [legit prefix] means "unknown prefix — accept
    any origin". *)

val leaks : peers:Bgp.Asn.t list -> Abrr_core.Network.t -> Report.t
(** Route-leak check (valley-free violation): a best route whose AS path
    traverses {e two or more} distinct peer ASes means some peer
    re-exported a route it learned from another peer, with our AS about
    to carry the transit. Findings carry code ["LEAK-TRANSIT"]. *)

val detections : Report.t -> int
(** Number of failing findings — the scenario engine's detection count. *)
