open Netaddr
module Config = Abrr_core.Config
module Partition = Abrr_core.Partition
module Router = Abrr_core.Router
module Graph = Igp.Graph
module Spf = Igp.Spf
module As_path = Bgp.As_path
module D = Bgp.Decision
module R = Bgp.Route
module O = Oscillation

type injection = O.injection
type workload = injection list

type verdict =
  | Converged of { rounds : int }
  | Diverged of { period : int; start : int }
  | Unresolved of string
  | Unsupported of string

type stats = {
  node_evals : int;
  spf_rows : int;
  prefixes_solved : int;
  prefixes_reused : int;
}

let max_rounds = 512
let lb = Config.loopback
let dedup_ints l = List.sort_uniq Int.compare l

(* ------------------------------------------------------------------ *)
(* Solver context: everything that is per-network, not per-prefix.      *)

type ctx = {
  cfg : Config.t;
  med : D.med_mode;
  roles : Router.roles array;
  live : bool array;
  dist : int array array;  (* over the live-masked topology *)
  inj : workload;  (* live-filtered *)
  mutable evals : int;
  mutable spf : int;
}

let owner_of ctx (route : R.t) =
  Config.router_of_loopback ctx.cfg (R.next_hop route)

(* Step-6 cost exactly as the simulator resolves it: IGP metric from [src]
   to the owner of the NEXT_HOP, 0 for unresolvable (external) hops. *)
let cost_from ctx src route =
  match owner_of ctx route with Some o -> ctx.dist.(src).(o) | None -> 0

let icand ctx r ~src route =
  D.candidate ~learned:D.Ibgp ~peer_id:(lb src) ~peer_addr:(lb src)
    ~igp_cost:(cost_from ctx r route) route

(* ------------------------------------------------------------------ *)
(* Route derivation — mirrors lib/core/router.ml verbatim.              *)

let strip_reflection (r : R.t) =
  R.update ~originator_id:None ~cluster_list:[]
    ~ext_communities:
      (List.filter
         (fun e -> not (Bgp.Ext_community.is_reflected e))
         (R.ext_communities r))
    r

let class_of (route : R.t) = R.with_path_id 0 (strip_reflection route)
let derive_own i (r : R.t) = R.update ~next_hop:(lb i) ~path_id:0 (strip_reflection r)

let derive_trr_reflect ctx i src (r : R.t) =
  let originator =
    match (R.originator_id r) with Some o -> o | None -> lb src
  in
  let cluster =
    match ctx.roles.(i).Router.my_cluster_ids with c :: _ -> c | [] -> lb i
  in
  R.add_cluster cluster (R.update ~originator_id:(Some originator) ~path_id:0 r)

let derive_arr_reflect ctx i src (r : R.t) =
  let originator =
    match (R.originator_id r) with Some o -> o | None -> lb src
  in
  let r = R.update ~originator_id:(Some originator) r in
  match ctx.roles.(i).Router.abrr_loop with
  | Config.Reflected_bit -> R.mark_reflected r
  | Config.Cluster_list -> R.add_cluster (lb i) r

(* Receive-side loop filters (router.ml filter_incoming). *)

let mesh_ok ctx i (r : R.t) =
  (not
     (List.exists
        (fun c -> R.in_cluster_list c r)
        ctx.roles.(i).Router.my_cluster_ids))
  && (R.originator_id r) <> Some (lb i)

let reflected_ok i (r : R.t) = (R.originator_id r) <> Some (lb i)

let to_arr_ok ctx i (r : R.t) =
  match ctx.roles.(i).Router.abrr_loop with
  | Config.Reflected_bit -> not (R.is_reflected r)
  | Config.Cluster_list -> R.cluster_list r = []

let confed_ok ctx i (r : R.t) =
  match ctx.roles.(i).Router.my_member_asn with
  | Some asn -> not (As_path.confed_contains asn (R.as_path r))
  | None -> true

(* ------------------------------------------------------------------ *)
(* Per-prefix context.                                                  *)

type pctx = {
  prefix : Prefix.t;
  own : D.candidate list array;  (* per router: normalized eBGP candidates *)
  cover_arrs : int list;  (* ABRR: ARRs serving a covering AP *)
  arr_targets_of : (int * int list) list;  (* per such ARR: reflect targets *)
}

let make_pctx ctx prefix =
  let n = ctx.cfg.Config.n_routers in
  let own = Array.make n [] in
  List.iter
    (fun (b, neighbor, (route : R.t)) ->
      if Prefix.compare route.R.prefix prefix = 0 then
        own.(b) <-
          own.(b)
          @ [
              D.candidate ~learned:D.Ebgp ~peer_id:neighbor ~peer_addr:neighbor
                ~igp_cost:0
                (O.normalize ~border:b route);
            ])
    ctx.inj;
  let cover_arrs, arr_targets_of =
    match ctx.cfg.Config.scheme with
    | Config.Abrr s ->
      let covering = Partition.aps_of_prefix s.Config.partition prefix in
      let cover_arrs =
        dedup_ints (List.concat_map (fun ap -> s.Config.arrs.(ap)) covering)
      in
      let arr_targets_of =
        List.map
          (fun a ->
            ( a,
              dedup_ints
                (List.concat_map
                   (fun ap ->
                     if List.mem a s.Config.arrs.(ap) then
                       ctx.roles.(a).Router.arr_targets.(ap)
                     else [])
                   covering) ))
          cover_arrs
      in
      (cover_arrs, arr_targets_of)
    | _ -> ([], [])
  in
  { prefix; own; cover_arrs; arr_targets_of }

(* ------------------------------------------------------------------ *)
(* Abstract node state: one router's adverts on every signaling channel
   (the union of the simulator's Adj-RIB-Outs for one prefix).           *)

type node = {
  mutable adv_mesh : R.t option;  (* full-mesh / confed-internal advert *)
  mutable adv_trr : R.t list;  (* client -> its TRRs *)
  mutable adv_arr : R.t list;  (* client -> the ARRs of covering APs *)
  mutable adv_rcp : R.t list;  (* client -> every RCP node *)
  mutable out_clients : R.t list;  (* TRR -> its clients *)
  mutable out_clients_src : int;  (* split-horizon sender (single-path) *)
  mutable out_mesh : R.t list;  (* TRR -> the TRR mesh *)
  mutable out_mesh_src : int;
  mutable out_arr : R.t list;  (* ARR -> the covering APs' targets *)
  mutable adv_confed : (R.t * int) option;  (* confed-eBGP export + its src *)
  rcp_out : R.t option array;  (* RCP -> per-client pick *)
}

let rcp_len ctx =
  match ctx.cfg.Config.scheme with
  | Config.Rcp _ -> ctx.cfg.Config.n_routers
  | _ -> 0

let fresh ctx =
  {
    adv_mesh = None;
    adv_trr = [];
    adv_arr = [];
    adv_rcp = [];
    out_clients = [];
    out_clients_src = -1;
    out_mesh = [];
    out_mesh_src = -1;
    out_arr = [];
    adv_confed = None;
    rcp_out = Array.make (rcp_len ctx) None;
  }

let copy_node nd = { nd with rcp_out = Array.copy nd.rcp_out }

let view nd =
  ( nd.adv_mesh,
    nd.adv_trr,
    nd.adv_arr,
    nd.adv_rcp,
    nd.out_clients,
    nd.out_clients_src,
    nd.out_mesh,
    nd.out_mesh_src,
    nd.out_arr,
    nd.adv_confed,
    Array.to_list nd.rcp_out )

let snapshot nodes = Array.to_list (Array.map view nodes)

(* ------------------------------------------------------------------ *)
(* Delivery: what router [r]'s decision process receives, computed
   receiver-side over the senders' current adverts, applying the exact
   split-horizon rules and loop filters of the simulator.               *)

type tag =
  | T_own
  | T_mesh
  | T_confed
  | T_from_rcp
  | T_managed_trr
  | T_from_trr
  | T_own_arr
  | T_from_arr

let clientside = function
  | T_own | T_managed_trr -> true
  | T_mesh | T_confed | T_from_rcp | T_from_trr | T_own_arr | T_from_arr ->
    false

let delivered_inputs ctx pctx nodes r =
  let roles = ctx.roles.(r) in
  let out = ref [] in
  let push tag src route = out := (tag, src, route) :: !out in
  (match ctx.cfg.Config.scheme with
  | Config.Full_mesh ->
    List.iter
      (fun s ->
        if ctx.live.(s) then
          match nodes.(s).adv_mesh with
          | Some route when mesh_ok ctx r route -> push T_mesh s route
          | _ -> ())
      roles.Router.mesh_peers
  | Config.Confed _ ->
    List.iter
      (fun s ->
        if ctx.live.(s) then
          match nodes.(s).adv_mesh with
          | Some route when mesh_ok ctx r route -> push T_mesh s route
          | _ -> ())
      roles.Router.mesh_peers;
    List.iter
      (fun s ->
        if ctx.live.(s) then
          match nodes.(s).adv_confed with
          | Some (route, src) when src <> r && confed_ok ctx r route ->
            push T_confed s route
          | _ -> ())
      roles.Router.confed_links
  | Config.Rcp _ ->
    List.iter
      (fun z ->
        if ctx.live.(z) then
          match nodes.(z).rcp_out.(r) with
          | Some route when reflected_ok r route -> push T_from_rcp z route
          | _ -> ())
      roles.Router.rcps
  | Config.Tbrr _ ->
    if roles.Router.is_trr then begin
      List.iter
        (fun c ->
          if ctx.live.(c) then
            List.iter
              (fun route ->
                if mesh_ok ctx r route then push T_managed_trr c route)
              nodes.(c).adv_trr)
        roles.Router.my_trr_clients;
      List.iter
        (fun s ->
          if ctx.live.(s) then begin
            let nd = nodes.(s) in
            let skip =
              (not roles.Router.tbrr_multipath)
              && nd.out_mesh <> [] && nd.out_mesh_src = r
            in
            if not skip then
              List.iter
                (fun route -> if mesh_ok ctx r route then push T_mesh s route)
                nd.out_mesh
          end)
        roles.Router.trr_mesh
    end;
    if roles.Router.my_trrs <> [] then
      List.iter
        (fun tr ->
          if ctx.live.(tr) then begin
            let nd = nodes.(tr) in
            let skip =
              (not roles.Router.tbrr_multipath)
              && nd.out_clients <> [] && nd.out_clients_src = r
            in
            if not skip then
              List.iter
                (fun route ->
                  if reflected_ok r route then push T_from_trr tr route)
                nd.out_clients
          end)
        roles.Router.my_trrs
  | Config.Abrr _ ->
    List.iter
      (fun a ->
        if a <> r && ctx.live.(a) then
          match List.assoc_opt a pctx.arr_targets_of with
          | Some targets when List.mem r targets ->
            List.iter
              (fun route ->
                if reflected_ok r route then push T_from_arr a route)
              nodes.(a).out_arr
          | _ -> ())
      pctx.cover_arrs;
    (* Own reflected set: the §2.1 internal role passing. *)
    if List.mem_assoc r pctx.arr_targets_of then
      List.iter
        (fun (route : R.t) ->
          if reflected_ok r route then push T_own_arr r route)
        nodes.(r).out_arr
  | Config.Dual _ -> ());
  List.rev !out

(* Decision inputs (with the simulator's IGP-eligibility filter). *)
let decision_candidates ctx pctx r inputs =
  let own = List.map (fun c -> (c, -1, T_own)) pctx.own.(r) in
  let dels =
    List.filter_map
      (fun (tag, src, route) ->
        let c = icand ctx r ~src route in
        let c =
          if tag = T_confed then { c with D.learned = D.Confed_ebgp } else c
        in
        if c.D.igp_cost = Spf.unreachable then None else Some (c, src, tag))
      inputs
  in
  own @ dels

let winner_of ctx tagged =
  let cands = List.map (fun (c, _, _) -> c) tagged in
  match D.best ~med_mode:ctx.med cands with
  | None -> None
  | Some c -> (
    match
      List.find_map
        (fun ((c', _, _) as e) -> if c' == c then Some e else None)
        tagged
    with
    | Some e -> Some e
    | None -> Some (c, -1, T_own))

(* Table 1's "best routes" (plural): own AS-level survivors, exported on
   add-paths planes. *)
let own_survivors ctx r tagged =
  let cands = List.map (fun (c, _, _) -> c) tagged in
  let survivors = D.steps_1_to_4 ~med_mode:ctx.med cands in
  List.filter_map
    (fun (c : D.candidate) ->
      match c.D.learned with
      | D.Ebgp | D.Local -> Some (derive_own r c.D.route)
      | D.Ibgp | D.Confed_ebgp -> None)
    survivors

(* ------------------------------------------------------------------ *)
(* The transfer function: recompute one router's entire advert state
   from the current adverts of its peers. Mirrors router.ml's recompute
   order: ARR reflection -> RCP picks -> decision -> exports -> TRR.     *)

let eval ctx pctx nodes r =
  ctx.evals <- ctx.evals + 1;
  let old = view nodes.(r) in
  (* Compute into a fresh node while [nodes.(r)] still holds the previous
     state: self-channel reads (an ARR's own client advert, its own
     reflected set, an RCP node's own report) must see the {e previous}
     advert, exactly as the simulator's self-sends are delivered through
     the event queue one processing batch later. *)
  let nd = fresh ctx in
  if ctx.live.(r) then begin
    let roles = ctx.roles.(r) in
    let n = Array.length nodes in
    (* 1. ARR reflection: best AS-level routes over the managed RIB
       (loop-filtered client adverts, IGP eligibility not consulted). *)
    (match ctx.cfg.Config.scheme with
    | Config.Abrr _ when List.mem_assoc r pctx.arr_targets_of ->
      let tagged =
        List.concat
          (List.init n (fun c ->
               if ctx.live.(c) then
                 List.filter_map
                   (fun route ->
                     if to_arr_ok ctx r route then
                       Some (icand ctx r ~src:c route, c)
                     else None)
                   nodes.(c).adv_arr
               else []))
      in
      let survivors =
        D.steps_1_to_4 ~med_mode:ctx.med (List.map fst tagged)
      in
      nd.out_arr <-
        List.map
          (fun (c : D.candidate) ->
            let src =
              Option.value ~default:r
                (List.find_map
                   (fun (c', s) -> if c' == c then Some s else None)
                   tagged)
            in
            derive_arr_reflect ctx r src c.D.route)
          survivors
    | _ -> ());
    (* 2. RCP node: each client's best path from its own IGP vantage. *)
    (match ctx.cfg.Config.scheme with
    | Config.Rcp _ when roles.Router.is_rcp ->
      let all =
        List.concat
          (List.init n (fun src ->
               if ctx.live.(src) then
                 List.map (fun route -> (src, route)) nodes.(src).adv_rcp
               else []))
      in
      List.iter
        (fun client ->
          if ctx.live.(client) then begin
            let cands =
              List.filter_map
                (fun (src, route) ->
                  let cost = cost_from ctx client route in
                  if cost = Spf.unreachable then None
                  else
                    Some
                      ( {
                          D.route;
                          learned = (if src = client then D.Ebgp else D.Ibgp);
                          peer_id = lb src;
                          peer_addr = lb src;
                          igp_cost = cost;
                        },
                        src ))
                all
            in
            match D.best ~med_mode:ctx.med (List.map fst cands) with
            | Some c -> (
              match
                List.find_map
                  (fun (c', s) -> if c' == c then Some s else None)
                  cands
              with
              | Some src when src <> client ->
                nd.rcp_out.(client) <-
                  Some
                    (R.update ~path_id:0 ~originator_id:(Some (lb src))
                       c.D.route)
              | _ -> ())
            | None -> ()
          end)
        roles.Router.rcp_clients
    | _ -> ());
    (* 3. Decision. *)
    let inputs = delivered_inputs ctx pctx nodes r in
    let tagged = decision_candidates ctx pctx r inputs in
    let winner = winner_of ctx tagged in
    (* 4. Client / confed exports. *)
    (match ctx.cfg.Config.scheme with
    | Config.Full_mesh ->
      if roles.Router.is_client then (
        match winner with
        | Some (c, _, _) when c.D.learned = D.Ebgp || c.D.learned = D.Local ->
          nd.adv_mesh <- Some (derive_own r c.D.route)
        | _ -> ())
    | Config.Tbrr _ ->
      if roles.Router.is_client && roles.Router.my_trrs <> [] then
        if roles.Router.tbrr_multipath then
          nd.adv_trr <- own_survivors ctx r tagged
        else (
          match winner with
          | Some (c, _, _) when c.D.learned = D.Ebgp || c.D.learned = D.Local
            ->
            nd.adv_trr <- [ derive_own r c.D.route ]
          | _ -> ())
    | Config.Abrr _ ->
      if roles.Router.is_client then nd.adv_arr <- own_survivors ctx r tagged
    | Config.Rcp _ ->
      if roles.Router.is_client then nd.adv_rcp <- own_survivors ctx r tagged
    | Config.Confed _ ->
      let my_asn =
        match roles.Router.my_member_asn with
        | Some a -> a
        | None -> Bgp.Asn.of_int 0
      in
      let derive_base (c : D.candidate) =
        match c.D.learned with
        | D.Ebgp | D.Local -> derive_own r c.D.route
        | D.Confed_ebgp | D.Ibgp ->
          { (strip_reflection c.D.route) with R.path_id = 0 }
      in
      (match winner with
      | Some (c, _, _) when c.D.learned <> D.Ibgp ->
        nd.adv_mesh <- Some (derive_base c)
      | _ -> ());
      (match winner with
      | Some (c, src, _) ->
        let base = derive_base c in
        nd.adv_confed <-
          Some
            ( R.update
                ~as_path:(As_path.prepend_confed my_asn (R.as_path base))
                base,
              src )
      | None -> ())
    | Config.Dual _ -> ());
    (* 5. TRR reflection. *)
    match ctx.cfg.Config.scheme with
    | Config.Tbrr _ when roles.Router.is_trr ->
      let trr_tagged =
        List.filter
          (fun (_, _, tag) ->
            match tag with T_own | T_managed_trr | T_mesh -> true | _ -> false)
          tagged
      in
      let derive ((c : D.candidate), src, _) =
        match c.D.learned with
        | D.Ibgp -> derive_trr_reflect ctx r src c.D.route
        | D.Ebgp | D.Local | D.Confed_ebgp -> derive_own r c.D.route
      in
      if roles.Router.tbrr_multipath then begin
        let pick tg =
          let survivors =
            D.steps_1_to_4 ~med_mode:ctx.med (List.map (fun (c, _, _) -> c) tg)
          in
          List.filter_map
            (fun (s : D.candidate) ->
              List.find_map
                (fun ((c, _, _) as e) -> if c == s then Some e else None)
                tg)
            survivors
        in
        nd.out_clients <- List.map derive (pick trr_tagged);
        nd.out_mesh <-
          List.map derive
            (pick (List.filter (fun (_, _, tag) -> clientside tag) trr_tagged))
      end
      else begin
        let w = winner_of ctx trr_tagged in
        (match w with
        | Some ((_, src, _) as e) ->
          nd.out_clients <- [ derive e ];
          nd.out_clients_src <- src
        | None -> ());
        match w with
        | Some ((_, src, tag) as e) when clientside tag ->
          nd.out_mesh <- [ derive e ];
          nd.out_mesh_src <- src
        | Some _ when roles.Router.tbrr_best_external -> (
          let ct =
            List.filter (fun (_, _, tag) -> clientside tag) trr_tagged
          in
          match winner_of ctx ct with
          | Some ((_, src', _) as e) ->
            nd.out_mesh <- [ derive e ];
            nd.out_mesh_src <- src'
          | None -> ())
        | _ -> ()
      end
    | _ -> ()
  end;
  nodes.(r) <- nd;
  view nd <> old

(* ------------------------------------------------------------------ *)
(* Fixpoint solvers.                                                    *)

let solve_prefix ctx pctx =
  let n = ctx.cfg.Config.n_routers in
  let nodes = Array.init n (fun _ -> fresh ctx) in
  let seen = Hashtbl.create 64 in
  let rec go round =
    let snap = snapshot nodes in
    match Hashtbl.find_opt seen snap with
    | Some first -> (nodes, Diverged { period = round - first; start = first })
    | None ->
      if round >= max_rounds then
        ( nodes,
          Unresolved (Printf.sprintf "no fixpoint within %d rounds" max_rounds)
        )
      else begin
        Hashtbl.add seen snap round;
        let changed = ref false in
        for r = 0 to n - 1 do
          if eval ctx pctx nodes r then changed := true
        done;
        if !changed then go (round + 1) else (nodes, Converged { rounds = round })
      end
  in
  go 0

(* Dataflow successors: who re-reads [r]'s adverts. *)
let successors ctx pctx r =
  let roles = ctx.roles.(r) in
  match ctx.cfg.Config.scheme with
  | Config.Full_mesh -> roles.Router.mesh_peers
  | Config.Confed _ -> roles.Router.mesh_peers @ roles.Router.confed_links
  | Config.Tbrr _ ->
    (if roles.Router.is_client && roles.Router.my_trrs <> [] then
       roles.Router.my_trrs
     else [])
    @
    if roles.Router.is_trr then
      roles.Router.my_trr_clients @ roles.Router.trr_mesh
    else []
  | Config.Abrr _ ->
    (if roles.Router.is_client then pctx.cover_arrs else [])
    @ (match List.assoc_opt r pctx.arr_targets_of with
      | Some ts -> ts
      | None -> [])
  | Config.Rcp _ ->
    (if roles.Router.is_client then roles.Router.rcps else [])
    @ (if roles.Router.is_rcp then roles.Router.rcp_clients else [])
  | Config.Dual _ -> []

(* Worklist restart from a dirty seed; [None] when it fails to settle. *)
let resolve_dirty ctx pctx nodes dirty =
  let n = Array.length nodes in
  let rec go round current =
    if round >= max_rounds then None
    else if not (Array.exists Fun.id current) then
      Some (Converged { rounds = round })
    else begin
      let next = Array.make n false in
      for r = 0 to n - 1 do
        if current.(r) && eval ctx pctx nodes r then
          List.iter
            (fun s -> if s >= 0 && s < n then next.(s) <- true)
            (successors ctx pctx r)
      done;
      go (round + 1) next
    end
  in
  go 0 dirty

let resolve_from ctx pctx prev_nodes seed =
  let n = Array.length prev_nodes in
  let nodes = Array.map copy_node prev_nodes in
  let dirty = Array.make n false in
  List.iter (fun r -> if r >= 0 && r < n then dirty.(r) <- true) seed;
  match resolve_dirty ctx pctx nodes dirty with
  | Some v -> (nodes, v)
  | None ->
    (* No fixpoint reachable from here by the worklist: re-solve from
       scratch so dispute cycles are detected and reported. *)
    solve_prefix ctx pctx

(* ------------------------------------------------------------------ *)
(* Per-prefix results.                                                  *)

type psol = {
  p_prefix : Prefix.t;
  p_verdict : verdict;
  p_nodes : node array;
  p_delivered : (int * R.t) list array;
  p_learnable : R.t list array;
  p_best : R.t option array;
  p_exits : int option array;
  p_ref_exits : int option array;
  p_ref_classes : R.t list;
}

type t = {
  t_ctx : ctx;
  t_workload : workload;
  t_psols : psol list;
  t_stats : stats;
}

let extract ctx pctx nodes =
  let n = ctx.cfg.Config.n_routers in
  let delivered = Array.make n [] in
  let learnable = Array.make n [] in
  let best = Array.make n None in
  let exits = Array.make n None in
  for r = 0 to n - 1 do
    if ctx.live.(r) then begin
      let inputs = delivered_inputs ctx pctx nodes r in
      delivered.(r) <-
        List.filter_map
          (fun (tag, src, route) ->
            match tag with
            | T_mesh | T_confed | T_from_rcp | T_from_trr | T_from_arr ->
              Some (src, route)
            | T_own | T_managed_trr | T_own_arr -> None)
          inputs;
      learnable.(r) <-
        List.sort_uniq R.compare
          (List.map
             (fun (c : D.candidate) -> class_of c.D.route)
             pctx.own.(r)
          @ List.map (fun (_, _, route) -> class_of route) inputs);
      let tagged = decision_candidates ctx pctx r inputs in
      match winner_of ctx tagged with
      | Some (c, _, _) ->
        best.(r) <- Some c.D.route;
        exits.(r) <-
          Some (match owner_of ctx c.D.route with Some o -> o | None -> r)
      | None -> ()
    end
  done;
  (delivered, learnable, best, exits)

(* Full-visibility reference: the best AS-level routes over all live
   border adverts, and the full-mesh egress assignment. *)
let reference ctx pctx =
  let prefix = pctx.prefix in
  let ref_exits =
    Deflection.full_mesh_exits ctx.cfg ~dist:ctx.dist ~prefix ctx.inj
  in
  let borders =
    dedup_ints
      (List.filter_map
         (fun (b, _, (rt : R.t)) ->
           if Prefix.compare rt.R.prefix prefix = 0 then Some b else None)
         ctx.inj)
  in
  let advert_cands =
    List.filter_map
      (fun b ->
        Option.map
          (fun route -> D.candidate ~learned:D.Ibgp route)
          (O.border_advert ~med_mode:ctx.med ~prefix ctx.inj b))
      borders
  in
  let ref_classes =
    D.steps_1_to_4 ~med_mode:ctx.med advert_cands
    |> List.map (fun (c : D.candidate) -> class_of c.D.route)
    |> List.sort_uniq R.compare
  in
  (ref_exits, ref_classes)

let empty_psol ctx prefix verdict =
  let n = ctx.cfg.Config.n_routers in
  {
    p_prefix = prefix;
    p_verdict = verdict;
    p_nodes = Array.init n (fun _ -> fresh ctx);
    p_delivered = Array.make n [];
    p_learnable = Array.make n [];
    p_best = Array.make n None;
    p_exits = Array.make n None;
    p_ref_exits = Array.make n None;
    p_ref_classes = [];
  }

let build_psol ctx pctx (nodes, verdict) =
  match verdict with
  | Converged _ ->
    let delivered, learnable, best, exits = extract ctx pctx nodes in
    let ref_exits, ref_classes = reference ctx pctx in
    {
      p_prefix = pctx.prefix;
      p_verdict = verdict;
      p_nodes = nodes;
      p_delivered = delivered;
      p_learnable = learnable;
      p_best = best;
      p_exits = exits;
      p_ref_exits = ref_exits;
      p_ref_classes = ref_classes;
    }
  | _ -> { (empty_psol ctx pctx.prefix verdict) with p_nodes = nodes }

(* ------------------------------------------------------------------ *)
(* Whole-network solve.                                                 *)

let masked_graph (cfg : Config.t) live =
  if Array.for_all Fun.id live then cfg.igp
  else begin
    let n = Graph.node_count cfg.igp in
    let g = Graph.create ~n in
    for u = 0 to n - 1 do
      if live.(u) then
        List.iter
          (fun (v, m) -> if live.(v) then Graph.add_arc g u v m)
          (Graph.neighbors cfg.igp u)
    done;
    g
  end

let make_ctx (cfg : Config.t) live workload =
  let inj =
    List.filter
      (fun (b, _, _) -> b >= 0 && b < cfg.n_routers && live.(b))
      workload
  in
  {
    cfg;
    med = cfg.med_mode;
    roles = Array.init cfg.n_routers (Router.derive_roles cfg);
    live;
    dist = Spf.all_pairs (masked_graph cfg live);
    inj;
    evals = 0;
    spf = cfg.n_routers;
  }

let solve ?(live = fun _ -> true) (cfg : Config.t) workload =
  let live_arr = Array.init cfg.n_routers live in
  let ctx = make_ctx cfg live_arr workload in
  let ps = O.prefixes ctx.inj in
  let psols =
    match Config.validate cfg with
    | Error e ->
      List.map
        (fun p -> empty_psol ctx p (Unsupported ("invalid configuration: " ^ e)))
        ps
    | Ok () -> (
      match cfg.scheme with
      | Config.Dual _ ->
        List.map
          (fun p ->
            empty_psol ctx p
              (Unsupported "Dual (transition) scheme is not statically modeled"))
          ps
      | _ ->
        List.map
          (fun p ->
            let pctx = make_pctx ctx p in
            build_psol ctx pctx (solve_prefix ctx pctx))
          ps)
  in
  {
    t_ctx = ctx;
    t_workload = workload;
    t_psols = psols;
    t_stats =
      {
        node_evals = ctx.evals;
        spf_rows = ctx.spf;
        prefixes_solved = List.length psols;
        prefixes_reused = 0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Accessors.                                                           *)

let config t = t.t_ctx.cfg
let workload t = t.t_workload
let stats t = t.t_stats
let prefixes t = List.map (fun ps -> ps.p_prefix) t.t_psols

let psol t p =
  match
    List.find_opt (fun ps -> Prefix.compare ps.p_prefix p = 0) t.t_psols
  with
  | Some ps -> ps
  | None -> invalid_arg ("Propagation: unknown prefix " ^ Prefix.to_string p)

let verdict t p = (psol t p).p_verdict
let learnable t p ~router = (psol t p).p_learnable.(router)
let delivered t p ~router = (psol t p).p_delivered.(router)
let best_route t p ~router = (psol t p).p_best.(router)
let exits t p = (psol t p).p_exits
let reference_exits t p = (psol t p).p_ref_exits
let reference_classes t p = (psol t p).p_ref_classes

let class_count t =
  List.fold_left
    (fun acc ps ->
      Array.fold_left (fun a l -> a + List.length l) acc ps.p_learnable)
    0 t.t_psols

(* ------------------------------------------------------------------ *)
(* What-if deltas.                                                      *)

type delta =
  | Fail_link of int * int
  | Fail_router of int
  | Fail_arr of int
  | Repartition of Partition.t

(* Re-solve a previous result under a new context. [plan ps] picks
   [`Reuse] or [`Seed rs]; non-converged prefixes always restart from
   scratch (a worklist cannot resume from a dispute cycle). *)
let redo t ctx plan =
  let reused = ref 0 in
  let psols =
    List.map
      (fun ps ->
        match ps.p_verdict with
        | Unsupported _ ->
          incr reused;
          ps
        | _ -> (
          match plan ps with
          | `Reuse ->
            incr reused;
            ps
          | `Seed seed ->
            let pctx = make_pctx ctx ps.p_prefix in
            let solved =
              match ps.p_verdict with
              | Converged _ -> resolve_from ctx pctx ps.p_nodes seed
              | _ -> solve_prefix ctx pctx
            in
            build_psol ctx pctx solved))
      t.t_psols
  in
  Ok
    {
      t_ctx = ctx;
      t_workload = t.t_workload;
      t_psols = psols;
      t_stats =
        {
          node_evals = ctx.evals;
          spf_rows = ctx.spf;
          prefixes_solved = List.length psols - !reused;
          prefixes_reused = !reused;
        };
    }

let rcp_nodes ctx =
  let acc = ref [] in
  Array.iteri
    (fun r (roles : Router.roles) -> if roles.is_rcp then acc := r :: !acc)
    ctx.roles;
  List.rev !acc

let copy_graph g =
  let n = Graph.node_count g in
  let g' = Graph.create ~n in
  for u = 0 to n - 1 do
    List.iter (fun (v, m) -> Graph.add_arc g' u v m) (Graph.neighbors g u)
  done;
  g'

(* Recompute the SPF rows of [ctx.dist] (previous distances in [old])
   that a topology change could affect, marking rows that did change.
   [tight r] must be a sound over-approximation of "row r's shortest
   paths used the failed element". *)
let refresh_rows ctx old g' tight =
  let n = Array.length old in
  let affected = ref [] in
  for r = 0 to n - 1 do
    if ctx.live.(r) && tight r then begin
      ctx.dist.(r) <- Spf.distances g' ~src:r;
      ctx.spf <- ctx.spf + 1;
      if ctx.dist.(r) <> old.(r) then affected := r :: !affected
    end
  done;
  List.rev !affected

let fail_link t u v =
  let ctx0 = t.t_ctx in
  let cfg = ctx0.cfg in
  let n = cfg.Config.n_routers in
  if u < 0 || u >= n || v < 0 || v >= n || u = v then
    Error "fail-link: router index out of range"
  else
    match Graph.metric cfg.Config.igp u v with
    | None -> Error (Printf.sprintf "fail-link: no link r%d -- r%d" u v)
    | Some m ->
      let igp' = copy_graph cfg.Config.igp in
      Graph.remove_edge igp' u v;
      let cfg' = { cfg with Config.igp = igp' } in
      let ctx =
        {
          ctx0 with
          cfg = cfg';
          dist = Array.map Array.copy ctx0.dist;
          evals = 0;
          spf = 0;
        }
      in
      let g' = masked_graph cfg' ctx.live in
      (* A row is affected only if the failed edge was on one of its
         shortest paths, i.e. tight in either direction. *)
      let tight r =
        let du = ctx0.dist.(r).(u) and dv = ctx0.dist.(r).(v) in
        du <> Spf.unreachable && dv <> Spf.unreachable
        && (du + m = dv || dv + m = du)
      in
      let affected = refresh_rows ctx ctx0.dist g' tight in
      let extra =
        match cfg'.Config.scheme with
        | Config.Rcp _ when affected <> [] -> rcp_nodes ctx
        | _ -> []
      in
      redo t ctx (fun _ ->
          if affected = [] then `Reuse else `Seed (affected @ extra))

let fail_router t x =
  let ctx0 = t.t_ctx in
  let cfg = ctx0.cfg in
  let n = cfg.Config.n_routers in
  if x < 0 || x >= n then Error "fail-router: index out of range"
  else if not ctx0.live.(x) then
    Error (Printf.sprintf "fail-router: r%d is already down" x)
  else begin
    let live = Array.copy ctx0.live in
    live.(x) <- false;
    let inj = List.filter (fun (b, _, _) -> live.(b)) ctx0.inj in
    let ctx =
      {
        ctx0 with
        live;
        inj;
        dist = Array.map Array.copy ctx0.dist;
        evals = 0;
        spf = 0;
      }
    in
    let g' = masked_graph cfg live in
    let x_arcs =
      List.filter (fun (w, _) -> ctx0.live.(w)) (Graph.neighbors cfg.Config.igp x)
    in
    (* A row is affected only if a shortest path traversed x: it entered
       x (finite d(r,x)) and left over some tight arc x -> w. *)
    let tight r =
      r = x
      || (let dx = ctx0.dist.(r).(x) in
          dx <> Spf.unreachable
          && List.exists
               (fun (w, m) ->
                 ctx0.dist.(r).(w) <> Spf.unreachable
                 && dx + m = ctx0.dist.(r).(w))
               x_arcs)
    in
    let affected = refresh_rows ctx ctx0.dist g' (fun r -> r <> x && tight r) in
    ctx.dist.(x) <- Spf.distances g' ~src:x;
    ctx.spf <- ctx.spf + 1;
    let extra =
      match cfg.Config.scheme with
      | Config.Rcp _ -> rcp_nodes ctx
      | _ -> []
    in
    redo t ctx (fun ps ->
        let pctx = make_pctx ctx ps.p_prefix in
        `Seed (dedup_ints ((x :: affected) @ successors ctx pctx x @ extra)))
  end

let all_live_seed ctx =
  let acc = ref [] in
  Array.iteri (fun r up -> if up then acc := r :: !acc) ctx.live;
  List.rev !acc

let fail_arr t a =
  let ctx0 = t.t_ctx in
  let cfg = ctx0.cfg in
  match cfg.Config.scheme with
  | Config.Abrr s ->
    if a < 0 || a >= cfg.Config.n_routers then
      Error "fail-arr: index out of range"
    else if not (Array.exists (List.mem a) s.Config.arrs) then
      Error (Printf.sprintf "fail-arr: r%d serves no AP" a)
    else begin
      let arrs' = Array.map (List.filter (fun r -> r <> a)) s.Config.arrs in
      let cfg' =
        { cfg with Config.scheme = Config.Abrr { s with Config.arrs = arrs' } }
      in
      match Config.validate cfg' with
      | Error e -> Error ("fail-arr: resulting configuration invalid: " ^ e)
      | Ok () ->
        let ctx =
          {
            ctx0 with
            cfg = cfg';
            roles = Array.init cfg.Config.n_routers (Router.derive_roles cfg');
            evals = 0;
            spf = 0;
          }
        in
        redo t ctx (fun ps ->
            let covering =
              Partition.aps_of_prefix s.Config.partition ps.p_prefix
            in
            if List.exists (fun ap -> List.mem a s.Config.arrs.(ap)) covering
            then `Seed (all_live_seed ctx)
            else `Reuse)
    end
  | _ -> Error "fail-arr: scheme is not ABRR"

let repartition t part' =
  let ctx0 = t.t_ctx in
  let cfg = ctx0.cfg in
  match cfg.Config.scheme with
  | Config.Abrr s ->
    if Partition.count part' <> Array.length s.Config.arrs then
      Error "repartition: AP count does not match the ARR assignment"
    else begin
      let cfg' =
        {
          cfg with
          Config.scheme = Config.Abrr { s with Config.partition = part' };
        }
      in
      match Config.validate cfg' with
      | Error e -> Error ("repartition: resulting configuration invalid: " ^ e)
      | Ok () ->
        let ctx =
          {
            ctx0 with
            cfg = cfg';
            roles = Array.init cfg.Config.n_routers (Router.derive_roles cfg');
            evals = 0;
            spf = 0;
          }
        in
        redo t ctx (fun ps ->
            let old_cover =
              Partition.aps_of_prefix s.Config.partition ps.p_prefix
            in
            let new_cover = Partition.aps_of_prefix part' ps.p_prefix in
            if List.equal Int.equal old_cover new_cover then `Reuse
            else `Seed (all_live_seed ctx))
    end
  | _ -> Error "repartition: scheme is not ABRR"

let apply_delta t = function
  | Fail_link (u, v) -> fail_link t u v
  | Fail_router x -> fail_router t x
  | Fail_arr a -> fail_arr t a
  | Repartition p -> repartition t p

let same_verdict a b =
  match (a, b) with
  | Converged _, Converged _
  | Diverged _, Diverged _
  | Unresolved _, Unresolved _
  | Unsupported _, Unsupported _ ->
    true
  | _ -> false

let same_outcome a b =
  List.length a.t_psols = List.length b.t_psols
  && List.for_all2
       (fun pa pb ->
         Prefix.compare pa.p_prefix pb.p_prefix = 0
         && same_verdict pa.p_verdict pb.p_verdict
         &&
         let n = Array.length pa.p_best in
         n = Array.length pb.p_best
         &&
         let ok = ref true in
         for r = 0 to n - 1 do
           (match (pa.p_best.(r), pb.p_best.(r)) with
           | Some x, Some y when R.equal x y -> ()
           | None, None -> ()
           | _ -> ok := false);
           if pa.p_exits.(r) <> pb.p_exits.(r) then ok := false
         done;
         !ok)
       a.t_psols b.t_psols

(* ------------------------------------------------------------------ *)
(* Findings.                                                            *)

let findings t =
  let ctx = t.t_ctx in
  let n = ctx.cfg.Config.n_routers in
  let psols = t.t_psols in
  if psols = [] then
    [
      Report.warn ~code:"PROP-NO-WORKLOAD" "prop.converge"
        "no injected routes: nothing to analyze";
    ]
  else begin
    let conv =
      List.filter
        (fun ps -> match ps.p_verdict with Converged _ -> true | _ -> false)
        psols
    in
    let diverged =
      List.filter
        (fun ps -> match ps.p_verdict with Diverged _ -> true | _ -> false)
        psols
    in
    let unresolved =
      List.filter_map
        (fun ps ->
          match ps.p_verdict with Unresolved w -> Some (ps, w) | _ -> None)
        psols
    in
    let unsupported =
      List.filter_map
        (fun ps ->
          match ps.p_verdict with Unsupported w -> Some (ps, w) | _ -> None)
        psols
    in
    (* Classify dispute cycles: MED-induced cycles (RFC 3345) vanish
       under always-compare-med, topology cycles persist. *)
    let med_div, topo_div =
      List.partition
        (fun ps ->
          let ctx' = { ctx with med = D.Always_compare } in
          let pctx = make_pctx ctx' ps.p_prefix in
          match snd (solve_prefix ctx' pctx) with
          | Converged _ -> true
          | _ -> false)
        diverged
    in
    let converge_findings =
      (if diverged = [] && unresolved = [] && conv <> [] then
         [
           Report.pass "prop.converge"
             "symbolic fixpoint reached on all %d analyzable prefixes"
             (List.length conv);
         ]
       else [])
      @ (match med_div with
        | [] -> []
        | ps0 :: _ ->
          [
            Report.fail ~code:"OSC-MED" "prop.converge"
              "%d prefixes have no fixpoint: MED-induced dispute cycle (RFC \
               3345), vanishes under always-compare-med (e.g. %s)"
              (List.length med_div)
              (Prefix.to_string ps0.p_prefix);
          ])
      @ (match topo_div with
        | [] -> []
        | ps0 :: _ ->
          [
            Report.fail ~code:"OSC-TOPO" "prop.converge"
              "%d prefixes have no fixpoint: topology-based dispute cycle, \
               persists under always-compare-med (e.g. %s)"
              (List.length topo_div)
              (Prefix.to_string ps0.p_prefix);
          ])
      @ (match unresolved with
        | [] -> []
        | (ps0, why) :: _ ->
          [
            Report.warn ~code:"PROP-UNRESOLVED" "prop.converge"
              "%d prefixes unresolved (e.g. %s: %s)" (List.length unresolved)
              (Prefix.to_string ps0.p_prefix)
              why;
          ])
      @
      match unsupported with
      | [] -> []
      | (_, why) :: _ ->
        [
          Report.warn ~code:"PROP-UNSUPPORTED" "prop.converge"
            "%d prefixes not analyzable: %s" (List.length unsupported) why;
        ]
    in
    (* Visibility: a router that cannot learn some best-AS-level class
       whose egress is elsewhere — TBRR's hidden path diversity. *)
    let vis_slots = ref 0 in
    let vis_example = ref None in
    List.iter
      (fun ps ->
        for r = 0 to n - 1 do
          if ctx.live.(r) then begin
            let missing =
              List.filter
                (fun cls ->
                  (match owner_of ctx cls with
                  | Some o -> o <> r
                  | None -> false)
                  && not (List.exists (R.equal cls) ps.p_learnable.(r)))
                ps.p_ref_classes
            in
            if missing <> [] then begin
              incr vis_slots;
              if !vis_example = None then
                vis_example := Some (ps.p_prefix, r, List.length missing)
            end
          end
        done)
      conv;
    let visibility_findings =
      if conv = [] then []
      else if !vis_slots = 0 then
        [
          Report.pass "prop.visibility"
            "every router can learn every best-AS-level class";
        ]
      else
        match !vis_example with
        | Some (p, r, k) ->
          [
            Report.warn ~code:"VIS-HIDDEN" "prop.visibility"
              "%d router-prefix slots are hidden some best-AS-level class \
               (e.g. r%d misses %d classes for %s)"
              !vis_slots r k (Prefix.to_string p);
          ]
        | None -> []
    in
    (* Exits vs the full-visibility reference. *)
    let subopt = ref 0 in
    let subopt_example = ref None in
    List.iter
      (fun ps ->
        for r = 0 to n - 1 do
          if ctx.live.(r) then
            match (ps.p_exits.(r), ps.p_ref_exits.(r)) with
            | Some got, Some want when got <> want ->
              incr subopt;
              if !subopt_example = None then
                subopt_example := Some (ps.p_prefix, r, got, want)
            | _ -> ()
        done)
      conv;
    let exit_findings =
      if conv = [] then []
      else if !subopt = 0 then
        [
          Report.pass "prop.exit"
            "every router's egress matches the full-visibility reference";
        ]
      else
        match !subopt_example with
        | Some (p, r, got, want) ->
          [
            Report.warn ~code:"EXIT-SUBOPT" "prop.exit"
              "%d router-prefix slots use a suboptimal exit (e.g. r%d exits \
               via r%d instead of r%d for %s)"
              !subopt r got want (Prefix.to_string p);
          ]
        | None -> []
    in
    (* Forwarding loops along IGP shortest paths over the masked graph. *)
    let loop_cfg = { ctx.cfg with Config.igp = masked_graph ctx.cfg ctx.live } in
    let loop =
      List.find_map
        (fun ps ->
          Option.map
            (fun walk -> (ps.p_prefix, walk))
            (Deflection.find_loop loop_cfg ps.p_exits))
        conv
    in
    let fwd_findings =
      if conv = [] then []
      else
        match loop with
        | None ->
          [ Report.pass "prop.fwd" "hop-by-hop forwarding is loop-free" ]
        | Some (p, walk) ->
          [
            Report.fail ~code:"FWD-LOOP" "prop.fwd"
              "%s: inconsistent egress choices form a forwarding loop: %s"
              (Prefix.to_string p)
              (String.concat " -> " (List.map (Printf.sprintf "r%d") walk));
          ]
    in
    let summary =
      Report.pass "prop.summary"
        "%d prefixes, %d learnable classes, %d node evals, %d SPF rows"
        (List.length psols) (class_count t) t.t_stats.node_evals
        t.t_stats.spf_rows
    in
    converge_findings @ visibility_findings @ exit_findings @ fwd_findings
    @ [ summary ]
  end

let check ?live cfg workload = findings (solve ?live cfg workload)
