open Netaddr
module Partition = Abrr_core.Partition

type range = Ipv4.t * Ipv4.t

let ranges_of_partition part =
  List.init (Partition.count part) (Partition.range part)

(* Number of trailing zero bits of a positive int, capped at 32. *)
let trailing_zeros n =
  let rec go n k = if k >= 32 || n land 1 = 1 then k else go (n lsr 1) (k + 1) in
  go n 0

(* Largest k with 2^k <= n, for n >= 1. *)
let floor_log2 n =
  let rec go n k = if n <= 1 then k else go (n lsr 1) (k + 1) in
  go n 0

let cidrs_of_range (lo, hi) =
  let lo = Ipv4.to_int lo and hi = Ipv4.to_int hi in
  if hi < lo then invalid_arg "Ap_check.cidrs_of_range: empty range";
  let rec go lo acc =
    if lo > hi then List.rev acc
    else
      let align = if lo = 0 then 32 else trailing_zeros lo in
      let k = min align (floor_log2 (hi - lo + 1)) in
      go (lo + (1 lsl k)) (Prefix.make (Ipv4.of_int lo) (32 - k) :: acc)
  in
  go lo []

let to_trie ranges =
  List.fold_left
    (fun (trie, ap) range ->
      ( List.fold_left
          (fun trie cidr -> Prefix_trie.add cidr ap trie)
          trie (cidrs_of_range range),
        ap + 1 ))
    (Prefix_trie.empty, 0) ranges
  |> fst

let owners trie p =
  (* The trie's blocks are pairwise disjoint, so a block overlapping [p]
     either contains its first address or is covered by [p]. *)
  let covering = List.map snd (Prefix_trie.matches (Prefix.first p) trie) in
  let inside = List.map snd (Prefix_trie.covered p trie) in
  List.sort_uniq Int.compare (covering @ inside)

let coverage ranges =
  let check = "ap.coverage" in
  match ranges with
  | [] -> [ Report.fail ~code:"AP-NONE" check "no address partitions configured" ]
  | _ ->
    let indexed = List.mapi (fun i r -> (i, r)) ranges in
    let malformed =
      List.filter_map
        (fun (i, (lo, hi)) ->
          if Ipv4.compare hi lo < 0 then
            Some
              (Report.fail ~code:"AP-EMPTY" check "AP %d is empty: %s > %s" i (Ipv4.to_string lo)
                 (Ipv4.to_string hi))
          else None)
        indexed
    in
    if malformed <> [] then malformed
    else begin
      let sorted =
        List.sort
          (fun (_, (a, _)) (_, (b, _)) -> Ipv4.compare a b)
          indexed
      in
      let findings = ref [] in
      let note f = findings := f :: !findings in
      (match sorted with
      | (i, (lo, _)) :: _ when Ipv4.to_int lo <> 0 ->
        note
          (Report.fail ~code:"AP-GAP" check "gap before AP %d: 0.0.0.0 - %s uncovered" i
             (Ipv4.to_string (Ipv4.pred lo)))
      | _ -> ());
      let rec walk = function
        | (i, (_, hi_i)) :: ((j, (lo_j, _)) :: _ as rest) ->
          let hi = Ipv4.to_int hi_i and lo = Ipv4.to_int lo_j in
          if lo <= hi then
            note
              (Report.fail ~code:"AP-OVERLAP" check "AP %d and AP %d overlap: %s - %s claimed twice"
                 i j (Ipv4.to_string lo_j)
                 (Ipv4.to_string (if hi < lo then lo_j else hi_i)))
          else if lo > hi + 1 then
            note
              (Report.fail ~code:"AP-GAP" check "gap between AP %d and AP %d: %s - %s uncovered"
                 i j
                 (Ipv4.to_string (Ipv4.succ hi_i))
                 (Ipv4.to_string (Ipv4.pred lo_j)));
          walk rest
        | [ (i, (_, hi)) ] ->
          if Ipv4.to_int hi <> Ipv4.to_int Ipv4.max_addr then
            note
              (Report.fail ~code:"AP-GAP" check "gap after AP %d: %s - 255.255.255.255 uncovered"
                 i
                 (Ipv4.to_string (Ipv4.succ hi)))
        | [] -> ()
      in
      walk sorted;
      if !findings = [] then
        [
          Report.pass check
            "%d APs cover the full address space, pairwise disjoint"
            (List.length ranges);
        ]
      else List.rev !findings
    end

let check_arrs ~live ~n_routers arrs =
  let check = "ap.arrs" in
  let findings = ref [] in
  let note f = findings := f :: !findings in
  Array.iteri
    (fun ap ids ->
      if ids = [] then note (Report.fail ~code:"AP-NO-ARR" check "AP %d has no ARRs assigned" ap)
      else begin
        List.iter
          (fun r ->
            if r < 0 || r >= n_routers then
              note (Report.fail ~code:"AP-ARR-RANGE" check "AP %d: ARR %d out of range" ap r))
          ids;
        let alive = List.filter (fun r -> r >= 0 && r < n_routers && live r) ids in
        if alive = [] then
          note
            (Report.fail ~code:"AP-ARR-DOWN" check "AP %d: all %d ARRs are down" ap (List.length ids))
        else if List.length alive = 1 && List.length ids > 1 then
          note
            (Report.warn ~code:"AP-ARR-REDUNDANCY" check "AP %d: only 1 of %d ARRs alive (no redundancy)"
               ap (List.length ids))
      end)
    arrs;
  if !findings = [] then
    [
      Report.pass check "every AP has live ARRs (%d APs, %d assignments)"
        (Array.length arrs)
        (Array.fold_left (fun acc ids -> acc + List.length ids) 0 arrs);
    ]
  else List.rev !findings

let check_prefixes ~live ~trie ~part ~arrs prefixes =
  let check = "ap.prefix-map" in
  let uncovered = ref [] and mismatched = ref [] and dead = ref [] in
  let spanning = ref 0 in
  List.iter
    (fun p ->
      let from_trie = owners trie p in
      let from_part = Partition.aps_of_prefix part p in
      if from_trie = [] then uncovered := p :: !uncovered
      else begin
        if from_trie <> from_part then mismatched := p :: !mismatched;
        if List.length from_trie > 1 then incr spanning;
        if
          List.exists
            (fun ap ->
              ap >= Array.length arrs || not (List.exists live arrs.(ap)))
            from_trie
        then dead := p :: !dead
      end)
    prefixes;
  let sample ps =
    match List.rev ps with p :: _ -> Prefix.to_string p | [] -> "-"
  in
  let findings = ref [] in
  if !uncovered <> [] then
    findings :=
      Report.fail ~code:"AP-PREFIX-UNMAPPED" check "%d prefixes map to no AP (e.g. %s)"
        (List.length !uncovered) (sample !uncovered)
      :: !findings;
  if !mismatched <> [] then
    findings :=
      Report.fail ~code:"AP-PREFIX-MISMATCH" check
        "%d prefixes: trie mapping disagrees with Partition.aps_of_prefix (e.g. %s)"
        (List.length !mismatched) (sample !mismatched)
      :: !findings;
  if !dead <> [] then
    findings :=
      Report.fail ~code:"AP-PREFIX-DEAD" check "%d prefixes fall in an AP with no live ARR (e.g. %s)"
        (List.length !dead) (sample !dead)
      :: !findings;
  if !findings = [] then
    [
      Report.pass check
        "%d prefixes each map to live ARRs (%d span an AP boundary)"
        (List.length prefixes) !spanning;
    ]
  else List.rev !findings

let check ?(live = fun _ -> true) ?(prefixes = []) ~n_routers part arrs =
  let ranges = ranges_of_partition part in
  let report = coverage ranges in
  let report =
    if Array.length arrs <> Partition.count part then
      report
      @ [
          Report.fail ~code:"AP-ARR-MISMATCH" "ap.arrs" "ARR array length %d does not match %d APs"
            (Array.length arrs) (Partition.count part);
        ]
    else report @ check_arrs ~live ~n_routers arrs
  in
  if prefixes = [] then report
  else
    report
    @ check_prefixes ~live ~trie:(to_trie ranges) ~part ~arrs prefixes
