open Netaddr
module Config = Abrr_core.Config
module D = Bgp.Decision
module Route = Bgp.Route

type injection = int * Ipv4.t * Bgp.Route.t

type outcome =
  | Stable of { iterations : int }
  | Cycle of { period : int; start : int }
  | Free of string
  | Not_analyzed of string

let prefixes injections =
  List.sort_uniq Prefix.compare
    (List.map (fun (_, _, (r : Route.t)) -> r.Route.prefix) injections)

let normalize ~border (r : Route.t) =
  Route.update ~next_hop:(Config.loopback border) ~path_id:0
    ~originator_id:None ~cluster_list:[] r

let own_candidates ~prefix injections r =
  List.filter_map
    (fun (b, _, route) ->
      if b = r && Prefix.compare route.Route.prefix prefix = 0 then
        Some (D.candidate ~learned:D.Ebgp (normalize ~border:b route))
      else None)
    injections

let border_advert ~med_mode ~prefix injections b =
  Option.map
    (fun (c : D.candidate) -> c.D.route)
    (D.best ~med_mode (own_candidates ~prefix injections b))

(* The synchronous mesh game for one prefix under one TBRR spec. *)
type mesh = {
  trrs : int array;
  clientside : D.candidate list array;  (** per TRR: state-independent candidates *)
  owner_cost : int -> Route.t -> int;  (** TRR index -> IGP cost to next hop *)
  med_mode : D.med_mode;
  multipath : bool;
  best_external : bool;
}

let make_mesh ?med_mode (config : Config.t) (s : Config.tbrr_spec) ~prefix
    injections =
  let med_mode = Option.value med_mode ~default:config.med_mode in
  let trrs =
    Array.of_list
      (List.sort_uniq Int.compare
         (List.concat_map (fun (c : Config.cluster) -> c.trrs) s.clusters))
  in
  let dist = Array.map (fun r -> Igp.Spf.distances config.igp ~src:r) trrs in
  let owner_cost i (route : Route.t) =
    match Config.router_of_loopback config (Route.next_hop route) with
    | Some o -> dist.(i).(o)
    | None -> 0
  in
  let clientside =
    Array.mapi
      (fun i r ->
        let clients =
          List.concat_map
            (fun (c : Config.cluster) ->
              if List.mem r c.Config.trrs then c.Config.clients else [])
            s.clusters
          |> List.sort_uniq Int.compare
          |> List.filter (fun b -> b <> r)
        in
        let client_adverts =
          List.filter_map
            (fun b ->
              Option.map
                (fun route ->
                  D.candidate ~learned:D.Ibgp ~peer_id:(Config.loopback b)
                    ~igp_cost:(owner_cost i route) route)
                (border_advert ~med_mode ~prefix injections b))
            clients
        in
        own_candidates ~prefix injections r @ client_adverts)
      trrs
  in
  { trrs; clientside; owner_cost; med_mode; multipath = s.multipath;
    best_external = s.best_external }

let mesh_candidates mesh state i =
  Array.to_list
    (Array.mapi
       (fun j adverts ->
         if j = i then []
         else
           List.map
             (fun u ->
               D.candidate ~learned:D.Ibgp
                 ~peer_id:(Config.loopback mesh.trrs.(j))
                 ~igp_cost:(mesh.owner_cost i u) u)
             adverts)
       state)
  |> List.concat

let advert_of mesh state i =
  let clientside = mesh.clientside.(i) in
  if mesh.multipath then
    D.steps_1_to_4 ~med_mode:mesh.med_mode clientside
    |> List.map (fun (c : D.candidate) -> c.D.route)
    |> List.sort_uniq Route.compare
  else if mesh.best_external then
    match D.best ~med_mode:mesh.med_mode clientside with
    | None -> []
    | Some c -> [ c.D.route ]
  else
    match
      D.best ~med_mode:mesh.med_mode (clientside @ mesh_candidates mesh state i)
    with
    | None -> []
    | Some b -> if List.mem b clientside then [ b.D.route ] else []

(* One round of sequential (round-robin) best response: each TRR in turn
   recomputes its mesh advert seeing the updates already made this round.
   Gauss-Seidel rather than Jacobi on purpose: simultaneous updates make
   plain hot-potato pairs (each TRR preferring the other's advert)
   flip-flop in lockstep even though a fixed point exists and the
   asynchronous protocol finds it. Sequential activation settles into an
   existing fixed point; only instances with NO fixed point — genuine
   dispute cycles like the RFC 3345 and DISAGREE gadgets — keep cycling. *)
let step mesh state =
  let next = Array.copy state in
  Array.iteri (fun i _ -> next.(i) <- advert_of mesh next i) next;
  next

let max_rounds = 512

let run_mesh mesh =
  let init = Array.make (Array.length mesh.trrs) [] in
  let seen = Hashtbl.create 32 in
  let rec go k state =
    match Hashtbl.find_opt seen state with
    | Some j -> Cycle { period = k - j; start = j }
    | None ->
      if k > max_rounds then
        Not_analyzed
          (Printf.sprintf "no repeat within %d synchronous rounds" max_rounds)
      else begin
        Hashtbl.add seen state k;
        let next = step mesh state in
        if next = state then Stable { iterations = k } else go (k + 1) next
      end
  in
  go 0 init

(* Run the game to its fixed point and return it, or None on a cycle. *)
let fixed_point mesh =
  let rec go k state =
    if k > max_rounds then None
    else
      let next = step mesh state in
      if next = state then Some state else go (k + 1) next
  in
  match run_mesh mesh with
  | Stable _ -> go 0 (Array.make (Array.length mesh.trrs) [])
  | _ -> None

type tbrr_view = {
  trr_router : int;
  own_best : Route.t option;
  to_clients : Route.t list;
}

let tbrr_views ?med_mode (config : Config.t) (s : Config.tbrr_spec) ~prefix
    injections =
  let mesh = make_mesh ?med_mode config s ~prefix injections in
  match fixed_point mesh with
  | None -> `Oscillates
  | Some state ->
    `Views
      (Array.to_list
         (Array.mapi
            (fun i r ->
              let all = mesh.clientside.(i) @ mesh_candidates mesh state i in
              let own_best =
                Option.map
                  (fun (c : D.candidate) -> c.D.route)
                  (D.best ~med_mode:mesh.med_mode all)
              in
              let to_clients =
                if mesh.multipath then
                  D.steps_1_to_4 ~med_mode:mesh.med_mode all
                  |> List.map (fun (c : D.candidate) -> c.D.route)
                  |> List.sort_uniq Route.compare
                else Option.to_list own_best
              in
              { trr_router = r; own_best; to_clients })
            mesh.trrs))

let analyze ?med_mode (config : Config.t) ~prefix injections =
  match config.scheme with
  | Config.Full_mesh ->
    Free "full mesh: every router sees every advert; decisions are independent"
  | Config.Rcp _ ->
    Free "RCP computes each client's best path centrally from full visibility"
  | Config.Abrr _ ->
    Free
      "ARR adverts are the best AS-level routes of their APs, independent of \
       other reflectors' state (§2.3.1)"
  | Config.Confed _ ->
    Not_analyzed "confederation dynamics are not modeled statically"
  | Config.Tbrr s | Config.Dual { tbrr = s; _ } ->
    run_mesh (make_mesh ?med_mode config s ~prefix injections)

let check (config : Config.t) injections =
  match prefixes injections with
  | [] ->
    [ Report.warn ~code:"OSC-NO-WORKLOAD" "anomaly.oscillation" "no injected routes: nothing to analyze" ]
  | ps ->
    List.map
      (fun p ->
        let pstr = Prefix.to_string p in
        match analyze config ~prefix:p injections with
        | Free why ->
          Report.pass "anomaly.oscillation"
            "%s: oscillation-free by construction (%s)" pstr why
        | Not_analyzed why -> Report.warn ~code:"OSC-UNRESOLVED" "anomaly.oscillation" "%s: %s" pstr why
        | Stable { iterations } ->
          Report.pass "anomaly.oscillation"
            "%s: mesh adverts reach a fixed point in %d round(s)" pstr iterations
        | Cycle { period; start } -> (
          match analyze ~med_mode:D.Always_compare config ~prefix:p injections with
          | Stable _ ->
            Report.fail ~code:"OSC-MED" "anomaly.oscillation"
              "%s: MED-induced oscillation (RFC 3345): mesh adverts cycle with \
               period %d from round %d; vanishes under always-compare-med"
              pstr period start
          | _ ->
            Report.fail ~code:"OSC-TOPO" "anomaly.oscillation"
              "%s: topology-based dispute cycle (DISAGREE): period %d \
               regardless of MED mode"
              pstr period))
      ps
