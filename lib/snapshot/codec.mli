(** Low-level binary writers and readers for the snapshot format —
    big-endian, length-prefixed, the same house style as [Topo.Mrt].
    Dependency-free: stdlib [Buffer] and [String] only. *)

exception Bad of string
(** Raised by readers on malformed input; the top-level decoder catches
    it and returns [Error _]. Never escapes {!Snapshot.decode}. *)

val bad : ('a, unit, string, 'b) format4 -> 'a
(** [bad fmt ...] raises {!Bad} with a formatted message. *)

(** {1 Writers} — append big-endian values to a [Buffer.t]. *)

val w8 : Buffer.t -> int -> unit
val w16 : Buffer.t -> int -> unit
val w32 : Buffer.t -> int -> unit
val w64 : Buffer.t -> int64 -> unit

val wint : Buffer.t -> int -> unit
(** A full OCaml [int], sign-extended through 64 bits. *)

val wbool : Buffer.t -> bool -> unit

val wstr : Buffer.t -> string -> unit
(** 32-bit length prefix + raw bytes. *)

val wlist : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val warray : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
val wopt : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

(** {1 Readers} — consume from a cursor over an immutable string; every
    read bounds-checks and raises {!Bad} on truncation. *)

type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val r8 : reader -> int
val r16 : reader -> int
val r32 : reader -> int
val r64 : reader -> int64
val rint : reader -> int
val rbool : reader -> bool
val rstr : reader -> string
val rlist : reader -> (reader -> 'a) -> 'a list
val rarray : reader -> (reader -> 'a) -> 'a array
val ropt : reader -> (reader -> 'a) -> 'a option

(** {1 Integrity} *)

val crc32 : ?off:int -> ?len:int -> string -> int
(** Standard reflected CRC-32 (polynomial 0xEDB88320), as used by zip /
    png — the snapshot trailer guards against torn or bit-rotted files. *)
