open Abrr_core
module Sim = Eventsim.Sim
module R = Bgp.Route
module C = Codec

let magic = "ABRRSNAP"

(* v2: attribute blocks are interned below the route table (each
   distinct block's path attributes are encoded exactly once; routes
   become (block id, prefix, path id) triples), the per-router seen-set
   is gone (derived on demand — Router.known_prefixes), and routers
   carry 3 best-sender tables instead of 4.
   v3: counters gain the incremental-decision outcome fields
   (decisions_full/delta/skipped). The decision engine itself is
   deliberately NOT in the config fingerprint: both engines are proven
   state-identical, so a snapshot taken under either restores under
   either.
   v4: per-router route-flap-damping state (Router.damp_state list —
   empty when damping is off) and four scenario counters
   (routes_damped/hijacks_injected/takeovers/prefixes_moved_on_repartition);
   the fingerprint gains a damping on/off marker, since restoring
   damping state into a network that keeps none (or vice versa) would
   silently change behaviour. *)
let format_version = 4

(* ------------------------------------------------------------------ *)
(* Config fingerprint                                                  *)

let scheme_fp = function
  | Config.Full_mesh -> "mesh"
  | Config.Tbrr s ->
    Printf.sprintf "tbrr(%d,%b,%b)"
      (List.length s.Config.clusters)
      s.Config.multipath s.Config.best_external
  | Config.Abrr s ->
    Printf.sprintf "abrr(%d,%d,%s)"
      (Partition.count s.Config.partition)
      (Array.length s.Config.arrs)
      (match s.Config.loop_prevention with
      | Config.Reflected_bit -> "rbit"
      | Config.Cluster_list -> "clist")
  | Config.Confed s ->
    Printf.sprintf "confed(%d,%d)"
      (Array.length s.Config.sub_as_of)
      (List.length s.Config.confed_links)
  | Config.Rcp { rcps } -> Printf.sprintf "rcp(%d)" (List.length rcps)
  | Config.Dual { tbrr; abrr; accept } ->
    (* Acceptance values are runtime state (§2.4 transition flips them
       mid-run) — the body captures them; only the shape goes here. *)
    Printf.sprintf "dual(%d,%d,%d)"
      (List.length tbrr.Config.clusters)
      (Array.length abrr.Config.arrs)
      (Array.length accept)

let fingerprint (c : Config.t) =
  Printf.sprintf
    "n=%d;asn=%d;scheme=%s;med=%s;mrai=%d;proc=%d;jitter=%d;full=%b;cprr=%b;damp=%b"
    c.Config.n_routers
    (Bgp.Asn.to_int c.Config.asn)
    (scheme_fp c.Config.scheme)
    (match c.Config.med_mode with
    | Bgp.Decision.Always_compare -> "always"
    | Bgp.Decision.Per_neighbor_as -> "per-as")
    c.Config.mrai c.Config.proc_delay c.Config.proc_jitter
    c.Config.store_full_sets c.Config.control_plane_rrs
    (c.Config.damping <> None)

(* ------------------------------------------------------------------ *)
(* Route interning                                                     *)

(* Routes repeat heavily across RIB tables (the same route sits in a
   sender's Adj-RIB-Out, the receiver's Adj-RIB-In and often a Loc-RIB),
   so the format stores each distinct route once and references it by id
   everywhere else. Ids are assigned in body first-use order, which is
   deterministic because the body itself is canonical.

   Mirroring the in-memory representation (Bgp.Route), a route entry is
   only a (block id, prefix, path id) head; the heavy path-attribute
   blocks live in their own table, each distinct block encoded exactly
   once — as the attribute section of a single-NLRI RFC 4271 UPDATE
   through the existing wire codec. Decoding rebuilds the sharing:
   every route referencing block [i] points at the same interned
   record. *)
type enc = {
  buf : Buffer.t;
  route_ids : (R.t, int) Hashtbl.t;
  mutable routes_rev : R.t list;
  mutable n_routes : int;
  attr_ids : (R.attrs, int) Hashtbl.t;
  mutable attrs_rev : R.attrs list;
  mutable n_attrs : int;
}

let route_id e r =
  match Hashtbl.find_opt e.route_ids r with
  | Some i -> i
  | None ->
    let i = e.n_routes in
    e.n_routes <- i + 1;
    Hashtbl.add e.route_ids r i;
    e.routes_rev <- r :: e.routes_rev;
    i

let attr_id e a =
  match Hashtbl.find_opt e.attr_ids a with
  | Some i -> i
  | None ->
    let i = e.n_attrs in
    e.n_attrs <- i + 1;
    Hashtbl.add e.attr_ids a i;
    e.attrs_rev <- a :: e.attrs_rev;
    i

(* An attribute block rides the wire codec as a single-NLRI UPDATE for
   a throwaway default-prefix head: only the attribute section varies
   between entries. *)
let attrs_bytes a =
  Bgp.Wire.encode ~add_paths:true
    (Bgp.Msg.Update
       { withdrawn = []; announced = [ R.of_attrs ~prefix:Netaddr.Prefix.default a ] })
  |> List.map Bytes.to_string
  |> String.concat ""

let attrs_of_bytes s =
  match Bgp.Wire.decode_all ~add_paths:true (Bytes.of_string s) with
  | Ok [ Bgp.Msg.Update { withdrawn = []; announced = [ r ] } ] -> R.attrs r
  | Ok _ -> C.bad "attribute table entry is not a single-route UPDATE"
  | Error err ->
    C.bad "attribute table entry: %s"
      (Format.asprintf "%a" Bgp.Wire.pp_error err)

let wroute e b r = C.w32 b (route_id e r)

type dec = { rd : C.reader; route_tbl : R.t array }

let rroute d =
  let i = C.r32 d.rd in
  if i >= Array.length d.route_tbl then
    C.bad "route id %d out of table range %d" i (Array.length d.route_tbl);
  d.route_tbl.(i)

(* ------------------------------------------------------------------ *)
(* Protocol pieces                                                     *)

let wprefix b p = C.wint b (Netaddr.Prefix.to_key p)
let rprefix d = Netaddr.Prefix.of_key (C.rint d.rd)
let wipv4 b a = C.wint b (Netaddr.Ipv4.to_int a)
let ripv4 d = Netaddr.Ipv4.of_int (C.rint d.rd)

let wdelta e b (d : Proto.delta) =
  wprefix b d.Proto.prefix;
  C.wlist b (wroute e) d.Proto.routes;
  C.wlist b C.wint d.Proto.withdrawn_ids

let rdelta d =
  let prefix = rprefix d in
  let routes = C.rlist d.rd (fun _ -> rroute d) in
  let withdrawn_ids = C.rlist d.rd C.rint in
  { Proto.prefix; routes; withdrawn_ids }

let witem e b ((c, delta) : Proto.item) =
  C.w8 b (Proto.channel_tag c);
  wdelta e b delta

let ritem d : Proto.item =
  let tag = C.r8 d.rd in
  let channel =
    try Proto.channel_of_tag tag
    with Invalid_argument _ -> C.bad "unknown channel tag %d" tag
  in
  (channel, rdelta d)

let winput e b (i : Router.input) =
  match i with
  | Router.In_items { src; items } ->
    C.w8 b 0;
    C.wint b src;
    C.wlist b (witem e) items
  | Router.In_ebgp { neighbor; route } ->
    C.w8 b 1;
    wipv4 b neighbor;
    wroute e b route
  | Router.In_ebgp_withdraw { neighbor; prefix; path_id } ->
    C.w8 b 2;
    wipv4 b neighbor;
    wprefix b prefix;
    C.wint b path_id
  | Router.In_local route ->
    C.w8 b 3;
    wroute e b route
  | Router.In_local_withdraw { prefix; path_id } ->
    C.w8 b 4;
    wprefix b prefix;
    C.wint b path_id
  | Router.In_redecide_all -> C.w8 b 5

let rinput d : Router.input =
  match C.r8 d.rd with
  | 0 ->
    let src = C.rint d.rd in
    let items = C.rlist d.rd (fun _ -> ritem d) in
    Router.In_items { src; items }
  | 1 ->
    let neighbor = ripv4 d in
    let route = rroute d in
    Router.In_ebgp { neighbor; route }
  | 2 ->
    let neighbor = ripv4 d in
    let prefix = rprefix d in
    let path_id = C.rint d.rd in
    Router.In_ebgp_withdraw { neighbor; prefix; path_id }
  | 3 -> Router.In_local (rroute d)
  | 4 ->
    let prefix = rprefix d in
    let path_id = C.rint d.rd in
    Router.In_local_withdraw { prefix; path_id }
  | 5 -> Router.In_redecide_all
  | t -> C.bad "unknown router input tag %d" t

let wop e b (op : Network.op) =
  match op with
  | Network.Inject { router; neighbor; route } ->
    C.w8 b 0;
    C.wint b router;
    wipv4 b neighbor;
    wroute e b route
  | Network.Withdraw { router; neighbor; prefix; path_id } ->
    C.w8 b 1;
    C.wint b router;
    wipv4 b neighbor;
    wprefix b prefix;
    C.wint b path_id
  | Network.Originate { router; route } ->
    C.w8 b 2;
    C.wint b router;
    wroute e b route
  | Network.Withdraw_local { router; prefix; path_id } ->
    C.w8 b 3;
    C.wint b router;
    wprefix b prefix;
    C.wint b path_id
  | Network.Fail i ->
    C.w8 b 4;
    C.wint b i
  | Network.Recover i ->
    C.w8 b 5;
    C.wint b i

let rop d : Network.op =
  match C.r8 d.rd with
  | 0 ->
    let router = C.rint d.rd in
    let neighbor = ripv4 d in
    let route = rroute d in
    Network.Inject { router; neighbor; route }
  | 1 ->
    let router = C.rint d.rd in
    let neighbor = ripv4 d in
    let prefix = rprefix d in
    let path_id = C.rint d.rd in
    Network.Withdraw { router; neighbor; prefix; path_id }
  | 2 ->
    let router = C.rint d.rd in
    let route = rroute d in
    Network.Originate { router; route }
  | 3 ->
    let router = C.rint d.rd in
    let prefix = rprefix d in
    let path_id = C.rint d.rd in
    Network.Withdraw_local { router; prefix; path_id }
  | 4 -> Network.Fail (C.rint d.rd)
  | 5 -> Network.Recover (C.rint d.rd)
  | t -> C.bad "unknown op tag %d" t

let wpayload e b (p : Network.payload) =
  match p with
  | Network.Deliver { src; dst; bytes; msgs; items } ->
    C.w8 b 0;
    C.wint b src;
    C.wint b dst;
    C.wint b bytes;
    C.wint b msgs;
    C.wlist b (witem e) items
  | Network.Process i ->
    C.w8 b 1;
    C.wint b i
  | Network.Mrai_flush { router; peer } ->
    C.w8 b 2;
    C.wint b router;
    C.wint b peer
  | Network.Purge { router; peer } ->
    C.w8 b 3;
    C.wint b router;
    C.wint b peer
  | Network.Establish { router; peer } ->
    C.w8 b 4;
    C.wint b router;
    C.wint b peer
  | Network.Op op ->
    C.w8 b 5;
    wop e b op
  | Network.Thunk _ ->
    C.bad
      "pending Thunk event (a closure scheduled with Network.at) cannot be \
       checkpointed; schedule Network.at_op operations instead"

let rpayload d : Network.payload =
  match C.r8 d.rd with
  | 0 ->
    let src = C.rint d.rd in
    let dst = C.rint d.rd in
    let bytes = C.rint d.rd in
    let msgs = C.rint d.rd in
    let items = C.rlist d.rd (fun _ -> ritem d) in
    Network.Deliver { src; dst; bytes; msgs; items }
  | 1 -> Network.Process (C.rint d.rd)
  | 2 ->
    let router = C.rint d.rd in
    let peer = C.rint d.rd in
    Network.Mrai_flush { router; peer }
  | 3 ->
    let router = C.rint d.rd in
    let peer = C.rint d.rd in
    Network.Purge { router; peer }
  | 4 ->
    let router = C.rint d.rd in
    let peer = C.rint d.rd in
    Network.Establish { router; peer }
  | 5 -> Network.Op (rop d)
  | t -> C.bad "unknown payload tag %d" t

let wevent e b (ev : Network.payload Sim.event) =
  C.wint b ev.Sim.time;
  C.wint b ev.Sim.seq;
  C.wint b ev.Sim.kind;
  C.wint b ev.Sim.actor;
  C.wint b ev.Sim.detail;
  wpayload e b ev.Sim.payload

let revent d : Network.payload Sim.event =
  let time = C.rint d.rd in
  let seq = C.rint d.rd in
  let kind = C.rint d.rd in
  let actor = C.rint d.rd in
  let detail = C.rint d.rd in
  let payload = rpayload d in
  { Sim.time; seq; kind; actor; detail; payload }

(* ------------------------------------------------------------------ *)
(* Router state                                                        *)

let wrib_dump e b (rd : Router.rib_dump) =
  C.wlist b
    (fun b (p, routes) ->
      wprefix b p;
      C.wlist b (wroute e) routes)
    rd

let rrib_dump d : Router.rib_dump =
  C.rlist d.rd (fun _ ->
      let p = rprefix d in
      let routes = C.rlist d.rd (fun _ -> rroute d) in
      (p, routes))

let wcounters b (c : Counters.t) =
  C.wint b c.Counters.updates_received;
  C.wint b c.Counters.updates_generated;
  C.wint b c.Counters.updates_transmitted;
  C.wint b c.Counters.updates_suppressed;
  C.wint b c.Counters.messages_transmitted;
  C.wint b c.Counters.bytes_transmitted;
  C.wint b c.Counters.bytes_received;
  C.wint b c.Counters.withdrawals_received;
  C.wint b c.Counters.withdrawals_transmitted;
  C.wint b c.Counters.decisions_run;
  C.wint b c.Counters.decisions_full;
  C.wint b c.Counters.decisions_delta;
  C.wint b c.Counters.decisions_skipped;
  C.wint b c.Counters.rib_touches;
  C.wint b c.Counters.routes_damped;
  C.wint b c.Counters.hijacks_injected;
  C.wint b c.Counters.takeovers;
  C.wint b c.Counters.prefixes_moved_on_repartition;
  C.wint b c.Counters.last_change;
  C.wint b c.Counters.mem_peak_kb

let rcounters d =
  let c = Counters.create () in
  c.Counters.updates_received <- C.rint d.rd;
  c.Counters.updates_generated <- C.rint d.rd;
  c.Counters.updates_transmitted <- C.rint d.rd;
  c.Counters.updates_suppressed <- C.rint d.rd;
  c.Counters.messages_transmitted <- C.rint d.rd;
  c.Counters.bytes_transmitted <- C.rint d.rd;
  c.Counters.bytes_received <- C.rint d.rd;
  c.Counters.withdrawals_received <- C.rint d.rd;
  c.Counters.withdrawals_transmitted <- C.rint d.rd;
  c.Counters.decisions_run <- C.rint d.rd;
  c.Counters.decisions_full <- C.rint d.rd;
  c.Counters.decisions_delta <- C.rint d.rd;
  c.Counters.decisions_skipped <- C.rint d.rd;
  c.Counters.rib_touches <- C.rint d.rd;
  c.Counters.routes_damped <- C.rint d.rd;
  c.Counters.hijacks_injected <- C.rint d.rd;
  c.Counters.takeovers <- C.rint d.rd;
  c.Counters.prefixes_moved_on_repartition <- C.rint d.rd;
  c.Counters.last_change <- C.rint d.rd;
  c.Counters.mem_peak_kb <- C.rint d.rd;
  c

let wstate e b (st : Router.state) =
  C.warray b (wrib_dump e) st.Router.st_ribs;
  C.warray b
    (fun b tbl ->
      C.wlist b
        (fun b (src, rd) ->
          C.wint b src;
          wrib_dump e b rd)
        tbl)
    st.Router.st_peer_tables;
  C.warray b
    (fun b tbl ->
      C.wlist b
        (fun b (k, v) ->
          C.wint b k;
          C.wint b v)
        tbl)
    st.Router.st_src_tbls;
  C.warray b
    (fun b pid ->
      C.wlist b
        (fun b (key, routes, next) ->
          C.wint b key;
          C.wlist b (wroute e) routes;
          C.wint b next)
        pid)
    st.Router.st_path_ids;
  C.wlist b
    (fun b ((k1, k2), addr) ->
      C.wint b k1;
      C.wint b k2;
      wipv4 b addr)
    st.Router.st_ebgp_neighbors;
  C.wlist b (winput e) st.Router.st_inbox;
  C.wbool b st.Router.st_process_scheduled;
  C.wlist b
    (fun b (dst, items) ->
      C.wint b dst;
      C.wlist b (witem e) items)
    st.Router.st_outgoing;
  C.wlist b
    (fun b (ss : Router.session_state) ->
      C.wint b ss.Router.ss_peer;
      C.wint b ss.Router.ss_mrai_until;
      C.wlist b (witem e) ss.Router.ss_pending;
      C.wbool b ss.Router.ss_flush_scheduled)
    st.Router.st_sessions;
  C.wlist b
    (fun b (ds : Router.damp_state) ->
      let k1, k2 = ds.Router.ds_key in
      C.wint b k1;
      C.wint b k2;
      C.w64 b (Int64.bits_of_float ds.Router.ds_penalty);
      C.wint b ds.Router.ds_stamp;
      C.wopt b (wroute e) ds.Router.ds_held;
      wipv4 b ds.Router.ds_neighbor;
      C.wint b ds.Router.ds_wake)
    st.Router.st_damping;
  wcounters b st.Router.st_counters;
  C.wint b st.Router.st_rejected_loops;
  C.wbool b st.Router.st_up

let rstate d : Router.state =
  let st_ribs = C.rarray d.rd (fun _ -> rrib_dump d) in
  let st_peer_tables =
    C.rarray d.rd (fun _ ->
        C.rlist d.rd (fun _ ->
            let src = C.rint d.rd in
            let rd' = rrib_dump d in
            (src, rd')))
  in
  let st_src_tbls =
    C.rarray d.rd (fun _ ->
        C.rlist d.rd (fun _ ->
            let k = C.rint d.rd in
            let v = C.rint d.rd in
            (k, v)))
  in
  let st_path_ids =
    C.rarray d.rd (fun _ ->
        C.rlist d.rd (fun _ ->
            let key = C.rint d.rd in
            let routes = C.rlist d.rd (fun _ -> rroute d) in
            let next = C.rint d.rd in
            (key, routes, next)))
  in
  let st_ebgp_neighbors =
    C.rlist d.rd (fun _ ->
        let k1 = C.rint d.rd in
        let k2 = C.rint d.rd in
        let addr = ripv4 d in
        ((k1, k2), addr))
  in
  let st_inbox = C.rlist d.rd (fun _ -> rinput d) in
  let st_process_scheduled = C.rbool d.rd in
  let st_outgoing =
    C.rlist d.rd (fun _ ->
        let dst = C.rint d.rd in
        let items = C.rlist d.rd (fun _ -> ritem d) in
        (dst, items))
  in
  let st_sessions =
    C.rlist d.rd (fun _ ->
        let ss_peer = C.rint d.rd in
        let ss_mrai_until = C.rint d.rd in
        let ss_pending = C.rlist d.rd (fun _ -> ritem d) in
        let ss_flush_scheduled = C.rbool d.rd in
        { Router.ss_peer; ss_mrai_until; ss_pending; ss_flush_scheduled })
  in
  let st_damping =
    C.rlist d.rd (fun _ ->
        let k1 = C.rint d.rd in
        let k2 = C.rint d.rd in
        let ds_penalty = Int64.float_of_bits (C.r64 d.rd) in
        let ds_stamp = C.rint d.rd in
        let ds_held = C.ropt d.rd (fun _ -> rroute d) in
        let ds_neighbor = ripv4 d in
        let ds_wake = C.rint d.rd in
        { Router.ds_key = (k1, k2); ds_penalty; ds_stamp; ds_held;
          ds_neighbor; ds_wake })
  in
  let st_counters = rcounters d in
  let st_rejected_loops = C.rint d.rd in
  let st_up = C.rbool d.rd in
  {
    Router.st_ribs;
    st_peer_tables;
    st_src_tbls;
    st_path_ids;
    st_ebgp_neighbors;
    st_inbox;
    st_process_scheduled;
    st_outgoing;
    st_sessions;
    st_damping;
    st_counters;
    st_rejected_loops;
    st_up;
  }

(* ------------------------------------------------------------------ *)
(* Trace sink                                                          *)

let wsink b (s : Sim.Trace.dump) =
  C.wint b s.Sim.Trace.d_capacity;
  C.wint b s.Sim.Trace.d_sample_every;
  C.wlist b
    (fun b (en : Sim.Trace.entry) ->
      C.wint b en.Sim.Trace.time;
      C.wint b en.Sim.Trace.kind;
      C.wint b en.Sim.Trace.actor;
      C.wint b en.Sim.Trace.depth;
      C.wint b en.Sim.Trace.detail)
    s.Sim.Trace.d_entries;
  C.wint b s.Sim.Trace.d_until_sample;
  C.wint b s.Sim.Trace.d_seen;
  C.wint b s.Sim.Trace.d_recorded

let rsink d : Sim.Trace.dump =
  let d_capacity = C.rint d.rd in
  let d_sample_every = C.rint d.rd in
  let d_entries =
    C.rlist d.rd (fun _ ->
        let time = C.rint d.rd in
        let kind = C.rint d.rd in
        let actor = C.rint d.rd in
        let depth = C.rint d.rd in
        let detail = C.rint d.rd in
        { Sim.Trace.time; kind; actor; depth; detail })
  in
  let d_until_sample = C.rint d.rd in
  let d_seen = C.rint d.rd in
  let d_recorded = C.rint d.rd in
  if d_capacity < 1 || d_sample_every < 1 then
    C.bad "sink dump: capacity %d / sample_every %d out of range" d_capacity
      d_sample_every;
  if List.length d_entries > d_capacity then
    C.bad "sink dump: %d entries exceed capacity %d" (List.length d_entries)
      d_capacity;
  { Sim.Trace.d_capacity; d_sample_every; d_entries; d_until_sample; d_seen;
    d_recorded }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

(* The §2.4 acceptance switches live in the (mutable) Dual config and
   flip mid-run, so they are body state: [] outside Dual. *)
let acceptance_values net =
  match (Network.config net).Config.scheme with
  | Config.Dual { accept; _ } ->
    Array.to_list
      (Array.map
         (function Config.Accept_tbrr -> 0 | Config.Accept_abrr -> 1)
         accept)
  | _ -> []

let restore_acceptance net vals =
  let expected = List.length (acceptance_values net) in
  if List.length vals <> expected then
    C.bad "acceptance list length %d does not match scheme (%d)"
      (List.length vals) expected;
  List.iteri
    (fun ap v ->
      let mode =
        match v with
        | 0 -> Config.Accept_tbrr
        | 1 -> Config.Accept_abrr
        | _ -> C.bad "bad acceptance value %d for AP %d" v ap
      in
      (* Before Network.load: the redecide side-effects this triggers are
         wiped when load restores inboxes and the event queue. *)
      Network.set_acceptance net ~ap mode)
    vals

let encode net =
  try
    let d = Network.dump net in
    let e =
      {
        buf = Buffer.create 65536;
        route_ids = Hashtbl.create 1024;
        routes_rev = [];
        n_routes = 0;
        attr_ids = Hashtbl.create 1024;
        attrs_rev = [];
        n_attrs = 0;
      }
    in
    let b = e.buf in
    C.wint b d.Network.d_clock;
    C.wint b d.Network.d_next_seq;
    C.wint b d.Network.d_processed;
    C.w64 b d.Network.d_rng;
    C.wlist b (wevent e) d.Network.d_events;
    C.wint b d.Network.d_best_changes;
    C.warray b (wstate e) d.Network.d_routers;
    C.wopt b wsink d.Network.d_sink;
    C.wlist b C.w8 (acceptance_values net);
    let body = Buffer.contents b in
    let out = Buffer.create (String.length body + 4096) in
    Buffer.add_string out magic;
    C.w16 out format_version;
    C.wstr out (fingerprint (Network.config net));
    (* Block ids are assigned in route-id order, so the attribute table
       is as canonical as the route table it backs. *)
    let routes = List.rev e.routes_rev in
    List.iter (fun r -> ignore (attr_id e (R.attrs r))) routes;
    C.w32 out e.n_attrs;
    List.iter (fun a -> C.wstr out (attrs_bytes a)) (List.rev e.attrs_rev);
    C.w32 out e.n_routes;
    List.iter
      (fun r ->
        C.w32 out (attr_id e (R.attrs r));
        C.wint out (Netaddr.Prefix.to_key r.R.prefix);
        C.wint out r.R.path_id)
      routes;
    Buffer.add_string out body;
    let prefix = Buffer.contents out in
    let crc = Buffer.create 4 in
    C.w32 crc (C.crc32 prefix);
    Ok (prefix ^ Buffer.contents crc)
  with C.Bad msg -> Error msg

let decode net s =
  try
    let n = String.length s in
    if n < String.length magic + 2 + 4 + 4 + 4 then
      C.bad "snapshot too short (%d bytes)" n;
    (* Integrity first: everything after this reads trusted-length data. *)
    let stored = C.r32 (C.reader ~pos:(n - 4) s) in
    let actual = C.crc32 ~len:(n - 4) s in
    if stored <> actual then
      C.bad "CRC mismatch (stored %08x, computed %08x)" stored actual;
    if String.sub s 0 (String.length magic) <> magic then
      C.bad "bad magic %S" (String.sub s 0 (String.length magic));
    let rd = C.reader ~pos:(String.length magic) s in
    let version = C.r16 rd in
    if version <> format_version then
      C.bad "unsupported snapshot version %d (this build reads %d)" version
        format_version;
    let fp = C.rstr rd in
    let expected = fingerprint (Network.config net) in
    if fp <> expected then
      C.bad "config fingerprint mismatch: snapshot %S, network %S" fp expected;
    let n_attrs = C.r32 rd in
    (* Each attribute entry costs at least its 4-byte length prefix, so
       a count beyond the remaining input is a lying length field. *)
    if n_attrs * 4 > n - C.pos rd then
      C.bad "attribute table count %d exceeds remaining input" n_attrs;
    let attrs_tbl = Array.init n_attrs (fun _ -> attrs_of_bytes (C.rstr rd)) in
    let n_routes = C.r32 rd in
    if n_routes * 4 > n - C.pos rd then
      C.bad "route table count %d exceeds remaining input" n_routes;
    let route_tbl =
      Array.init n_routes (fun _ ->
          let ai = C.r32 rd in
          if ai >= n_attrs then
            C.bad "attribute id %d out of table range %d" ai n_attrs;
          let prefix = Netaddr.Prefix.of_key (C.rint rd) in
          let path_id = C.rint rd in
          R.of_attrs ~path_id ~prefix attrs_tbl.(ai))
    in
    let d = { rd; route_tbl } in
    let d_clock = C.rint rd in
    let d_next_seq = C.rint rd in
    let d_processed = C.rint rd in
    let d_rng = C.r64 rd in
    let d_events = C.rlist rd (fun _ -> revent d) in
    let d_best_changes = C.rint rd in
    let d_routers = C.rarray rd (fun _ -> rstate d) in
    let d_sink = C.ropt rd (fun _ -> rsink d) in
    let acceptance = C.rlist rd C.r8 in
    if C.pos rd <> n - 4 then
      C.bad "%d trailing bytes after snapshot body" (n - 4 - C.pos rd);
    restore_acceptance net acceptance;
    let dump =
      {
        Network.d_clock;
        d_next_seq;
        d_processed;
        d_rng;
        d_events;
        d_best_changes;
        d_routers;
        d_sink;
      }
    in
    (match Network.load net dump with
    | () -> ()
    | exception Invalid_argument msg -> C.bad "restore rejected: %s" msg);
    Ok ()
  with C.Bad msg -> Error msg

let save net ~path =
  match encode net with
  | Error _ as e -> e
  | Ok data -> (
    try
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc data;
      close_out oc;
      Sys.rename tmp path;
      Ok ()
    with Sys_error msg -> Error msg)

let load net ~path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let data = really_input_string ic len in
    close_in ic;
    decode net data
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error (path ^ ": unexpected end of file")

let digest net =
  match encode net with
  | Ok s -> Ok (Digest.to_hex (Digest.string s))
  | Error _ as e -> e

let sanitize label =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-') as c -> c
      | _ -> '-')
    label

let segment_path ~dir ~label k =
  Filename.concat dir (Printf.sprintf "%s.seg%d.snap" (sanitize label) k)

let latest_segment ~dir ~label =
  let prefix = sanitize label ^ ".seg" and suffix = ".snap" in
  let plen = String.length prefix and slen = String.length suffix in
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | files ->
    Array.fold_left
      (fun acc f ->
        if
          String.length f > plen + slen
          && String.sub f 0 plen = prefix
          && Filename.check_suffix f suffix
        then
          match
            int_of_string_opt (String.sub f plen (String.length f - plen - slen))
          with
          | Some k
            when (match acc with Some (k0, _) -> k > k0 | None -> true) ->
            Some (k, Filename.concat dir f)
          | _ -> acc
        else acc)
      None files

(* ------------------------------------------------------------------ *)
(* Multi-part (sharded) snapshots                                      *)

module Shards = struct
  let part_magic = "ABRRSHRD"

  let part_path ~dir ~label k =
    Filename.concat dir (Printf.sprintf "%s.part%d.shard" (sanitize label) k)

  (* Contiguous router ranges, mirroring Network.Sharded's default: a
     part's writer only walks its own routers and events, so per-shard
     capture parallelizes trivially. Events follow their owning router
     (Network.payload_owner). *)
  let part_of ~n ~parts i = i * parts / n

  let encode_part net d ~parts k =
    let cfg = Network.config net in
    let n = cfg.Config.n_routers in
    let e =
      {
        buf = Buffer.create 65536;
        route_ids = Hashtbl.create 1024;
        routes_rev = [];
        n_routes = 0;
        attr_ids = Hashtbl.create 1024;
        attrs_rev = [];
        n_attrs = 0;
      }
    in
    let b = e.buf in
    if k = 0 then begin
      C.wint b d.Network.d_clock;
      C.wint b d.Network.d_next_seq;
      C.wint b d.Network.d_processed;
      C.w64 b d.Network.d_rng;
      C.wint b d.Network.d_best_changes;
      C.wopt b wsink d.Network.d_sink;
      C.wlist b C.w8 (acceptance_values net)
    end;
    let owned_events =
      List.filter
        (fun (ev : Network.payload Sim.event) ->
          let owner =
            try Network.payload_owner ev.Sim.payload
            with Invalid_argument msg -> C.bad "%s" msg
          in
          part_of ~n ~parts owner = k)
        d.Network.d_events
    in
    C.wlist b (wevent e) owned_events;
    let owned_routers =
      List.filter
        (fun i -> part_of ~n ~parts i = k)
        (List.init n Fun.id)
    in
    C.wlist b
      (fun b i ->
        C.wint b i;
        wstate e b d.Network.d_routers.(i))
      owned_routers;
    let body = Buffer.contents b in
    let out = Buffer.create (String.length body + 4096) in
    Buffer.add_string out part_magic;
    C.w16 out format_version;
    C.wstr out (fingerprint cfg);
    C.w16 out k;
    C.w16 out parts;
    let routes = List.rev e.routes_rev in
    List.iter (fun r -> ignore (attr_id e (R.attrs r))) routes;
    C.w32 out e.n_attrs;
    List.iter (fun a -> C.wstr out (attrs_bytes a)) (List.rev e.attrs_rev);
    C.w32 out e.n_routes;
    List.iter
      (fun r ->
        C.w32 out (attr_id e (R.attrs r));
        C.wint out (Netaddr.Prefix.to_key r.R.prefix);
        C.wint out r.R.path_id)
      routes;
    Buffer.add_string out body;
    let prefix = Buffer.contents out in
    let crc = Buffer.create 4 in
    C.w32 crc (C.crc32 prefix);
    prefix ^ Buffer.contents crc

  let save net ~dir ~label ~parts =
    try
      if parts < 1 then C.bad "Shards.save: parts must be >= 1";
      if parts > 0xFFFF then C.bad "Shards.save: parts %d out of range" parts;
      let d = Network.dump net in
      for k = 0 to parts - 1 do
        let data = encode_part net d ~parts k in
        let path = part_path ~dir ~label k in
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc data;
        close_out oc;
        Sys.rename tmp path
      done;
      Ok ()
    with
    | C.Bad msg -> Error msg
    | Sys_error msg -> Error msg

  (* One parsed part. Scalars ride only in part 0. *)
  type part = {
    p_count : int;
    p_scalars :
      (Eventsim.Time.t * int * int * int64 * int * Sim.Trace.dump option
      * int list)
      option;
    p_events : Network.payload Sim.event list;
    p_routers : (int * Router.state) list;
  }

  let decode_part net ~expect_idx s =
    let n = String.length s in
    if n < String.length part_magic + 2 + 4 + 2 + 2 + 4 + 4 + 4 then
      C.bad "part too short (%d bytes)" n;
    let stored = C.r32 (C.reader ~pos:(n - 4) s) in
    let actual = C.crc32 ~len:(n - 4) s in
    if stored <> actual then
      C.bad "part %d: CRC mismatch (stored %08x, computed %08x)" expect_idx
        stored actual;
    if String.sub s 0 (String.length part_magic) <> part_magic then
      C.bad "part %d: bad magic %S" expect_idx
        (String.sub s 0 (String.length part_magic));
    let rd = C.reader ~pos:(String.length part_magic) s in
    let version = C.r16 rd in
    if version <> format_version then
      C.bad "part %d: unsupported version %d (this build reads %d)" expect_idx
        version format_version;
    let fp = C.rstr rd in
    let expected = fingerprint (Network.config net) in
    if fp <> expected then
      C.bad "part %d: config fingerprint mismatch: part %S, network %S"
        expect_idx fp expected;
    let idx = C.r16 rd in
    if idx <> expect_idx then
      C.bad "part file %d claims index %d" expect_idx idx;
    let p_count = C.r16 rd in
    if p_count < 1 then C.bad "part %d: part count %d" expect_idx p_count;
    let n_attrs = C.r32 rd in
    if n_attrs * 4 > n - C.pos rd then
      C.bad "part %d: attribute table count %d exceeds remaining input"
        expect_idx n_attrs;
    let attrs_tbl = Array.init n_attrs (fun _ -> attrs_of_bytes (C.rstr rd)) in
    let n_routes = C.r32 rd in
    if n_routes * 4 > n - C.pos rd then
      C.bad "part %d: route table count %d exceeds remaining input" expect_idx
        n_routes;
    let route_tbl =
      Array.init n_routes (fun _ ->
          let ai = C.r32 rd in
          if ai >= n_attrs then
            C.bad "part %d: attribute id %d out of table range %d" expect_idx
              ai n_attrs;
          let prefix = Netaddr.Prefix.of_key (C.rint rd) in
          let path_id = C.rint rd in
          R.of_attrs ~path_id ~prefix attrs_tbl.(ai))
    in
    let d = { rd; route_tbl } in
    let p_scalars =
      if expect_idx = 0 then begin
        let clock = C.rint rd in
        let next_seq = C.rint rd in
        let processed = C.rint rd in
        let rng = C.r64 rd in
        let best_changes = C.rint rd in
        let sink = C.ropt rd (fun _ -> rsink d) in
        let acceptance = C.rlist rd C.r8 in
        Some (clock, next_seq, processed, rng, best_changes, sink, acceptance)
      end
      else None
    in
    let p_events = C.rlist rd (fun _ -> revent d) in
    let p_routers =
      C.rlist rd (fun _ ->
          let i = C.rint rd in
          let st = rstate d in
          (i, st))
    in
    if C.pos rd <> n - 4 then
      C.bad "part %d: %d trailing bytes after body" expect_idx
        (n - 4 - C.pos rd);
    { p_count; p_scalars; p_events; p_routers }

  let read_file path =
    try
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      data
    with
    | Sys_error msg -> C.bad "%s" msg
    | End_of_file -> C.bad "%s: unexpected end of file" path

  let load net ~dir ~label =
    try
      let n = (Network.config net).Config.n_routers in
      let part0 =
        decode_part net ~expect_idx:0 (read_file (part_path ~dir ~label 0))
      in
      let parts = part0.p_count in
      let all =
        part0
        :: List.init (parts - 1) (fun j ->
               let k = j + 1 in
               let p =
                 decode_part net ~expect_idx:k
                   (read_file (part_path ~dir ~label k))
               in
               if p.p_count <> parts then
                 C.bad "part %d: count %d disagrees with part 0's %d" k
                   p.p_count parts;
               p)
      in
      let routers = Array.make n None in
      List.iter
        (fun p ->
          List.iter
            (fun (i, st) ->
              if i < 0 || i >= n then
                C.bad "router index %d out of range %d" i n;
              if routers.(i) <> None then C.bad "router %d appears twice" i;
              routers.(i) <- Some st)
            p.p_routers)
        all;
      let d_routers =
        Array.mapi
          (fun i st ->
            match st with
            | Some st -> st
            | None -> C.bad "router %d missing from all parts" i)
          routers
      in
      let d_events =
        List.sort
          (fun (a : Network.payload Sim.event) b ->
            match Int.compare a.Sim.time b.Sim.time with
            | 0 -> Int.compare a.Sim.seq b.Sim.seq
            | c -> c)
          (List.concat_map (fun p -> p.p_events) all)
      in
      let clock, next_seq, processed, rng, best_changes, sink, acceptance =
        match part0.p_scalars with
        | Some s -> s
        | None -> assert false (* expect_idx 0 always parses scalars *)
      in
      restore_acceptance net acceptance;
      let dump =
        {
          Network.d_clock = clock;
          d_next_seq = next_seq;
          d_processed = processed;
          d_rng = rng;
          d_events;
          d_best_changes = best_changes;
          d_routers;
          d_sink = sink;
        }
      in
      (match Network.load net dump with
      | () -> ()
      | exception Invalid_argument msg -> C.bad "restore rejected: %s" msg);
      Ok ()
    with C.Bad msg -> Error msg
end

module Bisect = struct
  let search ~lo ~hi ~digest_a ~digest_b =
    if lo > hi then invalid_arg "Snapshot.Bisect.search: lo > hi";
    if digest_a lo <> digest_b lo then Some lo
    else if digest_a hi = digest_b hi then None
    else begin
      (* invariant: equal at !lo, different at !hi *)
      let lo = ref lo and hi = ref hi in
      while !hi - !lo > 1 do
        let mid = !lo + ((!hi - !lo) / 2) in
        if digest_a mid = digest_b mid then lo := mid else hi := mid
      done;
      Some !hi
    end
end
