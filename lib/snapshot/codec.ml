exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w16 b v =
  w8 b (v lsr 8);
  w8 b v

let w32 b v =
  w16 b (v lsr 16);
  w16 b v

let w64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let wint b v = w64 b (Int64.of_int v)
let wbool b v = w8 b (if v then 1 else 0)

let wstr b s =
  w32 b (String.length s);
  Buffer.add_string b s

let wlist b f l =
  w32 b (List.length l);
  List.iter (f b) l

let warray b f a =
  w32 b (Array.length a);
  Array.iter (f b) a

let wopt b f = function
  | None -> w8 b 0
  | Some x ->
    w8 b 1;
    f b x

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)

type reader = { data : string; mutable pos : int }

let reader ?(pos = 0) data = { data; pos }
let pos r = r.pos

let need r n =
  if n < 0 || r.pos + n > String.length r.data then
    bad "truncated at byte %d (need %d more of %d)" r.pos n (String.length r.data)

let r8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r16 r =
  let hi = r8 r in
  (hi lsl 8) lor r8 r

let r32 r =
  let hi = r16 r in
  (hi lsl 16) lor r16 r

let r64 r =
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r8 r))
  done;
  !v

let rint r = Int64.to_int (r64 r)

let rbool r =
  match r8 r with
  | 0 -> false
  | 1 -> true
  | v -> bad "bad boolean byte %d at %d" v (r.pos - 1)

let rstr r =
  let n = r32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rlist r f =
  let n = r32 r in
  (* Sanity-bound the count before allocating: each element consumes at
     least one byte, so a count beyond the remaining input is garbage. *)
  need r n;
  List.init n (fun _ -> f r)

let rarray r f =
  let n = r32 r in
  need r n;
  Array.init n (fun _ -> f r)

let ropt r f =
  match r8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | v -> bad "bad option byte %d at %d" v (r.pos - 1)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
