(** Versioned checkpoint/restore of complete simulation state.

    A snapshot captures everything a {!Abrr_core.Network} run is a
    function of past its creation point: per-router Adj-RIB-In/Out and
    Loc-RIB contents, session MRAI state, measurement counters, the
    simulated clock, the splitmix64 random stream, and the pending
    {e reified} event queue — so a checkpoint taken at {e any} event
    boundary resumes byte-identically, not just at quiescence.

    File format (big-endian, see [Codec]):
    {v
    "ABRRSNAP" | u16 version | config fingerprint (length-prefixed)
    | attribute table: u32 count, then each distinct interned block
      encoded once, as the attribute section of a single-NLRI RFC 4271
      UPDATE (via Bgp.Wire, add-paths)
    | route table: u32 count, then each route as a small head —
      u32 attribute id | prefix key | path id — mirroring the
      in-memory head/block split; routes elsewhere are u32 ids into
      this table
    | body: sim scalars, rng word, event queue, per-router state,
      optional trace-sink ring
    | u32 CRC-32 of everything above
    v}

    Decoding rebuilds the physical sharing: every route head holding
    attribute id [i] points at the same interned block.

    The encoding is {e canonical}: hash tables are dumped sorted by key
    and the route table is in first-use order of the (sorted) body, so
    two networks in the same logical state encode to identical bytes.
    {!digest} therefore makes state comparable across processes, which
    is what the divergence {!Bisect} leans on.

    What is {e not} captured: the {!Abrr_core.Config.t} itself (it holds
    function fields — the restoring caller rebuilds it, and decode
    checks a structural fingerprint), SPF distances (recomputed from the
    config), [on_best_change] hooks and invariant probes (closures —
    re-register after restore), and phase-timer accumulators (wall-clock
    observability, excluded from deterministic records; see
    OBSERVABILITY.md). A pending [Network.Thunk] event (a bare closure
    scheduled with [Network.at]) cannot be captured: {!encode} returns
    [Error _] — schedule [Network.at_op] operations instead. *)

val format_version : int

val fingerprint : Abrr_core.Config.t -> string
(** Structural summary of a config (router count, scheme shape, timer
    settings...). Stored in the snapshot and required to match at
    decode: restoring under a different configuration would silently
    diverge instead of failing. *)

val encode : Abrr_core.Network.t -> (string, string) result
(** Serialize the network's current state. [Error _] when a pending
    event is an opaque [Thunk] closure. *)

val decode : Abrr_core.Network.t -> string -> (unit, string) result
(** Restore state captured by {!encode} into a network freshly created
    from the same config (and scheme) the snapshot was taken under.
    Never raises on malformed input: truncation, bad magic/version,
    length-field lies, garbage attribute bytes and CRC mismatches all
    return [Error _]. *)

val save : Abrr_core.Network.t -> path:string -> (unit, string) result
(** {!encode} to a file, atomically (write to [path ^ ".tmp"], then
    rename): a crash mid-checkpoint leaves the previous snapshot
    intact. *)

val load : Abrr_core.Network.t -> path:string -> (unit, string) result
(** Read a file and {!decode} it. I/O errors are [Error _] too. *)

val digest : Abrr_core.Network.t -> (string, string) result
(** Hex MD5 of the canonical {!encode} bytes — a cheap state
    fingerprint for divergence detection. Equal digests at event [k]
    mean the two runs are in identical states at [k]. *)

(** {1 Segment files}

    Naming convention for segmented long-trace runs
    ([--checkpoint-every] / [--resume-dir] in the CLI and bench
    harness): run [label], pause [k] lives at [dir/label.segk.snap]
    (label sanitized to filename-safe characters). *)

val segment_path : dir:string -> label:string -> int -> string

val latest_segment : dir:string -> label:string -> (int * string) option
(** Highest-numbered segment of [label] present in [dir], if any.
    [None] too when [dir] is unreadable. *)

(** {1 Multi-part (sharded) snapshots}

    One simulation state split across [parts] files — router state and
    pending events follow their owning router, partitioned into
    contiguous index ranges (the same default boundary as
    [Network.Sharded]); part 0 additionally carries the simulator
    scalars, random-stream word, change counter, trace sink and
    acceptance switches. Each part is self-contained (own interning
    tables, fingerprint, CRC) and independently verifiable; {!load}
    requires {e all} parts intact — a missing, mismatched or corrupt
    part fails the whole restore with [Error _], never a partial
    state. The merged restore is state-identical to a single-file
    snapshot of the same network. *)
module Shards : sig
  val part_path : dir:string -> label:string -> int -> string
  (** [dir/label.partK.shard] (label sanitized like {!segment_path}). *)

  val save :
    Abrr_core.Network.t -> dir:string -> label:string -> parts:int ->
    (unit, string) result
  (** Write all [parts] files, each atomically. [Error _] on a pending
      [Thunk] event, [parts < 1], or I/O failure. *)

  val load :
    Abrr_core.Network.t -> dir:string -> label:string ->
    (unit, string) result
  (** Read part 0 (which records the part count), then every other
      part; verify each one's CRC, fingerprint and indices; check every
      router appears exactly once; and restore the merged state. Any
      defect anywhere is a clean [Error _] with the network untouched. *)
end

(** Binary search for the first event index where two deterministic
    runs' states diverge. *)
module Bisect : sig
  val search :
    lo:int -> hi:int -> digest_a:(int -> string) -> digest_b:(int -> string) ->
    int option
  (** [search ~lo ~hi ~digest_a ~digest_b] assumes each [digest_*] is a
      pure function of its event index (run the simulation from scratch
      to index [k], digest the state) and that divergence is monotone:
      once states differ they never re-converge — which holds because a
      run's future is a function of its state. Returns [Some k] for the
      smallest [k] in [lo, hi] where the digests differ ([Some lo] if
      they already differ at [lo]), or [None] when identical through
      [hi]. Cost: O(log (hi - lo)) digest evaluations per side. *)
end
