(** Synthetic Tier-1 ISP topology: PoPs with intra-PoP meshes and an
    inter-PoP backbone, TBRR clusters per PoP (the industry arrangement
    of §1), peering routers spread over distinct PoPs, and peer-AS
    sessions with geographically diverse peering points (§A.2).

    Substitutes for the unpublishable Tier-1 topology; every statistic
    the paper states (router counts, cluster counts, ~10% peering
    routers, 25 peer ASes with ~8 peering points each) is reproducible
    by choosing the spec accordingly. *)

open Netaddr

type spec = {
  pops : int;
  routers_per_pop : int;
  peer_ases : int;
  peering_points_per_as : int;
  intra_pop_metric : int;
  inter_pop_metric : int;
  seed : int;
}

val spec :
  ?pops:int ->
  ?routers_per_pop:int ->
  ?peer_ases:int ->
  ?peering_points_per_as:int ->
  ?intra_pop_metric:int ->
  ?inter_pop_metric:int ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 13 PoPs x 8 routers, 25 peer ASes x 8 peering points,
    metrics 10/100, seed 7. *)

type session = { router : int; neighbor : Ipv4.t; peer_as : Bgp.Asn.t }
(** One eBGP peering session. *)

type t = {
  spec : spec;
  n_routers : int;
  igp : Igp.Graph.t;
  pop_of : int array;
  peering_routers : int list;
  access_routers : int list;
  sessions : session list;
  clusters : Abrr_core.Config.cluster list;  (** one per PoP, 2 TRRs each *)
  trrs : int list;
}

val generate : spec -> t

val peer_asn : int -> Bgp.Asn.t
(** [peer_asn k] is the ASN of the k-th peer AS (3000 + k). *)

val sessions_of_as : t -> Bgp.Asn.t -> session list

val abrr_arrs : t -> aps:int -> arrs_per_ap:int -> int list array
(** Pick ARR routers for each AP: non-peering routers spread round-robin
    across PoPs (placement is free in ABRR — §2.3.3; this choice merely
    diversifies failure domains). *)

val tbrr_scheme : ?multipath:bool -> t -> Abrr_core.Config.scheme

val confed_scheme : t -> Abrr_core.Config.scheme
(** One member sub-AS per PoP, chained acyclically through the PoP
    gateways (cyclic sub-AS graphs can oscillate; see the anomaly
    matrix). *)

val rcp_scheme : ?replicas:int -> t -> Abrr_core.Config.scheme
(** Routing Control Platform nodes on access routers of distinct PoPs
    (default 2 replicas). *)

val abrr_scheme :
  ?loop_prevention:Abrr_core.Config.loop_prevention ->
  aps:int -> arrs_per_ap:int -> t -> Abrr_core.Config.scheme

val config :
  ?med_mode:Bgp.Decision.med_mode ->
  ?mrai:Eventsim.Time.t ->
  ?proc_delay:Eventsim.Time.t ->
  ?proc_jitter:Eventsim.Time.t ->
  ?store_full_sets:bool ->
  ?damping:Bgp.Damping.params ->
  scheme:Abrr_core.Config.scheme ->
  t ->
  Abrr_core.Config.t
