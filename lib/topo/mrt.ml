open Netaddr

let mrt_type_bgp4mp_et = 17
let subtype_message_as4 = 4
let header_len = 12

let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w16 buf v =
  w8 buf (v lsr 8);
  w8 buf v

let w32 buf v =
  w16 buf (v lsr 16);
  w16 buf (v land 0xFFFF)

let encode_record buf ~time ~local_as ~peer_as ~peer_ip ~local_ip payload =
  let sec = time / 1_000_000 and usec = time mod 1_000_000 in
  let body = Buffer.create (32 + Bytes.length payload) in
  w32 body usec;
  w32 body (Bgp.Asn.to_int peer_as);
  w32 body (Bgp.Asn.to_int local_as);
  w16 body 0 (* interface index *);
  w16 body 1 (* AFI IPv4 *);
  w32 body (Ipv4.to_int peer_ip);
  w32 body (Ipv4.to_int local_ip);
  Buffer.add_bytes body payload;
  w32 buf sec;
  w16 buf mrt_type_bgp4mp_et;
  w16 buf subtype_message_as4;
  w32 buf (Buffer.length body);
  Buffer.add_buffer buf body

let event_update (action : Trace_gen.action) =
  match action with
  | Trace_gen.Announce { route; _ } -> { Bgp.Msg.withdrawn = []; announced = [ route ] }
  | Trace_gen.Withdraw { prefix; path_id; _ } ->
    { Bgp.Msg.withdrawn = [ { Bgp.Msg.prefix; path_id } ]; announced = [] }

let encode_event buf ~local_as (ev : Trace_gen.event) =
  let router, neighbor =
    match ev.Trace_gen.action with
    | Trace_gen.Announce { router; neighbor; _ }
    | Trace_gen.Withdraw { router; neighbor; _ } -> (router, neighbor)
  in
  let peer_as =
    match ev.Trace_gen.action with
    | Trace_gen.Announce { route; _ } -> (
      match Bgp.Route.neighbor_as route with
      | Some a -> a
      | None -> Bgp.Asn.of_int 0)
    | Trace_gen.Withdraw _ -> Bgp.Asn.of_int 0
  in
  let msgs =
    Bgp.Wire.encode ~add_paths:true
      (Bgp.Msg.Update (event_update ev.Trace_gen.action))
  in
  List.iter
    (fun payload ->
      encode_record buf ~time:ev.Trace_gen.time ~local_as ~peer_as
        ~peer_ip:neighbor
        ~local_ip:(Abrr_core.Config.loopback router)
        payload)
    msgs

let encode_events ~local_as events =
  let buf = Buffer.create 4096 in
  List.iter (encode_event buf ~local_as) events;
  Buffer.to_bytes buf

exception Bad of string

(* --- Record-level decoding (shared by the in-memory and streaming
   paths) --------------------------------------------------------------

   One BGP4MP_ET record decodes to the events of its UPDATE, in wire
   order (withdrawals before announcements — matching what
   [encode_event] emits, one record per wire message). *)

let decode_header data off =
  let r8 i = Char.code (Bytes.get data (off + i)) in
  let r16 i = (r8 i lsl 8) lor r8 (i + 1) in
  let r32 i = (r16 i lsl 16) lor r16 (i + 2) in
  let sec = r32 0 in
  let typ = r16 4 in
  let subtype = r16 6 in
  let len = r32 8 in
  if typ <> mrt_type_bgp4mp_et || subtype <> subtype_message_as4 then
    raise (Bad (Printf.sprintf "unsupported record %d/%d" typ subtype));
  (sec, len)

(* [body] is the record payload (everything after the 12-byte MRT
   header): the BGP4MP_ET preamble followed by exactly one BGP message. *)
let decode_body ~sec body =
  let total = Bytes.length body in
  let pos = ref 0 in
  let r8 () =
    if !pos >= total then raise (Bad "truncated record");
    let v = Char.code (Bytes.get body !pos) in
    incr pos;
    v
  in
  let r16 () =
    let a = r8 () in
    (a lsl 8) lor r8 ()
  in
  let r32 () =
    let a = r16 () in
    (a lsl 16) lor r16 ()
  in
  let usec = r32 () in
  let _peer_as = r32 () in
  let _local_as = r32 () in
  let _ifindex = r16 () in
  let afi = r16 () in
  if afi <> 1 then raise (Bad "non-IPv4 AFI");
  let peer_ip = Ipv4.of_int (r32 ()) in
  let local_ip = Ipv4.of_int (r32 ()) in
  let router = Ipv4.to_int local_ip - 0x0A00_0000 in
  if router < 0 then raise (Bad "local IP is not a loopback");
  let time = (sec * 1_000_000) + usec in
  match Bgp.Wire.decode ~add_paths:true body ~pos:!pos with
  | Error e -> raise (Bad (Format.asprintf "%a" Bgp.Wire.pp_error e))
  | Ok (Bgp.Msg.Update u, next) ->
    if next <> total then raise (Bad "record length mismatch");
    List.map
      (fun (w : Bgp.Msg.withdrawal) ->
        {
          Trace_gen.time;
          action =
            Trace_gen.Withdraw
              {
                router;
                neighbor = peer_ip;
                prefix = w.Bgp.Msg.prefix;
                path_id = w.Bgp.Msg.path_id;
              };
        })
      u.Bgp.Msg.withdrawn
    @ List.map
        (fun route ->
          {
            Trace_gen.time;
            action = Trace_gen.Announce { router; neighbor = peer_ip; route };
          })
        u.Bgp.Msg.announced
  | Ok (_, _) -> raise (Bad "expected UPDATE")

let decode_events data =
  let total = Bytes.length data in
  try
    let out = ref [] in
    let pos = ref 0 in
    while !pos < total do
      if !pos + header_len > total then raise (Bad "truncated");
      let sec, len = decode_header data !pos in
      if !pos + header_len + len > total then raise (Bad "truncated record");
      let body = Bytes.sub data (!pos + header_len) len in
      List.iter (fun ev -> out := ev :: !out) (decode_body ~sec body);
      pos := !pos + header_len + len
    done;
    Ok (List.rev !out)
  with Bad msg -> Error msg

(* --- Streaming ------------------------------------------------------- *)

type stream = {
  ic : in_channel;
  mutable pending : Trace_gen.event list;
      (** decoded events of the current record not yet handed out *)
  mutable failed : bool;
}

let open_stream path =
  match open_in_bin path with
  | ic -> Ok { ic; pending = []; failed = false }
  | exception Sys_error msg -> Error msg

let close_stream s = close_in_noerr s.ic

(* Read the next record off the channel, or None at a clean EOF (the
   channel exactly at a record boundary). Raises [Bad] on truncation
   and malformed records. *)
let read_record s =
  match input_char s.ic with
  | exception End_of_file -> None
  | first ->
    let header = Bytes.create header_len in
    Bytes.set header 0 first;
    (match really_input s.ic header 1 (header_len - 1) with
    | exception End_of_file -> raise (Bad "truncated")
    | () ->
      let sec, len = decode_header header 0 in
      let body = Bytes.create len in
      (match really_input s.ic body 0 len with
      | exception End_of_file -> raise (Bad "truncated record")
      | () -> Some (decode_body ~sec body)))

let rec next s =
  match s.pending with
  | ev :: rest ->
    s.pending <- rest;
    Ok (Some ev)
  | [] ->
    if s.failed then Error "stream already failed"
    else begin
      match read_record s with
      | None -> Ok None
      | Some [] -> next s (* empty UPDATE: no events, keep reading *)
      | Some (ev :: rest) ->
        s.pending <- rest;
        Ok (Some ev)
      | exception Bad msg ->
        s.failed <- true;
        Error msg
    end

let fold_file path ~init ~f =
  match open_stream path with
  | Error e -> Error e
  | Ok s ->
    Fun.protect
      ~finally:(fun () -> close_stream s)
      (fun () ->
        let rec go acc =
          match next s with
          | Error e -> Error e
          | Ok None -> Ok acc
          | Ok (Some ev) -> go (f acc ev)
        in
        go init)

let save path ~local_as events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      List.iter
        (fun ev ->
          encode_event buf ~local_as ev;
          (* bounded memory: flush per event, not per trace *)
          if Buffer.length buf > 1 lsl 20 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end)
        events;
      Buffer.output_buffer oc buf)

let load path =
  Result.map List.rev
    (fold_file path ~init:[] ~f:(fun acc ev -> ev :: acc))
