open Netaddr

type spec = {
  pops : int;
  routers_per_pop : int;
  peer_ases : int;
  peering_points_per_as : int;
  intra_pop_metric : int;
  inter_pop_metric : int;
  seed : int;
}

let spec ?(pops = 13) ?(routers_per_pop = 8) ?(peer_ases = 25)
    ?(peering_points_per_as = 8) ?(intra_pop_metric = 10)
    ?(inter_pop_metric = 100) ?(seed = 7) () =
  if pops < 1 || routers_per_pop < 3 then
    invalid_arg "Isp_topo.spec: need at least 1 PoP with 3 routers";
  if peer_ases < 1 || peering_points_per_as < 1 then
    invalid_arg "Isp_topo.spec: need peer ASes and peering points";
  {
    pops;
    routers_per_pop;
    peer_ases;
    peering_points_per_as;
    intra_pop_metric;
    inter_pop_metric;
    seed;
  }

type session = { router : int; neighbor : Ipv4.t; peer_as : Bgp.Asn.t }

type t = {
  spec : spec;
  n_routers : int;
  igp : Igp.Graph.t;
  pop_of : int array;
  peering_routers : int list;
  access_routers : int list;
  sessions : session list;
  clusters : Abrr_core.Config.cluster list;
  trrs : int list;
}

let peer_asn k = Bgp.Asn.of_int (3000 + k)

(* Router layout: PoP p owns routers [p*rpp, (p+1)*rpp). Within a PoP,
   routers 0 and 1 are the TRR pair (and the PoP's backbone gateways),
   router 2 is the PoP's peering router, the rest are access routers. *)

let generate spec =
  let rpp = spec.routers_per_pop in
  let n = spec.pops * rpp in
  let igp = Igp.Graph.create ~n in
  let pop_of = Array.init n (fun i -> i / rpp) in
  let rng = Random.State.make [| spec.seed |] in
  (* Intra-PoP: star from both gateways to every other router, plus the
     gateway pair link — metrics well below inter-PoP links, the standard
     "clients close to their RRs" arrangement. *)
  for p = 0 to spec.pops - 1 do
    let base = p * rpp in
    Igp.Graph.add_edge igp base (base + 1) spec.intra_pop_metric;
    for r = base + 2 to base + rpp - 1 do
      Igp.Graph.add_edge igp base r spec.intra_pop_metric;
      Igp.Graph.add_edge igp (base + 1) r
        (spec.intra_pop_metric + 1 + Random.State.int rng 3)
    done
  done;
  (* Inter-PoP backbone: ring over gateway 0s, plus random chords. *)
  for p = 0 to spec.pops - 1 do
    let q = (p + 1) mod spec.pops in
    if spec.pops > 1 then
      Igp.Graph.add_edge igp (p * rpp) (q * rpp)
        (spec.inter_pop_metric + Random.State.int rng 20)
  done;
  let chords = max 0 (spec.pops - 3) in
  for _ = 1 to chords do
    let p = Random.State.int rng spec.pops in
    let q = Random.State.int rng spec.pops in
    if p <> q then
      Igp.Graph.add_edge igp ((p * rpp) + 1) ((q * rpp) + 1)
        (spec.inter_pop_metric + Random.State.int rng 40)
  done;
  (* Peering routers: one per PoP (router 2), i.e. roughly 1/rpp of the
     network, matching the <10% peering share of the measured AS. *)
  let peering_routers = List.init spec.pops (fun p -> (p * rpp) + 2) in
  let is_peering r = List.mem r peering_routers in
  let access_routers =
    List.filter
      (fun r -> (not (is_peering r)) && r mod rpp <> 0 && r mod rpp <> 1)
      (List.init n Fun.id)
  in
  (* Peer AS sessions: each peer AS picks peering points in distinct PoPs
     (AT&T-style geographic diversity). *)
  let sessions = ref [] in
  let next_neighbor = ref 0 in
  for k = 0 to spec.peer_ases - 1 do
    let points = min spec.peering_points_per_as spec.pops in
    let offset = Random.State.int rng spec.pops in
    let step = 1 + Random.State.int rng (max 1 (spec.pops / points)) in
    for j = 0 to points - 1 do
      let pop = (offset + (j * step)) mod spec.pops in
      let router = (pop * rpp) + 2 in
      let neighbor = Ipv4.of_int (0xAC10_0000 + !next_neighbor) in
      incr next_neighbor;
      sessions := { router; neighbor; peer_as = peer_asn k } :: !sessions
    done
  done;
  let sessions = List.rev !sessions in
  (* TBRR clusters: one per PoP, TRR pair = the gateways. *)
  let clusters =
    List.init spec.pops (fun p ->
        let base = p * rpp in
        {
          Abrr_core.Config.trrs = [ base; base + 1 ];
          clients = List.init (rpp - 2) (fun i -> base + 2 + i);
        })
  in
  let trrs =
    List.concat_map (fun (c : Abrr_core.Config.cluster) -> c.trrs) clusters
  in
  { spec; n_routers = n; igp; pop_of; peering_routers; access_routers;
    sessions; clusters; trrs }

let sessions_of_as t asn =
  List.filter (fun s -> Bgp.Asn.equal s.peer_as asn) t.sessions

let abrr_arrs t ~aps ~arrs_per_ap =
  (* AP k's j-th redundant ARR sits at pool position k + j*(n/redundancy):
     redundant ARRs land in far-apart PoPs, and assignments are disjoint
     across APs whenever the pool is large enough. Routers are reused
     (an ARR serving several APs) only when it is not. *)
  let pool = Array.of_list t.access_routers in
  let n = Array.length pool in
  if n < arrs_per_ap then invalid_arg "Isp_topo.abrr_arrs: not enough routers";
  let stride = max 1 (n / arrs_per_ap) in
  Array.init aps (fun ap ->
      let rec pick j acc =
        if j >= arrs_per_ap then acc
        else begin
          let base = (ap + (j * stride)) mod n in
          let rec distinct k =
            let cand = pool.((base + k) mod n) in
            if List.mem cand acc then distinct (k + 1) else cand
          in
          pick (j + 1) (distinct 0 :: acc)
        end
      in
      List.sort Int.compare (pick 0 []))

let tbrr_scheme ?multipath t = Abrr_core.Config.tbrr ?multipath t.clusters

let confed_scheme t =
  let rpp = t.spec.routers_per_pop in
  let confed_links =
    List.init (t.spec.pops - 1) (fun p -> (p * rpp, (p + 1) * rpp))
  in
  Abrr_core.Config.confed ~sub_as_of:(Array.copy t.pop_of) ~confed_links

let rcp_scheme ?(replicas = 2) t =
  let arrs = abrr_arrs t ~aps:1 ~arrs_per_ap:replicas in
  Abrr_core.Config.rcp arrs.(0)

let abrr_scheme ?loop_prevention ~aps ~arrs_per_ap t =
  let partition = Abrr_core.Partition.uniform aps in
  Abrr_core.Config.abrr ?loop_prevention ~partition
    (abrr_arrs t ~aps ~arrs_per_ap)

let config ?med_mode ?mrai ?proc_delay ?proc_jitter ?store_full_sets ?damping
    ~scheme t =
  Abrr_core.Config.make ?med_mode ?mrai ?proc_delay ?proc_jitter
    ?store_full_sets ?damping ~n_routers:t.n_routers ~igp:t.igp ~scheme ()
