(** Two-week BGP update trace generator.

    Events are {e routing events} at the granularity the paper observes:
    a peer AS changes its route to a prefix, causing near-simultaneous
    (jittered by up to ~2 s) updates at all of its peering points — the
    source of the TBRR race conditions analysed in §4.2. Prefix activity
    follows a Zipf law (a small set of unstable prefixes dominates). *)

open Netaddr
open Eventsim

type spec = {
  duration : Time.t;
  events : int;  (** number of AS-level routing events *)
  zipf_s : float;  (** popularity skew, 0 = uniform *)
  flap_share : float;  (** events that withdraw then re-announce *)
  single_point_share : float;
      (** events affecting a single peering session rather than every
          peering point of the AS *)
  jitter : Time.t;  (** spread of per-point update arrivals *)
  flap_restore_min : Time.t;
      (** earliest restore after a flap's withdrawal *)
  flap_restore_max : Time.t;
      (** latest restore; the delay is drawn uniformly (whole seconds)
          from [\[min, max)] — or exactly [min] when the window is empty *)
  seed : int;
}

val spec :
  ?duration:Time.t ->
  ?events:int ->
  ?zipf_s:float ->
  ?flap_share:float ->
  ?single_point_share:float ->
  ?jitter:Time.t ->
  ?flap_restore_min:Time.t ->
  ?flap_restore_max:Time.t ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 14 days, 5000 events, skew 1.1, 30% flaps, 60% single-point
    events, 2 s jitter, 30-90 s flap restore window, seed 23. Traces
    generated at the default restore window are bit-identical to those of
    builds that predate the knob (same RNG draw sequence).
    @raise Invalid_argument unless [0 <= flap_restore_min <= flap_restore_max]. *)

type action =
  | Announce of { router : int; neighbor : Ipv4.t; route : Bgp.Route.t }
  | Withdraw of { router : int; neighbor : Ipv4.t; prefix : Prefix.t; path_id : int }

type event = { time : Time.t; action : action }

val generate : Route_gen.t -> spec -> event list
(** Time-sorted. Announce/withdraw sequences per session are consistent
    (a flap withdraws exactly what was announced, then restores it). *)

val schedule : Abrr_core.Network.t -> event list -> unit
(** Register every event with the network's simulator upfront. The
    queue then holds the whole trace — fine for test-scale runs; the
    paper-scale path is {!replay}. *)

val of_list : event list -> unit -> (event option, string) result
(** A pull producer over a materialised list, for feeding {!replay}
    (tests, small traces). *)

val replay :
  ?chunk:int ->
  Abrr_core.Network.t ->
  (unit -> (event option, string) result) ->
  (Eventsim.Sim.outcome, string) result
(** Stream a time-sorted trace through the simulator: pull [chunk]
    events at a time from the producer (e.g. {!Mrt.next} on an open
    stream), reify them, and advance the clock to just before the first
    event not yet pulled — so the pending queue holds O([chunk]) trace
    events instead of the whole trace, and every trace event still
    enters the queue before simulated time reaches it. Runs to
    quiescence after the producer is exhausted. Default [chunk] 4096.

    [Error _] when the producer fails or yields an event earlier than
    the simulated clock (not time-sorted).

    Outcome-identical to {!schedule} + [Network.run] unless a trace
    event shares its exact microsecond timestamp with an unrelated
    already-scheduled simulator event (the tie then breaks by insertion
    order, which streaming alters) — measure-zero under jittered
    traces, and the equivalence test checks digests are in fact equal.
    @raise Invalid_argument if [chunk <= 0]. *)

val action_count : event list -> int * int
(** (announcements, withdrawals). *)
