open Netaddr
open Eventsim

type spec = {
  duration : Time.t;
  events : int;
  zipf_s : float;
  flap_share : float;
  single_point_share : float;
  jitter : Time.t;
  flap_restore_min : Time.t;
  flap_restore_max : Time.t;
  seed : int;
}

let spec ?(duration = Time.days 14) ?(events = 5000) ?(zipf_s = 1.1)
    ?(flap_share = 0.3) ?(single_point_share = 0.6) ?(jitter = Time.sec 2)
    ?(flap_restore_min = Time.sec 30) ?(flap_restore_max = Time.sec 90)
    ?(seed = 23) () =
  if events < 0 then invalid_arg "Trace_gen.spec: negative event count";
  let check01 name v =
    if v < 0. || v > 1. then invalid_arg ("Trace_gen.spec: " ^ name ^ " not in [0,1]")
  in
  check01 "flap_share" flap_share;
  check01 "single_point_share" single_point_share;
  if flap_restore_min < Time.zero || flap_restore_max < flap_restore_min then
    invalid_arg "Trace_gen.spec: flap restore window must satisfy 0 <= min <= max";
  { duration; events; zipf_s; flap_share; single_point_share; jitter;
    flap_restore_min; flap_restore_max; seed }

type action =
  | Announce of { router : int; neighbor : Ipv4.t; route : Bgp.Route.t }
  | Withdraw of { router : int; neighbor : Ipv4.t; prefix : Prefix.t; path_id : int }

type event = { time : Time.t; action : action }

(* Zipf sampler over [0, n): inverse-CDF on precomputed weights. *)
let zipf_cdf n s =
  let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let acc = ref 0. in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let sample_cdf rng cdf =
  let u = Random.State.float rng 1. in
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* Group a prefix's eBGP routes by the advertising peer AS (customer
   routes group under their customer AS). *)
let groups_of_routes entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (e : Route_gen.ebgp_route) ->
      let key =
        match Bgp.Route.neighbor_as e.Route_gen.route with
        | Some a -> Bgp.Asn.to_int a
        | None -> 0
      in
      match Hashtbl.find_opt tbl key with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.add tbl key (ref [ e ]);
        order := key :: !order)
    entries;
  List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order

let generate (table : Route_gen.t) spec =
  let rng = Random.State.make [| spec.seed |] in
  let n = Array.length table.Route_gen.prefixes in
  if n = 0 || spec.events = 0 then []
  else begin
    (* Popularity ranking: a deterministic shuffle of prefix indices. *)
    let ranking = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = ranking.(i) in
      ranking.(i) <- ranking.(j);
      ranking.(j) <- tmp
    done;
    let cdf = zipf_cdf n spec.zipf_s in
    let out = ref [] in
    let emit time action = out := { time; action } :: !out in
    let jitter () =
      if spec.jitter = Time.zero then Time.zero
      else Random.State.int rng spec.jitter
    in
    for _ = 1 to spec.events do
      let idx = ranking.(sample_cdf rng cdf) in
      let entries = table.Route_gen.routes.(idx) in
      match groups_of_routes entries with
      | [] -> ()
      | groups ->
        let group = List.nth groups (Random.State.int rng (List.length groups)) in
        (* Most real-world churn is localised to one peering session; the
           rest are AS-wide events hitting every point near-simultaneously
           (the §4.2 race trigger). *)
        let group =
          if Random.State.float rng 1. < spec.single_point_share then
            [ List.nth group (Random.State.int rng (List.length group)) ]
          else group
        in
        let base = Random.State.full_int rng (max 1 spec.duration) in
        if Random.State.float rng 1. < spec.flap_share then begin
          (* Flap: all points withdraw, then restore min..max later. The
             draw is over whole seconds so the default 30-90 s window
             replays the exact RNG consumption (and values) of the
             pre-spec hardcoded form, keeping trace digests stable. *)
          let span_s =
            (spec.flap_restore_max - spec.flap_restore_min) / Time.sec 1
          in
          let extra =
            if span_s > 0 then Time.sec (Random.State.int rng span_s)
            else Time.zero
          in
          let restore = base + spec.flap_restore_min + extra in
          List.iter
            (fun (e : Route_gen.ebgp_route) ->
              let r = e.Route_gen.route in
              emit (base + jitter ())
                (Withdraw
                   {
                     router = e.Route_gen.router;
                     neighbor = e.Route_gen.neighbor;
                     prefix = r.Bgp.Route.prefix;
                     path_id = r.Bgp.Route.path_id;
                   });
              emit (restore + jitter ())
                (Announce
                   {
                     router = e.Route_gen.router;
                     neighbor = e.Route_gen.neighbor;
                     route = r;
                   }))
            group
        end
        else begin
          (* Attribute change: the AS re-announces with fresh (still
             quantized) MEDs at the affected points. *)
          let gs = table.Route_gen.gen_spec in
          List.iter
            (fun (e : Route_gen.ebgp_route) ->
              let r = e.Route_gen.route in
              let med =
                Some
                  (gs.Route_gen.med_quantum
                  * Random.State.int rng gs.Route_gen.med_levels)
              in
              let r = Bgp.Route.update ~med r in
              emit (base + jitter ())
                (Announce
                   {
                     router = e.Route_gen.router;
                     neighbor = e.Route_gen.neighbor;
                     route = r;
                   }))
            group
        end
    done;
    List.sort (fun a b -> Int.compare a.time b.time) !out
  end

let schedule net events =
  (* Reified ops, not closures: a long-trace run with the whole trace
     pre-scheduled stays checkpointable at any event boundary. *)
  List.iter
    (fun ev ->
      let op =
        match ev.action with
        | Announce { router; neighbor; route } ->
          Abrr_core.Network.Inject { router; neighbor; route }
        | Withdraw { router; neighbor; prefix; path_id } ->
          Abrr_core.Network.Withdraw { router; neighbor; prefix; path_id }
      in
      Abrr_core.Network.at_op net ev.time op)
    events

let of_list events =
  let rest = ref events in
  fun () ->
    match !rest with
    | [] -> Ok None
    | ev :: tl ->
      rest := tl;
      Ok (Some ev)

let replay ?(chunk = 4096) net next =
  if chunk <= 0 then invalid_arg "Trace_gen.replay: chunk must be positive";
  let module N = Abrr_core.Network in
  let sim = N.sim net in
  let schedule_ev ev =
    if ev.time < Eventsim.Sim.now sim then
      Error
        (Printf.sprintf "trace event at %d is before the clock (%d)" ev.time
           (Eventsim.Sim.now sim))
    else begin
      let op =
        match ev.action with
        | Announce { router; neighbor; route } ->
          N.Inject { router; neighbor; route }
        | Withdraw { router; neighbor; prefix; path_id } ->
          N.Withdraw { router; neighbor; prefix; path_id }
      in
      N.at_op net ev.time op;
      Ok ()
    end
  in
  (* One event of lookahead: after reifying a chunk, the clock only
     advances to strictly before the first event *not* yet scheduled,
     so every trace event enters the queue before simulated time
     reaches it — the same (time, insertion) ordering a fully
     pre-scheduled run gives it. *)
  let look = ref None in
  let pull () =
    match !look with
    | Some _ as l ->
      look := None;
      Ok l
    | None -> next ()
  in
  let rec go () =
    let rec fill n =
      if n = 0 then Ok `More
      else
        match pull () with
        | Error e -> Error e
        | Ok None -> Ok `Eof
        | Ok (Some ev) -> (
          match schedule_ev ev with Error e -> Error e | Ok () -> fill (n - 1))
    in
    match fill chunk with
    | Error e -> Error e
    | Ok `Eof -> Ok (N.run net)
    | Ok `More -> (
      match next () with
      | Error e -> Error e
      | Ok None -> Ok (N.run net)
      | Ok (Some ev) -> (
        look := Some ev;
        match N.run ~until:(ev.time - 1) net with
        | Eventsim.Sim.Quiescent | Eventsim.Sim.Deadline -> go ()
        | o -> Ok o))
  in
  go ()

let action_count events =
  List.fold_left
    (fun (a, w) ev ->
      match ev.action with Announce _ -> (a + 1, w) | Withdraw _ -> (a, w + 1))
    (0, 0) events
