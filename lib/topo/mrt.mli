(** MRT trace serialisation (RFC 6396): BGP4MP_ET records with
    microsecond timestamps wrapping wire-encoded BGP UPDATE messages —
    the format the paper's route regenerator consumes.

    Router identity round-trips through the record's local IP using the
    loopback convention of {!Abrr_core.Config.loopback}.

    Two reading modes share one record decoder: the in-memory
    [decode_events]/[load] pair materialises the whole event list, and
    the {!stream} interface hands out one event at a time reading one
    record's bytes off the file per refill — a two-week paper-scale
    trace replays in constant memory (SCALING.md). *)

val encode_events : local_as:Bgp.Asn.t -> Trace_gen.event list -> bytes

val decode_events : bytes -> (Trace_gen.event list, string) result
(** Inverse of [encode_events]: announcements and withdrawals are
    recovered with their timestamps, sessions and full attribute sets. *)

val save : string -> local_as:Bgp.Asn.t -> Trace_gen.event list -> unit
(** Write events to [path], flushing incrementally (the encoder never
    buffers more than ~1 MiB). *)

val load : string -> (Trace_gen.event list, string) result
(** [fold_file] materialised into a list. *)

(** {1 Streaming} *)

type stream
(** An open MRT file being read record-at-a-time. Not thread-safe. *)

val open_stream : string -> (stream, string) result

val next : stream -> (Trace_gen.event option, string) result
(** The next event, [Ok None] at a clean end-of-file. Truncated or
    malformed input yields [Error _], after which the stream stays
    failed. A multi-event record (an UPDATE carrying several
    withdrawals/NLRI) is handed out in wire order across successive
    calls. *)

val close_stream : stream -> unit

val fold_file :
  string -> init:'a -> f:('a -> Trace_gen.event -> 'a) -> ('a, string) result
(** Fold [f] over every event of the file in record order without
    materialising the event list. The file is closed on return and on
    exceptions. *)
