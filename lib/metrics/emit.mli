(** Machine-readable benchmark emission: a dependency-free JSON codec,
    the [BENCH_<experiment>.json] record schema every experiment writes,
    and the record-diffing logic behind [bench/compare.exe].

    The schema and the workflow around it (recording runs, comparing two
    run sets, the CI soft gate) are documented end-to-end in
    [OBSERVABILITY.md] at the repository root. The JSON layer is
    deliberately minimal — just enough to round-trip {!type:record} —
    so that [lib/metrics] stays free of external dependencies. *)

(** {1 JSON values} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats encode as [null] *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list  (** insertion order is preserved *)

val to_string : ?compact:bool -> json -> string
(** Serialize. The default is pretty-printed with two-space indentation
    and a trailing newline; [~compact:true] emits a single line (no
    trailing newline). Strings are escaped per RFC 8259; NaN and
    infinities become [null]. *)

val of_string : string -> (json, string) result
(** Parse a JSON document. Numbers without a fraction or exponent that
    fit in an OCaml [int] parse as {!Int}, everything else as {!Float}.
    [\uXXXX] escapes are decoded to UTF-8 (surrogate pairs supported).
    The error string carries a character offset. *)

(** {2 Accessors} *)

val member : string -> json -> json option
(** [member key j] is the value bound to [key] when [j] is an {!Obj}. *)

val number : json -> float option
(** {!Int} or {!Float} (NaN for {!Null}, mirroring the encoder). *)

val string_opt : json -> string option
val int_opt : json -> int option
val bool_opt : json -> bool option
val list_opt : json -> json list option

(** {1 The benchmark record schema}

    One [BENCH_<experiment>.json] file holds one {!type:record}: the
    experiment id plus a list of {!type:run}s (one per configuration the
    experiment measured — e.g. one per iBGP scheme). Every numeric
    result a run reports is either a named {!type:metric} or a counter /
    summary / phase entry; {!diff} knows which of them participate in
    regression gating (see [OBSERVABILITY.md]). *)

val schema_version : int
(** Version stamp written to (and checked when reading) every file. *)

type metric = {
  name : string;
  value : float;
  unit_ : string;  (** e.g. ["entries"], ["ns"], ["s"]; [""] = unitless *)
  gate : bool;
      (** [true] when the value is deterministic for a fixed seed and
          should participate in regression gating; [false] for noisy
          quantities (wall-clock timings, ns/op estimates) that are
          reported but never gated *)
}

type run = {
  label : string;  (** unique within the record, e.g. ["ABRR  8 APs"] *)
  scheme : string;  (** iBGP scheme id, [""] when not applicable *)
  knobs : (string * float) list;
      (** scale parameters: prefix counts, trace events, router counts *)
  wall_s : float;  (** wall-clock seconds spent producing the run *)
  sim_s : float;  (** final simulated time, [0.] when no simulation ran *)
  events : int;  (** simulator events processed, [0] when none *)
  counters : (string * int) list;
      (** network-total counter values, from {!Abrr_core.Counters} *)
  summaries : (string * Summary.t) list;
      (** distribution summaries (per-router RIB sizes, sampled trace
          queue depths, ...) *)
  phases : (string * float) list;
      (** per-phase CPU seconds from {!Eventsim.Sim.phase_stats} *)
  metrics : metric list;  (** the experiment's headline numbers *)
}

type record = { experiment : string; runs : run list }

val metric : ?unit_:string -> ?gate:bool -> string -> float -> metric
(** [metric name value] with [unit_ = ""] and [gate = true]. *)

val run :
  ?scheme:string ->
  ?knobs:(string * float) list ->
  ?wall_s:float ->
  ?sim_s:float ->
  ?events:int ->
  ?counters:(string * int) list ->
  ?summaries:(string * Summary.t) list ->
  ?phases:(string * float) list ->
  label:string ->
  metric list ->
  run
(** All optional components default to empty / zero. *)

val record_to_json : record -> json

val record_of_json : json -> (record, string) result
(** Rejects missing mandatory fields and unknown schema versions;
    optional run components default as in {!run}. *)

(** {1 File round-trip} *)

val filename : string -> string
(** [filename exp] is ["BENCH_" ^ exp ^ ".json"]. *)

val write_file : string -> record -> unit
(** Atomically-enough for our purposes: truncate + write + close. *)

val read_file : string -> (record, string) result

(** {1 Diffing two records (the [compare] tool)} *)

type drift = {
  d_run : string;  (** run label *)
  d_name : string;  (** dotted path, e.g. ["counters.updates_received"] *)
  d_base : float;  (** NaN when missing from the baseline *)
  d_cand : float;  (** NaN when missing from the candidate *)
  d_rel : float;  (** relative deviation, [infinity] when base = 0 <> cand *)
  d_gated : bool;
}

val diff : threshold:float -> baseline:record -> candidate:record -> drift list
(** Every gated quantity of [baseline] ([counters], [sim_s], [events]
    and gated [metrics]) is matched by run label and name against
    [candidate]; a relative deviation above [threshold], or a gated
    quantity missing from the candidate, produces a gated drift.
    Ungated quantities are compared too but their drifts carry
    [d_gated = false] (informational only). Quantities that exist only
    in the candidate are ignored — the schema may grow. Runs present
    only in the baseline drift as a whole (gated). *)

val render_drifts : drift list -> string
(** Human-readable table of drifts (via {!Table.render}). *)
