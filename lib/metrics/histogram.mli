(** Fixed-width bin histogram over floats. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins < 1]. Samples outside
    [lo, hi) land in the first/last bin. *)

val add : t -> float -> unit

val add_int : t -> int -> unit
(** {!add} of [float_of_int]. *)

val count : t -> int
(** Total samples added. *)

val bin_counts : t -> int array
(** Per-bin sample counts, lowest bin first. *)

val bin_bounds : t -> int -> float * float
(** [(lo, hi)] bounds of bin [i]. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** ASCII bar rendering. *)
