(* Dependency-free JSON + the BENCH_*.json record schema + diffing.
   See OBSERVABILITY.md for the contract this module implements. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(compact = false) j =
  let buf = Buffer.create 1024 in
  let nl indent =
    if not compact then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        Buffer.add_string buf "null"
      else
        (* shortest representation that still round-trips exactly *)
        let short = Printf.sprintf "%.12g" f in
        Buffer.add_string buf
          (if float_of_string short = f then short
           else Printf.sprintf "%.17g" f)
    | Str s -> escape_to buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape_to buf k;
          Buffer.add_string buf (if compact then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 j;
  if not compact then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a string                      *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let hi = hex4 () in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* surrogate pair *)
            if
              !pos + 2 <= n
              && s.[!pos] = '\\'
              && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
              add_utf8 buf
                (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else fail "lone high surrogate"
          end
          else add_utf8 buf hi
        | c -> fail (Printf.sprintf "invalid escape \\%C" c));
        go ())
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "malformed number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null -> Some Float.nan
  | _ -> None

let string_opt = function Str s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None
let bool_opt = function Bool b -> Some b | _ -> None
let list_opt = function Arr l -> Some l | _ -> None

(* ------------------------------------------------------------------ *)
(* Bench records                                                       *)

let schema_version = 1

type metric = { name : string; value : float; unit_ : string; gate : bool }

type run = {
  label : string;
  scheme : string;
  knobs : (string * float) list;
  wall_s : float;
  sim_s : float;
  events : int;
  counters : (string * int) list;
  summaries : (string * Summary.t) list;
  phases : (string * float) list;
  metrics : metric list;
}

type record = { experiment : string; runs : run list }

let metric ?(unit_ = "") ?(gate = true) name value = { name; value; unit_; gate }

let run ?(scheme = "") ?(knobs = []) ?(wall_s = 0.) ?(sim_s = 0.) ?(events = 0)
    ?(counters = []) ?(summaries = []) ?(phases = []) ~label metrics =
  { label; scheme; knobs; wall_s; sim_s; events; counters; summaries; phases;
    metrics }

let summary_to_json (s : Summary.t) =
  Obj
    [
      ("count", Int s.Summary.count);
      ("min", Float s.Summary.min);
      ("max", Float s.Summary.max);
      ("mean", Float s.Summary.mean);
      ("stddev", Float s.Summary.stddev);
      ("sum", Float s.Summary.sum);
    ]

let metric_to_json m =
  Obj
    [
      ("name", Str m.name);
      ("value", Float m.value);
      ("unit", Str m.unit_);
      ("gate", Bool m.gate);
    ]

let run_to_json r =
  Obj
    [
      ("label", Str r.label);
      ("scheme", Str r.scheme);
      ("knobs", Obj (List.map (fun (k, v) -> (k, Float v)) r.knobs));
      ("wall_s", Float r.wall_s);
      ("sim_s", Float r.sim_s);
      ("events", Int r.events);
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) r.counters));
      ("summaries",
       Obj (List.map (fun (k, v) -> (k, summary_to_json v)) r.summaries));
      ("phases", Obj (List.map (fun (k, v) -> (k, Float v)) r.phases));
      ("metrics", Arr (List.map metric_to_json r.metrics));
    ]

let record_to_json r =
  Obj
    [
      ("schema", Int schema_version);
      ("experiment", Str r.experiment);
      ("runs", Arr (List.map run_to_json r.runs));
    ]

(* Decoding: missing optional components default to empty, so the schema
   can grow without invalidating older files. *)

let ( let* ) r f = Result.bind r f

let need what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let num_field name j =
  match Option.bind (member name j) number with Some f -> f | None -> 0.

let assoc_fields conv name j =
  match member name j with
  | Some (Obj fields) ->
    List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (conv v)) fields
  | _ -> []

let summary_of_json j : Summary.t option =
  let f name = Option.bind (member name j) number in
  match (Option.bind (member "count" j) int_opt, f "min", f "max", f "mean",
         f "stddev", f "sum")
  with
  | Some count, Some min, Some max, Some mean, Some stddev, Some sum ->
    Some { Summary.count; min; max; mean; stddev; sum }
  | _ -> None

let metric_of_json j =
  match Option.bind (member "name" j) string_opt with
  | None -> Error "metric without a name"
  | Some name ->
    let value =
      match Option.bind (member "value" j) number with
      | Some v -> v
      | None -> Float.nan
    in
    let unit_ =
      Option.value ~default:"" (Option.bind (member "unit" j) string_opt)
    in
    let gate =
      Option.value ~default:true (Option.bind (member "gate" j) bool_opt)
    in
    Ok { name; value; unit_; gate }

let run_of_json j =
  let* label = need "run label" (Option.bind (member "label" j) string_opt) in
  let scheme =
    Option.value ~default:"" (Option.bind (member "scheme" j) string_opt)
  in
  let* metrics =
    match member "metrics" j with
    | None -> Ok []
    | Some (Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* m = metric_of_json item in
          Ok (m :: acc))
        (Ok []) items
      |> Result.map List.rev
    | Some _ -> Error "metrics is not an array"
  in
  Ok
    {
      label;
      scheme;
      knobs = assoc_fields number "knobs" j;
      wall_s = num_field "wall_s" j;
      sim_s = num_field "sim_s" j;
      events = Option.value ~default:0 (Option.bind (member "events" j) int_opt);
      counters = assoc_fields int_opt "counters" j;
      summaries = assoc_fields summary_of_json "summaries" j;
      phases = assoc_fields number "phases" j;
      metrics;
    }

let record_of_json j =
  let* schema = need "schema" (Option.bind (member "schema" j) int_opt) in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema version %d" schema)
  else
    let* experiment =
      need "experiment" (Option.bind (member "experiment" j) string_opt)
    in
    let* runs =
      match member "runs" j with
      | Some (Arr items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* r = run_of_json item in
            Ok (r :: acc))
          (Ok []) items
        |> Result.map List.rev
      | Some _ -> Error "runs is not an array"
      | None -> Error "missing runs"
    in
    Ok { experiment; runs }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let filename experiment = "BENCH_" ^ experiment ^ ".json"

let write_file path record =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string (record_to_json record)))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text ->
    let* j = of_string text in
    record_of_json j

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)

type drift = {
  d_run : string;
  d_name : string;
  d_base : float;
  d_cand : float;
  d_rel : float;
  d_gated : bool;
}

let rel_dev base cand =
  if base = cand then 0.
  else if base = 0. then Float.infinity
  else Float.abs (cand -. base) /. Float.abs base

(* Flatten a run into (dotted name, value, gated) triples. Counters,
   sim_s, events and gated metrics gate; wall-clock, phases, summaries
   and ungated metrics are informational. *)
let flatten r =
  List.concat
    [
      [ ("sim_s", r.sim_s, true); ("events", float_of_int r.events, true);
        ("wall_s", r.wall_s, false) ];
      List.map
        (fun (k, v) -> ("counters." ^ k, float_of_int v, true))
        r.counters;
      List.map (fun (k, v) -> ("phases." ^ k, v, false)) r.phases;
      List.map
        (fun (k, (s : Summary.t)) -> ("summaries." ^ k ^ ".mean", s.Summary.mean, false))
        r.summaries;
      List.map
        (fun m -> ("metrics." ^ m.name, m.value, m.gate))
        r.metrics;
    ]

let diff ~threshold ~baseline ~candidate =
  List.concat_map
    (fun base_run ->
      match
        List.find_opt (fun r -> r.label = base_run.label) candidate.runs
      with
      | None ->
        [ { d_run = base_run.label; d_name = "(entire run missing)";
            d_base = Float.nan; d_cand = Float.nan; d_rel = Float.infinity;
            d_gated = true } ]
      | Some cand_run ->
        let cand_vals = flatten cand_run in
        List.filter_map
          (fun (name, base, gated) ->
            match
              List.find_opt (fun (n, _, _) -> n = name) cand_vals
            with
            | None ->
              if gated then
                Some { d_run = base_run.label; d_name = name; d_base = base;
                       d_cand = Float.nan; d_rel = Float.infinity;
                       d_gated = true }
              else None
            | Some (_, cand, _) ->
              let rel = rel_dev base cand in
              if rel > threshold then
                Some { d_run = base_run.label; d_name = name; d_base = base;
                       d_cand = cand; d_rel = rel; d_gated = gated }
              else None)
          (flatten base_run))
    baseline.runs

let render_drifts = function
  | [] -> "no drift\n"
  | drifts ->
    let fmt f = if Float.is_nan f then "-" else Printf.sprintf "%.6g" f in
    Table.render
      ~align:[ Table.Left; Table.Left ]
      ~header:[ "run"; "quantity"; "baseline"; "candidate"; "rel. dev"; "gated" ]
      (List.map
         (fun d ->
           [ d.d_run; d.d_name; fmt d.d_base; fmt d.d_cand;
             (if d.d_rel = Float.infinity then "inf"
              else Printf.sprintf "%.1f%%" (100. *. d.d_rel));
             (if d.d_gated then "YES" else "no") ])
         drifts)
