(** Summary statistics over float samples — the distribution component
    of the [BENCH_*.json] schema ({!Emit.run}'s [summaries] field). *)

type t = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;  (** population standard deviation *)
  sum : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_ints : int list -> t
(** {!of_list} over [float_of_int]-converted samples.
    @raise Invalid_argument on an empty list. *)

val percentile : float list -> float -> float
(** [percentile samples q] with [q] in 0..100, linear interpolation.
    @raise Invalid_argument on empty input or out-of-range [q]. *)

val median : float list -> float
(** [percentile samples 50.] *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g. ["n=4 min=1 mean=4 max=10"]. *)
