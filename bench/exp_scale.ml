(* Memory-compact RIB architecture at scale (SCALING.md): one ABRR
   network fed a full route table, then driven by a two-week MRT trace
   streamed off disk — never materialised — while sampling process peak
   RSS, trace throughput and per-event wall latency.

   Emits BENCH_scale.json. Deterministic quantities (counters, RIB
   totals, simulated time, events) gate against bench/baseline/scale/
   with a relative threshold wide enough to also keep the peak-RSS
   sample honest across toolchain versions (CI uses 0.3); wall-derived
   rates and latency percentiles are reported ungated.

   Default knobs are CI-bounded. The full paper-scale run (416 K
   prefixes x 1008 routers x 25 peer ASes) is the same experiment with
   the --scale-* flags turned up — the recipe is in SCALING.md. *)

open Exp_common
module T = Topo.Isp_topo
module TG = Topo.Trace_gen
module Mrt = Topo.Mrt

(* --scale-* knobs (bench/main.ml) *)
let pops = ref 13
let rpp = ref 8
let peer_ases = ref 25
let n_prefixes = ref 4000
let trace_events = ref 1200
let aps = ref 8
let trace_path = ref "" (* "" = fresh temp file *)

let kb_to_mb kb = float_of_int kb /. 1024.

(* Wrap a pull producer with wall-clock instrumentation: each time the
   replay loop comes back for more events (once per chunk refill), the
   wall time and simulator events spent since the previous refill yield
   one ns-per-event latency sample. *)
let instrument sim next =
  let samples = ref [] in
  let last_wall = ref (Unix.gettimeofday ()) in
  let last_events = ref (Eventsim.Sim.events_processed sim) in
  let wrapped () =
    let wall = Unix.gettimeofday () in
    let events = Eventsim.Sim.events_processed sim in
    let de = events - !last_events in
    if de > 0 then begin
      samples := (wall -. !last_wall) /. float_of_int de *. 1e9 :: !samples;
      last_wall := wall;
      last_events := events
    end;
    next ()
  in
  (wrapped, samples)

let run () =
  let scale_c = Abrr_core.Counters.create () in
  let wall0 = Unix.gettimeofday () in
  let topo =
    T.generate
      (T.spec ~pops:!pops ~routers_per_pop:!rpp ~peer_ases:!peer_ases
         ~peering_points_per_as:8 ())
  in
  let table = RG.generate topo (RG.spec ~n_prefixes:!n_prefixes ()) in
  let n_routes = RG.total_routes table in
  Printf.printf
    "Workload: %d routers, %d prefixes, %d eBGP routes from %d peer ASes;\n\
     trace: %d routing events over 14 simulated days, streamed from disk.\n\n%!"
    topo.T.n_routers !n_prefixes n_routes !peer_ases !trace_events;
  (* Generate the trace and park it on disk: the replay below must not
     depend on the in-memory event list. *)
  let mrt_file =
    if !trace_path <> "" then !trace_path
    else Filename.temp_file "abrr_scale" ".mrt"
  in
  let local_as = Bgp.Asn.of_int 65000 in
  let announce_count, withdraw_count =
    let events = tier1_trace table { n_prefixes = !n_prefixes;
                                     trace_events = !trace_events } in
    Mrt.save mrt_file ~local_as events;
    TG.action_count events
  in
  let scheme = T.abrr_scheme ~aps:!aps ~arrs_per_ap:2 topo in
  let label = Printf.sprintf "ABRR %d APs" !aps in
  let cfg = config topo scheme in
  precheck ~label cfg;
  let net = N.create cfg in
  let sim = N.sim net in
  let sink = Sim.Trace.make ~capacity:4096 ~sample_every:64 () in
  Sim.set_sink sim sink;
  (* Feed: the full table converges once; this is where RIB residency
     peaks, so sample RSS right after. *)
  Sim.phase sim "feed" (fun () ->
      RG.inject_all table net;
      match N.run ~max_events:max_int net with
      | Sim.Quiescent -> ()
      | o ->
        failwith
          (Format.asprintf "scale: feed did not converge (%a)" Sim.pp_outcome o));
  Abrr_core.Counters.sample_mem scale_c;
  let feed_rss_kb = scale_c.Abrr_core.Counters.mem_peak_kb in
  for i = 0 to N.router_count net - 1 do
    Abrr_core.Counters.reset (N.counters net i)
  done;
  (* Trace: stream the MRT file through the simulator in constant
     memory, sampling wall latency per replay chunk. *)
  let trace_wall0 = Unix.gettimeofday () in
  let events_before = Sim.events_processed sim in
  let latency_samples =
    Sim.phase sim "trace" (fun () ->
        match Mrt.open_stream mrt_file with
        | Error e -> failwith ("scale: " ^ mrt_file ^ ": " ^ e)
        | Ok stream ->
          Fun.protect
            ~finally:(fun () -> Mrt.close_stream stream)
            (fun () ->
              let producer, samples =
                instrument sim (fun () -> Mrt.next stream)
              in
              match TG.replay ~chunk:256 net producer with
              | Ok Sim.Quiescent -> !samples
              | Ok o ->
                failwith
                  (Format.asprintf "scale: trace ended with %a" Sim.pp_outcome o)
              | Error e -> failwith ("scale: replay: " ^ e)))
  in
  let trace_wall = Unix.gettimeofday () -. trace_wall0 in
  let trace_events_processed = Sim.events_processed sim - events_before in
  Abrr_core.Counters.sample_mem scale_c;
  if !trace_path = "" then Sys.remove mrt_file;
  (* Residency accounting (SCALING.md, "Bytes per route") *)
  let ids = List.init topo.T.n_routers Fun.id in
  let sum f = List.fold_left (fun acc i -> acc + f (N.router net i)) 0 ids in
  let loc_rib_total = sum R.loc_rib_entries in
  let rib_in_total = sum R.rib_in_entries in
  let rib_out_total = sum (fun r -> R.rib_out_entries r + R.rib_out_client_entries r) in
  let ebgp_total = sum R.ebgp_entries in
  let placements = loc_rib_total + rib_in_total + rib_out_total + ebgp_total in
  let interned = Bgp.Route.interned_attrs () in
  let peak_kb = scale_c.Abrr_core.Counters.mem_peak_kb in
  let bytes_per_placement =
    if placements = 0 then 0.
    else float_of_int peak_kb *. 1024. /. float_of_int placements
  in
  let total = N.total_counters net in
  Abrr_core.Counters.add total scale_c;
  let updates_per_sec =
    if trace_wall > 0. then
      float_of_int total.Abrr_core.Counters.updates_received /. trace_wall
    else 0.
  in
  let events_per_sec =
    if trace_wall > 0. then float_of_int trace_events_processed /. trace_wall
    else 0.
  in
  let pct q =
    if latency_samples = [] then 0.
    else Metrics.Summary.percentile latency_samples q
  in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let knobs =
    [
      ("n_routers", fi topo.T.n_routers);
      ("n_prefixes", fi !n_prefixes);
      ("peer_ases", fi !peer_ases);
      ("trace_events", fi !trace_events);
      ("aps", fi !aps);
    ]
  in
  let m = E.metric ~unit_:"entries" in
  let u ?(unit_ = "") name v = E.metric ~unit_ ~gate:false name v in
  let jrun =
    E.run ~label ~scheme:"abrr" ~knobs ~wall_s
      ~sim_s:(Eventsim.Time.to_sec (Sim.now sim))
      ~events:(Sim.events_processed sim)
      ~counters:(Abrr_core.Counters.to_fields total)
      ~summaries:
        (match latency_samples with
        | [] -> []
        | s -> [ ("event_latency_ns", Metrics.Summary.of_list s) ])
      ~phases:(List.map (fun (n, st) -> (n, st.Sim.cpu_s)) (Sim.phase_stats sim))
      [
        m "loc_rib_total" (fi loc_rib_total);
        m "rib_in_total" (fi rib_in_total);
        m "rib_out_total" (fi rib_out_total);
        m "ebgp_total" (fi ebgp_total);
        m "route_placements" (fi placements);
        m "trace_announcements" (fi announce_count);
        m "trace_withdrawals" (fi withdraw_count);
        u ~unit_:"blocks" "interned_attr_blocks" (fi interned);
        u ~unit_:"kB" "feed_peak_rss_kb" (fi feed_rss_kb);
        u ~unit_:"kB" "peak_rss_kb" (fi peak_kb);
        u ~unit_:"B" "bytes_per_placement" bytes_per_placement;
        (* Gated (unlike the other wall-derived rates): the updates/sec
           CI floor that keeps the incremental decision path fast. The
           0.3 comparison threshold absorbs machine-to-machine wall
           variance; a regression past it fails the job. *)
        E.metric ~unit_:"updates/s" "updates_per_sec" updates_per_sec;
        u ~unit_:"events/s" "events_per_sec" events_per_sec;
        u ~unit_:"ns" "latency_p50_ns" (pct 50.);
        u ~unit_:"ns" "latency_p90_ns" (pct 90.);
        u ~unit_:"ns" "latency_p99_ns" (pct 99.);
      ]
  in
  emit { E.experiment = "scale"; runs = [ jrun ] };
  print_endline "== Memory-compact RIB at scale ==";
  Metrics.Table.print
    ~header:[ "quantity"; "value" ]
    [
      [ "route placements (all RIBs)"; Metrics.Table.fmt_int placements ];
      [ "  Loc-RIB / Adj-RIB-In / Adj-RIB-Out";
        Printf.sprintf "%s / %s / %s"
          (Metrics.Table.fmt_int loc_rib_total)
          (Metrics.Table.fmt_int rib_in_total)
          (Metrics.Table.fmt_int rib_out_total) ];
      [ "interned attribute blocks"; Metrics.Table.fmt_int interned ];
      [ "peak RSS (feed / end)";
        Printf.sprintf "%.1f / %.1f MB" (kb_to_mb feed_rss_kb) (kb_to_mb peak_kb) ];
      [ "bytes per placement"; Printf.sprintf "%.1f" bytes_per_placement ];
      [ "trace throughput";
        Printf.sprintf "%.0f updates/s, %.0f events/s" updates_per_sec
          events_per_sec ];
      [ "event latency p50/p90/p99";
        Printf.sprintf "%.0f / %.0f / %.0f ns" (pct 50.) (pct 90.) (pct 99.) ];
    ];
  print_newline ()
