(* §3.5: iBGP convergence time under the MRAI timer. ABRR needs two iBGP
   hops between border routers (client -> ARR -> client) where TBRR needs
   three (client -> TRR -> TRR -> client), so a change arriving while the
   per-peer MRAI timers are armed pays one less round of MRAI delay. *)

open Netaddr
open Eventsim
module C = Abrr_core.Config
module N = Abrr_core.Network
module Part = Abrr_core.Partition

let prefix = Prefix.of_string "20.0.0.0/16"
let neighbor k = Ipv4.of_int (0xAC10_0000 + k)

let igp n =
  let g = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Igp.Graph.add_edge g i j 100
    done
  done;
  g

(* 8 routers; source client 4 (cluster A), observer client 7 (cluster B). *)
let tbrr_scheme =
  C.tbrr
    [
      { C.trrs = [ 0; 1 ]; clients = [ 4; 5 ] };
      { C.trrs = [ 2; 3 ]; clients = [ 6; 7 ] };
    ]

let abrr_scheme = C.abrr ~partition:(Part.uniform 1) [| [ 0; 2 ] |]

let route med =
  Bgp.Route.make
    ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 7000 ])
    ~med:(Some med) ~prefix ~next_hop:(neighbor 4) ()

(* Sustained churn on the prefix keeps every session's MRAI timer armed
   (the regime where the timer matters); at [t0] a decisive improvement
   arrives and must ripple through the armed hops — three in TBRR, two
   in ABRR. Convergence time = when the last router adopts it. *)
let converge_once ~mrai ~offset scheme =
  let cfg = C.make ~n_routers:8 ~igp:(igp 8) ~mrai ~scheme () in
  let net = N.create cfg in
  N.inject net ~router:4 ~neighbor:(neighbor 4) (route 50);
  ignore (N.run net);
  let t0 = Time.sec 100 + offset in
  let rec chatter t k =
    if t < t0 then begin
      (* the best route alternates between a client of each cluster, so
         every session (client->RR, RR mesh, RR->client) carries periodic
         traffic and its MRAI timer is armed at an independent phase *)
      let router = if k mod 2 = 0 then 4 else 6 in
      N.at net t (fun () ->
          N.inject net ~router ~neighbor:(neighbor router)
            (Bgp.Route.update ~next_hop:(neighbor router)
               (route (30 + (k mod 3)))));
      chatter (t + Time.ms 1_300) (k + 1)
    end
  in
  chatter (Time.sec 50) 0;
  N.at net t0 (fun () -> N.inject net ~router:4 ~neighbor:(neighbor 4) (route 1));
  ignore (N.run net);
  Time.to_sec (N.last_change net - t0)

(* Average over injection phases relative to the armed timers. *)
let converge ~mrai scheme =
  let offsets = [ 0; 137; 271; 409; 523; 677; 829; 947 ] in
  let samples =
    List.map (fun ms -> converge_once ~mrai ~offset:(Time.ms ms) scheme) offsets
  in
  List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)

let mrai_values = [ 0; 1; 3; 5; 7; 10 ]

let run () =
  print_endline "== §3.5: convergence time of a route improvement (seconds) ==";
  (* MRAI x scheme points are independent (each converge call builds its
     own networks); fan them across the --jobs pool and re-pair the
     results in MRAI order afterwards. *)
  let points =
    List.concat_map
      (fun secs -> [ (secs, `Tbrr); (secs, `Abrr) ])
      mrai_values
  in
  let times =
    Exp_common.map_points
      (fun (secs, which) ->
        let mrai = Time.sec secs in
        converge ~mrai
          (match which with `Tbrr -> tbrr_scheme | `Abrr -> abrr_scheme))
      points
  in
  let measured = List.combine points times in
  let samples =
    List.map
      (fun secs ->
        (secs, List.assoc (secs, `Tbrr) measured, List.assoc (secs, `Abrr) measured))
      mrai_values
  in
  Metrics.Table.print ~header:[ "MRAI (s)"; "TBRR (3 hops)"; "ABRR (2 hops)" ]
    (List.map
       (fun (secs, t, a) ->
         [ string_of_int secs; Printf.sprintf "%.2f" t; Printf.sprintf "%.2f" a ])
       samples);
  print_newline ();
  let curve scheme pick =
    Exp_common.E.run ~label:scheme ~scheme
      (List.map
         (fun ((secs, _, _) as s) ->
           Exp_common.E.metric ~unit_:"s"
             (Printf.sprintf "converge_s@mrai%d" secs)
             (pick s))
         samples)
  in
  Exp_common.emit
    {
      Exp_common.E.experiment = "convergence";
      runs =
        [
          curve "tbrr" (fun (_, t, _) -> t); curve "abrr" (fun (_, _, a) -> a);
        ];
    }
