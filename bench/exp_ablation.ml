(* Ablations over the design choices called out in DESIGN.md:
   1. reflected-bit vs CLUSTER_LIST loop prevention (wire overhead);
   2. uniform vs prefix-balanced address partitions (per-ARR variance);
   3. MED comparison mode on the RFC 3345 gadget. *)

open Exp_common
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router
module G = Abrr_core.Gadgets
module A = Abrr_core.Anomaly

let small_scale = { n_prefixes = 500; trace_events = 400 }

let loop_prevention_ablation topo table trace =
  print_endline "== Ablation: ABRR loop-prevention encoding ==";
  let bytes lp =
    let result =
      run_scheme ~label:"lp" ~topo ~table ~trace
        (T.abrr_scheme ~loop_prevention:lp ~aps:8 ~arrs_per_ap:2 topo)
    in
    (stats result.rr_ids (fun i ->
         (N.counters result.net i).Abrr_core.Counters.bytes_transmitted))
      .Metrics.Summary.mean
  in
  let rb, cl =
    match map_points bytes [ C.Reflected_bit; C.Cluster_list ] with
    | [ rb; cl ] -> (rb, cl)
    | _ -> assert false
  in
  Metrics.Table.print
    ~header:[ "encoding"; "bytes tx per ARR (trace)" ]
    [
      [ "reflected bit (8-byte ext community)"; Printf.sprintf "%.0f" rb ];
      [ "CLUSTER_LIST (RFC 4456)"; Printf.sprintf "%.0f" cl ];
    ];
  Printf.printf "overhead ratio: %.3f\n\n" (rb /. cl);
  E.run ~label:"loop_prevention"
    [
      E.metric ~unit_:"bytes" "reflected_bit_bytes" rb;
      E.metric ~unit_:"bytes" "cluster_list_bytes" cl;
      E.metric "overhead_ratio" (rb /. cl);
    ]

let partition_ablation topo table =
  print_endline "== Ablation: uniform vs prefix-balanced partitions (§4.1) ==";
  let spread partition =
    let scheme = C.abrr ~partition (T.abrr_arrs topo ~aps:8 ~arrs_per_ap:2) in
    let net = N.create (config topo scheme) in
    RG.inject_all table net;
    ignore (N.run ~max_events:100_000_000 net);
    let rrs = reflectors net topo.T.n_routers in
    let s = stats rrs (fun i -> R.rib_out_entries (N.router net i)) in
    (s.Metrics.Summary.min, s.Metrics.Summary.mean, s.Metrics.Summary.max)
  in
  let prefixes = Array.to_list table.RG.prefixes in
  let (u_min, u_avg, u_max), (b_min, b_avg, b_max) =
    match
      map_points spread
        [ Abrr_core.Partition.uniform 8;
          Abrr_core.Partition.balanced ~prefixes 8 ]
    with
    | [ u; b ] -> (u, b)
    | _ -> assert false
  in
  Metrics.Table.print
    ~header:[ "partitioning"; "RIB-Out min"; "avg"; "max"; "max/avg" ]
    [
      [ "uniform address ranges"; Printf.sprintf "%.0f" u_min;
        Printf.sprintf "%.0f" u_avg; Printf.sprintf "%.0f" u_max;
        Printf.sprintf "%.2f" (u_max /. u_avg) ];
      [ "balanced by prefix count"; Printf.sprintf "%.0f" b_min;
        Printf.sprintf "%.0f" b_avg; Printf.sprintf "%.0f" b_max;
        Printf.sprintf "%.2f" (b_max /. b_avg) ];
    ];
  print_newline ();
  let e = E.metric ~unit_:"entries" in
  E.run ~label:"partition"
    [
      e "uniform_min" u_min; e "uniform_avg" u_avg; e "uniform_max" u_max;
      E.metric "uniform_imbalance" (u_max /. u_avg);
      e "balanced_min" b_min; e "balanced_avg" b_avg; e "balanced_max" b_max;
      E.metric "balanced_imbalance" (b_max /. b_avg);
    ]

let blast_radius_ablation topo table =
  print_endline "== Ablation: failure blast radius (two reflectors lost) ==";
  let module N = Abrr_core.Network in
  let lost_prefixes scheme victims observer =
    let net = N.create (config topo scheme) in
    RG.inject_all table net;
    ignore (N.run ~max_events:100_000_000 net);
    let known p = N.best net ~router:observer p <> None in
    let before =
      Array.to_list table.RG.prefixes |> List.filter known |> List.length
    in
    List.iter (fun v -> N.fail net ~router:v) victims;
    ignore (N.run ~max_events:100_000_000 net);
    let after =
      Array.to_list table.RG.prefixes |> List.filter known |> List.length
    in
    (before, before - after)
  in
  (* TBRR: kill cluster 0's TRR pair. ABRR: kill AP 0's ARR pair.
     Observe a pure access router of the failed cluster's PoP and one in
     a remote PoP. *)
  let tbrr_victims =
    match topo.T.clusters with
    | c :: _ -> c.Abrr_core.Config.trrs
    | [] -> []
  in
  let abrr_arrs = T.abrr_arrs topo ~aps:8 ~arrs_per_ap:2 in
  let is_victim r = List.mem r abrr_arrs.(0) in
  let near = List.find (fun r -> not (is_victim r)) topo.T.access_routers in
  let far =
    List.find (fun r -> not (is_victim r)) (List.rev topo.T.access_routers)
  in
  let abrr_scheme =
    Abrr_core.Config.abrr ~partition:(Abrr_core.Partition.uniform 8) abrr_arrs
  in
  let cases =
    [
      ("tbrr_near", "TBRR, client of the failed cluster", T.tbrr_scheme topo,
       tbrr_victims, near);
      ("tbrr_far", "TBRR, client of another cluster", T.tbrr_scheme topo,
       tbrr_victims, far);
      ("abrr_near", "ABRR 8 APs, client near the failed pair", abrr_scheme,
       abrr_arrs.(0), near);
      ("abrr_far", "ABRR 8 APs, client far from the failed pair", abrr_scheme,
       abrr_arrs.(0), far);
    ]
  in
  let measured =
    map_points
      (fun (key, label, scheme, victims, observer) ->
        let before, lost = lost_prefixes scheme victims observer in
        (key, label, before, lost))
      cases
  in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~header:[ "scheme / observer"; "prefixes before"; "prefixes lost" ]
    (List.map
       (fun (_, label, before, lost) ->
         [ label; string_of_int before; string_of_int lost ])
       measured);
  print_newline ();
  E.run ~label:"blast_radius"
    (List.concat_map
       (fun (key, _, before, lost) ->
         [
           E.metric ~unit_:"prefixes" (key ^ "_before") (fi before);
           E.metric ~unit_:"prefixes" (key ^ "_lost") (fi lost);
         ])
       measured)

let med_mode_ablation () =
  print_endline "== Ablation: MED comparison mode on the RFC 3345 gadget ==";
  let oscillates med_mode =
    let g = G.med_oscillation G.G_tbrr in
    let cfg = { g.G.config with C.med_mode } in
    let net = N.create cfg in
    G.inject g net;
    A.oscillates (A.run ~max_events:50_000 net)
  in
  let per_nas, always =
    match
      map_points oscillates
        [ Bgp.Decision.Per_neighbor_as; Bgp.Decision.Always_compare ]
    with
    | [ p; a ] -> (p, a)
    | _ -> assert false
  in
  let verdict b = if b then "OSCILLATES" else "converges" in
  Metrics.Table.print
    ~header:[ "MED mode"; "TBRR behaviour" ]
    [
      [ "per-neighbour-AS (RFC 4271)"; verdict per_nas ];
      [ "always-compare (operator fix)"; verdict always ];
    ];
  print_newline ();
  let b n v = E.metric n (if v then 1. else 0.) in
  E.run ~label:"med_mode"
    [ b "per_neighbor_as_oscillates" per_nas; b "always_compare_oscillates" always ]

let run () =
  let topo = tier1_topo () in
  let table = tier1_table topo small_scale in
  let trace = tier1_trace table small_scale in
  let runs =
    [
      loop_prevention_ablation topo table trace;
      partition_ablation topo table;
      blast_radius_ablation topo table;
      med_mode_ablation ();
    ]
  in
  emit { E.experiment = "ablation"; runs }
