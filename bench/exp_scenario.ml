(* The adversarial & operational scenario catalog (lib/scenario) as a
   benchmark record: the full seven-scenario catalog over the
   paper-scale 1008-router topology (42 PoPs x 24 routers), exactly the
   workload the CI gate runs through `abrr_sim scenario --bench-out`.
   Everything but the wall-clock metric is deterministic for the fixed
   seed, so the record is hard-gated against bench/baseline/. *)

module E = Metrics.Emit
module SE = Scenario.Engine

let pops = 42
let routers_per_pop = 24
let peer_ases = 15
let peering_points_per_as = 6
let prefixes = 60
let aps = 8
let arrs_per_ap = 2
let seed = 7

let run () =
  let env =
    Scenario.Catalog.env
      (Scenario.Catalog.spec ~pops ~routers_per_pop ~peer_ases
         ~peering_points_per_as ~prefixes ~aps ~arrs_per_ap ~seed ())
  in
  let fi = float_of_int in
  let m = E.metric in
  let point name =
    let wall0 = Unix.gettimeofday () in
    let r = Scenario.Catalog.run env ~scheme:"abrr" name in
    (r, Unix.gettimeofday () -. wall0)
  in
  let timed = Exp_common.map_points point Scenario.Catalog.names in
  let runs =
    List.map
      (fun ((r : SE.result), wall) ->
        let failed =
          List.length (List.filter (fun c -> not c.SE.ok) r.SE.checks)
        in
        E.run
          ~label:("scenario." ^ r.SE.name)
          ~scheme:r.SE.scheme
          ~knobs:
            [ ("pops", fi pops); ("routers_per_pop", fi routers_per_pop);
              ("peer_ases", fi peer_ases);
              ("peering_points", fi peering_points_per_as);
              ("prefixes", fi prefixes); ("aps", fi aps);
              ("arrs_per_ap", fi arrs_per_ap); ("seed", fi seed);
              ("mrai_s", 0.) ]
          ~wall_s:wall
          ~sim_s:(Eventsim.Time.to_sec r.SE.sim_end)
          ~events:r.SE.events
          ~counters:(Abrr_core.Counters.to_fields r.SE.counters)
          [ m "checks" (fi (List.length r.SE.checks));
            m "checks_failed" (fi failed);
            m "invariant_violations" (fi r.SE.invariant_violations);
            m "detections" (fi r.SE.detections);
            E.metric ~unit_:"s" ~gate:false "scenario_wall_s" wall ])
      timed
  in
  List.iter
    (fun ((r : SE.result), _) -> print_endline (SE.summary_line r))
    timed;
  Exp_common.emit { E.experiment = "scenario"; runs }
