(* Figures 6 and 7: experimental RIB sizes and update counts of route
   reflectors on the modelled Tier-1 AS — ABRR with 1..32 uniform APs
   (2 ARRs each) against TBRR with its 13 clusters (2 TRRs each) —
   alongside the Appendix A analytical expectation. *)

open Exp_common
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module M = Analysis.Model

type row = {
  label : string;
  rib_in : int * int * int;  (** min / avg / max *)
  rib_in_expect : int;
  rib_out : int * int * int;
  rib_out_expect : int;
  rx : int;  (** avg updates received over the trace *)
  gen : int;  (** avg updates generated *)
  client_rx : int;
}

let analytic ~prefixes ~bal ~groups ~rrs_per_group ~tbrr =
  let p = M.params ~prefixes ~groups ~rrs_per_group ~bal () in
  if tbrr then (M.tbrr_rib_in p, M.tbrr_rib_out p)
  else (M.abrr_rib_in p, M.abrr_rib_out p)

let collect ~label ~analytic:(ain, aout) result =
  let rr f = stats result.rr_ids (fun i -> f (Abrr_core.Network.router result.net i)) in
  let counter ids field =
    int_of_float (stats ids (fun i -> field (Abrr_core.Network.counters result.net i))).Metrics.Summary.mean
  in
  {
    label;
    rib_in = min_avg_max (rr Abrr_core.Router.rib_in_entries);
    rib_in_expect = int_of_float ain;
    rib_out = min_avg_max (rr Abrr_core.Router.rib_out_entries);
    rib_out_expect = int_of_float aout;
    rx = counter result.rr_ids (fun c -> c.Abrr_core.Counters.updates_received);
    gen = counter result.rr_ids (fun c -> c.Abrr_core.Counters.updates_generated);
    client_rx = counter result.client_ids (fun c -> c.Abrr_core.Counters.updates_received);
  }

let run ?(scale = default_scale) () =
  let topo = tier1_topo () in
  let table = tier1_table topo scale in
  let trace = tier1_trace table scale in
  let bal =
    Analysis.Bal.average ~med_mode:Bgp.Decision.Always_compare (RG.tables table)
  in
  let a, w = Topo.Trace_gen.action_count trace in
  Printf.printf
    "Workload: %d routers / %d clusters, %d prefixes, measured #BAL = %.2f,\n\
     trace: %d announcements + %d withdrawals over 14 simulated days.\n\n"
    topo.T.n_routers (List.length topo.T.clusters) scale.n_prefixes bal a w;
  (* One independent sweep point per configuration; fanned across the
     [--jobs] domain pool and merged back in canonical order. *)
  let points =
    List.map (fun aps -> `Abrr aps) abrr_ap_counts @ [ `Tbrr ]
  in
  let measured =
    map_points
      (fun point ->
        match point with
        | `Abrr aps ->
          let label = Printf.sprintf "ABRR %2d APs" aps in
          let result =
            run_scheme ~label ~topo ~table ~trace
              (T.abrr_scheme ~aps ~arrs_per_ap:2 topo)
          in
          ( "abrr",
            result,
            collect ~label
              ~analytic:
                (analytic ~prefixes:scale.n_prefixes ~bal ~groups:aps
                   ~rrs_per_group:2 ~tbrr:false)
              result )
        | `Tbrr ->
          let result =
            run_scheme ~label:"TBRR" ~topo ~table ~trace (T.tbrr_scheme topo)
          in
          ( "tbrr",
            result,
            collect ~label:"TBRR 13 clu"
              ~analytic:
                (analytic ~prefixes:scale.n_prefixes ~bal
                   ~groups:(List.length topo.T.clusters) ~rrs_per_group:2
                   ~tbrr:true)
              result ))
      points
  in
  let rows = List.map (fun (_, _, row) -> row) measured in
  let jruns =
    List.map
      (fun (scheme, result, row) ->
        let i1, i2, i3 = row.rib_in and o1, o2, o3 = row.rib_out in
        let m = E.metric ~unit_:"entries" in
        let u = E.metric ~unit_:"updates" in
        json_run ~scheme ~knobs:(scale_knobs scale) result
          [
            m "rib_in_min" (fi i1); m "rib_in_avg" (fi i2);
            m "rib_in_max" (fi i3); m "rib_in_expect" (fi row.rib_in_expect);
            m "rib_out_min" (fi o1); m "rib_out_avg" (fi o2);
            m "rib_out_max" (fi o3); m "rib_out_expect" (fi row.rib_out_expect);
            u "rr_rx_avg" (fi row.rx); u "rr_gen_avg" (fi row.gen);
            u "client_rx_avg" (fi row.client_rx);
          ])
      measured
  in
  emit { E.experiment = "fig67"; runs = jruns };
  let fmt3 (a, b, c) =
    Printf.sprintf "%s/%s/%s" (Metrics.Table.fmt_int a) (Metrics.Table.fmt_int b)
      (Metrics.Table.fmt_int c)
  in
  print_endline "== Figure 6: RIB-In and RIB-Out sizes of an ARR/TRR ==";
  Metrics.Table.print
    ~header:
      [ "config"; "RIB-In min/avg/max"; "analysis"; "RIB-Out min/avg/max"; "analysis" ]
    (List.map
       (fun (r : row) ->
         [
           r.label;
           fmt3 r.rib_in;
           Metrics.Table.fmt_int r.rib_in_expect;
           fmt3 r.rib_out;
           Metrics.Table.fmt_int r.rib_out_expect;
         ])
       rows);
  print_newline ();
  print_endline
    "== Figure 7: updates received / generated per RR over the trace ==";
  Metrics.Table.print
    ~header:[ "config"; "received (avg)"; "generated (avg)"; "client rx (avg)" ]
    (List.map
       (fun (r : row) ->
         [
           r.label;
           Metrics.Table.fmt_int r.rx;
           Metrics.Table.fmt_int r.gen;
           Metrics.Table.fmt_int r.client_rx;
         ])
       rows);
  print_newline ();
  rows
