(* Shared setup for the figure-reproduction experiments: one Tier-1
   model (13 clusters, 25 peer ASes with 8 peering points, §4) reused by
   Figures 6, 7 and the §4.2 update accounting. All experiments are
   scaled down in prefix count (the compared quantities scale linearly)
   and report their own workload parameters. *)

module N = Abrr_core.Network
module R = Abrr_core.Router
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen
module E = Metrics.Emit
module Sim = Eventsim.Sim

type scale = { n_prefixes : int; trace_events : int }

let default_scale = { n_prefixes = 1000; trace_events = 1200 }

let tier1_topo () =
  T.generate
    (T.spec ~pops:13 ~routers_per_pop:8 ~peer_ases:25 ~peering_points_per_as:8 ())

let tier1_table topo scale = RG.generate topo (RG.spec ~n_prefixes:scale.n_prefixes ())

let tier1_trace table scale =
  TG.generate table
    (TG.spec ~events:scale.trace_events ~duration:(Eventsim.Time.days 14)
       ~jitter:(Eventsim.Time.ms 80) ~single_point_share:0.35 ~flap_share:0.45 ())

(* --decision naive disables the incremental engine in every experiment
   this binary runs (bench/main.ml); the gated record contents must be
   byte-identical either way — that identity is CI-checked on the
   deterministic profile. *)
let decision_mode = ref Abrr_core.Config.Incremental

(* The paper's testbed avoids MED oscillation by configuration
   (footnote 1); we model that with always-compare MED. *)
let config topo scheme =
  {
    (T.config ~med_mode:Bgp.Decision.Always_compare
       ~proc_delay:(Eventsim.Time.ms 150) ~proc_jitter:(Eventsim.Time.ms 400)
       ~scheme topo)
    with
    Abrr_core.Config.decision = !decision_mode;
  }

(* {2 JSON emission (OBSERVABILITY.md)}

   Every experiment writes a BENCH_<exp>.json record alongside its
   table. [--out DIR] redirects the files, [--json] additionally echoes
   each record to stdout (both parsed by bench/main.ml). *)

let out_dir = ref "."
let echo_json = ref false

(* {2 Run-level parallelism ([--jobs N])}

   Every experiment expresses its sweep as [map_points] over a list of
   independent points (schemes, knob values, trials). With [jobs] > 1
   the points fan out across a domain pool; each point still runs its
   whole simulation inside one domain (determinism untouched) and the
   results come back in input order, so tables and BENCH_*.json records
   are identical to a serial run except for the ungated wall-clock
   fields. Point functions must not touch shared mutable state — they
   return values and the caller assembles rows/records after the merge. *)

let jobs = ref 1
let map_points f points = Parallel.Pool.map ~jobs:!jobs f points

(* {2 Segmented checkpoint/restore ([--checkpoint-every N])}

   With [checkpoint_every] > 0, every [run_scheme] trace phase pauses at
   that event granularity and writes a numbered segment snapshot
   (lib/snapshot) named after the run label into [checkpoint_dir]. With
   [resume_dir] set, a run whose label has a segment there restores it
   and skips the feed phase entirely — counters, clock, random stream,
   pending events and the trace-sink ring all come out of the file, so
   the finished run's gated record fields are identical to an
   uninterrupted run's (see DESIGN.md, "Checkpoint/restore"). *)

let checkpoint_every = ref 0 (* events; 0 = off *)
let checkpoint_dir = ref "."
let resume_dir : string option ref = ref None

let emit record =
  let path = Filename.concat !out_dir (E.filename record.E.experiment) in
  E.write_file path record;
  if !echo_json then print_string (E.to_string (E.record_to_json record));
  Printf.printf "[bench record -> %s]\n\n%!" path

type run_result = {
  label : string;
  net : N.t;
  rr_ids : int list;
  client_ids : int list;
  sink : Sim.Trace.sink;  (** sampled event trace of the whole run *)
  wall_s : float;
}

let reflectors net n =
  List.filter
    (fun i -> R.is_trr (N.router net i) || R.is_arr (N.router net i))
    (List.init n Fun.id)

(* Every experiment configuration passes the static analyzer before a
   single event is simulated; an invalid setup aborts with the report. *)
let precheck ~label cfg =
  let report = Verify.Static.analyze cfg in
  if not (Verify.Report.ok report) then begin
    prerr_string (Verify.Report.render report);
    failwith (label ^ ": static configuration check failed")
  end

(* Feed the snapshot, reset counters, then replay the trace: the paper's
   §4 methodology (Figure 7 counts trace-phase updates only). Runtime
   invariants (Verify.Invariant) stay on for the whole run. *)
let run_scheme ~label ~topo ~table ~trace scheme =
  let cfg = config topo scheme in
  precheck ~label cfg;
  let wall0 = Unix.gettimeofday () in
  let net = N.create cfg in
  let sim = N.sim net in
  let resumed =
    match !resume_dir with
    | None -> false
    | Some dir -> (
      match Snapshot.latest_segment ~dir ~label with
      | None -> false (* nothing checkpointed under this label: run fresh *)
      | Some (_, path) -> (
        match Snapshot.load net ~path with
        | Ok () -> true
        | Error e -> failwith (Printf.sprintf "%s: %s" path e)))
  in
  (* Sampled structured trace + phase timers; both end up in the JSON
     record (queue-depth summary, per-phase CPU seconds). A resumed run
     keeps the sink ring it had at the pause — it travels inside the
     snapshot. *)
  if not resumed then begin
    let sink = Sim.Trace.make ~capacity:4096 ~sample_every:64 () in
    Sim.set_sink sim sink
  end;
  Verify.Invariant.install net;
  if not resumed then begin
    Sim.phase sim "snapshot" (fun () ->
        RG.inject_all table net;
        match N.run ~max_events:100_000_000 net with
        | Sim.Quiescent -> ()
        | o ->
          Printf.eprintf "warning: %s snapshot ended with %s\n" label
            (Format.asprintf "%a" Sim.pp_outcome o));
    for i = 0 to N.router_count net - 1 do
      Abrr_core.Counters.reset (N.counters net i)
    done
  end;
  Sim.phase sim "trace" (fun () ->
      if not resumed then TG.schedule net trace;
      let finish = function
        | Sim.Quiescent -> ()
        | o ->
          Printf.eprintf "warning: %s trace ended with %s\n" label
            (Format.asprintf "%a" Sim.pp_outcome o)
      in
      if !checkpoint_every <= 0 then finish (N.run ~max_events:200_000_000 net)
      else begin
        let dir = !checkpoint_dir in
        let seg0 =
          match Snapshot.latest_segment ~dir ~label with
          | Some (k, _) -> k + 1
          | None -> 0
        in
        let rec loop remaining seg =
          if remaining <= 0 then finish Sim.Event_limit
          else
            match N.run ~max_events:(min !checkpoint_every remaining) net with
            | Sim.Event_limit ->
              let path = Snapshot.segment_path ~dir ~label seg in
              (match Snapshot.save net ~path with
              | Ok () -> ()
              | Error e -> failwith (Printf.sprintf "%s: %s" path e));
              loop (remaining - !checkpoint_every) (seg + 1)
            | o -> finish o
        in
        loop 200_000_000 seg0
      end);
  Verify.Invariant.check_now net;
  Verify.Invariant.uninstall net;
  let rr_ids = reflectors net topo.T.n_routers in
  let client_ids =
    List.filter (fun i -> not (List.mem i rr_ids)) (List.init topo.T.n_routers Fun.id)
  in
  let sink =
    match Sim.sink sim with
    | Some s -> s
    | None -> Sim.Trace.make () (* unreachable: set above or restored *)
  in
  { label; net; rr_ids; client_ids; sink; wall_s = Unix.gettimeofday () -. wall0 }

let stats ids f =
  Metrics.Summary.of_list (List.map (fun i -> float_of_int (f i)) ids)

let min_avg_max (s : Metrics.Summary.t) =
  ( int_of_float s.Metrics.Summary.min,
    int_of_float s.Metrics.Summary.mean,
    int_of_float s.Metrics.Summary.max )

let abrr_ap_counts = [ 1; 2; 4; 8; 16; 32 ]

let fi = float_of_int

let scale_knobs scale =
  [ ("n_prefixes", fi scale.n_prefixes); ("trace_events", fi scale.trace_events) ]

(* The JSON view of a completed [run_scheme] result: trace-phase counter
   totals (counters were reset at the snapshot/trace boundary), phase
   CPU breakdown, and a queue-depth summary from the sampled trace. *)
let json_run ?scheme ?knobs r metrics =
  let sim = N.sim r.net in
  let summaries =
    match Sim.Trace.entries r.sink with
    | [] -> []
    | es ->
      [ ("queue_depth",
         Metrics.Summary.of_ints (List.map (fun e -> e.Sim.Trace.depth) es)) ]
  in
  E.run ~label:r.label ?scheme ?knobs ~wall_s:r.wall_s
    ~sim_s:(Eventsim.Time.to_sec (Sim.now sim))
    ~events:(Sim.events_processed sim)
    ~counters:(Abrr_core.Counters.to_fields (N.total_counters r.net))
    ~summaries
    ~phases:(List.map (fun (n, st) -> (n, st.Sim.cpu_s)) (Sim.phase_stats sim))
    metrics
