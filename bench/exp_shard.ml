(* Sharded simulation core: digest-proven determinism and scaling.

   Each point runs one deterministic workload twice — sharded across
   --jobs domains (or the point's own job count), then serially — and
   proves they are the same computation:

   - at logarithmically sampled synchronization barriers the sharded
     run records (events_processed, state digest); the serial pass then
     pauses at exactly those event counts and the digests must match
     (digest_mismatches, gated at 0);
   - at quiescence the final digests, event counts, simulated clocks
     and Loc-RIB change counters must agree (final_match, gated at 1).

   Alongside the proof, the record carries the engine's window
   telemetry — windows, horizon stalls, cross-shard events, the
   largest window — all deterministic and gated. Wall-clock speedup is
   reported ungated: CI containers are single-core, so the number is
   informational there and only meaningful on real multicore hosts
   (SCALING.md). *)

module N = Abrr_core.Network
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen
module E = Metrics.Emit
module Sim = Eventsim.Sim
module Time = Eventsim.Time

let fi = float_of_int

type point = {
  label : string;
  jobs : int;
  pops : int;
  rpp : int;
  peer_ases : int;
  points : int;
  n_prefixes : int;
  trace_events : int;
}

(* A mid-size Tier-1 and the paper-scale 1008-router topology; the CI
   drill the sharded core is gated on. *)
let catalog =
  [
    { label = "tier1-104r-j2"; jobs = 2; pops = 13; rpp = 8; peer_ases = 25;
      points = 8; n_prefixes = 120; trace_events = 300 };
    { label = "paper-1008r-j4"; jobs = 4; pops = 42; rpp = 24; peer_ases = 15;
      points = 6; n_prefixes = 25; trace_events = 120 };
  ]

let digest net =
  match Snapshot.digest net with
  | Ok d -> d
  | Error e -> failwith ("shard digest: " ^ e)

let build p =
  let topo =
    T.generate
      (T.spec ~pops:p.pops ~routers_per_pop:p.rpp ~peer_ases:p.peer_ases
         ~peering_points_per_as:p.points ())
  in
  let table = RG.generate topo (RG.spec ~n_prefixes:p.n_prefixes ()) in
  let trace =
    TG.generate table
      (TG.spec ~events:p.trace_events ~duration:(Time.days 14)
         ~jitter:(Time.ms 80) ~single_point_share:0.35 ~flap_share:0.45 ())
  in
  let scheme =
    Abrr_core.Config.abrr
      ~partition:(Abrr_core.Partition.uniform 8)
      (T.abrr_arrs topo ~aps:8 ~arrs_per_ap:2)
  in
  let cfg =
    { (Exp_common.config topo scheme) with
      Abrr_core.Config.decision = !Exp_common.decision_mode }
  in
  let net = N.create cfg in
  RG.inject_all table net;
  TG.schedule net trace;
  net

let run_point p =
  (* Sharded run, sampling (events, digest) at barrier boundaries on a
     geometric event grid — a handful of samples however long the run. *)
  let sharded = build p in
  let samples = ref [] in
  let next = ref 2_000 in
  let wall0 = Unix.gettimeofday () in
  let outcome, stats =
    N.Sharded.run ~max_events:500_000_000 sharded ~jobs:p.jobs
      ~on_barrier:(fun () ->
        let e = Sim.events_processed (N.sim sharded) in
        if e >= !next then begin
          next := max (e + 1) (!next * 4);
          samples := (e, digest sharded) :: !samples
        end)
  in
  let sharded_wall = Unix.gettimeofday () -. wall0 in
  (match outcome with
  | Sim.Quiescent -> ()
  | o ->
    failwith
      (Format.asprintf "%s: sharded run ended with %a" p.label Sim.pp_outcome o));
  let samples = List.rev !samples in
  (* One serial pass over the same workload, pausing at each sampled
     event count to compare digests, then finishing. *)
  let serial = build p in
  let wall0 = Unix.gettimeofday () in
  let mismatches = ref 0 in
  List.iter
    (fun (e, d) ->
      let remaining = e - Sim.events_processed (N.sim serial) in
      if remaining > 0 then ignore (N.run ~max_events:remaining serial);
      if digest serial <> d then incr mismatches)
    samples;
  ignore (N.run ~max_events:500_000_000 serial);
  let serial_wall = Unix.gettimeofday () -. wall0 in
  let final_match =
    digest serial = digest sharded
    && Sim.events_processed (N.sim serial)
       = Sim.events_processed (N.sim sharded)
    && Sim.now (N.sim serial) = Sim.now (N.sim sharded)
    && N.best_changes serial = N.best_changes sharded
  in
  Printf.printf
    "%-16s jobs=%d  events=%d  windows=%d  stalls=%d  cross=%d  \
     barriers-checked=%d  mismatches=%d  final=%s  speedup=%.2fx\n%!"
    p.label p.jobs
    (Sim.events_processed (N.sim sharded))
    stats.N.Sharded.windows stats.N.Sharded.stalls
    stats.N.Sharded.cross_events (List.length samples) !mismatches
    (if final_match then "identical" else "DIVERGED")
    (serial_wall /. Float.max 1e-9 sharded_wall);
  E.run ~label:p.label ~scheme:"abrr"
    ~knobs:
      [
        ("jobs", fi p.jobs); ("pops", fi p.pops);
        ("routers_per_pop", fi p.rpp); ("peer_ases", fi p.peer_ases);
        ("peering_points", fi p.points); ("prefixes", fi p.n_prefixes);
        ("trace_events", fi p.trace_events);
      ]
    ~wall_s:sharded_wall
    ~sim_s:(Time.to_sec (Sim.now (N.sim sharded)))
    ~events:(Sim.events_processed (N.sim sharded))
    ~counters:(Abrr_core.Counters.to_fields (N.total_counters sharded))
    [
      E.metric ~unit_:"windows" "windows" (fi stats.N.Sharded.windows);
      E.metric ~unit_:"windows" "horizon_stalls" (fi stats.N.Sharded.stalls);
      E.metric ~unit_:"events" "cross_shard_events"
        (fi stats.N.Sharded.cross_events);
      E.metric ~unit_:"events" "max_window_events"
        (fi stats.N.Sharded.max_window_events);
      E.metric ~unit_:"barriers" "barriers_checked"
        (fi (List.length samples));
      E.metric ~unit_:"mismatches" "digest_mismatches" (fi !mismatches);
      E.metric "final_match" (if final_match then 1. else 0.);
      E.metric ~gate:false ~unit_:"x" "speedup"
        (serial_wall /. Float.max 1e-9 sharded_wall);
    ]

let run () =
  let runs = List.map run_point catalog in
  Exp_common.emit { E.experiment = "shard"; runs };
  let bad =
    List.exists
      (fun (r : E.run) ->
        List.exists
          (fun (m : E.metric) ->
            (m.E.name = "digest_mismatches" && m.E.value <> 0.)
            || (m.E.name = "final_match" && m.E.value <> 1.))
          r.E.metrics)
      runs
  in
  if bad then failwith "shard: sharded execution diverged from serial"
