(* Capstone comparison (beyond the paper's tables): every implemented
   iBGP organisation on one mid-size Tier-1 workload. Reflector columns
   average over the scheme's control nodes (TRRs / ARRs / RCP nodes);
   full-mesh and confederations have none, so their rows report the
   all-router average instead, marked with *. *)

open Exp_common
module T = Topo.Isp_topo
module R = Abrr_core.Router
module N = Abrr_core.Network

let scale = { n_prefixes = 500; trace_events = 500 }

let run () =
  let topo =
    T.generate (T.spec ~pops:8 ~routers_per_pop:6 ~peer_ases:15 ~peering_points_per_as:6 ())
  in
  let table = tier1_table topo scale in
  let trace = tier1_trace table scale in
  (* Each scheme is an independent sweep point (domain-pool safe: the
     point returns its record and table row, no shared refs). *)
  let point (label, scheme) =
    let result = run_scheme ~label ~topo ~table ~trace scheme in
    let rcp_ids =
      List.filter (fun i -> R.is_rcp (N.router result.net i))
        (List.init topo.T.n_routers Fun.id)
    in
    let nodes, starred =
      match result.rr_ids @ rcp_ids with
      | [] -> (List.init topo.T.n_routers Fun.id, true)
      | ids -> (ids, false)
    in
    let avg f = (stats nodes (fun i -> f i)).Metrics.Summary.mean in
    let rib_in = avg (fun i -> R.rib_in_entries (N.router result.net i)) in
    let rib_out =
      avg (fun i ->
          R.rib_out_entries (N.router result.net i)
          + R.rib_out_client_entries (N.router result.net i))
    in
    let rx =
      avg (fun i -> (N.counters result.net i).Abrr_core.Counters.updates_received)
    in
    let gen =
      avg (fun i -> (N.counters result.net i).Abrr_core.Counters.updates_generated)
    in
    let jrun =
      json_run ~knobs:(scale_knobs scale) result
        [
          E.metric ~unit_:"nodes" "control_nodes" (fi (List.length nodes));
          E.metric ~unit_:"entries" "rib_in_avg" rib_in;
          E.metric ~unit_:"entries" "rib_out_avg" rib_out;
          E.metric ~unit_:"updates" "rx_avg" rx;
          E.metric ~unit_:"updates" "gen_avg" gen;
        ]
    in
    ( jrun,
      [
        (label ^ if starred then " *" else "");
        string_of_int (List.length nodes);
        Printf.sprintf "%.0f" rib_in;
        Printf.sprintf "%.0f" rib_out;
        Printf.sprintf "%.0f" rx;
        Printf.sprintf "%.0f" gen;
      ] )
  in
  let measured =
    map_points point
      [
        ("full mesh", Abrr_core.Config.Full_mesh);
        ("TBRR", T.tbrr_scheme topo);
        ("TBRR multi-path", T.tbrr_scheme ~multipath:true topo);
        ("Confederation", T.confed_scheme topo);
        ("RCP x2", T.rcp_scheme topo);
        ("ABRR 8 APs x2", T.abrr_scheme ~aps:8 ~arrs_per_ap:2 topo);
      ]
  in
  let jruns = List.map fst measured in
  let rows = List.map snd measured in
  print_endline
    "== All implemented iBGP organisations on one workload (48 routers, 500 prefixes) ==";
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~header:[ "scheme"; "nodes"; "RIB-In"; "RIB-Out"; "rx (trace)"; "gen (trace)" ]
    rows;
  print_endline "(* = no dedicated control nodes; all-router averages)";
  print_newline ();
  emit { E.experiment = "schemes"; runs = jruns }
