(* §2.3 (and Table 1 semantics): the anomaly matrix — oscillation and
   path-efficiency behaviour of every scheme on the canonical gadgets. *)

module G = Abrr_core.Gadgets
module A = Abrr_core.Anomaly
module N = Abrr_core.Network

let flavors =
  [ ("full-mesh", G.G_full_mesh); ("TBRR", G.G_tbrr);
    ("TBRR+best-ext", G.G_tbrr_best_external); ("Confederation", G.G_confed);
    ("RCP", G.G_rcp); ("ABRR x1", G.G_abrr 1); ("ABRR x2", G.G_abrr 2) ]

let verdict make flavor =
  let g = make flavor in
  let net = G.build g in
  let v = A.run ~max_events:50_000 net in
  (net, g, v)

(* What the static analyzer predicts, before any event is simulated. *)
let static_verdict flavor =
  let flagged =
    List.length
      (List.filter
         (fun make ->
           not (Verify.Report.clean (Verify.Static.analyze_gadget (make flavor))))
         [ G.med_oscillation; G.topology_oscillation; G.path_inefficiency ])
  in
  if flagged = 0 then "clean" else Printf.sprintf "flags %d/3" flagged

let run () =
  print_endline "== §2.3: routing-anomaly matrix ==";
  let rows =
    List.map
      (fun (name, flavor) ->
        let _, _, med = verdict G.med_oscillation flavor in
        let _, _, topo = verdict G.topology_oscillation flavor in
        let net, g, _ = verdict G.path_inefficiency flavor in
        let exit =
          match N.best_exit net ~router:G.observer g.G.prefix with
          | Some e when e = G.near_exit -> "optimal"
          | Some _ -> "DETOURS"
          | None -> "none"
        in
        let loops = A.forwarding_loops net g.G.prefix <> [] in
        [
          name;
          (if A.oscillates med then "OSCILLATES" else "converges");
          (if A.oscillates topo then "OSCILLATES" else "converges");
          exit;
          (if loops then "LOOPS" else "loop-free");
          static_verdict flavor;
        ])
      flavors
  in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~header:
      [ "scheme"; "MED gadget"; "topology gadget"; "observer path";
        "forwarding"; "static check" ]
    rows;
  print_newline ()
