(* §2.3 (and Table 1 semantics): the anomaly matrix — oscillation and
   path-efficiency behaviour of every scheme on the canonical gadgets. *)

module G = Abrr_core.Gadgets
module A = Abrr_core.Anomaly
module N = Abrr_core.Network

let flavors =
  [ ("full-mesh", G.G_full_mesh); ("TBRR", G.G_tbrr);
    ("TBRR+best-ext", G.G_tbrr_best_external); ("Confederation", G.G_confed);
    ("RCP", G.G_rcp); ("ABRR x1", G.G_abrr 1); ("ABRR x2", G.G_abrr 2) ]

let verdict make flavor =
  let g = make flavor in
  let net = G.build g in
  let v = A.run ~max_events:50_000 net in
  (net, g, v)

(* What the static analyzer predicts, before any event is simulated. *)
let static_flags flavor =
  List.length
    (List.filter
       (fun make ->
         not (Verify.Report.clean (Verify.Static.analyze_gadget (make flavor))))
       [ G.med_oscillation; G.topology_oscillation; G.path_inefficiency ])

let run () =
  print_endline "== §2.3: routing-anomaly matrix ==";
  (* One point per scheme flavor (each builds its own gadget networks);
     fanned across the --jobs pool, merged in flavor order. *)
  let measured =
    Exp_common.map_points
      (fun (name, flavor) ->
        let _, _, med = verdict G.med_oscillation flavor in
        let _, _, topo = verdict G.topology_oscillation flavor in
        let net, g, _ = verdict G.path_inefficiency flavor in
        let exit_router = N.best_exit net ~router:G.observer g.G.prefix in
        let exit =
          match exit_router with
          | Some e when e = G.near_exit -> "optimal"
          | Some _ -> "DETOURS"
          | None -> "none"
        in
        let loops = A.forwarding_loops net g.G.prefix <> [] in
        let flagged = static_flags flavor in
        let b n v = Exp_common.E.metric n (if v then 1. else 0.) in
        let jrun =
          Exp_common.E.run ~label:name
            [
              b "med_oscillates" (A.oscillates med);
              b "topo_oscillates" (A.oscillates topo);
              b "observer_optimal" (exit_router = Some G.near_exit);
              b "forwarding_loops" loops;
              Exp_common.E.metric "static_flags" (float_of_int flagged);
            ]
        in
        ( jrun,
          [
            name;
            (if A.oscillates med then "OSCILLATES" else "converges");
            (if A.oscillates topo then "OSCILLATES" else "converges");
            exit;
            (if loops then "LOOPS" else "loop-free");
            (if flagged = 0 then "clean" else Printf.sprintf "flags %d/3" flagged);
          ] ))
      flavors
  in
  let jruns = List.map fst measured in
  let rows = List.map snd measured in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~header:
      [ "scheme"; "MED gadget"; "topology gadget"; "observer path";
        "forwarding"; "static check" ]
    rows;
  print_newline ();
  Exp_common.emit { Exp_common.E.experiment = "anomalies"; runs = jruns }
