(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation. Run all experiments with `dune exec bench/main.exe`, or a
   single one by name, e.g. `dune exec bench/main.exe -- fig6`.

   Each experiment also writes a machine-readable BENCH_<exp>.json
   record (see OBSERVABILITY.md): `--out DIR` redirects the files,
   `--json` echoes each record to stdout as it is written, and
   `--jobs N` fans each experiment's independent sweep points across N
   domains (gated record contents are byte-identical to `--jobs 1`;
   only the ungated wall-clock fields differ).

   `--decision naive` disables the incremental decision engine in every
   experiment (full recomputation per dirty prefix — the differential
   oracle); gated record contents are byte-identical to the default
   incremental engine, which CI proves on the deterministic profile.

   Long runs can be segmented (see DESIGN.md, "Checkpoint/restore"):
   `--checkpoint-every N` pauses every simulation-backed run each N
   trace events and writes a per-label segment snapshot into
   `--checkpoint-dir DIR`; `--resume-dir DIR` restores each run from
   its latest segment there and finishes it, with gated record fields
   identical to an uninterrupted run's. *)

let experiments =
  [
    ("table1", "Table 1: advertisement rules, observed live",
     fun () -> Exp_table1.run ());
    ("fig3", "Figure 3: best AS-level routes per prefix vs peer ASes",
     fun () -> ignore (Exp_fig3.run ()));
    ("fig4", "Figure 4: analytical RIB-In sizes", Exp_model_figs.run_fig4);
    ("fig5", "Figure 5: analytical RIB-Out sizes", Exp_model_figs.run_fig5);
    ("fig6+7", "Figures 6 & 7: experimental RIB sizes and update counts",
     fun () -> ignore (Exp_fig67.run ()));
    ("updates", "Sec 4.2: transmitted updates / bytes; client updates",
     fun () -> ignore (Exp_updates.run ()));
    ("anomalies", "Sec 2.3: oscillation / path-efficiency matrix",
     Exp_anomalies.run);
    ("convergence", "Sec 3.5: MRAI convergence (3 hops vs 2)", Exp_convergence.run);
    ("sessions", "Sec 3.3: reflector boot time vs session count",
     Exp_sessions.run);
    ("schemes", "All iBGP organisations on one workload", Exp_schemes.run);
    ("ablation", "Design-choice ablations", Exp_ablation.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
    ("scale", "Memory-compact RIB at scale: RSS, throughput, latency",
     Exp_scale.run);
    ("scenario", "Adversarial & operational scenario catalog, paper scale",
     Exp_scenario.run);
    ("shard", "Sharded simulation core: digest-proven determinism and scaling",
     Exp_shard.run);
  ]

let matches arg (name, _, _) =
  name = arg || ((arg = "fig6" || arg = "fig7") && name = "fig6+7")

let run_one (name, descr, f) =
  Printf.printf "################ %s - %s ################\n\n" name descr;
  let t0 = Sys.time () in
  f ();
  Printf.printf "[%s finished in %.1fs cpu]\n\n" name (Sys.time () -. t0)

(* --scale-* knobs parameterize the `scale` experiment only; every
   other experiment is fixed-size (SCALING.md has the full paper-scale
   recipe). *)
let scale_knob_specs =
  [
    ("--scale-pops", Exp_scale.pops);
    ("--scale-routers-per-pop", Exp_scale.rpp);
    ("--scale-peer-ases", Exp_scale.peer_ases);
    ("--scale-prefixes", Exp_scale.n_prefixes);
    ("--scale-events", Exp_scale.trace_events);
    ("--scale-aps", Exp_scale.aps);
  ]

let rec parse_flags = function
  | "--json" :: rest ->
    Exp_common.echo_json := true;
    parse_flags rest
  | "--jobs" :: n :: rest ->
    (match int_of_string_opt n with
    | Some j when j >= 1 -> Exp_common.jobs := j
    | Some _ | None ->
      Printf.eprintf "--jobs %s: expected a positive integer\n" n;
      exit 1);
    parse_flags rest
  | [ "--jobs" ] ->
    prerr_endline "--jobs requires a count argument";
    exit 1
  | "--checkpoint-every" :: n :: rest ->
    (match int_of_string_opt n with
    | Some e when e >= 1 -> Exp_common.checkpoint_every := e
    | Some _ | None ->
      Printf.eprintf "--checkpoint-every %s: expected a positive integer\n" n;
      exit 1);
    parse_flags rest
  | [ "--checkpoint-every" ] ->
    prerr_endline "--checkpoint-every requires an event count";
    exit 1
  | "--checkpoint-dir" :: dir :: rest ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "--checkpoint-dir %s: not a directory\n" dir;
      exit 1
    end;
    Exp_common.checkpoint_dir := dir;
    parse_flags rest
  | [ "--checkpoint-dir" ] ->
    prerr_endline "--checkpoint-dir requires a directory argument";
    exit 1
  | "--resume-dir" :: dir :: rest ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "--resume-dir %s: not a directory\n" dir;
      exit 1
    end;
    Exp_common.resume_dir := Some dir;
    parse_flags rest
  | [ "--resume-dir" ] ->
    prerr_endline "--resume-dir requires a directory argument";
    exit 1
  | "--out" :: dir :: rest ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "--out %s: not a directory\n" dir;
      exit 1
    end;
    Exp_common.out_dir := dir;
    parse_flags rest
  | [ "--out" ] ->
    prerr_endline "--out requires a directory argument";
    exit 1
  | "--decision" :: mode :: rest ->
    (match mode with
    | "incremental" -> Exp_common.decision_mode := Abrr_core.Config.Incremental
    | "naive" -> Exp_common.decision_mode := Abrr_core.Config.Naive
    | _ ->
      Printf.eprintf "--decision %s: expected incremental or naive\n" mode;
      exit 1);
    parse_flags rest
  | [ "--decision" ] ->
    prerr_endline "--decision requires a mode argument (incremental|naive)";
    exit 1
  | "--scale-trace" :: path :: rest ->
    Exp_scale.trace_path := path;
    parse_flags rest
  | [ "--scale-trace" ] ->
    prerr_endline "--scale-trace requires a file argument";
    exit 1
  | flag :: n :: rest when List.mem_assoc flag scale_knob_specs ->
    (match int_of_string_opt n with
    | Some v when v >= 1 -> List.assoc flag scale_knob_specs := v
    | Some _ | None ->
      Printf.eprintf "%s %s: expected a positive integer\n" flag n;
      exit 1);
    parse_flags rest
  | [ flag ] when List.mem_assoc flag scale_knob_specs ->
    Printf.eprintf "%s requires an integer argument\n" flag;
    exit 1
  | args -> args

let () =
  match parse_flags (List.tl (Array.to_list Sys.argv)) with
  | [] -> List.iter run_one experiments
  | args ->
    List.iter
      (fun arg ->
        match List.find_opt (matches arg) experiments with
        | Some exp -> run_one exp
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" arg
            (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
          exit 1)
      args
