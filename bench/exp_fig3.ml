(* Figure 3: average number of best AS-level routes per prefix as a
   function of the number of peer ASes, with the "Peer ASes Only" and
   "All Sources" curves and the regression line F(#PASs) fitted to the
   latter (§3.1). *)

module RG = Topo.Route_gen
module T = Topo.Isp_topo

let sample_sizes = [ 1; 2; 3; 5; 8; 10; 12; 15; 18; 20; 22; 25 ]

(* Deterministically select [k] of the 25 peer ASes, averaged over a few
   rotations (the paper selects peers at random). *)
let selections k total =
  List.init 3 (fun rot ->
      let offset = rot * 7 in
      fun asn -> (Bgp.Asn.to_int asn - 3000 + offset) mod total < k)

(* The curves average over the full prefix set (a prefix invisible from
   the selected sources contributes zero), with the always-compare MED
   configuration used throughout the evaluation. *)
let curve table ~include_customers k total =
  let vals =
    List.map
      (fun keep ->
        Analysis.Bal.average ~count_empty:true
          ~med_mode:Bgp.Decision.Always_compare
          (RG.tables ~peer_filter:keep ~include_customers table))
      (selections k total)
  in
  List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)

let run () =
  let topo = Exp_common.tier1_topo () in
  let table = Exp_common.tier1_table topo Exp_common.default_scale in
  let total = topo.T.spec.T.peer_ases in
  (* One point per sample size (pure computations over the shared
     immutable table): fanned across the --jobs pool. *)
  let points =
    Exp_common.map_points
      (fun k ->
        ( float_of_int k,
          [
            curve table ~include_customers:false k total;
            curve table ~include_customers:true k total;
          ] ))
      sample_sizes
  in
  print_endline
    (Metrics.Table.series
       ~title:"Figure 3: best AS-level routes per prefix vs peer ASes"
       ~x_label:"#PASs"
       ~y_labels:[ "Peer ASes Only"; "All Sources" ]
       points);
  let all_sources = List.map (fun (x, ys) -> (x, List.nth ys 1)) points in
  let fit = Analysis.Regression.linear all_sources in
  Format.printf "@.Regression F(#PASs) on All Sources: %a@." Analysis.Regression.pp
    fit;
  Format.printf "Paper anchor: F(25) = 10.2; measured here: %.2f@."
    (Analysis.Regression.predict fit 25.);
  let m = Exp_common.E.metric ~unit_:"routes" in
  Exp_common.emit
    {
      Exp_common.E.experiment = "fig3";
      runs =
        [
          Exp_common.E.run ~label:"curves"
            ~knobs:
              [
                ( "n_prefixes",
                  float_of_int Exp_common.default_scale.Exp_common.n_prefixes );
                ("peer_ases", float_of_int total);
              ]
            (List.concat_map
               (fun (x, ys) ->
                 let k = int_of_float x in
                 [
                   m (Printf.sprintf "peers_only@%d" k) (List.nth ys 0);
                   m (Printf.sprintf "all_sources@%d" k) (List.nth ys 1);
                 ])
               points
            @ [
                Exp_common.E.metric "slope" fit.Analysis.Regression.slope;
                Exp_common.E.metric "intercept" fit.Analysis.Regression.intercept;
                Exp_common.E.metric "r2" fit.Analysis.Regression.r2;
                m "F25" (Analysis.Regression.predict fit 25.);
              ]);
        ];
    };
  fit
