(* Regression gate over BENCH_*.json records (see OBSERVABILITY.md).

     compare BASELINE CANDIDATE [--threshold F]

   BASELINE and CANDIDATE are either two record files or two
   directories holding BENCH_*.json sets (matched by file name). Gated
   quantities — counters, simulated time, event counts and metrics
   recorded with gate=true — that deviate by more than the relative
   threshold (default 0.0, i.e. any change) fail the gate; ungated
   drifts are printed but do not affect the exit status.

   Exit codes: 0 = no gated drift, 1 = gated drift found, 2 = usage or
   unreadable/invalid input. *)

module E = Metrics.Emit

let usage () =
  prerr_endline "usage: compare BASELINE CANDIDATE [--threshold FLOAT]";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let load path =
  match E.read_file path with
  | Ok r -> r
  | Error msg -> fail "%s: %s" path msg

(* The BENCH_*.json files of a directory, keyed by file name. *)
let record_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 11
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare

(* (baseline file, candidate file) pairs plus the names of records the
   candidate no longer produces — a coverage regression, gated. *)
let pairs baseline candidate =
  match (Sys.is_directory baseline, Sys.is_directory candidate) with
  | false, false -> ([ (baseline, candidate) ], [])
  | true, true ->
    let base_files = record_files baseline in
    if base_files = [] then fail "%s: no BENCH_*.json files" baseline;
    List.fold_left
      (fun (ps, missing) f ->
        let cand = Filename.concat candidate f in
        if Sys.file_exists cand then
          ((Filename.concat baseline f, cand) :: ps, missing)
        else (ps, f :: missing))
      ([], []) base_files
    |> fun (ps, missing) -> (List.rev ps, List.rev missing)
  | _ ->
    fail "%s and %s must both be files or both directories" baseline candidate

let () =
  let threshold = ref 0.0 in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0. -> threshold := f
      | Some _ | None -> fail "--threshold %s: expected a non-negative float" v);
      parse rest
    | [ "--threshold" ] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline, candidate =
    match List.rev !positional with [ b; c ] -> (b, c) | _ -> usage ()
  in
  List.iter
    (fun p -> if not (Sys.file_exists p) then fail "%s: no such file" p)
    [ baseline; candidate ];
  let file_pairs, missing = pairs baseline candidate in
  List.iter
    (fun f -> Printf.printf "MISSING  %s (present in baseline only)\n" f)
    missing;
  let gated_total = ref (List.length missing) in
  List.iter
    (fun (bpath, cpath) ->
      let drifts =
        E.diff ~threshold:!threshold ~baseline:(load bpath)
          ~candidate:(load cpath)
      in
      if drifts <> [] then begin
        Printf.printf "%s vs %s:\n%s\n" bpath cpath (E.render_drifts drifts);
        gated_total :=
          !gated_total + List.length (List.filter (fun d -> d.E.d_gated) drifts)
      end)
    file_pairs;
  if !gated_total = 0 then begin
    Printf.printf "compare: no gated drift across %d record(s) (threshold %g)\n"
      (List.length file_pairs) !threshold;
    exit 0
  end
  else begin
    Printf.printf "compare: %d gated drift(s) (threshold %g)\n" !gated_total
      !threshold;
    exit 1
  end
