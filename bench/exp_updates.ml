(* §4.2 transmitted-update accounting: the paper emulates the full 27
   cluster / 27 AP topology and reports that each TRR transmits ~2.5x
   more updates than an ARR while the ARR transmits ~4x more bytes
   (10.2 routes per add-paths update), and that ABRR *clients* receive
   fewer updates than TBRR clients thanks to ARR batching. *)

open Exp_common
module T = Topo.Isp_topo

let run ?(scale = { n_prefixes = 600; trace_events = 900 }) () =
  (* full iBGP topology: 27 PoPs/clusters and a matching 27-AP ABRR *)
  let topo =
    T.generate
      (T.spec ~pops:27 ~routers_per_pop:5 ~peer_ases:25 ~peering_points_per_as:8 ())
  in
  let table = tier1_table topo scale in
  let trace = tier1_trace table scale in
  let measure (label, scheme) =
    let result = run_scheme ~label ~topo ~table ~trace scheme in
    let avg ids f =
      (stats ids (fun i -> f (Abrr_core.Network.counters result.net i)))
        .Metrics.Summary.mean
    in
    ( result,
      avg result.rr_ids (fun c -> c.Abrr_core.Counters.updates_transmitted),
      avg result.rr_ids (fun c -> c.Abrr_core.Counters.bytes_transmitted),
      avg result.client_ids (fun c -> c.Abrr_core.Counters.updates_received) )
  in
  (* The two schemes are independent sweep points for the --jobs pool. *)
  let (t_res, t_tx, t_bytes, t_client), (a_res, a_tx, a_bytes, a_client) =
    match
      map_points measure
        [
          ("TBRR", T.tbrr_scheme topo);
          ("ABRR", T.abrr_scheme ~aps:27 ~arrs_per_ap:2 topo);
        ]
    with
    | [ t; a ] -> (t, a)
    | _ -> assert false
  in
  print_endline "== §4.2: transmitted updates and bytes per RR (trace phase) ==";
  Metrics.Table.print
    ~header:[ "scheme"; "updates tx/RR"; "bytes tx/RR"; "client rx" ]
    [
      [ "TBRR 27 clusters"; Printf.sprintf "%.0f" t_tx; Printf.sprintf "%.0f" t_bytes;
        Printf.sprintf "%.0f" t_client ];
      [ "ABRR 27 APs"; Printf.sprintf "%.0f" a_tx; Printf.sprintf "%.0f" a_bytes;
        Printf.sprintf "%.0f" a_client ];
    ];
  Printf.printf
    "\nTRR/ARR transmitted-update ratio: %.2fx   (paper: ~2.5x)\n\
     ARR/TRR transmitted-byte ratio:   %.2fx   (paper: ~4x)\n\
     ABRR/TBRR client update ratio:    %.2fx   (paper: ~0.7x)\n\n"
    (t_tx /. a_tx) (a_bytes /. t_bytes) (a_client /. t_client);
  let per_rr res tx bytes client scheme =
    json_run ~scheme ~knobs:(scale_knobs scale) res
      [
        E.metric ~unit_:"updates" "rr_tx_avg" tx;
        E.metric ~unit_:"bytes" "rr_bytes_avg" bytes;
        E.metric ~unit_:"updates" "client_rx_avg" client;
      ]
  in
  emit
    {
      E.experiment = "updates";
      runs =
        [
          per_rr t_res t_tx t_bytes t_client "tbrr";
          per_rr a_res a_tx a_bytes a_client "abrr";
          E.run ~label:"ratios"
            [
              E.metric "trr_arr_update_ratio" (t_tx /. a_tx);
              E.metric "arr_trr_byte_ratio" (a_bytes /. t_bytes);
              E.metric "client_update_ratio" (a_client /. t_client);
            ];
        ];
    };
  ((t_tx, t_bytes, t_client), (a_tx, a_bytes, a_client))
