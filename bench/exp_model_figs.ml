(* Figures 4 and 5: analytical RIB-In / RIB-Out sizes of an ARR vs TRR
   (single- and multi-path) as each parameter varies around the defaults
   (2000 routers, 50 APs/clusters, 2 RRs per group, 30 peer ASes, 400K
   prefixes). Sub-figure (a) varies the router count, on which none of
   the Appendix A expressions depend — the flat lines reproduce the
   paper's point that RIB sizes are insensitive to it. *)

module M = Analysis.Model

type metric = Rib_in | Rib_out

let eval metric p =
  match metric with
  | Rib_in -> [ M.abrr_rib_in p; M.tbrr_rib_in p; M.multi_rib_in p ]
  | Rib_out -> [ M.abrr_rib_out p; M.tbrr_rib_out p; M.multi_rib_out p ]

let labels = [ "ABRR"; "TBRR"; "TBRR-multi" ]

let sub_figure ~title ~x_label ~metric ~truncate_tbrr ~tag points =
  let rows =
    List.map
      (fun (x, p) ->
        let vals = eval metric p in
        let vals =
          match truncate_tbrr with
          | Some cap when x > cap -> (
            match vals with [ a; _; _ ] -> [ a; Float.nan; Float.nan ] | v -> v)
          | Some _ | None -> vals
        in
        (x, vals))
      points
  in
  print_endline
    (Metrics.Table.series ~title ~x_label ~y_labels:labels rows);
  print_newline ();
  (* One metric per curve point, e.g. "b.TBRR@50"; truncated (NaN)
     points are omitted rather than emitted as null. *)
  List.concat_map
    (fun (x, vals) ->
      List.concat
        (List.map2
           (fun curve v ->
             if Float.is_nan v then []
             else
               [
                 Exp_common.E.metric ~unit_:"entries"
                   (Printf.sprintf "%s.%s@%g" tag curve x)
                   v;
               ])
           labels vals))
    rows

let vary_routers () = List.map (fun n -> (float_of_int n, M.params ())) [ 500; 1000; 2000; 4000; 8000 ]
let vary_groups () = List.map (fun k -> (float_of_int k, M.params ~groups:k ())) [ 5; 10; 25; 50; 100; 200; 400 ]
let vary_redundancy () = List.map (fun r -> (float_of_int r, M.params ~rrs_per_group:r ())) [ 1; 2; 3; 4; 6; 8 ]
let vary_pas () = List.map (fun s -> (float_of_int s, M.params ~bal:(M.default_bal s) ())) [ 5; 10; 15; 20; 25; 30; 40; 50 ]

let run_figure ~fig ~metric =
  let name = match metric with Rib_in -> "RIB-In" | Rib_out -> "RIB-Out" in
  let a =
    sub_figure
      ~title:(Printf.sprintf "Figure %s(a): #%s entries vs #Routers" fig name)
      ~x_label:"#Routers" ~metric ~truncate_tbrr:None ~tag:"a" (vary_routers ())
  in
  let b =
    sub_figure
      ~title:
        (Printf.sprintf "Figure %s(b): #%s entries vs #APs/#Clusters%s" fig name
           (match metric with
           | Rib_out -> " (TBRR truncated at 100 clusters)"
           | Rib_in -> ""))
      ~x_label:"#APs/#Clusters" ~metric
      ~truncate_tbrr:(match metric with Rib_out -> Some 100. | Rib_in -> None)
      ~tag:"b" (vary_groups ())
  in
  let c =
    sub_figure
      ~title:
        (Printf.sprintf "Figure %s(c): #%s entries vs #RRs per AP/Cluster" fig
           name)
      ~x_label:"#RRs/group" ~metric ~truncate_tbrr:None ~tag:"c"
      (vary_redundancy ())
  in
  let d =
    sub_figure
      ~title:(Printf.sprintf "Figure %s(d): #%s entries vs #Peer ASes" fig name)
      ~x_label:"#PASs" ~metric ~truncate_tbrr:None ~tag:"d" (vary_pas ())
  in
  Exp_common.emit
    {
      Exp_common.E.experiment = "fig" ^ fig;
      runs = [ Exp_common.E.run ~label:"analytic" (a @ b @ c @ d) ];
    }

let run_fig4 () = run_figure ~fig:"4" ~metric:Rib_in
let run_fig5 () = run_figure ~fig:"5" ~metric:Rib_out
