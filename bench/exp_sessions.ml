(* §3.3: an ARR peers with every router in the AS (1000+ sessions in the
   measured Tier-1; the ASR1000 is tested to 8000). The paper argues the
   session count is affordable and only boot time grows. We measure boot
   time through the full BGP FSM: transport setup, OPEN exchange,
   capability negotiation and first KEEPALIVE, with inbound messages
   serialized through the booting reflector's CPU. *)

module S = Abrr_core.Session_setup

let counts = [ 100; 200; 500; 1000; 2000; 4000; 8000 ]

let run () =
  print_endline
    "== §3.3: reflector boot time vs session count (20 ms RTT, 200 us/msg) ==";
  (* Each session count boots its own simulated reflector: independent
     points for the --jobs pool. *)
  let results =
    Exp_common.map_points
      (fun sessions -> (sessions, S.run (S.spec ~sessions ())))
      counts
  in
  Metrics.Table.print
    ~header:[ "sessions"; "boot time (s)"; "msgs processed"; "established" ]
    (List.map
       (fun (sessions, r) ->
         [
           Metrics.Table.fmt_int sessions;
           Printf.sprintf "%.2f" (Eventsim.Time.to_sec r.S.boot_time);
           Metrics.Table.fmt_int r.S.messages_processed;
           string_of_int r.S.established;
         ])
       results);
  Printf.printf
    "\nEven at the ASR1000's tested 8000 sessions, boot completes in\n\
     seconds — and redundant ARRs cover the window (§3.3).\n\n";
  Exp_common.emit
    {
      Exp_common.E.experiment = "sessions";
      runs =
        List.map
          (fun (sessions, r) ->
            Exp_common.E.run
              ~label:(Printf.sprintf "%d sessions" sessions)
              ~knobs:[ ("sessions", float_of_int sessions) ]
              [
                Exp_common.E.metric ~unit_:"s" "boot_s"
                  (Eventsim.Time.to_sec r.S.boot_time);
                Exp_common.E.metric ~unit_:"msgs" "msgs_processed"
                  (float_of_int r.S.messages_processed);
                Exp_common.E.metric ~unit_:"sessions" "established"
                  (float_of_int r.S.established);
              ])
          results;
    }
