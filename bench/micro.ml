(* Bechamel micro-benchmarks over the primitives every experiment leans
   on: the decision process (Table 2), best-AS-level selection, prefix
   trie operations, the wire codec and SPF. *)

open Bechamel
open Toolkit
open Netaddr

let prefix_of i = Prefix.make (Ipv4.of_int (i * 65_536)) 16

let candidates n =
  List.init n (fun i ->
      Bgp.Decision.candidate ~learned:Bgp.Decision.Ibgp
        ~peer_id:(Ipv4.of_int (0x0A00_0000 + i))
        ~peer_addr:(Ipv4.of_int (0x0A00_0000 + i))
        ~igp_cost:(100 + ((i * 37) mod 61))
        (Bgp.Route.make
           ~as_path:
             (Bgp.As_path.of_asns
                [ Bgp.Asn.of_int (3000 + (i mod 7)); Bgp.Asn.of_int 55000 ])
           ~med:(Some ((i * 13) mod 97))
           ~prefix:(prefix_of 1)
           ~next_hop:(Ipv4.of_int (0x0A00_0000 + i))
           ()))

let cands16 = candidates 16

let bench_decision =
  Test.make ~name:"decision.best (16 candidates)"
    (Staged.stage (fun () ->
         ignore (Bgp.Decision.best ~med_mode:Bgp.Decision.Per_neighbor_as cands16)))

let bench_bal =
  Test.make ~name:"decision.steps_1_to_4 (16 candidates)"
    (Staged.stage (fun () ->
         ignore
           (Bgp.Decision.steps_1_to_4 ~med_mode:Bgp.Decision.Per_neighbor_as cands16)))

(* The retained list-based oracle, benchmarked side by side with the
   scratch-buffer kernel so the speedup stays visible in the table. *)
let bench_decision_naive =
  Test.make ~name:"decision.naive_best (16 candidates)"
    (Staged.stage (fun () ->
         ignore
           (Bgp.Decision.Naive.best ~med_mode:Bgp.Decision.Per_neighbor_as
              cands16)))

let bench_bal_naive =
  Test.make ~name:"decision.naive_steps_1_to_4 (16 candidates)"
    (Staged.stage (fun () ->
         ignore
           (Bgp.Decision.Naive.steps_1_to_4
              ~med_mode:Bgp.Decision.Per_neighbor_as cands16)))

(* The three incremental-decision fast paths (DESIGN.md, "Incremental
   decision"), benchmarked against the full kernel rows above: what a
   batched router pays instead of decision.best when churn is provably
   irrelevant. *)

let inc_incumbent =
  (* lp 200 beats every generated candidate (lp 100) at step 1 *)
  Bgp.Route.make ~local_pref:200
    ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 3001 ])
    ~prefix:(prefix_of 1)
    ~next_hop:(Ipv4.of_int 0x0A00_0001)
    ()

let inc_challenger = (List.nth cands16 7).Bgp.Decision.route

let bench_delta_reject =
  Test.make ~name:"decision.intrinsic_loses arrival reject (step 1)"
    (Staged.stage (fun () ->
         ignore
           (Bgp.Decision.intrinsic_loses
              ~med_mode:Bgp.Decision.Per_neighbor_as ~incumbent:inc_incumbent
              inc_challenger)))

let wd_incumbent =
  (* ties the withdrawn route on lp, wins on AS-path length: the strict
     loss lands one comparison deeper than the arrival-reject row *)
  Bgp.Route.make
    ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 3001 ])
    ~prefix:(prefix_of 1)
    ~next_hop:(Ipv4.of_int 0x0A00_0001)
    ()

let bench_withdraw_skip =
  Test.make ~name:"decision.intrinsic_loses withdraw skip (step 2)"
    (Staged.stage (fun () ->
         ignore
           (Bgp.Decision.intrinsic_loses
              ~med_mode:Bgp.Decision.Per_neighbor_as ~incumbent:wd_incumbent
              inc_challenger)))

let burst_items =
  (* 64 updates of one prefix inside a single delivery: the coalescer
     must reduce them to the final delta *)
  List.init 64 (fun i ->
      ( Abrr_core.Proto.Mesh,
        Abrr_core.Proto.delta (prefix_of 1)
          [
            Bgp.Route.make
              ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int (3000 + i) ])
              ~prefix:(prefix_of 1)
              ~next_hop:(Ipv4.of_int (0x0A00_0000 + i))
              ();
          ] ))

let bench_coalesce_burst =
  Test.make ~name:"proto.coalesce (64-item same-prefix burst)"
    (Staged.stage (fun () -> ignore (Abrr_core.Proto.coalesce burst_items)))

let rib_routes =
  List.init 64 (fun i ->
      Bgp.Route.make ~path_id:(i mod 8)
        ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int (3000 + i) ])
        ~prefix:(prefix_of (i / 8))
        ~next_hop:(Ipv4.of_int (0x0A00_0000 + i))
        ())

let rib =
  let t = Bgp.Rib.create () in
  List.iter (fun r -> ignore (Bgp.Rib.upsert t r)) rib_routes;
  t

let bench_rib_cycle =
  (* Replace and drop+reinsert against an 8-prefix x 8-path table: the
     per-update pattern every Adj-RIB sees on the simulator hot path. *)
  let r = List.nth rib_routes 28 in
  Test.make ~name:"rib.upsert+drop cycle (8x8 table)"
    (Staged.stage (fun () ->
         ignore (Bgp.Rib.upsert rib r);
         ignore (Bgp.Rib.drop rib r.Bgp.Route.prefix ~path_id:r.Bgp.Route.path_id);
         ignore (Bgp.Rib.upsert rib r)))

let intern_asns = List.init 6 (fun i -> Bgp.Asn.of_int (3000 + i))

let bench_aspath_intern =
  Test.make ~name:"aspath.of_asns intern (6 hops)"
    (Staged.stage (fun () -> ignore (Bgp.As_path.of_asns intern_asns)))

let eq_a = (List.nth cands16 5).Bgp.Decision.route
let eq_b = { eq_a with Bgp.Route.path_id = eq_a.Bgp.Route.path_id }

let bench_route_equal =
  (* Physically distinct heads sharing one interned attribute block:
     equality is two int compares plus a pointer check on the block. *)
  Test.make ~name:"route.equal (distinct heads, shared block)"
    (Staged.stage (fun () -> ignore (Bgp.Route.equal eq_a eq_b)))

let trie_1k =
  List.fold_left
    (fun t i -> Prefix_trie.add (prefix_of i) i t)
    Prefix_trie.empty
    (List.init 1000 (fun i -> i))

let bench_trie_insert =
  Test.make ~name:"trie.add into 1k entries"
    (Staged.stage (fun () -> ignore (Prefix_trie.add (prefix_of 1500) 0 trie_1k)))

let bench_trie_lpm =
  Test.make ~name:"trie.longest_match over 1k"
    (Staged.stage (fun () ->
         ignore (Prefix_trie.longest_match (Ipv4.of_int (500 * 65_536 + 77)) trie_1k)))

let update_msg =
  Bgp.Msg.Update
    {
      Bgp.Msg.withdrawn = [];
      announced =
        List.init 10 (fun i ->
            Bgp.Route.make ~path_id:(i + 1)
              ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 3001 ])
              ~med:(Some i) ~prefix:(prefix_of i)
              ~next_hop:(Ipv4.of_int (0x0A00_0000 + i))
              ());
    }

let encoded = Bytes.concat Bytes.empty (Bgp.Wire.encode ~add_paths:true update_msg)

let bench_wire_encode =
  Test.make ~name:"wire.encode (10-route update)"
    (Staged.stage (fun () -> ignore (Bgp.Wire.encode ~add_paths:true update_msg)))

let bench_wire_decode =
  Test.make ~name:"wire.decode (10-route update)"
    (Staged.stage (fun () -> ignore (Bgp.Wire.decode_all ~add_paths:true encoded)))

let spf_graph =
  let g = Igp.Graph.create ~n:200 in
  for i = 0 to 199 do
    Igp.Graph.add_edge g i ((i + 1) mod 200) 10;
    Igp.Graph.add_edge g i ((i + 17) mod 200) 35
  done;
  g

let bench_spf =
  Test.make ~name:"spf.distances (200-node graph)"
    (Staged.stage (fun () -> ignore (Igp.Spf.distances spf_graph ~src:0)))

let partition32 = Abrr_core.Partition.uniform 32

let bench_partition =
  Test.make ~name:"partition.aps_of_prefix (32 APs)"
    (Staged.stage (fun () ->
         ignore (Abrr_core.Partition.aps_of_prefix partition32 (prefix_of 12345))))

let tests =
  [
    bench_decision;
    bench_bal;
    bench_decision_naive;
    bench_bal_naive;
    bench_delta_reject;
    bench_withdraw_skip;
    bench_coalesce_burst;
    bench_rib_cycle;
    bench_aspath_intern;
    bench_route_equal;
    bench_trie_insert;
    bench_trie_lpm;
    bench_wire_encode;
    bench_wire_decode;
    bench_spf;
    bench_partition;
  ]

let run () =
  print_endline "== micro-benchmarks (ns per call, OLS fit) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] -> rows := (name, t) :: !rows
      | Some _ | None -> ())
    ols;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  Metrics.Table.print
    ~align:[ Metrics.Table.Left ]
    ~header:[ "benchmark"; "ns/run" ]
    (List.map (fun (name, t) -> [ name; Printf.sprintf "%.1f" t ]) rows);
  print_newline ();
  (* ns/op estimates are machine- and load-dependent: emit them ungated
     so compare reports but never fails on them. *)
  Exp_common.emit
    {
      Exp_common.E.experiment = "micro";
      runs =
        [
          Exp_common.E.run ~label:"ns_per_op"
            (List.map
               (fun (name, t) ->
                 Exp_common.E.metric ~unit_:"ns" ~gate:false name t)
               rows);
        ];
    }
